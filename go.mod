module fun3d

go 1.22
