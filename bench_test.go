// Benchmarks mapping one-to-one onto the paper's tables and figures; see
// DESIGN.md's per-experiment index. Run with:
//
//	go test -bench=. -benchmem
//
// Each benchmark exercises the same code path as the corresponding
// cmd/experiments experiment, on meshes sized for benchmark turnaround.
// Domain metrics (iterations, comm fractions, speedup inputs) are attached
// with b.ReportMetric.
package fun3d_test

import (
	"math/rand"
	"runtime"
	"testing"

	"fun3d"
	"fun3d/internal/core"
	"fun3d/internal/flux"
	"fun3d/internal/mesh"
	"fun3d/internal/newton"
	"fun3d/internal/par"
	"fun3d/internal/perfmodel"
	"fun3d/internal/physics"
	"fun3d/internal/reorder"
	"fun3d/internal/sparse"
)

// benchSpec is the mesh used by the solve-based benchmarks: a reduced
// Mesh-C' so a full solve fits in a benchmark iteration.
func benchSpec() mesh.GenSpec { return mesh.ScaleSpec(mesh.SpecC(), 0.15) }

func benchMesh(b *testing.B) *mesh.Mesh {
	b.Helper()
	m, err := mesh.Generate(benchSpec())
	if err != nil {
		b.Fatal(err)
	}
	return m
}

func solveBench(b *testing.B, m *mesh.Mesh, cfg core.Config, opt newton.Options) {
	b.Helper()
	app, err := core.NewApp(m, cfg)
	if err != nil {
		b.Fatal(err)
	}
	defer app.Close()
	b.ResetTimer()
	totalIters := 0
	for i := 0; i < b.N; i++ {
		app.ResetState()
		r, err := app.Run(opt)
		if err != nil {
			b.Fatal(err)
		}
		if !r.History.Converged {
			b.Fatalf("not converged: %+v", r.History)
		}
		totalIters = r.History.LinearIters
	}
	b.ReportMetric(float64(totalIters), "lin-iters")
}

// BenchmarkTable1_Baseline: Table I — baseline sequential time to solution.
func BenchmarkTable1_Baseline(b *testing.B) {
	solveBench(b, benchMesh(b), core.BaselineConfig(), newton.Options{MaxSteps: 60, CFL0: 5})
}

// BenchmarkTable2_ILU0vsILU1: Table II — fill level vs time/iterations.
func BenchmarkTable2_ILU0vsILU1(b *testing.B) {
	m := benchMesh(b)
	for _, fill := range []struct {
		name string
		lvl  int
	}{{"ILU0", 0}, {"ILU1", 1}} {
		b.Run(fill.name, func(b *testing.B) {
			cfg := core.BaselineConfig()
			cfg.FillLevel = fill.lvl
			solveBench(b, m, cfg, newton.Options{MaxSteps: 60, CFL0: 10})
		})
	}
}

// BenchmarkFig5_BaselineProfile: Fig 5 — the profiled second-order baseline.
func BenchmarkFig5_BaselineProfile(b *testing.B) {
	cfg := core.BaselineConfig()
	cfg.SecondOrder = true
	cfg.Limiter = true
	solveBench(b, benchMesh(b), cfg, newton.Options{MaxSteps: 60, CFL0: 10})
}

// fluxBenchEnv prepares the flux-kernel benchmarks.
type fluxBenchEnv struct {
	m    *mesh.Mesh
	q    []float64
	res  []float64
	qInf physics.State
}

func newFluxBenchEnv(b *testing.B) *fluxBenchEnv {
	b.Helper()
	m0 := benchMesh(b)
	perm := reorder.RCM(reorder.Graph{Ptr: m0.AdjPtr, Adj: m0.Adj})
	m := m0.Permute(perm)
	qInf := physics.FreeStream(3.06)
	rng := rand.New(rand.NewSource(1))
	q := make([]float64, m.NumVertices()*4)
	for v := 0; v < m.NumVertices(); v++ {
		for c := 0; c < 4; c++ {
			q[v*4+c] = qInf[c] + 0.05*rng.NormFloat64()
		}
	}
	return &fluxBenchEnv{m: m, q: q, res: make([]float64, m.NumVertices()*4), qInf: qInf}
}

func (e *fluxBenchEnv) run(b *testing.B, pool *par.Pool, s flux.Strategy, cfg flux.Config) {
	b.Helper()
	nw := 1
	if pool != nil {
		nw = pool.Size()
	}
	part, err := flux.NewPartition(e.m, nw, s, 3)
	if err != nil {
		b.Fatal(err)
	}
	cfg.Strategy = s
	k := flux.NewKernels(e.m, 5, e.qInf, pool, part, cfg)
	q := e.q
	if cfg.SoANodeData {
		q = flux.AoSToSoA(e.q, e.m.NumVertices())
	}
	b.SetBytes(int64(e.m.NumEdges()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.Residual(q, nil, nil, e.res)
	}
	b.ReportMetric(100*part.Replication, "repl%")
}

// BenchmarkFig6a_FluxLadder: Fig 6a — the flux-kernel optimization rungs.
func BenchmarkFig6a_FluxLadder(b *testing.B) {
	env := newFluxBenchEnv(b)
	pool := par.NewPool(runtime.NumCPU())
	defer pool.Close()
	rungs := []struct {
		name     string
		threaded bool
		cfg      flux.Config
	}{
		{"SeqSoA", false, flux.Config{SoANodeData: true}},
		{"ThreadedSoA", true, flux.Config{SoANodeData: true}},
		{"ThreadedAoS", true, flux.Config{}},
		{"ThreadedAoSSIMD", true, flux.Config{SIMD: true}},
		{"ThreadedAoSSIMDPrefetch", true, flux.Config{SIMD: true, Prefetch: true}},
	}
	for _, r := range rungs {
		b.Run(r.name, func(b *testing.B) {
			p, s := (*par.Pool)(nil), flux.Sequential
			if r.threaded {
				p, s = pool, flux.ReplicateMETIS
			}
			env.run(b, p, s, r.cfg)
		})
	}
}

// BenchmarkFig6b_FluxStrategies: Fig 6b — threading strategies.
func BenchmarkFig6b_FluxStrategies(b *testing.B) {
	env := newFluxBenchEnv(b)
	pool := par.NewPool(runtime.NumCPU())
	defer pool.Close()
	for _, s := range []flux.Strategy{flux.Sequential, flux.Atomic,
		flux.ReplicateNatural, flux.ReplicateMETIS, flux.Colored} {
		b.Run(s.String(), func(b *testing.B) {
			p := pool
			if s == flux.Sequential {
				p = nil
			}
			env.run(b, p, s, flux.Config{})
		})
	}
}

// recurrenceBench builds the Jacobian + ILU factor used by Fig 7.
func recurrenceBench(b *testing.B) (*sparse.BSR, *sparse.Factor) {
	b.Helper()
	env := newFluxBenchEnv(b)
	part, err := flux.NewPartition(env.m, 1, flux.Sequential, 0)
	if err != nil {
		b.Fatal(err)
	}
	k := flux.NewKernels(env.m, 5, env.qInf, nil, part, flux.Config{})
	a := sparse.NewBSRFromAdj(env.m.AdjPtr, env.m.Adj)
	k.Jacobian(env.q, a)
	dt := make([]float64, env.m.NumVertices())
	for i := range dt {
		dt[i] = 0.01
	}
	flux.AddPseudoTimeTerm(a, env.m.Vol, dt)
	pat, err := sparse.SymbolicILU(a, 0)
	if err != nil {
		b.Fatal(err)
	}
	f, err := sparse.NewFactorPattern(pat)
	if err != nil {
		b.Fatal(err)
	}
	return a, f
}

// BenchmarkFig7a_SparseLadder: Fig 7a — ILU/TRSV under the three schedules.
func BenchmarkFig7a_SparseLadder(b *testing.B) {
	a, f := recurrenceBench(b)
	pool := par.NewPool(runtime.NumCPU())
	defer pool.Close()
	if err := f.FactorizeILU(a); err != nil {
		b.Fatal(err)
	}
	ls := sparse.NewLevelSchedule(f.M)
	ps := sparse.NewP2PSchedule(f.M, pool.Size())
	n := a.N * sparse.B
	rhs := make([]float64, n)
	x := make([]float64, n)
	for i := range rhs {
		rhs[i] = float64(i%7) - 3
	}
	b.Run("ILU/sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := f.FactorizeILU(a); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("ILU/level", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := f.FactorizeILULevel(pool, ls, a); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("ILU/p2p", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := f.FactorizeILUP2P(pool, ps, a); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("TRSV/sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			f.Solve(rhs, x)
		}
	})
	b.Run("TRSV/level", func(b *testing.B) {
		b.ReportMetric(float64(ls.NumLevels()), "levels")
		for i := 0; i < b.N; i++ {
			f.SolveLevel(pool, ls, rhs, x)
		}
	})
	b.Run("TRSV/p2p", func(b *testing.B) {
		b.ReportMetric(float64(ps.NumWaits()), "waits")
		for i := 0; i < b.N; i++ {
			f.SolveP2P(pool, ps, rhs, x)
		}
	})
}

// BenchmarkFig7b_SparseBandwidth: Fig 7b — achieved TRSV bandwidth vs STREAM.
func BenchmarkFig7b_SparseBandwidth(b *testing.B) {
	a, f := recurrenceBench(b)
	if err := f.FactorizeILU(a); err != nil {
		b.Fatal(err)
	}
	n := a.N * sparse.B
	rhs := make([]float64, n)
	x := make([]float64, n)
	bytes := int64(f.M.NNZBlocks()*(sparse.BB*8+4) + 3*n*8)
	b.Run("TRSV", func(b *testing.B) {
		b.SetBytes(bytes)
		for i := 0; i < b.N; i++ {
			f.Solve(rhs, x)
		}
	})
	b.Run("STREAMTriad", func(b *testing.B) {
		elems := 1 << 22
		b.SetBytes(int64(elems * 3 * 8))
		for i := 0; i < b.N; i++ {
			perfmodel.StreamTriad(nil, elems)
		}
	})
}

// BenchmarkFig8a_FullApp: Fig 8a — baseline vs optimized full application.
func BenchmarkFig8a_FullApp(b *testing.B) {
	m := benchMesh(b)
	b.Run("baseline", func(b *testing.B) {
		solveBench(b, m, core.BaselineConfig(), newton.Options{MaxSteps: 60, CFL0: 10})
	})
	b.Run("optimized", func(b *testing.B) {
		solveBench(b, m, core.OptimizedConfig(runtime.NumCPU()), newton.Options{MaxSteps: 60, CFL0: 10})
	})
}

// clusterBench runs the simulated multi-node solver (Figures 9-11).
func clusterBench(b *testing.B, ranks int, rates perfmodel.Rates, vec *perfmodel.Rates, rpn int) {
	b.Helper()
	m := benchMesh(b)
	net := perfmodel.Stampede()
	net.RanksPerNode = rpn
	var last fun3d.ClusterResult
	for i := 0; i < b.N; i++ {
		res, err := fun3d.SimulateCluster(m, fun3d.ClusterConfig{
			Ranks: ranks, Rates: rates, VecRates: vec, Net: net,
			MaxSteps: 2, RelTol: 1e-30, CFL0: 20, Seed: 11,
		})
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.Time*1e3, "virtual-ms")
	b.ReportMetric(100*last.CommFraction(), "comm%")
	b.ReportMetric(float64(last.LinearIters), "lin-iters")
}

func benchRates(b *testing.B) perfmodel.Rates {
	b.Helper()
	sample, err := mesh.Generate(mesh.SpecTiny())
	if err != nil {
		b.Fatal(err)
	}
	r, err := perfmodel.Measure(sample, 1, false)
	if err != nil {
		b.Fatal(err)
	}
	return r
}

// BenchmarkFig9_Scaling: Fig 9 — strong scaling baseline vs optimized.
func BenchmarkFig9_Scaling(b *testing.B) {
	base := benchRates(b)
	opt := perfmodel.DeriveOptimized(base)
	for _, ranks := range []int{4, 16, 64} {
		b.Run("baseline/"+itoa(ranks), func(b *testing.B) { clusterBench(b, ranks, base, nil, 4) })
		b.Run("optimized/"+itoa(ranks), func(b *testing.B) { clusterBench(b, ranks, opt, nil, 4) })
	}
}

// BenchmarkFig10_CommFraction: Fig 10 — communication share vs scale
// (metrics attached as comm%).
func BenchmarkFig10_CommFraction(b *testing.B) {
	opt := perfmodel.DeriveOptimized(benchRates(b))
	for _, ranks := range []int{4, 16, 64, 128} {
		b.Run(itoa(ranks), func(b *testing.B) { clusterBench(b, ranks, opt, nil, 4) })
	}
}

// BenchmarkFig11_Hybrid: Fig 11 — MPI-only vs hybrid rank shapes.
func BenchmarkFig11_Hybrid(b *testing.B) {
	base := benchRates(b)
	opt := perfmodel.DeriveOptimized(base)
	sample, err := mesh.Generate(mesh.SpecTiny())
	if err != nil {
		b.Fatal(err)
	}
	threaded, err := perfmodel.Measure(sample, 2, false)
	if err != nil {
		b.Fatal(err)
	}
	hybrid := perfmodel.ThreadScale(opt, base, threaded)
	const nodes = 8
	b.Run("baseline", func(b *testing.B) { clusterBench(b, nodes*4, base, nil, 4) })
	b.Run("optimized", func(b *testing.B) { clusterBench(b, nodes*4, opt, nil, 4) })
	b.Run("hybrid", func(b *testing.B) { clusterBench(b, nodes*2, hybrid, &opt, 2) })
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// BenchmarkAblation_ILUWorkspace: the paper's "algorithmic optimization" —
// compressed per-row ILU workspace vs the naive length-N scratch buffer.
// Results are bit-identical; the compressed variant shrinks the working
// set (critical at high thread counts per the paper).
func BenchmarkAblation_ILUWorkspace(b *testing.B) {
	a, f := recurrenceBench(b)
	b.Run("compressed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := f.FactorizeILU(a); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("full-buffer", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := f.FactorizeILUFullWorkspace(a); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblation_RCM: solver iteration speed with and without RCM
// reordering (the locality optimization everything else builds on).
func BenchmarkAblation_RCM(b *testing.B) {
	m := benchMesh(b)
	for _, rcm := range []struct {
		name string
		on   bool
	}{{"with-rcm", true}, {"without-rcm", false}} {
		b.Run(rcm.name, func(b *testing.B) {
			cfg := core.BaselineConfig()
			cfg.RCM = rcm.on
			solveBench(b, m, cfg, newton.Options{MaxSteps: 60, CFL0: 10})
		})
	}
}

// BenchmarkAblation_FusedNorms: communication-reducing GMRES in the
// simulated cluster (the paper's future-work direction).
func BenchmarkAblation_FusedNorms(b *testing.B) {
	base := benchRates(b)
	m := benchMesh(b)
	net := perfmodel.Stampede()
	net.RanksPerNode = 4
	for _, fused := range []struct {
		name string
		on   bool
	}{{"classic", false}, {"fused-norms", true}} {
		b.Run(fused.name, func(b *testing.B) {
			var last fun3d.ClusterResult
			for i := 0; i < b.N; i++ {
				res, err := fun3d.SimulateCluster(m, fun3d.ClusterConfig{
					Ranks: 64, Rates: base, Net: net,
					MaxSteps: 2, RelTol: 1e-30, CFL0: 20, Seed: 11,
					FusedNorms: fused.on,
				})
				if err != nil {
					b.Fatal(err)
				}
				last = res
			}
			b.ReportMetric(float64(last.Allreduces), "allreduces")
			b.ReportMetric(last.AllreduceTime*1e3, "allreduce-ms")
		})
	}
}
