package fun3d_test

import (
	"fmt"

	"fun3d"
)

// Example demonstrates the minimal generate-solve-inspect flow.
func Example() {
	m, err := fun3d.GenerateMesh(fun3d.MeshTiny())
	if err != nil {
		panic(err)
	}
	solver, err := fun3d.NewSolver(m, fun3d.Baseline())
	if err != nil {
		panic(err)
	}
	defer solver.Close()
	r, err := solver.Run(fun3d.SolveOptions{MaxSteps: 50})
	if err != nil {
		panic(err)
	}
	fmt.Println("converged:", r.History.Converged)
	// Output: converged: true
}
