package fun3d_test

import (
	"testing"

	"fun3d"
)

// TestGoldenStagedTrajectory pins the `+staged` ladder rung end-to-end: a
// Newton solve of the wing case with the hierarchical staged residual
// pipeline (two-level tiling, per-tile SoA staging buffers, tile-interior
// SIMD) must produce an IDENTICAL residual trajectory to the three-sweep
// path — bit-for-bit. Phase A plain-stores inner-closed vertices (their
// local accumulation chain is exactly the global one) and phase B applies
// the remaining per-edge fluxes per vertex in ascending edge order, which
// reproduces the scatter loops' per-accumulator IEEE operation sequence;
// this test carries that argument through the Newton/GMRES stack on the
// optimized (ReplicateMETIS, SIMD, prefetch) configuration.
func TestGoldenStagedTrajectory(t *testing.T) {
	m, err := fun3d.GenerateMesh(fun3d.MeshTiny())
	if err != nil {
		t.Fatal(err)
	}
	run := func(staged bool) fun3d.RunResult {
		t.Helper()
		cfg := fun3d.Optimized(4)
		cfg.SecondOrder = true
		cfg.Limiter = true
		cfg.Staged = staged
		cfg.TileEdges = 2048     // several outer tiles even on the tiny mesh
		cfg.InnerTileEdges = 512 // several inner tiles per outer span
		solver, err := fun3d.NewSolver(m, cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer solver.Close()
		r, err := solver.Run(fun3d.SolveOptions{MaxSteps: 30, CFL0: 20})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	unstaged := run(false)
	staged := run(true)

	if !staged.History.Converged || !unstaged.History.Converged {
		t.Fatalf("convergence: staged=%v unstaged=%v", staged.History.Converged, unstaged.History.Converged)
	}
	if staged.History.RNorm0 != unstaged.History.RNorm0 {
		t.Errorf("RNorm0: staged %.17g != unstaged %.17g", staged.History.RNorm0, unstaged.History.RNorm0)
	}
	if len(staged.History.Steps) != len(unstaged.History.Steps) {
		t.Fatalf("step counts differ: staged %d, unstaged %d",
			len(staged.History.Steps), len(unstaged.History.Steps))
	}
	for i := range staged.History.Steps {
		s, u := staged.History.Steps[i], unstaged.History.Steps[i]
		if s.RNorm != u.RNorm {
			t.Errorf("step %d: ||R|| staged %.17g != unstaged %.17g", s.Step, s.RNorm, u.RNorm)
		}
		if s.LinearIters != u.LinearIters {
			t.Errorf("step %d: GMRES iters staged %d != unstaged %d", s.Step, s.LinearIters, u.LinearIters)
		}
	}
}
