package fun3d_test

import (
	"math"
	"testing"

	"fun3d"
)

// TestGoldenPipelinedConformance runs the seed wing case with the
// single-Allreduce pipelined GMRES variant and holds it to the same golden
// trajectory as classical GMRES: identical step and per-step iteration
// counts, and residual norms within 1e-10 of the golden values relative to
// the initial residual (the convergence metric). The matrix-free JFNK
// operator carries √ε finite-differencing noise, so per-step *self*-relative
// agreement tightens as residuals decay only down to that floor — but on
// the convergence scale the two variants are indistinguishable.
func TestGoldenPipelinedConformance(t *testing.T) {
	m, err := fun3d.GenerateMesh(fun3d.MeshTiny())
	if err != nil {
		t.Fatal(err)
	}
	solver, err := fun3d.NewSolver(m, fun3d.Baseline())
	if err != nil {
		t.Fatal(err)
	}
	defer solver.Close()
	r, err := solver.Run(fun3d.SolveOptions{MaxSteps: 50, CFL0: 20, Pipelined: true})
	if err != nil {
		t.Fatal(err)
	}
	h := r.History

	if !h.Converged {
		t.Fatalf("pipelined seed case does not converge: %+v", h)
	}
	if d := math.Abs(h.RNorm0-goldenRNorm0) / goldenRNorm0; d > 1e-9 {
		t.Errorf("RNorm0 drifted: got %.17g want %.17g (rel %g)", h.RNorm0, goldenRNorm0, d)
	}
	if len(h.Steps) != len(goldenSteps) {
		t.Fatalf("step count changed: got %d want %d (history %+v)", len(h.Steps), len(goldenSteps), h.Steps)
	}
	total := 0
	for i, want := range goldenSteps {
		got := h.Steps[i]
		if got.LinearIters != want.linearIters {
			t.Errorf("step %d: GMRES iters %d, golden %d", want.step, got.LinearIters, want.linearIters)
		}
		if d := math.Abs(got.RNorm-want.rnorm) / goldenRNorm0; d > 1e-10 {
			t.Errorf("step %d: ||R|| %.17g, golden %.17g (%.2e of initial residual)",
				want.step, got.RNorm, want.rnorm, d)
		}
		total += got.LinearIters
	}
	if h.LinearIters != total || total != 14 {
		t.Errorf("total GMRES iters %d (sum %d), golden 14", h.LinearIters, total)
	}
}
