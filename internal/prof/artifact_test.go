package prof

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// sampleMetrics builds a Metrics with every kernel and a few counters
// populated, mimicking what a quick solve accumulates.
func sampleMetrics() *Metrics {
	m := &Metrics{}
	m.Add(Flux, 42*time.Millisecond)
	m.AddBytes(Flux, 1<<20)
	m.Add(TRSV, 17*time.Millisecond)
	m.AddBytes(TRSV, 1<<19)
	m.Add(ILU, 16*time.Millisecond)
	m.Add(Gradient, 13*time.Millisecond)
	m.Add(Jacobian, 7*time.Millisecond)
	m.Add(VecOps, 3*time.Millisecond)
	m.Add(Allreduce, 2*time.Millisecond)
	m.Add(Halo, time.Millisecond)
	m.Add(Other, time.Millisecond)
	m.Inc(FluxEdges, 1000)
	m.Inc(TRSVBlocks, 5000)
	m.Inc(GMRESIters, 30)
	m.Inc(NewtonSteps, 4)
	m.Inc(AllreduceCalls, 30)
	m.Inc(AllreduceBytes, 240)
	return m
}

func TestArtifactRoundTrip(t *testing.T) {
	art := NewArtifact("roundtrip", sampleMetrics())
	art.Config = map[string]any{"threads": 4}
	art.Mesh = &MeshInfo{Vertices: 640, Edges: 3634}
	art.Paper = map[string]float64{"flux_share": 0.42}

	path := filepath.Join(t.TempDir(), "BENCH_roundtrip.json")
	if err := art.WriteFile(path); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	got, err := ReadArtifact(path)
	if err != nil {
		t.Fatalf("ReadArtifact: %v", err)
	}
	if got.Schema != ArtifactSchema {
		t.Fatalf("schema %q, want %q", got.Schema, ArtifactSchema)
	}
	if got.Experiment != "roundtrip" {
		t.Fatalf("experiment %q", got.Experiment)
	}
	for _, k := range Kernels() {
		if _, ok := got.Kernels[k.String()]; !ok {
			t.Fatalf("round-trip lost kernel %q", k)
		}
	}
	flux := got.Kernels["flux"]
	if flux.Seconds != 0.042 || flux.Calls != 1 || flux.Bytes != 1<<20 {
		t.Fatalf("flux record %+v", flux)
	}
	if flux.GBPerSec == 0 || flux.Fraction == 0 {
		t.Fatalf("flux derived fields not filled: %+v", flux)
	}
	if got.Counters["gmres_iters"] != 30 || got.Counters["newton_steps"] != 4 {
		t.Fatalf("counters %v", got.Counters)
	}
	if got.Rates["flux_edges_per_sec"] == 0 {
		t.Fatalf("rates %v", got.Rates)
	}
	if got.Mesh == nil || got.Mesh.Edges != 3634 {
		t.Fatalf("mesh %+v", got.Mesh)
	}
	if got.Paper["flux_share"] != 0.42 {
		t.Fatalf("paper %v", got.Paper)
	}
}

func TestArtifactValidate(t *testing.T) {
	ok := NewArtifact("v", &Metrics{})
	if err := ok.Validate(); err != nil {
		t.Fatalf("fresh artifact invalid: %v", err)
	}

	bad := NewArtifact("v", &Metrics{})
	bad.Schema = "fun3d-bench/v0"
	if err := bad.Validate(); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Fatalf("wrong schema accepted: %v", err)
	}

	bad = NewArtifact("", &Metrics{})
	if err := bad.Validate(); err == nil || !strings.Contains(err.Error(), "experiment") {
		t.Fatalf("empty experiment accepted: %v", err)
	}

	bad = NewArtifact("v", &Metrics{})
	delete(bad.Kernels, "flux")
	if err := bad.Validate(); err == nil || !strings.Contains(err.Error(), "flux") {
		t.Fatalf("missing kernel accepted: %v", err)
	}

	bad = NewArtifact("v", &Metrics{})
	bad.Counters = nil
	if err := bad.Validate(); err == nil || !strings.Contains(err.Error(), "counters") {
		t.Fatalf("nil counters accepted: %v", err)
	}

	bad = NewArtifact("v", &Metrics{})
	bad.Schema = "fun3d-bench/v0"
	if err := bad.WriteFile(filepath.Join(t.TempDir(), "x.json")); err == nil {
		t.Fatal("WriteFile accepted an invalid artifact")
	}
}

func TestReadArtifactRejectsGarbage(t *testing.T) {
	if _, err := ReadArtifact(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing file accepted")
	}
}

// TestDiffFlagsInjectedFluxSlowdown is the benchdiff acceptance check: a
// copied artifact with flux slowed down 2x must come back regressed, in
// both absolute-seconds and shares mode.
func TestDiffFlagsInjectedFluxSlowdown(t *testing.T) {
	old := NewArtifact("diff", sampleMetrics())
	slow := NewArtifact("diff", sampleMetrics())
	r := slow.Kernels["flux"]
	r.Seconds *= 2
	slow.Kernels["flux"] = r
	// Recompute shares so the Shares-mode comparison sees the shift too.
	total := 0.0
	for _, rec := range slow.Kernels {
		total += rec.Seconds
	}
	for name, rec := range slow.Kernels {
		rec.Fraction = rec.Seconds / total
		slow.Kernels[name] = rec
	}

	// In shares mode the flux share moves 0.41 -> 0.58 (a 1.4x ratio — the
	// denominator grows too), so use a threshold both modes clear.
	for _, shares := range []bool{false, true} {
		entries, regressed, err := DiffArtifacts(old, slow, DiffOptions{Threshold: 1.3, Shares: shares})
		if err != nil {
			t.Fatalf("shares=%v: %v", shares, err)
		}
		if !regressed {
			t.Fatalf("shares=%v: 2x flux slowdown not flagged", shares)
		}
		found := false
		for _, e := range entries {
			if e.Kernel == "flux" {
				found = true
				if !e.Regressed {
					t.Fatalf("shares=%v: flux entry not regressed: %+v", shares, e)
				}
				if e.Ratio < 1.3 {
					t.Fatalf("shares=%v: flux ratio %v too small", shares, e.Ratio)
				}
			} else if e.Regressed && !shares {
				t.Fatalf("shares=%v: unrelated kernel %q flagged", shares, e.Kernel)
			}
		}
		if !found {
			t.Fatalf("shares=%v: no flux entry", shares)
		}
	}
}

func TestDiffWithinThresholdPasses(t *testing.T) {
	old := NewArtifact("diff", sampleMetrics())
	noisy := NewArtifact("diff", sampleMetrics())
	r := noisy.Kernels["flux"]
	r.Seconds *= 1.2 // within the default 1.5x threshold
	noisy.Kernels["flux"] = r
	_, regressed, err := DiffArtifacts(old, noisy, DiffOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if regressed {
		t.Fatal("20% drift inside a 1.5x threshold flagged")
	}
}

func TestDiffNoiseFloor(t *testing.T) {
	// A kernel below MinSeconds in both artifacts never flags, however wild
	// the ratio.
	old := NewArtifact("diff", sampleMetrics())
	noisy := NewArtifact("diff", sampleMetrics())
	r := noisy.Kernels["halo"] // 1ms in the sample
	r.Seconds *= 50
	noisy.Kernels["halo"] = r
	_, regressed, err := DiffArtifacts(old, noisy, DiffOptions{MinSeconds: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if regressed {
		t.Fatal("sub-noise-floor kernel flagged")
	}
}

func TestDiffSchemaMismatch(t *testing.T) {
	a := NewArtifact("diff", sampleMetrics())
	b := NewArtifact("diff", sampleMetrics())
	b.Schema = "fun3d-bench/v2"
	if _, _, err := DiffArtifacts(a, b, DiffOptions{}); err == nil {
		t.Fatal("schema mismatch accepted")
	}
}

// krylovMetrics is sampleMetrics with the Krylov collective counters set:
// 33 collectives over 30 iterations (pipelined: iters + setup reductions).
func krylovMetrics() *Metrics {
	m := sampleMetrics()
	m.Inc(KrylovAllreduceCalls, 33)
	m.Inc(KrylovAllreduceBytes, 33*800)
	return m
}

func TestArtifactKrylovRates(t *testing.T) {
	art := NewArtifact("rates", krylovMetrics())
	if got, want := art.Rates["krylov_allreduce_per_gmres_iter"], 33.0/30; got != want {
		t.Fatalf("krylov_allreduce_per_gmres_iter = %v, want %v", got, want)
	}
	if got, want := art.Rates["krylov_allreduce_bytes_per_gmres_iter"], 33.0*800/30; got != want {
		t.Fatalf("krylov_allreduce_bytes_per_gmres_iter = %v, want %v", got, want)
	}
	// Runs without Krylov counters (seed-era artifacts) must not carry the
	// rates at all — the gate skips them instead of comparing zeros.
	plain := NewArtifact("rates", sampleMetrics())
	if _, ok := plain.Rates["krylov_allreduce_per_gmres_iter"]; ok {
		t.Fatal("rate present without KrylovAllreduceCalls")
	}
}

func TestDiffGateRates(t *testing.T) {
	gate := DiffOptions{Threshold: 1.5, GateRates: []string{"krylov_allreduce_per_gmres_iter"}}

	// Steady rate passes.
	old := NewArtifact("diff", krylovMetrics())
	same := NewArtifact("diff", krylovMetrics())
	entries, regressed, err := DiffArtifacts(old, same, gate)
	if err != nil {
		t.Fatal(err)
	}
	if regressed {
		t.Fatal("identical gated rate flagged")
	}
	found := false
	for _, e := range entries {
		if e.Kernel == "rate:krylov_allreduce_per_gmres_iter" {
			found = true
			if e.Ratio != 1 {
				t.Fatalf("steady rate ratio %v", e.Ratio)
			}
		}
	}
	if !found {
		t.Fatal("gated rate missing from diff entries")
	}

	// A pipelined->classical regression (1.1 -> 4.1 per iter) flags.
	worse := NewArtifact("diff", krylovMetrics())
	worse.Rates["krylov_allreduce_per_gmres_iter"] *= 3.7
	_, regressed, err = DiffArtifacts(old, worse, gate)
	if err != nil {
		t.Fatal(err)
	}
	if !regressed {
		t.Fatal("3.7x gated-rate growth not flagged")
	}

	// The rate disappearing from the new artifact flags (counter booking
	// silently lost is exactly the regression the gate exists to catch).
	gone := NewArtifact("diff", krylovMetrics())
	delete(gone.Rates, "krylov_allreduce_per_gmres_iter")
	_, regressed, err = DiffArtifacts(old, gone, gate)
	if err != nil {
		t.Fatal(err)
	}
	if !regressed {
		t.Fatal("vanished gated rate not flagged")
	}

	// A baseline without the rate skips the gate (seed-era baselines).
	_, regressed, err = DiffArtifacts(gone, same, gate)
	if err != nil {
		t.Fatal(err)
	}
	if regressed {
		t.Fatal("gate applied against a baseline lacking the rate")
	}
}

func TestUpdateBaseline(t *testing.T) {
	dir := t.TempDir()
	fresh := filepath.Join(dir, "fresh.json")
	baseline := filepath.Join(dir, "baseline.json")

	art := NewArtifact("quick", krylovMetrics())
	if err := art.WriteFile(baseline); err != nil {
		t.Fatal(err)
	}
	next := NewArtifact("quick", krylovMetrics())
	next.Rates["krylov_allreduce_per_gmres_iter"] = 1.15
	if err := next.WriteFile(fresh); err != nil {
		t.Fatal(err)
	}
	if err := UpdateBaseline(fresh, baseline); err != nil {
		t.Fatal(err)
	}
	got, err := ReadArtifact(baseline)
	if err != nil {
		t.Fatal(err)
	}
	if got.Rates["krylov_allreduce_per_gmres_iter"] != 1.15 {
		t.Fatalf("baseline not rewritten: %v", got.Rates)
	}

	// A fresh artifact from a different experiment must be rejected — the
	// committed baseline's identity is part of the gate.
	other := NewArtifact("fig5", krylovMetrics())
	otherPath := filepath.Join(dir, "other.json")
	if err := other.WriteFile(otherPath); err != nil {
		t.Fatal(err)
	}
	if err := UpdateBaseline(otherPath, baseline); err == nil {
		t.Fatal("experiment mismatch accepted")
	}
	// Garbage fresh input is rejected before touching the baseline.
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := UpdateBaseline(bad, baseline); err == nil {
		t.Fatal("garbage fresh artifact accepted")
	}
	// A missing baseline is fine: first-time creation.
	created := filepath.Join(dir, "new_baseline.json")
	if err := UpdateBaseline(fresh, created); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadArtifact(created); err != nil {
		t.Fatal(err)
	}
}
