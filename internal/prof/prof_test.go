package prof

import (
	"strings"
	"testing"
	"time"
)

func TestProfileBasics(t *testing.T) {
	var p Profile
	p.Time(Flux, func() { time.Sleep(2 * time.Millisecond) })
	p.Add(TRSV, 3*time.Millisecond)
	p.Add(TRSV, time.Millisecond)
	if p.Count(Flux) != 1 || p.Count(TRSV) != 2 {
		t.Fatalf("counts %d %d", p.Count(Flux), p.Count(TRSV))
	}
	if p.Total(Flux) < 2*time.Millisecond {
		t.Fatal("flux total too small")
	}
	if p.Total(TRSV) != 4*time.Millisecond {
		t.Fatal("trsv total")
	}
	if p.Sum() < 6*time.Millisecond {
		t.Fatal("sum")
	}
	fr := p.Fractions()
	total := 0.0
	for _, v := range fr {
		total += v
	}
	if total < 0.999 || total > 1.001 {
		t.Fatalf("fractions sum %v", total)
	}
	s := p.String()
	if !strings.Contains(s, "flux") || !strings.Contains(s, "trsv") {
		t.Fatalf("string output: %q", s)
	}
	p.Reset()
	if p.Sum() != 0 {
		t.Fatal("reset")
	}
}

func TestNilProfileSafe(t *testing.T) {
	var p *Profile
	ran := false
	p.Time(Flux, func() { ran = true })
	p.Add(ILU, time.Second)
	if !ran {
		t.Fatal("nil profile must still run the function")
	}
}

func TestKernelNames(t *testing.T) {
	for _, k := range Kernels() {
		if k.String() == "" {
			t.Fatal("empty kernel name")
		}
	}
	if Kernel(99).String() == "" {
		t.Fatal("unknown kernel name")
	}
}

func TestEmptyProfile(t *testing.T) {
	var p Profile
	if len(p.Fractions()) != 0 {
		t.Fatal("empty profile fractions")
	}
	if p.String() != "" {
		t.Fatal("empty profile string should be empty")
	}
}
