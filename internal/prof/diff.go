package prof

import (
	"fmt"
	"math"
	"sort"
)

// DiffOptions configures an artifact comparison.
type DiffOptions struct {
	// Threshold is the ratio (new/old) above which a kernel counts as a
	// regression (default 1.5 — generous, so machine noise does not gate).
	Threshold float64
	// MinSeconds ignores kernels below this time in BOTH artifacts — a
	// noise floor for kernels too fast to time reliably (default 1ms).
	MinSeconds float64
	// Shares compares each kernel's share of the profiled total instead of
	// absolute seconds. Shares are machine-independent, so this is the mode
	// for CI comparisons against a committed baseline from another machine.
	Shares bool
	// GateRates names derived rates (Artifact.Rates keys) that must not grow
	// past Threshold×old. Rates are machine-independent counts per unit of
	// work — krylov_allreduce_per_gmres_iter is the canonical gate: a change
	// that reintroduces a collective per iteration fails CI even though no
	// kernel timing moved. A rate present in the old artifact but missing
	// from the new one also flags (the instrumentation went dark).
	GateRates []string
}

func (o *DiffOptions) defaults() {
	if o.Threshold <= 0 {
		o.Threshold = 1.5
	}
	if o.MinSeconds <= 0 {
		o.MinSeconds = 1e-3
	}
}

// DiffEntry is one kernel's comparison.
type DiffEntry struct {
	Kernel    string
	Old, New  float64 // seconds, or shares in Shares mode
	Ratio     float64 // New/Old (Inf when Old is 0 and New is not)
	Regressed bool
}

// DiffArtifacts compares two artifacts kernel-by-kernel and reports every
// kernel present in either, plus whether any regressed beyond the
// threshold. Artifacts must share a schema version.
func DiffArtifacts(oldA, newA *Artifact, opt DiffOptions) ([]DiffEntry, bool, error) {
	opt.defaults()
	if oldA.Schema != newA.Schema {
		return nil, false, fmt.Errorf("prof: schema mismatch: %q vs %q", oldA.Schema, newA.Schema)
	}
	names := map[string]bool{}
	for k := range oldA.Kernels {
		names[k] = true
	}
	for k := range newA.Kernels {
		names[k] = true
	}
	sorted := make([]string, 0, len(names))
	for k := range names {
		sorted = append(sorted, k)
	}
	sort.Strings(sorted)

	value := func(r KernelRecord) float64 {
		if opt.Shares {
			return r.Fraction
		}
		return r.Seconds
	}
	var out []DiffEntry
	regressed := false
	for _, name := range sorted {
		ro, rn := oldA.Kernels[name], newA.Kernels[name]
		e := DiffEntry{Kernel: name, Old: value(ro), New: value(rn)}
		switch {
		case e.Old > 0:
			e.Ratio = e.New / e.Old
		case e.New > 0:
			e.Ratio = math.Inf(1)
		default:
			e.Ratio = 1
		}
		// Below the noise floor (absolute seconds, in either mode) the
		// ratio is meaningless — never flag.
		audible := ro.Seconds >= opt.MinSeconds || rn.Seconds >= opt.MinSeconds
		if audible && e.Ratio > opt.Threshold {
			e.Regressed = true
			regressed = true
		}
		out = append(out, e)
	}
	for _, name := range opt.GateRates {
		vo, haveOld := oldA.Rates[name]
		vn, haveNew := newA.Rates[name]
		if !haveOld {
			// Nothing to gate against: the baseline predates this rate.
			continue
		}
		e := DiffEntry{Kernel: "rate:" + name, Old: vo, New: vn}
		switch {
		case vo > 0:
			e.Ratio = vn / vo
		case vn > 0:
			e.Ratio = math.Inf(1)
		default:
			e.Ratio = 1
		}
		if !haveNew || e.Ratio > opt.Threshold {
			e.Regressed = true
			regressed = true
		}
		out = append(out, e)
	}
	return out, regressed, nil
}
