package prof

import (
	"sync"
	"testing"
	"time"
)

func TestMetricsCounters(t *testing.T) {
	m := &Metrics{}
	m.Inc(FluxEdges, 100)
	m.Inc(FluxEdges, 23)
	if m.Counter(FluxEdges) != 123 {
		t.Fatalf("FluxEdges %d", m.Counter(FluxEdges))
	}
	m.Add(Flux, time.Second)
	if r := m.Rate(FluxEdges, Flux); r != 123 {
		t.Fatalf("rate %v", r)
	}
	cm := m.CountersMap()
	if cm["flux_edges"] != 123 {
		t.Fatalf("map %v", cm)
	}
	if _, ok := cm["trsv_blocks"]; ok {
		t.Fatal("zero counter exported")
	}
	m.Reset()
	if m.Counter(FluxEdges) != 0 || m.Total(Flux) != 0 {
		t.Fatal("reset")
	}
}

func TestMetricsMerge(t *testing.T) {
	a, b := &Metrics{}, &Metrics{}
	a.Inc(GMRESIters, 10)
	a.Add(TRSV, time.Millisecond)
	b.Inc(GMRESIters, 5)
	b.Add(TRSV, time.Millisecond)
	b.AddBytes(TRSV, 64)
	a.Merge(b)
	if a.Counter(GMRESIters) != 15 {
		t.Fatalf("merged iters %d", a.Counter(GMRESIters))
	}
	if a.Total(TRSV) != 2*time.Millisecond || a.Count(TRSV) != 2 || a.Bytes(TRSV) != 64 {
		t.Fatal("merged profile")
	}
}

func TestNilMetricsSafe(t *testing.T) {
	var m *Metrics
	m.Inc(FluxEdges, 1)
	m.Merge(&Metrics{})
	m.Reset()
	if m.Counter(FluxEdges) != 0 || m.Rate(FluxEdges, Flux) != 0 {
		t.Fatal("nil reads")
	}
	if m.P() != nil {
		t.Fatal("nil P()")
	}
	if len(m.CountersMap()) != 0 {
		t.Fatal("nil map")
	}
}

func TestCounterNames(t *testing.T) {
	seen := map[string]bool{}
	for _, c := range AllCounters() {
		s := c.String()
		if s == "" || seen[s] {
			t.Fatalf("bad or duplicate counter name %q", s)
		}
		seen[s] = true
	}
	if Counter(99).String() == "" {
		t.Fatal("unknown counter name")
	}
}

// TestMetricsConcurrentHammer drives one shared Metrics from many goroutines
// mixing writers (Inc/Add/AddBytes/Merge), readers (CountersMap, Fractions,
// Rate, String), and a Reset — the access pattern of hybrid mpisim ranks
// sharing an aggregate. Run under -race this is the data-race gate for the
// whole subsystem.
func TestMetricsConcurrentHammer(t *testing.T) {
	shared := &Metrics{}
	const writers, iters = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			local := &Metrics{}
			for i := 0; i < iters; i++ {
				k := Kernel(i % int(numKernels))
				c := Counter(i % int(numCounters))
				shared.Inc(c, 1)
				shared.Add(k, time.Nanosecond)
				shared.AddBytes(k, 8)
				local.Inc(c, 1)
				if i%100 == 0 {
					shared.Merge(local)
					local.Reset()
				}
			}
			shared.Merge(local)
		}(w)
	}
	// Concurrent readers: the merge-on-read path used while ranks still run.
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				_ = shared.CountersMap()
				_ = shared.Fractions()
				_ = shared.Rate(FluxEdges, Flux)
				_ = shared.String()
				_ = NewArtifact("hammer", shared)
			}
		}()
	}
	wg.Wait()

	// Every writer contributed iters counter increments twice (direct +
	// merged local), writers*iters Adds, and 8 bytes per Add.
	var gotC int64
	for _, c := range AllCounters() {
		gotC += shared.Counter(c)
	}
	if want := int64(2 * writers * iters); gotC != want {
		t.Fatalf("counter total %d, want %d", gotC, want)
	}
	var gotN, gotB int64
	for _, k := range Kernels() {
		gotN += int64(shared.Count(k))
		gotB += shared.Bytes(k)
	}
	if want := int64(writers * iters); gotN != want {
		t.Fatalf("call total %d, want %d", gotN, want)
	}
	if want := int64(8 * writers * iters); gotB != want {
		t.Fatalf("byte total %d, want %d", gotB, want)
	}
}
