package prof

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"
)

// ArtifactSchema is the version tag every BENCH_*.json carries. Bump it when
// a field changes meaning or a required key is added; benchdiff refuses to
// compare artifacts whose schemas differ.
const ArtifactSchema = "fun3d-bench/v1"

// KernelRecord is one kernel's row in an artifact: accumulated time, call
// count, estimated bytes moved (for Fig-7b-style achieved-bandwidth
// figures), and the kernel's share of the profiled total.
type KernelRecord struct {
	Seconds  float64 `json:"seconds"`
	Calls    int64   `json:"calls"`
	Bytes    int64   `json:"bytes"`
	GBPerSec float64 `json:"gb_per_sec"`
	Fraction float64 `json:"fraction"`
}

// HostInfo pins the machine context an artifact was produced on, so a
// benchdiff across machines can be recognized as such.
type HostInfo struct {
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
}

// MeshInfo records the mesh an experiment ran on.
type MeshInfo struct {
	Vertices int `json:"vertices"`
	Edges    int `json:"edges"`
}

// Artifact is the machine-readable result of one experiment — the JSON
// sibling of the human-readable report. Required keys: schema, experiment,
// kernels (with every canonical kernel present, zeros allowed), counters.
type Artifact struct {
	Schema     string                  `json:"schema"`
	Experiment string                  `json:"experiment"`
	CreatedAt  string                  `json:"created_at,omitempty"`
	Host       HostInfo                `json:"host"`
	Config     map[string]any          `json:"config,omitempty"`
	Mesh       *MeshInfo               `json:"mesh,omitempty"`
	Kernels    map[string]KernelRecord `json:"kernels"`
	Counters   map[string]int64        `json:"counters"`
	Rates      map[string]float64      `json:"rates,omitempty"`
	Paper      map[string]float64      `json:"paper,omitempty"`
}

// NewArtifact builds an artifact for the named experiment from a metrics
// record. Every canonical kernel gets a row (zeros allowed — the schema
// promises the keys exist); counters carry the non-zero work counts; rates
// holds the derived per-second figures the paper's tables quote.
func NewArtifact(experiment string, m *Metrics) *Artifact {
	a := &Artifact{
		Schema:     ArtifactSchema,
		Experiment: experiment,
		CreatedAt:  time.Now().UTC().Format(time.RFC3339),
		Host: HostInfo{
			GoVersion:  runtime.Version(),
			GOOS:       runtime.GOOS,
			GOARCH:     runtime.GOARCH,
			NumCPU:     runtime.NumCPU(),
			GOMAXPROCS: runtime.GOMAXPROCS(0),
		},
		Kernels:  make(map[string]KernelRecord, int(numKernels)),
		Counters: m.CountersMap(),
		Rates:    make(map[string]float64),
	}
	total := m.Sum().Seconds()
	for _, k := range Kernels() {
		s := m.Total(k).Seconds()
		r := KernelRecord{
			Seconds: s,
			Calls:   int64(m.Count(k)),
			Bytes:   m.Bytes(k),
		}
		if s > 0 {
			r.GBPerSec = m.Bandwidth(k) / 1e9
			if total > 0 {
				r.Fraction = s / total
			}
		}
		a.Kernels[k.String()] = r
	}
	rate := func(name string, c Counter, k Kernel) {
		if v := m.Rate(c, k); v > 0 {
			a.Rates[name] = v
		}
	}
	rate("flux_edges_per_sec", FluxEdges, Flux)
	rate("grad_edges_per_sec", GradEdges, Gradient)
	rate("jac_edges_per_sec", JacEdges, Jacobian)
	rate("ilu_blocks_per_sec", ILUBlocks, ILU)
	rate("trsv_blocks_per_sec", TRSVBlocks, TRSV)
	rate("vec_elems_per_sec", VecElems, VecOps)
	rate("allreduce_per_sec", AllreduceCalls, Allreduce)
	// Collectives per Krylov iteration — the figure pipelined GMRES drives
	// to one and benchdiff can gate on (per-iteration, so it is stable
	// across run lengths in a way raw call counts are not).
	if it := m.Counter(GMRESIters); it > 0 {
		if c := m.Counter(KrylovAllreduceCalls); c > 0 {
			a.Rates["krylov_allreduce_per_gmres_iter"] = float64(c) / float64(it)
		}
		if b := m.Counter(KrylovAllreduceBytes); b > 0 {
			a.Rates["krylov_allreduce_bytes_per_gmres_iter"] = float64(b) / float64(it)
		}
	}
	// Modeled residual-pipeline traffic per edge swept — the locality
	// figure the fused cache-blocked pipeline drives down (~3x) and
	// benchdiff gates on. Both numerator (byte models) and denominator
	// (edge evaluations) are deterministic, so the rate is exact across
	// machines, like the collectives-per-iteration rate above.
	if fe := m.Counter(FluxEdges); fe > 0 {
		if b := m.Bytes(Flux) + m.Bytes(Gradient); b > 0 {
			a.Rates["residual_bytes_per_edge"] = float64(b) / float64(fe)
		}
	}
	// Modeled factorization traffic per block row eliminated — the rate
	// the deduplicated preconditioner stores drive down. Deterministic on
	// both sides (store-derived byte model over rows factorized), so it is
	// gated like residual_bytes_per_edge.
	if rows := m.Counter(ILURows); rows > 0 {
		if b := m.Bytes(ILU); b > 0 {
			a.Rates["ilu_bytes_per_row"] = float64(b) / float64(rows)
		}
	}
	// Modeled staging traffic per edge swept by the hierarchical staged
	// pipeline: gather-side (staging-buffer fills + halo gradient reads)
	// plus scatter-side (phi publication, closed-residual stores, span flux
	// buffer, phase-B application) bytes over staged edge evaluations. Both
	// sides are exact functions of the two-level tiling, so benchdiff gates
	// the rate exactly, like residual_bytes_per_edge.
	if se := m.Counter(StagedEdges); se > 0 {
		if b := m.Counter(StagedGatherBytes) + m.Counter(StagedScatterBytes); b > 0 {
			a.Rates["tile_staged_bytes_per_edge"] = float64(b) / float64(se)
		}
	}
	// Collective structure per call: message stages (and switch hops) per
	// simulated Allreduce. Both sides are exact functions of the collective
	// algorithm, topology, placement, and rank count — never of machine
	// speed — so benchdiff gates the stages rate exactly: a change means
	// the collective cost model or its wiring changed, not the host.
	if calls := m.Counter(AllreduceCalls); calls > 0 {
		if s := m.Counter(CollectiveStages); s > 0 {
			a.Rates["collective_stages_per_allreduce"] = float64(s) / float64(calls)
		}
		if h := m.Counter(CollectiveHops); h > 0 {
			a.Rates["collective_hops_per_allreduce"] = float64(h) / float64(calls)
		}
	}
	// Point-to-point route structure: switch hops per halo message. Like
	// the collective stage rate, both sides are exact functions of the
	// decomposition, placement, and topology — a change means the route
	// model, the placement mapper, or their wiring changed, never the
	// host — so benchdiff gates it exactly.
	if msgs := m.Counter(HaloMsgs); msgs > 0 {
		if h := m.Counter(PtPHops); h > 0 {
			a.Rates["ptp_hops_per_message"] = float64(h) / float64(msgs)
		}
	}
	// Multi-solve service throughput. Jobs per second of batch wall clock
	// is the headline figure but machine-dependent; steps per job is exact
	// (service batches run fixed step counts), so it is the one benchdiff
	// gates on — a change means the server is doing different WORK per
	// job (lost steps, duplicated solves, broken resume), not just
	// running on a slower machine.
	rate("service_jobs_per_sec", ServiceJobs, Service)
	if jobs := m.Counter(ServiceJobs); jobs > 0 {
		if st := m.Counter(ServiceSolveSteps); st > 0 {
			a.Rates["service_steps_per_job"] = float64(st) / float64(jobs)
		}
	}
	return a
}

// UpdateBaseline rewrites the committed baseline at baselinePath from the
// fresh artifact at freshPath, validating the fresh artifact first (and, if
// a baseline already exists, checking the two describe the same experiment).
// This is the one sanctioned way to refresh CI's quick-bench baseline after
// an intentional performance change.
func UpdateBaseline(freshPath, baselinePath string) error {
	fresh, err := ReadArtifact(freshPath)
	if err != nil {
		return fmt.Errorf("prof: fresh artifact: %w", err)
	}
	if old, err := ReadArtifact(baselinePath); err == nil && old.Experiment != fresh.Experiment {
		return fmt.Errorf("prof: baseline is experiment %q but fresh artifact is %q",
			old.Experiment, fresh.Experiment)
	}
	return fresh.WriteFile(baselinePath)
}

// Validate checks the schema version and required keys.
func (a *Artifact) Validate() error {
	if a.Schema != ArtifactSchema {
		return fmt.Errorf("prof: artifact schema %q, want %q", a.Schema, ArtifactSchema)
	}
	if a.Experiment == "" {
		return fmt.Errorf("prof: artifact has no experiment name")
	}
	if a.Kernels == nil {
		return fmt.Errorf("prof: artifact has no kernels section")
	}
	for _, k := range Kernels() {
		if _, ok := a.Kernels[k.String()]; !ok {
			return fmt.Errorf("prof: artifact missing kernel %q", k)
		}
	}
	if a.Counters == nil {
		return fmt.Errorf("prof: artifact has no counters section")
	}
	return nil
}

// WriteFile validates and writes the artifact as indented JSON.
func (a *Artifact) WriteFile(path string) error {
	if err := a.Validate(); err != nil {
		return err
	}
	data, err := json.MarshalIndent(a, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadArtifact loads and validates an artifact file.
func ReadArtifact(path string) (*Artifact, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	a := &Artifact{}
	if err := json.Unmarshal(data, a); err != nil {
		return nil, fmt.Errorf("prof: %s: %w", path, err)
	}
	if err := a.Validate(); err != nil {
		return nil, fmt.Errorf("prof: %s: %w", path, err)
	}
	return a, nil
}
