// Package prof provides the per-kernel stopwatch profile used to reproduce
// the paper's Fig 5 execution-time breakdown (flux 42%, TRSV 17%, ILU 16%,
// gradient 13%, Jacobian 7%, other 5%).
package prof

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Kernel identifies a profiled kernel category.
type Kernel int

// The categories of Fig 5.
const (
	Flux Kernel = iota
	Gradient
	Jacobian
	ILU
	TRSV
	VecOps
	Other
	numKernels
)

func (k Kernel) String() string {
	switch k {
	case Flux:
		return "flux"
	case Gradient:
		return "gradient"
	case Jacobian:
		return "jacobian"
	case ILU:
		return "ilu"
	case TRSV:
		return "trsv"
	case VecOps:
		return "vecops"
	case Other:
		return "other"
	}
	return fmt.Sprintf("Kernel(%d)", int(k))
}

// Kernels lists all categories in display order.
func Kernels() []Kernel {
	return []Kernel{Flux, TRSV, ILU, Gradient, Jacobian, VecOps, Other}
}

// Profile accumulates wall time per kernel. Not safe for concurrent Start
// on the same kernel; the solver drives kernels from one goroutine.
type Profile struct {
	total [numKernels]time.Duration
	count [numKernels]int
}

// Time runs f under kernel k's stopwatch.
func (p *Profile) Time(k Kernel, f func()) {
	if p == nil {
		f()
		return
	}
	t0 := time.Now()
	f()
	p.total[k] += time.Since(t0)
	p.count[k]++
}

// Add records an externally measured duration.
func (p *Profile) Add(k Kernel, d time.Duration) {
	if p == nil {
		return
	}
	p.total[k] += d
	p.count[k]++
}

// Total returns the accumulated time of kernel k.
func (p *Profile) Total(k Kernel) time.Duration { return p.total[k] }

// Count returns the number of invocations of kernel k.
func (p *Profile) Count(k Kernel) int { return p.count[k] }

// Sum returns the total across all kernels.
func (p *Profile) Sum() time.Duration {
	var s time.Duration
	for k := Kernel(0); k < numKernels; k++ {
		s += p.total[k]
	}
	return s
}

// Fractions returns each kernel's share of the total, mapping to Fig 5.
func (p *Profile) Fractions() map[Kernel]float64 {
	out := make(map[Kernel]float64, numKernels)
	sum := p.Sum().Seconds()
	if sum == 0 {
		return out
	}
	for k := Kernel(0); k < numKernels; k++ {
		out[k] = p.total[k].Seconds() / sum
	}
	return out
}

// Reset zeroes the profile.
func (p *Profile) Reset() {
	for k := Kernel(0); k < numKernels; k++ {
		p.total[k] = 0
		p.count[k] = 0
	}
}

// String renders the profile sorted by share, Fig-5 style.
func (p *Profile) String() string {
	type row struct {
		k Kernel
		d time.Duration
	}
	rows := make([]row, 0, numKernels)
	for k := Kernel(0); k < numKernels; k++ {
		rows = append(rows, row{k, p.total[k]})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].d > rows[j].d })
	sum := p.Sum().Seconds()
	var b strings.Builder
	for _, r := range rows {
		if r.d == 0 {
			continue
		}
		pct := 0.0
		if sum > 0 {
			pct = 100 * r.d.Seconds() / sum
		}
		fmt.Fprintf(&b, "%-9s %8.3fs %5.1f%% (%d calls)\n", r.k, r.d.Seconds(), pct, p.count[r.k])
	}
	return b.String()
}
