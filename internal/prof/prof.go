// Package prof provides the per-kernel metrics subsystem used to reproduce
// the paper's measured breakdowns: the Fig 5 execution-time profile (flux
// 42%, TRSV 17%, ILU 16%, gradient 13%, Jacobian 7%, other 5%), the Fig 7b
// bandwidth estimates, and the Fig 10 communication accounting (Allreduce
// growing to ~70% of runtime at 256 nodes).
//
// A Profile accumulates wall time, call counts, and bytes moved per kernel;
// a Metrics adds work counters (edges, BSR blocks, Allreduce calls/bytes,
// GMRES iterations, Newton steps). All mutation is atomic, so hybrid mpisim
// ranks — real goroutines since PR 1 — record into a shared instance without
// racing, and per-rank instances can be merged on read.
package prof

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
	"time"
)

// Kernel identifies a profiled kernel category.
type Kernel int

// The categories of Fig 5, plus the communication kernels of Fig 10
// (Allreduce, Halo) that only the distributed runs exercise.
const (
	Flux Kernel = iota
	Gradient
	Jacobian
	ILU
	TRSV
	VecOps
	Allreduce
	Halo
	// Service is the multi-solve server's batch wall clock: the elapsed
	// time an engine spent driving a set of jobs end to end (queueing +
	// solving across all workers), the denominator of jobs/sec.
	Service
	Other
	numKernels
)

func (k Kernel) String() string {
	switch k {
	case Flux:
		return "flux"
	case Gradient:
		return "gradient"
	case Jacobian:
		return "jacobian"
	case ILU:
		return "ilu"
	case TRSV:
		return "trsv"
	case VecOps:
		return "vecops"
	case Allreduce:
		return "allreduce"
	case Halo:
		return "halo"
	case Service:
		return "service"
	case Other:
		return "other"
	}
	return fmt.Sprintf("Kernel(%d)", int(k))
}

// Kernels lists all categories in display order.
func Kernels() []Kernel {
	return []Kernel{Flux, TRSV, ILU, Gradient, Jacobian, VecOps, Allreduce, Halo, Service, Other}
}

// Profile accumulates wall time, call counts, and bytes moved per kernel.
// All methods are safe for concurrent use: totals are atomic counters, so
// pool workers and hybrid mpisim ranks can record into one instance. A
// Profile must not be copied after first use.
type Profile struct {
	total [numKernels]atomic.Int64 // nanoseconds
	count [numKernels]atomic.Int64
	bytes [numKernels]atomic.Int64
}

// Time runs f under kernel k's stopwatch.
func (p *Profile) Time(k Kernel, f func()) {
	if p == nil {
		f()
		return
	}
	t0 := time.Now()
	f()
	p.total[k].Add(int64(time.Since(t0)))
	p.count[k].Add(1)
}

// Add records an externally measured duration. Safe for concurrent use.
func (p *Profile) Add(k Kernel, d time.Duration) {
	if p == nil {
		return
	}
	p.total[k].Add(int64(d))
	p.count[k].Add(1)
}

// AddBytes attributes an estimated memory traffic volume to kernel k —
// the input to the Fig-7b-style achieved-bandwidth estimate.
func (p *Profile) AddBytes(k Kernel, n int64) {
	if p == nil {
		return
	}
	p.bytes[k].Add(n)
}

// Total returns the accumulated time of kernel k.
func (p *Profile) Total(k Kernel) time.Duration {
	if p == nil {
		return 0
	}
	return time.Duration(p.total[k].Load())
}

// Count returns the number of invocations of kernel k.
func (p *Profile) Count(k Kernel) int {
	if p == nil {
		return 0
	}
	return int(p.count[k].Load())
}

// Bytes returns the memory traffic attributed to kernel k.
func (p *Profile) Bytes(k Kernel) int64 {
	if p == nil {
		return 0
	}
	return p.bytes[k].Load()
}

// Bandwidth returns kernel k's achieved bandwidth estimate in bytes/second
// (0 when no time or no bytes were recorded).
func (p *Profile) Bandwidth(k Kernel) float64 {
	s := p.Total(k).Seconds()
	if s == 0 {
		return 0
	}
	return float64(p.Bytes(k)) / s
}

// Sum returns the total across all kernels.
func (p *Profile) Sum() time.Duration {
	if p == nil {
		return 0
	}
	var s int64
	for k := Kernel(0); k < numKernels; k++ {
		s += p.total[k].Load()
	}
	return time.Duration(s)
}

// Fractions returns each kernel's share of the total, mapping to Fig 5.
func (p *Profile) Fractions() map[Kernel]float64 {
	out := make(map[Kernel]float64, numKernels)
	sum := p.Sum().Seconds()
	if sum == 0 {
		return out
	}
	for k := Kernel(0); k < numKernels; k++ {
		out[k] = p.Total(k).Seconds() / sum
	}
	return out
}

// Merge accumulates src into p (per-rank shards merged on read). src may be
// mutated concurrently; Merge folds in a consistent-enough snapshot.
func (p *Profile) Merge(src *Profile) {
	if p == nil || src == nil {
		return
	}
	for k := Kernel(0); k < numKernels; k++ {
		p.total[k].Add(src.total[k].Load())
		p.count[k].Add(src.count[k].Load())
		p.bytes[k].Add(src.bytes[k].Load())
	}
}

// Reset zeroes the profile.
func (p *Profile) Reset() {
	for k := Kernel(0); k < numKernels; k++ {
		p.total[k].Store(0)
		p.count[k].Store(0)
		p.bytes[k].Store(0)
	}
}

// String renders the profile sorted by share, Fig-5 style.
func (p *Profile) String() string {
	type row struct {
		k Kernel
		d time.Duration
	}
	rows := make([]row, 0, numKernels)
	for k := Kernel(0); k < numKernels; k++ {
		rows = append(rows, row{k, p.Total(k)})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].d > rows[j].d })
	sum := p.Sum().Seconds()
	var b strings.Builder
	for _, r := range rows {
		if r.d == 0 {
			continue
		}
		pct := 0.0
		if sum > 0 {
			pct = 100 * r.d.Seconds() / sum
		}
		fmt.Fprintf(&b, "%-9s %8.3fs %5.1f%% (%d calls)\n", r.k, r.d.Seconds(), pct, p.Count(r.k))
	}
	return b.String()
}
