package prof

import (
	"fmt"
	"sync/atomic"
)

// Counter identifies a monotonically increasing work counter. Where a
// Kernel measures time, a Counter measures work done — edges swept, BSR
// blocks eliminated, collectives issued — so derived rates (edges/s,
// blocks/s, bytes/collective) fall out of a Metrics without re-deriving
// them from mesh sizes at report time.
type Counter int

const (
	// FluxEdges counts edges swept by residual evaluations.
	FluxEdges Counter = iota
	// GradEdges counts edges swept by gradient/limiter evaluations.
	GradEdges
	// JacEdges counts edges swept by Jacobian assembly.
	JacEdges
	// ILUBlocks counts BSR blocks processed by numeric factorization.
	ILUBlocks
	// TRSVBlocks counts BSR blocks processed by triangular solves.
	TRSVBlocks
	// VecElems counts vector elements touched by the Vec* primitives.
	VecElems
	// AllreduceCalls counts global collectives (the Fig 10 driver).
	AllreduceCalls
	// AllreduceBytes counts payload bytes reduced across ranks.
	AllreduceBytes
	// HaloMsgs counts point-to-point halo messages sent.
	HaloMsgs
	// HaloBytes counts point-to-point payload bytes sent.
	HaloBytes
	// GMRESIters counts linear (Krylov) iterations.
	GMRESIters
	// NewtonSteps counts nonlinear pseudo-time steps.
	NewtonSteps
	// KrylovAllreduceCalls counts the collectives issued inside GMRES
	// solves only (a subset of AllreduceCalls): divided by GMRESIters it
	// is the collectives-per-iteration figure the pipelined variant drives
	// to one, and what benchdiff gates on.
	KrylovAllreduceCalls
	// KrylovAllreduceBytes counts the payload bytes of those collectives.
	KrylovAllreduceBytes
	// FaultsInjected counts rank crashes fired by the fault plan.
	FaultsInjected
	// FaultRestarts counts checkpoint/restart recoveries of a run.
	FaultRestarts
	// FaultRecomputedSteps counts pseudo-time steps redone after restoring
	// from a checkpoint (lost work replayed).
	FaultRecomputedSteps
	// FaultNoiseMicros is the per-rank average of injected straggler and
	// point-to-point jitter, in microseconds of virtual time.
	FaultNoiseMicros
	// ResidualSweeps counts full mesh sweeps spent per residual pipeline:
	// the fused cache-blocked path charges 1 per evaluation, the unfused
	// path 1 each for gradient, limiter, and flux.
	ResidualSweeps
	// ServiceJobs counts solve jobs completed by the multi-solve server;
	// divided by the Service kernel's seconds it is the jobs/sec
	// throughput figure.
	ServiceJobs
	// ServiceSolveSteps counts pseudo-time steps executed inside service
	// jobs; divided by ServiceJobs it is the deterministic steps-per-job
	// figure benchdiff gates on (fixed MaxSteps batches make it exact).
	ServiceSolveSteps
	// ILURows counts block rows eliminated by numeric factorizations; the
	// ILU kernel's modeled bytes divided by it is the ilu_bytes_per_row
	// rate benchdiff gates on (both sides deterministic, like
	// residual_bytes_per_edge).
	ILURows
	// StagedEdges counts edges swept by the staged hierarchical residual
	// pipeline (a subset of FluxEdges).
	StagedEdges
	// StagedGatherBytes counts the staged pipeline's modeled gather-side
	// traffic: staging-buffer fills plus halo-gradient edge reads.
	StagedGatherBytes
	// StagedScatterBytes counts the staged pipeline's modeled scatter-side
	// traffic: phi publication, closed-residual stores, the span flux
	// buffer, and the phase-B application. (Gather+scatter)/StagedEdges is
	// the tile_staged_bytes_per_edge rate benchdiff gates on — both sides
	// deterministic functions of the tiling.
	StagedScatterBytes
	// CollectiveStages counts the message stages executed by the simulated
	// collectives (intra- plus inter-node; see
	// perfmodel.CollectiveCost.Stages). Divided by AllreduceCalls it is the
	// stages-per-collective figure benchdiff gates on — an exact function
	// of (algorithm, topology, placement, rank count).
	CollectiveStages
	// CollectiveHops counts the switch hops traversed by the simulated
	// collectives' inter-node stages (perfmodel.CollectiveCost.Hops).
	CollectiveHops
	// PtPHops counts the switch hops traversed by point-to-point halo
	// messages (perfmodel.Route.Hops, booked by the receiver). Divided by
	// HaloMsgs it is the ptp_hops_per_message figure benchdiff gates on —
	// an exact function of (decomposition, placement, topology).
	PtPHops
	// PtPCrossNodeBytes counts the halo payload bytes whose endpoints sat
	// on different nodes (a subset of HaloBytes).
	PtPCrossNodeBytes
	// PtPCrossPodBytes counts the halo payload bytes whose endpoints sat
	// in different pods/groups (a subset of PtPCrossNodeBytes) — the
	// volume locality placement minimizes.
	PtPCrossPodBytes
	numCounters
)

func (c Counter) String() string {
	switch c {
	case FluxEdges:
		return "flux_edges"
	case GradEdges:
		return "grad_edges"
	case JacEdges:
		return "jac_edges"
	case ILUBlocks:
		return "ilu_blocks"
	case TRSVBlocks:
		return "trsv_blocks"
	case VecElems:
		return "vec_elems"
	case AllreduceCalls:
		return "allreduce_calls"
	case AllreduceBytes:
		return "allreduce_bytes"
	case HaloMsgs:
		return "halo_msgs"
	case HaloBytes:
		return "halo_bytes"
	case GMRESIters:
		return "gmres_iters"
	case NewtonSteps:
		return "newton_steps"
	case KrylovAllreduceCalls:
		return "krylov_allreduce_calls"
	case KrylovAllreduceBytes:
		return "krylov_allreduce_bytes"
	case FaultsInjected:
		return "faults_injected"
	case FaultRestarts:
		return "fault_restarts"
	case FaultRecomputedSteps:
		return "fault_recomputed_steps"
	case FaultNoiseMicros:
		return "fault_noise_us"
	case ResidualSweeps:
		return "residual_sweeps"
	case ServiceJobs:
		return "service_jobs"
	case ServiceSolveSteps:
		return "service_solve_steps"
	case ILURows:
		return "ilu_rows"
	case StagedEdges:
		return "staged_edges"
	case StagedGatherBytes:
		return "staged_gather_bytes"
	case StagedScatterBytes:
		return "staged_scatter_bytes"
	case CollectiveStages:
		return "collective_stages"
	case CollectiveHops:
		return "collective_hops"
	case PtPHops:
		return "ptp_hops"
	case PtPCrossNodeBytes:
		return "ptp_cross_node_bytes"
	case PtPCrossPodBytes:
		return "ptp_cross_pod_bytes"
	}
	return fmt.Sprintf("Counter(%d)", int(c))
}

// AllCounters lists every counter in declaration order.
func AllCounters() []Counter {
	out := make([]Counter, numCounters)
	for i := range out {
		out[i] = Counter(i)
	}
	return out
}

// Metrics is a Profile plus work counters: the full per-kernel record one
// solver instance (or one simulated rank) accumulates. Like Profile, all
// mutation is atomic and a Metrics must not be copied after first use.
// All methods are nil-receiver safe.
type Metrics struct {
	Profile
	counters [numCounters]atomic.Int64
}

// Inc adds n to counter c. Safe for concurrent use.
func (m *Metrics) Inc(c Counter, n int64) {
	if m == nil {
		return
	}
	m.counters[c].Add(n)
}

// Counter returns the current value of c.
func (m *Metrics) Counter(c Counter) int64 {
	if m == nil {
		return 0
	}
	return m.counters[c].Load()
}

// P returns the embedded Profile, or nil for a nil Metrics — the nil-safe
// way to hand a possibly-nil *Metrics to code expecting a *Profile.
func (m *Metrics) P() *Profile {
	if m == nil {
		return nil
	}
	return &m.Profile
}

// Merge accumulates src's timers and counters into m (per-rank shards
// merged on read).
func (m *Metrics) Merge(src *Metrics) {
	if m == nil || src == nil {
		return
	}
	m.Profile.Merge(&src.Profile)
	for c := Counter(0); c < numCounters; c++ {
		m.counters[c].Add(src.counters[c].Load())
	}
}

// Reset zeroes timers and counters.
func (m *Metrics) Reset() {
	if m == nil {
		return
	}
	m.Profile.Reset()
	for c := Counter(0); c < numCounters; c++ {
		m.counters[c].Store(0)
	}
}

// CountersMap exports all non-zero counters keyed by name — the JSON
// artifact's `counters` section.
func (m *Metrics) CountersMap() map[string]int64 {
	out := make(map[string]int64)
	if m == nil {
		return out
	}
	for c := Counter(0); c < numCounters; c++ {
		if v := m.counters[c].Load(); v != 0 {
			out[c.String()] = v
		}
	}
	return out
}

// Rate returns counter c per second of kernel k (e.g. edges/s of the flux
// kernel); 0 when no time was recorded.
func (m *Metrics) Rate(c Counter, k Kernel) float64 {
	if m == nil {
		return 0
	}
	s := m.Total(k).Seconds()
	if s == 0 {
		return 0
	}
	return float64(m.Counter(c)) / s
}
