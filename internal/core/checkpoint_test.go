package core

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"fun3d/internal/newton"
	"fun3d/internal/physics"
)

// solveAndSave runs a short solve under cfg and returns the checkpoint
// bytes plus the original-order state it froze.
func solveAndSave(t *testing.T, cfg Config) ([]byte, []float64) {
	t.Helper()
	app, err := NewApp(tinyMesh(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer app.Close()
	if _, err := app.Run(newton.Options{MaxSteps: 10, RelTol: 1e-3}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := app.SaveState(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), app.StateOriginalOrder()
}

// Checkpoints written without RCM must restore exactly into an RCM app —
// the inverse direction of TestCheckpointRoundtrip, pinning both sides of
// the original<->solver ordering map.
func TestCheckpointUnpermutedToRCM(t *testing.T) {
	plain := BaselineConfig()
	plain.RCM = false
	data, want := solveAndSave(t, plain)

	rcm, err := NewApp(tinyMesh(t), BaselineConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer rcm.Close()
	if rcm.Perm == nil {
		t.Fatal("RCM app has no permutation; test is vacuous")
	}
	if err := rcm.LoadState(bytes.NewReader(data)); err != nil {
		t.Fatal(err)
	}
	got := rcm.StateOriginalOrder()
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("state mismatch at %d: %v vs %v", i, got[i], want[i])
		}
	}
}

// Matching flow parameters load cleanly: no warning, parameters untouched.
func TestLoadStateParamsMatch(t *testing.T) {
	data, _ := solveAndSave(t, BaselineConfig())
	app, err := NewApp(tinyMesh(t), BaselineConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer app.Close()
	if err := app.LoadState(bytes.NewReader(data)); err != nil {
		t.Fatalf("matching parameters produced an error: %v", err)
	}
	want := BaselineConfig()
	if app.Cfg.AlphaDeg != want.AlphaDeg || app.Cfg.Beta != want.Beta {
		t.Fatalf("matching load changed parameters: alpha=%g beta=%g", app.Cfg.AlphaDeg, app.Cfg.Beta)
	}
}

// Mismatched flow parameters: the state is loaded, the checkpoint's
// parameters are adopted everywhere they are cached (Cfg, freestream,
// flux kernels), and a *ParamMismatchError comes back as a warning.
func TestLoadStateParamsMismatchAdopted(t *testing.T) {
	saved := BaselineConfig()
	saved.AlphaDeg, saved.Beta = 3.06, 5
	data, want := solveAndSave(t, saved)

	cfg := BaselineConfig()
	cfg.AlphaDeg, cfg.Beta = 1.25, 7
	app, err := NewApp(tinyMesh(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer app.Close()

	err = app.LoadState(bytes.NewReader(data))
	var pm *ParamMismatchError
	if !errors.As(err, &pm) {
		t.Fatalf("expected *ParamMismatchError, got %v", err)
	}
	if pm.CkptAlphaDeg != 3.06 || pm.CkptBeta != 5 || pm.CfgAlphaDeg != 1.25 || pm.CfgBeta != 7 {
		t.Fatalf("mismatch payload wrong: %+v", pm)
	}
	// State loaded despite the warning.
	got := app.StateOriginalOrder()
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("warning dropped the state: mismatch at %d", i)
		}
	}
	// Parameters adopted and re-derived in every cached location.
	if app.Cfg.AlphaDeg != 3.06 || app.Cfg.Beta != 5 {
		t.Fatalf("checkpoint parameters not adopted: alpha=%g beta=%g", app.Cfg.AlphaDeg, app.Cfg.Beta)
	}
	if app.QInf != physics.FreeStream(3.06) {
		t.Fatalf("freestream not re-derived: %+v", app.QInf)
	}
	if app.Kern.QInf != app.QInf || app.Kern.Beta != 5 {
		t.Fatalf("flux kernels kept stale parameters: qinf=%+v beta=%g", app.Kern.QInf, app.Kern.Beta)
	}
	// The adopted-parameter app must now continue the checkpoint's problem:
	// a restart converges from the near-converged state (it would diverge
	// from the residual of a different angle of attack).
	r, err := app.Run(newton.Options{MaxSteps: 30})
	if err != nil {
		t.Fatal(err)
	}
	if !r.History.Converged {
		t.Fatalf("restart with adopted parameters did not converge: %+v", r.History)
	}
}

// A truncated or corrupted checkpoint must fail with a clear decode error
// and leave the app's state untouched — not load garbage.
func TestLoadStateTruncatedAndCorrupt(t *testing.T) {
	data, _ := solveAndSave(t, BaselineConfig())
	app, err := NewApp(tinyMesh(t), BaselineConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer app.Close()
	before := append([]float64(nil), app.Q...)

	for _, tc := range []struct {
		name string
		data []byte
	}{
		{"truncated", data[:len(data)/2]},
		{"empty", nil},
		{"garbage", []byte("not a gob stream at all")},
	} {
		err := app.LoadState(bytes.NewReader(tc.data))
		if err == nil {
			t.Fatalf("%s checkpoint accepted", tc.name)
		}
		if !strings.Contains(err.Error(), "checkpoint decode") {
			t.Fatalf("%s: unclear error: %v", tc.name, err)
		}
		for i := range before {
			if app.Q[i] != before[i] {
				t.Fatalf("%s checkpoint modified state at %d", tc.name, i)
			}
		}
	}
}
