package core

import (
	"fmt"

	"fun3d/internal/flux"
	"fun3d/internal/mesh"
	"fun3d/internal/reorder"
	"fun3d/internal/sparse"
	"fun3d/internal/tile"
)

// ArtifactSpec is the structural subset of a Config: the fields that shape
// the immutable solver artifacts (reordered mesh, partition, tile cover,
// Jacobian pattern) as opposed to the per-solve mutable state. Two Configs
// with equal specs can share one Artifact; everything else in a Config
// (flow parameters, kernel code variants, tolerances) lives with the App.
// ArtifactSpec is comparable, so it can key a cache directly.
type ArtifactSpec struct {
	// Order is the resolved vertex ordering (never KindUnset: the legacy
	// RCM flag is folded in).
	Order reorder.Kind
	// Threads/Strategy/PartitionSeed shape the owner-writes decomposition.
	Threads       int
	Strategy      flux.Strategy
	PartitionSeed uint64
	// Fused/TileEdges shape the fused pipeline's edge-tile cover.
	// TileEdges is the resolved span size (0 when neither fused nor staged).
	Fused     bool
	TileEdges int
	// Staged/InnerTileEdges shape the staged pipeline's two-level tile
	// hierarchy. InnerTileEdges is the resolved inner size (0 when not
	// staged).
	Staged         bool
	InnerTileEdges int
}

// SpecOf resolves cfg's structural fields into an ArtifactSpec, applying
// the same normalizations NewApp applies (threads floor of 1, Sequential
// strategy when unthreaded, RCM-flag fallback, default tile size).
func SpecOf(cfg Config) ArtifactSpec {
	s := ArtifactSpec{
		Threads:       cfg.Threads,
		Strategy:      cfg.Strategy,
		PartitionSeed: cfg.PartitionSeed,
		Fused:         cfg.Fused,
		Staged:        cfg.Staged,
	}
	if s.Threads < 1 {
		s.Threads = 1
	}
	if s.Threads == 1 {
		s.Strategy = flux.Sequential
	}
	s.Order = cfg.Order
	if s.Order == reorder.KindUnset {
		if cfg.RCM {
			s.Order = reorder.KindRCM
		} else {
			s.Order = reorder.KindNatural
		}
	}
	if s.Fused || s.Staged {
		s.TileEdges = cfg.TileEdges
		if s.TileEdges <= 0 {
			s.TileEdges = tile.DefaultEdgesPerTile
		}
	}
	if s.Staged {
		s.InnerTileEdges = cfg.InnerTileEdges
		if s.InnerTileEdges <= 0 {
			s.InnerTileEdges = tile.DefaultInnerEdgesPerTile
		}
	}
	return s
}

// Artifact holds the immutable, shareable half of a solver: everything
// built once from (mesh, structural config) and then only read. Any number
// of Apps — including Apps solving concurrently on different goroutines —
// may be built over one Artifact with NewAppFromArtifact; nothing here is
// written after BuildArtifact returns.
type Artifact struct {
	Spec ArtifactSpec
	// Mesh is the reordered mesh every App runs on; Perm maps
	// original->solver vertex numbering (nil for natural order) and Order
	// records the locality effect.
	Mesh  *mesh.Mesh
	Perm  []int32
	Order OrderStats
	// Part is the per-thread owner-writes decomposition (trivial for
	// Sequential/Atomic).
	Part *flux.Partition
	// Cover is the fused/staged pipelines' tiling + owned-cover CSRs (nil
	// unless Spec.Fused or Spec.Staged; hierarchical when Spec.Staged).
	Cover *flux.Cover
	// jacPattern is the zero-valued first-order Jacobian pattern; per-App
	// Jacobians are structure-shared clones of it.
	jacPattern *sparse.BSR
}

// validateCfg checks the Config invariants shared by every construction
// path (the checks NewApp has always performed).
func validateCfg(cfg Config) error {
	if cfg.Fused {
		if cfg.SoANodeData {
			return fmt.Errorf("core: Fused requires AoS node data")
		}
		if !cfg.SecondOrder || !cfg.Limiter {
			return fmt.Errorf("core: Fused requires SecondOrder and Limiter")
		}
	}
	if cfg.Staged {
		if cfg.SoANodeData {
			return fmt.Errorf("core: Staged requires AoS node data")
		}
		if !cfg.SecondOrder || !cfg.Limiter {
			return fmt.Errorf("core: Staged requires SecondOrder and Limiter")
		}
		if cfg.Fused {
			return fmt.Errorf("core: Staged and Fused are mutually exclusive ladder rungs")
		}
	}
	return nil
}

// BuildArtifact constructs the shared immutable artifacts for solving on m
// under cfg's structural fields: the reordered mesh, the thread partition,
// the fused tile cover (when cfg.Fused), and the Jacobian pattern. m is not
// modified; a reordered copy is made when an ordering applies.
func BuildArtifact(m *mesh.Mesh, cfg Config) (*Artifact, error) {
	if err := validateCfg(cfg); err != nil {
		return nil, err
	}
	art := &Artifact{Spec: SpecOf(cfg)}
	var err error
	art.Mesh, art.Perm, art.Order, err = ReorderMesh(m, art.Spec.Order)
	if err != nil {
		return nil, err
	}
	art.Part, err = flux.NewPartition(art.Mesh, art.Spec.Threads, art.Spec.Strategy, art.Spec.PartitionSeed)
	if err != nil {
		return nil, err
	}
	if art.Spec.Fused || art.Spec.Staged {
		art.Cover = flux.BuildCover(art.Mesh, art.Part, art.Spec.TileEdges, art.Spec.InnerTileEdges)
	}
	art.jacPattern = sparse.NewBSRFromAdj(art.Mesh.AdjPtr, art.Mesh.Adj)
	return art, nil
}
