package core

import (
	"bytes"
	"math"
	"runtime"
	"testing"

	"fun3d/internal/mesh"
	"fun3d/internal/newton"
	"fun3d/internal/prof"
)

func tinyMesh(t testing.TB) *mesh.Mesh {
	m, err := mesh.Generate(mesh.SpecTiny())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestBaselineConverges(t *testing.T) {
	m := tinyMesh(t)
	app, err := NewApp(m, BaselineConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer app.Close()
	r, err := app.Run(newton.Options{MaxSteps: 60})
	if err != nil {
		t.Fatal(err)
	}
	if !r.History.Converged {
		t.Fatalf("baseline not converged: %+v", r.History)
	}
	t.Logf("baseline: %d steps, %d linear iters, %v",
		len(r.History.Steps), r.History.LinearIters, r.WallTime)
	t.Logf("profile:\n%s", app.Prof)
}

func TestOptimizedMatchesBaselineSolution(t *testing.T) {
	m := tinyMesh(t)
	base, err := NewApp(m, BaselineConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer base.Close()
	if _, err := base.Run(newton.Options{MaxSteps: 60}); err != nil {
		t.Fatal(err)
	}

	nThreads := min(4, runtime.NumCPU())
	opt, err := NewApp(m, OptimizedConfig(nThreads))
	if err != nil {
		t.Fatal(err)
	}
	defer opt.Close()
	r, err := opt.Run(newton.Options{MaxSteps: 60})
	if err != nil {
		t.Fatal(err)
	}
	if !r.History.Converged {
		t.Fatal("optimized not converged")
	}

	// Both solve the same discrete problem: compare in ORIGINAL ordering
	// (both use RCM so orderings coincide, but go through the API).
	qb := base.StateOriginalOrder()
	qo := opt.StateOriginalOrder()
	maxDiff := 0.0
	for i := range qb {
		if d := math.Abs(qb[i] - qo[i]); d > maxDiff {
			maxDiff = d
		}
	}
	if maxDiff > 1e-3 {
		t.Fatalf("optimized solution differs from baseline by %g", maxDiff)
	}
}

func TestRCMToggleSameSolution(t *testing.T) {
	m := tinyMesh(t)
	var states [2][]float64
	for i, rcm := range []bool{false, true} {
		cfg := BaselineConfig()
		cfg.RCM = rcm
		app, err := NewApp(m, cfg)
		if err != nil {
			t.Fatal(err)
		}
		r, err := app.Run(newton.Options{MaxSteps: 60})
		if err != nil {
			t.Fatal(err)
		}
		if !r.History.Converged {
			t.Fatalf("rcm=%v not converged", rcm)
		}
		states[i] = app.StateOriginalOrder()
		app.Close()
	}
	maxDiff := 0.0
	for i := range states[0] {
		if d := math.Abs(states[0][i] - states[1][i]); d > maxDiff {
			maxDiff = d
		}
	}
	if maxDiff > 1e-3 {
		t.Fatalf("RCM changes the converged solution by %g", maxDiff)
	}
}

func TestSurfacePressure(t *testing.T) {
	m := tinyMesh(t)
	app, err := NewApp(m, BaselineConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer app.Close()
	if _, err := app.Run(newton.Options{MaxSteps: 60}); err != nil {
		t.Fatal(err)
	}
	cp := app.SurfacePressure()
	if len(cp) == 0 {
		t.Fatal("no wall samples")
	}
	// Physically: somewhere on the wing the pressure deviates from
	// freestream (stagnation/suction).
	maxCp := 0.0
	for _, s := range cp {
		if a := math.Abs(s.Cp); a > maxCp {
			maxCp = a
		}
	}
	if maxCp < 1e-3 {
		t.Fatalf("flat Cp distribution: max|Cp|=%g", maxCp)
	}
}

func TestProfileHasFig5Categories(t *testing.T) {
	m := tinyMesh(t)
	cfg := BaselineConfig()
	cfg.SecondOrder = true
	cfg.Limiter = true
	app, err := NewApp(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer app.Close()
	if _, err := app.Run(newton.Options{MaxSteps: 20, RelTol: 1e-4}); err != nil {
		t.Fatal(err)
	}
	fr := app.Prof.Fractions()
	for _, k := range []prof.Kernel{prof.Flux, prof.Gradient, prof.Jacobian, prof.ILU, prof.TRSV} {
		if fr[k] <= 0 {
			t.Fatalf("kernel %v missing from profile: %v", k, fr)
		}
	}
	if app.Describe() == "" {
		t.Fatal("empty description")
	}
}

func TestResetState(t *testing.T) {
	m := tinyMesh(t)
	app, err := NewApp(m, BaselineConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer app.Close()
	if _, err := app.Run(newton.Options{MaxSteps: 30}); err != nil {
		t.Fatal(err)
	}
	app.ResetState()
	for v := 0; v < app.Mesh.NumVertices(); v++ {
		for c := 0; c < 4; c++ {
			if app.Q[v*4+c] != app.QInf[c] {
				t.Fatal("reset did not restore freestream")
			}
		}
	}
}

func TestConfigVariantsConverge(t *testing.T) {
	m := tinyMesh(t)
	nThreads := min(4, runtime.NumCPU())
	variants := map[string]Config{}

	atomic := OptimizedConfig(nThreads)
	atomic.Strategy = 1 // flux.Atomic
	atomic.SIMD = false
	variants["atomic"] = atomic

	lvl := OptimizedConfig(nThreads)
	lvl.Sched = 1 // precond.SchedLevel
	variants["level-sched"] = lvl

	sub := BaselineConfig()
	sub.Subdomains = 4
	sub.FillLevel = 0
	variants["schwarz-4"] = sub

	for name, cfg := range variants {
		app, err := NewApp(m, cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		r, err := app.Run(newton.Options{MaxSteps: 80})
		app.Close()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !r.History.Converged {
			t.Fatalf("%s: not converged", name)
		}
	}
}

func TestSurfaceForces(t *testing.T) {
	m := tinyMesh(t)
	app, err := NewApp(m, BaselineConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer app.Close()
	// At freestream (p = 0 everywhere) the pressure force is exactly zero.
	f0 := app.SurfaceForces(0)
	if f0.Fx != 0 || f0.Fz != 0 {
		t.Fatalf("freestream force nonzero: %+v", f0)
	}
	if _, err := app.Run(newton.Options{MaxSteps: 60}); err != nil {
		t.Fatal(err)
	}
	f := app.SurfaceForces(0)
	if f.SRef <= 0 {
		t.Fatalf("bad reference area: %+v", f)
	}
	// A lifting wing at positive alpha: CL should be positive and O(0.1).
	if f.CL <= 0 || f.CL > 5 {
		t.Fatalf("implausible CL: %+v", f)
	}
	t.Logf("forces: CL=%.4f CD=%.4f Sref=%.4f", f.CL, f.CD, f.SRef)
	// Explicit sref is honored.
	f2 := app.SurfaceForces(2 * f.SRef)
	if math.Abs(f2.CL-f.CL/2) > 1e-12 {
		t.Fatalf("sref scaling wrong: %v vs %v", f2.CL, f.CL/2)
	}
}

func TestCheckpointRoundtrip(t *testing.T) {
	m := tinyMesh(t)
	app, err := NewApp(m, BaselineConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer app.Close()
	if _, err := app.Run(newton.Options{MaxSteps: 30}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := app.SaveState(&buf); err != nil {
		t.Fatal(err)
	}
	want := app.StateOriginalOrder()

	// Restore into a DIFFERENTLY configured app (no RCM => different
	// internal ordering); original-order states must agree exactly.
	cfg := BaselineConfig()
	cfg.RCM = false
	app2, err := NewApp(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer app2.Close()
	if err := app2.LoadState(&buf); err != nil {
		t.Fatal(err)
	}
	got := app2.StateOriginalOrder()
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("checkpoint mismatch at %d", i)
		}
	}
	// Restart from the checkpoint: the initial residual must already be
	// tiny (the loaded state is the converged one; the solver then chases
	// its fresh relative tolerance from there).
	r, err := app2.Run(newton.Options{MaxSteps: 10})
	if err != nil {
		t.Fatal(err)
	}
	if r.History.RNorm0 > 1e-5 {
		t.Fatalf("restart initial residual too large: %g", r.History.RNorm0)
	}
	if !r.History.Converged {
		t.Fatalf("restart did not converge: %+v", r.History)
	}

	// Size mismatch rejected.
	var buf2 bytes.Buffer
	if err := app.SaveState(&buf2); err != nil {
		t.Fatal(err)
	}
	mBig, err := mesh.Generate(mesh.GenSpec{NX: 12, NY: 9, NZ: 9, Wing: mesh.M6Wing(), HasWing: true, Shuffle: true, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	app3, err := NewApp(mBig, BaselineConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer app3.Close()
	if err := app3.LoadState(&buf2); err == nil {
		t.Fatal("size mismatch accepted")
	}
}
