package core

import (
	"errors"
	"sync"
	"testing"

	"fun3d/internal/newton"
)

// Close must be idempotent and safe to call from multiple goroutines: the
// old implementation's unguarded flag let two racing Closes both reach
// Pool.Close (and a Run racing a Close panic on the closed pool).
func TestCloseIdempotent(t *testing.T) {
	m := tinyMesh(t)
	app, err := NewApp(m, OptimizedConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			app.Close()
		}()
	}
	wg.Wait()
	app.Close() // and again, sequentially
	if _, err := app.Run(newton.Options{MaxSteps: 1}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Run after Close: got %v, want ErrClosed", err)
	}
}

// A Close issued while a solve is in flight must wait for it rather than
// tearing the worker pool down underneath it, and any Run entered after
// Close must fail cleanly with ErrClosed.
func TestCloseRacesRun(t *testing.T) {
	m := tinyMesh(t)
	for iter := 0; iter < 4; iter++ {
		app, err := NewApp(m, OptimizedConfig(2))
		if err != nil {
			t.Fatal(err)
		}
		done := make(chan error, 2)
		go func() {
			_, err := app.Run(newton.Options{MaxSteps: 3})
			done <- err
		}()
		go func() {
			_, err := app.Run(newton.Options{MaxSteps: 3})
			done <- err
		}()
		app.Close()
		for i := 0; i < 2; i++ {
			if err := <-done; err != nil && !errors.Is(err, ErrClosed) {
				t.Fatalf("racing Run: got %v, want nil or ErrClosed", err)
			}
		}
	}
}

// Apps built over one shared Artifact must behave exactly like Apps built
// by NewApp: same ordering stats, same converged trajectory, bit for bit.
func TestArtifactSharedApps(t *testing.T) {
	m := tinyMesh(t)
	cfg := OptimizedConfig(2)
	cfg.SecondOrder, cfg.Limiter, cfg.Fused = true, true, true

	ref, err := NewApp(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	opt := newton.Options{MaxSteps: 5}
	rref, err := ref.Run(opt)
	if err != nil {
		t.Fatal(err)
	}

	art, err := BuildArtifact(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			app, err := NewAppFromArtifact(art, cfg)
			if err != nil {
				t.Error(err)
				return
			}
			defer app.Close()
			r, err := app.Run(opt)
			if err != nil {
				t.Error(err)
				return
			}
			if len(r.History.Steps) != len(rref.History.Steps) {
				t.Errorf("shared-artifact app: %d steps, want %d", len(r.History.Steps), len(rref.History.Steps))
				return
			}
			for k, s := range r.History.Steps {
				if s != rref.History.Steps[k] {
					t.Errorf("step %d differs: %+v vs %+v", k, s, rref.History.Steps[k])
				}
			}
		}()
	}
	wg.Wait()
}

// The spec guard must reject a config whose structural fields do not match
// the artifact.
func TestArtifactSpecMismatch(t *testing.T) {
	m := tinyMesh(t)
	art, err := BuildArtifact(m, OptimizedConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	bad := OptimizedConfig(4) // different thread count -> different partition
	if _, err := NewAppFromArtifact(art, bad); err == nil {
		t.Fatal("NewAppFromArtifact accepted a mismatched spec")
	}
}

// Poisoned instances must recover exactly: Recycle + SetAlpha on a
// NaN-poisoned App reproduces a fresh App's trajectory bit for bit.
func TestPoisonRecycleExact(t *testing.T) {
	m := tinyMesh(t)
	cfg := OptimizedConfig(2)
	cfg.SecondOrder, cfg.Limiter = true, true
	cfg.AlphaDeg = 2.5

	fresh, err := NewApp(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer fresh.Close()
	opt := newton.Options{MaxSteps: 4}
	want, err := fresh.Run(opt)
	if err != nil {
		t.Fatal(err)
	}

	app, err := NewApp(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer app.Close()
	if _, err := app.Run(opt); err != nil { // dirty the instance
		t.Fatal(err)
	}
	app.PoisonState()
	app.Recycle()
	app.SetAlpha(2.5)
	got, err := app.Run(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.History.Steps) != len(want.History.Steps) {
		t.Fatalf("recycled app: %d steps, want %d", len(got.History.Steps), len(want.History.Steps))
	}
	for k := range got.History.Steps {
		if got.History.Steps[k] != want.History.Steps[k] {
			t.Fatalf("step %d differs after poison+recycle: %+v vs %+v",
				k, got.History.Steps[k], want.History.Steps[k])
		}
	}
}
