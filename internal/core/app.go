// Package core assembles the full application the paper studies — the
// PETSc-FUN3D equivalent: an unstructured-mesh incompressible Euler solver
// driven by pseudo-transient Newton-Krylov-Schwarz, with every shared-memory
// optimization switchable so the benchmark harness can walk the paper's
// optimization ladder (baseline → +threading → +data layout → +SIMD →
// +prefetch; level-scheduled vs P2P recurrences; ILU-0 vs ILU-1; threaded
// vs sequential vector primitives).
package core

import (
	"fmt"
	"math"
	"sync"
	"time"

	"fun3d/internal/flux"
	"fun3d/internal/mesh"
	"fun3d/internal/newton"
	"fun3d/internal/par"
	"fun3d/internal/physics"
	"fun3d/internal/precond"
	"fun3d/internal/prof"
	"fun3d/internal/reorder"
	"fun3d/internal/sparse"
	"fun3d/internal/vecop"
)

// Config selects the solver configuration and optimization level.
type Config struct {
	// Threads is the worker count; <=1 runs sequentially.
	Threads int
	// Strategy is the edge-loop parallelization (ignored when Threads<=1).
	Strategy flux.Strategy
	// SoANodeData uses the baseline plane layout for the state vector in
	// the flux kernel.
	SoANodeData bool
	// SIMD enables edge-batch restructuring; Prefetch the lookahead touches.
	SIMD, Prefetch bool
	// RCM reorders the mesh with Reverse Cuthill-McKee (the paper always
	// does; switchable to quantify it).
	RCM bool
	// Order selects the vertex ordering explicitly (natural, RCM, Morton,
	// Hilbert). When left at reorder.KindUnset, the legacy RCM flag
	// decides (RCM or natural).
	Order reorder.Kind
	// Sched picks the sparse-recurrence parallelization.
	Sched precond.Scheduling
	// FillLevel is the ILU(k) fill level; the zero value is ILU(0). The
	// paper's default, ILU(1), is what BaselineConfig and OptimizedConfig
	// set — a zero-valued Config deliberately keeps ILU(0), matching the
	// CLI defaults of cmd/clustersim.
	FillLevel int
	// Subdomains is the additive-Schwarz block count (1 = global ILU).
	Subdomains int
	// Dedup content-deduplicates the preconditioner's value stores after
	// each factorization (precond.Options.Dedup): repeated 4x4 blocks are
	// stored once, the triangular solves read them through a per-slot
	// index with run batching, and the ILU/TRSV byte accounting reflects
	// the deduped stores. Results are bit-identical to the dense stores.
	// Per-solve, not structural: Apps with and without it share artifacts.
	Dedup bool
	// ParallelVecOps threads the vector primitives (the PETSc routines the
	// paper says are NOT threaded out of the box).
	ParallelVecOps bool
	// SecondOrder/Limiter select the residual discretization.
	SecondOrder, Limiter bool
	// Fused runs the second-order limited residual as the cache-blocked
	// single-sweep pipeline (the ladder's `+fused` rung). Requires
	// SecondOrder, Limiter and AoS node data.
	Fused bool
	// TileEdges overrides the fused/staged pipelines' outer edge-tile size
	// (0 = tile.DefaultEdgesPerTile).
	TileEdges int
	// Staged runs the second-order limited residual as the hierarchical
	// staged pipeline (the ladder's `+staged` rung): LLC outer spans of L2
	// inner tiles with dense per-tile SoA staging, tile-interior SIMD
	// batching, and coloring-based parallelism. Requires SecondOrder,
	// Limiter and AoS node data; mutually exclusive with Fused.
	Staged bool
	// InnerTileEdges overrides the staged pipeline's inner (L2) tile size
	// (0 = tile.DefaultInnerEdgesPerTile).
	InnerTileEdges int
	// PFDist overrides the flux prefetch lookahead distance in edges
	// (0 = flux.DefaultPFDist). Only meaningful with Prefetch.
	PFDist int
	// PipelinedGMRES selects the single-reduction-per-iteration Krylov
	// variant (newton.Options.Pipelined) for every solve this app runs.
	PipelinedGMRES bool

	// Flow setup.
	AlphaDeg float64
	Beta     float64

	// PartitionSeed seeds the multilevel partitioner.
	PartitionSeed uint64
}

// BaselineConfig mirrors the paper's out-of-the-box single-threaded code:
// RCM + interlaced (AoS) node data + BCSR (the 1999 optimizations are
// retained), but no threading, no SIMD restructuring, no prefetch,
// sequential recurrences, ILU(1), sequential vector primitives.
func BaselineConfig() Config {
	return Config{
		Threads:   1,
		Strategy:  flux.Sequential,
		RCM:       true,
		Sched:     precond.SchedSequential,
		FillLevel: 1,
		AlphaDeg:  3.06,
		Beta:      5,
	}
}

// OptimizedConfig is the paper's fully optimized single-node configuration:
// METIS-partitioned owner-writes threading, AoS node data, SIMD batching,
// prefetch, P2P-sparsified recurrences, threaded vector primitives.
func OptimizedConfig(threads int) Config {
	c := BaselineConfig()
	c.Threads = threads
	c.Strategy = flux.ReplicateMETIS
	c.SIMD = true
	c.Prefetch = true
	c.Sched = precond.SchedP2P
	c.ParallelVecOps = true
	return c
}

// App is a ready-to-run solver instance: the per-solve MUTABLE half of the
// solver (state vector, Jacobian values, preconditioner factors, Newton and
// Krylov workspace, worker pool, metrics) bound to the immutable shared
// half (an Artifact). Apps built over the same Artifact may run
// concurrently on different goroutines; one App's methods are not
// goroutine-safe among themselves except where documented (Close).
type App struct {
	Cfg   Config
	Art   *Artifact  // the shared immutable half
	Mesh  *mesh.Mesh // == Art.Mesh: the (possibly reordered) mesh the solver runs on
	Perm  []int32    // == Art.Perm: original->solver vertex permutation (nil if none)
	Pool  *par.Pool
	Kern  *flux.Kernels
	Pre   *precond.ASM
	A     *sparse.BSR
	Step  *newton.Stepper
	Prof  *prof.Metrics
	Q     []float64 // current state, AoS over solver numbering
	QInf  physics.State
	Order OrderStats // the applied vertex ordering and its locality effect

	// mu serializes Run against Close: a Close issued while a Run is in
	// flight blocks until the step loop returns (cancel via
	// SolveOptions.Ctx to make that prompt), and a Run entered after Close
	// fails cleanly instead of panicking on the closed worker pool.
	mu     sync.Mutex
	closed bool
}

// NewApp builds an application instance on mesh m (not modified; a
// reordered copy is made when an ordering applies). It is shorthand for
// BuildArtifact + NewAppFromArtifact; callers running many solves on one
// mesh should build the Artifact once and share it.
func NewApp(m *mesh.Mesh, cfg Config) (*App, error) {
	art, err := BuildArtifact(m, cfg)
	if err != nil {
		return nil, err
	}
	return NewAppFromArtifact(art, cfg)
}

// NewAppFromArtifact builds a solver instance over the shared immutable
// artifacts in art. cfg's structural fields must match the spec art was
// built for (SpecOf(cfg) == art.Spec); everything per-solve — state vector,
// Jacobian values, ILU factors, Newton/Krylov workspace, the worker pool,
// metrics — is freshly allocated, so the returned App shares nothing
// mutable with other Apps over the same artifact.
func NewAppFromArtifact(art *Artifact, cfg Config) (*App, error) {
	if cfg.Beta <= 0 {
		cfg.Beta = 5
	}
	if err := validateCfg(cfg); err != nil {
		return nil, err
	}
	if spec := SpecOf(cfg); spec != art.Spec {
		return nil, fmt.Errorf("core: config spec %+v does not match artifact spec %+v", spec, art.Spec)
	}
	app := &App{
		Cfg: cfg, Art: art, Prof: &prof.Metrics{},
		Mesh: art.Mesh, Perm: art.Perm, Order: art.Order,
	}
	if art.Spec.Threads > 1 {
		app.Pool = par.NewPool(art.Spec.Threads)
	}
	app.QInf = physics.FreeStream(cfg.AlphaDeg)
	app.Kern = flux.NewKernels(app.Mesh, cfg.Beta, app.QInf, app.Pool, art.Part, flux.Config{
		Strategy:       art.Spec.Strategy,
		SoANodeData:    cfg.SoANodeData,
		SIMD:           cfg.SIMD,
		Prefetch:       cfg.Prefetch,
		PFDist:         cfg.PFDist,
		TileEdges:      cfg.TileEdges,
		Staged:         cfg.Staged,
		InnerTileEdges: cfg.InnerTileEdges,
	})
	if art.Cover != nil {
		app.Kern.SetCover(art.Cover)
	}
	app.A = art.jacPattern.CloneStructure()
	sched := cfg.Sched
	if app.Pool == nil {
		sched = precond.SchedSequential
	}
	nsub := cfg.Subdomains
	if nsub <= 0 {
		nsub = 1
	}
	var err error
	app.Pre, err = precond.New(app.A, app.Pool, precond.Options{
		Subdomains: nsub,
		FillLevel:  cfg.FillLevel,
		Sched:      sched,
		Dedup:      cfg.Dedup,
	})
	if err != nil {
		app.Close()
		return nil, err
	}
	ops := vecop.Seq
	if cfg.ParallelVecOps && app.Pool != nil {
		ops = vecop.New(app.Pool)
	}
	app.Step = newton.NewStepper(app.Kern, app.Pre, app.A, ops, app.Prof)
	app.ResetState()
	return app, nil
}

// SetAlpha retargets the freestream angle of attack — the per-job flow
// setup on a recycled pooled instance — and reinitializes the state to the
// new freestream. The result is indistinguishable from an App freshly
// constructed with Cfg.AlphaDeg = alphaDeg: the kernels' farfield boundary
// flux reads the updated freestream.
func (app *App) SetAlpha(alphaDeg float64) {
	app.Cfg.AlphaDeg = alphaDeg
	app.QInf = physics.FreeStream(alphaDeg)
	app.Kern.QInf = app.QInf
	app.ResetState()
}

// ResetState reinitializes the state vector to freestream.
func (app *App) ResetState() {
	nv := app.Mesh.NumVertices()
	if app.Q == nil {
		app.Q = make([]float64, nv*4)
	}
	for v := 0; v < nv; v++ {
		copy(app.Q[v*4:v*4+4], app.QInf[:])
	}
}

// RunResult is the outcome of a full solve.
type RunResult struct {
	History  newton.History
	WallTime time.Duration
}

// ErrClosed is returned by Run on an App that has been Closed.
var ErrClosed = fmt.Errorf("core: solver is closed")

// Run drives the solver to convergence (or opt.MaxSteps) and reports the
// history plus wall time. The per-kernel breakdown accumulates in
// app.Prof. Run returns ErrClosed after Close; a concurrent Close blocks
// until the solve finishes (use opt.Ctx to cancel it promptly).
func (app *App) Run(opt newton.Options) (RunResult, error) {
	app.mu.Lock()
	defer app.mu.Unlock()
	if app.closed {
		return RunResult{}, ErrClosed
	}
	opt.SecondOrder = app.Cfg.SecondOrder
	opt.Limiter = app.Cfg.Limiter
	opt.Fused = app.Cfg.Fused
	opt.Staged = app.Cfg.Staged
	if app.Cfg.PipelinedGMRES {
		opt.Pipelined = true
	}
	t0 := time.Now()
	h, err := app.Step.Solve(app.Q, opt)
	return RunResult{History: h, WallTime: time.Since(t0)}, err
}

// StateOriginalOrder returns a copy of the state indexed by the original
// mesh numbering (undoing the RCM permutation).
func (app *App) StateOriginalOrder() []float64 {
	if app.Perm == nil {
		return append([]float64(nil), app.Q...)
	}
	out := make([]float64, len(app.Q))
	for old, nw := range app.Perm {
		copy(out[old*4:old*4+4], app.Q[int(nw)*4:int(nw)*4+4])
	}
	return out
}

// SurfaceSample holds one wall vertex's pressure coefficient.
type SurfaceSample struct {
	X, Y, Z float64
	Cp      float64
}

// SurfacePressure extracts Cp = 2p (unit freestream speed, zero freestream
// gauge pressure) at every wall vertex.
func (app *App) SurfacePressure() []SurfaceSample {
	m := app.Mesh
	var out []SurfaceSample
	seen := make(map[int32]bool)
	for _, bn := range m.BNodes {
		if bn.Kind != mesh.PatchWall || seen[bn.V] {
			continue
		}
		seen[bn.V] = true
		c := m.Coords[bn.V]
		out = append(out, SurfaceSample{X: c.X, Y: c.Y, Z: c.Z, Cp: 2 * app.Q[bn.V*4]})
	}
	return out
}

// Close releases the worker pool. Run returns ErrClosed afterwards. Close
// is idempotent and safe to call concurrently with itself and with Run: it
// waits for an in-flight solve to return before tearing the pool down.
func (app *App) Close() {
	app.mu.Lock()
	defer app.mu.Unlock()
	if app.closed {
		return
	}
	app.closed = true
	if app.Pool != nil {
		app.Pool.Close()
	}
}

// PoisonState NaN-fills every mutable buffer the App owns — the state
// vector, Jacobian values, and the Newton/Krylov and fused-kernel scratch.
// The state pool poisons instances on Put so any read of recycled data
// before reinitialization surfaces as NaN instead of a silently stale
// trajectory; Recycle (on Get) restores a freshly-constructed instance.
func (app *App) PoisonState() {
	nan := math.NaN()
	for i := range app.Q {
		app.Q[i] = nan
	}
	for i := range app.A.Val {
		app.A.Val[i] = nan
	}
	app.Step.PoisonScratch()
	app.Kern.PoisonScratch()
}

// Recycle returns a pooled App to its as-constructed state: freestream Q,
// zeroed metrics. Scratch buffers stay poisoned — every kernel fully writes
// its scratch before reading it, which the pool's hammer test enforces.
func (app *App) Recycle() {
	app.ResetState()
	app.Prof.Reset()
}

// Describe summarizes the configuration for logs and reports.
func (app *App) Describe() string {
	c := app.Cfg
	return fmt.Sprintf("threads=%d strategy=%v soa=%v simd=%v prefetch=%v order=%v sched=%v ilu=%d sub=%d dedup=%v pvec=%v order2=%v fused=%v staged=%v",
		c.Threads, c.Strategy, c.SoANodeData, c.SIMD, c.Prefetch, app.Order.Kind, c.Sched,
		c.FillLevel, max(1, c.Subdomains), c.Dedup, c.ParallelVecOps, c.SecondOrder, c.Fused, c.Staged)
}
