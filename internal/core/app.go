// Package core assembles the full application the paper studies — the
// PETSc-FUN3D equivalent: an unstructured-mesh incompressible Euler solver
// driven by pseudo-transient Newton-Krylov-Schwarz, with every shared-memory
// optimization switchable so the benchmark harness can walk the paper's
// optimization ladder (baseline → +threading → +data layout → +SIMD →
// +prefetch; level-scheduled vs P2P recurrences; ILU-0 vs ILU-1; threaded
// vs sequential vector primitives).
package core

import (
	"fmt"
	"time"

	"fun3d/internal/flux"
	"fun3d/internal/mesh"
	"fun3d/internal/newton"
	"fun3d/internal/par"
	"fun3d/internal/physics"
	"fun3d/internal/precond"
	"fun3d/internal/prof"
	"fun3d/internal/reorder"
	"fun3d/internal/sparse"
	"fun3d/internal/vecop"
)

// Config selects the solver configuration and optimization level.
type Config struct {
	// Threads is the worker count; <=1 runs sequentially.
	Threads int
	// Strategy is the edge-loop parallelization (ignored when Threads<=1).
	Strategy flux.Strategy
	// SoANodeData uses the baseline plane layout for the state vector in
	// the flux kernel.
	SoANodeData bool
	// SIMD enables edge-batch restructuring; Prefetch the lookahead touches.
	SIMD, Prefetch bool
	// RCM reorders the mesh with Reverse Cuthill-McKee (the paper always
	// does; switchable to quantify it).
	RCM bool
	// Order selects the vertex ordering explicitly (natural, RCM, Morton,
	// Hilbert). When left at reorder.KindUnset, the legacy RCM flag
	// decides (RCM or natural).
	Order reorder.Kind
	// Sched picks the sparse-recurrence parallelization.
	Sched precond.Scheduling
	// FillLevel is the ILU fill (paper default 1).
	FillLevel int
	// Subdomains is the additive-Schwarz block count (1 = global ILU).
	Subdomains int
	// ParallelVecOps threads the vector primitives (the PETSc routines the
	// paper says are NOT threaded out of the box).
	ParallelVecOps bool
	// SecondOrder/Limiter select the residual discretization.
	SecondOrder, Limiter bool
	// Fused runs the second-order limited residual as the cache-blocked
	// single-sweep pipeline (the ladder's `+fused` rung). Requires
	// SecondOrder, Limiter and AoS node data.
	Fused bool
	// TileEdges overrides the fused pipeline's edge-tile size
	// (0 = tile.DefaultEdgesPerTile).
	TileEdges int
	// PFDist overrides the flux prefetch lookahead distance in edges
	// (0 = flux.DefaultPFDist). Only meaningful with Prefetch.
	PFDist int
	// PipelinedGMRES selects the single-reduction-per-iteration Krylov
	// variant (newton.Options.Pipelined) for every solve this app runs.
	PipelinedGMRES bool

	// Flow setup.
	AlphaDeg float64
	Beta     float64

	// PartitionSeed seeds the multilevel partitioner.
	PartitionSeed uint64
}

// BaselineConfig mirrors the paper's out-of-the-box single-threaded code:
// RCM + interlaced (AoS) node data + BCSR (the 1999 optimizations are
// retained), but no threading, no SIMD restructuring, no prefetch,
// sequential recurrences, ILU(1), sequential vector primitives.
func BaselineConfig() Config {
	return Config{
		Threads:   1,
		Strategy:  flux.Sequential,
		RCM:       true,
		Sched:     precond.SchedSequential,
		FillLevel: 1,
		AlphaDeg:  3.06,
		Beta:      5,
	}
}

// OptimizedConfig is the paper's fully optimized single-node configuration:
// METIS-partitioned owner-writes threading, AoS node data, SIMD batching,
// prefetch, P2P-sparsified recurrences, threaded vector primitives.
func OptimizedConfig(threads int) Config {
	c := BaselineConfig()
	c.Threads = threads
	c.Strategy = flux.ReplicateMETIS
	c.SIMD = true
	c.Prefetch = true
	c.Sched = precond.SchedP2P
	c.ParallelVecOps = true
	return c
}

// App is a ready-to-run solver instance.
type App struct {
	Cfg    Config
	Mesh   *mesh.Mesh // the (possibly reordered) mesh the solver runs on
	Perm   []int32    // original->solver vertex permutation (nil if none)
	Pool   *par.Pool
	Kern   *flux.Kernels
	Pre    *precond.ASM
	A      *sparse.BSR
	Step   *newton.Stepper
	Prof   *prof.Metrics
	Q      []float64 // current state, AoS over solver numbering
	QInf   physics.State
	Order  OrderStats // the applied vertex ordering and its locality effect
	closed bool
}

// NewApp builds an application instance on mesh m (not modified; a
// reordered copy is made when an ordering applies).
func NewApp(m *mesh.Mesh, cfg Config) (*App, error) {
	if cfg.Beta <= 0 {
		cfg.Beta = 5
	}
	if cfg.Fused {
		if cfg.SoANodeData {
			return nil, fmt.Errorf("core: Fused requires AoS node data")
		}
		if !cfg.SecondOrder || !cfg.Limiter {
			return nil, fmt.Errorf("core: Fused requires SecondOrder and Limiter")
		}
	}
	app := &App{Cfg: cfg, Prof: &prof.Metrics{}}
	kind := cfg.Order
	if kind == reorder.KindUnset {
		if cfg.RCM {
			kind = reorder.KindRCM
		} else {
			kind = reorder.KindNatural
		}
	}
	var err error
	app.Mesh, app.Perm, app.Order, err = ReorderMesh(m, kind)
	if err != nil {
		return nil, err
	}
	if cfg.Threads > 1 {
		app.Pool = par.NewPool(cfg.Threads)
	}
	nthreads := cfg.Threads
	if nthreads < 1 {
		nthreads = 1
	}
	strategy := cfg.Strategy
	if app.Pool == nil {
		strategy = flux.Sequential
	}
	part, err := flux.NewPartition(app.Mesh, nthreads, strategy, cfg.PartitionSeed)
	if err != nil {
		app.Close()
		return nil, err
	}
	app.QInf = physics.FreeStream(cfg.AlphaDeg)
	app.Kern = flux.NewKernels(app.Mesh, cfg.Beta, app.QInf, app.Pool, part, flux.Config{
		Strategy:    strategy,
		SoANodeData: cfg.SoANodeData,
		SIMD:        cfg.SIMD,
		Prefetch:    cfg.Prefetch,
		PFDist:      cfg.PFDist,
		TileEdges:   cfg.TileEdges,
	})
	app.A = sparse.NewBSRFromAdj(app.Mesh.AdjPtr, app.Mesh.Adj)
	sched := cfg.Sched
	if app.Pool == nil {
		sched = precond.SchedSequential
	}
	nsub := cfg.Subdomains
	if nsub <= 0 {
		nsub = 1
	}
	app.Pre, err = precond.New(app.A, app.Pool, precond.Options{
		Subdomains: nsub,
		FillLevel:  cfg.FillLevel,
		Sched:      sched,
	})
	if err != nil {
		app.Close()
		return nil, err
	}
	ops := vecop.Seq
	if cfg.ParallelVecOps && app.Pool != nil {
		ops = vecop.New(app.Pool)
	}
	app.Step = newton.NewStepper(app.Kern, app.Pre, app.A, ops, app.Prof)
	app.ResetState()
	return app, nil
}

// ResetState reinitializes the state vector to freestream.
func (app *App) ResetState() {
	nv := app.Mesh.NumVertices()
	if app.Q == nil {
		app.Q = make([]float64, nv*4)
	}
	for v := 0; v < nv; v++ {
		copy(app.Q[v*4:v*4+4], app.QInf[:])
	}
}

// RunResult is the outcome of a full solve.
type RunResult struct {
	History  newton.History
	WallTime time.Duration
}

// Run drives the solver to convergence (or opt.MaxSteps) and reports the
// history plus wall time. The per-kernel breakdown accumulates in
// app.Prof.
func (app *App) Run(opt newton.Options) (RunResult, error) {
	opt.SecondOrder = app.Cfg.SecondOrder
	opt.Limiter = app.Cfg.Limiter
	opt.Fused = app.Cfg.Fused
	if app.Cfg.PipelinedGMRES {
		opt.Pipelined = true
	}
	t0 := time.Now()
	h, err := app.Step.Solve(app.Q, opt)
	return RunResult{History: h, WallTime: time.Since(t0)}, err
}

// StateOriginalOrder returns a copy of the state indexed by the original
// mesh numbering (undoing the RCM permutation).
func (app *App) StateOriginalOrder() []float64 {
	if app.Perm == nil {
		return append([]float64(nil), app.Q...)
	}
	out := make([]float64, len(app.Q))
	for old, nw := range app.Perm {
		copy(out[old*4:old*4+4], app.Q[int(nw)*4:int(nw)*4+4])
	}
	return out
}

// SurfaceSample holds one wall vertex's pressure coefficient.
type SurfaceSample struct {
	X, Y, Z float64
	Cp      float64
}

// SurfacePressure extracts Cp = 2p (unit freestream speed, zero freestream
// gauge pressure) at every wall vertex.
func (app *App) SurfacePressure() []SurfaceSample {
	m := app.Mesh
	var out []SurfaceSample
	seen := make(map[int32]bool)
	for _, bn := range m.BNodes {
		if bn.Kind != mesh.PatchWall || seen[bn.V] {
			continue
		}
		seen[bn.V] = true
		c := m.Coords[bn.V]
		out = append(out, SurfaceSample{X: c.X, Y: c.Y, Z: c.Z, Cp: 2 * app.Q[bn.V*4]})
	}
	return out
}

// Close releases the worker pool. The App is unusable afterwards.
func (app *App) Close() {
	if app.closed {
		return
	}
	app.closed = true
	if app.Pool != nil {
		app.Pool.Close()
	}
}

// Describe summarizes the configuration for logs and reports.
func (app *App) Describe() string {
	c := app.Cfg
	return fmt.Sprintf("threads=%d strategy=%v soa=%v simd=%v prefetch=%v order=%v sched=%v ilu=%d sub=%d pvec=%v order2=%v fused=%v",
		c.Threads, c.Strategy, c.SoANodeData, c.SIMD, c.Prefetch, app.Order.Kind, c.Sched,
		c.FillLevel, max(1, c.Subdomains), c.ParallelVecOps, c.SecondOrder, c.Fused)
}
