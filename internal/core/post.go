package core

import (
	"math"

	"fun3d/internal/geom"
	"fun3d/internal/mesh"
)

// Forces holds the integrated aerodynamic loads on the wall surface
// (inviscid: pressure only), in the wind frame of the configured angle of
// attack, normalized the standard way: C = 2F/(ρ V∞² S_ref) with ρ = 1 and
// |V∞| = 1.
type Forces struct {
	// Raw pressure force vector ∫ p n dA over the wall.
	Fx, Fy, Fz float64
	// Lift and drag coefficients (wind axes in the x-z plane).
	CL, CD float64
	// SRef used for the normalization.
	SRef float64
}

// SurfaceForces integrates the wall pressure into force coefficients.
// sref <= 0 estimates the reference area from the wing planform (projected
// wall area onto the x-y plane, halved because both wing surfaces project).
func (app *App) SurfaceForces(sref float64) Forces {
	var f geom.Vec3
	projArea := 0.0
	for _, bn := range app.Mesh.BNodes {
		if bn.Kind != mesh.PatchWall {
			continue
		}
		p := app.Q[bn.V*4]
		// Outward normal => force on the body is +p*n (pressure pushes
		// along the outward normal of the fluid domain boundary, which
		// points INTO the body; the dual normals here are outward from the
		// fluid, i.e. into the wing).
		f = f.Add(bn.Normal.Scale(p))
		projArea += math.Abs(bn.Normal.Z)
	}
	out := Forces{Fx: f.X, Fy: f.Y, Fz: f.Z}
	out.SRef = sref
	if out.SRef <= 0 {
		out.SRef = projArea / 2
	}
	if out.SRef <= 0 {
		return out
	}
	// Wind axes: drag along the freestream, lift perpendicular in x-z.
	a := app.Cfg.AlphaDeg * math.Pi / 180
	drag := f.X*math.Cos(a) + f.Z*math.Sin(a)
	lift := -f.X*math.Sin(a) + f.Z*math.Cos(a)
	out.CD = 2 * drag / out.SRef
	out.CL = 2 * lift / out.SRef
	return out
}
