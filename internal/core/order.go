package core

import (
	"fmt"

	"fun3d/internal/mesh"
	"fun3d/internal/reorder"
)

// OrderStats records which vertex ordering a solver applied and the
// locality metrics before and after — the one-line summary the CLIs print.
type OrderStats struct {
	Kind            reorder.Kind
	BandwidthBefore int
	BandwidthAfter  int
	ProfileBefore   int64
	ProfileAfter    int64
}

func (s OrderStats) String() string {
	return fmt.Sprintf("order=%v bandwidth %d -> %d, profile %d -> %d",
		s.Kind, s.BandwidthBefore, s.BandwidthAfter, s.ProfileBefore, s.ProfileAfter)
}

// ReorderMesh applies the given vertex ordering to m (returning m itself
// for natural order) together with the achieved bandwidth/profile change
// and the permutation used (nil for natural).
func ReorderMesh(m *mesh.Mesh, kind reorder.Kind) (*mesh.Mesh, []int32, OrderStats, error) {
	g := reorder.Graph{Ptr: m.AdjPtr, Adj: m.Adj}
	st := OrderStats{
		Kind:            kind,
		BandwidthBefore: reorder.Bandwidth(g, nil),
		ProfileBefore:   reorder.Profile(g, nil),
	}
	perm, err := reorder.ByKind(kind, g, m.Coords)
	if err != nil {
		return nil, nil, st, err
	}
	out := m
	if perm != nil {
		out = m.Permute(perm)
	}
	st.BandwidthAfter = reorder.Bandwidth(g, perm)
	st.ProfileAfter = reorder.Profile(g, perm)
	return out, perm, st, nil
}
