package core

import (
	"encoding/gob"
	"fmt"
	"io"

	"fun3d/internal/newton"
	"fun3d/internal/physics"
)

// checkpoint is the serialized solver state. Steps/RNorm0 record the solve
// trajectory position for exact resume; they decode as zero (= fresh solve)
// from checkpoints written before they existed, so old checkpoints load.
type checkpoint struct {
	NV       int
	AlphaDeg float64
	Beta     float64
	Q        []float64 // original vertex ordering
	Steps    int       // completed pseudo-time steps (0 = not mid-solve)
	RNorm0   float64   // initial residual norm of the interrupted solve
}

// SaveState writes the current state (in original vertex ordering, so
// checkpoints are portable across solver configurations on the same mesh).
func (app *App) SaveState(w io.Writer) error {
	return app.SaveStateAt(w, newton.Resume{})
}

// SaveStateAt writes a checkpoint that additionally records the solve
// trajectory position, so the interrupted solve can be continued exactly:
// LoadStateResume hands the position back as a newton.Resume, and a solve
// resumed with it (same solver configuration) follows the uninterrupted
// trajectory bit for bit.
func (app *App) SaveStateAt(w io.Writer, at newton.Resume) error {
	cp := checkpoint{
		NV:       app.Mesh.NumVertices(),
		AlphaDeg: app.Cfg.AlphaDeg,
		Beta:     app.Cfg.Beta,
		Q:        app.StateOriginalOrder(),
		Steps:    at.StartStep,
		RNorm0:   at.RNorm0,
	}
	return gob.NewEncoder(w).Encode(&cp)
}

// ParamMismatchError reports that a checkpoint was written at different
// flow parameters than the app was configured with. LoadState still loads
// the state and adopts the checkpoint's parameters (restarting at a new
// angle of attack is a standard continuation technique, and resuming with
// the configured freestream against a foreign state silently changes the
// problem); the error is returned so callers can surface the change as a
// warning. Detect it with errors.As.
type ParamMismatchError struct {
	CfgAlphaDeg, CkptAlphaDeg float64
	CfgBeta, CkptBeta         float64
}

func (e *ParamMismatchError) Error() string {
	return fmt.Sprintf("core: checkpoint flow parameters differ from config: alpha %g° vs %g°, beta %g vs %g (checkpoint values adopted)",
		e.CkptAlphaDeg, e.CfgAlphaDeg, e.CkptBeta, e.CfgBeta)
}

// LoadState restores a state written by SaveState. The mesh sizes must
// match. The checkpoint's flow parameters (angle of attack, artificial
// compressibility beta) are restored into the app — the freestream state
// and the flux kernels' boundary conditions are re-derived from them — so
// a resumed run continues the same problem the checkpoint froze, not the
// one the app happened to be configured with. If they differ from the
// configured values, the state is still loaded and a *ParamMismatchError
// is returned as a warning.
func (app *App) LoadState(r io.Reader) error {
	_, err := app.LoadStateResume(r)
	return err
}

// LoadStateResume restores a state written by SaveState/SaveStateAt and
// returns the recorded trajectory position (zero for checkpoints not taken
// mid-solve). Pass it as newton.Options.Resume to continue the interrupted
// solve exactly.
func (app *App) LoadStateResume(r io.Reader) (newton.Resume, error) {
	var cp checkpoint
	if err := gob.NewDecoder(r).Decode(&cp); err != nil {
		return newton.Resume{}, fmt.Errorf("core: checkpoint decode: %w", err)
	}
	if cp.NV != app.Mesh.NumVertices() {
		return newton.Resume{}, fmt.Errorf("core: checkpoint has %d vertices, mesh has %d", cp.NV, app.Mesh.NumVertices())
	}
	if len(cp.Q) != cp.NV*4 {
		return newton.Resume{}, fmt.Errorf("core: corrupt checkpoint state length %d", len(cp.Q))
	}
	if cp.Beta <= 0 {
		return newton.Resume{}, fmt.Errorf("core: corrupt checkpoint beta %g", cp.Beta)
	}
	// Map original ordering into the solver ordering.
	if app.Perm == nil {
		copy(app.Q, cp.Q)
	} else {
		for old, nw := range app.Perm {
			copy(app.Q[int(nw)*4:int(nw)*4+4], cp.Q[old*4:old*4+4])
		}
	}
	var warn error
	if cp.AlphaDeg != app.Cfg.AlphaDeg || cp.Beta != app.Cfg.Beta {
		warn = &ParamMismatchError{
			CfgAlphaDeg: app.Cfg.AlphaDeg, CkptAlphaDeg: cp.AlphaDeg,
			CfgBeta: app.Cfg.Beta, CkptBeta: cp.Beta,
		}
	}
	// Adopt the checkpoint's parameters: QInf feeds the farfield boundary
	// flux and ResetState; the kernels hold their own copies.
	app.Cfg.AlphaDeg, app.Cfg.Beta = cp.AlphaDeg, cp.Beta
	app.QInf = physics.FreeStream(cp.AlphaDeg)
	app.Kern.QInf = app.QInf
	app.Kern.Beta = cp.Beta
	return newton.Resume{StartStep: cp.Steps, RNorm0: cp.RNorm0}, warn
}
