package core

import (
	"encoding/gob"
	"fmt"
	"io"
)

// checkpoint is the serialized solver state.
type checkpoint struct {
	NV       int
	AlphaDeg float64
	Beta     float64
	Q        []float64 // original vertex ordering
}

// SaveState writes the current state (in original vertex ordering, so
// checkpoints are portable across solver configurations on the same mesh).
func (app *App) SaveState(w io.Writer) error {
	cp := checkpoint{
		NV:       app.Mesh.NumVertices(),
		AlphaDeg: app.Cfg.AlphaDeg,
		Beta:     app.Cfg.Beta,
		Q:        app.StateOriginalOrder(),
	}
	return gob.NewEncoder(w).Encode(&cp)
}

// LoadState restores a state written by SaveState. The mesh sizes must
// match; the flow parameters are informational (a warning-level mismatch
// is tolerated since restarting at a new angle of attack is a standard
// continuation technique).
func (app *App) LoadState(r io.Reader) error {
	var cp checkpoint
	if err := gob.NewDecoder(r).Decode(&cp); err != nil {
		return fmt.Errorf("core: checkpoint decode: %w", err)
	}
	if cp.NV != app.Mesh.NumVertices() {
		return fmt.Errorf("core: checkpoint has %d vertices, mesh has %d", cp.NV, app.Mesh.NumVertices())
	}
	if len(cp.Q) != cp.NV*4 {
		return fmt.Errorf("core: corrupt checkpoint state length %d", len(cp.Q))
	}
	// Map original ordering into the solver ordering.
	if app.Perm == nil {
		copy(app.Q, cp.Q)
		return nil
	}
	for old, nw := range app.Perm {
		copy(app.Q[int(nw)*4:int(nw)*4+4], cp.Q[old*4:old*4+4])
	}
	return nil
}
