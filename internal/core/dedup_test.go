package core

import (
	"testing"

	"fun3d/internal/newton"
	"fun3d/internal/prof"
)

// The profiler's ILU/TRSV byte records must equal the preconditioner's own
// store-derived estimates: newton books FactorBytes per factorization and
// SolveBytes per apply, so after a one-step solve (one factorization, a
// known number of applies) estimate and booked bytes agree exactly — with
// and without the deduplicated stores.
func TestPrecondBytesEstimateMatchesBooked(t *testing.T) {
	m := tinyMesh(t)
	for _, dedup := range []bool{false, true} {
		cfg := OptimizedConfig(2)
		cfg.Dedup = dedup
		app, err := NewApp(m, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := app.Run(newton.Options{MaxSteps: 1}); err != nil {
			app.Close()
			t.Fatal(err)
		}
		if rows := app.Prof.Counter(prof.ILURows); rows != int64(app.Pre.Rows()) {
			t.Errorf("dedup=%v: ILURows %d, want %d (one factorization)", dedup, rows, app.Pre.Rows())
		}
		if got, want := app.Prof.Bytes(prof.ILU), app.Pre.FactorBytes(); got != want {
			t.Errorf("dedup=%v: booked ILU bytes %d != FactorBytes estimate %d", dedup, got, want)
		}
		applies := app.Prof.Count(prof.TRSV)
		if applies == 0 {
			t.Fatalf("dedup=%v: no TRSV applies recorded", dedup)
		}
		if got, want := app.Prof.Bytes(prof.TRSV), app.Pre.SolveBytes()*int64(applies); got != want {
			t.Errorf("dedup=%v: booked TRSV bytes %d != SolveBytes*%d = %d", dedup, got, applies, want)
		}
		app.Close()
	}
}

// A dedup-enabled solve must follow the dense trajectory bit-for-bit: the
// deduplicated stores hold exactly the dense bytes, so every residual norm
// and iteration count matches.
func TestDedupSolveTrajectoryIdentical(t *testing.T) {
	m := tinyMesh(t)
	cfg := OptimizedConfig(2)
	dense, err := NewApp(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer dense.Close()
	rDense, err := dense.Run(newton.Options{MaxSteps: 8})
	if err != nil {
		t.Fatal(err)
	}

	cfgD := cfg
	cfgD.Dedup = true
	dd, err := NewApp(m, cfgD)
	if err != nil {
		t.Fatal(err)
	}
	defer dd.Close()
	rDD, err := dd.Run(newton.Options{MaxSteps: 8})
	if err != nil {
		t.Fatal(err)
	}

	if len(rDD.History.Steps) != len(rDense.History.Steps) {
		t.Fatalf("step counts differ: dedup %d vs dense %d",
			len(rDD.History.Steps), len(rDense.History.Steps))
	}
	for i := range rDense.History.Steps {
		if rDD.History.Steps[i].RNorm != rDense.History.Steps[i].RNorm {
			t.Fatalf("step %d residual differs: dedup %v vs dense %v",
				i, rDD.History.Steps[i].RNorm, rDense.History.Steps[i].RNorm)
		}
	}
	if rDD.History.LinearIters != rDense.History.LinearIters {
		t.Fatalf("linear iteration counts differ: dedup %d vs dense %d",
			rDD.History.LinearIters, rDense.History.LinearIters)
	}
}

// The paper's default preconditioner is ILU(1); the Options zero value is
// ILU(0). Pin where the default lives: the packaged configurations.
func TestConfigFillLevelDefaults(t *testing.T) {
	if got := BaselineConfig().FillLevel; got != 1 {
		t.Fatalf("BaselineConfig FillLevel = %d, want 1 (paper default)", got)
	}
	if got := OptimizedConfig(2).FillLevel; got != 1 {
		t.Fatalf("OptimizedConfig FillLevel = %d, want 1 (paper default)", got)
	}
	var cfg Config
	if cfg.FillLevel != 0 {
		t.Fatal("Config zero value should be ILU(0)")
	}
}
