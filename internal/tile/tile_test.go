package tile

import (
	"sort"
	"testing"

	"fun3d/internal/mesh"
)

func wingMesh(t *testing.T) *mesh.Mesh {
	t.Helper()
	m, err := mesh.Generate(mesh.SpecTiny())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestSpansPartitionEdges(t *testing.T) {
	m := wingMesh(t)
	for _, per := range []int{1, 7, 100, 1 << 20} {
		tl := New(m, per)
		next := 0
		for _, sp := range tl.Spans {
			if sp.Lo != next || sp.Hi <= sp.Lo || sp.Hi-sp.Lo > per {
				t.Fatalf("per=%d: bad span %+v (next=%d)", per, sp, next)
			}
			next = sp.Hi
		}
		if next != m.NumEdges() {
			t.Fatalf("per=%d: spans cover %d of %d edges", per, next, m.NumEdges())
		}
	}
}

func TestDefaultTileSize(t *testing.T) {
	m := wingMesh(t)
	for _, per := range []int{0, -5} {
		if tl := New(m, per); tl.EdgesPerTile != DefaultEdgesPerTile {
			t.Fatalf("EdgesPerTile = %d, want default", tl.EdgesPerTile)
		}
	}
}

func TestCoverIsSpanEndpoints(t *testing.T) {
	m := wingMesh(t)
	tl := New(m, 53) // odd size to exercise ragged tiles
	var visits int64
	for ti, sp := range tl.Spans {
		want := map[int32]bool{}
		for e := sp.Lo; e < sp.Hi; e++ {
			want[m.EV1[e]] = true
			want[m.EV2[e]] = true
		}
		cov := tl.CoverOf(ti)
		if len(cov) != len(want) {
			t.Fatalf("tile %d: cover size %d, want %d", ti, len(cov), len(want))
		}
		if !sort.SliceIsSorted(cov, func(i, j int) bool { return cov[i] < cov[j] }) {
			t.Fatalf("tile %d: cover not sorted", ti)
		}
		for _, v := range cov {
			if !want[v] {
				t.Fatalf("tile %d: vertex %d not an endpoint", ti, v)
			}
		}
		visits += int64(len(cov))
	}
	if visits != tl.VertexVisits {
		t.Fatalf("VertexVisits = %d, want %d", tl.VertexVisits, visits)
	}
	if r := tl.Replication(); r < 1 {
		t.Fatalf("replication %f < 1", r)
	}
}

func TestIncidentEdgesAscendingAndComplete(t *testing.T) {
	m := wingMesh(t)
	tl := New(m, 0)
	want := make([][]int32, m.NumVertices())
	for e := 0; e < m.NumEdges(); e++ {
		want[m.EV1[e]] = append(want[m.EV1[e]], int32(e))
		want[m.EV2[e]] = append(want[m.EV2[e]], int32(e))
	}
	var gather int64
	for v := 0; v < m.NumVertices(); v++ {
		inc := tl.Inc(int32(v))
		if len(inc) != len(want[v]) {
			t.Fatalf("vertex %d: %d incident edges, want %d", v, len(inc), len(want[v]))
		}
		for i, e := range inc {
			if e != want[v][i] { // want is ascending by construction
				t.Fatalf("vertex %d: incident edges not ascending: %v", v, inc)
			}
		}
	}
	for ti := range tl.Spans {
		for _, v := range tl.CoverOf(ti) {
			gather += int64(len(want[v]))
		}
	}
	if gather != tl.GatherEdgeVisits {
		t.Fatalf("GatherEdgeVisits = %d, want %d", tl.GatherEdgeVisits, gather)
	}
}

func TestBNRangeMatchesBNodes(t *testing.T) {
	m := wingMesh(t)
	tl := New(m, 0)
	count := 0
	for v := int32(0); int(v) < m.NumVertices(); v++ {
		lo, hi := tl.BNRange(v)
		for i := lo; i < hi; i++ {
			if m.BNodes[i].V != v {
				t.Fatalf("BNRange(%d) includes entry for vertex %d", v, m.BNodes[i].V)
			}
		}
		count += hi - lo
	}
	if count != len(m.BNodes) {
		t.Fatalf("BNRange covers %d of %d boundary nodes", count, len(m.BNodes))
	}
}

func TestClosedOpenPartitionCover(t *testing.T) {
	m := wingMesh(t)
	for _, per := range []int{53, 1000, m.NumEdges()} {
		tl := New(m, per)
		var openGather int64
		for ti, sp := range tl.Spans {
			closed, open := tl.ClosedOf(ti), tl.OpenOf(ti)
			// Disjoint union of closed+open must equal the sorted cover.
			merged := map[int32]bool{}
			for _, v := range closed {
				inc := tl.Inc(v)
				if int(inc[0]) < sp.Lo || int(inc[len(inc)-1]) >= sp.Hi {
					t.Fatalf("tile %d: closed vertex %d has incident edges outside [%d,%d)",
						ti, v, sp.Lo, sp.Hi)
				}
				merged[v] = true
			}
			for _, v := range open {
				inc := tl.Inc(v)
				if int(inc[0]) >= sp.Lo && int(inc[len(inc)-1]) < sp.Hi {
					t.Fatalf("tile %d: open vertex %d is entirely inside [%d,%d)",
						ti, v, sp.Lo, sp.Hi)
				}
				if merged[v] {
					t.Fatalf("tile %d: vertex %d both closed and open", ti, v)
				}
				merged[v] = true
				for _, e := range inc {
					if int(e) < sp.Lo || int(e) >= sp.Hi {
						openGather++
					}
				}
			}
			if len(merged) != len(tl.CoverOf(ti)) {
				t.Fatalf("tile %d: closed+open = %d vertices, cover = %d",
					ti, len(merged), len(tl.CoverOf(ti)))
			}
			for _, v := range tl.CoverOf(ti) {
				if !merged[v] {
					t.Fatalf("tile %d: cover vertex %d in neither list", ti, v)
				}
			}
		}
		if openGather != tl.OpenGatherEdgeVisits {
			t.Fatalf("per=%d: OpenGatherEdgeVisits = %d, want %d",
				per, tl.OpenGatherEdgeVisits, openGather)
		}
	}
	// A single tile closes every vertex: no halo, no redundant gathers.
	tl := New(m, m.NumEdges())
	if len(tl.OpenOf(0)) != 0 || tl.OpenGatherEdgeVisits != 0 {
		t.Fatalf("single tile: %d open vertices, %d gather visits, want 0/0",
			len(tl.OpenOf(0)), tl.OpenGatherEdgeVisits)
	}
}

func TestSingleTileNoReplication(t *testing.T) {
	m := wingMesh(t)
	tl := New(m, m.NumEdges())
	if tl.NumTiles() != 1 {
		t.Fatalf("tiles = %d, want 1", tl.NumTiles())
	}
	// One tile covers each connected vertex exactly once.
	if tl.Replication() > 1 {
		t.Fatalf("single tile replication %f > 1", tl.Replication())
	}
}
