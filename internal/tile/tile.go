// Package tile precomputes the cache-blocking structure for the fused
// residual pipeline: the reordered edge list is cut into LLC-sized
// contiguous spans, and for each span the covering vertex set (both
// endpoints of every edge in the span — the tile plus its one-layer
// redundant halo) is recorded, together with a per-vertex incident-edge
// list in ascending edge order.
//
// Ascending edge order is the load-bearing detail: accumulating a vertex's
// gradient over its incident edges in ascending edge id performs exactly
// the same IEEE additions, in the same order, as the sequential scatter
// loop "for e = 0..ne-1 { g[EV1[e]] += ...; g[EV2[e]] -= ... }". That is
// what lets the fused pipeline be bit-identical to the three-sweep path —
// whether a vertex is CLOSED in a tile (every incident edge inside the
// span, so scattering the span's edges in order reproduces the sequence
// for free) or OPEN (a halo vertex, gathered explicitly over its ascending
// incident list). Everything here is precomputed once per mesh and shared
// by all threads read-only.
package tile

import (
	"fmt"
	"sort"

	"fun3d/internal/mesh"
)

// DefaultEdgesPerTile is the default span size. 32768 edges touch roughly
// 1-2 MB of state+gradient working set on a well-ordered mesh — safely
// inside a modern last-level cache slice per core.
const DefaultEdgesPerTile = 1 << 15

// DefaultInnerEdgesPerTile is the default inner (second-level) tile size of
// the hierarchical tiling: 4096 edges stage roughly 150-250 KB of dense
// per-tile vertex planes — inside a modern per-core L2 — so the staged
// gather/compute/scatter sweep runs out of L2 while the enclosing outer
// span keeps the global arrays LLC-resident.
const DefaultInnerEdgesPerTile = 1 << 12

// Span is a half-open contiguous range of edge ids.
type Span struct {
	Lo, Hi int
}

// Tiling is the per-mesh cache-blocking structure. All slices are
// read-only after New.
type Tiling struct {
	EdgesPerTile int
	// Spans partitions [0, NumEdges) into contiguous tiles.
	Spans []Span

	// CSR of covering vertices per span: Cover[CoverPtr[t]:CoverPtr[t+1]]
	// lists, sorted ascending and deduplicated, every endpoint of every
	// edge in Spans[t].
	CoverPtr []int32
	Cover    []int32

	// CSR of incident edges per vertex, ascending edge id:
	// IncEdge[IncPtr[v]:IncPtr[v+1]].
	IncPtr  []int32
	IncEdge []int32

	// BNPtr indexes mesh.BNodes by vertex: the boundary entries of vertex
	// v are BNodes[BNPtr[v]:BNPtr[v+1]] (BNodes is sorted by vertex).
	BNPtr []int32

	// ClosedPtr/Closed is the CSR, per span, of cover vertices whose
	// entire incident-edge set lies inside the span. Their gradients can
	// be accumulated by scattering the span's edges once — each such
	// vertex still sees its incident edges in ascending order — instead
	// of a per-vertex gather. OpenPtr/Open is the complement (the halo):
	// vertices with incident edges outside the span, which must gather.
	// Both lists are sorted ascending; together they partition the cover.
	ClosedPtr []int32
	Closed    []int32
	OpenPtr   []int32
	Open      []int32

	// VertexVisits is the total cover size over all spans; the ratio to
	// NumVertices is the redundant-halo replication factor.
	VertexVisits int64
	// GatherEdgeVisits is the total incident-edge traversals a FULL
	// gather sweep performs (sum of degrees over all covers) — the cost
	// of the gather-only paths (Atomic/Colored).
	GatherEdgeVisits int64
	// OpenGatherEdgeVisits counts the open (halo) vertices' OUT-OF-SPAN
	// incident edges — the redundant-edge cost of the scatter paths
	// (Sequential, Replicate*), which gather only a halo vertex's prefix
	// (below the span) and suffix (above it) and take the in-span
	// contributions from the span scatter itself.
	OpenGatherEdgeVisits int64

	// Two-level hierarchy, built by NewHier when innerEdgesPerTile > 0 and
	// zero-valued on flat tilings: each outer span is subdivided into
	// L2-sized inner tiles whose cover vertices are staged into dense
	// tile-local buffers by the staged residual pipeline.

	// InnerEdgesPerTile is the inner tile size (0 = no hierarchy).
	InnerEdgesPerTile int
	// Inner lists every inner tile's edge span, ascending; the inner tiles
	// of outer span s are Inner[InnerPtr[s]:InnerPtr[s+1]], and each nests
	// inside Spans[s].
	Inner    []Span
	InnerPtr []int32

	// CSR of covering vertices per inner tile, sorted ascending: the
	// local->global index map of tile ti's staging buffer is
	// InnerCover[InnerCoverPtr[ti]:InnerCoverPtr[ti+1]] (local index l
	// holds global vertex InnerCoverOf(ti)[l]).
	InnerCoverPtr []int32
	InnerCover    []int32

	// LA/LB materialize the global->local half of the staging map: edge e
	// lives in exactly one inner tile, and LA[e]/LB[e] are the local cover
	// indices of its endpoints EV1[e]/EV2[e] within that tile.
	LA, LB []int32

	// InnerClosedPtr/InnerClosed is the CSR, per inner tile, of LOCAL cover
	// indices whose vertex has its entire incident-edge set inside the
	// inner tile: its gradient and residual accumulate fully in the staging
	// buffer and scatter back exactly once. InnerOpenPtr/InnerOpen is the
	// complement (vertices shared with other inner tiles); together they
	// partition [0, len(InnerCoverOf(ti))).
	InnerClosedPtr []int32
	InnerClosed    []int32
	InnerOpenPtr   []int32
	InnerOpen      []int32

	// PhaseBPtr/PhaseB is the CSR, per OUTER span, of the cover vertices
	// that are not inner-closed anywhere (global ids, sorted ascending).
	// Their edge fluxes cannot be summed per-tile without changing the
	// IEEE reduction tree, so the staged pipeline stores per-edge fluxes
	// and applies each such vertex's in-span contributions afterwards in
	// ascending edge order — the deterministic "phase B" scatter.
	PhaseBPtr []int32
	PhaseB    []int32

	// Greedy inner-tile coloring, per outer span: no two tiles in the same
	// color group share a cover vertex, so a group's tile scatters run
	// unguarded in parallel. Span s's groups are
	// [SpanColorPtr[s], SpanColorPtr[s+1]); group g's tiles are
	// ColorTiles[ColorPtr[g]:ColorPtr[g+1]] (inner tile ids).
	SpanColorPtr []int32
	ColorPtr     []int32
	ColorTiles   []int32

	// MaxInnerCover is the largest inner-tile cover — the staging buffer
	// capacity one worker needs.
	MaxInnerCover int
	// InnerVertexVisits is the total inner cover size over all inner tiles;
	// against NumVertices it is the second-level gather replication.
	InnerVertexVisits int64
	// InnerOpenGatherEdgeVisits counts inner-open vertices' out-of-inner-
	// tile incident edges — the redundant halo-gather edge traffic of the
	// staged gradient (the inner-level analogue of OpenGatherEdgeVisits).
	InnerOpenGatherEdgeVisits int64
	// PhaseBEdgeVisits counts the per-edge flux reads the phase-B scatter
	// performs (one per in-span incident edge of each phase-B vertex).
	PhaseBEdgeVisits int64
}

// New builds the flat (single-level) tiling for m with the given span size
// (<= 0 selects DefaultEdgesPerTile).
func New(m *mesh.Mesh, edgesPerTile int) *Tiling {
	return NewHier(m, edgesPerTile, 0)
}

// NewHier builds the tiling for m with the given outer span size (<= 0
// selects DefaultEdgesPerTile) and, when innerEdgesPerTile > 0, the
// two-level hierarchy: each outer span subdivided into inner tiles of at
// most innerEdgesPerTile edges, with the staging index maps, closed/open
// partition, phase-B vertex lists, and greedy tile coloring the staged
// residual pipeline consumes.
func NewHier(m *mesh.Mesh, edgesPerTile, innerEdgesPerTile int) *Tiling {
	if edgesPerTile <= 0 {
		edgesPerTile = DefaultEdgesPerTile
	}
	nv, ne := m.NumVertices(), m.NumEdges()
	t := &Tiling{EdgesPerTile: edgesPerTile}

	for lo := 0; lo < ne; lo += edgesPerTile {
		hi := lo + edgesPerTile
		if hi > ne {
			hi = ne
		}
		t.Spans = append(t.Spans, Span{Lo: lo, Hi: hi})
	}

	// Incident edges, ascending by construction: edges are appended in
	// increasing e to both endpoints' runs.
	t.IncPtr = make([]int32, nv+1)
	for e := 0; e < ne; e++ {
		t.IncPtr[m.EV1[e]+1]++
		t.IncPtr[m.EV2[e]+1]++
	}
	for v := 0; v < nv; v++ {
		t.IncPtr[v+1] += t.IncPtr[v]
	}
	t.IncEdge = make([]int32, 2*ne)
	fill := make([]int32, nv)
	for e := 0; e < ne; e++ {
		a, b := m.EV1[e], m.EV2[e]
		t.IncEdge[t.IncPtr[a]+fill[a]] = int32(e)
		fill[a]++
		t.IncEdge[t.IncPtr[b]+fill[b]] = int32(e)
		fill[b]++
	}

	// Boundary-node index (BNodes is sorted by (V, Kind)).
	t.BNPtr = make([]int32, nv+1)
	for _, b := range m.BNodes {
		t.BNPtr[b.V+1]++
	}
	for v := 0; v < nv; v++ {
		t.BNPtr[v+1] += t.BNPtr[v]
	}

	// Covering vertex sets, split into closed (all incident edges inside
	// the span) and open (halo) per span.
	t.CoverPtr = make([]int32, len(t.Spans)+1)
	t.ClosedPtr = make([]int32, len(t.Spans)+1)
	t.OpenPtr = make([]int32, len(t.Spans)+1)
	stamp := make([]int, nv)
	for i := range stamp {
		stamp[i] = -1
	}
	for ti, sp := range t.Spans {
		start := len(t.Cover)
		for e := sp.Lo; e < sp.Hi; e++ {
			if v := m.EV1[e]; stamp[v] != ti {
				stamp[v] = ti
				t.Cover = append(t.Cover, v)
			}
			if v := m.EV2[e]; stamp[v] != ti {
				stamp[v] = ti
				t.Cover = append(t.Cover, v)
			}
		}
		cov := t.Cover[start:]
		sort.Slice(cov, func(i, j int) bool { return cov[i] < cov[j] })
		t.CoverPtr[ti+1] = int32(len(t.Cover))
		t.VertexVisits += int64(len(cov))
		for _, v := range cov {
			deg := int64(t.IncPtr[v+1] - t.IncPtr[v])
			t.GatherEdgeVisits += deg
			// Incident lists are ascending, so the whole list is inside
			// the span iff its first and last entries are.
			inc := t.IncEdge[t.IncPtr[v]:t.IncPtr[v+1]]
			if int(inc[0]) >= sp.Lo && int(inc[len(inc)-1]) < sp.Hi {
				t.Closed = append(t.Closed, v)
			} else {
				t.Open = append(t.Open, v)
				for _, e := range inc {
					if int(e) < sp.Lo || int(e) >= sp.Hi {
						t.OpenGatherEdgeVisits++
					}
				}
			}
		}
		t.ClosedPtr[ti+1] = int32(len(t.Closed))
		t.OpenPtr[ti+1] = int32(len(t.Open))
	}
	if innerEdgesPerTile > 0 {
		t.buildInner(m, innerEdgesPerTile)
	}
	return t
}

// buildInner subdivides the outer spans into inner tiles and precomputes
// everything the staged pipeline needs: per-tile sorted covers (the
// local->global map), the per-edge LA/LB local endpoint indices (the
// global->local map), the inner closed/open partition, the per-span phase-B
// vertex lists, and a greedy tile coloring in which no two same-color tiles
// of a span share a cover vertex.
func (t *Tiling) buildInner(m *mesh.Mesh, innerEdgesPerTile int) {
	nv, ne := m.NumVertices(), m.NumEdges()
	t.InnerEdgesPerTile = innerEdgesPerTile
	t.InnerPtr = make([]int32, len(t.Spans)+1)
	for si, sp := range t.Spans {
		for lo := sp.Lo; lo < sp.Hi; lo += innerEdgesPerTile {
			hi := lo + innerEdgesPerTile
			if hi > sp.Hi {
				hi = sp.Hi
			}
			t.Inner = append(t.Inner, Span{Lo: lo, Hi: hi})
		}
		t.InnerPtr[si+1] = int32(len(t.Inner))
	}
	nt := len(t.Inner)

	// Covers, local index maps, and the closed/open partition. stamp marks
	// cover membership per tile; local holds each cover vertex's position
	// in the sorted cover while the tile's edges are translated.
	t.InnerCoverPtr = make([]int32, nt+1)
	t.InnerClosedPtr = make([]int32, nt+1)
	t.InnerOpenPtr = make([]int32, nt+1)
	t.LA = make([]int32, ne)
	t.LB = make([]int32, ne)
	stamp := make([]int, nv)
	local := make([]int32, nv)
	// innerClosed marks vertices closed in some inner tile — the phase-B
	// exclusion test.
	innerClosed := make([]bool, nv)
	for i := range stamp {
		stamp[i] = -1
	}
	for ti, sp := range t.Inner {
		start := len(t.InnerCover)
		for e := sp.Lo; e < sp.Hi; e++ {
			if v := m.EV1[e]; stamp[v] != ti {
				stamp[v] = ti
				t.InnerCover = append(t.InnerCover, v)
			}
			if v := m.EV2[e]; stamp[v] != ti {
				stamp[v] = ti
				t.InnerCover = append(t.InnerCover, v)
			}
		}
		cov := t.InnerCover[start:]
		sort.Slice(cov, func(i, j int) bool { return cov[i] < cov[j] })
		t.InnerCoverPtr[ti+1] = int32(len(t.InnerCover))
		t.InnerVertexVisits += int64(len(cov))
		if len(cov) > t.MaxInnerCover {
			t.MaxInnerCover = len(cov)
		}
		for l, v := range cov {
			local[v] = int32(l)
		}
		for e := sp.Lo; e < sp.Hi; e++ {
			t.LA[e] = local[m.EV1[e]]
			t.LB[e] = local[m.EV2[e]]
		}
		for l, v := range cov {
			// Incident lists are ascending, so the whole list is inside
			// the inner tile iff its first and last entries are.
			inc := t.IncEdge[t.IncPtr[v]:t.IncPtr[v+1]]
			if int(inc[0]) >= sp.Lo && int(inc[len(inc)-1]) < sp.Hi {
				t.InnerClosed = append(t.InnerClosed, int32(l))
				innerClosed[v] = true
			} else {
				t.InnerOpen = append(t.InnerOpen, int32(l))
				for _, e := range inc {
					if int(e) < sp.Lo || int(e) >= sp.Hi {
						t.InnerOpenGatherEdgeVisits++
					}
				}
			}
		}
		t.InnerClosedPtr[ti+1] = int32(len(t.InnerClosed))
		t.InnerOpenPtr[ti+1] = int32(len(t.InnerOpen))
	}

	// Phase-B lists: each outer span's cover vertices that are not
	// inner-closed anywhere. (A vertex closed in inner tile T has every
	// incident edge inside T, so it appears in exactly one span's cover
	// and never needs phase B.)
	t.PhaseBPtr = make([]int32, len(t.Spans)+1)
	for si, sp := range t.Spans {
		for _, v := range t.CoverOf(si) {
			if innerClosed[v] {
				continue
			}
			t.PhaseB = append(t.PhaseB, v)
			inc := t.IncEdge[t.IncPtr[v]:t.IncPtr[v+1]]
			for _, e := range inc {
				if int(e) >= sp.Lo && int(e) < sp.Hi {
					t.PhaseBEdgeVisits++
				}
			}
		}
		t.PhaseBPtr[si+1] = int32(len(t.PhaseB))
	}

	t.colorInner(nv)
}

// colorInner greedily colors each outer span's inner tiles so that no two
// same-color tiles share a cover vertex: tiles are taken in order and each
// gets the lowest color absent from all of its cover vertices' already-
// colored tiles. Same-color tiles can then scatter phi and closed residuals
// unguarded in parallel — the ownership-free replacement for the fused
// pipeline's per-thread closed/open cover bookkeeping.
func (t *Tiling) colorInner(nv int) {
	// A vertex is covered by at most deg(v) inner tiles of one span, and
	// mesh degrees are far below 64, so a single mask word suffices.
	mask := make([]uint64, nv)
	epoch := make([]int32, nv)
	for i := range epoch {
		epoch[i] = -1
	}
	t.SpanColorPtr = make([]int32, len(t.Spans)+1)
	var groups [][]int32
	for si := range t.Spans {
		spanGroupBase := len(groups)
		for ti := int(t.InnerPtr[si]); ti < int(t.InnerPtr[si+1]); ti++ {
			var forbidden uint64
			cov := t.InnerCoverOf(ti)
			for _, v := range cov {
				if epoch[v] == int32(si) {
					forbidden |= mask[v]
				}
			}
			c := 0
			for forbidden&(1<<uint(c)) != 0 {
				c++
				if c >= 64 {
					panic("tile: inner tile coloring needs more than 64 colors (vertex degree > 64?)")
				}
			}
			for _, v := range cov {
				if epoch[v] != int32(si) {
					epoch[v] = int32(si)
					mask[v] = 0
				}
				mask[v] |= 1 << uint(c)
			}
			for spanGroupBase+c >= len(groups) {
				groups = append(groups, nil)
			}
			groups[spanGroupBase+c] = append(groups[spanGroupBase+c], int32(ti))
		}
		t.SpanColorPtr[si+1] = int32(len(groups))
	}
	t.ColorPtr = make([]int32, len(groups)+1)
	for g, tiles := range groups {
		t.ColorTiles = append(t.ColorTiles, tiles...)
		t.ColorPtr[g+1] = int32(len(t.ColorTiles))
	}
}

// NumTiles returns the number of edge spans.
func (t *Tiling) NumTiles() int { return len(t.Spans) }

// CoverOf returns the sorted covering vertex set of tile ti (do not modify).
func (t *Tiling) CoverOf(ti int) []int32 {
	return t.Cover[t.CoverPtr[ti]:t.CoverPtr[ti+1]]
}

// ClosedOf returns tile ti's cover vertices whose entire incident-edge set
// lies inside the tile (sorted ascending; do not modify).
func (t *Tiling) ClosedOf(ti int) []int32 {
	return t.Closed[t.ClosedPtr[ti]:t.ClosedPtr[ti+1]]
}

// OpenOf returns tile ti's halo vertices — cover vertices with incident
// edges outside the tile (sorted ascending; do not modify).
func (t *Tiling) OpenOf(ti int) []int32 {
	return t.Open[t.OpenPtr[ti]:t.OpenPtr[ti+1]]
}

// Inc returns the incident edges of vertex v in ascending edge order.
func (t *Tiling) Inc(v int32) []int32 {
	return t.IncEdge[t.IncPtr[v]:t.IncPtr[v+1]]
}

// BNRange returns the index range of vertex v's entries in mesh.BNodes.
func (t *Tiling) BNRange(v int32) (int, int) {
	return int(t.BNPtr[v]), int(t.BNPtr[v+1])
}

// NumInnerTiles returns the number of inner tiles (0 on flat tilings).
func (t *Tiling) NumInnerTiles() int { return len(t.Inner) }

// InnerTilesOf returns the half-open inner-tile id range of outer span s.
func (t *Tiling) InnerTilesOf(s int) (int, int) {
	return int(t.InnerPtr[s]), int(t.InnerPtr[s+1])
}

// InnerCoverOf returns the sorted cover of inner tile ti — the
// local->global map of its staging buffer (do not modify).
func (t *Tiling) InnerCoverOf(ti int) []int32 {
	return t.InnerCover[t.InnerCoverPtr[ti]:t.InnerCoverPtr[ti+1]]
}

// InnerClosedOf returns the LOCAL cover indices of inner tile ti whose
// vertex has every incident edge inside the tile (sorted ascending; do not
// modify).
func (t *Tiling) InnerClosedOf(ti int) []int32 {
	return t.InnerClosed[t.InnerClosedPtr[ti]:t.InnerClosedPtr[ti+1]]
}

// InnerOpenOf returns the LOCAL cover indices of inner tile ti's halo —
// vertices shared with other inner tiles (sorted ascending; do not modify).
func (t *Tiling) InnerOpenOf(ti int) []int32 {
	return t.InnerOpen[t.InnerOpenPtr[ti]:t.InnerOpenPtr[ti+1]]
}

// PhaseBOf returns outer span s's phase-B vertices: cover vertices not
// inner-closed anywhere, global ids sorted ascending (do not modify).
func (t *Tiling) PhaseBOf(s int) []int32 {
	return t.PhaseB[t.PhaseBPtr[s]:t.PhaseBPtr[s+1]]
}

// ColorGroupsOf returns the half-open color-group id range of outer span s.
func (t *Tiling) ColorGroupsOf(s int) (int, int) {
	return int(t.SpanColorPtr[s]), int(t.SpanColorPtr[s+1])
}

// ColorGroup returns the inner tile ids of color group g (no two share a
// cover vertex; do not modify).
func (t *Tiling) ColorGroup(g int) []int32 {
	return t.ColorTiles[t.ColorPtr[g]:t.ColorPtr[g+1]]
}

// Replication is the redundant-compute factor of the halo gather: total
// vertex visits over distinct vertices (1.0 = no tile boundary overlap).
// On hierarchical tilings this is the OUTER-level factor; see
// ReplicationLevels for both.
func (t *Tiling) Replication() float64 {
	nv := len(t.IncPtr) - 1
	if nv == 0 {
		return 1
	}
	return float64(t.VertexVisits) / float64(nv)
}

// InnerReplication is the second-level gather replication: total inner-tile
// cover visits over distinct vertices. It is what the staged pipeline
// actually pays per sweep (every inner cover vertex is gathered into a
// staging buffer), so it is always >= Replication(). 1.0 on flat tilings.
func (t *Tiling) InnerReplication() float64 {
	nv := len(t.IncPtr) - 1
	if nv == 0 || t.InnerEdgesPerTile == 0 {
		return 1
	}
	return float64(t.InnerVertexVisits) / float64(nv)
}

// ReplicationLevels returns the per-level gather replication factors:
// outer (LLC span covers over distinct vertices) and inner (staging-buffer
// gathers over distinct vertices; 1.0 on flat tilings).
func (t *Tiling) ReplicationLevels() (outer, inner float64) {
	return t.Replication(), t.InnerReplication()
}

func (t *Tiling) String() string {
	if t.InnerEdgesPerTile == 0 {
		return fmt.Sprintf("tiles=%d edges/tile=%d replication=%.3f",
			t.NumTiles(), t.EdgesPerTile, t.Replication())
	}
	return fmt.Sprintf("tiles=%d edges/tile=%d replication=%.3f inner-tiles=%d edges/inner=%d inner-replication=%.3f",
		t.NumTiles(), t.EdgesPerTile, t.Replication(),
		t.NumInnerTiles(), t.InnerEdgesPerTile, t.InnerReplication())
}
