// Package tile precomputes the cache-blocking structure for the fused
// residual pipeline: the reordered edge list is cut into LLC-sized
// contiguous spans, and for each span the covering vertex set (both
// endpoints of every edge in the span — the tile plus its one-layer
// redundant halo) is recorded, together with a per-vertex incident-edge
// list in ascending edge order.
//
// Ascending edge order is the load-bearing detail: accumulating a vertex's
// gradient over its incident edges in ascending edge id performs exactly
// the same IEEE additions, in the same order, as the sequential scatter
// loop "for e = 0..ne-1 { g[EV1[e]] += ...; g[EV2[e]] -= ... }". That is
// what lets the fused pipeline be bit-identical to the three-sweep path —
// whether a vertex is CLOSED in a tile (every incident edge inside the
// span, so scattering the span's edges in order reproduces the sequence
// for free) or OPEN (a halo vertex, gathered explicitly over its ascending
// incident list). Everything here is precomputed once per mesh and shared
// by all threads read-only.
package tile

import (
	"fmt"
	"sort"

	"fun3d/internal/mesh"
)

// DefaultEdgesPerTile is the default span size. 32768 edges touch roughly
// 1-2 MB of state+gradient working set on a well-ordered mesh — safely
// inside a modern last-level cache slice per core.
const DefaultEdgesPerTile = 1 << 15

// Span is a half-open contiguous range of edge ids.
type Span struct {
	Lo, Hi int
}

// Tiling is the per-mesh cache-blocking structure. All slices are
// read-only after New.
type Tiling struct {
	EdgesPerTile int
	// Spans partitions [0, NumEdges) into contiguous tiles.
	Spans []Span

	// CSR of covering vertices per span: Cover[CoverPtr[t]:CoverPtr[t+1]]
	// lists, sorted ascending and deduplicated, every endpoint of every
	// edge in Spans[t].
	CoverPtr []int32
	Cover    []int32

	// CSR of incident edges per vertex, ascending edge id:
	// IncEdge[IncPtr[v]:IncPtr[v+1]].
	IncPtr  []int32
	IncEdge []int32

	// BNPtr indexes mesh.BNodes by vertex: the boundary entries of vertex
	// v are BNodes[BNPtr[v]:BNPtr[v+1]] (BNodes is sorted by vertex).
	BNPtr []int32

	// ClosedPtr/Closed is the CSR, per span, of cover vertices whose
	// entire incident-edge set lies inside the span. Their gradients can
	// be accumulated by scattering the span's edges once — each such
	// vertex still sees its incident edges in ascending order — instead
	// of a per-vertex gather. OpenPtr/Open is the complement (the halo):
	// vertices with incident edges outside the span, which must gather.
	// Both lists are sorted ascending; together they partition the cover.
	ClosedPtr []int32
	Closed    []int32
	OpenPtr   []int32
	Open      []int32

	// VertexVisits is the total cover size over all spans; the ratio to
	// NumVertices is the redundant-halo replication factor.
	VertexVisits int64
	// GatherEdgeVisits is the total incident-edge traversals a FULL
	// gather sweep performs (sum of degrees over all covers) — the cost
	// of the gather-only paths (Atomic/Colored).
	GatherEdgeVisits int64
	// OpenGatherEdgeVisits counts the open (halo) vertices' OUT-OF-SPAN
	// incident edges — the redundant-edge cost of the scatter paths
	// (Sequential, Replicate*), which gather only a halo vertex's prefix
	// (below the span) and suffix (above it) and take the in-span
	// contributions from the span scatter itself.
	OpenGatherEdgeVisits int64
}

// New builds the tiling for m with the given span size (<= 0 selects
// DefaultEdgesPerTile).
func New(m *mesh.Mesh, edgesPerTile int) *Tiling {
	if edgesPerTile <= 0 {
		edgesPerTile = DefaultEdgesPerTile
	}
	nv, ne := m.NumVertices(), m.NumEdges()
	t := &Tiling{EdgesPerTile: edgesPerTile}

	for lo := 0; lo < ne; lo += edgesPerTile {
		hi := lo + edgesPerTile
		if hi > ne {
			hi = ne
		}
		t.Spans = append(t.Spans, Span{Lo: lo, Hi: hi})
	}

	// Incident edges, ascending by construction: edges are appended in
	// increasing e to both endpoints' runs.
	t.IncPtr = make([]int32, nv+1)
	for e := 0; e < ne; e++ {
		t.IncPtr[m.EV1[e]+1]++
		t.IncPtr[m.EV2[e]+1]++
	}
	for v := 0; v < nv; v++ {
		t.IncPtr[v+1] += t.IncPtr[v]
	}
	t.IncEdge = make([]int32, 2*ne)
	fill := make([]int32, nv)
	for e := 0; e < ne; e++ {
		a, b := m.EV1[e], m.EV2[e]
		t.IncEdge[t.IncPtr[a]+fill[a]] = int32(e)
		fill[a]++
		t.IncEdge[t.IncPtr[b]+fill[b]] = int32(e)
		fill[b]++
	}

	// Boundary-node index (BNodes is sorted by (V, Kind)).
	t.BNPtr = make([]int32, nv+1)
	for _, b := range m.BNodes {
		t.BNPtr[b.V+1]++
	}
	for v := 0; v < nv; v++ {
		t.BNPtr[v+1] += t.BNPtr[v]
	}

	// Covering vertex sets, split into closed (all incident edges inside
	// the span) and open (halo) per span.
	t.CoverPtr = make([]int32, len(t.Spans)+1)
	t.ClosedPtr = make([]int32, len(t.Spans)+1)
	t.OpenPtr = make([]int32, len(t.Spans)+1)
	stamp := make([]int, nv)
	for i := range stamp {
		stamp[i] = -1
	}
	for ti, sp := range t.Spans {
		start := len(t.Cover)
		for e := sp.Lo; e < sp.Hi; e++ {
			if v := m.EV1[e]; stamp[v] != ti {
				stamp[v] = ti
				t.Cover = append(t.Cover, v)
			}
			if v := m.EV2[e]; stamp[v] != ti {
				stamp[v] = ti
				t.Cover = append(t.Cover, v)
			}
		}
		cov := t.Cover[start:]
		sort.Slice(cov, func(i, j int) bool { return cov[i] < cov[j] })
		t.CoverPtr[ti+1] = int32(len(t.Cover))
		t.VertexVisits += int64(len(cov))
		for _, v := range cov {
			deg := int64(t.IncPtr[v+1] - t.IncPtr[v])
			t.GatherEdgeVisits += deg
			// Incident lists are ascending, so the whole list is inside
			// the span iff its first and last entries are.
			inc := t.IncEdge[t.IncPtr[v]:t.IncPtr[v+1]]
			if int(inc[0]) >= sp.Lo && int(inc[len(inc)-1]) < sp.Hi {
				t.Closed = append(t.Closed, v)
			} else {
				t.Open = append(t.Open, v)
				for _, e := range inc {
					if int(e) < sp.Lo || int(e) >= sp.Hi {
						t.OpenGatherEdgeVisits++
					}
				}
			}
		}
		t.ClosedPtr[ti+1] = int32(len(t.Closed))
		t.OpenPtr[ti+1] = int32(len(t.Open))
	}
	return t
}

// NumTiles returns the number of edge spans.
func (t *Tiling) NumTiles() int { return len(t.Spans) }

// CoverOf returns the sorted covering vertex set of tile ti (do not modify).
func (t *Tiling) CoverOf(ti int) []int32 {
	return t.Cover[t.CoverPtr[ti]:t.CoverPtr[ti+1]]
}

// ClosedOf returns tile ti's cover vertices whose entire incident-edge set
// lies inside the tile (sorted ascending; do not modify).
func (t *Tiling) ClosedOf(ti int) []int32 {
	return t.Closed[t.ClosedPtr[ti]:t.ClosedPtr[ti+1]]
}

// OpenOf returns tile ti's halo vertices — cover vertices with incident
// edges outside the tile (sorted ascending; do not modify).
func (t *Tiling) OpenOf(ti int) []int32 {
	return t.Open[t.OpenPtr[ti]:t.OpenPtr[ti+1]]
}

// Inc returns the incident edges of vertex v in ascending edge order.
func (t *Tiling) Inc(v int32) []int32 {
	return t.IncEdge[t.IncPtr[v]:t.IncPtr[v+1]]
}

// BNRange returns the index range of vertex v's entries in mesh.BNodes.
func (t *Tiling) BNRange(v int32) (int, int) {
	return int(t.BNPtr[v]), int(t.BNPtr[v+1])
}

// Replication is the redundant-compute factor of the halo gather: total
// vertex visits over distinct vertices (1.0 = no tile boundary overlap).
func (t *Tiling) Replication() float64 {
	nv := len(t.IncPtr) - 1
	if nv == 0 {
		return 1
	}
	return float64(t.VertexVisits) / float64(nv)
}

func (t *Tiling) String() string {
	return fmt.Sprintf("tiles=%d edges/tile=%d replication=%.3f",
		t.NumTiles(), t.EdgesPerTile, t.Replication())
}
