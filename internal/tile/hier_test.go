package tile

import (
	"fmt"
	"testing"

	"fun3d/internal/mesh"
)

// hierMeshes yields every deterministic mesh generator the hierarchy
// property tests run on: the tiny wing plus a scaled-down C-mesh (full C/D
// are experiment-sized). Generation is deterministic, so the properties
// pin real structure, not a lucky sample.
func hierMeshes(t testing.TB) map[string]*mesh.Mesh {
	t.Helper()
	specs := map[string]mesh.GenSpec{
		"tiny":    mesh.SpecTiny(),
		"c-tenth": mesh.ScaleSpec(mesh.SpecC(), 0.1),
	}
	out := make(map[string]*mesh.Mesh, len(specs))
	for name, spec := range specs {
		m, err := mesh.Generate(spec)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		out[name] = m
	}
	return out
}

var hierSizes = []struct{ outer, inner int }{
	{1 << 15, 1 << 12}, // the defaults
	{1000, 64},         // many inner tiles per span
	{150, 150},         // inner == outer (one inner tile per span)
	{777, 1000},        // inner > outer (clamped to the span)
	{1 << 20, 97},      // one span, odd inner size
}

// TestInnerTilesPartitionAndNest: every edge lies in exactly one inner
// tile, inner tiles are contiguous, ascending, and nest inside their outer
// span — the two-level tiling is a partition refinement.
func TestInnerTilesPartitionAndNest(t *testing.T) {
	for name, m := range hierMeshes(t) {
		for _, sz := range hierSizes {
			t.Run(fmt.Sprintf("%s-%d-%d", name, sz.outer, sz.inner), func(t *testing.T) {
				tl := NewHier(m, sz.outer, sz.inner)
				next := 0
				for si := range tl.Spans {
					lo, hi := tl.InnerTilesOf(si)
					if lo != next {
						t.Fatalf("span %d inner tiles start at %d, want %d", si, lo, next)
					}
					edge := tl.Spans[si].Lo
					for ti := lo; ti < hi; ti++ {
						sp := tl.Inner[ti]
						if sp.Lo != edge {
							t.Fatalf("inner tile %d starts at %d, want %d", ti, sp.Lo, edge)
						}
						if sp.Hi <= sp.Lo || sp.Hi > tl.Spans[si].Hi {
							t.Fatalf("inner tile %d = %+v escapes span %+v", ti, sp, tl.Spans[si])
						}
						edge = sp.Hi
					}
					if edge != tl.Spans[si].Hi {
						t.Fatalf("span %d inner tiles end at %d, want %d", si, edge, tl.Spans[si].Hi)
					}
					next = hi
				}
				if next != tl.NumInnerTiles() {
					t.Fatalf("spans account for %d inner tiles, have %d", next, tl.NumInnerTiles())
				}
			})
		}
	}
}

// TestStagingMapRoundTrips: the global->local map (LA/LB) composed with
// the local->global map (the sorted inner cover) is the identity on every
// edge's endpoints — gather-by-cover then index-by-LA/LB reads exactly the
// staged copy of the right global vertex.
func TestStagingMapRoundTrips(t *testing.T) {
	for name, m := range hierMeshes(t) {
		for _, sz := range hierSizes {
			t.Run(fmt.Sprintf("%s-%d-%d", name, sz.outer, sz.inner), func(t *testing.T) {
				tl := NewHier(m, sz.outer, sz.inner)
				for ti := range tl.Inner {
					cov := tl.InnerCoverOf(ti)
					for i := 1; i < len(cov); i++ {
						if cov[i] <= cov[i-1] {
							t.Fatalf("tile %d cover not sorted/unique at %d", ti, i)
						}
					}
					sp := tl.Inner[ti]
					for e := sp.Lo; e < sp.Hi; e++ {
						la, lb := tl.LA[e], tl.LB[e]
						if cov[la] != m.EV1[e] || cov[lb] != m.EV2[e] {
							t.Fatalf("edge %d: cover[LA]=%d cover[LB]=%d, want EV1=%d EV2=%d",
								e, cov[la], cov[lb], m.EV1[e], m.EV2[e])
						}
					}
					if len(cov) > tl.MaxInnerCover {
						t.Fatalf("tile %d cover %d exceeds MaxInnerCover %d", ti, len(cov), tl.MaxInnerCover)
					}
				}
			})
		}
	}
}

// TestInnerClosedOpenPartition: per inner tile the closed and open local
// index lists partition [0, len(cover)), and membership matches the
// definition — closed iff every incident edge is inside the tile.
func TestInnerClosedOpenPartition(t *testing.T) {
	for name, m := range hierMeshes(t) {
		for _, sz := range hierSizes {
			t.Run(fmt.Sprintf("%s-%d-%d", name, sz.outer, sz.inner), func(t *testing.T) {
				tl := NewHier(m, sz.outer, sz.inner)
				for ti := range tl.Inner {
					cov := tl.InnerCoverOf(ti)
					sp := tl.Inner[ti]
					seen := make(map[int32]bool, len(cov))
					check := func(list []int32, wantClosed bool) {
						for _, l := range list {
							if int(l) >= len(cov) || seen[l] {
								t.Fatalf("tile %d local index %d out of range or duplicated", ti, l)
							}
							seen[l] = true
							closed := true
							for _, e := range tl.Inc(cov[l]) {
								if int(e) < sp.Lo || int(e) >= sp.Hi {
									closed = false
									break
								}
							}
							if closed != wantClosed {
								t.Fatalf("tile %d vertex %d: closed=%v in %v list", ti, cov[l], closed, wantClosed)
							}
						}
					}
					check(tl.InnerClosedOf(ti), true)
					check(tl.InnerOpenOf(ti), false)
					if len(seen) != len(cov) {
						t.Fatalf("tile %d: closed+open = %d, cover = %d", ti, len(seen), len(cov))
					}
				}
			})
		}
	}
}

// TestTileColoringValid: the greedy coloring's contract — the color groups
// of each span partition its inner tiles, and no two tiles in one group
// share a cover vertex (the unguarded-scatter precondition).
func TestTileColoringValid(t *testing.T) {
	for name, m := range hierMeshes(t) {
		for _, sz := range hierSizes {
			t.Run(fmt.Sprintf("%s-%d-%d", name, sz.outer, sz.inner), func(t *testing.T) {
				tl := NewHier(m, sz.outer, sz.inner)
				nv := m.NumVertices()
				owner := make([]int, nv)
				for si := range tl.Spans {
					lo, hi := tl.InnerTilesOf(si)
					seenTiles := make(map[int32]bool, hi-lo)
					glo, ghi := tl.ColorGroupsOf(si)
					for g := glo; g < ghi; g++ {
						for i := range owner {
							owner[i] = -1
						}
						for _, ti := range tl.ColorGroup(g) {
							if int(ti) < lo || int(ti) >= hi || seenTiles[ti] {
								t.Fatalf("span %d group %d: tile %d outside span or duplicated", si, g, ti)
							}
							seenTiles[ti] = true
							for _, v := range tl.InnerCoverOf(int(ti)) {
								if o := owner[v]; o >= 0 {
									t.Fatalf("span %d group %d: tiles %d and %d share vertex %d", si, g, o, ti, v)
								}
								owner[v] = int(ti)
							}
						}
					}
					if len(seenTiles) != hi-lo {
						t.Fatalf("span %d: coloring covers %d of %d tiles", si, len(seenTiles), hi-lo)
					}
				}
			})
		}
	}
}

// TestPhaseBListsComplete: per outer span, the phase-B list is exactly the
// span's cover minus the vertices inner-closed somewhere, sorted ascending
// — and PhaseBEdgeVisits counts their in-span incident edges.
func TestPhaseBListsComplete(t *testing.T) {
	for name, m := range hierMeshes(t) {
		for _, sz := range hierSizes {
			t.Run(fmt.Sprintf("%s-%d-%d", name, sz.outer, sz.inner), func(t *testing.T) {
				tl := NewHier(m, sz.outer, sz.inner)
				innerClosed := make(map[int32]bool)
				for ti := range tl.Inner {
					cov := tl.InnerCoverOf(ti)
					for _, l := range tl.InnerClosedOf(ti) {
						innerClosed[cov[l]] = true
					}
				}
				var visits int64
				for si, sp := range tl.Spans {
					pb := tl.PhaseBOf(si)
					var want []int32
					for _, v := range tl.CoverOf(si) {
						if !innerClosed[v] {
							want = append(want, v)
						}
					}
					if len(pb) != len(want) {
						t.Fatalf("span %d: %d phase-B vertices, want %d", si, len(pb), len(want))
					}
					for i := range pb {
						if pb[i] != want[i] {
							t.Fatalf("span %d phase-B[%d] = %d, want %d", si, i, pb[i], want[i])
						}
					}
					for _, v := range pb {
						for _, e := range tl.Inc(v) {
							if int(e) >= sp.Lo && int(e) < sp.Hi {
								visits++
							}
						}
					}
				}
				if visits != tl.PhaseBEdgeVisits {
					t.Fatalf("PhaseBEdgeVisits = %d, recount %d", tl.PhaseBEdgeVisits, visits)
				}
			})
		}
	}
}

// TestReplicationLevels: the two-level replication report — the flat
// constructor stays at inner replication 1.0, the hierarchical one reports
// inner >= outer >= 1 (inner tiles refine spans, so their total cover can
// only grow), and String carries both figures.
func TestReplicationLevels(t *testing.T) {
	m, err := mesh.Generate(mesh.SpecTiny())
	if err != nil {
		t.Fatal(err)
	}
	flat := New(m, 1000)
	if o, i := flat.ReplicationLevels(); i != 1 || o != flat.Replication() {
		t.Fatalf("flat ReplicationLevels() = %v, %v", o, i)
	}
	h := NewHier(m, 1000, 64)
	o, i := h.ReplicationLevels()
	if o < 1 || i < o {
		t.Fatalf("hier ReplicationLevels() = %v, %v: want inner >= outer >= 1", o, i)
	}
	var wantInner int64
	for ti := range h.Inner {
		wantInner += int64(len(h.InnerCoverOf(ti)))
	}
	if h.InnerVertexVisits != wantInner {
		t.Fatalf("InnerVertexVisits = %d, recount %d", h.InnerVertexVisits, wantInner)
	}
	s := h.String()
	if want := fmt.Sprintf("inner-replication=%.3f", i); !contains(s, want) {
		t.Fatalf("String() = %q missing %q", s, want)
	}
	if fs := flat.String(); contains(fs, "inner") {
		t.Fatalf("flat String() = %q mentions the hierarchy", fs)
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
