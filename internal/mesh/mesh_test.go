package mesh

import (
	"math"
	"testing"
	"testing/quick"

	"fun3d/internal/geom"
)

// singleTetMesh builds a mesh from one unit tetrahedron.
func singleTetMesh(t *testing.T) *Mesh {
	coords := []geom.Vec3{{}, {X: 1}, {Y: 1}, {Z: 1}}
	tets := [][4]int32{{0, 1, 2, 3}}
	m, err := FromTets(coords, tets, nil)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestFromTetsSingle(t *testing.T) {
	m := singleTetMesh(t)
	if m.NumVertices() != 4 || m.NumEdges() != 6 {
		t.Fatalf("nv=%d ne=%d", m.NumVertices(), m.NumEdges())
	}
	if len(m.BFaces) != 4 {
		t.Fatalf("bfaces=%d", len(m.BFaces))
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	total := 0.0
	for _, v := range m.Vol {
		total += v
	}
	if math.Abs(total-1.0/6) > 1e-14 {
		t.Fatalf("total dual volume %v", total)
	}
	// Each vertex gets exactly a quarter of the tet.
	for v, vol := range m.Vol {
		if math.Abs(vol-1.0/24) > 1e-14 {
			t.Fatalf("vertex %d volume %v", v, vol)
		}
	}
}

func TestFromTetsNegativeOrientation(t *testing.T) {
	coords := []geom.Vec3{{}, {X: 1}, {Y: 1}, {Z: 1}}
	tets := [][4]int32{{1, 0, 2, 3}} // negative volume ordering
	m, err := FromTets(coords, tets, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFromTetsDegenerate(t *testing.T) {
	coords := []geom.Vec3{{}, {X: 1}, {Y: 1}, {X: 0.5, Y: 0.5}} // coplanar
	if _, err := FromTets(coords, [][4]int32{{0, 1, 2, 3}}, nil); err == nil {
		t.Fatal("expected error for degenerate tet")
	}
}

func TestGenerateTinyValid(t *testing.T) {
	m, err := Generate(SpecTiny())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	s := m.ComputeStats()
	if s.WallFaces == 0 {
		t.Fatal("wing carved no wall faces")
	}
	if s.SymFaces == 0 || s.FarfieldFaces == 0 {
		t.Fatalf("missing boundary kinds: %v", s)
	}
	t.Logf("tiny mesh: %v", s)
}

func TestGenerateNoWingBoxVolume(t *testing.T) {
	spec := GenSpec{NX: 6, NY: 5, NZ: 4, XMin: -1, XMax: 1, YMin: 0.1, YMax: 2.1, ZMin: -1, ZMax: 1}
	m, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	s := m.ComputeStats()
	wantVol := 2.0 * 2.0 * 2.0
	if math.Abs(s.TotalVolume-wantVol) > 1e-10 {
		t.Fatalf("box volume %v, want %v", s.TotalVolume, wantVol)
	}
	if s.WallFaces != 0 {
		t.Fatalf("no wing but %d wall faces", s.WallFaces)
	}
	// Structured box of (nx-1)(ny-1)(nz-1) hexes, 6 tets each.
	if s.Tets != 5*4*3*6 {
		t.Fatalf("tets=%d", s.Tets)
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, err := Generate(GenSpec{NX: 1, NY: 5, NZ: 5}); err == nil {
		t.Fatal("expected error for degenerate grid")
	}
	// Wing too small for the grid to carve any cell.
	spec := GenSpec{NX: 3, NY: 3, NZ: 3, HasWing: true,
		Wing: WingParams{RootChord: 1e-6, Taper: 1, Span: 1e-6, Thickness: 1e-6}}
	if _, err := Generate(spec); err == nil {
		t.Fatal("expected error when wing carves nothing")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(SpecTiny())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(SpecTiny())
	if err != nil {
		t.Fatal(err)
	}
	if a.NumVertices() != b.NumVertices() || a.NumEdges() != b.NumEdges() {
		t.Fatal("size mismatch")
	}
	for e := 0; e < a.NumEdges(); e++ {
		if a.EV1[e] != b.EV1[e] || a.EV2[e] != b.EV2[e] || a.ENX[e] != b.ENX[e] {
			t.Fatalf("edge %d differs", e)
		}
	}
	for i := range a.BNodes {
		if a.BNodes[i] != b.BNodes[i] {
			t.Fatalf("bnode %d differs", i)
		}
	}
}

func TestAdjacencySymmetric(t *testing.T) {
	m, err := Generate(SpecTiny())
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < m.NumVertices(); v++ {
		for _, w := range m.Neighbors(v) {
			found := false
			for _, back := range m.Neighbors(int(w)) {
				if back == int32(v) {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("adjacency not symmetric: %d->%d", v, w)
			}
		}
	}
}

func TestAdjacencyMatchesEdges(t *testing.T) {
	m, err := Generate(SpecTiny())
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	for v := 0; v < m.NumVertices(); v++ {
		lo, hi := m.AdjPtr[v], m.AdjPtr[v+1]
		for i := lo; i < hi; i++ {
			w, e := m.Adj[i], m.AdjEdge[i]
			if !((m.EV1[e] == int32(v) && m.EV2[e] == w) || (m.EV2[e] == int32(v) && m.EV1[e] == w)) {
				t.Fatalf("AdjEdge mismatch at vertex %d", v)
			}
			count++
		}
	}
	if count != 2*m.NumEdges() {
		t.Fatalf("adjacency entries %d != 2*edges %d", count, 2*m.NumEdges())
	}
}

func TestPermuteIdentityPreserves(t *testing.T) {
	m, err := Generate(SpecTiny())
	if err != nil {
		t.Fatal(err)
	}
	perm := make([]int32, m.NumVertices())
	for i := range perm {
		perm[i] = int32(i)
	}
	p := m.Permute(perm)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.NumEdges() != m.NumEdges() {
		t.Fatal("edge count changed")
	}
	// After Permute the edges are sorted by (EV1,EV2).
	for e := 1; e < p.NumEdges(); e++ {
		if p.EV1[e] < p.EV1[e-1] ||
			(p.EV1[e] == p.EV1[e-1] && p.EV2[e] < p.EV2[e-1]) {
			t.Fatal("edges not sorted")
		}
	}
}

// Property: permuting by a random permutation preserves every geometric
// invariant (Validate) and the multiset of dual volumes.
func TestPermuteRandomProperty(t *testing.T) {
	m, err := Generate(SpecTiny())
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed uint64) bool {
		perm := pseudoPerm(m.NumVertices(), seed)
		p := m.Permute(perm)
		if err := p.Validate(); err != nil {
			t.Logf("validate: %v", err)
			return false
		}
		totA, totB := 0.0, 0.0
		for v := 0; v < m.NumVertices(); v++ {
			totA += m.Vol[v]
			totB += p.Vol[v]
			if p.Vol[perm[v]] != m.Vol[v] {
				return false
			}
		}
		return math.Abs(totA-totB) < 1e-12*totA
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestPseudoPermIsPermutation(t *testing.T) {
	f := func(n16 uint16, seed uint64) bool {
		n := int(n16%500) + 1
		perm := pseudoPerm(n, seed)
		seen := make([]bool, n)
		for _, p := range perm {
			if p < 0 || int(p) >= n || seen[p] {
				return false
			}
			seen[p] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestWingInside(t *testing.T) {
	w := M6Wing()
	// A point at mid-chord, mid-span, on the camber plane is inside.
	y := w.Span / 2
	le := y * math.Tan(w.SweepDeg*math.Pi/180)
	chord := w.RootChord * (1 - (1-w.Taper)*y/w.Span)
	mid := geom.Vec3{X: le + chord/2, Y: y, Z: 0}
	if !w.Inside(mid) {
		t.Fatal("mid-wing point should be inside")
	}
	if w.Inside(geom.Vec3{X: -1, Y: y, Z: 0}) {
		t.Fatal("upstream point inside")
	}
	if w.Inside(geom.Vec3{X: le + chord/2, Y: -0.1, Z: 0}) {
		t.Fatal("below-root point inside")
	}
	if w.Inside(geom.Vec3{X: le + chord/2, Y: y, Z: 1}) {
		t.Fatal("far-above point inside")
	}
}

func TestScaleSpec(t *testing.T) {
	base := SpecC()
	double := ScaleSpec(base, 2)
	ratio := float64(double.NX*double.NY*double.NZ) / float64(base.NX*base.NY*base.NZ)
	if ratio < 1.6 || ratio > 2.5 {
		t.Fatalf("scale ratio %v", ratio)
	}
}

func TestStatsString(t *testing.T) {
	m := singleTetMesh(t)
	s := m.ComputeStats()
	if s.String() == "" {
		t.Fatal("empty stats string")
	}
	if s.MinDegree != 3 || s.MaxDegree != 3 {
		t.Fatalf("degree %d..%d", s.MinDegree, s.MaxDegree)
	}
}

func TestPatchKindString(t *testing.T) {
	if PatchWall.String() != "wall" || PatchSymmetry.String() != "symmetry" ||
		PatchFarfield.String() != "farfield" || PatchKind(9).String() == "" {
		t.Fatal("PatchKind.String")
	}
}

func BenchmarkGenerateTiny(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Generate(SpecTiny()); err != nil {
			b.Fatal(err)
		}
	}
}

func TestComputeQualityRegularTet(t *testing.T) {
	// Regular tetrahedron: all dihedral angles ~70.53 degrees.
	a := 1.0
	coords := []geom.Vec3{
		{X: a, Y: a, Z: a}, {X: a, Y: -a, Z: -a}, {X: -a, Y: a, Z: -a}, {X: -a, Y: -a, Z: a},
	}
	m, err := FromTets(coords, [][4]int32{{0, 1, 2, 3}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	q := m.ComputeQuality()
	want := math.Acos(1.0/3.0) * 180 / math.Pi // 70.5288
	if math.Abs(q.MinDihedralDeg-want) > 0.01 || math.Abs(q.MaxDihedralDeg-want) > 0.01 {
		t.Fatalf("regular tet dihedrals [%v, %v], want %v", q.MinDihedralDeg, q.MaxDihedralDeg, want)
	}
	if q.MinVolume <= 0 {
		t.Fatal("volume")
	}
	if q.String() == "" {
		t.Fatal("string")
	}
}

func TestComputeQualityGeneratedMesh(t *testing.T) {
	m, err := Generate(SpecTiny())
	if err != nil {
		t.Fatal(err)
	}
	q := m.ComputeQuality()
	if q.MinDihedralDeg <= 0 || q.MaxDihedralDeg >= 180 {
		t.Fatalf("degenerate dihedrals: %v", q)
	}
	if q.MaxAspect < 1 || q.MaxAspect > 100 {
		t.Fatalf("implausible aspect: %v", q)
	}
	if q.MinVolume <= 0 {
		t.Fatalf("nonpositive volume: %v", q)
	}
	t.Logf("quality: %v", q)
	// Empty mesh is the zero value.
	var empty Mesh
	if got := empty.ComputeQuality(); got != (Quality{}) {
		t.Fatalf("empty quality: %v", got)
	}
}
