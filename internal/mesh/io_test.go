package mesh

import (
	"bytes"
	"path/filepath"
	"testing"
)

func TestWriteReadRoundtrip(t *testing.T) {
	m, err := Generate(SpecTiny())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, m); err != nil {
		t.Fatal(err)
	}
	m2, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if m2.NumVertices() != m.NumVertices() || m2.NumEdges() != m.NumEdges() {
		t.Fatal("size mismatch after roundtrip")
	}
	for e := 0; e < m.NumEdges(); e++ {
		if m.EV1[e] != m2.EV1[e] || m.ENX[e] != m2.ENX[e] {
			t.Fatalf("edge %d differs", e)
		}
	}
	if err := m2.Validate(); err != nil {
		t.Fatal(err)
	}
	// Adjacency rebuilt identically.
	for v := 0; v < m.NumVertices(); v++ {
		if m.AdjPtr[v] != m2.AdjPtr[v] {
			t.Fatal("adjacency differs")
		}
	}
}

func TestReadGarbage(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("not a mesh"))); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestFileRoundtrip(t *testing.T) {
	m, err := Generate(SpecTiny())
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "mesh.bin")
	if err := WriteFile(path, m); err != nil {
		t.Fatal(err)
	}
	m2, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if m2.NumEdges() != m.NumEdges() {
		t.Fatal("file roundtrip mismatch")
	}
	if _, err := ReadFile(filepath.Join(t.TempDir(), "missing.bin")); err == nil {
		t.Fatal("missing file accepted")
	}
}
