package mesh

import (
	"fmt"
	"math"

	"fun3d/internal/geom"
)

// WingParams describes the swept, tapered half-wing (ONERA-M6-like planform)
// carved out of the flow domain. The wing root sits on the y=0 symmetry
// plane; the chordwise direction is +x, span +y, thickness ±z.
type WingParams struct {
	RootChord float64 // chord length at the root
	Taper     float64 // tip chord / root chord
	Span      float64 // semispan
	SweepDeg  float64 // leading-edge sweep angle in degrees
	Thickness float64 // max thickness / local chord (biconvex profile)
	RootLE    geom.Vec3
}

// M6Wing returns planform parameters close to the ONERA M6 geometry
// (root chord 0.805, taper 0.562, semispan 1.196, LE sweep 30 deg) with a
// biconvex thickness distribution standing in for the real section.
func M6Wing() WingParams {
	return WingParams{
		RootChord: 0.805,
		Taper:     0.562,
		Span:      1.196,
		SweepDeg:  30,
		Thickness: 0.098,
		RootLE:    geom.Vec3{X: 0, Y: 0, Z: 0},
	}
}

// HalfThickness returns the wing's half-thickness above/below the camber
// plane at planform location (x, y); ok is false outside the planform.
func (w WingParams) HalfThickness(x, y float64) (half float64, ok bool) {
	yy := y - w.RootLE.Y
	if yy < 0 || yy > w.Span {
		return 0, false
	}
	t := yy / w.Span
	le := w.RootLE.X + yy*math.Tan(w.SweepDeg*math.Pi/180)
	chord := w.RootChord * (1 - (1-w.Taper)*t)
	xi := (x - le) / chord
	if xi <= 0 || xi >= 1 {
		return 0, false
	}
	return 0.5 * w.Thickness * chord * 4 * xi * (1 - xi), true
}

// Inside reports whether point p lies strictly inside the wing solid.
func (w WingParams) Inside(p geom.Vec3) bool {
	half, ok := w.HalfThickness(p.X, p.Y)
	return ok && math.Abs(p.Z-w.RootLE.Z) < half
}

// IntersectsZ reports whether the vertical segment (x, y, zlo)-(x, y, zhi)
// intersects the wing solid. Carving cells by segment intersection rather
// than center membership keeps the wing at least one cell thick on coarse
// grids (a thin-plate fallback), so scaled-down meshes always carry a wall.
func (w WingParams) IntersectsZ(x, y, zlo, zhi float64) bool {
	half, ok := w.HalfThickness(x, y)
	if !ok {
		return false
	}
	return zlo < w.RootLE.Z+half && zhi > w.RootLE.Z-half
}

// GenSpec configures mesh generation. The grid is an (NX x NY x NZ)-vertex
// graded box triangulated by the Kuhn (6 tets per hex) subdivision; hexes
// whose center falls inside the wing are removed, exposing a wall boundary.
// When Shuffle is true (the default for the presets) the vertex numbering is
// permuted by a deterministic pseudo-random permutation so that the result
// behaves like a genuinely unstructured mesh: natural grid order would
// otherwise already be near-optimally banded and RCM would be a no-op.
type GenSpec struct {
	NX, NY, NZ int
	Wing       WingParams
	HasWing    bool
	Shuffle    bool
	Seed       uint64
	// Box extents. Zero value picks a domain proportioned around the wing.
	XMin, XMax, YMin, YMax, ZMin, ZMax float64
}

// DefaultBox fills in domain extents sized relative to the wing.
func (g *GenSpec) DefaultBox() {
	if g.XMin == 0 && g.XMax == 0 {
		g.XMin, g.XMax = -2.5, 4.0
	}
	if g.YMin == 0 && g.YMax == 0 {
		g.YMin, g.YMax = 0, 3.0
	}
	if g.ZMin == 0 && g.ZMax == 0 {
		g.ZMin, g.ZMax = -2.5, 2.5
	}
}

// grade maps a uniform parameter u in [0,1] to [0,1] with points clustered
// around c (also in [0,1]) using a tanh stretching of strength s.
func grade(u, c, s float64) float64 {
	// Symmetric tanh clustering: derivative smallest at u=c.
	f := func(x float64) float64 { return math.Tanh(s * (x - c)) }
	lo, hi := f(0), f(1)
	return (f(u) - lo) / (hi - lo)
}

// Generate builds the mesh described by spec. The result is validated
// structurally (edge ordering, adjacency); call Validate for the full
// geometric identity check.
func Generate(spec GenSpec) (*Mesh, error) {
	if spec.NX < 2 || spec.NY < 2 || spec.NZ < 2 {
		return nil, fmt.Errorf("mesh: grid must be at least 2x2x2, got %dx%dx%d", spec.NX, spec.NY, spec.NZ)
	}
	spec.DefaultBox()
	nx, ny, nz := spec.NX, spec.NY, spec.NZ

	// Graded coordinates per axis, clustered near the wing.
	xc := make([]float64, nx)
	yc := make([]float64, ny)
	zc := make([]float64, nz)
	wing := spec.Wing
	// Cluster x around the wing mid-chord, y around the root half, z at 0.
	cx := 0.0
	cz := 0.5
	if spec.HasWing {
		midChord := wing.RootLE.X + 0.5*wing.RootChord
		cx = (midChord - spec.XMin) / (spec.XMax - spec.XMin)
		cz = (wing.RootLE.Z - spec.ZMin) / (spec.ZMax - spec.ZMin)
	}
	for i := 0; i < nx; i++ {
		u := float64(i) / float64(nx-1)
		xc[i] = spec.XMin + (spec.XMax-spec.XMin)*grade(u, cx, 2.2)
	}
	for j := 0; j < ny; j++ {
		u := float64(j) / float64(ny-1)
		yc[j] = spec.YMin + (spec.YMax-spec.YMin)*grade(u, 0.15, 2.0)
	}
	for k := 0; k < nz; k++ {
		u := float64(k) / float64(nz-1)
		zc[k] = spec.ZMin + (spec.ZMax-spec.ZMin)*grade(u, cz, 2.2)
	}

	vid := func(i, j, k int) int32 { return int32((i*ny+j)*nz + k) }
	nv := nx * ny * nz
	coords := make([]geom.Vec3, nv)
	for i := 0; i < nx; i++ {
		for j := 0; j < ny; j++ {
			for k := 0; k < nz; k++ {
				coords[vid(i, j, k)] = geom.Vec3{X: xc[i], Y: yc[j], Z: zc[k]}
			}
		}
	}

	// Kuhn subdivision: 6 tets per hex, all sharing the main diagonal
	// (i,j,k)-(i+1,j+1,k+1). Conforming across hexes because every face
	// diagonal runs from the face's min corner to its max corner.
	perms := [6][3]int{{0, 1, 2}, {0, 2, 1}, {1, 0, 2}, {1, 2, 0}, {2, 0, 1}, {2, 1, 0}}
	var tets [][4]int32
	used := make([]bool, nv)
	skipped := 0
	for i := 0; i < nx-1; i++ {
		for j := 0; j < ny-1; j++ {
			for k := 0; k < nz-1; k++ {
				if spec.HasWing {
					cx := (xc[i] + xc[i+1]) / 2
					cy := (yc[j] + yc[j+1]) / 2
					if wing.IntersectsZ(cx, cy, zc[k], zc[k+1]) {
						skipped++
						continue
					}
				}
				var corner [3]int = [3]int{i, j, k}
				for _, p := range perms {
					var t [4]int32
					c := corner
					t[0] = vid(c[0], c[1], c[2])
					for step := 0; step < 3; step++ {
						c[p[step]]++
						t[step+1] = vid(c[0], c[1], c[2])
					}
					tets = append(tets, t)
					for _, v := range t {
						used[v] = true
					}
				}
			}
		}
	}
	if spec.HasWing && skipped == 0 {
		return nil, fmt.Errorf("mesh: wing carved no cells; grid too coarse for wing %+v", wing)
	}

	// Compact away unused vertices (interior of the carved wing).
	remap := make([]int32, nv)
	var newCoords []geom.Vec3
	for v := 0; v < nv; v++ {
		if used[v] {
			remap[v] = int32(len(newCoords))
			newCoords = append(newCoords, coords[v])
		} else {
			remap[v] = -1
		}
	}
	for ti := range tets {
		for c := 0; c < 4; c++ {
			tets[ti][c] = remap[tets[ti][c]]
		}
	}
	coords = newCoords

	// Optional deterministic shuffle of vertex numbering.
	if spec.Shuffle {
		perm := pseudoPerm(len(coords), spec.Seed)
		shuffled := make([]geom.Vec3, len(coords))
		for v, p := range perm {
			shuffled[p] = coords[v]
		}
		coords = shuffled
		for ti := range tets {
			for c := 0; c < 4; c++ {
				tets[ti][c] = perm[tets[ti][c]]
			}
		}
	}

	// Boundary classification.
	eps := 1e-9 * (spec.XMax - spec.XMin)
	onBox := func(p geom.Vec3) (bool, bool) {
		// returns (onDomainBox, onSymmetryPlane)
		if math.Abs(p.Y-spec.YMin) < eps {
			return true, true
		}
		if math.Abs(p.X-spec.XMin) < eps || math.Abs(p.X-spec.XMax) < eps ||
			math.Abs(p.Y-spec.YMax) < eps ||
			math.Abs(p.Z-spec.ZMin) < eps || math.Abs(p.Z-spec.ZMax) < eps {
			return true, false
		}
		return false, false
	}
	classify := func(v [3]int32, cen geom.Vec3) PatchKind {
		box, sym := onBox(cen)
		if sym {
			return PatchSymmetry
		}
		if box {
			return PatchFarfield
		}
		return PatchWall
	}

	m, err := FromTets(coords, tets, classify)
	if err != nil {
		return nil, err
	}
	return m, nil
}

// pseudoPerm returns a deterministic pseudo-random permutation of [0,n)
// generated by a splitmix64-seeded Fisher-Yates shuffle.
func pseudoPerm(n int, seed uint64) []int32 {
	perm := make([]int32, n)
	for i := range perm {
		perm[i] = int32(i)
	}
	s := seed + 0x9e3779b97f4a7c15
	next := func() uint64 {
		s += 0x9e3779b97f4a7c15
		z := s
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	for i := n - 1; i > 0; i-- {
		j := int(next() % uint64(i+1))
		perm[i], perm[j] = perm[j], perm[i]
	}
	return perm
}

// Preset mesh sizes. The paper's Mesh-C (358k vertices / 2.4M edges) and
// Mesh-D (2.76M vertices / 18.9M edges) are scaled down so the benchmark
// suite runs on one machine; the ratio D/C (~8x vertices) is preserved.
// Benchmarks and cmd flags can request arbitrary sizes.

// SpecC returns the generation spec for Mesh-C' (the single-node workload).
func SpecC() GenSpec {
	return GenSpec{NX: 44, NY: 34, NZ: 30, Wing: M6Wing(), HasWing: true, Shuffle: true, Seed: 42}
}

// SpecD returns the generation spec for Mesh-D' (the multi-node workload,
// ~8x the vertices of Mesh-C', matching the paper's ratio).
func SpecD() GenSpec {
	return GenSpec{NX: 88, NY: 68, NZ: 60, Wing: M6Wing(), HasWing: true, Shuffle: true, Seed: 42}
}

// SpecTiny returns a small spec for tests.
func SpecTiny() GenSpec {
	return GenSpec{NX: 10, NY: 8, NZ: 8, Wing: M6Wing(), HasWing: true, Shuffle: true, Seed: 1}
}

// ScaleSpec returns a spec with roughly f times the vertices of base
// (dimensions scaled by cbrt(f)).
func ScaleSpec(base GenSpec, f float64) GenSpec {
	s := math.Cbrt(f)
	out := base
	out.NX = max(2, int(math.Round(float64(base.NX)*s)))
	out.NY = max(2, int(math.Round(float64(base.NY)*s)))
	out.NZ = max(2, int(math.Round(float64(base.NZ)*s)))
	return out
}
