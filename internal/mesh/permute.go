package mesh

import (
	"sort"

	"fun3d/internal/geom"
)

// Permute returns a new mesh with vertices renumbered by perm, where
// perm[old] = new. Edge endpoints are re-canonicalized (EV1 < EV2, dual
// normals flipped accordingly) and the edge list is sorted by (EV1, EV2) —
// the paper's "vertices at one end of each edge are sorted in an increasing
// order" regularization that makes edge-loop accesses more local after an
// RCM vertex reordering.
func (m *Mesh) Permute(perm []int32) *Mesh {
	nv := m.NumVertices()
	if len(perm) != nv {
		panic("mesh: permutation length mismatch")
	}
	ne := m.NumEdges()
	out := &Mesh{
		Coords: make([]geom.Vec3, nv),
		Vol:    make([]float64, nv),
	}
	for old := 0; old < nv; old++ {
		nw := perm[old]
		out.Coords[nw] = m.Coords[old]
		out.Vol[nw] = m.Vol[old]
	}
	type edgeRec struct {
		a, b    int32
		x, y, z float64
	}
	recs := make([]edgeRec, ne)
	for e := 0; e < ne; e++ {
		a, b := perm[m.EV1[e]], perm[m.EV2[e]]
		x, y, z := m.ENX[e], m.ENY[e], m.ENZ[e]
		if a > b {
			a, b = b, a
			x, y, z = -x, -y, -z
		}
		recs[e] = edgeRec{a, b, x, y, z}
	}
	sort.Slice(recs, func(i, j int) bool {
		if recs[i].a != recs[j].a {
			return recs[i].a < recs[j].a
		}
		return recs[i].b < recs[j].b
	})
	out.EV1 = make([]int32, ne)
	out.EV2 = make([]int32, ne)
	out.ENX = make([]float64, ne)
	out.ENY = make([]float64, ne)
	out.ENZ = make([]float64, ne)
	for e, r := range recs {
		out.EV1[e], out.EV2[e] = r.a, r.b
		out.ENX[e], out.ENY[e], out.ENZ[e] = r.x, r.y, r.z
	}
	out.BFaces = make([]BFace, len(m.BFaces))
	for i, bf := range m.BFaces {
		out.BFaces[i] = BFace{
			V:    [3]int32{perm[bf.V[0]], perm[bf.V[1]], perm[bf.V[2]]},
			Kind: bf.Kind,
		}
	}
	out.BNodes = make([]BNode, len(m.BNodes))
	for i, bn := range m.BNodes {
		out.BNodes[i] = BNode{V: perm[bn.V], Kind: bn.Kind, Normal: bn.Normal}
	}
	sortBNodes(out.BNodes)
	out.Tets = make([][4]int32, len(m.Tets))
	for i, t := range m.Tets {
		out.Tets[i] = [4]int32{perm[t[0]], perm[t[1]], perm[t[2]], perm[t[3]]}
	}
	out.buildAdjacency()
	return out
}
