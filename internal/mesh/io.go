package mesh

import (
	"bufio"
	"encoding/gob"
	"fmt"
	"fun3d/internal/geom"
	"io"
	"os"
)

// meshWire is the serialized form (exported mirror of Mesh's data; the
// adjacency is rebuilt on load rather than stored).
type meshWire struct {
	Coords        []struct{ X, Y, Z float64 }
	EV1, EV2      []int32
	ENX, ENY, ENZ []float64
	Vol           []float64
	BFaces        []BFace
	BNodes        []BNode
	Tets          [][4]int32
}

// Write serializes the mesh with encoding/gob.
func Write(w io.Writer, m *Mesh) error {
	var wire meshWire
	wire.Coords = make([]struct{ X, Y, Z float64 }, len(m.Coords))
	for i, c := range m.Coords {
		wire.Coords[i] = struct{ X, Y, Z float64 }{c.X, c.Y, c.Z}
	}
	wire.EV1, wire.EV2 = m.EV1, m.EV2
	wire.ENX, wire.ENY, wire.ENZ = m.ENX, m.ENY, m.ENZ
	wire.Vol = m.Vol
	wire.BFaces = m.BFaces
	wire.BNodes = m.BNodes
	wire.Tets = m.Tets
	return gob.NewEncoder(w).Encode(&wire)
}

// Read deserializes a mesh written by Write and rebuilds the adjacency.
func Read(r io.Reader) (*Mesh, error) {
	var wire meshWire
	if err := gob.NewDecoder(r).Decode(&wire); err != nil {
		return nil, fmt.Errorf("mesh: decode: %w", err)
	}
	m := &Mesh{
		EV1: wire.EV1, EV2: wire.EV2,
		ENX: wire.ENX, ENY: wire.ENY, ENZ: wire.ENZ,
		Vol: wire.Vol, BFaces: wire.BFaces, BNodes: wire.BNodes,
		Tets: wire.Tets,
	}
	m.Coords = make([]geom.Vec3, len(wire.Coords))
	for i, c := range wire.Coords {
		m.Coords[i] = geom.Vec3{X: c.X, Y: c.Y, Z: c.Z}
	}
	if len(m.EV1) != len(m.EV2) || len(m.EV1) != len(m.ENX) {
		return nil, fmt.Errorf("mesh: inconsistent edge arrays")
	}
	m.buildAdjacency()
	return m, nil
}

// WriteFile writes the mesh to path.
func WriteFile(path string, m *Mesh) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	if err := Write(w, m); err != nil {
		f.Close()
		return err
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadFile loads a mesh from path.
func ReadFile(path string) (*Mesh, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(bufio.NewReader(f))
}
