package mesh

import "sort"

// sortSlice sorts b with the provided less function (tiny wrapper so call
// sites read naturally).
func sortSlice(b []BNode, less func(i, j int) bool) {
	sort.Slice(b, less)
}

type pairSorter struct {
	a, b []int32
}

func (p pairSorter) Len() int           { return len(p.a) }
func (p pairSorter) Less(i, j int) bool { return p.a[i] < p.a[j] }
func (p pairSorter) Swap(i, j int) {
	p.a[i], p.a[j] = p.a[j], p.a[i]
	p.b[i], p.b[j] = p.b[j], p.b[i]
}

// sortFaceKeys sorts sorted-vertex-triple face keys lexicographically.
func sortFaceKeys(keys [][3]int32) {
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a[0] != b[0] {
			return a[0] < b[0]
		}
		if a[1] != b[1] {
			return a[1] < b[1]
		}
		return a[2] < b[2]
	})
}

// sortPairs sorts parallel slices a and b by a.
func sortPairs(a, b []int32) {
	sort.Sort(pairSorter{a, b})
}
