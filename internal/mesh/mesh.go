// Package mesh defines the unstructured tetrahedral, vertex-centered mesh
// representation used throughout the repository, together with a
// deterministic generator for ONERA-M6-like wing meshes (see gen.go).
//
// The representation mirrors what the paper's edge-based kernels consume:
//   - vertex coordinates and median-dual control volumes,
//   - an edge list with dual-face area vectors (SoA layout for the edge
//     data, per the paper's data-structure optimization),
//   - aggregated boundary-condition data per boundary vertex,
//   - CSR vertex adjacency for reordering/partitioning/matrix symbolics.
//
// The unstructured mesh "requires explicit storage of neighborhood
// information" (paper §IV.B): nothing below assumes any structured origin.
package mesh

import (
	"fmt"
	"math"

	"fun3d/internal/geom"
)

// PatchKind classifies boundary patches.
type PatchKind uint8

const (
	// PatchWall is an inviscid slip wall (the wing surface).
	PatchWall PatchKind = iota
	// PatchSymmetry is the y=0 symmetry plane (identical treatment to a
	// slip wall for inviscid flow, kept distinct for post-processing).
	PatchSymmetry
	// PatchFarfield is the outer boundary with freestream conditions.
	PatchFarfield
)

func (k PatchKind) String() string {
	switch k {
	case PatchWall:
		return "wall"
	case PatchSymmetry:
		return "symmetry"
	case PatchFarfield:
		return "farfield"
	}
	return fmt.Sprintf("PatchKind(%d)", uint8(k))
}

// BFace is a boundary triangle with an outward area vector.
type BFace struct {
	V    [3]int32
	Kind PatchKind
}

// BNode aggregates the dual boundary faces of one vertex on one patch kind:
// Normal is the outward area vector of the vertex's share of that patch.
type BNode struct {
	V      int32
	Kind   PatchKind
	Normal geom.Vec3
}

// Mesh is an immutable unstructured tetrahedral mesh with vertex-centered
// median-dual metrics. Construct with Generate or FromTets.
type Mesh struct {
	// Coords[v] is the position of vertex v.
	Coords []geom.Vec3

	// Edge data in SoA layout. Edge e connects EV1[e] < EV2[e]; the dual
	// face area vector (ENX,ENY,ENZ)[e] points from EV1 toward EV2 and its
	// magnitude is the dual face area.
	EV1, EV2      []int32
	ENX, ENY, ENZ []float64

	// Vol[v] is the median-dual control volume of vertex v.
	Vol []float64

	// BFaces are the boundary triangles; BNodes the per-vertex aggregated
	// boundary metrics (one entry per (vertex, patch kind) pair).
	BFaces []BFace
	BNodes []BNode

	// CSR vertex-to-vertex adjacency (symmetric, no self loops), and the
	// parallel vertex-to-edge incidence: AdjEdge[i] is the edge realizing
	// the adjacency Adj[i].
	AdjPtr  []int32
	Adj     []int32
	AdjEdge []int32

	// Tets is retained for validation and post-processing; kernels never
	// touch it.
	Tets [][4]int32
}

// NumVertices returns the vertex count.
func (m *Mesh) NumVertices() int { return len(m.Coords) }

// NumEdges returns the edge count.
func (m *Mesh) NumEdges() int { return len(m.EV1) }

// EdgeNormal returns the dual face area vector of edge e, oriented from
// EV1[e] to EV2[e].
func (m *Mesh) EdgeNormal(e int) geom.Vec3 {
	return geom.Vec3{X: m.ENX[e], Y: m.ENY[e], Z: m.ENZ[e]}
}

// Degree returns the number of neighbors of vertex v.
func (m *Mesh) Degree(v int) int { return int(m.AdjPtr[v+1] - m.AdjPtr[v]) }

// Neighbors returns the adjacency slice of vertex v (do not modify).
func (m *Mesh) Neighbors(v int) []int32 { return m.Adj[m.AdjPtr[v]:m.AdjPtr[v+1]] }

// FromTets builds the full edge-based representation from a tet soup.
// coords are vertex positions; tets index into coords and may have either
// orientation (they are reoriented to positive volume); bfaceKind, if
// non-nil, classifies a boundary triangle given its (unsorted) vertex ids
// and outward centroid. Boundary faces are discovered as triangles incident
// to exactly one tet.
func FromTets(coords []geom.Vec3, tets [][4]int32, bfaceKind func(v [3]int32, centroid geom.Vec3) PatchKind) (*Mesh, error) {
	nv := len(coords)
	m := &Mesh{Coords: coords, Tets: tets}

	// Reorient tets to positive volume.
	for ti := range tets {
		t := &tets[ti]
		vol := geom.TetVolume(coords[t[0]], coords[t[1]], coords[t[2]], coords[t[3]])
		if vol == 0 {
			return nil, fmt.Errorf("mesh: tet %d is degenerate", ti)
		}
		if vol < 0 {
			t[0], t[1] = t[1], t[0]
		}
	}

	// Pass 1: count edges via a map keyed by the vertex pair.
	type accum struct {
		n geom.Vec3
	}
	edgeIdx := make(map[uint64]int32, len(tets)*3)
	key := func(a, b int32) uint64 {
		if a > b {
			a, b = b, a
		}
		return uint64(a)<<32 | uint64(uint32(b))
	}
	var ev1, ev2 []int32
	var eacc []accum
	m.Vol = make([]float64, nv)

	var verts [4]geom.Vec3
	for _, t := range tets {
		for i := 0; i < 4; i++ {
			verts[i] = coords[t[i]]
		}
		vol := geom.TetVolume(verts[0], verts[1], verts[2], verts[3])
		for i := 0; i < 4; i++ {
			m.Vol[t[i]] += vol / 4
		}
		for e := 0; e < 6; e++ {
			lp, lq, _, _ := geom.TetEdge(e)
			gp, gq := t[lp], t[lq]
			area := geom.DualFaceContribution(&verts, e) // points gp -> gq
			a, b := gp, gq
			sign := 1.0
			if a > b {
				a, b, sign = b, a, -1.0
			}
			k := key(a, b)
			idx, ok := edgeIdx[k]
			if !ok {
				idx = int32(len(ev1))
				edgeIdx[k] = idx
				ev1 = append(ev1, a)
				ev2 = append(ev2, b)
				eacc = append(eacc, accum{})
			}
			eacc[idx].n = eacc[idx].n.Add(area.Scale(sign))
		}
	}
	ne := len(ev1)
	m.EV1, m.EV2 = ev1, ev2
	m.ENX = make([]float64, ne)
	m.ENY = make([]float64, ne)
	m.ENZ = make([]float64, ne)
	for e := 0; e < ne; e++ {
		m.ENX[e] = eacc[e].n.X
		m.ENY[e] = eacc[e].n.Y
		m.ENZ[e] = eacc[e].n.Z
	}

	// Boundary faces: triangles incident to exactly one tet.
	if err := m.buildBoundary(bfaceKind); err != nil {
		return nil, err
	}
	m.buildAdjacency()
	return m, nil
}

// tet faces with outward orientation for a positively oriented tet.
var tetFaces = [4][3]int{{0, 2, 1}, {0, 1, 3}, {1, 2, 3}, {0, 3, 2}}

func (m *Mesh) buildBoundary(bfaceKind func(v [3]int32, centroid geom.Vec3) PatchKind) error {
	type faceRec struct {
		v     [3]int32 // outward winding
		count int
	}
	faces := make(map[[3]int32]*faceRec, len(m.Tets)*2)
	fkey := func(v [3]int32) [3]int32 {
		// sorted copy
		a, b, c := v[0], v[1], v[2]
		if a > b {
			a, b = b, a
		}
		if b > c {
			b, c = c, b
		}
		if a > b {
			a, b = b, a
		}
		return [3]int32{a, b, c}
	}
	for _, t := range m.Tets {
		for _, f := range tetFaces {
			v := [3]int32{t[f[0]], t[f[1]], t[f[2]]}
			k := fkey(v)
			if r, ok := faces[k]; ok {
				r.count++
			} else {
				faces[k] = &faceRec{v: v, count: 1}
			}
		}
	}
	keys := make([][3]int32, 0, len(faces))
	for k := range faces {
		keys = append(keys, k)
	}
	sortFaceKeys(keys) // map iteration order is random; results must be deterministic
	for _, k := range keys {
		r := faces[k]
		switch r.count {
		case 1:
			a, b, c := m.Coords[r.v[0]], m.Coords[r.v[1]], m.Coords[r.v[2]]
			kind := PatchFarfield
			if bfaceKind != nil {
				kind = bfaceKind(r.v, geom.Centroid3(a, b, c))
			}
			m.BFaces = append(m.BFaces, BFace{V: r.v, Kind: kind})
		case 2:
			// interior face, fine
		default:
			return fmt.Errorf("mesh: non-manifold face %v shared by %d tets", r.v, r.count)
		}
	}

	// Aggregate per-vertex boundary normals by patch kind.
	type bkey struct {
		v    int32
		kind PatchKind
	}
	agg := make(map[bkey]geom.Vec3)
	for _, bf := range m.BFaces {
		a, b, c := m.Coords[bf.V[0]], m.Coords[bf.V[1]], m.Coords[bf.V[2]]
		na, nb, nc := geom.BoundaryDualContribution(a, b, c)
		for i, n := range []geom.Vec3{na, nb, nc} {
			k := bkey{bf.V[i], bf.Kind}
			agg[k] = agg[k].Add(n)
		}
	}
	m.BNodes = m.BNodes[:0]
	for k, n := range agg {
		m.BNodes = append(m.BNodes, BNode{V: k.v, Kind: k.kind, Normal: n})
	}
	sortBNodes(m.BNodes)
	return nil
}

func sortBNodes(b []BNode) {
	// Deterministic order: by vertex then kind (map iteration is random).
	sortSlice(b, func(i, j int) bool {
		if b[i].V != b[j].V {
			return b[i].V < b[j].V
		}
		return b[i].Kind < b[j].Kind
	})
}

// FromEdges assembles a Mesh directly from edge-based data, bypassing the
// tet pipeline. It exists for subdomain views: a rank's share of a
// decomposed mesh is itself a valid edge-based mesh (owned vertices plus
// ghosts), and materializing it this way lets the shared-memory flux
// kernels and their thread partitions run unchanged on one rank's piece.
// The slices are referenced, not copied; edge order is preserved. Unlike
// FromTets output, EV1 < EV2 is not guaranteed (subdomain-local numbering
// may flip an edge), which the kernels do not require. Tets and BFaces are
// left empty.
func FromEdges(coords []geom.Vec3, vol []float64, ev1, ev2 []int32, enx, eny, enz []float64, bnodes []BNode) *Mesh {
	m := &Mesh{
		Coords: coords, Vol: vol,
		EV1: ev1, EV2: ev2,
		ENX: enx, ENY: eny, ENZ: enz,
		BNodes: bnodes,
	}
	m.buildAdjacency()
	return m
}

func (m *Mesh) buildAdjacency() {
	nv := m.NumVertices()
	ne := m.NumEdges()
	deg := make([]int32, nv+1)
	for e := 0; e < ne; e++ {
		deg[m.EV1[e]+1]++
		deg[m.EV2[e]+1]++
	}
	for v := 0; v < nv; v++ {
		deg[v+1] += deg[v]
	}
	m.AdjPtr = deg
	m.Adj = make([]int32, 2*ne)
	m.AdjEdge = make([]int32, 2*ne)
	fill := make([]int32, nv)
	for e := 0; e < ne; e++ {
		a, b := m.EV1[e], m.EV2[e]
		pa := m.AdjPtr[a] + fill[a]
		m.Adj[pa], m.AdjEdge[pa] = b, int32(e)
		fill[a]++
		pb := m.AdjPtr[b] + fill[b]
		m.Adj[pb], m.AdjEdge[pb] = a, int32(e)
		fill[b]++
	}
	// Sort each adjacency run (deterministic, helps locality analysis).
	for v := 0; v < nv; v++ {
		lo, hi := m.AdjPtr[v], m.AdjPtr[v+1]
		adj, ae := m.Adj[lo:hi], m.AdjEdge[lo:hi]
		sortPairs(adj, ae)
	}
}

// Validate checks the fundamental discrete identities of the mesh:
//
//  1. closure: for every vertex, the signed sum of incident dual-face area
//     vectors plus the vertex's boundary normals is (numerically) zero;
//  2. the dual volumes are positive and sum to the total tet volume;
//  3. edge endpoints are ordered and in range.
//
// These identities are what guarantee freestream preservation of the
// finite-volume scheme, so Validate failing means the solver is unusable.
func (m *Mesh) Validate() error {
	nv := m.NumVertices()
	closure := make([]geom.Vec3, nv)
	scale := make([]float64, nv) // running magnitude for a relative tolerance
	for e := 0; e < m.NumEdges(); e++ {
		a, b := m.EV1[e], m.EV2[e]
		if a >= b || b >= int32(nv) || a < 0 {
			return fmt.Errorf("mesh: bad edge %d: (%d,%d)", e, a, b)
		}
		n := m.EdgeNormal(e)
		closure[a] = closure[a].Add(n)
		closure[b] = closure[b].Sub(n)
		scale[a] += n.Norm()
		scale[b] += n.Norm()
	}
	for _, bn := range m.BNodes {
		closure[bn.V] = closure[bn.V].Add(bn.Normal)
		scale[bn.V] += bn.Normal.Norm()
	}
	for v := 0; v < nv; v++ {
		if closure[v].Norm() > 1e-10*(scale[v]+1e-30) {
			return fmt.Errorf("mesh: closure defect %.3e at vertex %d (scale %.3e)",
				closure[v].Norm(), v, scale[v])
		}
	}
	totalDual, totalTet := 0.0, 0.0
	for v := 0; v < nv; v++ {
		if m.Vol[v] <= 0 {
			return fmt.Errorf("mesh: nonpositive dual volume %g at vertex %d", m.Vol[v], v)
		}
		totalDual += m.Vol[v]
	}
	for _, t := range m.Tets {
		totalTet += geom.TetVolume(m.Coords[t[0]], m.Coords[t[1]], m.Coords[t[2]], m.Coords[t[3]])
	}
	if math.Abs(totalDual-totalTet) > 1e-9*totalTet {
		return fmt.Errorf("mesh: dual volume %g != tet volume %g", totalDual, totalTet)
	}
	return nil
}

// Stats summarizes a mesh for Table-I style reporting.
type Stats struct {
	Vertices, Edges, Tets, BoundaryFaces int
	WallFaces, FarfieldFaces, SymFaces   int
	MinDegree, MaxDegree                 int
	AvgDegree                            float64
	TotalVolume                          float64
}

// Stats computes summary statistics.
func (m *Mesh) ComputeStats() Stats {
	s := Stats{
		Vertices:      m.NumVertices(),
		Edges:         m.NumEdges(),
		Tets:          len(m.Tets),
		BoundaryFaces: len(m.BFaces),
		MinDegree:     math.MaxInt,
	}
	for _, bf := range m.BFaces {
		switch bf.Kind {
		case PatchWall:
			s.WallFaces++
		case PatchFarfield:
			s.FarfieldFaces++
		case PatchSymmetry:
			s.SymFaces++
		}
	}
	for v := 0; v < m.NumVertices(); v++ {
		d := m.Degree(v)
		if d < s.MinDegree {
			s.MinDegree = d
		}
		if d > s.MaxDegree {
			s.MaxDegree = d
		}
		s.TotalVolume += m.Vol[v]
	}
	if m.NumVertices() > 0 {
		s.AvgDegree = 2 * float64(m.NumEdges()) / float64(m.NumVertices())
	} else {
		s.MinDegree = 0
	}
	return s
}

func (s Stats) String() string {
	return fmt.Sprintf("vertices=%d edges=%d tets=%d bfaces=%d (wall=%d sym=%d far=%d) degree=[%d..%d] avg=%.2f vol=%.4g",
		s.Vertices, s.Edges, s.Tets, s.BoundaryFaces, s.WallFaces, s.SymFaces, s.FarfieldFaces,
		s.MinDegree, s.MaxDegree, s.AvgDegree, s.TotalVolume)
}
