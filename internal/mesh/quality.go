package mesh

import (
	"fmt"
	"math"

	"fun3d/internal/geom"
)

// Quality summarizes element quality over the tetrahedra — the standard
// diagnostics a mesh-dependent solver study reports alongside Table-I
// sizes (badly shaped cells degrade both the discretization and the
// ILU conditioning).
type Quality struct {
	// MinDihedralDeg / MaxDihedralDeg bound the dihedral angles (degrees);
	// the regular tetrahedron has ~70.5° everywhere.
	MinDihedralDeg, MaxDihedralDeg float64
	// MaxAspect is the worst circumradius-to-shortest-edge style ratio
	// (longest edge / shortest altitude).
	MaxAspect float64
	// MinVolume is the smallest tet volume.
	MinVolume float64
}

// ComputeQuality scans all tetrahedra. An empty mesh returns the zero
// value.
func (m *Mesh) ComputeQuality() Quality {
	q := Quality{MinDihedralDeg: 180, MaxDihedralDeg: 0, MaxAspect: 0, MinVolume: math.Inf(1)}
	if len(m.Tets) == 0 {
		return Quality{}
	}
	for _, t := range m.Tets {
		var v [4]geom.Vec3
		for i := 0; i < 4; i++ {
			v[i] = m.Coords[t[i]]
		}
		vol := geom.TetVolume(v[0], v[1], v[2], v[3])
		if vol < 0 {
			vol = -vol
		}
		if vol < q.MinVolume {
			q.MinVolume = vol
		}
		// Face normals (outward for positive orientation).
		faces := [4][3]int{{0, 2, 1}, {0, 1, 3}, {1, 2, 3}, {0, 3, 2}}
		var n [4]geom.Vec3
		var area [4]float64
		for fi, f := range faces {
			nv := geom.TriangleAreaVec(v[f[0]], v[f[1]], v[f[2]])
			area[fi] = nv.Norm()
			n[fi] = nv.Normalized()
		}
		// Dihedral angle along the shared edge of every face pair:
		// angle = pi - angle between outward normals.
		for a := 0; a < 4; a++ {
			for b := a + 1; b < 4; b++ {
				c := n[a].Dot(n[b])
				c = math.Max(-1, math.Min(1, c))
				d := (math.Pi - math.Acos(c)) * 180 / math.Pi
				if d < q.MinDihedralDeg {
					q.MinDihedralDeg = d
				}
				if d > q.MaxDihedralDeg {
					q.MaxDihedralDeg = d
				}
			}
		}
		// Aspect: longest edge over shortest altitude (3V/maxArea).
		longest := 0.0
		for e := 0; e < 6; e++ {
			p, qq, _, _ := geom.TetEdge(e)
			if l := v[qq].Sub(v[p]).Norm(); l > longest {
				longest = l
			}
		}
		maxArea := 0.0
		for _, a := range area {
			if a > maxArea {
				maxArea = a
			}
		}
		if vol > 0 && maxArea > 0 {
			altitude := 3 * vol / maxArea
			if asp := longest / altitude; asp > q.MaxAspect {
				q.MaxAspect = asp
			}
		}
	}
	return q
}

func (q Quality) String() string {
	return fmt.Sprintf("dihedral=[%.1f°..%.1f°] maxAspect=%.2f minVol=%.3g",
		q.MinDihedralDeg, q.MaxDihedralDeg, q.MaxAspect, q.MinVolume)
}
