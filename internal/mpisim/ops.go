package mpisim

import (
	"math"

	"fun3d/internal/prof"
	"fun3d/internal/vecop"
)

// distOps implements krylov.Vectors over rank-local shards: reductions go
// through Allreduce (the Krylov collectives of Fig 10); element-wise ops
// are local and charge the vector-primitive rate. All reductions route
// through one ReduceQueue, so a Dot costs one Allreduce, a fused MDotNorm
// one, and a pipelined DotBatch one — whatever the batch width. While
// inSolve is set, rank 0 books each collective into the Krylov counters
// (collectives are replicated deterministically across ranks, and
// Solve merges every rank's metrics, so booking on one rank keeps the
// merged count equal to the true collective count).
type distOps struct {
	w       *worker
	rq      *ReduceQueue
	inSolve bool
}

func newDistOps(w *worker) *distOps {
	return &distOps{w: w, rq: w.rank.NewReduceQueue()}
}

func (o *distOps) chargeVec(n, nvecs int) {
	o.w.compute(prof.VecOps, float64(n*nvecs)*o.w.vecRates.VecPerElem)
	o.w.met.Inc(prof.VecElems, int64(n*nvecs))
}

// reduce flushes the queue as one collective and books it.
func (o *distOps) reduce() []float64 {
	n := o.rq.Pending()
	out := o.rq.Flush()
	if o.inSolve && o.w.rank.id == 0 {
		o.w.met.Inc(prof.KrylovAllreduceCalls, 1)
		o.w.met.Inc(prof.KrylovAllreduceBytes, int64(8*n))
	}
	return out
}

// Dot returns the global inner product.
func (o *distOps) Dot(x, y []float64) float64 {
	s := 0.0
	for i := range x {
		s += x[i] * y[i]
	}
	o.chargeVec(len(x), 1)
	o.rq.Push(s)
	return o.reduce()[0]
}

// Norm2 returns the global Euclidean norm. It rides the same queued
// reduction path as every other collective, so its bytes and call are
// booked exactly once.
func (o *distOps) Norm2(x []float64) float64 { return math.Sqrt(o.Dot(x, x)) }

// AXPY computes y += a*x locally.
func (o *distOps) AXPY(a float64, x, y []float64) {
	for i := range x {
		y[i] += a * x[i]
	}
	o.chargeVec(len(x), 1)
}

// WAXPY computes w = a*x + y locally.
func (o *distOps) WAXPY(w []float64, a float64, x, y []float64) {
	for i := range w {
		w[i] = a*x[i] + y[i]
	}
	o.chargeVec(len(w), 1)
}

// Scale computes x *= a locally.
func (o *distOps) Scale(a float64, x []float64) {
	for i := range x {
		x[i] *= a
	}
	o.chargeVec(len(x), 1)
}

// Copy copies locally.
func (o *distOps) Copy(dst, src []float64) {
	copy(dst, src)
	o.chargeVec(len(dst), 1)
}

// Set fills locally.
func (o *distOps) Set(a float64, x []float64) {
	for i := range x {
		x[i] = a
	}
	o.chargeVec(len(x), 1)
}

// MAXPY computes y += sum alphas[k] xs[k] locally (fused).
func (o *distOps) MAXPY(y []float64, alphas []float64, xs [][]float64) {
	for i := range y {
		s := y[i]
		for k := range xs {
			s += alphas[k] * xs[k][i]
		}
		y[i] = s
	}
	o.chargeVec(len(y), len(xs))
}

// MDotNorm computes all inner products plus ||x||₂ with ONE Allreduce —
// the communication-reducing fused reduction (krylov.NormFuser). Compared
// to MDot + Norm2 it saves one global collective per GMRES iteration, the
// optimization direction the paper cites for beating the Allreduce wall.
func (o *distOps) MDotNorm(x []float64, ys [][]float64, dots []float64) float64 {
	for k := range ys {
		s := 0.0
		yk := ys[k]
		for i := range x {
			s += x[i] * yk[i]
		}
		o.rq.Push(s)
	}
	s := 0.0
	for i := range x {
		s += x[i] * x[i]
	}
	o.rq.Push(s)
	o.chargeVec(len(x), len(ys)+1)
	global := o.reduce()
	copy(dots, global[:len(ys)])
	return math.Sqrt(global[len(ys)])
}

// MDot computes all inner products with one fused Allreduce.
func (o *distOps) MDot(x []float64, ys [][]float64, dots []float64) {
	if len(ys) == 0 {
		return
	}
	for k := range ys {
		s := 0.0
		yk := ys[k]
		for i := range x {
			s += x[i] * yk[i]
		}
		o.rq.Push(s)
	}
	o.chargeVec(len(x), len(ys))
	copy(dots, o.reduce())
}

// DotBatch reduces every pair's local partial in ONE packed Allreduce — the
// distributed realization of krylov.BatchedReducer. This is what lets
// pipelined GMRES pay a single collective latency per inner iteration no
// matter how many projection, norm, and Gram terms the iteration needs.
func (o *distOps) DotBatch(pairs []vecop.DotPair, out []float64) {
	if len(pairs) == 0 {
		return
	}
	for k := range pairs {
		x, y := pairs[k].X, pairs[k].Y
		s := 0.0
		for i := range x {
			s += x[i] * y[i]
		}
		o.rq.Push(s)
	}
	o.chargeVec(len(pairs[0].X), len(pairs))
	copy(out, o.reduce())
}
