package mpisim

import (
	"math"

	"fun3d/internal/prof"
)

// distOps implements krylov.Vectors over rank-local shards: reductions go
// through Allreduce (the Krylov collectives of Fig 10); element-wise ops
// are local and charge the vector-primitive rate. One Allreduce per Dot and
// one fused Allreduce per MDot, mirroring PETSc's VecDot/VecMDot.
type distOps struct {
	w *worker
}

func (o *distOps) chargeVec(n, nvecs int) {
	o.w.compute(prof.VecOps, float64(n*nvecs)*o.w.vecRates.VecPerElem)
	o.w.met.Inc(prof.VecElems, int64(n*nvecs))
}

// Dot returns the global inner product.
func (o *distOps) Dot(x, y []float64) float64 {
	s := 0.0
	for i := range x {
		s += x[i] * y[i]
	}
	o.chargeVec(len(x), 1)
	return o.w.rank.Allreduce([]float64{s})[0]
}

// Norm2 returns the global Euclidean norm.
func (o *distOps) Norm2(x []float64) float64 { return math.Sqrt(o.Dot(x, x)) }

// AXPY computes y += a*x locally.
func (o *distOps) AXPY(a float64, x, y []float64) {
	for i := range x {
		y[i] += a * x[i]
	}
	o.chargeVec(len(x), 1)
}

// WAXPY computes w = a*x + y locally.
func (o *distOps) WAXPY(w []float64, a float64, x, y []float64) {
	for i := range w {
		w[i] = a*x[i] + y[i]
	}
	o.chargeVec(len(w), 1)
}

// Scale computes x *= a locally.
func (o *distOps) Scale(a float64, x []float64) {
	for i := range x {
		x[i] *= a
	}
	o.chargeVec(len(x), 1)
}

// Copy copies locally.
func (o *distOps) Copy(dst, src []float64) {
	copy(dst, src)
	o.chargeVec(len(dst), 1)
}

// Set fills locally.
func (o *distOps) Set(a float64, x []float64) {
	for i := range x {
		x[i] = a
	}
	o.chargeVec(len(x), 1)
}

// MAXPY computes y += sum alphas[k] xs[k] locally (fused).
func (o *distOps) MAXPY(y []float64, alphas []float64, xs [][]float64) {
	for i := range y {
		s := y[i]
		for k := range xs {
			s += alphas[k] * xs[k][i]
		}
		y[i] = s
	}
	o.chargeVec(len(y), len(xs))
}

// MDotNorm computes all inner products plus ||x||₂ with ONE Allreduce —
// the communication-reducing fused reduction (krylov.NormFuser). Compared
// to MDot + Norm2 it saves one global collective per GMRES iteration, the
// optimization direction the paper cites for beating the Allreduce wall.
func (o *distOps) MDotNorm(x []float64, ys [][]float64, dots []float64) float64 {
	local := make([]float64, len(ys)+1)
	for k := range ys {
		s := 0.0
		yk := ys[k]
		for i := range x {
			s += x[i] * yk[i]
		}
		local[k] = s
	}
	s := 0.0
	for i := range x {
		s += x[i] * x[i]
	}
	local[len(ys)] = s
	o.chargeVec(len(x), len(ys)+1)
	global := o.w.rank.Allreduce(local)
	copy(dots, global[:len(ys)])
	return math.Sqrt(global[len(ys)])
}

// MDot computes all inner products with one fused Allreduce.
func (o *distOps) MDot(x []float64, ys [][]float64, dots []float64) {
	local := make([]float64, len(ys))
	for k := range ys {
		s := 0.0
		yk := ys[k]
		for i := range x {
			s += x[i] * yk[i]
		}
		local[k] = s
	}
	o.chargeVec(len(x), len(ys))
	if len(ys) == 0 {
		return
	}
	global := o.w.rank.Allreduce(local)
	copy(dots, global)
}
