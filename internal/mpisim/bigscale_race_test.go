//go:build race

package mpisim

// bigScaleRanks under the race detector: the runtime caps simultaneously
// live goroutines at 8192 in race mode, so the smoke test runs at the
// largest power of four that leaves headroom for the harness.
const bigScaleRanks = 2048
