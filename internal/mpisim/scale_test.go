package mpisim

import (
	"runtime"
	"sync"
	"testing"

	"fun3d/internal/mesh"
	"fun3d/internal/perfmodel"
)

// An empty Flush must be a no-op: no collective issued, nil returned. The
// count is pinned exactly — a regression that made the empty flush issue a
// zero-length Allreduce would read 2 here (and desynchronize any rank pair
// where only one side's queue happened to be empty).
func TestReduceQueueEmptyFlushIssuesNoCollective(t *testing.T) {
	const R = 2
	c := NewComm(R, testNet())
	var wg sync.WaitGroup
	errs := make([]string, R)
	for i := 0; i < R; i++ {
		rk := c.NewRank(i)
		wg.Add(1)
		go func(i int, rk *Rank) {
			defer wg.Done()
			q := rk.NewReduceQueue()
			if out := q.Flush(); out != nil {
				errs[i] = "empty flush returned a payload"
				return
			}
			q.Push(float64(i + 1))
			out := q.Flush()
			if len(out) != 1 || out[0] != 3 {
				errs[i] = "flush payload wrong"
				return
			}
			if out := q.Flush(); out != nil {
				errs[i] = "second empty flush returned a payload"
				return
			}
			if rk.Allreduces != 1 {
				errs[i] = "collective count not exactly 1"
			}
		}(i, rk)
	}
	wg.Wait()
	for i, e := range errs {
		if e != "" {
			t.Fatalf("rank %d: %s", i, e)
		}
	}
}

// Every participant of a collective books the same stage/hop breakdown,
// and the counts match the cost model exactly: 4 ranks on 2 nodes of a
// fat tree (nodes share a pod) give tree = 1 intra + 1 inter stage,
// flat = 2(p-1) stages, hierarchical = 2 intra + 1 inter.
func TestCollectiveStageHopBookkeeping(t *testing.T) {
	cases := []struct {
		algo         perfmodel.AllreduceAlgo
		stages, hops int
	}{
		{perfmodel.AllreduceTree, 2, 1},
		{perfmodel.AllreduceFlat, 6, 4},
		{perfmodel.AllreduceHier, 3, 1},
	}
	const R, calls = 4, 3
	for _, tc := range cases {
		net := perfmodel.StampedeFatTree()
		net.RanksPerNode = 2
		net.Algo = tc.algo
		if c := net.AllreduceBreakdown(R, 8); c.Stages != tc.stages || c.Hops != tc.hops {
			t.Fatalf("%v: model gives %d stages %d hops, test expects %d/%d",
				tc.algo, c.Stages, c.Hops, tc.stages, tc.hops)
		}
		c := NewComm(R, net)
		ranks := make([]*Rank, R)
		var wg sync.WaitGroup
		for i := 0; i < R; i++ {
			ranks[i] = c.NewRank(i)
			wg.Add(1)
			go func(rk *Rank) {
				defer wg.Done()
				for k := 0; k < calls; k++ {
					rk.Allreduce([]float64{1})
				}
			}(ranks[i])
		}
		wg.Wait()
		for i, rk := range ranks {
			if rk.AllreduceStages != calls*tc.stages || rk.AllreduceHops != calls*tc.hops {
				t.Fatalf("%v rank %d: booked %d stages %d hops, want %d/%d",
					tc.algo, i, rk.AllreduceStages, rk.AllreduceHops,
					calls*tc.stages, calls*tc.hops)
			}
		}
	}
}

// SolveArtifact over a shared artifact — including two solves running
// concurrently — must be bit-identical to Solve on the same mesh/config,
// and a config whose structural fields disagree with the artifact must be
// rejected.
func TestArtifactReuseBitIdentical(t *testing.T) {
	m, err := mesh.Generate(mesh.SpecTiny())
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Ranks: 4, Rates: testRates(), Net: testNet(),
		MaxSteps: 2, RelTol: 1e-30, CFL0: 20, Seed: 11,
	}
	ref, err := Solve(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	art, err := BuildArtifact(m, ClusterSpec{Ranks: 4, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	var r1, r2 Result
	var e1, e2 error
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); r1, e1 = SolveArtifact(art, cfg) }()
	go func() { defer wg.Done(); r2, e2 = SolveArtifact(art, cfg) }()
	wg.Wait()
	if e1 != nil || e2 != nil {
		t.Fatal(e1, e2)
	}
	for _, r := range []Result{r1, r2} {
		if len(r.History) != len(ref.History) {
			t.Fatalf("history length %d vs %d", len(r.History), len(ref.History))
		}
		for i := range r.History {
			if r.History[i] != ref.History[i] {
				t.Fatalf("history[%d]: %v != %v (not bit-identical)", i, r.History[i], ref.History[i])
			}
		}
		if r.Time != ref.Time || r.LinearIters != ref.LinearIters ||
			r.Allreduces != ref.Allreduces || r.AllreduceStages != ref.AllreduceStages {
			t.Fatalf("artifact run diverged: %+v vs %+v", r, ref)
		}
	}
	bad := cfg
	bad.Ranks = 8
	if _, err := SolveArtifact(art, bad); err == nil {
		t.Fatal("mismatched spec not rejected")
	}
}

// TestBigScaleSmoke is the 16k-rank acceptance run (bigScaleRanks shrinks
// under the race detector, which caps simultaneously-live goroutines):
// one pseudo-time step over bigScaleRanks real ranks on the fat-tree
// hierarchical collective, sharing one artifact's structure. Asserted
// ceilings pin the per-rank memory fix — before structure sharing, per-rank
// deep copies of the index structures made this configuration unrunnable.
func TestBigScaleSmoke(t *testing.T) {
	m, err := mesh.Generate(mesh.GenSpec{NX: 28, NY: 26, NZ: 24, Shuffle: true, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if m.NumVertices() < bigScaleRanks {
		t.Fatalf("mesh too small: %d vertices for %d ranks", m.NumVertices(), bigScaleRanks)
	}
	baseGoroutines := runtime.NumGoroutine()
	art, err := BuildArtifact(m, ClusterSpec{Ranks: bigScaleRanks, Natural: true, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)

	net := perfmodel.StampedeFatTree()
	net.RanksPerNode = 16
	net.Algo = perfmodel.AllreduceHier
	res, err := SolveArtifact(art, Config{
		Ranks: bigScaleRanks, Natural: true, Rates: testRates(), Net: net,
		MaxSteps: 1, RelTol: 1e-30, CFL0: 20, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps != 1 || res.Allreduces == 0 {
		t.Fatalf("smoke run did no work: %+v", res)
	}
	wantStages := net.AllreduceBreakdown(bigScaleRanks, 8).Stages
	if res.AllreduceStages != res.Allreduces*wantStages {
		t.Fatalf("stage accounting: %d stages over %d collectives, want %d each",
			res.AllreduceStages, res.Allreduces, wantStages)
	}

	// Post-run heap growth over the shared artifact stays bounded: the
	// per-rank value arrays are the only O(ranks) state left alive.
	runtime.GC()
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	const heapCeiling = 1 << 30 // 1 GiB growth across the whole run
	if after.HeapAlloc > before.HeapAlloc && after.HeapAlloc-before.HeapAlloc > heapCeiling {
		t.Fatalf("heap grew %d MiB over the run (ceiling %d MiB)",
			(after.HeapAlloc-before.HeapAlloc)>>20, heapCeiling>>20)
	}
	// All rank goroutines (and pool workers) must have exited.
	if g := runtime.NumGoroutine(); g > baseGoroutines+64 {
		t.Fatalf("goroutine leak: %d live, baseline %d", g, baseGoroutines)
	}
}
