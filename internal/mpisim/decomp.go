package mpisim

import (
	"fmt"
	"sort"

	"fun3d/internal/geom"
	"fun3d/internal/mesh"
	"fun3d/internal/partition"
)

// Subdomain is one rank's share of the global mesh: owned vertices first
// (local indices [0,NOwned)), ghost copies of cross-edge neighbors after.
// Every edge with at least one owned endpoint is present, so each owned
// vertex sees all of its incident dual faces (cut edges are replicated on
// both sides — the distributed analogue of owner-only writes).
type Subdomain struct {
	Rank   int
	NOwned int
	NLocal int
	Global []int32 // local -> global

	// Edge data in local numbering (SoA, like mesh.Mesh), ordered
	// interior-first: edges [0, NEdgeInterior) have both endpoints owned
	// (no ghost reads), edges [NEdgeInterior, len(EV1)) touch a ghost.
	// Interior edges can therefore be processed while a halo exchange is
	// still in flight; the boundary set must wait for it. Within each set
	// the original ascending edge order is preserved (stable split), so
	// per-vertex accumulation order — and thus floating-point results — is
	// identical whether or not the split is exploited.
	EV1, EV2      []int32
	ENX, ENY, ENZ []float64
	NEdgeInterior int

	Vol    []float64 // per local vertex (owned + ghost)
	Coords []geom.Vec3
	BNodes []mesh.BNode // with local V (owned vertices only)

	// Halo plan: Neighbors lists peer ranks (sorted); SendIdx[i] are owned
	// local indices whose values go to Neighbors[i]; RecvIdx[i] are ghost
	// local indices filled from Neighbors[i]. Matching order on both sides.
	Neighbors []int
	SendIdx   [][]int32
	RecvIdx   [][]int32

	// Owned-rows Jacobian pattern (local owned indices only; ghost
	// couplings dropped — the Schwarz restriction).
	JacRows [][]int32
}

// Decompose partitions m into nranks subdomains with the multilevel
// partitioner (or natural blocks when natural is true, the paper's
// pre-METIS baseline).
func Decompose(m *mesh.Mesh, nranks int, natural bool, seed uint64) ([]*Subdomain, error) {
	if nranks < 1 {
		return nil, fmt.Errorf("mpisim: nranks %d < 1", nranks)
	}
	g := partition.FromMesh(m.AdjPtr, m.Adj, true)
	var part []int32
	if natural || nranks == 1 {
		part = partition.Natural(g, nranks)
	} else {
		var err error
		part, err = partition.Multilevel(g, nranks, partition.Options{Seed: seed})
		if err != nil {
			return nil, err
		}
	}
	return buildSubdomains(m, part, nranks)
}

func buildSubdomains(m *mesh.Mesh, part []int32, nranks int) ([]*Subdomain, error) {
	nv := m.NumVertices()
	subs := make([]*Subdomain, nranks)
	for r := 0; r < nranks; r++ {
		subs[r] = &Subdomain{Rank: r}
	}

	// Owned vertices in ascending global order.
	localOf := make([]int32, nv) // global -> local within its OWNED rank
	for v := 0; v < nv; v++ {
		s := subs[part[v]]
		localOf[v] = int32(len(s.Global))
		s.Global = append(s.Global, int32(v))
	}
	for _, s := range subs {
		s.NOwned = len(s.Global)
	}

	// Ghosts: discovered through edges; per rank, map global -> local.
	ghostOf := make([]map[int32]int32, nranks)
	for r := range ghostOf {
		ghostOf[r] = map[int32]int32{}
	}
	localIdx := func(r int, gv int32) int32 {
		if part[gv] == int32(r) {
			return localOf[gv]
		}
		s := subs[r]
		if l, ok := ghostOf[r][gv]; ok {
			return l
		}
		l := int32(len(s.Global))
		s.Global = append(s.Global, gv)
		ghostOf[r][gv] = l
		return l
	}

	// Distribute edges: to the owner of each endpoint (cut edges to both).
	for e := 0; e < m.NumEdges(); e++ {
		a, b := m.EV1[e], m.EV2[e]
		ra, rb := int(part[a]), int(part[b])
		add := func(r int) {
			s := subs[r]
			s.EV1 = append(s.EV1, localIdx(r, a))
			s.EV2 = append(s.EV2, localIdx(r, b))
			s.ENX = append(s.ENX, m.ENX[e])
			s.ENY = append(s.ENY, m.ENY[e])
			s.ENZ = append(s.ENZ, m.ENZ[e])
		}
		add(ra)
		if rb != ra {
			add(rb)
		}
	}

	// Stable interior-first edge reorder (see Subdomain doc).
	for _, s := range subs {
		s.splitEdges()
	}

	// Per-vertex data and boundary nodes.
	for _, s := range subs {
		s.NLocal = len(s.Global)
		s.Vol = make([]float64, s.NLocal)
		s.Coords = make([]geom.Vec3, s.NLocal)
		for l, gv := range s.Global {
			s.Vol[l] = m.Vol[gv]
			s.Coords[l] = m.Coords[gv]
		}
	}
	for _, bn := range m.BNodes {
		r := int(part[bn.V])
		subs[r].BNodes = append(subs[r].BNodes, mesh.BNode{
			V: localOf[bn.V], Kind: bn.Kind, Normal: bn.Normal,
		})
	}

	// Halo plan: rank r receives ghost gv from part[gv]; symmetric sends.
	// Build per-rank peer maps first, then emit sorted, aligned lists.
	sendMap := make([]map[int][]int32, nranks) // rank -> peer -> owned locals
	recvMap := make([]map[int][]int32, nranks) // rank -> peer -> ghost locals
	for r := 0; r < nranks; r++ {
		sendMap[r] = map[int][]int32{}
		recvMap[r] = map[int][]int32{}
	}
	for r := 0; r < nranks; r++ {
		// Sorted global ids per owner for deterministic matching order.
		byOwner := map[int][]int32{}
		for gv := range ghostOf[r] {
			owner := int(part[gv])
			byOwner[owner] = append(byOwner[owner], gv)
		}
		for owner, ids := range byOwner {
			sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
			for _, gv := range ids {
				recvMap[r][owner] = append(recvMap[r][owner], ghostOf[r][gv])
				sendMap[owner][r] = append(sendMap[owner][r], localOf[gv])
			}
		}
	}
	for r := 0; r < nranks; r++ {
		s := subs[r]
		peerSet := map[int]bool{}
		for p := range sendMap[r] {
			peerSet[p] = true
		}
		for p := range recvMap[r] {
			peerSet[p] = true
		}
		for p := range peerSet {
			s.Neighbors = append(s.Neighbors, p)
		}
		sort.Ints(s.Neighbors)
		s.SendIdx = make([][]int32, len(s.Neighbors))
		s.RecvIdx = make([][]int32, len(s.Neighbors))
		for i, p := range s.Neighbors {
			s.SendIdx[i] = sendMap[r][p]
			s.RecvIdx[i] = recvMap[r][p]
		}
	}

	// Owned-rows Jacobian pattern: local adjacency restricted to owned.
	for r := 0; r < nranks; r++ {
		s := subs[r]
		rows := make([][]int32, s.NOwned)
		for i := range rows {
			rows[i] = []int32{int32(i)}
		}
		for e := range s.EV1 {
			a, b := s.EV1[e], s.EV2[e]
			if int(a) < s.NOwned && int(b) < s.NOwned {
				rows[a] = append(rows[a], b)
				rows[b] = append(rows[b], a)
			}
		}
		// Cut edges appear twice in the local list (never: each local list
		// has each global edge once). Dedup anyway for safety.
		for i := range rows {
			rows[i] = dedupSorted(rows[i])
		}
		s.JacRows = rows
	}
	return subs, nil
}

// splitEdges stably reorders the subdomain's edge arrays interior-first
// (both endpoints owned) and records the split point in NEdgeInterior.
// Ghost locals sit at indices >= NOwned, so the test is a pair of index
// compares. The split is applied unconditionally at decomposition time —
// not only when overlap is requested — so overlapped and non-overlapped
// runs traverse edges in the same order and produce bit-identical residuals.
func (s *Subdomain) splitEdges() {
	ne := len(s.EV1)
	owned := int32(s.NOwned)
	perm := make([]int32, 0, ne)
	for e := 0; e < ne; e++ {
		if s.EV1[e] < owned && s.EV2[e] < owned {
			perm = append(perm, int32(e))
		}
	}
	s.NEdgeInterior = len(perm)
	for e := 0; e < ne; e++ {
		if s.EV1[e] >= owned || s.EV2[e] >= owned {
			perm = append(perm, int32(e))
		}
	}
	ev1 := make([]int32, ne)
	ev2 := make([]int32, ne)
	enx := make([]float64, ne)
	eny := make([]float64, ne)
	enz := make([]float64, ne)
	for to, from := range perm {
		ev1[to] = s.EV1[from]
		ev2[to] = s.EV2[from]
		enx[to] = s.ENX[from]
		eny[to] = s.ENY[from]
		enz[to] = s.ENZ[from]
	}
	s.EV1, s.EV2 = ev1, ev2
	s.ENX, s.ENY, s.ENZ = enx, eny, enz
}

// LocalMesh materializes the subdomain as a standalone mesh.Mesh (owned
// vertices plus ghosts, interior-first edge order preserved) so the
// shared-memory flux/gradient/Jacobian kernels — and the thread
// partitioner feeding them — run unchanged on a rank's piece. BNodes carry
// owned vertices only, which is exactly the closure the rank should apply.
func (s *Subdomain) LocalMesh() *mesh.Mesh {
	return mesh.FromEdges(s.Coords, s.Vol, s.EV1, s.EV2, s.ENX, s.ENY, s.ENZ, s.BNodes)
}

func dedupSorted(a []int32) []int32 {
	sort.Slice(a, func(i, j int) bool { return a[i] < a[j] })
	out := a[:0]
	for i, v := range a {
		if i == 0 || v != a[i-1] {
			out = append(out, v)
		}
	}
	return out
}
