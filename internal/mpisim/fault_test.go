package mpisim

import (
	"errors"
	"runtime"
	"strings"
	"sync"
	"testing"

	"fun3d/internal/mesh"
	"fun3d/internal/prof"
)

// Draws must be a pure function of (seed, rank, stream, virtual state):
// two plan instances with the same seed replay identical schedules and
// identical noise for the same (clock, interval) points, different seeds
// differ, and interarrival gaps stay inside [0.5, 1.5)·MTBF. Keying noise
// by the clock rather than a mutable counter is what lets a restarted
// attempt replay the exact trajectory of its predecessor.
func TestFaultPlanDeterministicDraws(t *testing.T) {
	mk := func(seed uint64) *FaultPlan {
		cfg := Config{Ranks: 4, Faults: FaultConfig{Seed: seed, Noise: 0.3, MTBF: 2.0}}
		return newFaultPlan(&cfg)
	}
	a, b := mk(11), mk(11)
	for r := 0; r < 4; r++ {
		if a.ranks[r].nextCrash != b.ranks[r].nextCrash {
			t.Fatalf("rank %d: same seed, different crash schedule: %v vs %v",
				r, a.ranks[r].nextCrash, b.ranks[r].nextCrash)
		}
		varied := false
		for i := 0; i < 100; i++ {
			clock := float64(i) * 0.017
			na, nb := a.computeNoise(r, clock, 1.0), b.computeNoise(r, clock, 1.0)
			if na != nb {
				t.Fatalf("rank %d clock %v: noise diverged: %v vs %v", r, clock, na, nb)
			}
			if na < 0 || na >= 0.3 {
				t.Fatalf("rank %d clock %v: noise %v outside [0, Noise·seconds)", r, clock, na)
			}
			pa, pb := a.ptpDelay(r, clock, 1e-5), b.ptpDelay(r, clock, 1e-5)
			if pa != pb {
				t.Fatalf("rank %d clock %v: ptp jitter diverged: %v vs %v", r, clock, pa, pb)
			}
			if i > 0 && na != a.computeNoise(r, float64(i-1)*0.017, 1.0) {
				varied = true
			}
		}
		if !varied {
			t.Fatalf("rank %d: noise constant across clocks", r)
		}
		gap := a.ranks[r].nextCrash
		if gap < 0.5*2.0 || gap >= 1.5*2.0 {
			t.Fatalf("rank %d: first interarrival %v outside [1,3)", r, gap)
		}
	}
	c := mk(12)
	if c.ranks[0].nextCrash == a.ranks[0].nextCrash &&
		c.ranks[1].nextCrash == a.ranks[1].nextCrash {
		t.Fatalf("different seeds produced the same crash schedule")
	}
	if a.computeNoise(0, 1.0, 1.0) == a.ptpDelay(0, 1.0, 1.0) {
		t.Fatalf("noise and jitter streams are not independent")
	}
	// Replaying the same clock point yields the same draw (stateless).
	if a.computeNoise(2, 0.5, 1.0) != a.computeNoise(2, 0.5, 1.0) {
		t.Fatalf("noise draw is stateful")
	}
}

// The tentpole invariant: a run that crashes and recovers (at least once)
// must converge along the bit-identical residual trajectory of the
// fault-free run — same step count, same linear iterations, same history
// to the last bit — while costing strictly more virtual time.
func TestRestartEquivalence(t *testing.T) {
	m, err := mesh.Generate(mesh.SpecTiny())
	if err != nil {
		t.Fatal(err)
	}
	base := Config{Ranks: 4, Rates: testRates(), Net: testNet(), MaxSteps: 60, Seed: 5}
	golden, err := Solve(m, base)
	if err != nil {
		t.Fatal(err)
	}
	if !golden.Converged {
		t.Fatalf("golden run did not converge: %+v", golden)
	}
	if golden.Restarts != 0 || golden.FaultsInjected != 0 || golden.NoiseTime != 0 {
		t.Fatalf("fault-free run reports fault activity: %+v", golden)
	}

	faulted := base
	faulted.Faults = FaultConfig{Seed: 42, Noise: 0.2, MTBF: golden.Time / 2}
	faulted.MaxRestarts = 500
	got, err := Solve(m, faulted)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Converged {
		t.Fatalf("faulted run did not converge: %+v", got)
	}
	if got.Restarts < 1 || got.FaultsInjected < 1 {
		t.Fatalf("fault plan injected nothing (MTBF %v, run time %v): %+v",
			faulted.Faults.MTBF, golden.Time, got)
	}
	if got.RecomputedSteps < 1 {
		t.Fatalf("recovery replayed no steps: %+v", got)
	}
	if got.NoiseTime <= 0 {
		t.Fatalf("no straggler noise recorded: %+v", got)
	}

	// Bit-identical trajectory.
	if got.Steps != golden.Steps || got.LinearIters != golden.LinearIters {
		t.Fatalf("recovered trajectory diverged: steps %d vs %d, iters %d vs %d",
			got.Steps, golden.Steps, got.LinearIters, golden.LinearIters)
	}
	if got.RNorm0 != golden.RNorm0 || got.RNormFinal != golden.RNormFinal {
		t.Fatalf("residuals differ: %v/%v vs %v/%v",
			got.RNorm0, got.RNormFinal, golden.RNorm0, golden.RNormFinal)
	}
	if len(got.History) != len(golden.History) {
		t.Fatalf("history length %d vs %d", len(got.History), len(golden.History))
	}
	for i := range got.History {
		if got.History[i] != golden.History[i] {
			t.Fatalf("history[%d] differs: %v vs %v", i, got.History[i], golden.History[i])
		}
	}
	if got.Time <= golden.Time {
		t.Fatalf("faults made the run faster: %v <= %v", got.Time, golden.Time)
	}
	// The counters surface in Metrics too (the bench artifact path).
	if got.Metrics.Counter(prof.FaultRestarts) != int64(got.Restarts) ||
		got.Metrics.Counter(prof.FaultsInjected) != int64(got.FaultsInjected) ||
		got.Metrics.Counter(prof.FaultRecomputedSteps) != int64(got.RecomputedSteps) ||
		got.Metrics.Counter(prof.FaultNoiseMicros) <= 0 {
		t.Fatalf("fault counters not booked: %v", got.Metrics.CountersMap())
	}
	t.Logf("golden: %d steps in %.3fs; faulted: %d faults, %d restarts, %d recomputed steps in %.3fs",
		golden.Steps, golden.Time, got.FaultsInjected, got.Restarts, got.RecomputedSteps, got.Time)
}

// Same seed, same everything: an injected-fault run is itself deterministic.
func TestFaultedRunDeterministic(t *testing.T) {
	m, err := mesh.Generate(mesh.SpecTiny())
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Ranks: 4, Rates: testRates(), Net: testNet(), MaxSteps: 20,
		RelTol: 1e-30, Seed: 5,
		Faults: FaultConfig{Seed: 9, Noise: 0.3, MTBF: 0.02}, MaxRestarts: 500}
	a, err := Solve(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Solve(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Restarts != b.Restarts || a.FaultsInjected != b.FaultsInjected ||
		a.RecomputedSteps != b.RecomputedSteps || a.Time != b.Time ||
		a.NoiseTime != b.NoiseTime || a.RNormFinal != b.RNormFinal {
		t.Fatalf("faulted run nondeterministic:\n%+v\nvs\n%+v", a, b)
	}
	if a.Restarts < 1 {
		t.Fatalf("expected at least one restart at MTBF=0.02: %+v", a)
	}
}

// Pure straggler noise (no crashes) slows the run and shifts time into the
// Allreduce rendezvous — the Fig 10 share under OS noise — without touching
// the numerics.
func TestNoiseShiftsTimeIntoAllreduce(t *testing.T) {
	m, err := mesh.Generate(mesh.SpecTiny())
	if err != nil {
		t.Fatal(err)
	}
	base := Config{Ranks: 8, Rates: testRates(), Net: testNet(), MaxSteps: 5,
		RelTol: 1e-30, Seed: 3}
	clean, err := Solve(m, base)
	if err != nil {
		t.Fatal(err)
	}
	noisy := base
	noisy.Faults = FaultConfig{Seed: 4, Noise: 1.0}
	loud, err := Solve(m, noisy)
	if err != nil {
		t.Fatal(err)
	}
	if loud.Restarts != 0 || loud.FaultsInjected != 0 {
		t.Fatalf("noise-only plan crashed ranks: %+v", loud)
	}
	if loud.LinearIters != clean.LinearIters || loud.RNormFinal != clean.RNormFinal {
		t.Fatalf("noise changed the numerics: %+v vs %+v", loud, clean)
	}
	if loud.Time <= clean.Time || loud.NoiseTime <= 0 {
		t.Fatalf("noise did not slow the run: %v <= %v (noise %v)",
			loud.Time, clean.Time, loud.NoiseTime)
	}
	shareClean := clean.AllreduceTime / (clean.ComputeTime + clean.PtPTime + clean.AllreduceTime)
	shareLoud := loud.AllreduceTime / (loud.ComputeTime + loud.PtPTime + loud.AllreduceTime)
	if shareLoud <= shareClean {
		t.Fatalf("stragglers did not grow the Allreduce share: %.3f <= %.3f", shareLoud, shareClean)
	}
	t.Logf("allreduce share: clean %.3f, noise=1.0 %.3f", shareClean, shareLoud)
}

// An unrecoverable fault storm must give up after MaxRestarts, reporting
// the crash rather than spinning forever.
func TestMaxRestartsGivesUp(t *testing.T) {
	m, err := mesh.Generate(mesh.SpecTiny())
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Ranks: 2, Rates: testRates(), Net: testNet(), MaxSteps: 30, Seed: 5,
		// MTBF far below one step's cost: every attempt crashes.
		Faults:      FaultConfig{Seed: 1, MTBF: 1e-9},
		MaxRestarts: 3}
	res, err := Solve(m, cfg)
	if err == nil {
		t.Fatalf("expected give-up error, got %+v", res)
	}
	if !strings.Contains(err.Error(), "giving up after 3 restarts") {
		t.Fatalf("unexpected error: %v", err)
	}
	var ce *CrashError
	if !errors.As(err, &ce) {
		t.Fatalf("error does not wrap *CrashError: %v", err)
	}
	if res.Restarts != 3 || res.FaultsInjected < 4 {
		t.Fatalf("give-up accounting wrong: %+v", res)
	}
}

// Satellite 3: abort must release payload memory — queued halo buffers and
// reducer contributions — and drop sends into a dead communicator so no
// rank can consume a message from a dead generation.
func TestAbortReleasesMailboxAndReducer(t *testing.T) {
	c := NewComm(2, testNet())
	r0 := c.NewRank(0)
	r0.Send(1, 1, make([]float64, 1024))
	r0.Send(1, 2, make([]float64, 1024))

	// One rank parked inside Allreduce so the reducer holds its part.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer func() {
			if recover() != errAborted {
				t.Errorf("parked Allreduce did not panic errAborted")
			}
		}()
		r0.Allreduce(make([]float64, 512))
	}()
	// Wait until the contribution is registered, then abort.
	for {
		c.red.mu.Lock()
		n := c.red.count
		c.red.mu.Unlock()
		if n == 1 {
			break
		}
		runtime.Gosched()
	}
	c.Abort()
	wg.Wait()

	c.boxes[1].mu.Lock()
	if c.boxes[1].queue != nil {
		t.Fatalf("abort left %d messages queued", len(c.boxes[1].queue))
	}
	c.boxes[1].mu.Unlock()
	c.red.mu.Lock()
	for r, p := range c.red.parts {
		if p != nil {
			t.Fatalf("abort left reducer part of rank %d (%d floats)", r, len(p))
		}
	}
	// Completed-generation slots are kept (stragglers of a finished
	// collective still collect their result under abort); only the pending
	// contributions must be released.
	if c.red.count != 0 {
		t.Fatalf("abort left reducer state: count=%d", c.red.count)
	}
	c.red.mu.Unlock()

	// A late send into the dead communicator is dropped, not queued.
	r0.Send(1, 3, []float64{1})
	c.boxes[1].mu.Lock()
	defer c.boxes[1].mu.Unlock()
	if len(c.boxes[1].queue) != 0 {
		t.Fatalf("send into dead communicator was queued")
	}
}

// A rank crash while a peer is blocked in Wait must unwind the peer via
// abort instead of deadlocking, and the supervisor turns it into recovery
// (exercised end-to-end by TestRestartEquivalence; this pins the Wait
// entry-point check in isolation).
func TestCrashAtWaitEntry(t *testing.T) {
	cfg := Config{Ranks: 2, Faults: FaultConfig{Seed: 1, MTBF: 1.0}}
	fp := newFaultPlan(&cfg)
	c := NewComm(2, testNet())
	r0 := c.NewRank(0)
	r0.fp = fp
	r0.Clock = 100 // far past the first scheduled crash
	req := r0.Irecv(1, 1)
	defer func() {
		ce, ok := recover().(*CrashError)
		if !ok {
			t.Fatalf("Wait past the crash deadline did not panic *CrashError")
		}
		if ce.Rank != 0 || ce.At > 100 {
			t.Fatalf("bad crash payload: %+v", ce)
		}
		// Firing never consumes the schedule: the supervisor retires the
		// globally-earliest event between attempts (consumeNext), keeping
		// restart accounting independent of which goroutine observed its
		// deadline first.
		if fp.ranks[0].nextCrash != ce.At {
			t.Fatalf("check consumed the schedule: next %v, fired %v", fp.ranks[0].nextCrash, ce.At)
		}
	}()
	r0.Wait(req)
}
