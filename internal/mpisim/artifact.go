package mpisim

import (
	"fmt"

	"fun3d/internal/mesh"
	"fun3d/internal/sparse"
)

// ClusterSpec pins the structural inputs an Artifact is built from: the
// decomposition (rank count, partitioner, seed) and the per-rank symbolic
// ILU level. Runs over one artifact may vary everything else — rates,
// network model, collective algorithm, GMRES variant, overlap, faults —
// because none of those touch the decomposition or the sparsity structure.
type ClusterSpec struct {
	Ranks     int
	Natural   bool
	FillLevel int
	Seed      uint64
}

// specOf extracts the structural spec a config implies.
func specOf(cfg *Config) ClusterSpec {
	return ClusterSpec{
		Ranks:     cfg.Ranks,
		Natural:   cfg.Natural,
		FillLevel: cfg.FillLevel,
		Seed:      cfg.Seed,
	}
}

// Artifact is the immutable, shareable part of a simulated cluster run:
// the decomposition, each subdomain materialized as a local mesh, and each
// rank's Jacobian sparsity plus symbolic ILU factor template. Building it
// is the expensive part of Solve at scale — the multilevel partition alone
// costs ~25 s at 16384 ranks — and none of it depends on the run
// configuration beyond ClusterSpec, so a sweep (or a restart-recovery
// attempt) reuses one Artifact across every run at a given rank count.
// Workers share the read-only structure and clone only the value arrays
// (sparse.BSR.CloneStructure / sparse.Factor.CloneStructure), which is
// what keeps per-rank memory flat enough for 10k+ rank runs.
type Artifact struct {
	Spec ClusterSpec
	Subs []*Subdomain

	// Per-rank read-only templates: the subdomain as a standalone mesh
	// (aliases the subdomain's arrays), the owned-rows Jacobian pattern,
	// and the symbolic ILU factor with its precomputed update schedule.
	locals  []*mesh.Mesh
	jacTmpl []*sparse.BSR
	facTmpl []*sparse.Factor
}

// BuildArtifact decomposes m per spec and precomputes every rank's
// structural state. The result is read-only and safe for concurrent
// SolveArtifact calls over it.
func BuildArtifact(m *mesh.Mesh, spec ClusterSpec) (*Artifact, error) {
	subs, err := Decompose(m, spec.Ranks, spec.Natural, spec.Seed)
	if err != nil {
		return nil, err
	}
	art := &Artifact{
		Spec:    spec,
		Subs:    subs,
		locals:  make([]*mesh.Mesh, len(subs)),
		jacTmpl: make([]*sparse.BSR, len(subs)),
		facTmpl: make([]*sparse.Factor, len(subs)),
	}
	for r, sub := range subs {
		art.locals[r] = sub.LocalMesh()
		jac, err := sparse.NewBSRFromPattern(sub.JacRows)
		if err != nil {
			return nil, err
		}
		pat, err := sparse.SymbolicILU(jac, spec.FillLevel)
		if err != nil {
			return nil, err
		}
		fac, err := sparse.NewFactorPattern(pat)
		if err != nil {
			return nil, err
		}
		art.jacTmpl[r] = jac
		art.facTmpl[r] = fac
	}
	return art, nil
}

// SolveArtifact runs one simulated cluster solve over a prebuilt artifact.
// cfg's structural fields (Ranks, Natural, FillLevel, Seed) must match the
// artifact's spec; everything else is free. Results are bit-identical to
// Solve on the same mesh and config — Solve is exactly BuildArtifact
// followed by SolveArtifact.
func SolveArtifact(art *Artifact, cfg Config) (Result, error) {
	cfg.defaults()
	if got := specOf(&cfg); got != art.Spec {
		return Result{}, fmt.Errorf("mpisim: config spec %+v does not match artifact spec %+v", got, art.Spec)
	}
	return solve(art, cfg)
}
