package mpisim

import (
	"math"
	"sync"
	"testing"

	"fun3d/internal/mesh"
	"fun3d/internal/prof"
)

// Pipelined GMRES reorganizes the reductions but solves the same
// least-squares problem, so the nonlinear trajectory must match classical
// GMRES: identical step and iteration counts, and per-step residuals equal
// up to the JFNK finite-differencing noise floor. (The 1e-10 rounding-level
// conformance lives at the linear level — krylov's dense pipelined tests —
// because √ε differencing noise in the matrix-free operator separates ANY
// two differently-rounded nonlinear runs by ~1e-5: two classical variants
// that differ only in reduction order measure 8e-6 here.)
func TestPipelinedConformance(t *testing.T) {
	m, err := mesh.Generate(mesh.SpecTiny())
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Ranks: 4, Rates: testRates(), Net: testNet(), MaxSteps: 60, Seed: 5}
	classical, err := Solve(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Pipelined = true
	pipelined, err := Solve(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !classical.Converged || !pipelined.Converged {
		t.Fatalf("convergence: classical=%v pipelined=%v", classical.Converged, pipelined.Converged)
	}
	if classical.Steps != pipelined.Steps || classical.LinearIters != pipelined.LinearIters {
		t.Fatalf("trajectory diverged: steps %d/%d linear iters %d/%d",
			classical.Steps, pipelined.Steps, classical.LinearIters, pipelined.LinearIters)
	}
	for i := range classical.History {
		c, p := classical.History[i], pipelined.History[i]
		if math.Abs(c-p) > 1e-4*math.Abs(c) {
			t.Fatalf("step %d: residual history diverged: %v vs %v (rel %.2e)",
				i+1, c, p, math.Abs(c-p)/math.Abs(c))
		}
	}
}

// The headline count: pipelined GMRES issues exactly ONE collective per
// inner iteration (plus one setup reduction per solve = Newton step),
// while classical CGS-with-refinement pays at least two. The prof
// counters book Krylov collectives once (rank 0), so the identity is
// exact, not approximate.
func TestPipelinedSingleAllreducePerIteration(t *testing.T) {
	m, err := mesh.Generate(mesh.SpecTiny())
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Ranks: 4, Rates: testRates(), Net: testNet(), MaxSteps: 60, Seed: 5}
	classical, err := Solve(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Pipelined = true
	pipelined, err := Solve(m, cfg)
	if err != nil {
		t.Fatal(err)
	}

	pc := pipelined.Metrics.Counter(prof.KrylovAllreduceCalls)
	pi := pipelined.Metrics.Counter(prof.GMRESIters)
	ps := pipelined.Metrics.Counter(prof.NewtonSteps)
	if pi == 0 || ps == 0 {
		t.Fatalf("degenerate run: iters=%d steps=%d", pi, ps)
	}
	if pc != pi+ps {
		t.Fatalf("pipelined collectives: got %d, want iters+steps = %d+%d = %d",
			pc, pi, ps, pi+ps)
	}

	cc := classical.Metrics.Counter(prof.KrylovAllreduceCalls)
	ci := classical.Metrics.Counter(prof.GMRESIters)
	if cc < 2*ci {
		t.Fatalf("classical collectives: got %d for %d iters, want >= 2 per iteration", cc, ci)
	}
	if pipelined.Allreduces >= classical.Allreduces {
		t.Fatalf("pipelined did not reduce total collectives: %d vs %d",
			pipelined.Allreduces, classical.Allreduces)
	}
	if pipelined.Metrics.Counter(prof.KrylovAllreduceBytes) == 0 {
		t.Fatal("pipelined KrylovAllreduceBytes not booked")
	}
}

// ReduceQueue coalesces pushed partials into one Allreduce per Flush, with
// offsets identifying each contribution, and an empty Flush is free.
func TestReduceQueueCoalesces(t *testing.T) {
	const R = 4
	c := NewComm(R, testNet())
	var wg sync.WaitGroup
	results := make([][]float64, R)
	offs := make([][]int, R)
	collectives := make([]int, R)
	for i := 0; i < R; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r := c.NewRank(i)
			q := r.NewReduceQueue()
			if out := q.Flush(); out != nil {
				t.Errorf("rank %d: empty flush returned %v", i, out)
			}
			o1 := q.Push(float64(i))     // Σ = 0+1+2+3 = 6
			o2 := q.Push(1, 2)           // Σ = 4, 8
			o3 := q.Push(float64(2 * i)) // Σ = 12
			if q.Pending() != 4 {
				t.Errorf("rank %d: pending %d, want 4", i, q.Pending())
			}
			offs[i] = []int{o1, o2, o3}
			results[i] = q.Flush()
			collectives[i] = r.Allreduces
			if q.Pending() != 0 {
				t.Errorf("rank %d: queue not drained: %d pending", i, q.Pending())
			}
		}(i)
	}
	wg.Wait()
	for i := 0; i < R; i++ {
		if got, want := offs[i], []int{0, 1, 3}; got[0] != want[0] || got[1] != want[1] || got[2] != want[2] {
			t.Fatalf("rank %d: offsets %v, want %v", i, got, want)
		}
		want := []float64{6, 4, 8, 12}
		for k, w := range want {
			if results[i][k] != w {
				t.Fatalf("rank %d: flush[%d] = %v, want %v (full %v)", i, k, results[i][k], w, results[i])
			}
		}
		if collectives[i] != 1 {
			t.Fatalf("rank %d: %d collectives for 3 pushes, want 1 (coalesced)", i, collectives[i])
		}
	}
}
