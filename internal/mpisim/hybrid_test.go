package mpisim

import (
	"fmt"
	"sync"
	"testing"

	"fun3d/internal/mesh"
	"fun3d/internal/perfmodel"
	"fun3d/internal/prof"
)

// TestDecomposeInteriorSplit checks the interior-first edge reorder: edges
// before NEdgeInterior touch only owned vertices, edges after touch at
// least one ghost, and the ascending-id order is preserved within each set
// via the local mesh adjacency staying consistent.
func TestDecomposeInteriorSplit(t *testing.T) {
	m, err := mesh.Generate(mesh.SpecTiny())
	if err != nil {
		t.Fatal(err)
	}
	subs, err := Decompose(m, 6, false, 1)
	if err != nil {
		t.Fatal(err)
	}
	totalInterior := 0
	for _, s := range subs {
		owned := int32(s.NOwned)
		if s.NEdgeInterior < 0 || s.NEdgeInterior > len(s.EV1) {
			t.Fatalf("rank %d: NEdgeInterior %d out of range [0,%d]", s.Rank, s.NEdgeInterior, len(s.EV1))
		}
		for e := 0; e < len(s.EV1); e++ {
			interior := s.EV1[e] < owned && s.EV2[e] < owned
			if e < s.NEdgeInterior && !interior {
				t.Fatalf("rank %d: edge %d in interior set touches ghost", s.Rank, e)
			}
			if e >= s.NEdgeInterior && interior {
				t.Fatalf("rank %d: edge %d in boundary set is interior", s.Rank, e)
			}
		}
		totalInterior += s.NEdgeInterior

		// LocalMesh must present the same edge arrays and a consistent
		// adjacency for the kernels and partitioner.
		lm := s.LocalMesh()
		if lm.NumVertices() != s.NLocal || lm.NumEdges() != len(s.EV1) {
			t.Fatalf("rank %d: local mesh %dx%d, want %dx%d",
				s.Rank, lm.NumVertices(), lm.NumEdges(), s.NLocal, len(s.EV1))
		}
		if len(lm.AdjPtr) != s.NLocal+1 {
			t.Fatalf("rank %d: adjacency not built", s.Rank)
		}
	}
	if totalInterior == 0 {
		t.Fatal("no interior edges anywhere — split is degenerate")
	}
}

// fixedStepCfg returns a config that runs an exact number of pseudo-time
// steps (unreachable tolerance), so runs are comparable step-for-step.
func fixedStepCfg(ranks, threads int, overlap bool) Config {
	return Config{
		Ranks:          ranks,
		ThreadsPerRank: threads,
		Overlap:        overlap,
		Rates:          testRates(),
		Net:            testNet(),
		CFL0:           10,
		RelTol:         1e-30,
		MaxSteps:       3,
		Seed:           1,
	}
}

// TestHybridMatchesMPIOnly is the tentpole invariant: a hybrid run (real
// par.Pool-threaded kernels, P2P ILU/TRSV, overlapped halo) on R ranks is
// numerically identical — bit for bit — to the MPI-only run on the same R
// ranks, because owner-writes and P2P scheduling preserve the sequential
// accumulation order exactly.
func TestHybridMatchesMPIOnly(t *testing.T) {
	m, err := mesh.Generate(mesh.SpecTiny())
	if err != nil {
		t.Fatal(err)
	}
	base, err := Solve(m, fixedStepCfg(4, 1, false))
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name    string
		threads int
		overlap bool
	}{
		{"threads3", 3, false},
		{"threads3-overlap", 3, true},
		{"threads7-overlap", 7, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			got, err := Solve(m, fixedStepCfg(4, tc.threads, tc.overlap))
			if err != nil {
				t.Fatal(err)
			}
			if got.RNorm0 != base.RNorm0 {
				t.Fatalf("RNorm0 %v != %v", got.RNorm0, base.RNorm0)
			}
			if got.LinearIters != base.LinearIters {
				t.Fatalf("LinearIters %d != %d", got.LinearIters, base.LinearIters)
			}
			if len(got.History) != len(base.History) {
				t.Fatalf("history length %d != %d", len(got.History), len(base.History))
			}
			for i := range got.History {
				if got.History[i] != base.History[i] {
					t.Fatalf("step %d: ||R|| %v != %v (threading changed the numerics)",
						i+1, got.History[i], base.History[i])
				}
			}
		})
	}
}

// TestHybridEqualTotalParallelism compares R*T decompositions at equal
// total parallelism (8x1 vs 2x4): iteration counts legitimately differ
// (different Schwarz decompositions), but both must make real progress.
func TestHybridEqualTotalParallelism(t *testing.T) {
	m, err := mesh.Generate(mesh.SpecTiny())
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name           string
		ranks, threads int
	}{
		{"mpi-8x1", 8, 1},
		{"hybrid-2x4", 2, 4},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := fixedStepCfg(tc.ranks, tc.threads, true)
			cfg.MaxSteps = 8
			r, err := Solve(m, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !(r.RNormFinal < 1e-2*r.RNorm0) {
				t.Fatalf("%s: residual stalled: %g -> %g", tc.name, r.RNorm0, r.RNormFinal)
			}
		})
	}
}

// TestOverlapReducesHaloWait is the overlap acceptance criterion: at >= 8
// ranks, posting the halo nonblocking and computing interior edges while it
// flies strictly reduces the modeled point-to-point wait time, while the
// residual history is bit-identical.
func TestOverlapReducesHaloWait(t *testing.T) {
	m, err := mesh.Generate(mesh.SpecTiny())
	if err != nil {
		t.Fatal(err)
	}
	blocking, err := Solve(m, fixedStepCfg(8, 1, false))
	if err != nil {
		t.Fatal(err)
	}
	overlapped, err := Solve(m, fixedStepCfg(8, 1, true))
	if err != nil {
		t.Fatal(err)
	}
	if blocking.PtPTime <= 0 {
		t.Fatalf("blocking run shows no halo wait (%v) — nothing to overlap", blocking.PtPTime)
	}
	if !(overlapped.PtPTime < blocking.PtPTime) {
		t.Fatalf("overlap did not reduce halo wait: %v >= %v",
			overlapped.PtPTime, blocking.PtPTime)
	}
	if len(overlapped.History) != len(blocking.History) {
		t.Fatalf("history length changed: %d != %d", len(overlapped.History), len(blocking.History))
	}
	for i := range overlapped.History {
		if overlapped.History[i] != blocking.History[i] {
			t.Fatalf("step %d: overlap changed the numerics: %v != %v",
				i+1, overlapped.History[i], blocking.History[i])
		}
	}
	if overlapped.Msgs != blocking.Msgs || overlapped.Allreduces != blocking.Allreduces {
		t.Fatalf("message counts changed: msgs %d/%d allreduces %d/%d",
			overlapped.Msgs, blocking.Msgs, overlapped.Allreduces, blocking.Allreduces)
	}
}

// TestFlatAllreduceCostsMore pins the collective cost models: the flat
// (linear) algorithm must charge more virtual Allreduce time than the
// recursive-doubling tree at any p > 2, without touching the numerics.
func TestFlatAllreduceCostsMore(t *testing.T) {
	tree := testNet()
	flat := testNet()
	flat.Algo = perfmodel.AllreduceFlat
	for _, p := range []int{4, 16, 64, 256} {
		if !(flat.Allreduce(p, 8) > tree.Allreduce(p, 8)) {
			t.Fatalf("p=%d: flat %v <= tree %v", p, flat.Allreduce(p, 8), tree.Allreduce(p, 8))
		}
	}

	m, err := mesh.Generate(mesh.SpecTiny())
	if err != nil {
		t.Fatal(err)
	}
	cfgTree := fixedStepCfg(8, 1, false)
	cfgFlat := fixedStepCfg(8, 1, false)
	cfgFlat.Net.Algo = perfmodel.AllreduceFlat
	rt, err := Solve(m, cfgTree)
	if err != nil {
		t.Fatal(err)
	}
	rf, err := Solve(m, cfgFlat)
	if err != nil {
		t.Fatal(err)
	}
	if !(rf.AllreduceTime > rt.AllreduceTime) {
		t.Fatalf("flat allreduce time %v <= tree %v", rf.AllreduceTime, rt.AllreduceTime)
	}
	for i := range rf.History {
		if rf.History[i] != rt.History[i] {
			t.Fatalf("step %d: collective cost model changed the numerics", i+1)
		}
	}
}

// TestIrecvWaitCoversTransfer checks the uncovered-remainder semantics of
// the nonblocking API: compute done between Irecv and Wait hides the
// transfer, so Wait charges (almost) nothing; an immediate Wait pays the
// full transit. Wait must be idempotent.
func TestIrecvWaitCoversTransfer(t *testing.T) {
	run := func(compute float64) (ptp float64, payload []float64) {
		c := NewComm(2, testNet())
		r0, r1 := c.NewRank(0), c.NewRank(1)
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			r0.Isend(1, 3, []float64{1, 2, 3})
		}()
		go func() {
			defer wg.Done()
			req := r1.Irecv(0, 3)
			r1.Compute(compute)
			payload = r1.Wait(req)
			if again := r1.Wait(req); &again[0] != &payload[0] {
				t.Error("Wait not idempotent")
			}
		}()
		wg.Wait()
		return r1.PtPTime, payload
	}
	ptpCold, data := run(0)
	if len(data) != 3 || data[2] != 3 {
		t.Fatalf("payload %v", data)
	}
	ptpWarm, _ := run(1.0) // 1 virtual second dwarfs any transfer
	if ptpCold <= 0 {
		t.Fatalf("immediate Wait should pay the transfer, got %v", ptpCold)
	}
	if ptpWarm != 0 {
		t.Fatalf("fully covered Wait should be free, got %v", ptpWarm)
	}
}

// TestMailboxIsendIrecvStress hammers the mailbox from many rank
// goroutines with out-of-order selective receives; run under -race it
// checks the nonblocking path for data races, and functionally that every
// payload arrives intact despite tag/source interleaving.
func TestMailboxIsendIrecvStress(t *testing.T) {
	const n = 8
	const iters = 60
	c := NewComm(n, testNet())
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rk := c.NewRank(id)
			for it := 0; it < iters; it++ {
				for p := 0; p < n; p++ {
					if p != id {
						rk.Isend(p, it%5, []float64{float64(id*1000 + it)})
					}
				}
				reqs := make([]*Request, 0, n-1)
				// Post receives high-to-low to exercise selective matching.
				for p := n - 1; p >= 0; p-- {
					if p != id {
						reqs = append(reqs, rk.Irecv(p, it%5))
					}
				}
				rk.Compute(1e-9)
				for _, req := range reqs {
					got := rk.Wait(req)
					want := float64(req.from*1000 + it)
					if len(got) != 1 || got[0] != want {
						errs <- fmt.Errorf("rank %d: payload %v from rank %d, want %v",
							id, got, req.from, want)
						return
					}
				}
			}
		}(r)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestHybridMetricsConsistent checks the Result.Metrics aggregation across
// concurrent hybrid ranks: every exercised kernel has time booked, the
// replicated counters match the Result fields exactly (recorded once, not
// rank-multiplied), and the work counters are identical between MPI-only
// and hybrid runs on the same decomposition (threading changes speed, not
// work). Under -race this doubles as the shared-Metrics hammer: R ranks x T
// pool threads all record into the same per-rank instances while the main
// goroutine merges them.
func TestHybridMetricsConsistent(t *testing.T) {
	m, err := mesh.Generate(mesh.SpecTiny())
	if err != nil {
		t.Fatal(err)
	}
	base, err := Solve(m, fixedStepCfg(4, 1, false))
	if err != nil {
		t.Fatal(err)
	}
	hyb, err := Solve(m, fixedStepCfg(4, 3, true))
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range []Result{base, hyb} {
		met := r.Metrics
		if met == nil {
			t.Fatal("Result.Metrics is nil")
		}
		kernels := []prof.Kernel{prof.Flux, prof.Jacobian, prof.ILU, prof.TRSV, prof.VecOps, prof.Allreduce}
		if i == 0 {
			// Blocking halo always books wait time; the overlapped run may
			// hide it completely behind interior compute.
			kernels = append(kernels, prof.Halo)
		}
		for _, k := range kernels {
			if met.Total(k) <= 0 {
				t.Fatalf("kernel %s has no time booked", k)
			}
		}
		if got := met.Counter(prof.GMRESIters); got != int64(r.LinearIters) {
			t.Fatalf("GMRESIters %d != LinearIters %d", got, r.LinearIters)
		}
		if got := met.Counter(prof.NewtonSteps); got != int64(r.Steps) {
			t.Fatalf("NewtonSteps %d != Steps %d", got, r.Steps)
		}
		if got := met.Counter(prof.AllreduceCalls); got != int64(r.Allreduces) {
			t.Fatalf("AllreduceCalls %d != Allreduces %d", got, r.Allreduces)
		}
		if got := met.Counter(prof.HaloMsgs); got != int64(r.Msgs) {
			t.Fatalf("HaloMsgs %d != Msgs %d", got, r.Msgs)
		}
		if got := met.Counter(prof.HaloBytes); got != int64(r.Bytes) {
			t.Fatalf("HaloBytes %d != Bytes %d", got, r.Bytes)
		}
	}
	for _, c := range []prof.Counter{prof.FluxEdges, prof.JacEdges, prof.ILUBlocks, prof.TRSVBlocks, prof.VecElems} {
		b, h := base.Metrics.Counter(c), hyb.Metrics.Counter(c)
		if b <= 0 {
			t.Fatalf("counter %s not recorded", c)
		}
		if b != h {
			t.Fatalf("counter %s differs between MPI-only (%d) and hybrid (%d)", c, b, h)
		}
	}
}
