package mpisim

import (
	"fmt"
	"math"
	"sync"
	"time"

	"fun3d/internal/blas4"
	"fun3d/internal/flux"
	"fun3d/internal/geom"
	"fun3d/internal/krylov"
	"fun3d/internal/mesh"
	"fun3d/internal/par"
	"fun3d/internal/perfmodel"
	"fun3d/internal/physics"
	"fun3d/internal/prof"
	"fun3d/internal/sparse"
)

// Config describes one multi-node run.
type Config struct {
	Ranks   int
	Natural bool // natural-block decomposition instead of multilevel

	// ThreadsPerRank makes hybrid mode real: each rank owns a par.Pool of
	// that many workers and runs the actual threaded flux/Jacobian kernels
	// (owner-writes partition) and P2P-scheduled ILU/triangular solves on
	// its subdomain. 0 or 1 keeps the rank sequential. Threading never
	// changes the numerics: the owner-writes and P2P paths are bit-identical
	// to the sequential kernels, so a hybrid run's residual history equals
	// the MPI-only run on the same decomposition.
	ThreadsPerRank int

	// Overlap posts the halo exchange nonblocking (Isend/Irecv) and
	// computes the subdomain's interior edges — both endpoints owned, no
	// ghost reads — while the messages are in flight, finishing the
	// ghost-touching boundary edges after Wait. Edge traversal order is
	// interior-first in both modes, so Overlap changes modeled halo wait
	// time and nothing else.
	Overlap bool

	Rates    perfmodel.Rates  // per-rank kernel rates (calibrate at ThreadsPerRank)
	VecRates *perfmodel.Rates // optional override for vector primitives
	// (the paper's hybrid case: kernels threaded, PETSc Vec* sequential)
	Net perfmodel.Network

	FillLevel int
	// Dedup content-deduplicates each rank's ILU stores after every
	// factorization (sparse.Factor dedup mode): bit-identical numerics,
	// with the rank-local triangular solves reading repeated blocks
	// through the unique store.
	Dedup bool
	// FusedNorms enables communication-reducing GMRES (one fewer
	// Allreduce per iteration); see krylov.Options.FusedNorms.
	FusedNorms bool
	// Pipelined selects the single-Allreduce-per-iteration GMRES variant
	// (krylov.Options.Pipelined): the batched reduction rides distOps'
	// ReduceQueue and the JFNK differencing norm is lag-normalized, so each
	// inner iteration issues exactly one collective. Supersedes FusedNorms.
	Pipelined bool
	AlphaDeg  float64
	Beta      float64

	CFL0           float64
	RelTol         float64
	MaxSteps       int
	LinearRelTol   float64
	Restart        int
	MaxLinearIters int

	Seed uint64

	// Faults injects the deterministic fault plan: straggler noise on
	// compute intervals, jitter on point-to-point transfers, and scheduled
	// rank crashes that abort the communicator and trigger
	// checkpoint/restart recovery. The zero value disables injection.
	Faults FaultConfig
	// CheckpointEvery snapshots the distributed state (owned + ghost q,
	// residual history, iteration counters) every k pseudo-time steps when
	// crashes are enabled; recovery resumes from the last consistent
	// snapshot. Default 1 (every step).
	CheckpointEvery int
	// MaxRestarts caps recovery attempts before Solve gives up and returns
	// the crash as an error. Default 64.
	MaxRestarts int
}

func (c *Config) defaults() {
	if c.Beta <= 0 {
		c.Beta = 5
	}
	if c.AlphaDeg == 0 {
		c.AlphaDeg = 3.06
	}
	if c.CFL0 <= 0 {
		c.CFL0 = 50
	}
	if c.RelTol <= 0 {
		c.RelTol = 1e-6
	}
	if c.MaxSteps <= 0 {
		c.MaxSteps = 30
	}
	if c.LinearRelTol <= 0 {
		c.LinearRelTol = 1e-3
	}
	if c.Restart <= 0 {
		c.Restart = 30
	}
	if c.MaxLinearIters <= 0 {
		c.MaxLinearIters = 300
	}
	if c.CheckpointEvery <= 0 {
		c.CheckpointEvery = 1
	}
	if c.MaxRestarts <= 0 {
		c.MaxRestarts = 64
	}
	if c.Faults.RestartDelay <= 0 {
		c.Faults.RestartDelay = 0.05
	}
}

// Result aggregates a distributed run.
type Result struct {
	Steps       int
	LinearIters int
	Converged   bool
	RNorm0      float64
	RNormFinal  float64
	// History is the nonlinear residual norm after each pseudo-time step
	// (History[0] is after step 1). Overlap and threading must not change
	// it — the invariant the tests pin down.
	History []float64

	// Virtual time (seconds): Time is the slowest rank's clock; the
	// breakdown averages across ranks (clocks stay synchronized by the
	// Allreduce-heavy algorithm).
	Time          float64
	ComputeTime   float64
	PtPTime       float64
	AllreduceTime float64

	Msgs       int
	Bytes      int
	Allreduces int
	// AllreduceStages and AllreduceHops break the collectives down
	// structurally: message stages executed and switch hops traversed,
	// summed over calls (deterministic functions of the collective
	// algorithm, topology, placement, and rank count).
	AllreduceStages int
	AllreduceHops   int
	// Point-to-point route books summed over ranks: switch hops traversed
	// by halo messages, and the halo bytes whose endpoints straddled a
	// node or a pod/group boundary — the volumes topology-aware placement
	// drives down.
	PtPHops           int
	PtPCrossNodeBytes int
	PtPCrossPodBytes  int

	// Fault-injection accounting (zero on fault-free runs). NoiseTime is
	// the per-rank average of injected straggler/jitter seconds, a subset
	// of ComputeTime + PtPTime; RecomputedSteps counts pseudo-time steps
	// redone after restoring from a checkpoint.
	Restarts        int
	FaultsInjected  int
	RecomputedSteps int
	NoiseTime       float64

	// Metrics aggregates the per-rank kernel records: times are *virtual*
	// seconds summed over ranks (a CPU-seconds analog — fractions are
	// rank-weighted averages), distributed work counters (edges, blocks,
	// vector elements, halo traffic) are global totals, and replicated
	// counts (GMRES iterations, Newton steps, Allreduce calls/bytes) are
	// recorded once, not multiplied by the rank count.
	Metrics *prof.Metrics
}

// CommFraction returns the share of virtual time spent communicating —
// the Fig 10 metric.
func (r Result) CommFraction() float64 {
	if r.Time == 0 {
		return 0
	}
	return (r.PtPTime + r.AllreduceTime) / (r.ComputeTime + r.PtPTime + r.AllreduceTime)
}

// Solve runs the distributed pseudo-transient NKS solver over cfg.Ranks
// simulated ranks and reports real convergence plus modeled time.
//
// With cfg.Faults enabled, Solve is a supervisor: an injected rank crash
// panics out of the attempt (aborting the communicator, MPI_Abort style),
// and the supervisor restores every rank from the last consistent in-memory
// checkpoint, re-forms the communicator, and retries with capped
// exponential backoff. State rewinds; the clock resumes from the
// checkpoint's synchronized virtual time plus the recovery delay, so the
// run's reported time, traffic, and fault counters depend only on the
// deterministic virtual schedule — never on the real-time goroutine race of
// who observed the abort first. Recovery is bit-deterministic: the
// recovered trajectory (residual history, step and iteration counts) is
// identical to a fault-free run's, and two faulted runs with the same seed
// agree on every reported number.
func Solve(m *mesh.Mesh, cfg Config) (Result, error) {
	cfg.defaults()
	art, err := BuildArtifact(m, specOf(&cfg))
	if err != nil {
		return Result{}, err
	}
	return solve(art, cfg)
}

// solve is the supervisor loop shared by Solve and SolveArtifact; cfg has
// defaults applied and matches art.Spec.
func solve(art *Artifact, cfg Config) (Result, error) {
	// A locality placement without an explicit table gets one computed
	// from this decomposition's halo traffic graph. cfg is a copy, so the
	// table lives only for this run; callers sweeping placements over one
	// artifact can precompute a table once and pass it in via Net.NodeTable.
	if cfg.Net.Place == perfmodel.PlaceLocality && cfg.Net.NodeTable == nil {
		tbl, err := LocalityTable(art.Subs, cfg.Net)
		if err != nil {
			return Result{}, err
		}
		cfg.Net.NodeTable = tbl
	}
	fp := newFaultPlan(&cfg)
	var store *ckptStore
	if fp.crashes() {
		store = newCkptStore(cfg.Ranks)
	}

	resume := 0.0 // virtual clock every rank starts the next attempt at
	restarts, faults, recomputed := 0, 0, 0

	for {
		workers, results, err := runAttempt(art, &cfg, fp, store, resume)
		if err != nil {
			return Result{}, err
		}

		// Classify the attempt: injected crashes are retried from the last
		// checkpoint; genuine solver errors (divergence, factorization
		// failure) are returned as before and never retried. Which — and
		// how many — ranks fired a *CrashError is a real-time race, so
		// counters track failure events (attempts killed), not fires.
		var crash *CrashError
		var genuine, aborted error
		for r := range results {
			switch e := results[r].err.(type) {
			case nil:
			case *CrashError:
				if crash == nil {
					crash = e
				}
			default:
				if results[r].err == errAborted {
					aborted = fmt.Errorf("rank %d: %w", r, results[r].err)
				} else if genuine == nil {
					genuine = fmt.Errorf("rank %d: %w", r, results[r].err)
				}
			}
		}

		if crash != nil && genuine == nil {
			faults++
			if restarts >= cfg.MaxRestarts {
				out := finish(&cfg, workers, results, restarts, faults, recomputed)
				return out, fmt.Errorf("mpisim: giving up after %d restarts: %w", restarts, crash)
			}
			// Every rank observed the same last completed step (a
			// completed end-of-step collective is observed by all ranks,
			// even under a concurrent abort), so the lost span is that
			// step minus the restore point, plus the partially-executed
			// step the crash interrupted.
			recomputed += results[0].steps - store.step() + 1
			restarts++
			// Capped exponential backoff on the recovery delay.
			delay := cfg.Faults.RestartDelay
			for i := 1; i < restarts && i < 4; i++ {
				delay *= 2
			}
			// Resume from the checkpoint's synchronized clock (0 when
			// restarting from scratch) plus the delay.
			snapClock := 0.0
			if snaps := store.consistent(); snaps != nil {
				snapClock = snaps[0].stats.Clock
			}
			resume = snapClock + delay
			// Crashes scheduled before the resume point struck a job that
			// was already down — skip them, then retire the designated
			// culprit so recovery cannot livelock on a crash event beyond
			// the resume point.
			fp.advancePast(resume)
			fp.consumeNext()
			continue
		}

		out := finish(&cfg, workers, results, restarts, faults, recomputed)
		if genuine != nil {
			return out, genuine
		}
		if aborted != nil {
			return out, aborted
		}
		return out, nil
	}
}

// runAttempt forms a fresh communicator and runs every rank's solver
// goroutine to completion, restoring from the checkpoint store's last
// consistent snapshot when one exists. Every rank starts at the resume
// clock with the snapshot's time/traffic accounting (a failed attempt's
// partial work past the checkpoint is abandoned — it is sampled at an
// arbitrary abort point and would make the books racy; the recovery delay
// models its cost instead). Worker pools are closed before return.
func runAttempt(art *Artifact, cfg *Config, fp *FaultPlan, store *ckptStore, resume float64) (workers []*worker, results []rankResult, err error) {
	comm := NewComm(cfg.Ranks, cfg.Net)
	workers = make([]*worker, cfg.Ranks)
	results = make([]rankResult, cfg.Ranks)
	defer func() {
		for _, w := range workers {
			if w != nil && w.pool != nil {
				w.pool.Close()
			}
		}
	}()
	var snaps []*rankSnapshot
	if store != nil {
		snaps = store.consistent()
	}
	for r := 0; r < cfg.Ranks; r++ {
		rk := comm.NewRank(r)
		rk.fp = fp
		if snaps != nil {
			st := snaps[r].stats
			rk.ComputeTime = st.ComputeTime
			rk.PtPTime = st.PtPTime
			rk.AllreduceTime = st.AllreduceTime
			rk.NoiseTime = st.NoiseTime
			rk.MsgsSent = st.MsgsSent
			rk.BytesSent = st.BytesSent
			rk.Allreduces = st.Allreduces
			rk.BytesReduced = st.BytesReduced
			rk.AllreduceStages = st.AllreduceStages
			rk.AllreduceHops = st.AllreduceHops
			rk.PtPHops = st.PtPHops
			rk.PtPCrossNodeBytes = st.PtPCrossNodeBytes
			rk.PtPCrossPodBytes = st.PtPCrossPodBytes
		}
		rk.Clock = resume
		w, werr := newWorker(rk, art, cfg)
		if werr != nil {
			return nil, nil, werr
		}
		w.store = store
		if snaps != nil {
			w.restore = snaps[r]
			w.met.Merge(snaps[r].met)
		}
		workers[r] = w
	}
	var wg sync.WaitGroup
	for r := 0; r < cfg.Ranks; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			results[r] = workers[r].run()
		}(r)
	}
	wg.Wait()
	return workers, results, nil
}

// finish aggregates the final attempt into a Result.
func finish(cfg *Config, workers []*worker, results []rankResult, restarts, faults, recomputed int) Result {
	out := Result{
		Steps:           results[0].steps,
		LinearIters:     results[0].linIters,
		Converged:       results[0].converged,
		RNorm0:          results[0].rnorm0,
		RNormFinal:      results[0].rnorm,
		History:         results[0].history,
		Restarts:        restarts,
		FaultsInjected:  faults,
		RecomputedSteps: recomputed,
		Metrics:         &prof.Metrics{},
	}
	for r := 0; r < cfg.Ranks; r++ {
		rk := workers[r].rank
		if rk.Clock > out.Time {
			out.Time = rk.Clock
		}
		out.ComputeTime += rk.ComputeTime
		out.PtPTime += rk.PtPTime
		out.AllreduceTime += rk.AllreduceTime
		out.NoiseTime += rk.NoiseTime
		out.Msgs += rk.MsgsSent
		out.Bytes += rk.BytesSent
		// Fold this rank's kernel record plus its communication time and
		// halo traffic into the aggregate. The snapshot-restored stats
		// make these cover the whole trajectory, booked exactly once.
		w := workers[r]
		w.met.Add(prof.Allreduce, vdur(rk.AllreduceTime))
		w.met.Add(prof.Halo, vdur(rk.PtPTime))
		w.met.Inc(prof.HaloMsgs, int64(rk.MsgsSent))
		w.met.Inc(prof.HaloBytes, int64(rk.BytesSent))
		w.met.Inc(prof.PtPHops, int64(rk.PtPHops))
		w.met.Inc(prof.PtPCrossNodeBytes, int64(rk.PtPCrossNodeBytes))
		w.met.Inc(prof.PtPCrossPodBytes, int64(rk.PtPCrossPodBytes))
		out.PtPHops += rk.PtPHops
		out.PtPCrossNodeBytes += rk.PtPCrossNodeBytes
		out.PtPCrossPodBytes += rk.PtPCrossPodBytes
		out.Metrics.Merge(w.met)
	}
	out.Allreduces = workers[0].rank.Allreduces
	out.AllreduceStages = workers[0].rank.AllreduceStages
	out.AllreduceHops = workers[0].rank.AllreduceHops
	out.Metrics.Inc(prof.AllreduceCalls, int64(workers[0].rank.Allreduces))
	out.Metrics.Inc(prof.AllreduceBytes, int64(workers[0].rank.BytesReduced))
	out.Metrics.Inc(prof.CollectiveStages, int64(out.AllreduceStages))
	out.Metrics.Inc(prof.CollectiveHops, int64(out.AllreduceHops))
	out.Metrics.Inc(prof.GMRESIters, int64(out.LinearIters))
	out.Metrics.Inc(prof.NewtonSteps, int64(out.Steps))
	n := float64(cfg.Ranks)
	out.ComputeTime /= n
	out.PtPTime /= n
	out.AllreduceTime /= n
	out.NoiseTime /= n
	out.Metrics.Inc(prof.FaultsInjected, int64(faults))
	out.Metrics.Inc(prof.FaultRestarts, int64(restarts))
	out.Metrics.Inc(prof.FaultRecomputedSteps, int64(recomputed))
	out.Metrics.Inc(prof.FaultNoiseMicros, int64(out.NoiseTime*1e6))
	return out
}

// vdur converts modeled (virtual) seconds to a time.Duration for Metrics.
func vdur(seconds float64) time.Duration {
	return time.Duration(seconds * float64(time.Second))
}

type rankResult struct {
	steps, linIters int
	converged       bool
	rnorm0, rnorm   float64
	history         []float64
	err             error
}

const (
	tagHalo = 1
)

// worker is one rank's solver state.
type worker struct {
	rank *Rank
	sub  *Subdomain
	cfg  *Config
	qInf physics.State

	rates    perfmodel.Rates
	vecRates perfmodel.Rates

	// Shared-memory machinery: the subdomain materialized as a standalone
	// mesh drives the real flux kernels. With ThreadsPerRank > 1 the rank
	// owns a pool and an owner-writes thread partition; pool is nil in the
	// sequential (MPI-only) case.
	lm   *mesh.Mesh
	kern *flux.Kernels
	pool *par.Pool
	p2p  *sparse.P2PSchedule

	// met is this rank's kernel record on the virtual time axis; only the
	// rank goroutine writes it (the pool's kernel threads never touch it),
	// and Solve merges the shards after the run.
	met *prof.Metrics

	q, res, rp, qp []float64 // NLocal*4
	dt             []float64 // NOwned
	jac            *sparse.BSR
	factor         *sparse.Factor
	gmres          krylov.GMRES
	ops            *distOps // the rank's one Vectors instance (owns the ReduceQueue)

	// per-step cache for the matrix-free operator
	qnorm float64

	// Checkpoint/restart plumbing (nil on fault-free runs): store receives
	// this rank's periodic snapshots; restore, when set by the supervisor,
	// is the snapshot to resume from.
	store   *ckptStore
	restore *rankSnapshot
}

// compute advances the rank's virtual clock by a modeled duration and books
// it to kernel k, so the distributed runs produce the same per-kernel
// breakdown as the shared-memory stepper (on the virtual time axis).
func (w *worker) compute(k prof.Kernel, seconds float64) {
	w.rank.Compute(seconds)
	w.met.Add(k, vdur(seconds))
}

// newWorker builds rank `rank.id`'s solver state over the shared artifact.
// The subdomain, local mesh, Jacobian sparsity, and ILU schedule are the
// artifact's read-only templates; only the value arrays are per-worker
// (structure-shared clones) — at 16384 ranks the index structure would
// otherwise be rebuilt and duplicated per rank per attempt.
func newWorker(rank *Rank, art *Artifact, cfg *Config) (*worker, error) {
	sub := art.Subs[rank.id]
	w := &worker{rank: rank, sub: sub, cfg: cfg, rates: cfg.Rates, met: &prof.Metrics{}}
	w.vecRates = cfg.Rates
	if cfg.VecRates != nil {
		w.vecRates = *cfg.VecRates
	}
	w.qInf = physics.FreeStream(cfg.AlphaDeg)
	nl := sub.NLocal * 4
	w.q = make([]float64, nl)
	w.res = make([]float64, nl)
	w.rp = make([]float64, nl)
	w.qp = make([]float64, nl)
	w.dt = make([]float64, sub.NOwned)
	w.jac = art.jacTmpl[rank.id].CloneStructure()
	w.factor = art.facTmpl[rank.id].CloneStructure()
	w.factor.EnableDedup(cfg.Dedup)
	for v := 0; v < sub.NLocal; v++ {
		copy(w.q[v*4:v*4+4], w.qInf[:])
	}
	w.lm = art.locals[rank.id]
	if err := w.setupKernels(); err != nil {
		return nil, err
	}
	w.ops = newDistOps(w)
	w.gmres = krylov.GMRES{Ops: w.ops}
	return w, nil
}

// setupKernels builds the rank's view of the shared-memory stack: the flux
// kernel set over the artifact's local mesh, and — for hybrid ranks — the
// thread pool, owner-writes partition, and P2P solve schedule.
func (w *worker) setupKernels() error {
	nthreads := w.cfg.ThreadsPerRank
	if nthreads < 1 {
		nthreads = 1
	}
	strat := flux.Sequential
	var part *flux.Partition
	var err error
	if nthreads > 1 {
		// Owner-writes replication: deterministic, no atomics, and
		// bit-identical to the sequential kernel (per-vertex accumulation
		// stays in ascending edge order). METIS-quality splits where the
		// subdomain is big enough; natural blocks otherwise (Multilevel
		// rejects nparts > vertices — tiny subdomains at high rank counts).
		strat = flux.ReplicateMETIS
		if w.sub.NLocal < 4*nthreads {
			strat = flux.ReplicateNatural
		}
		part, err = flux.NewPartition(w.lm, nthreads, strat, w.cfg.Seed+uint64(w.rank.id))
		if err != nil {
			strat = flux.ReplicateNatural
			part, err = flux.NewPartition(w.lm, nthreads, strat, 0)
			if err != nil {
				return err
			}
		}
		w.pool = par.NewPool(nthreads)
		w.p2p = sparse.NewP2PSchedule(w.factor.M, nthreads)
	}
	w.kern = flux.NewKernels(w.lm, w.cfg.Beta, w.qInf, w.pool, part, flux.Config{Strategy: strat})
	return nil
}

// haloBegin posts the full halo exchange of x nonblocking: pack+Isend to
// every peer, then Irecv from every peer. Returns the receive requests for
// haloEnd.
func (w *worker) haloBegin(x []float64) []*Request {
	s := w.sub
	for i, peer := range s.Neighbors {
		idx := s.SendIdx[i]
		if len(idx) == 0 {
			continue
		}
		buf := make([]float64, len(idx)*4)
		for j, l := range idx {
			copy(buf[j*4:j*4+4], x[l*4:l*4+4])
		}
		w.rank.Isend(peer, tagHalo, buf)
	}
	reqs := make([]*Request, len(s.Neighbors))
	for i, peer := range s.Neighbors {
		if len(s.RecvIdx[i]) == 0 {
			continue
		}
		reqs[i] = w.rank.Irecv(peer, tagHalo)
	}
	return reqs
}

// haloEnd completes the receives and scatters ghost values into x. Any
// compute done since haloBegin has already advanced the clock, so Wait
// charges only the uncovered remainder of each transfer.
func (w *worker) haloEnd(x []float64, reqs []*Request) {
	s := w.sub
	for i := range reqs {
		if reqs[i] == nil {
			continue
		}
		buf := w.rank.Wait(reqs[i])
		for j, l := range s.RecvIdx[i] {
			copy(x[l*4:l*4+4], buf[j*4:j*4+4])
		}
	}
}

// exchange refreshes ghost entries of x (length NLocal*4) from the owners,
// blocking (no compute overlapped).
func (w *worker) exchange(x []float64) {
	w.haloEnd(x, w.haloBegin(x))
}

// residualInterior evaluates the ghost-independent part of the residual:
// interior edges (both endpoints owned) and the boundary-node closure. Safe
// to run while a halo exchange of q is in flight.
func (w *worker) residualInterior(q, res []float64) {
	w.kern.ResidualBegin(res)
	w.kern.ResidualEdgeRange(q, nil, nil, res, 0, w.sub.NEdgeInterior)
	w.kern.ResidualBoundary(q, res)
	w.compute(prof.Flux, float64(w.sub.NEdgeInterior)*w.rates.FluxPerEdge)
	w.met.Inc(prof.FluxEdges, int64(w.sub.NEdgeInterior))
}

// residualFinish evaluates the ghost-touching boundary edges; ghosts of q
// must be current. Together with residualInterior this is the full local
// residual, traversed in the same order regardless of overlap.
func (w *worker) residualFinish(q, res []float64) {
	ne := len(w.sub.EV1)
	w.kern.ResidualEdgeRange(q, nil, nil, res, w.sub.NEdgeInterior, ne)
	w.kern.ResidualEnd(res)
	w.compute(prof.Flux, float64(ne-w.sub.NEdgeInterior)*w.rates.FluxPerEdge)
	w.met.Inc(prof.FluxEdges, int64(ne-w.sub.NEdgeInterior))
}

// evalResidual refreshes the ghosts of q and evaluates the full residual.
// With cfg.Overlap the halo is posted nonblocking and interior work hides
// the transfer; otherwise the exchange completes up front. Both paths
// produce bit-identical residuals — only the modeled wait time differs.
// Owned entries of res are meaningful; ghost entries are scratch.
func (w *worker) evalResidual(q, res []float64) {
	if w.cfg.Overlap {
		reqs := w.haloBegin(q)
		w.residualInterior(q, res)
		w.haloEnd(q, reqs)
		w.residualFinish(q, res)
	} else {
		w.exchange(q)
		w.residualInterior(q, res)
		w.residualFinish(q, res)
	}
}

// assembleJacobian fills the owned-rows first-order Jacobian with the
// pseudo-time shift. Hybrid ranks assemble threaded under the owner-writes
// partition: each thread walks its (ascending) edge list and writes only
// rows of vertices it owns, so block rows are touched by exactly one thread
// and per-row accumulation order matches the sequential loop — the
// assembled matrix is bit-identical.
func (w *worker) assembleJacobian(q []float64) {
	s := w.sub
	a := w.jac
	a.Zero()
	if w.pool != nil {
		p := w.kern.Part
		w.pool.Run(func(tid int) {
			w.jacEdgesOwner(q, p.EdgeList[tid], p.Owner, int32(tid))
			w.jacClosureOwner(q, p.Owner, int32(tid))
		})
	} else {
		w.jacEdgesSeq(q)
		w.jacClosureSeq(q)
	}
	for i := 0; i < s.NOwned; i++ {
		blas4.AddDiag(a.Block(a.Diag[i]), s.Vol[i]/w.dt[i])
	}
	w.compute(prof.Jacobian, float64(len(s.EV1))*w.rates.JacPerEdge)
	w.met.Inc(prof.JacEdges, int64(len(s.EV1)))
}

// jacEdgesSeq is the sequential edge-loop of the Jacobian assembly.
func (w *worker) jacEdgesSeq(q []float64) {
	s := w.sub
	a := w.jac
	beta := w.cfg.Beta
	var dL, dR [16]float64
	for e := range s.EV1 {
		va, vb := s.EV1[e], s.EV2[e]
		n := geom.Vec3{X: s.ENX[e], Y: s.ENY[e], Z: s.ENZ[e]}
		var qa, qb physics.State
		copy(qa[:], q[va*4:va*4+4])
		copy(qb[:], q[vb*4:vb*4+4])
		physics.RoeFluxJacobians(qa, qb, n, beta, &dL, &dR)
		aOwned := int(va) < s.NOwned
		bOwned := int(vb) < s.NOwned
		if aOwned {
			addTo(a, va, va, &dL, 1)
			if bOwned {
				addTo(a, va, vb, &dR, 1)
			}
		}
		if bOwned {
			addTo(a, vb, vb, &dR, -1)
			if aOwned {
				addTo(a, vb, va, &dL, -1)
			}
		}
	}
}

// jacEdgesOwner is the owner-writes edge loop: thread `tid` walks its edge
// list (cut edges recompute the two flux Jacobians redundantly, as in the
// flux kernel) and adds only into rows it owns. The owned-rows Schwarz
// gating (< NOwned) composes with the thread gating.
func (w *worker) jacEdgesOwner(q []float64, list []int32, owner []int32, tid int32) {
	s := w.sub
	a := w.jac
	beta := w.cfg.Beta
	var dL, dR [16]float64
	for _, e := range list {
		va, vb := s.EV1[e], s.EV2[e]
		n := geom.Vec3{X: s.ENX[e], Y: s.ENY[e], Z: s.ENZ[e]}
		var qa, qb physics.State
		copy(qa[:], q[va*4:va*4+4])
		copy(qb[:], q[vb*4:vb*4+4])
		physics.RoeFluxJacobians(qa, qb, n, beta, &dL, &dR)
		if owner[va] == tid && int(va) < s.NOwned {
			addTo(a, va, va, &dL, 1)
			if int(vb) < s.NOwned {
				addTo(a, va, vb, &dR, 1)
			}
		}
		if owner[vb] == tid && int(vb) < s.NOwned {
			addTo(a, vb, vb, &dR, -1)
			if int(va) < s.NOwned {
				addTo(a, vb, va, &dL, -1)
			}
		}
	}
}

// jacClosureSeq adds the boundary-node Jacobian contributions sequentially.
func (w *worker) jacClosureSeq(q []float64) {
	a := w.jac
	beta := w.cfg.Beta
	var d [16]float64
	for _, bn := range w.sub.BNodes {
		switch bn.Kind {
		case mesh.PatchWall, mesh.PatchSymmetry:
			physics.WallFluxJacobian(bn.Normal, &d)
		default:
			var qv physics.State
			copy(qv[:], q[int(bn.V)*4:int(bn.V)*4+4])
			physics.FarfieldFluxJacobian(qv, w.qInf, bn.Normal, beta, &d)
		}
		addTo(a, bn.V, bn.V, &d, 1)
	}
}

// jacClosureOwner is the owner-filtered boundary-node loop for hybrid
// ranks (BNodes reference owned vertices only).
func (w *worker) jacClosureOwner(q []float64, owner []int32, tid int32) {
	a := w.jac
	beta := w.cfg.Beta
	var d [16]float64
	for _, bn := range w.sub.BNodes {
		if owner[bn.V] != tid {
			continue
		}
		switch bn.Kind {
		case mesh.PatchWall, mesh.PatchSymmetry:
			physics.WallFluxJacobian(bn.Normal, &d)
		default:
			var qv physics.State
			copy(qv[:], q[int(bn.V)*4:int(bn.V)*4+4])
			physics.FarfieldFluxJacobian(qv, w.qInf, bn.Normal, beta, &d)
		}
		addTo(a, bn.V, bn.V, &d, 1)
	}
}

func addTo(a *sparse.BSR, i, j int32, blk *[16]float64, sign float64) {
	slot := a.BlockAt(i, j)
	dst := a.Block(slot)
	for t := 0; t < 16; t++ {
		dst[t] += sign * blk[t]
	}
}

// localTimeSteps fills w.dt for owned vertices.
func (w *worker) localTimeSteps(q []float64, cfl float64) {
	s := w.sub
	lam := make([]float64, s.NOwned)
	beta := w.cfg.Beta
	for e := range s.EV1 {
		a, b := s.EV1[e], s.EV2[e]
		n := geom.Vec3{X: s.ENX[e], Y: s.ENY[e], Z: s.ENZ[e]}
		area := n.Norm()
		if int(a) < s.NOwned {
			var qa physics.State
			copy(qa[:], q[a*4:a*4+4])
			lam[a] += physics.SpectralRadius(qa, n, beta) * area
		}
		if int(b) < s.NOwned {
			var qb physics.State
			copy(qb[:], q[b*4:b*4+4])
			lam[b] += physics.SpectralRadius(qb, n, beta) * area
		}
	}
	for v := 0; v < s.NOwned; v++ {
		if lam[v] == 0 {
			lam[v] = math.Sqrt(beta)
		}
		w.dt[v] = cfl * s.Vol[v] / lam[v]
	}
	w.compute(prof.Other, float64(len(s.EV1))*w.vecRates.VecPerElem)
}

// run executes the pseudo-transient NKS loop and returns this rank's view.
func (w *worker) run() (rr rankResult) {
	defer func() {
		if p := recover(); p != nil {
			switch e := p.(type) {
			case *CrashError:
				// Injected fault: the supervisor recovers this attempt
				// from the last checkpoint.
				rr.err = e
			case error:
				if e == errAborted {
					rr.err = e
				} else {
					rr.err = fmt.Errorf("mpisim worker panic: %v", p)
				}
			default:
				rr.err = fmt.Errorf("mpisim worker panic: %v", p)
			}
		}
		// A failing rank aborts the communicator so peers blocked on
		// receives or collectives error out instead of deadlocking
		// (MPI_Abort semantics). Harmless when the error was reached
		// collectively — nobody is left waiting.
		if rr.err != nil && rr.err != errAborted {
			w.rank.comm.Abort()
		}
	}()
	cfg := w.cfg
	s := w.sub
	nOwn := s.NOwned * 4
	ops := w.ops

	startStep := 0
	var rnorm float64
	if w.restore != nil {
		// Resume from the snapshot: restore the state vector (owned +
		// ghosts) and the trajectory counters, then rebuild the residual —
		// bit-identical to the value the uncrashed run held at this step,
		// so the continuation reproduces the fault-free trajectory exactly.
		copy(w.q, w.restore.q)
		startStep = w.restore.step
		rr.steps = w.restore.step
		rr.linIters = w.restore.linIters
		rr.rnorm0 = w.restore.rnorm0
		rr.history = append([]float64(nil), w.restore.history...)
		rnorm = w.restore.rnorm
		rr.rnorm = rnorm
		w.evalResidual(w.q, w.res)
	} else {
		w.evalResidual(w.q, w.res)
		rnorm = ops.Norm2(w.res[:nOwn])
		rr.rnorm0 = rnorm
		rr.rnorm = rnorm
		if rnorm <= 1e-14 {
			rr.converged = true
			return rr
		}
	}

	op := &distOp{w: w, ops: ops}
	pre := &distPre{w: w}
	rhs := make([]float64, nOwn)
	dq := make([]float64, nOwn)

	for step := startStep + 1; step <= cfg.MaxSteps; step++ {
		cfl := cfg.CFL0 * rr.rnorm0 / rnorm
		if cfl > 1e7 {
			cfl = 1e7
		}
		w.localTimeSteps(w.q, cfl)
		w.assembleJacobian(w.q)
		errFlag := 0.0
		ferr := w.factorize()
		w.compute(prof.ILU, float64(w.factor.M.NNZBlocks())*w.rates.ILUPerBlock)
		w.met.Inc(prof.ILUBlocks, int64(w.factor.M.NNZBlocks()))
		w.met.Inc(prof.ILURows, int64(w.factor.M.N))
		if ferr != nil {
			errFlag = 1
		}
		if g := ops.w.rank.Allreduce([]float64{errFlag}); g[0] != 0 {
			rr.err = fmt.Errorf("step %d: ILU factorization failed on some rank (%v)", step, ferr)
			return rr
		}

		for i := 0; i < nOwn; i++ {
			rhs[i] = -w.res[i]
			dq[i] = 0
		}
		w.qnorm = ops.Norm2(w.q[:nOwn])
		// The Krylov-collective window: reductions issued inside Solve are
		// booked into KrylovAllreduceCalls/Bytes — the per-iteration gate.
		ops.inSolve = true
		lres, lerr := w.gmres.Solve(op, pre, rhs, dq, krylov.Options{
			Restart:    cfg.Restart,
			MaxIters:   cfg.MaxLinearIters,
			RelTol:     cfg.LinearRelTol,
			FusedNorms: cfg.FusedNorms,
			Pipelined:  cfg.Pipelined,
			ZeroGuess:  true, // dq starts at zero; skips a matvec + its hidden norm collective
		})
		ops.inSolve = false
		if lerr != nil {
			rr.err = fmt.Errorf("step %d: %w", step, lerr)
			return rr
		}
		rr.linIters += lres.Iterations

		for i := 0; i < nOwn; i++ {
			w.q[i] += dq[i]
		}
		w.compute(prof.VecOps, float64(nOwn)*w.vecRates.VecPerElem)
		w.met.Inc(prof.VecElems, int64(nOwn))
		w.evalResidual(w.q, w.res)
		rnorm = ops.Norm2(w.res[:nOwn])
		rr.rnorm = rnorm
		rr.history = append(rr.history, rnorm)
		rr.steps = step
		if math.IsNaN(rnorm) || rnorm > 1e8*rr.rnorm0 {
			rr.err = fmt.Errorf("diverged at step %d: ||R||=%g", step, rnorm)
			return rr
		}
		if rnorm <= cfg.RelTol*rr.rnorm0 {
			rr.converged = true
			return rr
		}
		if w.store != nil && step%cfg.CheckpointEvery == 0 {
			// Distributed checkpoint. Consistency needs no extra
			// collective: the end-of-step residual norm above was this
			// step's last rendezvous, injected crashes fire only at
			// Compute/Wait/Allreduce *entry*, a completed collective is
			// observed by every participant even under a concurrent
			// abort, and nothing between that collective and this write
			// touches the communicator — so either every rank passed the
			// collective and snapshots step `step`, or no rank does. The
			// rank clocks are synchronized by that collective, making
			// stats.Clock identical across ranks.
			met := &prof.Metrics{}
			met.Merge(w.met)
			stats := *w.rank
			stats.comm, stats.fp = nil, nil
			w.store.save(w.rank.id, &rankSnapshot{
				step:     step,
				q:        append([]float64(nil), w.q...),
				rnorm0:   rr.rnorm0,
				rnorm:    rnorm,
				history:  append([]float64(nil), rr.history...),
				linIters: rr.linIters,
				stats:    stats,
				met:      met,
			})
		}
	}
	return rr
}

// distOp is the matrix-free Jacobian operator over owned dofs.
type distOp struct {
	w   *worker
	ops *distOps
}

// Apply computes y = (V/Δt) v + (R(q+hv) − R(q))/h with a fresh halo
// exchange of the perturbed state — one point-to-point round per matvec,
// as in a real distributed JFNK. The Norm2 here is the hidden collective
// that pipelined GMRES eliminates via ApplyWithNorm.
func (o *distOp) Apply(v, y []float64) {
	o.ApplyWithNorm(v, y, o.ops.Norm2(v))
}

// ApplyWithNorm is Apply with ||v|| supplied by the caller
// (krylov.NormedOperator): the pipelined solver tracks the exact norm via
// its lag-normalization recurrence, so the matvec issues no collective.
func (o *distOp) ApplyWithNorm(v, y []float64, vnorm float64) {
	w := o.w
	s := w.sub
	nOwn := s.NOwned * 4
	if vnorm == 0 {
		for i := range y {
			y[i] = 0
		}
		return
	}
	h := math.Sqrt(2.2e-16) * (1 + w.qnorm) / vnorm
	copy(w.qp, w.q)
	for i := 0; i < nOwn; i++ {
		w.qp[i] += h * v[i]
	}
	w.compute(prof.VecOps, float64(nOwn)*w.vecRates.VecPerElem)
	w.met.Inc(prof.VecElems, int64(nOwn))
	w.evalResidual(w.qp, w.rp)
	invH := 1 / h
	for vtx := 0; vtx < s.NOwned; vtx++ {
		shift := s.Vol[vtx] / w.dt[vtx]
		for c := 0; c < 4; c++ {
			i := vtx*4 + c
			y[i] = shift*v[i] + (w.rp[i]-w.res[i])*invH
		}
	}
	w.compute(prof.VecOps, float64(nOwn)*w.vecRates.VecPerElem)
	w.met.Inc(prof.VecElems, int64(nOwn))
}

// factorize runs the rank-local block ILU: P2P-scheduled across the pool
// on hybrid ranks (bit-identical to the sequential elimination), serial
// otherwise.
func (w *worker) factorize() error {
	if w.pool != nil {
		return w.factor.FactorizeILUP2P(w.pool, w.p2p, w.jac)
	}
	return w.factor.FactorizeILU(w.jac)
}

// distPre is the rank-local ILU solve (block-Jacobi Schwarz). Hybrid ranks
// run the P2P-scheduled triangular solves (Park et al.'s sparsified
// point-to-point waits) on the rank's pool.
type distPre struct {
	w *worker
}

// Apply implements krylov.Preconditioner over owned dofs.
func (p *distPre) Apply(r, z []float64) {
	w := p.w
	if w.pool != nil {
		w.factor.SolveP2P(w.pool, w.p2p, r, z)
	} else {
		w.factor.Solve(r, z)
	}
	w.compute(prof.TRSV, float64(w.factor.M.NNZBlocks())*w.rates.TRSVPerBlock)
	w.met.Inc(prof.TRSVBlocks, int64(w.factor.M.NNZBlocks()))
}
