package mpisim

import (
	"fmt"
	"math"
	"sync"

	"fun3d/internal/blas4"
	"fun3d/internal/geom"
	"fun3d/internal/krylov"
	"fun3d/internal/mesh"
	"fun3d/internal/perfmodel"
	"fun3d/internal/physics"
	"fun3d/internal/sparse"
)

// Config describes one multi-node run.
type Config struct {
	Ranks   int
	Natural bool // natural-block decomposition instead of multilevel

	Rates    perfmodel.Rates  // per-rank kernel rates (reflect threads/rank)
	VecRates *perfmodel.Rates // optional override for vector primitives
	// (the paper's hybrid case: kernels threaded, PETSc Vec* sequential)
	Net perfmodel.Network

	FillLevel int
	// FusedNorms enables communication-reducing GMRES (one fewer
	// Allreduce per iteration); see krylov.Options.FusedNorms.
	FusedNorms bool
	AlphaDeg   float64
	Beta       float64

	CFL0           float64
	RelTol         float64
	MaxSteps       int
	LinearRelTol   float64
	Restart        int
	MaxLinearIters int

	Seed uint64
}

func (c *Config) defaults() {
	if c.Beta <= 0 {
		c.Beta = 5
	}
	if c.AlphaDeg == 0 {
		c.AlphaDeg = 3.06
	}
	if c.CFL0 <= 0 {
		c.CFL0 = 50
	}
	if c.RelTol <= 0 {
		c.RelTol = 1e-6
	}
	if c.MaxSteps <= 0 {
		c.MaxSteps = 30
	}
	if c.LinearRelTol <= 0 {
		c.LinearRelTol = 1e-3
	}
	if c.Restart <= 0 {
		c.Restart = 30
	}
	if c.MaxLinearIters <= 0 {
		c.MaxLinearIters = 300
	}
}

// Result aggregates a distributed run.
type Result struct {
	Steps       int
	LinearIters int
	Converged   bool
	RNorm0      float64
	RNormFinal  float64

	// Virtual time (seconds): Time is the slowest rank's clock; the
	// breakdown averages across ranks (clocks stay synchronized by the
	// Allreduce-heavy algorithm).
	Time          float64
	ComputeTime   float64
	PtPTime       float64
	AllreduceTime float64

	Msgs       int
	Bytes      int
	Allreduces int
}

// CommFraction returns the share of virtual time spent communicating —
// the Fig 10 metric.
func (r Result) CommFraction() float64 {
	if r.Time == 0 {
		return 0
	}
	return (r.PtPTime + r.AllreduceTime) / (r.ComputeTime + r.PtPTime + r.AllreduceTime)
}

// Solve runs the distributed pseudo-transient NKS solver over cfg.Ranks
// simulated ranks and reports real convergence plus modeled time.
func Solve(m *mesh.Mesh, cfg Config) (Result, error) {
	cfg.defaults()
	subs, err := Decompose(m, cfg.Ranks, cfg.Natural, cfg.Seed)
	if err != nil {
		return Result{}, err
	}
	comm := NewComm(cfg.Ranks, cfg.Net)
	workers := make([]*worker, cfg.Ranks)
	results := make([]rankResult, cfg.Ranks)
	var wg sync.WaitGroup
	for r := 0; r < cfg.Ranks; r++ {
		w, err := newWorker(comm.NewRank(r), subs[r], &cfg)
		if err != nil {
			return Result{}, err
		}
		workers[r] = w
	}
	for r := 0; r < cfg.Ranks; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			results[r] = workers[r].run()
		}(r)
	}
	wg.Wait()

	out := Result{
		Steps:       results[0].steps,
		LinearIters: results[0].linIters,
		Converged:   results[0].converged,
		RNorm0:      results[0].rnorm0,
		RNormFinal:  results[0].rnorm,
	}
	for r := 0; r < cfg.Ranks; r++ {
		if results[r].err != nil {
			return out, fmt.Errorf("rank %d: %w", r, results[r].err)
		}
		rk := workers[r].rank
		if rk.Clock > out.Time {
			out.Time = rk.Clock
		}
		out.ComputeTime += rk.ComputeTime
		out.PtPTime += rk.PtPTime
		out.AllreduceTime += rk.AllreduceTime
		out.Msgs += rk.MsgsSent
		out.Bytes += rk.BytesSent
	}
	out.Allreduces = workers[0].rank.Allreduces
	n := float64(cfg.Ranks)
	out.ComputeTime /= n
	out.PtPTime /= n
	out.AllreduceTime /= n
	return out, nil
}

type rankResult struct {
	steps, linIters int
	converged       bool
	rnorm0, rnorm   float64
	err             error
}

const (
	tagHalo = 1
)

// worker is one rank's solver state.
type worker struct {
	rank *Rank
	sub  *Subdomain
	cfg  *Config
	qInf physics.State

	rates    perfmodel.Rates
	vecRates perfmodel.Rates

	q, res, rp, qp []float64 // NLocal*4
	dt             []float64 // NOwned
	jac            *sparse.BSR
	factor         *sparse.Factor
	gmres          krylov.GMRES

	// per-step cache for the matrix-free operator
	qnorm float64
}

func newWorker(rank *Rank, sub *Subdomain, cfg *Config) (*worker, error) {
	w := &worker{rank: rank, sub: sub, cfg: cfg, rates: cfg.Rates}
	w.vecRates = cfg.Rates
	if cfg.VecRates != nil {
		w.vecRates = *cfg.VecRates
	}
	w.qInf = physics.FreeStream(cfg.AlphaDeg)
	nl := sub.NLocal * 4
	w.q = make([]float64, nl)
	w.res = make([]float64, nl)
	w.rp = make([]float64, nl)
	w.qp = make([]float64, nl)
	w.dt = make([]float64, sub.NOwned)
	var err error
	w.jac, err = sparse.NewBSRFromPattern(sub.JacRows)
	if err != nil {
		return nil, err
	}
	pat, err := sparse.SymbolicILU(w.jac, cfg.FillLevel)
	if err != nil {
		return nil, err
	}
	w.factor, err = sparse.NewFactorPattern(pat)
	if err != nil {
		return nil, err
	}
	for v := 0; v < sub.NLocal; v++ {
		copy(w.q[v*4:v*4+4], w.qInf[:])
	}
	w.gmres = krylov.GMRES{Ops: &distOps{w: w}}
	return w, nil
}

// exchange refreshes ghost entries of x (length NLocal*4) from the owners.
func (w *worker) exchange(x []float64) {
	s := w.sub
	for i, peer := range s.Neighbors {
		idx := s.SendIdx[i]
		if len(idx) == 0 {
			continue
		}
		buf := make([]float64, len(idx)*4)
		for j, l := range idx {
			copy(buf[j*4:j*4+4], x[l*4:l*4+4])
		}
		w.rank.Send(peer, tagHalo, buf)
	}
	for i, peer := range s.Neighbors {
		idx := s.RecvIdx[i]
		if len(idx) == 0 {
			continue
		}
		buf := w.rank.Recv(peer, tagHalo)
		for j, l := range idx {
			copy(x[l*4:l*4+4], buf[j*4:j*4+4])
		}
	}
}

// residual evaluates the local residual; ghosts of q must be current.
// Owned entries of res are meaningful; ghost entries are scratch.
func (w *worker) residual(q, res []float64) {
	s := w.sub
	for i := range res {
		res[i] = 0
	}
	beta := w.cfg.Beta
	for e := range s.EV1 {
		a, b := s.EV1[e], s.EV2[e]
		n := geom.Vec3{X: s.ENX[e], Y: s.ENY[e], Z: s.ENZ[e]}
		var qa, qb physics.State
		copy(qa[:], q[a*4:a*4+4])
		copy(qb[:], q[b*4:b*4+4])
		f := physics.RoeFlux(qa, qb, n, beta)
		for c := 0; c < 4; c++ {
			res[int(a)*4+c] += f[c]
			res[int(b)*4+c] -= f[c]
		}
	}
	for _, bn := range s.BNodes {
		var qv physics.State
		copy(qv[:], q[int(bn.V)*4:int(bn.V)*4+4])
		var f physics.State
		switch bn.Kind {
		case mesh.PatchWall, mesh.PatchSymmetry:
			f = physics.WallFlux(qv, bn.Normal)
		default:
			f = physics.FarfieldFlux(qv, w.qInf, bn.Normal, beta)
		}
		for c := 0; c < 4; c++ {
			res[int(bn.V)*4+c] += f[c]
		}
	}
	w.rank.Compute(float64(len(s.EV1)) * w.rates.FluxPerEdge)
}

// assembleJacobian fills the owned-rows first-order Jacobian with the
// pseudo-time shift.
func (w *worker) assembleJacobian(q []float64) {
	s := w.sub
	a := w.jac
	a.Zero()
	beta := w.cfg.Beta
	var dL, dR [16]float64
	for e := range s.EV1 {
		va, vb := s.EV1[e], s.EV2[e]
		n := geom.Vec3{X: s.ENX[e], Y: s.ENY[e], Z: s.ENZ[e]}
		var qa, qb physics.State
		copy(qa[:], q[va*4:va*4+4])
		copy(qb[:], q[vb*4:vb*4+4])
		physics.RoeFluxJacobians(qa, qb, n, beta, &dL, &dR)
		aOwned := int(va) < s.NOwned
		bOwned := int(vb) < s.NOwned
		if aOwned {
			addTo(a, va, va, &dL, 1)
			if bOwned {
				addTo(a, va, vb, &dR, 1)
			}
		}
		if bOwned {
			addTo(a, vb, vb, &dR, -1)
			if aOwned {
				addTo(a, vb, va, &dL, -1)
			}
		}
	}
	var d [16]float64
	for _, bn := range s.BNodes {
		switch bn.Kind {
		case mesh.PatchWall, mesh.PatchSymmetry:
			physics.WallFluxJacobian(bn.Normal, &d)
		default:
			var qv physics.State
			copy(qv[:], q[int(bn.V)*4:int(bn.V)*4+4])
			physics.FarfieldFluxJacobian(qv, w.qInf, bn.Normal, beta, &d)
		}
		addTo(a, bn.V, bn.V, &d, 1)
	}
	for i := 0; i < s.NOwned; i++ {
		blas4.AddDiag(a.Block(a.Diag[i]), s.Vol[i]/w.dt[i])
	}
	w.rank.Compute(float64(len(s.EV1)) * w.rates.JacPerEdge)
}

func addTo(a *sparse.BSR, i, j int32, blk *[16]float64, sign float64) {
	slot := a.BlockAt(i, j)
	dst := a.Block(slot)
	for t := 0; t < 16; t++ {
		dst[t] += sign * blk[t]
	}
}

// localTimeSteps fills w.dt for owned vertices.
func (w *worker) localTimeSteps(q []float64, cfl float64) {
	s := w.sub
	lam := make([]float64, s.NOwned)
	beta := w.cfg.Beta
	for e := range s.EV1 {
		a, b := s.EV1[e], s.EV2[e]
		n := geom.Vec3{X: s.ENX[e], Y: s.ENY[e], Z: s.ENZ[e]}
		area := n.Norm()
		if int(a) < s.NOwned {
			var qa physics.State
			copy(qa[:], q[a*4:a*4+4])
			lam[a] += physics.SpectralRadius(qa, n, beta) * area
		}
		if int(b) < s.NOwned {
			var qb physics.State
			copy(qb[:], q[b*4:b*4+4])
			lam[b] += physics.SpectralRadius(qb, n, beta) * area
		}
	}
	for v := 0; v < s.NOwned; v++ {
		if lam[v] == 0 {
			lam[v] = math.Sqrt(beta)
		}
		w.dt[v] = cfl * s.Vol[v] / lam[v]
	}
	w.rank.Compute(float64(len(s.EV1)) * w.vecRates.VecPerElem)
}

// run executes the pseudo-transient NKS loop and returns this rank's view.
func (w *worker) run() (rr rankResult) {
	defer func() {
		if p := recover(); p != nil {
			if err, ok := p.(error); ok && err == errAborted {
				rr.err = err
			} else {
				rr.err = fmt.Errorf("mpisim worker panic: %v", p)
			}
		}
		// A failing rank aborts the communicator so peers blocked on
		// receives or collectives error out instead of deadlocking
		// (MPI_Abort semantics). Harmless when the error was reached
		// collectively — nobody is left waiting.
		if rr.err != nil && rr.err != errAborted {
			w.rank.comm.Abort()
		}
	}()
	cfg := w.cfg
	s := w.sub
	nOwn := s.NOwned * 4
	ops := &distOps{w: w}

	w.exchange(w.q)
	w.residual(w.q, w.res)
	rnorm := ops.Norm2(w.res[:nOwn])
	rr.rnorm0 = rnorm
	rr.rnorm = rnorm
	if rnorm <= 1e-14 {
		rr.converged = true
		return rr
	}

	op := &distOp{w: w, ops: ops}
	pre := &distPre{w: w}
	rhs := make([]float64, nOwn)
	dq := make([]float64, nOwn)

	for step := 1; step <= cfg.MaxSteps; step++ {
		cfl := cfg.CFL0 * rr.rnorm0 / rnorm
		if cfl > 1e7 {
			cfl = 1e7
		}
		w.localTimeSteps(w.q, cfl)
		w.assembleJacobian(w.q)
		errFlag := 0.0
		ferr := w.factor.FactorizeILU(w.jac)
		w.rank.Compute(float64(w.factor.M.NNZBlocks()) * w.rates.ILUPerBlock)
		if ferr != nil {
			errFlag = 1
		}
		if g := ops.w.rank.Allreduce([]float64{errFlag}); g[0] != 0 {
			rr.err = fmt.Errorf("step %d: ILU factorization failed on some rank (%v)", step, ferr)
			return rr
		}

		for i := 0; i < nOwn; i++ {
			rhs[i] = -w.res[i]
			dq[i] = 0
		}
		w.qnorm = ops.Norm2(w.q[:nOwn])
		lres, lerr := w.gmres.Solve(op, pre, rhs, dq, krylov.Options{
			Restart:    cfg.Restart,
			MaxIters:   cfg.MaxLinearIters,
			RelTol:     cfg.LinearRelTol,
			FusedNorms: cfg.FusedNorms,
		})
		if lerr != nil {
			rr.err = fmt.Errorf("step %d: %w", step, lerr)
			return rr
		}
		rr.linIters += lres.Iterations

		for i := 0; i < nOwn; i++ {
			w.q[i] += dq[i]
		}
		w.rank.Compute(float64(nOwn) * w.vecRates.VecPerElem)
		w.exchange(w.q)
		w.residual(w.q, w.res)
		rnorm = ops.Norm2(w.res[:nOwn])
		rr.rnorm = rnorm
		rr.steps = step
		if math.IsNaN(rnorm) || rnorm > 1e8*rr.rnorm0 {
			rr.err = fmt.Errorf("diverged at step %d: ||R||=%g", step, rnorm)
			return rr
		}
		if rnorm <= cfg.RelTol*rr.rnorm0 {
			rr.converged = true
			return rr
		}
	}
	return rr
}

// distOp is the matrix-free Jacobian operator over owned dofs.
type distOp struct {
	w   *worker
	ops *distOps
}

// Apply computes y = (V/Δt) v + (R(q+hv) − R(q))/h with a fresh halo
// exchange of the perturbed state — one point-to-point round per matvec,
// as in a real distributed JFNK.
func (o *distOp) Apply(v, y []float64) {
	w := o.w
	s := w.sub
	nOwn := s.NOwned * 4
	vnorm := o.ops.Norm2(v)
	if vnorm == 0 {
		for i := range y {
			y[i] = 0
		}
		return
	}
	h := math.Sqrt(2.2e-16) * (1 + w.qnorm) / vnorm
	copy(w.qp, w.q)
	for i := 0; i < nOwn; i++ {
		w.qp[i] += h * v[i]
	}
	w.rank.Compute(float64(nOwn) * w.vecRates.VecPerElem)
	w.exchange(w.qp)
	w.residual(w.qp, w.rp)
	invH := 1 / h
	for vtx := 0; vtx < s.NOwned; vtx++ {
		shift := s.Vol[vtx] / w.dt[vtx]
		for c := 0; c < 4; c++ {
			i := vtx*4 + c
			y[i] = shift*v[i] + (w.rp[i]-w.res[i])*invH
		}
	}
	w.rank.Compute(float64(nOwn) * w.vecRates.VecPerElem)
}

// distPre is the rank-local ILU solve (block-Jacobi Schwarz).
type distPre struct {
	w *worker
}

// Apply implements krylov.Preconditioner over owned dofs.
func (p *distPre) Apply(r, z []float64) {
	p.w.factor.Solve(r, z)
	p.w.rank.Compute(float64(p.w.factor.M.NNZBlocks()) * p.w.rates.TRSVPerBlock)
}
