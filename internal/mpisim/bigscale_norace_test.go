//go:build !race

package mpisim

// bigScaleRanks is the full 16k-rank acceptance scale.
const bigScaleRanks = 16384
