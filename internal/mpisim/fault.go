package mpisim

import (
	"fmt"
	"math"

	"fun3d/internal/prof"
)

// FaultConfig describes the deterministic fault plan injected into a
// simulated cluster run: per-rank straggler noise on compute intervals,
// jitter on point-to-point transfers, and scheduled rank crashes. The plan
// is a pure function of the seed and the run's own virtual-time trajectory
// — no time.Now, no math/rand global state — so a run is bit-reproducible
// from its seed, and because every cost model is plain IEEE arithmetic the
// injected crash schedule (and therefore every recovery counter)
// reproduces across machines when the kernel rates are fixed rather than
// measured.
//
// Faults perturb only the virtual time axis; the numerics are untouched.
// A crashed-and-recovered run therefore converges along the exact residual
// trajectory of a fault-free run — the invariant the restart tests pin down.
type FaultConfig struct {
	// Seed keys every pseudo-random draw of the plan.
	Seed uint64
	// Noise is the straggler amplitude: each compute interval is stretched
	// by a factor uniform in [1, 1+Noise), and each point-to-point
	// transfer's modeled time is jittered the same way. Draws are keyed by
	// (rank, virtual clock), not by a mutable counter, so replaying a
	// trajectory after a restart redraws identical noise no matter where
	// the previous attempt was interrupted. 0 disables noise.
	Noise float64
	// MTBF is the per-rank mean virtual time between injected crashes, in
	// seconds. Crash times form a per-rank schedule with interarrival gaps
	// uniform in [0.5, 1.5)·MTBF (mean MTBF, no transcendental math); a
	// rank whose clock crosses its next scheduled crash time panics with a
	// *CrashError at its next fault checkpoint (Compute, or Wait/Allreduce
	// entry), which aborts the communicator. 0 disables crashes.
	MTBF float64
	// RestartDelay is the base recovery penalty: a restarted run resumes
	// at the checkpoint's virtual clock plus this delay, doubling per
	// consecutive restart and capped at 8x (capped exponential backoff).
	// Defaults to 0.05 virtual seconds.
	RestartDelay float64
}

// enabled reports whether the config injects anything at all.
func (f FaultConfig) enabled() bool { return f.Noise > 0 || f.MTBF > 0 }

// CrashError is the panic payload of an injected rank crash. The
// supervisor in Solve recognizes it (in contrast to genuine solver errors,
// which are never retried) and recovers the run from the last distributed
// checkpoint.
type CrashError struct {
	Rank int
	At   float64 // virtual time the crash was scheduled for
}

func (e *CrashError) Error() string {
	return fmt.Sprintf("mpisim: injected fault: rank %d crashed at virtual t=%.6gs", e.Rank, e.At)
}

// mix64 is the SplitMix64 finalizer — the stateless hash behind every
// fault-plan draw.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// rankFault is one rank's crash schedule head. It is mutated only by the
// supervisor between attempts (never by rank goroutines), which is what
// keeps the schedule deterministic: which goroutine happens to observe its
// deadline first is a real-time race, but the schedule itself never
// depends on it.
type rankFault struct {
	crashCtr  uint64
	nextCrash float64
}

// FaultPlan is the realized schedule for one run. Noise and jitter draws
// are stateless (keyed by rank and virtual clock); crash times form a
// per-rank strictly increasing sequence advanced only by the supervisor,
// so recovery always makes progress: every restart consumes at least the
// earliest pending crash event, and after finitely many restarts the next
// event lands beyond a checkpoint interval.
type FaultPlan struct {
	seed  uint64
	noise float64
	mtbf  float64
	ranks []*rankFault
}

// newFaultPlan realizes cfg.Faults for cfg.Ranks ranks, or nil when fault
// injection is disabled.
func newFaultPlan(cfg *Config) *FaultPlan {
	f := cfg.Faults
	if !f.enabled() {
		return nil
	}
	p := &FaultPlan{seed: f.Seed, noise: f.Noise, mtbf: f.MTBF, ranks: make([]*rankFault, cfg.Ranks)}
	for r := range p.ranks {
		rf := &rankFault{nextCrash: math.Inf(1)}
		if p.mtbf > 0 {
			rf.nextCrash = p.interarrival(r, &rf.crashCtr)
		}
		p.ranks[r] = rf
	}
	return p
}

// crashes reports whether the plan schedules rank crashes (and recovery
// therefore needs a checkpoint store).
func (p *FaultPlan) crashes() bool { return p != nil && p.mtbf > 0 }

// u01ctr returns the deterministic uniform [0,1) draw number ctr of the
// given per-rank stream (used for the supervisor-owned crash schedule).
func (p *FaultPlan) u01ctr(rank int, stream, ctr uint64) float64 {
	h := mix64(p.seed ^ mix64(uint64(rank)+1) ^ mix64(stream<<32^ctr))
	return float64(h>>11) / (1 << 53)
}

// u01clock returns a deterministic uniform [0,1) draw keyed by the rank's
// virtual state instead of a counter: replaying the same trajectory
// re-derives the same draws regardless of where a previous attempt was
// torn down, which is what makes faulted runs bit-reproducible despite the
// real-time raciness of communicator aborts.
func (p *FaultPlan) u01clock(rank int, stream uint64, a, b float64) float64 {
	h := p.seed
	h = mix64(h ^ (uint64(rank) + 1))
	h = mix64(h ^ stream)
	h = mix64(h ^ math.Float64bits(a))
	h = mix64(h ^ math.Float64bits(b))
	return float64(h>>11) / (1 << 53)
}

// interarrival draws the next crash gap: uniform in [0.5, 1.5)·MTBF.
func (p *FaultPlan) interarrival(rank int, ctr *uint64) float64 {
	u := p.u01ctr(rank, 2, *ctr)
	*ctr++
	return p.mtbf * (0.5 + u)
}

// computeNoise returns the straggler extension of a compute interval
// starting at the given clock.
func (p *FaultPlan) computeNoise(rank int, clock, seconds float64) float64 {
	if p.noise <= 0 || seconds <= 0 {
		return 0
	}
	return seconds * p.noise * p.u01clock(rank, 0, clock, seconds)
}

// ptpDelay returns the jitter added to one point-to-point transfer time,
// drawn at the given receive clock.
func (p *FaultPlan) ptpDelay(rank int, clock, seconds float64) float64 {
	if p.noise <= 0 || seconds <= 0 {
		return 0
	}
	return seconds * p.noise * p.u01clock(rank, 1, clock, seconds)
}

// advancePast skips crash events scheduled before the given resume time:
// failures that would have struck while the job was already down. Without
// this, a restart delay larger than the MTBF livelocks recovery — the
// resume clock outruns the crash schedule and every attempt dies at its
// first fault check. Supervisor-only.
func (p *FaultPlan) advancePast(resume float64) {
	if !p.crashes() {
		return
	}
	for r, rf := range p.ranks {
		for rf.nextCrash < resume {
			rf.nextCrash += p.interarrival(r, &rf.crashCtr)
		}
	}
}

// consumeNext retires the earliest pending crash event across all ranks —
// the designated culprit of a failed attempt. Firing itself (check) never
// mutates the schedule, because which of several past-deadline ranks
// observes its deadline first is a goroutine race; consuming exactly the
// global-minimum event here keeps the schedule, and with it every restart
// counter, deterministic — and guarantees forward progress even when the
// resume time alone would not outrun the schedule. Supervisor-only.
func (p *FaultPlan) consumeNext() {
	if !p.crashes() {
		return
	}
	best := 0
	for r := 1; r < len(p.ranks); r++ {
		if p.ranks[r].nextCrash < p.ranks[best].nextCrash {
			best = r
		}
	}
	rf := p.ranks[best]
	rf.nextCrash += p.interarrival(best, &rf.crashCtr)
}

// check fires the rank's scheduled crash if its virtual clock has crossed
// the deadline. Called from Compute and from the entry of the blocking
// calls (Wait, Allreduce) — never after a collective has completed — so a
// crash can only prevent a collective, not split one: either every live
// rank finishes the step's final Allreduce (and checkpoints), or none
// does, which keeps the distributed checkpoint store consistent by
// construction. The schedule is not consumed here (see consumeNext).
func (p *FaultPlan) check(r *Rank) {
	if rf := p.ranks[r.id]; r.Clock >= rf.nextCrash {
		panic(&CrashError{Rank: r.id, At: rf.nextCrash})
	}
}

// rankSnapshot is one rank's share of a distributed in-memory checkpoint:
// everything the trajectory from step+1 onward depends on, plus the rank's
// time/traffic accounting and kernel record at the snapshot point. It is
// written immediately after the end-of-step residual collective, where all
// rank clocks are synchronized — so stats.Clock is identical across ranks
// and, unlike anything sampled at abort time, deterministic.
type rankSnapshot struct {
	step     int
	q        []float64 // NLocal*4, owned + ghost
	rnorm0   float64
	rnorm    float64
	history  []float64
	linIters int
	stats    Rank          // comm/fp nil'd; Clock is the synchronized post-collective time
	met      *prof.Metrics // kernel record up to this step
}

// ckptStore holds the latest snapshot per rank. Each slot is written only
// by its rank's goroutine and read by the supervisor between attempts
// (ordered by the attempt WaitGroup), so no locking is needed.
type ckptStore struct {
	snaps []*rankSnapshot
}

func newCkptStore(nranks int) *ckptStore {
	return &ckptStore{snaps: make([]*rankSnapshot, nranks)}
}

func (c *ckptStore) save(rank int, s *rankSnapshot) { c.snaps[rank] = s }

// step returns the step of the last consistent checkpoint (0 = none).
func (c *ckptStore) step() int {
	if snaps := c.consistent(); snaps != nil {
		return snaps[0].step
	}
	return 0
}

// consistent returns the per-rank snapshots if every rank has one and they
// all describe the same step; nil otherwise (recovery then restarts from
// the freestream initial condition, which re-runs the identical
// trajectory from step 1 — slower, never wrong). Because snapshots are
// written only after a completed end-of-step collective, and a completed
// collective is observed by every rank (stragglers still collect the
// result under a concurrent abort), mismatched steps cannot actually
// occur; the fallback is defensive.
func (c *ckptStore) consistent() []*rankSnapshot {
	if len(c.snaps) == 0 || c.snaps[0] == nil {
		return nil
	}
	for _, s := range c.snaps {
		if s == nil || s.step != c.snaps[0].step {
			return nil
		}
	}
	return c.snaps
}
