package mpisim

import (
	"math"
	"sync"
	"testing"

	"fun3d/internal/mesh"
	"fun3d/internal/perfmodel"
)

func testNet() perfmodel.Network {
	return perfmodel.Stampede()
}

func testRates() perfmodel.Rates {
	// Synthetic but plausible rates; tests that need real ones call Measure.
	return perfmodel.Rates{
		FluxPerEdge: 150e-9, GradPerEdge: 40e-9, JacPerEdge: 250e-9,
		ILUPerBlock: 30e-9, TRSVPerBlock: 8e-9, VecPerElem: 1e-9, Threads: 1,
	}
}

func TestSendRecvClocks(t *testing.T) {
	c := NewComm(2, testNet())
	r0 := c.NewRank(0)
	r1 := c.NewRank(1)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		r0.Compute(1.0)
		r0.Send(1, 7, []float64{42, 43})
	}()
	var got []float64
	go func() {
		defer wg.Done()
		got = r1.Recv(0, 7)
	}()
	wg.Wait()
	if got[0] != 42 || got[1] != 43 {
		t.Fatalf("payload %v", got)
	}
	// r1 waited for the message: clock >= 1.0 + latency.
	if r1.Clock < 1.0 || r1.PtPTime <= 0 {
		t.Fatalf("r1 clock %v ptp %v", r1.Clock, r1.PtPTime)
	}
	if r0.MsgsSent != 1 || r0.BytesSent != 16 {
		t.Fatalf("sender stats %d %d", r0.MsgsSent, r0.BytesSent)
	}
}

func TestRecvSelective(t *testing.T) {
	c := NewComm(2, testNet())
	r0 := c.NewRank(0)
	r1 := c.NewRank(1)
	r0.Send(1, 5, []float64{5})
	r0.Send(1, 6, []float64{6})
	// Receive out of order by tag.
	if got := r1.Recv(0, 6); got[0] != 6 {
		t.Fatalf("tag 6 got %v", got)
	}
	if got := r1.Recv(0, 5); got[0] != 5 {
		t.Fatalf("tag 5 got %v", got)
	}
}

func TestAllreduceSumAndClockSync(t *testing.T) {
	const R = 8
	c := NewComm(R, testNet())
	var wg sync.WaitGroup
	ranks := make([]*Rank, R)
	sums := make([][]float64, R)
	for i := 0; i < R; i++ {
		ranks[i] = c.NewRank(i)
	}
	for i := 0; i < R; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r := ranks[i]
			r.Compute(float64(i)) // staggered clocks; max is 7
			sums[i] = r.Allreduce([]float64{float64(i), 1})
		}(i)
	}
	wg.Wait()
	for i := 0; i < R; i++ {
		if sums[i][0] != 28 || sums[i][1] != 8 {
			t.Fatalf("rank %d sum %v", i, sums[i])
		}
		if ranks[i].Clock < 7 {
			t.Fatalf("rank %d clock %v not synced to max", i, ranks[i].Clock)
		}
		if i > 0 && ranks[i].Clock != ranks[0].Clock {
			t.Fatalf("clocks differ: %v vs %v", ranks[i].Clock, ranks[0].Clock)
		}
	}
	// Slowest rank spent nothing in allreduce wait beyond the collective
	// cost; fastest spent ~7s.
	if ranks[0].AllreduceTime < 6.9 {
		t.Fatalf("rank0 allreduce wait %v", ranks[0].AllreduceTime)
	}
}

// Stress many generations with stragglers to exercise the two-slot design.
func TestAllreduceManyGenerations(t *testing.T) {
	const R = 4
	const gens = 200
	c := NewComm(R, testNet())
	var wg sync.WaitGroup
	bad := make([]bool, R)
	for i := 0; i < R; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r := c.NewRank(i)
			for g := 0; g < gens; g++ {
				out := r.Allreduce([]float64{1})
				if out[0] != R {
					bad[i] = true
					return
				}
			}
		}(i)
	}
	wg.Wait()
	for i, b := range bad {
		if b {
			t.Fatalf("rank %d saw a wrong reduction", i)
		}
	}
}

func TestDecomposeInvariants(t *testing.T) {
	m, err := mesh.Generate(mesh.SpecTiny())
	if err != nil {
		t.Fatal(err)
	}
	for _, R := range []int{1, 2, 5, 8} {
		subs, err := Decompose(m, R, false, 3)
		if err != nil {
			t.Fatal(err)
		}
		if len(subs) != R {
			t.Fatalf("R=%d: %d subs", R, len(subs))
		}
		totalOwned := 0
		totalEdges := 0
		for _, s := range subs {
			totalOwned += s.NOwned
			totalEdges += len(s.EV1)
			if s.NLocal != len(s.Global) {
				t.Fatal("NLocal mismatch")
			}
			// Owned vertices come first.
			for l := 0; l < s.NLocal; l++ {
				if s.Vol[l] <= 0 {
					t.Fatal("bad volume")
				}
			}
			for i := range s.Neighbors {
				if len(s.SendIdx[i]) == 0 && len(s.RecvIdx[i]) == 0 {
					t.Fatal("empty neighbor")
				}
				for _, l := range s.SendIdx[i] {
					if int(l) >= s.NOwned {
						t.Fatal("sending a ghost")
					}
				}
				for _, l := range s.RecvIdx[i] {
					if int(l) < s.NOwned {
						t.Fatal("receiving into owned")
					}
				}
			}
		}
		if totalOwned != m.NumVertices() {
			t.Fatalf("R=%d: owned %d != %d", R, totalOwned, m.NumVertices())
		}
		if totalEdges < m.NumEdges() {
			t.Fatalf("R=%d: edges %d < %d", R, totalEdges, m.NumEdges())
		}
		if R == 1 && totalEdges != m.NumEdges() {
			t.Fatal("R=1 should have no replication")
		}
	}
}

// Halo exchange correctness: fill each owned vertex with its global id,
// exchange, and verify every ghost holds its owner's value.
func TestHaloExchangeDeliversOwnerValues(t *testing.T) {
	m, err := mesh.Generate(mesh.SpecTiny())
	if err != nil {
		t.Fatal(err)
	}
	const R = 6
	subs, err := Decompose(m, R, false, 4)
	if err != nil {
		t.Fatal(err)
	}
	comm := NewComm(R, testNet())
	var wg sync.WaitGroup
	errs := make([]string, R)
	for r := 0; r < R; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			s := subs[r]
			w := &worker{rank: comm.NewRank(r), sub: s}
			x := make([]float64, s.NLocal*4)
			for l := 0; l < s.NOwned; l++ {
				for c := 0; c < 4; c++ {
					x[l*4+c] = float64(s.Global[l])*10 + float64(c)
				}
			}
			w.exchange(x)
			for l := s.NOwned; l < s.NLocal; l++ {
				for c := 0; c < 4; c++ {
					want := float64(s.Global[l])*10 + float64(c)
					if x[l*4+c] != want {
						errs[r] = "ghost mismatch"
						return
					}
				}
			}
		}(r)
	}
	wg.Wait()
	for r, e := range errs {
		if e != "" {
			t.Fatalf("rank %d: %s", r, e)
		}
	}
}

// Single-rank distributed solve must converge like the shared-memory
// solver (same algorithm, no communication).
func TestSolveSingleRank(t *testing.T) {
	m, err := mesh.Generate(mesh.SpecTiny())
	if err != nil {
		t.Fatal(err)
	}
	res, err := Solve(m, Config{Ranks: 1, Rates: testRates(), Net: testNet(), MaxSteps: 60})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("not converged: %+v", res)
	}
	if res.RNormFinal > 1e-6*res.RNorm0 {
		t.Fatalf("weak convergence %g -> %g", res.RNorm0, res.RNormFinal)
	}
	if res.Msgs != 0 {
		t.Fatalf("single rank sent %d messages", res.Msgs)
	}
	if res.Time <= 0 || res.ComputeTime <= 0 {
		t.Fatalf("bad virtual times: %+v", res)
	}
}

// Multi-rank solve converges; Schwarz degradation costs iterations; the
// run is deterministic.
func TestSolveMultiRank(t *testing.T) {
	m, err := mesh.Generate(mesh.SpecTiny())
	if err != nil {
		t.Fatal(err)
	}
	base, err := Solve(m, Config{Ranks: 1, Rates: testRates(), Net: testNet(), MaxSteps: 60})
	if err != nil {
		t.Fatal(err)
	}
	r8a, err := Solve(m, Config{Ranks: 8, Rates: testRates(), Net: testNet(), MaxSteps: 60, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !r8a.Converged {
		t.Fatalf("8 ranks not converged: %+v", r8a)
	}
	if r8a.LinearIters < base.LinearIters {
		t.Fatalf("domain decomposition should not reduce iterations: %d < %d",
			r8a.LinearIters, base.LinearIters)
	}
	if r8a.Msgs == 0 || r8a.PtPTime <= 0 || r8a.AllreduceTime <= 0 {
		t.Fatalf("missing comm accounting: %+v", r8a)
	}
	// Determinism.
	r8b, err := Solve(m, Config{Ranks: 8, Rates: testRates(), Net: testNet(), MaxSteps: 60, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if r8a.LinearIters != r8b.LinearIters || r8a.RNormFinal != r8b.RNormFinal ||
		math.Abs(r8a.Time-r8b.Time) > 1e-12*r8a.Time {
		t.Fatalf("nondeterministic: %+v vs %+v", r8a, r8b)
	}
	t.Logf("1 rank: %d iters; 8 ranks: %d iters, commfrac=%.2f",
		base.LinearIters, r8a.LinearIters, r8a.CommFraction())
}

// Communication fraction grows with rank count (the Fig 10 shape).
func TestCommFractionGrows(t *testing.T) {
	m, err := mesh.Generate(mesh.SpecTiny())
	if err != nil {
		t.Fatal(err)
	}
	var fracs []float64
	for _, R := range []int{2, 8, 32} {
		res, err := Solve(m, Config{Ranks: R, Rates: testRates(), Net: testNet(),
			MaxSteps: 3, RelTol: 1e-30, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		fracs = append(fracs, res.CommFraction())
	}
	if !(fracs[0] < fracs[1] && fracs[1] < fracs[2]) {
		t.Fatalf("comm fraction not growing: %v", fracs)
	}
	t.Logf("comm fractions at 2/8/32 ranks: %.3f %.3f %.3f", fracs[0], fracs[1], fracs[2])
}

// Faster rates (the "optimized" configuration) must yield lower virtual
// time at identical numerics — the Fig 9 comparison mechanism.
func TestOptimizedRatesReduceTime(t *testing.T) {
	m, err := mesh.Generate(mesh.SpecTiny())
	if err != nil {
		t.Fatal(err)
	}
	slow := testRates()
	fast := testRates()
	fast.FluxPerEdge /= 2
	fast.ILUPerBlock /= 2
	fast.TRSVPerBlock /= 2
	rs, err := Solve(m, Config{Ranks: 4, Rates: slow, Net: testNet(), MaxSteps: 5, RelTol: 1e-30, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	rf, err := Solve(m, Config{Ranks: 4, Rates: fast, Net: testNet(), MaxSteps: 5, RelTol: 1e-30, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if rf.Time >= rs.Time {
		t.Fatalf("faster rates slower: %v >= %v", rf.Time, rs.Time)
	}
	if rf.LinearIters != rs.LinearIters {
		t.Fatalf("rates changed numerics: %d vs %d", rf.LinearIters, rs.LinearIters)
	}
}

func TestSolveBadConfig(t *testing.T) {
	m, err := mesh.Generate(mesh.SpecTiny())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Solve(m, Config{Ranks: 0, Rates: testRates(), Net: testNet()}); err == nil {
		t.Fatal("0 ranks accepted")
	}
}

// FusedNorms cuts the Allreduce count while reaching the same convergence.
func TestFusedNormsReduceAllreduces(t *testing.T) {
	m, err := mesh.Generate(mesh.SpecTiny())
	if err != nil {
		t.Fatal(err)
	}
	plain, err := Solve(m, Config{Ranks: 4, Rates: testRates(), Net: testNet(), MaxSteps: 60, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	fused, err := Solve(m, Config{Ranks: 4, Rates: testRates(), Net: testNet(), MaxSteps: 60, Seed: 5, FusedNorms: true})
	if err != nil {
		t.Fatal(err)
	}
	if !plain.Converged || !fused.Converged {
		t.Fatalf("convergence: %v %v", plain.Converged, fused.Converged)
	}
	if fused.Allreduces >= plain.Allreduces {
		t.Fatalf("fused norms did not reduce collectives: %d vs %d",
			fused.Allreduces, plain.Allreduces)
	}
	if fused.AllreduceTime >= plain.AllreduceTime {
		t.Fatalf("fused norms did not reduce allreduce time: %v vs %v",
			fused.AllreduceTime, plain.AllreduceTime)
	}
	t.Logf("allreduces: plain=%d fused=%d (%.0f%% saved)", plain.Allreduces,
		fused.Allreduces, 100*float64(plain.Allreduces-fused.Allreduces)/float64(plain.Allreduces))
}

// Failure injection: when one rank dies mid-collective, Abort must unblock
// the others with errors instead of deadlocking the run.
func TestAbortUnblocksPeers(t *testing.T) {
	const R = 4
	c := NewComm(R, testNet())
	var wg sync.WaitGroup
	errs := make([]error, R)
	for i := 0; i < R; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					if e, ok := p.(error); ok {
						errs[i] = e
					}
				}
			}()
			r := c.NewRank(i)
			if i == 0 {
				// rank 0 "dies" before the collective
				c.Abort()
				return
			}
			r.Allreduce([]float64{1}) // must not hang
		}(i)
	}
	wg.Wait()
	for i := 1; i < R; i++ {
		if errs[i] == nil {
			t.Fatalf("rank %d did not observe the abort", i)
		}
	}
}

// Same for a blocked receive.
func TestAbortUnblocksRecv(t *testing.T) {
	c := NewComm(2, testNet())
	done := make(chan error, 1)
	go func() {
		defer func() {
			if p := recover(); p != nil {
				done <- p.(error)
				return
			}
			done <- nil
		}()
		c.NewRank(1).Recv(0, 9) // nothing will ever arrive
	}()
	c.Abort()
	if err := <-done; err == nil {
		t.Fatal("recv did not observe the abort")
	}
}

// A worker panic must surface as an error from Solve, not a deadlock:
// inject by corrupting a subdomain after construction is impossible from
// outside, so simulate with very many ranks on a tiny mesh, where some
// ranks own zero vertices — previously a panic path, now a supported
// configuration.
func TestSolveManyRanksEmptyOwners(t *testing.T) {
	m, err := mesh.Generate(mesh.SpecTiny())
	if err != nil {
		t.Fatal(err)
	}
	// 160 ranks over 640 vertices: ~4 vertices per rank, likely including
	// empty or near-empty owners after partition refinement.
	res, err := Solve(m, Config{Ranks: 160, Rates: testRates(), Net: testNet(),
		MaxSteps: 2, RelTol: 1e-30, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps != 2 {
		t.Fatalf("expected 2 steps, got %d", res.Steps)
	}
}
