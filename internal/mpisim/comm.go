// Package mpisim is the distributed-memory substrate standing in for MPI on
// Stampede: ranks are goroutines exchanging real data through mailboxes,
// while per-rank *virtual clocks* advance by calibrated compute costs
// (perfmodel.Rates) and modeled network costs (perfmodel.Network). The
// numerics executed are the real distributed Newton-Krylov-Schwarz
// algorithm — halo exchanges, rank-local ILU, Allreduce-backed inner
// products — so iteration counts, Schwarz convergence degradation, and
// message volumes are genuine; only the time axis is modeled. This is the
// substitution documented in DESIGN.md for the paper's 256-node runs.
package mpisim

import (
	"fmt"
	"sync"

	"fun3d/internal/perfmodel"
)

// envelope is one in-flight message.
type envelope struct {
	from, tag int
	data      []float64
	sendClock float64
}

// mailbox is an unbounded, selective-receive message queue (senders never
// block, so arbitrary exchange orders cannot deadlock).
type mailbox struct {
	mu      sync.Mutex
	cond    *sync.Cond
	queue   []envelope
	aborted bool
}

func newMailbox() *mailbox {
	m := &mailbox{}
	m.cond = sync.NewCond(&m.mu)
	return m
}

func (m *mailbox) put(e envelope) {
	m.mu.Lock()
	if m.aborted {
		// Late send into a dead communicator generation: drop it so the
		// payload cannot be consumed (or retained) after an abort.
		m.mu.Unlock()
		return
	}
	m.queue = append(m.queue, e)
	m.mu.Unlock()
	m.cond.Broadcast()
}

func (m *mailbox) get(from, tag int) envelope {
	m.mu.Lock()
	defer m.mu.Unlock()
	for {
		if m.aborted {
			panic(errAborted)
		}
		for i, e := range m.queue {
			if e.from == from && e.tag == tag {
				m.queue = append(m.queue[:i], m.queue[i+1:]...)
				return e
			}
		}
		m.cond.Wait()
	}
}

func (m *mailbox) abort() {
	m.mu.Lock()
	m.aborted = true
	// Release queued payloads: a failed large-mesh run must not pin halo
	// buffers for the lifetime of the dead communicator, and no rank may
	// consume a message from a dead generation (get re-checks aborted
	// before every scan, so clearing here is observationally equivalent to
	// the messages never arriving).
	m.queue = nil
	m.mu.Unlock()
	m.cond.Broadcast()
}

// errAborted is the panic payload used to unwind ranks blocked on a dead
// communicator; workers recover it into an error.
var errAborted = fmt.Errorf("mpisim: communicator aborted (a peer rank failed)")

// Comm is a communicator over a fixed number of ranks.
type Comm struct {
	size  int
	net   perfmodel.Network
	boxes []*mailbox
	red   *reducer
}

// NewComm creates a communicator of the given size over the network model.
func NewComm(size int, net perfmodel.Network) *Comm {
	c := &Comm{size: size, net: net, boxes: make([]*mailbox, size)}
	for i := range c.boxes {
		c.boxes[i] = newMailbox()
	}
	c.red = newReducer(size)
	return c
}

// Size returns the rank count.
func (c *Comm) Size() int { return c.size }

// Abort unblocks every rank waiting on a receive or collective by making
// those calls panic with errAborted (workers recover it into an error).
// Call when one rank fails so the remaining ranks cannot deadlock — the
// failure-injection behaviour MPI implementations provide with
// MPI_Abort.
func (c *Comm) Abort() {
	for _, b := range c.boxes {
		b.abort()
	}
	c.red.abort()
}

// Rank is one participant's handle. Each rank goroutine owns exactly one.
type Rank struct {
	comm *Comm
	id   int

	// fp, when non-nil, injects the deterministic fault plan: straggler
	// noise on Compute, jitter on point-to-point arrivals, and scheduled
	// crashes checked at Compute and at the *entry* of the blocking calls
	// (Wait, Allreduce) — never after a completed collective, so a crash
	// cannot split one (see FaultPlan.check).
	fp *FaultPlan

	// Virtual time accounting (seconds).
	Clock         float64
	ComputeTime   float64
	PtPTime       float64
	AllreduceTime float64
	// NoiseTime is the share of Clock added by injected straggler noise
	// and point-to-point jitter (a subset of ComputeTime + PtPTime).
	NoiseTime float64

	// Traffic statistics.
	MsgsSent     int
	BytesSent    int
	Allreduces   int
	BytesReduced int // Allreduce payload bytes contributed by this rank
	// Collective structure (from perfmodel.CollectiveCost): message stages
	// executed and switch hops traversed by this rank's collectives —
	// deterministic functions of (algo, topology, placement, size), summed
	// over calls.
	AllreduceStages int
	AllreduceHops   int
	// Point-to-point route books (kept by the receiver): switch hops
	// traversed by received messages, and the received bytes that crossed
	// a node or a pod/group boundary — deterministic functions of
	// (decomposition, placement, topology), the quantities the placement
	// experiment drives down.
	PtPHops           int
	PtPCrossNodeBytes int
	PtPCrossPodBytes  int
}

// NewRank returns the handle for rank id. Call exactly once per id.
func (c *Comm) NewRank(id int) *Rank {
	if id < 0 || id >= c.size {
		panic(fmt.Sprintf("mpisim: rank %d out of range [0,%d)", id, c.size))
	}
	return &Rank{comm: c, id: id}
}

// ID returns the rank number.
func (r *Rank) ID() int { return r.id }

// Size returns the communicator size.
func (r *Rank) Size() int { return r.comm.size }

// Compute advances the rank's virtual clock by a modeled compute duration,
// stretched by the fault plan's straggler noise when one is installed.
func (r *Rank) Compute(seconds float64) {
	if r.fp != nil {
		extra := r.fp.computeNoise(r.id, r.Clock, seconds)
		seconds += extra
		r.NoiseTime += extra
	}
	r.Clock += seconds
	r.ComputeTime += seconds
	if r.fp != nil {
		r.fp.check(r)
	}
}

// Send posts data to rank `to` with the given tag. The data is copied;
// sends never block.
func (r *Rank) Send(to, tag int, data []float64) {
	cp := append([]float64(nil), data...)
	r.comm.boxes[to].put(envelope{from: r.id, tag: tag, data: cp, sendClock: r.Clock})
	r.MsgsSent++
	r.BytesSent += 8 * len(data)
}

// Isend is the nonblocking send. Sends in this simulator never block (the
// mailbox is unbounded), so Isend is Send under MPI's nonblocking name; it
// exists so overlapped halo code reads like the MPI it models.
func (r *Rank) Isend(to, tag int, data []float64) {
	r.Send(to, tag, data)
}

// Request is a posted nonblocking receive (the MPI_Irecv handle). Complete
// it with Rank.Wait.
type Request struct {
	from, tag int
	done      bool
	data      []float64
}

// Irecv posts a nonblocking receive for a message from `from` with `tag`.
// Posting costs no virtual time; the message transit happens "in the
// background" while the rank keeps computing. Complete with Wait.
func (r *Rank) Irecv(from, tag int) *Request {
	return &Request{from: from, tag: tag}
}

// Wait completes a posted receive and returns its payload. The virtual
// clock advances only by the *uncovered* remainder of the transfer: the
// message arrives at sendClock + network time, and any compute the rank did
// between Irecv and Wait counts against that — if the clock already passed
// the arrival time, Wait is free. The residual waiting gap is attributed to
// point-to-point communication. Wait is idempotent.
func (r *Rank) Wait(req *Request) []float64 {
	if req.done {
		return req.data
	}
	if r.fp != nil {
		// Crash deadline checked at entry: a rank whose scheduled failure
		// time has passed dies here instead of blocking on a peer.
		r.fp.check(r)
	}
	e := r.comm.boxes[r.id].get(req.from, req.tag)
	bytes := 8 * len(e.data)
	rt := r.comm.net.RouteOf(req.from, r.id, r.comm.size)
	ptp := r.comm.net.RouteCost(rt, bytes)
	r.PtPHops += rt.Hops
	if rt.CrossNode {
		r.PtPCrossNodeBytes += bytes
		if rt.CrossPod {
			r.PtPCrossPodBytes += bytes
		}
	}
	if r.fp != nil {
		jitter := r.fp.ptpDelay(r.id, r.Clock, ptp)
		ptp += jitter
		r.NoiseTime += jitter
	}
	arrive := e.sendClock + ptp
	if arrive > r.Clock {
		r.PtPTime += arrive - r.Clock
		r.Clock = arrive
	}
	req.done = true
	req.data = e.data
	return e.data
}

// Recv blocks until a message from `from` with `tag` arrives and returns
// its payload. The virtual clock advances to the modeled arrival time
// (sender's send clock + network time), never backwards; the waiting gap is
// attributed to point-to-point communication. Equivalent to Wait(Irecv(...)).
func (r *Rank) Recv(from, tag int) []float64 {
	return r.Wait(r.Irecv(from, tag))
}

// reducer implements a deterministic, reusable Allreduce rendezvous. Two
// generations can be in flight at once (stragglers of generation g reading
// their result while early ranks have entered g+1), so completed results
// live in two parity slots. Generation g+2 cannot complete before every
// straggler of g has re-entered, which bounds the overlap at two.
type reducer struct {
	mu      sync.Mutex
	cond    *sync.Cond
	size    int
	gen     int // generation currently accepting arrivals
	count   int
	curMax  float64     // max clock among current-generation arrivals
	parts   [][]float64 // current-generation contributions
	aborted bool
	slots   [2]struct { // completed generations, indexed by gen parity
		result []float64
		maxClk float64
		cost   perfmodel.CollectiveCost
	}
}

func (r *reducer) abort() {
	r.mu.Lock()
	r.aborted = true
	// Drop the pending contributions of the in-flight (incomplete)
	// generation so a failed large-mesh run releases reduction payload
	// memory — that generation can never complete, as no new rank may
	// enter an aborted reducer. Completed-generation slots are kept:
	// stragglers of a collective that DID complete still collect its
	// result (see Allreduce), which is what makes every rank observe the
	// same last completed step regardless of abort timing.
	for i := range r.parts {
		r.parts[i] = nil
	}
	r.count = 0
	r.curMax = 0
	r.mu.Unlock()
	r.cond.Broadcast()
}

func newReducer(size int) *reducer {
	r := &reducer{size: size, parts: make([][]float64, size)}
	r.cond = sync.NewCond(&r.mu)
	return r
}

// Allreduce sums vals element-wise across all ranks. Every rank must call
// with the same length. The reduction order is rank order, so the result is
// bit-identical across runs. Clocks synchronize to the slowest participant
// plus the modeled collective cost — the term that dominates the paper's
// 256-node runs.
func (r *Rank) Allreduce(vals []float64) []float64 {
	if r.fp != nil {
		// Crash deadline checked at entry only — never after the collective
		// completes — so a scheduled crash keeps a rank out of the
		// rendezvous entirely rather than killing it between the reduction
		// and its clock synchronization. Either every live rank finishes
		// this Allreduce or none does, the invariant the distributed
		// checkpoint store relies on.
		r.fp.check(r)
	}
	red := r.comm.red
	red.mu.Lock()
	if red.aborted {
		red.mu.Unlock()
		panic(errAborted)
	}
	myGen := red.gen
	red.parts[r.id] = append([]float64(nil), vals...)
	if r.Clock > red.curMax {
		red.curMax = r.Clock
	}
	red.count++
	if red.count == red.size {
		// Last arriver reduces deterministically in rank order.
		out := make([]float64, len(vals))
		for rank := 0; rank < red.size; rank++ {
			p := red.parts[rank]
			for i := range out {
				out[i] += p[i]
			}
			red.parts[rank] = nil
		}
		slot := &red.slots[myGen%2]
		slot.result = out
		slot.maxClk = red.curMax
		// The collective's cost is a pure function of (size, bytes, model);
		// the last arriver computes it once per generation and every
		// participant applies the same breakdown.
		slot.cost = r.comm.net.AllreduceBreakdown(r.comm.size, 8*len(vals))
		red.curMax = 0
		red.count = 0
		red.gen++
		red.cond.Broadcast()
	} else {
		for red.gen == myGen && !red.aborted {
			red.cond.Wait()
		}
		if red.gen == myGen {
			// Aborted before this generation completed: the collective
			// never happened for anyone.
			red.mu.Unlock()
			panic(errAborted)
		}
		// Generation completed — possibly concurrently with an abort. The
		// collective happened, so take its result: every participant of a
		// completed collective must observe it, or a crash elsewhere could
		// split ranks across a step boundary and break the checkpoint
		// consistency invariant.
	}
	slot := &red.slots[myGen%2]
	result := slot.result
	maxClk := slot.maxClk
	cost := slot.cost
	red.mu.Unlock()

	// All ranks leave at the synchronized time plus the collective cost.
	done := maxClk + cost.Seconds
	if done > r.Clock {
		r.AllreduceTime += done - r.Clock
		r.Clock = done
	}
	r.Allreduces++
	r.BytesReduced += 8 * len(vals)
	r.AllreduceStages += cost.Stages
	r.AllreduceHops += cost.Hops
	out := append([]float64(nil), result...)
	return out
}

// Barrier synchronizes all ranks (an empty Allreduce).
func (r *Rank) Barrier() {
	r.Allreduce(nil)
}

// ReduceQueue coalesces reduction contributions into one Allreduce: callers
// Push partial sums as they are produced and Flush issues a single
// collective over the packed payload. Every rank must Push the same values
// in the same order between Flushes — the same contract Allreduce itself
// has, extended over a batch. The flat-vs-tree cost model (and the paper's
// Fig 10 latency wall) applies per collective, so packing k reductions into
// one Flush pays one latency term instead of k — the mechanism behind the
// pipelined GMRES variant's single collective per iteration.
type ReduceQueue struct {
	r   *Rank
	buf []float64
}

// NewReduceQueue returns an empty coalescing queue bound to this rank.
func (r *Rank) NewReduceQueue() *ReduceQueue {
	return &ReduceQueue{r: r}
}

// Push appends local partial values to the pending payload and returns the
// offset at which they will appear in Flush's result.
func (q *ReduceQueue) Push(vals ...float64) int {
	off := len(q.buf)
	q.buf = append(q.buf, vals...)
	return off
}

// Pending returns the number of queued values.
func (q *ReduceQueue) Pending() int { return len(q.buf) }

// Flush reduces the pending payload in one Allreduce and resets the queue.
// A Flush with nothing pending issues no collective and returns nil.
func (q *ReduceQueue) Flush() []float64 {
	if len(q.buf) == 0 {
		return nil
	}
	out := q.r.Allreduce(q.buf)
	q.buf = q.buf[:0]
	return out
}
