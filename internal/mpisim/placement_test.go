package mpisim

import (
	"testing"

	"fun3d/internal/mesh"
	"fun3d/internal/partition"
	"fun3d/internal/perfmodel"
)

func placementNet(ranksPerNode, podSize int) perfmodel.Network {
	net := perfmodel.StampedeFatTree()
	net.RanksPerNode = ranksPerNode
	net.PodSize = podSize
	return net
}

// The satellite property, on the wing mesh: locality placement never
// prices above block under the hop model, and its table is a valid
// surjective assignment — every rank placed, every node occupied, node
// capacity respected. Checked across rank counts and both decomposition
// strategies (multilevel and natural over the shuffled wing mesh produce
// very different halo graphs).
func TestLocalityPlacementProperty(t *testing.T) {
	m, err := mesh.Generate(mesh.SpecTiny())
	if err != nil {
		t.Fatal(err)
	}
	for _, natural := range []bool{false, true} {
		for _, ranks := range []int{4, 8, 16, 23} {
			subs, err := Decompose(m, ranks, natural, 11)
			if err != nil {
				t.Fatal(err)
			}
			net := placementNet(2, 2)
			tbl, err := LocalityTable(subs, net)
			if err != nil {
				t.Fatal(err)
			}
			nodes := net.Nodes(ranks)
			if len(tbl) != ranks {
				t.Fatalf("natural=%v ranks=%d: table covers %d ranks", natural, ranks, len(tbl))
			}
			fill := make([]int, nodes)
			for r, nd := range tbl {
				if nd < 0 || int(nd) >= nodes {
					t.Fatalf("natural=%v ranks=%d: rank %d on node %d outside [0,%d)",
						natural, ranks, r, nd, nodes)
				}
				fill[nd]++
			}
			for nd, c := range fill {
				if c == 0 {
					t.Fatalf("natural=%v ranks=%d: node %d empty (not surjective)", natural, ranks, nd)
				}
				if c > net.RanksPerNode {
					t.Fatalf("natural=%v ranks=%d: node %d holds %d ranks, capacity %d",
						natural, ranks, nd, c, net.RanksPerNode)
				}
			}
			g := TrafficGraph(subs)
			pod := net.LocalityDomain()
			loc := partition.PlacementHopBytes(g, tbl, pod)
			blk := partition.PlacementHopBytes(g, partition.BlockTable(ranks, net.RanksPerNode), pod)
			if loc > blk {
				t.Fatalf("natural=%v ranks=%d: locality hop bytes %d above block %d",
					natural, ranks, loc, blk)
			}
		}
	}
}

// The partition package's hop pricing must agree with the network model's
// route classification edge by edge — they encode the same 0/1/3 fabric
// independently, and the placement experiment relies on both.
func TestPlacementHopBytesMatchesRouteModel(t *testing.T) {
	m, err := mesh.Generate(mesh.SpecTiny())
	if err != nil {
		t.Fatal(err)
	}
	const ranks = 12
	subs, err := Decompose(m, ranks, false, 11)
	if err != nil {
		t.Fatal(err)
	}
	g := TrafficGraph(subs)
	for _, topo := range []perfmodel.Topology{perfmodel.TopoFlat, perfmodel.TopoFatTree, perfmodel.TopoDragonfly} {
		net := placementNet(2, 2)
		net.Topo = topo
		tbl, err := LocalityTable(subs, net)
		if err != nil {
			t.Fatal(err)
		}
		net.Place = perfmodel.PlaceLocality
		net.NodeTable = tbl
		var want int64
		for v := int32(0); v < int32(ranks); v++ {
			for i := g.Ptr[v]; i < g.Ptr[v+1]; i++ {
				rt := net.RouteOf(int(v), int(g.Adj[i]), ranks)
				want += int64(g.EW[i]) * int64(rt.Hops)
			}
		}
		if got := partition.PlacementHopBytes(g, tbl, net.LocalityDomain()); got != want {
			t.Fatalf("topo %v: PlacementHopBytes %d, route model sums %d", topo, got, want)
		}
	}
}

// Placement moves virtual time and traffic classification, never numerics:
// the solver trajectory must be bit-identical across block, round-robin,
// and locality placements, and the route books must nest (cross-pod ⊆
// cross-node ⊆ all halo bytes). Locality must not book more cross-pod
// bytes than block on the same decomposition.
func TestPlacementTrajectoryInvariant(t *testing.T) {
	m, err := mesh.Generate(mesh.SpecTiny())
	if err != nil {
		t.Fatal(err)
	}
	const ranks = 8
	art, err := BuildArtifact(m, ClusterSpec{Ranks: ranks, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	base := Config{
		Ranks: ranks, Rates: testRates(),
		MaxSteps: 2, RelTol: 1e-30, CFL0: 20, Seed: 11,
	}
	results := map[perfmodel.Placement]Result{}
	for _, place := range []perfmodel.Placement{perfmodel.PlaceBlock, perfmodel.PlaceRoundRobin, perfmodel.PlaceLocality} {
		cfg := base
		cfg.Net = placementNet(2, 2)
		cfg.Net.Place = place
		res, err := SolveArtifact(art, cfg)
		if err != nil {
			t.Fatalf("%v: %v", place, err)
		}
		results[place] = res
	}
	ref := results[perfmodel.PlaceBlock]
	for place, res := range results {
		if len(res.History) != len(ref.History) {
			t.Fatalf("%v: history length %d vs %d", place, len(res.History), len(ref.History))
		}
		for i := range res.History {
			if res.History[i] != ref.History[i] {
				t.Fatalf("%v: history[%d] %v != %v (placement changed numerics)",
					place, i, res.History[i], ref.History[i])
			}
		}
		if res.Msgs != ref.Msgs || res.Bytes != ref.Bytes {
			t.Fatalf("%v: traffic %d msgs/%d bytes vs %d/%d (placement changed the exchange)",
				place, res.Msgs, res.Bytes, ref.Msgs, ref.Bytes)
		}
		if res.PtPCrossPodBytes > res.PtPCrossNodeBytes || res.PtPCrossNodeBytes > res.Bytes {
			t.Fatalf("%v: route books do not nest: cross-pod %d, cross-node %d, total %d",
				place, res.PtPCrossPodBytes, res.PtPCrossNodeBytes, res.Bytes)
		}
		if res.PtPCrossNodeBytes > 0 && res.PtPHops == 0 {
			t.Fatalf("%v: cross-node bytes booked with zero hops", place)
		}
	}
	loc, blk := results[perfmodel.PlaceLocality], results[perfmodel.PlaceBlock]
	if loc.PtPCrossPodBytes > blk.PtPCrossPodBytes {
		t.Fatalf("locality books %d cross-pod bytes, block %d — mapper made it worse",
			loc.PtPCrossPodBytes, blk.PtPCrossPodBytes)
	}
	if blk.PtPCrossNodeBytes == 0 {
		t.Fatal("block placement booked no cross-node bytes: test exercises nothing")
	}
}
