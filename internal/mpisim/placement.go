package mpisim

import (
	"fmt"

	"fun3d/internal/partition"
	"fun3d/internal/perfmodel"
)

// haloBytesPerVertex is the wire size of one interface vertex per halo
// exchange: the 4-component state in float64 (see haloBegin's packing).
const haloBytesPerVertex = 32

// TrafficGraph exports the decomposition's inter-rank halo traffic matrix
// as a directed CSR graph: vertex r is rank r, and edge r→p carries the
// bytes rank r sends rank p in ONE halo exchange (every exchange moves the
// same interface set, so one exchange's volume is the whole run's traffic
// shape). This is the input the locality mapper packs onto the fabric.
func TrafficGraph(subs []*Subdomain) *partition.Graph {
	p := len(subs)
	ptr := make([]int32, p+1)
	for r, s := range subs {
		n := 0
		for _, idx := range s.SendIdx {
			if len(idx) > 0 {
				n++
			}
		}
		ptr[r+1] = ptr[r] + int32(n)
	}
	adj := make([]int32, ptr[p])
	ew := make([]int32, ptr[p])
	for r, s := range subs {
		at := ptr[r]
		for i, peer := range s.Neighbors {
			if len(s.SendIdx[i]) == 0 {
				continue
			}
			adj[at] = int32(peer)
			ew[at] = int32(haloBytesPerVertex * len(s.SendIdx[i]))
			at++
		}
	}
	return &partition.Graph{Ptr: ptr, Adj: adj, EW: ew}
}

// LocalityTable computes the rank→node table for a locality placement of
// this decomposition on the given network: the halo traffic graph mapped
// onto net's node/pod geometry by partition.MapLocality. The result plugs
// into Network.NodeTable; solve does this automatically when
// cfg.Net.Place is PlaceLocality and no table was supplied.
func LocalityTable(subs []*Subdomain, net perfmodel.Network) ([]int32, error) {
	p := len(subs)
	perNode := net.RanksPerNode
	if perNode < 1 {
		perNode = 1
	}
	tbl, err := partition.MapLocality(TrafficGraph(subs), net.Nodes(p), perNode, net.LocalityDomain())
	if err != nil {
		return nil, fmt.Errorf("mpisim: locality placement: %w", err)
	}
	return tbl, nil
}
