package precond

import (
	"math"
	"math/rand"
	"testing"

	"fun3d/internal/blas4"
	"fun3d/internal/krylov"
	"fun3d/internal/mesh"
	"fun3d/internal/par"
	"fun3d/internal/sparse"
)

func testMatrix(t testing.TB, seed int64) *sparse.BSR {
	m, err := mesh.Generate(mesh.SpecTiny())
	if err != nil {
		t.Fatal(err)
	}
	a := sparse.NewBSRFromAdj(m.AdjPtr, m.Adj)
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < a.N; i++ {
		rowSum := 0.0
		for k := a.Ptr[i]; k < a.Ptr[i+1]; k++ {
			blk := a.Block(k)
			for t2 := range blk {
				blk[t2] = rng.NormFloat64() * 0.2
				rowSum += math.Abs(blk[t2])
			}
		}
		blas4.AddDiag(a.Block(a.Diag[i]), rowSum*0.5+1)
	}
	return a
}

func maxAbsDiff(a, b []float64) float64 {
	m := 0.0
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

// All scheduling variants of the one-subdomain preconditioner are the same
// operator.
func TestSchedulingVariantsIdentical(t *testing.T) {
	a := testMatrix(t, 1)
	pool := par.NewPool(4)
	defer pool.Close()
	rng := rand.New(rand.NewSource(2))
	r := make([]float64, a.N*4)
	for i := range r {
		r[i] = rng.NormFloat64()
	}

	ref, err := New(a, nil, Options{FillLevel: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.Factorize(a); err != nil {
		t.Fatal(err)
	}
	want := make([]float64, len(r))
	ref.Apply(r, want)

	for _, sched := range []Scheduling{SchedLevel, SchedP2P} {
		m, err := New(a, pool, Options{FillLevel: 1, Sched: sched})
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Factorize(a); err != nil {
			t.Fatal(err)
		}
		z := make([]float64, len(r))
		m.Apply(r, z)
		if d := maxAbsDiff(z, want); d != 0 {
			t.Fatalf("%v differs by %v", sched, d)
		}
	}
}

// More subdomains => weaker coupling => worse preconditioner, but still a
// valid operator that converges in GMRES. This is the paper's multi-node
// convergence-degradation effect ("up to 30% increase in iterations").
func TestSubdomainCountConvergenceDegradation(t *testing.T) {
	a := testMatrix(t, 3)
	n := a.N * 4
	rng := rand.New(rand.NewSource(4))
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	op := krylov.OperatorFunc(func(x, y []float64) { a.MulVec(x, y) })

	iters := make([]int, 0, 3)
	for _, nsub := range []int{1, 4, 16} {
		m, err := New(a, nil, Options{Subdomains: nsub, FillLevel: 0})
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Factorize(a); err != nil {
			t.Fatal(err)
		}
		var g krylov.GMRES
		x := make([]float64, n)
		res, err := g.Solve(op, m, b, x, krylov.Options{Restart: 30, MaxIters: 500, RelTol: 1e-8})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			t.Fatalf("nsub=%d not converged", nsub)
		}
		iters = append(iters, res.Iterations)
	}
	if iters[2] < iters[0] {
		t.Fatalf("more subdomains should not improve convergence: %v", iters)
	}
	t.Logf("iterations by subdomains 1/4/16: %v", iters)
}

// Parallel subdomain application matches sequential application.
func TestSubdomainsParallelMatchesSeq(t *testing.T) {
	a := testMatrix(t, 5)
	rng := rand.New(rand.NewSource(6))
	r := make([]float64, a.N*4)
	for i := range r {
		r[i] = rng.NormFloat64()
	}
	seq, err := New(a, nil, Options{Subdomains: 6})
	if err != nil {
		t.Fatal(err)
	}
	if err := seq.Factorize(a); err != nil {
		t.Fatal(err)
	}
	want := make([]float64, len(r))
	seq.Apply(r, want)

	pool := par.NewPool(3)
	defer pool.Close()
	pp, err := New(a, pool, Options{Subdomains: 6})
	if err != nil {
		t.Fatal(err)
	}
	if err := pp.Factorize(a); err != nil {
		t.Fatal(err)
	}
	got := make([]float64, len(r))
	pp.Apply(r, got)
	if d := maxAbsDiff(got, want); d != 0 {
		t.Fatalf("parallel subdomains differ by %v", d)
	}
}

func TestParallelismMetric(t *testing.T) {
	a := testMatrix(t, 7)
	m0, _ := New(a, nil, Options{FillLevel: 0})
	m1, _ := New(a, nil, Options{FillLevel: 1})
	if m1.Parallelism() >= m0.Parallelism() {
		t.Fatalf("fill should reduce parallelism: ILU0=%.1f ILU1=%.1f",
			m0.Parallelism(), m1.Parallelism())
	}
	if m1.NNZBlocks() <= m0.NNZBlocks() {
		t.Fatal("fill should add nonzeros")
	}
	msub, _ := New(a, nil, Options{Subdomains: 8, FillLevel: 0})
	if msub.Parallelism() <= m0.Parallelism() {
		t.Fatalf("subdomains should multiply parallelism: %v vs %v",
			msub.Parallelism(), m0.Parallelism())
	}
	if msub.NNZBlocks() >= m0.NNZBlocks() {
		t.Fatal("subdomains drop coupling blocks")
	}
}

func TestOptionsValidation(t *testing.T) {
	a := testMatrix(t, 8)
	if _, err := New(a, nil, Options{FillLevel: -1}); err == nil {
		t.Fatal("negative fill accepted")
	}
	if _, err := New(a, nil, Options{Sched: SchedP2P}); err == nil {
		t.Fatal("p2p without pool accepted")
	}
	if _, err := New(a, nil, Options{Subdomains: a.N + 1}); err == nil {
		t.Fatal("too many subdomains accepted")
	}
	if SchedSequential.String() == "" || SchedLevel.String() == "" ||
		SchedP2P.String() == "" || Scheduling(9).String() == "" {
		t.Fatal("scheduling names")
	}
}
