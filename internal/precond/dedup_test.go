package precond

import (
	"fmt"
	"testing"

	"fun3d/internal/par"
	"fun3d/internal/sparse"
)

// With dedup enabled the preconditioner must be bit-identical to the dense
// one: same factor values after Factorize, same vector after Apply, for
// every scheduling strategy and for the multi-subdomain configuration.
func TestDedupPreconditionerIdentical(t *testing.T) {
	a := testMatrix(t, 31)
	n := a.N * sparse.B
	r := make([]float64, n)
	for i := range r {
		r[i] = float64(i%17) - 8
	}
	pool := par.NewPool(4)
	defer pool.Close()

	for _, opt := range []Options{
		{},
		{Sched: SchedLevel},
		{Sched: SchedP2P},
		{FillLevel: 1, Sched: SchedLevel},
		{Subdomains: 5},
	} {
		t.Run(fmt.Sprintf("sub%d-ilu%d-%v", opt.Subdomains, opt.FillLevel, opt.Sched), func(t *testing.T) {
			var p *par.Pool
			if opt.Sched != SchedSequential || opt.Subdomains > 1 {
				p = pool
			}
			dense, err := New(a, p, opt)
			if err != nil {
				t.Fatal(err)
			}
			optD := opt
			optD.Dedup = true
			dd, err := New(a, p, optD)
			if err != nil {
				t.Fatal(err)
			}
			if err := dense.Factorize(a); err != nil {
				t.Fatal(err)
			}
			if err := dd.Factorize(a); err != nil {
				t.Fatal(err)
			}
			zDense := make([]float64, n)
			zDD := make([]float64, n)
			dense.Apply(r, zDense)
			dd.Apply(r, zDD)
			if diff := maxAbsDiff(zDD, zDense); diff != 0 {
				t.Fatalf("dedup Apply differs from dense by %v", diff)
			}
			st := dd.DedupStats()
			if st.SrcBlocks == 0 || st.SrcUnique > st.SrcBlocks {
				t.Fatalf("bad dedup stats: %+v", st)
			}
			stDense := dense.DedupStats()
			if stDense.SrcRatio() != 1 || stDense.FacRatio() != 1 {
				t.Fatalf("dense stats should report ratio 1, got %+v", stDense)
			}
		})
	}
}

// FactorBytes/SolveBytes must be computed from the actual stores: the
// deduplicated estimates are strictly below the dense ones exactly when
// the stores hold repeated blocks, and equal-structure preconditioners
// agree on the dense formula.
func TestBytesEstimatesFollowStores(t *testing.T) {
	a := testMatrix(t, 33)
	// Stamp repeats into the source so the deduplicated store is smaller.
	stamp := make([]float64, sparse.BB)
	copy(stamp, a.Block(1))
	for i := 0; i < a.N; i += 2 {
		for k := a.Ptr[i]; k < a.Ptr[i+1]; k++ {
			if k != a.Diag[i] {
				copy(a.Block(k), stamp)
			}
		}
	}

	dense, err := New(a, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	dd, err := New(a, nil, Options{Dedup: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := dense.Factorize(a); err != nil {
		t.Fatal(err)
	}
	if err := dd.Factorize(a); err != nil {
		t.Fatal(err)
	}
	if dd.FactorBytes() >= dense.FactorBytes() {
		t.Fatalf("dedup FactorBytes %d not below dense %d despite repeated source blocks",
			dd.FactorBytes(), dense.FactorBytes())
	}
	// The factor store's dedup view drives SolveBytes; with a nearly
	// repeat-free factor the deduped solve estimate may exceed dense (the
	// slot index is overhead), but it must match the store exactly.
	st := dd.DedupStats()
	// dd.StoreBytes (unique blocks + slot index) + per-apply slot reads +
	// the three solve vectors.
	wantSolve := int64(st.FacUnique)*sparse.BB*8 + int64(st.FacBlocks)*4 +
		int64(st.FacBlocks)*4 + 3*int64(dd.Rows())*sparse.B*8
	if got := dd.SolveBytes(); got != wantSolve {
		t.Fatalf("SolveBytes %d, want %d from store stats %+v", got, wantSolve, st)
	}
	wantDense := int64(dense.NNZBlocks())*(sparse.BB*8+4) + 3*int64(dense.Rows())*sparse.B*8
	if got := dense.SolveBytes(); got != wantDense {
		t.Fatalf("dense SolveBytes %d, want %d", got, wantDense)
	}
}

// The zero value of Options.FillLevel is ILU(0): no fill beyond the
// Jacobian pattern. (The paper's ILU(1) default is applied by callers —
// core.BaselineConfig — not by this package.)
func TestFillLevelZeroValueIsILU0(t *testing.T) {
	a := testMatrix(t, 35)
	m, err := New(a, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if m.NNZBlocks() != a.NNZBlocks() {
		t.Fatalf("Options zero value produced fill: factor %d blocks vs Jacobian %d",
			m.NNZBlocks(), a.NNZBlocks())
	}
	m1, err := New(a, nil, Options{FillLevel: 1})
	if err != nil {
		t.Fatal(err)
	}
	if m1.NNZBlocks() <= a.NNZBlocks() {
		t.Fatal("ILU(1) produced no fill on the wing adjacency")
	}
}
