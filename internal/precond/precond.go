// Package precond implements the additive-Schwarz preconditioner of the
// NKS solver: the global Jacobian's rows are divided into subdomains; each
// subdomain solves approximately with its own block-ILU factorization of
// the Jacobian restricted to the subdomain (zero overlap — block Jacobi —
// matching the paper's per-rank ILU). With one subdomain this degenerates
// to a global ILU whose factorization/solve can be threaded with level
// scheduling or P2P sparsification — exactly the paper's single-node
// configuration.
package precond

import (
	"fmt"

	"fun3d/internal/par"
	"fun3d/internal/sparse"
)

// Scheduling selects how the recurrences are parallelized.
type Scheduling int

const (
	// SchedSequential runs factorization and solves on one thread.
	SchedSequential Scheduling = iota
	// SchedLevel uses barrier-synchronized level scheduling.
	SchedLevel
	// SchedP2P uses sparsified point-to-point synchronization.
	SchedP2P
)

func (s Scheduling) String() string {
	switch s {
	case SchedSequential:
		return "sequential"
	case SchedLevel:
		return "level"
	case SchedP2P:
		return "p2p"
	}
	return fmt.Sprintf("Scheduling(%d)", int(s))
}

// Options configures the preconditioner.
type Options struct {
	// Subdomains is the number of Schwarz blocks (default 1).
	Subdomains int
	// FillLevel is the ILU(k) fill level; the zero value is ILU(0). The
	// paper's default configuration, ILU(1), is selected by the callers
	// that model it (core.BaselineConfig / cmd/fun3d's -fill default),
	// not here.
	FillLevel int
	// Sched is the recurrence parallelization (within subdomains).
	Sched Scheduling
	// Dedup content-deduplicates the factor and source value stores after
	// each factorization: repeated 4x4 blocks are stored once and the
	// triangular solves read them through a per-slot index, batching runs
	// of slots that share a block (sparse.DedupBSR). Bit-identical results
	// to the dense stores; FactorBytes/SolveBytes account the deduped
	// traffic.
	Dedup bool
}

// ASM is the additive-Schwarz/block-Jacobi ILU preconditioner. Build once
// per Jacobian pattern with New; refresh values with Factorize; apply with
// Apply.
type ASM struct {
	opt  Options
	pool *par.Pool
	n    int // block rows of the global matrix
	nnzA int // block entries of the global Jacobian pattern

	// One subdomain: global factor with optional parallel schedules.
	global *sparse.Factor
	levels *sparse.LevelSchedule
	p2p    *sparse.P2PSchedule

	// Multiple subdomains: per-subdomain row range and local factor.
	start []int32 // len Subdomains+1
	sub   []*subdomain
}

type subdomain struct {
	lo, hi  int32
	local   *sparse.BSR // local matrix scratch (pattern fixed)
	factor  *sparse.Factor
	rOff    []float64 // local rhs scratch
	zOff    []float64 // local solution scratch
	slotMap []int32   // global slot -> local slot (-1 for dropped couplings)
}

// New builds the preconditioner structure for the Jacobian pattern a.
// The pool is used for parallel scheduling (and parallel subdomain solves);
// it may be nil for SchedSequential with 1 subdomain.
func New(a *sparse.BSR, pool *par.Pool, opt Options) (*ASM, error) {
	if opt.Subdomains <= 0 {
		opt.Subdomains = 1
	}
	if opt.FillLevel < 0 {
		return nil, fmt.Errorf("precond: negative fill level")
	}
	if opt.Sched != SchedSequential && pool == nil {
		return nil, fmt.Errorf("precond: %v scheduling requires a pool", opt.Sched)
	}
	asm := &ASM{opt: opt, pool: pool, n: a.N, nnzA: a.NNZBlocks()}
	if opt.Subdomains == 1 {
		pat, err := sparse.SymbolicILU(a, opt.FillLevel)
		if err != nil {
			return nil, err
		}
		asm.global, err = sparse.NewFactorPattern(pat)
		if err != nil {
			return nil, err
		}
		asm.global.EnableDedup(opt.Dedup)
		switch opt.Sched {
		case SchedLevel:
			asm.levels = sparse.NewLevelSchedule(asm.global.M)
		case SchedP2P:
			asm.p2p = sparse.NewP2PSchedule(asm.global.M, pool.Size())
		}
		return asm, nil
	}

	// Multi-subdomain: contiguous row blocks (callers order rows so that
	// contiguous blocks are good subdomains, e.g. via RCM or partitioner).
	if opt.Subdomains > a.N {
		return nil, fmt.Errorf("precond: %d subdomains > %d rows", opt.Subdomains, a.N)
	}
	asm.start = make([]int32, opt.Subdomains+1)
	for s := 0; s <= opt.Subdomains; s++ {
		lo, _ := par.Chunk(a.N, opt.Subdomains, min(s, opt.Subdomains-1))
		if s == opt.Subdomains {
			lo = a.N
		}
		asm.start[s] = int32(lo)
	}
	for s := 0; s < opt.Subdomains; s++ {
		lo, hi := asm.start[s], asm.start[s+1]
		sd := &subdomain{lo: lo, hi: hi}
		nloc := int(hi - lo)
		// Local pattern: global entries with both endpoints inside.
		rows := make([][]int32, nloc)
		sd.slotMap = make([]int32, a.NNZBlocks())
		for i := range sd.slotMap {
			sd.slotMap[i] = -1
		}
		for i := lo; i < hi; i++ {
			for k := a.Ptr[i]; k < a.Ptr[i+1]; k++ {
				j := a.Col[k]
				if j >= lo && j < hi {
					rows[i-lo] = append(rows[i-lo], j-lo)
				}
			}
		}
		local, err := sparse.NewBSRFromPattern(rows)
		if err != nil {
			return nil, fmt.Errorf("precond: subdomain %d: %w", s, err)
		}
		// slot map for fast value refresh
		for i := lo; i < hi; i++ {
			for k := a.Ptr[i]; k < a.Ptr[i+1]; k++ {
				j := a.Col[k]
				if j >= lo && j < hi {
					sd.slotMap[k] = local.BlockAt(i-lo, j-lo)
				}
			}
		}
		sd.local = local
		pat, err := sparse.SymbolicILU(local, opt.FillLevel)
		if err != nil {
			return nil, err
		}
		sd.factor, err = sparse.NewFactorPattern(pat)
		if err != nil {
			return nil, err
		}
		sd.factor.EnableDedup(opt.Dedup)
		asm.sub = append(asm.sub, sd)
	}
	return asm, nil
}

// Factorize refreshes the factorization from the current Jacobian values.
// a must have the same pattern as passed to New.
func (asm *ASM) Factorize(a *sparse.BSR) error {
	if asm.global != nil {
		switch asm.opt.Sched {
		case SchedLevel:
			return asm.global.FactorizeILULevel(asm.pool, asm.levels, a)
		case SchedP2P:
			return asm.global.FactorizeILUP2P(asm.pool, asm.p2p, a)
		default:
			return asm.global.FactorizeILU(a)
		}
	}
	// Copy values into local matrices, then factor each subdomain.
	errs := make([]error, len(asm.sub))
	work := func(s int) {
		sd := asm.sub[s]
		sd.local.Zero()
		for i := sd.lo; i < sd.hi; i++ {
			for k := a.Ptr[i]; k < a.Ptr[i+1]; k++ {
				if ls := sd.slotMap[k]; ls >= 0 {
					copy(sd.local.Block(ls), a.Block(k))
				}
			}
		}
		errs[s] = sd.factor.FactorizeILU(sd.local)
	}
	if asm.pool == nil {
		for s := range asm.sub {
			work(s)
		}
	} else {
		asm.pool.ParallelFor(len(asm.sub), func(_, lo, hi int) {
			for s := lo; s < hi; s++ {
				work(s)
			}
		})
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Apply computes z = M^{-1} r.
func (asm *ASM) Apply(r, z []float64) {
	if asm.global != nil {
		switch asm.opt.Sched {
		case SchedLevel:
			asm.global.SolveLevel(asm.pool, asm.levels, r, z)
		case SchedP2P:
			asm.global.SolveP2P(asm.pool, asm.p2p, r, z)
		default:
			asm.global.Solve(r, z)
		}
		return
	}
	const b4 = sparse.B
	work := func(s int) {
		sd := asm.sub[s]
		lo, hi := int(sd.lo)*b4, int(sd.hi)*b4
		sd.factor.Solve(r[lo:hi], z[lo:hi])
	}
	if asm.pool == nil {
		for s := range asm.sub {
			work(s)
		}
		return
	}
	asm.pool.ParallelFor(len(asm.sub), func(_, lo, hi int) {
		for s := lo; s < hi; s++ {
			work(s)
		}
	})
}

// Parallelism reports the DAG parallelism of the (global) factor pattern;
// for multi-subdomain configurations it returns the subdomain count times
// the mean subdomain parallelism (independent subdomains multiply).
func (asm *ASM) Parallelism() float64 {
	if asm.global != nil {
		return sparse.DAGParallelism(asm.global.M)
	}
	s := 0.0
	for _, sd := range asm.sub {
		s += sparse.DAGParallelism(sd.factor.M)
	}
	return s
}

// NNZBlocks returns the factor's stored block count (fill included).
func (asm *ASM) NNZBlocks() int {
	if asm.global != nil {
		return asm.global.M.NNZBlocks()
	}
	n := 0
	for _, sd := range asm.sub {
		n += sd.factor.M.NNZBlocks()
	}
	return n
}

// Rows returns the global block-row count (the ILU row-rate denominator).
func (asm *ASM) Rows() int { return asm.n }

// eachFactor visits every factor with the block count of its source store
// (the Jacobian entries streamed into it by Factorize).
func (asm *ASM) eachFactor(visit func(f *sparse.Factor, srcBlocks int)) {
	if asm.global != nil {
		visit(asm.global, asm.nnzA)
		return
	}
	for _, sd := range asm.sub {
		visit(sd.factor, sd.local.NNZBlocks())
	}
}

// FactorBytes models the memory traffic of one Factorize, derived from the
// stores the factorization actually streams: the source Jacobian blocks
// with their column indices (copyValues), then every factor block read and
// written during elimination. In dedup mode the source read goes through
// the deduplicated store — unique blocks plus a 4-byte slot index per
// entry — which is exactly what the prof ILU counter books, so estimate
// and booking cannot drift. Before the first dedup factorization (no view
// built yet) the dense model applies.
func (asm *ASM) FactorBytes() int64 {
	var total int64
	asm.eachFactor(func(f *sparse.Factor, srcBlocks int) {
		if src := f.SourceDedup(); src != nil {
			total += src.StoreBytes() + int64(srcBlocks)*4
		} else {
			total += int64(srcBlocks) * (sparse.BB*8 + 4)
		}
		total += 2 * int64(f.M.NNZBlocks()) * sparse.BB * 8
	})
	return total
}

// SolveBytes models one Apply (the forward/backward TRSV pair): every
// factor block read once with its column index, plus ~3 streams over the
// rhs/solution vectors — the formula behind the paper's Fig 7b bandwidth
// figure. In dedup mode the block read comes from the deduplicated store
// (unique blocks + per-slot index) the solve actually walks.
func (asm *ASM) SolveBytes() int64 {
	var total int64
	asm.eachFactor(func(f *sparse.Factor, _ int) {
		if dd := f.Dedup(); dd != nil {
			total += dd.StoreBytes() + int64(f.M.NNZBlocks())*4
		} else {
			total += int64(f.M.NNZBlocks()) * (sparse.BB*8 + 4)
		}
	})
	return total + 3*int64(asm.n)*sparse.B*8
}

// DedupStats reports the deduplicated store sizes after the most recent
// Factorize. With dedup off (or before any factorization) the stores are
// dense: unique == total.
type DedupStats struct {
	SrcBlocks, SrcUnique int // source Jacobian store
	FacBlocks, FacUnique int // factor store (fill included)
}

// SrcRatio returns unique/total for the source Jacobian store.
func (s DedupStats) SrcRatio() float64 {
	if s.SrcBlocks == 0 {
		return 1
	}
	return float64(s.SrcUnique) / float64(s.SrcBlocks)
}

// FacRatio returns unique/total for the factor store.
func (s DedupStats) FacRatio() float64 {
	if s.FacBlocks == 0 {
		return 1
	}
	return float64(s.FacUnique) / float64(s.FacBlocks)
}

// DedupStats snapshots the store sizes (see type DedupStats).
func (asm *ASM) DedupStats() DedupStats {
	var st DedupStats
	asm.eachFactor(func(f *sparse.Factor, srcBlocks int) {
		st.SrcBlocks += srcBlocks
		if src := f.SourceDedup(); src != nil {
			st.SrcUnique += src.NumUnique()
		} else {
			st.SrcUnique += srcBlocks
		}
		nb := f.M.NNZBlocks()
		st.FacBlocks += nb
		if dd := f.Dedup(); dd != nil {
			st.FacUnique += dd.NumUnique()
		} else {
			st.FacUnique += nb
		}
	})
	return st
}
