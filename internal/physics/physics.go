// Package physics implements the incompressible Euler equations in
// artificial compressibility form, the paper's flow model (§II.A.2):
//
//	state  q = (p, u, v, w)
//	flux   f·n̂ = (βΘ, uΘ + n̂x p, vΘ + n̂y p, wΘ + n̂z p),  Θ = n̂·(u,v,w)
//
// with a Roe-type flux-difference-splitting numerical flux. The upwind
// dissipation |A|(qR−qL) uses the exact matrix absolute value computed as
// the quadratic interpolation polynomial of |λ| on the spectrum
// {Θ, Θ+c, Θ−c}, c = sqrt(Θ²+β) — exact because the artificial
// compressibility Jacobian is diagonalizable with those three distinct
// eigenvalues (Θ has a two-dimensional eigenspace). This avoids
// hand-derived eigenvector matrices while keeping the scheme genuinely Roe
// (the paper's "solving a 3×3 eigen-system on each face" in incompressible
// 3-D corresponds to this 4×4 system's three distinct eigenvalues).
package physics

import (
	"math"

	"fun3d/internal/geom"
)

// N is the number of unknowns per vertex.
const N = 4

// State is one vertex state (p, u, v, w).
type State [N]float64

// Params holds the model constants.
type Params struct {
	Beta float64 // artificial compressibility parameter (typically 1..10)
}

// DefaultParams returns the conventional β = 5 setting.
func DefaultParams() Params { return Params{Beta: 5} }

// FreeStream returns the freestream state at angle of attack alpha (deg)
// and sideslip 0: unit velocity in the x–z plane, zero gauge pressure.
func FreeStream(alphaDeg float64) State {
	a := alphaDeg * math.Pi / 180
	return State{0, math.Cos(a), 0, math.Sin(a)}
}

// PhysFlux returns the physical (inviscid) flux through a dual face with
// area vector n (not normalized — magnitude carries the face area).
func PhysFlux(q State, n geom.Vec3, beta float64) State {
	theta := n.X*q[1] + n.Y*q[2] + n.Z*q[3] // area-scaled normal velocity
	return State{
		beta * theta,
		q[1]*theta + n.X*q[0],
		q[2]*theta + n.Y*q[0],
		q[3]*theta + n.Z*q[0],
	}
}

// Jacobian fills a (row-major 4x4) with dF/dq for the area-scaled flux
// through n.
func Jacobian(q State, n geom.Vec3, beta float64, a *[16]float64) {
	theta := n.X*q[1] + n.Y*q[2] + n.Z*q[3]
	u, v, w := q[1], q[2], q[3]
	a[0], a[1], a[2], a[3] = 0, beta*n.X, beta*n.Y, beta*n.Z
	a[4], a[5], a[6], a[7] = n.X, theta+u*n.X, u*n.Y, u*n.Z
	a[8], a[9], a[10], a[11] = n.Y, v*n.X, theta+v*n.Y, v*n.Z
	a[12], a[13], a[14], a[15] = n.Z, w*n.X, w*n.Y, theta+w*n.Z
}

// AbsJacobian fills m with |A| for the area-scaled flux Jacobian at state
// q: m = a0 I + a1 A + a2 A², where (a0,a1,a2) interpolate |λ| on the
// spectrum. The area scaling rides along exactly (all eigenvalues scale by
// the face area).
func AbsJacobian(q State, n geom.Vec3, beta float64, m *[16]float64) {
	area := n.Norm()
	if area == 0 {
		for i := range m {
			m[i] = 0
		}
		return
	}
	nh := n.Scale(1 / area)
	theta := nh.X*q[1] + nh.Y*q[2] + nh.Z*q[3]
	c := math.Sqrt(theta*theta + beta)
	// Eigenvalues of the unit-normal Jacobian.
	l1, l2, l3 := theta, theta+c, theta-c
	// Quadratic Lagrange interpolation of |λ| at l1,l2,l3.
	f1, f2, f3 := math.Abs(l1), math.Abs(l2), math.Abs(l3)
	d1 := (l1 - l2) * (l1 - l3)
	d2 := (l2 - l1) * (l2 - l3)
	d3 := (l3 - l1) * (l3 - l2)
	// P(λ) = sum f_i * prod (λ - l_j)/(l_i - l_j); expand to a0+a1 λ+a2 λ².
	a2 := f1/d1 + f2/d2 + f3/d3
	a1 := -(f1*(l2+l3)/d1 + f2*(l1+l3)/d2 + f3*(l1+l2)/d3)
	a0 := f1*l2*l3/d1 + f2*l1*l3/d2 + f3*l1*l2/d3

	var A [16]float64
	Jacobian(q, nh, beta, &A)
	var A2 [16]float64
	mul4(&A, &A, &A2)
	for i := 0; i < 16; i++ {
		m[i] = (a1*A[i] + a2*A2[i]) * area
	}
	m[0] += a0 * area
	m[5] += a0 * area
	m[10] += a0 * area
	m[15] += a0 * area
}

func mul4(a, b, c *[16]float64) {
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			s := 0.0
			for k := 0; k < 4; k++ {
				s += a[i*4+k] * b[k*4+j]
			}
			c[i*4+j] = s
		}
	}
}

// RoeFlux returns the Roe flux-difference-splitting numerical flux through
// area vector n (pointing left → right):
//
//	F = ½(F(qL) + F(qR)) − ½ |A(q̄)| (qR − qL)
//
// with q̄ the arithmetic state average (the standard choice for artificial
// compressibility).
func RoeFlux(qL, qR State, n geom.Vec3, beta float64) State {
	fl := PhysFlux(qL, n, beta)
	fr := PhysFlux(qR, n, beta)
	var qbar State
	for i := 0; i < N; i++ {
		qbar[i] = 0.5 * (qL[i] + qR[i])
	}
	var absA [16]float64
	AbsJacobian(qbar, n, beta, &absA)
	var out State
	for i := 0; i < N; i++ {
		d := 0.0
		for j := 0; j < N; j++ {
			d += absA[i*4+j] * (qR[j] - qL[j])
		}
		out[i] = 0.5*(fl[i]+fr[i]) - 0.5*d
	}
	return out
}

// RusanovFlux is the local Lax–Friedrichs flux: cheaper, more diffusive.
// Used by the baseline configuration and as a cross-check.
func RusanovFlux(qL, qR State, n geom.Vec3, beta float64) State {
	area := n.Norm()
	fl := PhysFlux(qL, n, beta)
	fr := PhysFlux(qR, n, beta)
	var qbar State
	for i := 0; i < N; i++ {
		qbar[i] = 0.5 * (qL[i] + qR[i])
	}
	lam := SpectralRadius(qbar, n, beta) * area
	var out State
	for i := 0; i < N; i++ {
		out[i] = 0.5*(fl[i]+fr[i]) - 0.5*lam*(qR[i]-qL[i])
	}
	return out
}

// SpectralRadius returns |Θ| + c for the unit normal of n.
func SpectralRadius(q State, n geom.Vec3, beta float64) float64 {
	area := n.Norm()
	if area == 0 {
		return math.Sqrt(beta)
	}
	nh := n.Scale(1 / area)
	theta := nh.X*q[1] + nh.Y*q[2] + nh.Z*q[3]
	return math.Abs(theta) + math.Sqrt(theta*theta+beta)
}

// RoeFluxJacobians fills dL and dR with the frozen-dissipation linearization
// of RoeFlux:
//
//	dF/dqL ≈ ½ A(qL) + ½ |A(q̄)|,   dF/dqR ≈ ½ A(qR) − ½ |A(q̄)|
//
// This is the standard first-order approximate linearization used to build
// the preconditioning Jacobian ("derived from a lower-order, sparser and
// more diffusive discretization", paper §II.B).
func RoeFluxJacobians(qL, qR State, n geom.Vec3, beta float64, dL, dR *[16]float64) {
	var qbar State
	for i := 0; i < N; i++ {
		qbar[i] = 0.5 * (qL[i] + qR[i])
	}
	var absA [16]float64
	AbsJacobian(qbar, n, beta, &absA)
	Jacobian(qL, n, beta, dL)
	Jacobian(qR, n, beta, dR)
	for i := 0; i < 16; i++ {
		dL[i] = 0.5*dL[i] + 0.5*absA[i]
		dR[i] = 0.5*dR[i] - 0.5*absA[i]
	}
}

// WallFlux returns the slip-wall boundary flux through outward area vector
// n: only the pressure terms survive (Θ = 0 imposed weakly).
func WallFlux(q State, n geom.Vec3) State {
	return State{0, n.X * q[0], n.Y * q[0], n.Z * q[0]}
}

// WallFluxJacobian fills a with dWallFlux/dq.
func WallFluxJacobian(n geom.Vec3, a *[16]float64) {
	for i := range a {
		a[i] = 0
	}
	a[4] = n.X
	a[8] = n.Y
	a[12] = n.Z
}

// FarfieldFlux returns the characteristic farfield flux through outward
// area vector n: a Roe flux between the interior state and freestream.
func FarfieldFlux(q, qInf State, n geom.Vec3, beta float64) State {
	return RoeFlux(q, qInf, n, beta)
}

// FarfieldFluxJacobian fills a with the interior-state linearization of
// FarfieldFlux (freestream is constant).
func FarfieldFluxJacobian(q, qInf State, n geom.Vec3, beta float64, a *[16]float64) {
	var dR [16]float64
	RoeFluxJacobians(q, qInf, n, beta, a, &dR)
}
