package physics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"fun3d/internal/geom"
)

const beta = 5.0

func randState(rng *rand.Rand) State {
	return State{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
}

func randNormal(rng *rand.Rand) geom.Vec3 {
	for {
		n := geom.Vec3{X: rng.NormFloat64(), Y: rng.NormFloat64(), Z: rng.NormFloat64()}
		if n.Norm() > 0.1 {
			return n
		}
	}
}

// Consistency: F_num(q, q, n) == F_phys(q, n).
func TestRoeConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		q := randState(rng)
		n := randNormal(rng)
		fn := RoeFlux(q, q, n, beta)
		fp := PhysFlux(q, n, beta)
		for i := 0; i < N; i++ {
			if math.Abs(fn[i]-fp[i]) > 1e-12*(1+math.Abs(fp[i])) {
				t.Fatalf("trial %d comp %d: %v vs %v", trial, i, fn[i], fp[i])
			}
		}
	}
}

// Conservation: F(qL,qR,n) == -F(qR,qL,-n).
func TestRoeConservation(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 200; trial++ {
		qL, qR := randState(rng), randState(rng)
		n := randNormal(rng)
		f1 := RoeFlux(qL, qR, n, beta)
		f2 := RoeFlux(qR, qL, n.Scale(-1), beta)
		for i := 0; i < N; i++ {
			if math.Abs(f1[i]+f2[i]) > 1e-11*(1+math.Abs(f1[i])) {
				t.Fatalf("trial %d comp %d: %v vs %v", trial, i, f1[i], f2[i])
			}
		}
	}
}

// Jacobian matches finite differences of PhysFlux.
func TestJacobianFD(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 100; trial++ {
		q := randState(rng)
		n := randNormal(rng)
		var a [16]float64
		Jacobian(q, n, beta, &a)
		const h = 1e-6
		for j := 0; j < N; j++ {
			qp, qm := q, q
			qp[j] += h
			qm[j] -= h
			fp := PhysFlux(qp, n, beta)
			fm := PhysFlux(qm, n, beta)
			for i := 0; i < N; i++ {
				fd := (fp[i] - fm[i]) / (2 * h)
				if math.Abs(a[i*4+j]-fd) > 1e-5*(1+math.Abs(fd)) {
					t.Fatalf("dF%d/dq%d = %v, FD %v", i, j, a[i*4+j], fd)
				}
			}
		}
	}
}

// |A|² == A² for the diagonalizable artificial-compressibility Jacobian —
// an exact algebraic identity that validates the polynomial construction.
func TestAbsJacobianSquareIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 200; trial++ {
		q := randState(rng)
		n := randNormal(rng)
		var a, absA [16]float64
		Jacobian(q, n, beta, &a)
		AbsJacobian(q, n, beta, &absA)
		var a2, abs2 [16]float64
		mul4(&a, &a, &a2)
		mul4(&absA, &absA, &abs2)
		scale := 0.0
		for i := range a2 {
			if s := math.Abs(a2[i]); s > scale {
				scale = s
			}
		}
		for i := range a2 {
			if math.Abs(a2[i]-abs2[i]) > 1e-9*(scale+1) {
				t.Fatalf("trial %d: |A|^2 != A^2 at %d: %v vs %v", trial, i, abs2[i], a2[i])
			}
		}
	}
}

// |A| is positive semidefinite in the A-eigenbasis: check that the
// dissipation never anti-diffuses along the flux direction, via the scalar
// test vᵀ|A|v >= 0 for symmetrized probes... |A| is not symmetric, so test
// instead that |A| has nonnegative eigenvalue sum (trace >= 0).
func TestAbsJacobianTraceNonnegative(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 200; trial++ {
		q := randState(rng)
		n := randNormal(rng)
		var absA [16]float64
		AbsJacobian(q, n, beta, &absA)
		tr := absA[0] + absA[5] + absA[10] + absA[15]
		if tr < -1e-12 {
			t.Fatalf("trace(|A|) = %v < 0", tr)
		}
	}
}

func TestAbsJacobianZeroArea(t *testing.T) {
	var m [16]float64
	m[3] = 7 // must be cleared
	AbsJacobian(State{1, 1, 0, 0}, geom.Vec3{}, beta, &m)
	for i, v := range m {
		if v != 0 {
			t.Fatalf("m[%d]=%v for zero area", i, v)
		}
	}
}

// Rusanov is at least as dissipative as Roe in the sense of the jump
// magnitude: check the scalar bound |λ_max| I dominates the interpolated
// |λ| polynomial on the spectrum (spot check via consistency + symmetry
// instead of matrix norms: Rusanov equals Roe for equal states).
func TestRusanovConsistencyAndConservation(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 100; trial++ {
		q := randState(rng)
		n := randNormal(rng)
		fn := RusanovFlux(q, q, n, beta)
		fp := PhysFlux(q, n, beta)
		for i := 0; i < N; i++ {
			if math.Abs(fn[i]-fp[i]) > 1e-12*(1+math.Abs(fp[i])) {
				t.Fatal("rusanov inconsistent")
			}
		}
		qR := randState(rng)
		f1 := RusanovFlux(q, qR, n, beta)
		f2 := RusanovFlux(qR, q, n.Scale(-1), beta)
		for i := 0; i < N; i++ {
			if math.Abs(f1[i]+f2[i]) > 1e-11*(1+math.Abs(f1[i])) {
				t.Fatal("rusanov not conservative")
			}
		}
	}
}

// The frozen-coefficient Roe Jacobians approximate finite differences of
// RoeFlux away from eigenvalue kinks: test at gentle states.
func TestRoeFluxJacobiansFD(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		qL := State{0.1 * rng.NormFloat64(), 1 + 0.1*rng.NormFloat64(), 0.1 * rng.NormFloat64(), 0.1 * rng.NormFloat64()}
		qR := State{0.1 * rng.NormFloat64(), 1 + 0.1*rng.NormFloat64(), 0.1 * rng.NormFloat64(), 0.1 * rng.NormFloat64()}
		n := randNormal(rng)
		var dL, dR [16]float64
		RoeFluxJacobians(qL, qR, n, beta, &dL, &dR)
		const h = 1e-5
		for j := 0; j < N; j++ {
			qp, qm := qL, qL
			qp[j] += h
			qm[j] -= h
			fp := RoeFlux(qp, qR, n, beta)
			fm := RoeFlux(qm, qR, n, beta)
			for i := 0; i < N; i++ {
				fd := (fp[i] - fm[i]) / (2 * h)
				// frozen |A| drops the dissipation derivative: allow slack
				if math.Abs(dL[i*4+j]-fd) > 0.25*(1+math.Abs(fd)) {
					t.Fatalf("dL(%d,%d)=%v fd=%v", i, j, dL[i*4+j], fd)
				}
			}
		}
	}
}

// Consistency of the approximate Jacobians: dL + dR == A(q̄) + O(jump) —
// exact when qL == qR.
func TestRoeFluxJacobiansSumEqualState(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 100; trial++ {
		q := randState(rng)
		n := randNormal(rng)
		var dL, dR, a [16]float64
		RoeFluxJacobians(q, q, n, beta, &dL, &dR)
		Jacobian(q, n, beta, &a)
		for i := range a {
			if math.Abs(dL[i]+dR[i]-a[i]) > 1e-10*(1+math.Abs(a[i])) {
				t.Fatalf("dL+dR != A at %d", i)
			}
		}
	}
}

func TestWallFlux(t *testing.T) {
	q := State{2.5, 9, 9, 9} // velocity must not matter
	n := geom.Vec3{X: 1, Y: 2, Z: -1}
	f := WallFlux(q, n)
	want := State{0, 2.5, 5.0, -2.5}
	if f != want {
		t.Fatalf("wall flux %v, want %v", f, want)
	}
	var a [16]float64
	WallFluxJacobian(n, &a)
	const h = 1e-6
	for j := 0; j < N; j++ {
		qp, qm := q, q
		qp[j] += h
		qm[j] -= h
		fp := WallFlux(qp, n)
		fm := WallFlux(qm, n)
		for i := 0; i < N; i++ {
			fd := (fp[i] - fm[i]) / (2 * h)
			if math.Abs(a[i*4+j]-fd) > 1e-6 {
				t.Fatalf("wall jac (%d,%d)", i, j)
			}
		}
	}
}

func TestFreeStream(t *testing.T) {
	q := FreeStream(0)
	if q != (State{0, 1, 0, 0}) {
		t.Fatalf("aoa 0: %v", q)
	}
	q = FreeStream(90)
	if math.Abs(q[1]) > 1e-15 || math.Abs(q[3]-1) > 1e-15 {
		t.Fatalf("aoa 90: %v", q)
	}
	// unit speed at any angle
	f := func(a float64) bool {
		if math.IsNaN(a) || math.IsInf(a, 0) {
			a = 1
		}
		a = math.Mod(a, 360)
		q := FreeStream(a)
		v := math.Sqrt(q[1]*q[1] + q[2]*q[2] + q[3]*q[3])
		return math.Abs(v-1) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSpectralRadius(t *testing.T) {
	q := State{0, 1, 0, 0}
	n := geom.Vec3{X: 2, Y: 0, Z: 0} // area 2
	got := SpectralRadius(q, n, beta)
	want := 1 + math.Sqrt(1+beta)
	if math.Abs(got-want) > 1e-14 {
		t.Fatalf("spectral radius %v want %v", got, want)
	}
	if SpectralRadius(q, geom.Vec3{}, beta) != math.Sqrt(beta) {
		t.Fatal("zero-area spectral radius")
	}
}

func TestFarfieldFluxFreestreamPassthrough(t *testing.T) {
	qInf := FreeStream(3)
	n := geom.Vec3{X: 0.3, Y: -0.2, Z: 0.9}
	f := FarfieldFlux(qInf, qInf, n, beta)
	fp := PhysFlux(qInf, n, beta)
	for i := 0; i < N; i++ {
		if math.Abs(f[i]-fp[i]) > 1e-12 {
			t.Fatal("farfield flux at freestream should be physical flux")
		}
	}
	var a [16]float64
	FarfieldFluxJacobian(qInf, qInf, n, beta, &a)
	// must be finite
	for _, v := range a {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatal("farfield jacobian not finite")
		}
	}
}

func BenchmarkRoeFlux(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	qL, qR := randState(rng), randState(rng)
	n := randNormal(rng)
	for i := 0; i < b.N; i++ {
		_ = RoeFlux(qL, qR, n, beta)
	}
}

func BenchmarkRoeFluxJacobians(b *testing.B) {
	rng := rand.New(rand.NewSource(10))
	qL, qR := randState(rng), randState(rng)
	n := randNormal(rng)
	var dL, dR [16]float64
	for i := 0; i < b.N; i++ {
		RoeFluxJacobians(qL, qR, n, beta, &dL, &dR)
	}
}

// Rotational invariance: rotating the normal and the velocity components
// by the same rotation R satisfies F(Rq, Rn) = R F(q, n) (pressure and
// mass components unchanged, momentum components rotated).
func TestRoeFluxRotationalInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(40))
	rotZ := func(th float64, v geom.Vec3) geom.Vec3 {
		c, s := math.Cos(th), math.Sin(th)
		return geom.Vec3{X: c*v.X - s*v.Y, Y: s*v.X + c*v.Y, Z: v.Z}
	}
	rotState := func(th float64, q State) State {
		v := rotZ(th, geom.Vec3{X: q[1], Y: q[2], Z: q[3]})
		return State{q[0], v.X, v.Y, v.Z}
	}
	for trial := 0; trial < 100; trial++ {
		qL, qR := randState(rng), randState(rng)
		n := randNormal(rng)
		th := rng.Float64() * 2 * math.Pi
		f := RoeFlux(qL, qR, n, beta)
		fRot := RoeFlux(rotState(th, qL), rotState(th, qR), rotZ(th, n), beta)
		want := rotState(th, f)
		for i := 0; i < N; i++ {
			if math.Abs(fRot[i]-want[i]) > 1e-10*(1+math.Abs(want[i])) {
				t.Fatalf("trial %d comp %d: %v vs %v", trial, i, fRot[i], want[i])
			}
		}
	}
}
