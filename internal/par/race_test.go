package par

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// These tests exist primarily for `go test -race`: they oversubscribe
// GOMAXPROCS so the scheduler interleaves pool workers, barrier
// participants, and flag waiters aggressively, surfacing any unsynchronized
// access in the primitives the threaded kernels are built on. They also
// assert functional correctness so they pull weight in non-race runs.

// TestPoolOversubscribedParallelFor hammers ParallelFor with far more
// workers than cores; chunk sums must tile the index space exactly every
// iteration.
func TestPoolOversubscribedParallelFor(t *testing.T) {
	nw := 4*runtime.GOMAXPROCS(0) + 3
	p := NewPool(nw)
	defer p.Close()
	iters := 40
	if testing.Short() {
		iters = 10
	}
	const n = 10007
	marks := make([]int32, n)
	for it := 0; it < iters; it++ {
		var total atomic.Int64
		p.ParallelFor(n, func(tid, lo, hi int) {
			for i := lo; i < hi; i++ {
				marks[i]++
			}
			total.Add(int64(hi - lo))
		})
		if total.Load() != n {
			t.Fatalf("iter %d: chunks covered %d of %d", it, total.Load(), n)
		}
	}
	for i, m := range marks {
		if int(m) != iters {
			t.Fatalf("index %d touched %d times, want %d", i, m, iters)
		}
	}
}

// TestPoolOversubscribedRun checks that Run hands every tid to exactly one
// worker per invocation under oversubscription.
func TestPoolOversubscribedRun(t *testing.T) {
	nw := 3*runtime.GOMAXPROCS(0) + 1
	p := NewPool(nw)
	defer p.Close()
	iters := 60
	if testing.Short() {
		iters = 15
	}
	seen := make([]int32, nw)
	for it := 0; it < iters; it++ {
		p.Run(func(tid int) {
			atomic.AddInt32(&seen[tid], 1)
		})
	}
	for tid, c := range seen {
		if int(c) != iters {
			t.Fatalf("tid %d ran %d times, want %d", tid, c, iters)
		}
	}
}

// TestBarrierOversubscribedLockstep runs more participants than cores
// through many barrier rounds; after each Wait, every participant must
// observe every other participant's round counter at (at least) the
// current round — the ordering guarantee level-scheduled solves rely on.
func TestBarrierOversubscribedLockstep(t *testing.T) {
	nw := 2*runtime.GOMAXPROCS(0) + 1
	if nw > 24 {
		nw = 24
	}
	rounds := 300
	if testing.Short() {
		rounds = 60
	}
	b := NewBarrier(nw)
	prog := make([]atomic.Int64, nw)
	var wg sync.WaitGroup
	fail := atomic.Bool{}
	for w := 0; w < nw; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			var sense uint32
			for r := 1; r <= rounds; r++ {
				prog[id].Store(int64(r))
				b.Wait(&sense)
				for other := 0; other < nw; other++ {
					if prog[other].Load() < int64(r) {
						fail.Store(true)
					}
				}
				b.Wait(&sense) // keep readers and next round's writers apart
			}
		}(w)
	}
	wg.Wait()
	if fail.Load() {
		t.Fatal("barrier released a participant before all arrived")
	}
}

// TestFlagPublishConsume stresses the point-to-point progress flags of the
// P2P triangular solve: one producer publishes monotone progress while
// many oversubscribed consumers wait on increasing thresholds; each
// consumer must never observe progress below its threshold after waking.
func TestFlagPublishConsume(t *testing.T) {
	nConsumers := 2*runtime.GOMAXPROCS(0) + 1
	steps := int64(2000)
	if testing.Short() {
		steps = 400
	}
	var f Flag
	var wg sync.WaitGroup
	fail := atomic.Bool{}
	for c := 0; c < nConsumers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for v := int64(c%7) + 1; v <= steps; v += int64(nConsumers) {
				f.WaitAtLeast(v)
				if f.Get() < v {
					fail.Store(true)
					return
				}
			}
		}(c)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for v := int64(1); v <= steps; v++ {
			f.Set(v)
			if v%64 == 0 {
				runtime.Gosched()
			}
		}
	}()
	wg.Wait()
	if fail.Load() {
		t.Fatal("WaitAtLeast returned before the flag reached the threshold")
	}
}

// TestPoolNestedKernelsRace mimics the hybrid-rank usage pattern: several
// independent pools (one per simulated rank) run ParallelFor concurrently
// from different goroutines, as mpisim does with one pool per rank
// goroutine.
func TestPoolNestedKernelsRace(t *testing.T) {
	ranks := 4
	perPool := runtime.GOMAXPROCS(0) + 1
	var wg sync.WaitGroup
	sums := make([]int64, ranks)
	for r := 0; r < ranks; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			p := NewPool(perPool)
			defer p.Close()
			local := make([]int64, perPool*8) // padded per-tid slots
			iters := 30
			if testing.Short() {
				iters = 8
			}
			for it := 0; it < iters; it++ {
				p.ParallelFor(5000, func(tid, lo, hi int) {
					for i := lo; i < hi; i++ {
						local[tid*8]++
					}
				})
			}
			for tid := 0; tid < perPool; tid++ {
				sums[r] += local[tid*8]
			}
		}(r)
	}
	wg.Wait()
	iters := int64(30)
	if testing.Short() {
		iters = 8
	}
	for r, s := range sums {
		if s != iters*5000 {
			t.Fatalf("rank %d pool processed %d elements, want %d", r, s, iters*5000)
		}
	}
}
