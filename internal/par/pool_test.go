package par

import (
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestChunkCoversRange(t *testing.T) {
	f := func(n16 uint16, nw8 uint8) bool {
		n := int(n16)
		nw := int(nw8)%16 + 1
		covered := 0
		prevHi := 0
		for tid := 0; tid < nw; tid++ {
			lo, hi := Chunk(n, nw, tid)
			if lo != prevHi || hi < lo {
				return false
			}
			covered += hi - lo
			prevHi = hi
		}
		return covered == n && prevHi == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestChunkBalance(t *testing.T) {
	n, nw := 1003, 7
	minSz, maxSz := n, 0
	for tid := 0; tid < nw; tid++ {
		lo, hi := Chunk(n, nw, tid)
		sz := hi - lo
		if sz < minSz {
			minSz = sz
		}
		if sz > maxSz {
			maxSz = sz
		}
	}
	if maxSz-minSz > 1 {
		t.Fatalf("chunk imbalance: min=%d max=%d", minSz, maxSz)
	}
}

func TestParallelForSum(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	const n = 100000
	data := make([]float64, n)
	for i := range data {
		data[i] = float64(i)
	}
	partial := make([]float64, p.Size())
	p.ParallelFor(n, func(tid, lo, hi int) {
		s := 0.0
		for i := lo; i < hi; i++ {
			s += data[i]
		}
		partial[tid] = s
	})
	total := 0.0
	for _, v := range partial {
		total += v
	}
	want := float64(n-1) * float64(n) / 2
	if total != want {
		t.Fatalf("sum = %v, want %v", total, want)
	}
}

func TestParallelForEmpty(t *testing.T) {
	p := NewPool(3)
	defer p.Close()
	called := atomic.Int32{}
	p.ParallelFor(0, func(tid, lo, hi int) { called.Add(1) })
	if called.Load() != 0 {
		t.Fatal("body called for empty range")
	}
	// n < workers: only some workers get non-empty chunks.
	p.ParallelFor(2, func(tid, lo, hi int) {
		if hi-lo != 1 {
			t.Errorf("tid %d got [%d,%d)", tid, lo, hi)
		}
		called.Add(1)
	})
	if called.Load() != 2 {
		t.Fatalf("called = %d, want 2", called.Load())
	}
}

func TestRunAllWorkersDistinct(t *testing.T) {
	p := NewPool(8)
	defer p.Close()
	seen := make([]atomic.Int32, 8)
	for iter := 0; iter < 100; iter++ {
		p.Run(func(tid int) { seen[tid].Add(1) })
	}
	for i := range seen {
		if seen[i].Load() != 100 {
			t.Fatalf("worker %d ran %d times, want 100", i, seen[i].Load())
		}
	}
}

func TestPoolCloseIdempotent(t *testing.T) {
	p := NewPool(2)
	p.Close()
	p.Close() // must not panic
}

func TestPoolDefaultSize(t *testing.T) {
	p := NewPool(0)
	defer p.Close()
	if p.Size() < 1 {
		t.Fatalf("default pool size %d", p.Size())
	}
}

func TestAtomicAddFloat64Concurrent(t *testing.T) {
	p := NewPool(8)
	defer p.Close()
	var cell uint64
	const perWorker = 10000
	p.Run(func(tid int) {
		for i := 0; i < perWorker; i++ {
			AtomicAddFloat64(&cell, 1.0)
		}
	})
	got := atomicFloat(&cell)
	if got != float64(8*perWorker) {
		t.Fatalf("got %v, want %v", got, 8*perWorker)
	}
}

func atomicFloat(addr *uint64) float64 {
	s := Float64Slice{bits: []uint64{*addr}}
	return s.Get(0)
}

func TestFloat64Slice(t *testing.T) {
	s := NewFloat64Slice(4)
	s.Set(2, 3.5)
	s.Add(2, 1.5)
	if s.Get(2) != 5.0 {
		t.Fatalf("got %v", s.Get(2))
	}
	dst := make([]float64, 4)
	s.CopyTo(dst)
	if dst[2] != 5.0 || dst[0] != 0 {
		t.Fatalf("copy %v", dst)
	}
	s.Zero()
	if s.Get(2) != 0 {
		t.Fatal("zero failed")
	}
	if s.Len() != 4 {
		t.Fatal("len")
	}
}

func TestBarrier(t *testing.T) {
	const nw = 6
	p := NewPool(nw)
	defer p.Close()
	b := NewBarrier(nw)
	const rounds = 200
	counts := make([]atomic.Int64, rounds)
	p.Run(func(tid int) {
		var sense uint32
		for r := 0; r < rounds; r++ {
			counts[r].Add(1)
			b.Wait(&sense)
			// After the barrier every participant must observe all arrivals.
			if c := counts[r].Load(); c != nw {
				t.Errorf("round %d: count %d after barrier", r, c)
			}
			b.Wait(&sense)
		}
	})
}

func TestFlagPointToPoint(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	var f Flag
	val := 0
	p.Run(func(tid int) {
		if tid == 0 {
			val = 42
			f.Set(1)
		} else {
			f.WaitAtLeast(1)
			if val != 42 {
				t.Error("flag did not order the write")
			}
		}
	})
	f.Reset()
	if f.Get() != 0 {
		t.Fatal("reset")
	}
}
