package par

import (
	"runtime"
	"sync/atomic"
)

// Barrier is a reusable sense-reversing spin barrier for a fixed number of
// participants. It is the synchronization primitive behind level-scheduled
// triangular solves, where per-level work is far too small for channel-based
// rendezvous. Participants must all call Wait the same number of times.
type Barrier struct {
	n      int32
	count  atomic.Int32
	sense  atomic.Uint32
	_      [40]byte // pad to keep hot words off shared cache lines with user data
	spins  int
	yields bool
}

// NewBarrier creates a barrier for n participants. n must be >= 1.
func NewBarrier(n int) *Barrier {
	return &Barrier{n: int32(n), spins: 64, yields: true}
}

// Wait blocks until all n participants have called Wait. Each participant
// keeps a local sense; the barrier flips a global sense when the last
// participant arrives.
func (b *Barrier) Wait(localSense *uint32) {
	*localSense ^= 1
	if b.count.Add(1) == b.n {
		b.count.Store(0)
		b.sense.Store(*localSense)
		return
	}
	spin := 0
	for b.sense.Load() != *localSense {
		spin++
		if b.yields && spin%b.spins == 0 {
			runtime.Gosched()
		}
	}
}

// Flag is a point-to-point completion flag: one writer publishes progress
// (a monotonically increasing counter), many readers spin until the counter
// reaches a threshold. This is the synchronization used by the P2P-sparsified
// triangular solve: "row j is done" is Set(j+1) on the owning thread's flag.
type Flag struct {
	v atomic.Int64
	_ [56]byte // own cache line
}

// Set publishes the new value. Values must be monotonically increasing.
func (f *Flag) Set(v int64) { f.v.Store(v) }

// Get returns the current value.
func (f *Flag) Get() int64 { return f.v.Load() }

// WaitAtLeast spins until the flag reaches at least v.
func (f *Flag) WaitAtLeast(v int64) {
	spin := 0
	for f.v.Load() < v {
		spin++
		if spin%64 == 0 {
			runtime.Gosched()
		}
	}
}

// Reset sets the flag back to zero (between solves; no concurrent readers).
func (f *Flag) Reset() { f.v.Store(0) }
