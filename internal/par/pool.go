// Package par provides the shared-memory parallel runtime used by every
// threaded kernel in this repository: a persistent worker pool with a
// fork-join ParallelFor, reusable barriers, and atomic float64 accumulation.
//
// The pool plays the role OpenMP plays in the paper: a fixed team of
// "threads" (goroutines pinned to the pool for its lifetime) that execute
// statically partitioned loop ranges. Creating goroutines per loop would
// swamp the fine-grained kernels (a TRSV level can be a few microseconds),
// so workers park on a channel between parallel regions.
package par

import (
	"fmt"
	"runtime"
	"sync"
)

// Pool is a fixed-size team of worker goroutines. The zero value is not
// usable; construct with NewPool. A Pool must be closed with Close when no
// longer needed, though leaking one only leaks parked goroutines.
type Pool struct {
	n       int
	work    []chan func(tid int)
	done    chan int
	closing bool
	mu      sync.Mutex

	// ParallelFor state: the trip count and body live in pool fields and a
	// single runner closure (created once in NewPool) is dispatched, so a
	// steady-state ParallelFor call allocates nothing. A per-call closure
	// here would heap-allocate on every invocation — measurable on the
	// fine-grained reduction kernels (vecop.Ops.Dot/MDot) that run several
	// times per GMRES iteration.
	forN    int
	forBody func(tid, lo, hi int)
	forRun  func(tid int)
}

// NewPool creates a pool with n workers. n <= 0 selects runtime.NumCPU().
func NewPool(n int) *Pool {
	if n <= 0 {
		n = runtime.NumCPU()
	}
	p := &Pool{
		n:    n,
		work: make([]chan func(tid int), n),
		done: make(chan int, n),
	}
	p.forRun = func(tid int) {
		lo, hi := Chunk(p.forN, p.n, tid)
		if lo < hi {
			p.forBody(tid, lo, hi)
		}
	}
	for i := 0; i < n; i++ {
		p.work[i] = make(chan func(tid int), 1)
		go p.worker(i)
	}
	return p
}

func (p *Pool) worker(tid int) {
	for f := range p.work[tid] {
		f(tid)
		p.done <- tid
	}
}

// Size returns the number of workers in the pool.
func (p *Pool) Size() int { return p.n }

// Close shuts the pool down. It must not be called concurrently with Run or
// ParallelFor. Close is idempotent.
func (p *Pool) Close() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closing {
		return
	}
	p.closing = true
	for i := range p.work {
		close(p.work[i])
	}
}

// Run executes f(tid) on every worker concurrently and waits for all of
// them. tid ranges over [0, Size()). Run is the primitive that ParallelFor
// and the kernel drivers build on. It must not be called reentrantly from
// inside a running region.
func (p *Pool) Run(f func(tid int)) {
	for i := 0; i < p.n; i++ {
		p.work[i] <- f
	}
	for i := 0; i < p.n; i++ {
		<-p.done
	}
}

// ParallelFor splits [0, n) into Size() near-equal contiguous chunks and
// executes body(tid, lo, hi) on each worker. Chunks are contiguous so that
// kernels retain streaming access within a thread, matching the paper's
// static scheduling. Like Run, it must not be called reentrantly or from
// two goroutines at once; it performs no allocation.
func (p *Pool) ParallelFor(n int, body func(tid, lo, hi int)) {
	if n <= 0 {
		return
	}
	p.forN, p.forBody = n, body
	p.Run(p.forRun)
	p.forBody = nil // don't pin the body's captures until the next call
}

// Chunk returns the half-open range [lo, hi) of the tid-th of nw near-equal
// contiguous chunks of [0, n). The first n%nw chunks are one element longer.
func Chunk(n, nw, tid int) (lo, hi int) {
	q, r := n/nw, n%nw
	lo = tid*q + min(tid, r)
	hi = lo + q
	if tid < r {
		hi++
	}
	return lo, hi
}

// String implements fmt.Stringer for diagnostics.
func (p *Pool) String() string { return fmt.Sprintf("par.Pool(%d)", p.n) }
