package par

import (
	"math"
	"sync/atomic"
)

// AtomicAddFloat64 atomically adds delta to *addr using a CAS loop on the
// float's bit pattern. This is the Go equivalent of the paper's
// "basic partitioning with atomics" update for vertices shared by edges
// processed on different threads.
func AtomicAddFloat64(addr *uint64, delta float64) {
	for {
		old := atomic.LoadUint64(addr)
		nw := math.Float64bits(math.Float64frombits(old) + delta)
		if atomic.CompareAndSwapUint64(addr, old, nw) {
			return
		}
	}
}

// Float64Slice is a slice of float64 values that supports atomic adds.
// The backing store is []uint64 so the CAS loop can operate directly.
type Float64Slice struct {
	bits []uint64
}

// NewFloat64Slice returns a zeroed atomic float slice of length n.
func NewFloat64Slice(n int) *Float64Slice {
	return &Float64Slice{bits: make([]uint64, n)}
}

// Len returns the number of elements.
func (s *Float64Slice) Len() int { return len(s.bits) }

// Add atomically adds delta to element i.
func (s *Float64Slice) Add(i int, delta float64) {
	AtomicAddFloat64(&s.bits[i], delta)
}

// Get returns element i (atomically loaded).
func (s *Float64Slice) Get(i int) float64 {
	return math.Float64frombits(atomic.LoadUint64(&s.bits[i]))
}

// Set stores v into element i (atomically).
func (s *Float64Slice) Set(i int, v float64) {
	atomic.StoreUint64(&s.bits[i], math.Float64bits(v))
}

// Zero resets all elements to 0. Not atomic with respect to concurrent Adds.
func (s *Float64Slice) Zero() {
	for i := range s.bits {
		s.bits[i] = 0
	}
}

// CopyTo copies the current values into dst (plain, non-atomic reads are
// fine once the writers have joined).
func (s *Float64Slice) CopyTo(dst []float64) {
	for i := range dst {
		dst[i] = math.Float64frombits(s.bits[i])
	}
}
