package vecop

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"fun3d/internal/par"
)

func randVec(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}

func withOps(t *testing.T, f func(o Ops, name string)) {
	f(Seq, "seq")
	p := par.NewPool(4)
	defer p.Close()
	f(Ops{Pool: p}, "par")   // literal form: per-call scratch
	f(New(p), "par-scratch") // constructor form: persistent scratch
}

func TestDotNorm(t *testing.T) {
	withOps(t, func(o Ops, name string) {
		x := []float64{1, 2, 3}
		y := []float64{4, 5, 6}
		if d := o.Dot(x, y); d != 32 {
			t.Fatalf("%s: dot=%v", name, d)
		}
		if n := o.Norm2([]float64{3, 4}); math.Abs(n-5) > 1e-15 {
			t.Fatalf("%s: norm=%v", name, n)
		}
	})
}

func TestAXPYFamily(t *testing.T) {
	withOps(t, func(o Ops, name string) {
		n := 1001
		x := randVec(n, 1)
		y0 := randVec(n, 2)

		y := append([]float64(nil), y0...)
		o.AXPY(2.5, x, y)
		for i := range y {
			if math.Abs(y[i]-(y0[i]+2.5*x[i])) > 1e-14 {
				t.Fatalf("%s: AXPY at %d", name, i)
			}
		}

		y = append([]float64(nil), y0...)
		o.AYPX(-0.5, x, y)
		for i := range y {
			if math.Abs(y[i]-(x[i]-0.5*y0[i])) > 1e-14 {
				t.Fatalf("%s: AYPX at %d", name, i)
			}
		}

		w := make([]float64, n)
		o.WAXPY(w, 3, x, y0)
		for i := range w {
			if math.Abs(w[i]-(3*x[i]+y0[i])) > 1e-14 {
				t.Fatalf("%s: WAXPY at %d", name, i)
			}
		}

		s := append([]float64(nil), x...)
		o.Scale(-2, s)
		for i := range s {
			if s[i] != -2*x[i] {
				t.Fatalf("%s: Scale at %d", name, i)
			}
		}

		d := make([]float64, n)
		o.Copy(d, x)
		for i := range d {
			if d[i] != x[i] {
				t.Fatalf("%s: Copy at %d", name, i)
			}
		}

		o.Set(7, d)
		for i := range d {
			if d[i] != 7 {
				t.Fatalf("%s: Set at %d", name, i)
			}
		}
	})
}

func TestMAXPYAndMDot(t *testing.T) {
	withOps(t, func(o Ops, name string) {
		n := 503
		y0 := randVec(n, 3)
		xs := [][]float64{randVec(n, 4), randVec(n, 5), randVec(n, 6)}
		alphas := []float64{0.5, -1.5, 2.0}

		y := append([]float64(nil), y0...)
		o.MAXPY(y, alphas, xs)
		for i := range y {
			want := y0[i]
			for k := range xs {
				want += alphas[k] * xs[k][i]
			}
			if math.Abs(y[i]-want) > 1e-13 {
				t.Fatalf("%s: MAXPY at %d", name, i)
			}
		}

		dots := make([]float64, len(xs))
		x := randVec(n, 7)
		o.MDot(x, xs, dots)
		for k := range xs {
			want := DotSeq(x, xs[k])
			if math.Abs(dots[k]-want) > 1e-11 {
				t.Fatalf("%s: MDot[%d] = %v want %v", name, k, dots[k], want)
			}
		}
	})
}

// Property: parallel and sequential dot agree to rounding for random sizes
// (different summation order, so tolerance-based).
func TestDotParMatchesSeqProperty(t *testing.T) {
	p := par.NewPool(5)
	defer p.Close()
	o := Ops{Pool: p}
	f := func(n16 uint16, seed int64) bool {
		n := int(n16%2000) + 1
		x := randVec(n, seed)
		y := randVec(n, seed+1)
		a := o.Dot(x, y)
		b := DotSeq(x, y)
		scale := math.Sqrt(DotSeq(x, x)*DotSeq(y, y)) + 1
		return math.Abs(a-b) <= 1e-12*scale
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyVectors(t *testing.T) {
	withOps(t, func(o Ops, name string) {
		if o.Dot(nil, nil) != 0 {
			t.Fatalf("%s: empty dot", name)
		}
		o.AXPY(1, nil, nil) // must not panic
		o.MAXPY(nil, nil, nil)
		o.MDot(nil, nil, nil)
	})
}

func BenchmarkDotSeq(b *testing.B) {
	x := randVec(1<<16, 1)
	y := randVec(1<<16, 2)
	b.SetBytes(2 * 8 << 16)
	for i := 0; i < b.N; i++ {
		DotSeq(x, y)
	}
}

func BenchmarkDotPar(b *testing.B) {
	p := par.NewPool(0)
	defer p.Close()
	o := Ops{Pool: p}
	x := randVec(1<<16, 1)
	y := randVec(1<<16, 2)
	b.SetBytes(2 * 8 << 16)
	for i := 0; i < b.N; i++ {
		o.Dot(x, y)
	}
}

func TestMDotNorm(t *testing.T) {
	withOps(t, func(o Ops, name string) {
		n := 777
		x := randVec(n, 31)
		ys := [][]float64{randVec(n, 32), randVec(n, 33)}
		dots := make([]float64, 2)
		norm := o.MDotNorm(x, ys, dots)
		if math.Abs(norm-o.Norm2(x)) > 1e-10*(norm+1) {
			t.Fatalf("%s: fused norm %v vs %v", name, norm, o.Norm2(x))
		}
		for k := range ys {
			want := DotSeq(x, ys[k])
			if math.Abs(dots[k]-want) > 1e-10*(math.Abs(want)+1) {
				t.Fatalf("%s: fused dot[%d] %v vs %v", name, k, dots[k], want)
			}
		}
		// Zero basis vectors: norm still correct.
		norm2 := o.MDotNorm(x, nil, nil)
		if math.Abs(norm2-norm) > 1e-12*(norm+1) {
			t.Fatalf("%s: empty-basis norm %v", name, norm2)
		}
	})
}

// DotBatch is the shared-memory leg of the pipelined-GMRES single
// reduction: every pair must match its sequential inner product, including
// aliased pairs (x·x norms ride the same batch as projections).
func TestDotBatch(t *testing.T) {
	withOps(t, func(o Ops, name string) {
		n := 1003
		x := randVec(n, 21)
		y := randVec(n, 22)
		zs := make([][]float64, 7)
		for k := range zs {
			zs[k] = randVec(n, int64(23+k))
		}
		pairs := []DotPair{{X: x, Y: y}, {X: x, Y: x}, {X: y, Y: y}}
		for _, z := range zs {
			pairs = append(pairs, DotPair{X: x, Y: z})
		}
		out := make([]float64, len(pairs))
		o.DotBatch(pairs, out)
		for k, p := range pairs {
			if want := DotSeq(p.X, p.Y); !close2(out[k], want) {
				t.Fatalf("%s: pair %d: got %v want %v", name, k, out[k], want)
			}
		}
		// Empty batch is a no-op.
		o.DotBatch(nil, nil)
	})
}
