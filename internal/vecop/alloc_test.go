package vecop

import (
	"testing"

	"fun3d/internal/par"
)

// The reductions are the Amdahl term of the paper's hybrid analysis; they
// run several times per GMRES iteration, so a steady-state call must not
// allocate (ISSUE 2 acceptance criterion). AllocsPerRun counts mallocs
// across all goroutines, so this also pins down the pool's dispatch path.
func TestPooledReductionsZeroAlloc(t *testing.T) {
	p := par.NewPool(4)
	defer p.Close()
	o := New(p)
	const n = 4096
	x := randVec(n, 1)
	y := randVec(n, 2)
	ys := make([][]float64, 30) // a full GMRES(30) Gram-Schmidt sweep
	for k := range ys {
		ys[k] = randVec(n, int64(3+k))
	}
	dots := make([]float64, len(ys))

	cases := []struct {
		name string
		f    func()
	}{
		{"Dot", func() { _ = o.Dot(x, y) }},
		{"MDot", func() { o.MDot(x, ys, dots) }},
		{"MDotNorm", func() { _ = o.MDotNorm(x, ys, dots) }},
	}
	for _, c := range cases {
		c.f() // warm up: grows the padded scratch once
		if avg := testing.AllocsPerRun(20, c.f); avg != 0 {
			t.Errorf("%s: %v allocs per steady-state call, want 0", c.name, avg)
		}
	}
}

// A literal Ops (no constructor) must still be correct, merely not
// allocation-free.
func TestLiteralOpsStillCorrect(t *testing.T) {
	p := par.NewPool(3)
	defer p.Close()
	lit := Ops{Pool: p}
	x := randVec(100, 7)
	y := randVec(100, 8)
	if got, want := lit.Dot(x, y), DotSeq(x, y); !close2(got, want) {
		t.Fatalf("literal Dot=%v want %v", got, want)
	}
}

func close2(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= 1e-9*(1+abs(a)+abs(b))
}

func abs(a float64) float64 {
	if a < 0 {
		return -a
	}
	return a
}

// DotBatch runs once per pipelined-GMRES iteration with O(Restart) pairs;
// like the other reductions it must not allocate in steady state.
func TestDotBatchZeroAlloc(t *testing.T) {
	p := par.NewPool(4)
	defer p.Close()
	o := New(p)
	const n = 4096
	pairs := make([]DotPair, 0, 32)
	for k := 0; k < 32; k++ {
		pairs = append(pairs, DotPair{X: randVec(n, int64(40+k)), Y: randVec(n, int64(80+k))})
	}
	out := make([]float64, len(pairs))
	f := func() { o.DotBatch(pairs, out) }
	f() // warm up: grows the padded scratch once
	if avg := testing.AllocsPerRun(20, f); avg != 0 {
		t.Errorf("DotBatch: %v allocs per steady-state call, want 0", avg)
	}
}
