// Package vecop provides the dense vector primitives of the Krylov solver —
// the PETSc-native operations (VecDot, VecNorm, VecAXPY, VecWAXPY,
// VecMAXPY, VecMDot) the paper identifies as an Amdahl bottleneck when left
// unthreaded. Every primitive has a sequential and a pool-parallel form;
// the Ops struct bundles one choice so callers (GMRES, Newton) are agnostic.
package vecop

import (
	"math"

	"fun3d/internal/par"
)

// Ops executes vector primitives either sequentially or on a worker pool.
// The zero value is sequential. This switch is how the benchmarks reproduce
// the paper's hybrid-vs-MPI-only Amdahl analysis: the "unoptimized PETSc"
// configuration runs these sequentially even when kernels are threaded.
//
// Construct pooled Ops with New: copies share one cache-line-padded
// reduction scratch, so steady-state Dot/MDot/MDotNorm calls perform zero
// allocations and per-thread partial sums never share a cache line. A
// hand-built Ops{Pool: p} still works but allocates its scratch per call.
// Reductions mutate the shared scratch, so a pooled Ops must not be used
// from two goroutines at once (the Pool forbids that anyway).
type Ops struct {
	Pool *par.Pool // nil => sequential
	s    *scratch  // shared reduction scratch; nil => allocate per call
}

// New returns an Ops running on pool (nil yields the sequential Ops) with a
// persistent reduction scratch.
func New(pool *par.Pool) Ops {
	if pool == nil {
		return Ops{}
	}
	return Ops{Pool: pool, s: newScratch(pool.Size())}
}

// Seq is the sequential Ops.
var Seq = Ops{}

// pad is the slot granularity of the reduction scratch in float64 lanes: a
// 64-byte cache line holds 8 float64s. Per-thread slots are strided by a
// multiple of pad PLUS one extra pad, so two threads' partials are at least
// a full line apart whatever the slice's base alignment — the false-sharing
// fix for the VecMDot kernel the paper's Amdahl analysis singles out.
const pad = 8

// scratch owns the reduction buffer and the persistent parallel-loop bodies
// (built once, so pooled reductions don't allocate closures per call).
type scratch struct {
	nw     int
	buf    []float64
	stride int // current slot stride, multiple of pad

	// arguments of the in-flight reduction, read by the bodies
	x, y  []float64
	ys    [][]float64
	pairs []DotPair

	dotBody   func(tid, lo, hi int)
	mdotBody  func(tid, lo, hi int) // also computes ||x||² when withNorm
	batchBody func(tid, lo, hi int)
	withNorm  bool
}

func newScratch(nw int) *scratch {
	s := &scratch{nw: nw}
	s.dotBody = func(tid, lo, hi int) {
		x, y := s.x, s.y
		acc := 0.0
		for i := lo; i < hi; i++ {
			acc += x[i] * y[i]
		}
		s.buf[tid*s.stride] = acc
	}
	s.mdotBody = func(tid, lo, hi int) {
		x := s.x
		base := tid * s.stride
		for k := range s.ys {
			acc := 0.0
			yk := s.ys[k]
			for i := lo; i < hi; i++ {
				acc += x[i] * yk[i]
			}
			s.buf[base+k] = acc
		}
		if s.withNorm {
			acc := 0.0
			for i := lo; i < hi; i++ {
				acc += x[i] * x[i]
			}
			s.buf[base+len(s.ys)] = acc
		}
	}
	s.batchBody = func(tid, lo, hi int) {
		base := tid * s.stride
		for k := range s.pairs {
			x, y := s.pairs[k].X, s.pairs[k].Y
			acc := 0.0
			for i := lo; i < hi; i++ {
				acc += x[i] * y[i]
			}
			s.buf[base+k] = acc
		}
	}
	return s
}

// begin sizes the scratch for nvals partial values per thread and zeroes
// the active region (threads with an empty chunk never write their slot).
func (s *scratch) begin(nvals int) {
	stride := (nvals+pad-1)/pad*pad + pad
	n := s.nw * stride
	if cap(s.buf) < n {
		s.buf = make([]float64, n)
	}
	s.buf = s.buf[:n]
	s.stride = stride
	for i := range s.buf {
		s.buf[i] = 0
	}
}

// end releases the argument references so they are not pinned between calls.
func (s *scratch) end() {
	s.x, s.y, s.ys, s.pairs = nil, nil, nil, nil
}

// scratchFor returns the persistent scratch, or a fresh one for a
// literal-constructed Ops (correct, just not allocation-free).
func (o Ops) scratchFor() *scratch {
	if o.s != nil {
		return o.s
	}
	return newScratch(o.Pool.Size())
}

// Dot returns x·y.
func (o Ops) Dot(x, y []float64) float64 {
	if o.Pool == nil {
		return DotSeq(x, y)
	}
	s := o.scratchFor()
	s.x, s.y = x, y
	s.begin(1)
	o.Pool.ParallelFor(len(x), s.dotBody)
	sum := 0.0
	for t := 0; t < s.nw; t++ {
		sum += s.buf[t*s.stride]
	}
	s.end()
	return sum
}

// DotSeq is the sequential dot product.
func DotSeq(x, y []float64) float64 {
	s := 0.0
	for i := range x {
		s += x[i] * y[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of x.
func (o Ops) Norm2(x []float64) float64 { return math.Sqrt(o.Dot(x, x)) }

// AXPY computes y += a*x.
func (o Ops) AXPY(a float64, x, y []float64) {
	if o.Pool == nil {
		for i := range x {
			y[i] += a * x[i]
		}
		return
	}
	o.Pool.ParallelFor(len(x), func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			y[i] += a * x[i]
		}
	})
}

// AYPX computes y = x + a*y.
func (o Ops) AYPX(a float64, x, y []float64) {
	if o.Pool == nil {
		for i := range x {
			y[i] = x[i] + a*y[i]
		}
		return
	}
	o.Pool.ParallelFor(len(x), func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			y[i] = x[i] + a*y[i]
		}
	})
}

// WAXPY computes w = a*x + y.
func (o Ops) WAXPY(w []float64, a float64, x, y []float64) {
	if o.Pool == nil {
		for i := range w {
			w[i] = a*x[i] + y[i]
		}
		return
	}
	o.Pool.ParallelFor(len(w), func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			w[i] = a*x[i] + y[i]
		}
	})
}

// Scale computes x *= a.
func (o Ops) Scale(a float64, x []float64) {
	if o.Pool == nil {
		for i := range x {
			x[i] *= a
		}
		return
	}
	o.Pool.ParallelFor(len(x), func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			x[i] *= a
		}
	})
}

// Copy copies src into dst.
func (o Ops) Copy(dst, src []float64) {
	if o.Pool == nil {
		copy(dst, src)
		return
	}
	o.Pool.ParallelFor(len(dst), func(_, lo, hi int) {
		copy(dst[lo:hi], src[lo:hi])
	})
}

// Set fills x with the scalar a.
func (o Ops) Set(a float64, x []float64) {
	if o.Pool == nil {
		for i := range x {
			x[i] = a
		}
		return
	}
	o.Pool.ParallelFor(len(x), func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			x[i] = a
		}
	})
}

// MAXPY computes y += sum_k alphas[k]*xs[k] (PETSc VecMAXPY). The fused
// loop reads y once instead of len(xs) times — the memory-traffic saving
// that makes this a distinct primitive.
func (o Ops) MAXPY(y []float64, alphas []float64, xs [][]float64) {
	body := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			s := y[i]
			for k := range xs {
				s += alphas[k] * xs[k][i]
			}
			y[i] = s
		}
	}
	if o.Pool == nil {
		body(0, len(y))
		return
	}
	o.Pool.ParallelFor(len(y), func(_, lo, hi int) { body(lo, hi) })
}

// MDotNorm computes dots[k] = x·ys[k] for all k and returns ||x||₂, all in
// one sweep — the fused reduction behind communication-reducing GMRES
// (krylov.NormFuser).
func (o Ops) MDotNorm(x []float64, ys [][]float64, dots []float64) float64 {
	if o.Pool == nil {
		s := 0.0
		for i := range x {
			s += x[i] * x[i]
		}
		for k := range ys {
			dots[k] = DotSeq(x, ys[k])
		}
		return math.Sqrt(s)
	}
	s := o.scratchFor()
	s.x, s.ys, s.withNorm = x, ys, true
	s.begin(len(ys) + 1)
	o.Pool.ParallelFor(len(x), s.mdotBody)
	norm2 := 0.0
	for k := range ys {
		acc := 0.0
		for t := 0; t < s.nw; t++ {
			acc += s.buf[t*s.stride+k]
		}
		dots[k] = acc
	}
	for t := 0; t < s.nw; t++ {
		norm2 += s.buf[t*s.stride+len(ys)]
	}
	s.end()
	return math.Sqrt(norm2)
}

// DotPair names one inner product x·y of a batched reduction. All pairs of
// one DotBatch call must have a common vector length.
type DotPair struct {
	X, Y []float64
}

// DotBatch computes out[k] = pairs[k].X · pairs[k].Y for every pair in one
// sweep over the index space — the shared-memory realization of the
// single-reduction batch behind pipelined GMRES (krylov.BatchedReducer):
// projection dots, ||w||², and the lag-normalization Gram terms all land in
// one reduction instead of three. Zero-alloc in steady state for an Ops
// built with New.
func (o Ops) DotBatch(pairs []DotPair, out []float64) {
	if len(pairs) == 0 {
		return
	}
	if o.Pool == nil {
		for k := range pairs {
			out[k] = DotSeq(pairs[k].X, pairs[k].Y)
		}
		return
	}
	s := o.scratchFor()
	s.pairs = pairs
	s.begin(len(pairs))
	o.Pool.ParallelFor(len(pairs[0].X), s.batchBody)
	for k := range pairs {
		acc := 0.0
		for t := 0; t < s.nw; t++ {
			acc += s.buf[t*s.stride+k]
		}
		out[k] = acc
	}
	s.end()
}

// MDot computes dots[k] = x·ys[k] for all k in one sweep (PETSc VecMDot),
// the Gram-Schmidt inner kernel of GMRES.
func (o Ops) MDot(x []float64, ys [][]float64, dots []float64) {
	if o.Pool == nil {
		for k := range ys {
			dots[k] = DotSeq(x, ys[k])
		}
		return
	}
	s := o.scratchFor()
	s.x, s.ys, s.withNorm = x, ys, false
	s.begin(len(ys))
	o.Pool.ParallelFor(len(x), s.mdotBody)
	for k := range dots {
		acc := 0.0
		for t := 0; t < s.nw; t++ {
			acc += s.buf[t*s.stride+k]
		}
		dots[k] = acc
	}
	s.end()
}
