// Package vecop provides the dense vector primitives of the Krylov solver —
// the PETSc-native operations (VecDot, VecNorm, VecAXPY, VecWAXPY,
// VecMAXPY, VecMDot) the paper identifies as an Amdahl bottleneck when left
// unthreaded. Every primitive has a sequential and a pool-parallel form;
// the Ops struct bundles one choice so callers (GMRES, Newton) are agnostic.
package vecop

import (
	"math"

	"fun3d/internal/par"
)

// Ops executes vector primitives either sequentially or on a worker pool.
// The zero value is sequential. This switch is how the benchmarks reproduce
// the paper's hybrid-vs-MPI-only Amdahl analysis: the "unoptimized PETSc"
// configuration runs these sequentially even when kernels are threaded.
type Ops struct {
	Pool *par.Pool // nil => sequential
}

// Seq is the sequential Ops.
var Seq = Ops{}

// Dot returns x·y.
func (o Ops) Dot(x, y []float64) float64 {
	if o.Pool == nil {
		return DotSeq(x, y)
	}
	partial := make([]float64, o.Pool.Size())
	o.Pool.ParallelFor(len(x), func(tid, lo, hi int) {
		s := 0.0
		for i := lo; i < hi; i++ {
			s += x[i] * y[i]
		}
		partial[tid] = s
	})
	s := 0.0
	for _, v := range partial {
		s += v
	}
	return s
}

// DotSeq is the sequential dot product.
func DotSeq(x, y []float64) float64 {
	s := 0.0
	for i := range x {
		s += x[i] * y[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of x.
func (o Ops) Norm2(x []float64) float64 { return math.Sqrt(o.Dot(x, x)) }

// AXPY computes y += a*x.
func (o Ops) AXPY(a float64, x, y []float64) {
	if o.Pool == nil {
		for i := range x {
			y[i] += a * x[i]
		}
		return
	}
	o.Pool.ParallelFor(len(x), func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			y[i] += a * x[i]
		}
	})
}

// AYPX computes y = x + a*y.
func (o Ops) AYPX(a float64, x, y []float64) {
	if o.Pool == nil {
		for i := range x {
			y[i] = x[i] + a*y[i]
		}
		return
	}
	o.Pool.ParallelFor(len(x), func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			y[i] = x[i] + a*y[i]
		}
	})
}

// WAXPY computes w = a*x + y.
func (o Ops) WAXPY(w []float64, a float64, x, y []float64) {
	if o.Pool == nil {
		for i := range w {
			w[i] = a*x[i] + y[i]
		}
		return
	}
	o.Pool.ParallelFor(len(w), func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			w[i] = a*x[i] + y[i]
		}
	})
}

// Scale computes x *= a.
func (o Ops) Scale(a float64, x []float64) {
	if o.Pool == nil {
		for i := range x {
			x[i] *= a
		}
		return
	}
	o.Pool.ParallelFor(len(x), func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			x[i] *= a
		}
	})
}

// Copy copies src into dst.
func (o Ops) Copy(dst, src []float64) {
	if o.Pool == nil {
		copy(dst, src)
		return
	}
	o.Pool.ParallelFor(len(dst), func(_, lo, hi int) {
		copy(dst[lo:hi], src[lo:hi])
	})
}

// Set fills x with the scalar a.
func (o Ops) Set(a float64, x []float64) {
	if o.Pool == nil {
		for i := range x {
			x[i] = a
		}
		return
	}
	o.Pool.ParallelFor(len(x), func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			x[i] = a
		}
	})
}

// MAXPY computes y += sum_k alphas[k]*xs[k] (PETSc VecMAXPY). The fused
// loop reads y once instead of len(xs) times — the memory-traffic saving
// that makes this a distinct primitive.
func (o Ops) MAXPY(y []float64, alphas []float64, xs [][]float64) {
	body := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			s := y[i]
			for k := range xs {
				s += alphas[k] * xs[k][i]
			}
			y[i] = s
		}
	}
	if o.Pool == nil {
		body(0, len(y))
		return
	}
	o.Pool.ParallelFor(len(y), func(_, lo, hi int) { body(lo, hi) })
}

// MDotNorm computes dots[k] = x·ys[k] for all k and returns ||x||₂, all in
// one sweep — the fused reduction behind communication-reducing GMRES
// (krylov.NormFuser).
func (o Ops) MDotNorm(x []float64, ys [][]float64, dots []float64) float64 {
	if o.Pool == nil {
		s := 0.0
		for i := range x {
			s += x[i] * x[i]
		}
		for k := range ys {
			dots[k] = DotSeq(x, ys[k])
		}
		return math.Sqrt(s)
	}
	nw := o.Pool.Size()
	stride := len(ys) + 1
	partial := make([]float64, nw*stride)
	o.Pool.ParallelFor(len(x), func(tid, lo, hi int) {
		base := tid * stride
		for k := range ys {
			s := 0.0
			yk := ys[k]
			for i := lo; i < hi; i++ {
				s += x[i] * yk[i]
			}
			partial[base+k] = s
		}
		s := 0.0
		for i := lo; i < hi; i++ {
			s += x[i] * x[i]
		}
		partial[base+len(ys)] = s
	})
	norm2 := 0.0
	for k := range ys {
		s := 0.0
		for t := 0; t < nw; t++ {
			s += partial[t*stride+k]
		}
		dots[k] = s
	}
	for t := 0; t < nw; t++ {
		norm2 += partial[t*stride+len(ys)]
	}
	return math.Sqrt(norm2)
}

// MDot computes dots[k] = x·ys[k] for all k in one sweep (PETSc VecMDot),
// the Gram-Schmidt inner kernel of GMRES.
func (o Ops) MDot(x []float64, ys [][]float64, dots []float64) {
	if o.Pool == nil {
		for k := range ys {
			dots[k] = DotSeq(x, ys[k])
		}
		return
	}
	nw := o.Pool.Size()
	partial := make([]float64, nw*len(ys))
	o.Pool.ParallelFor(len(x), func(tid, lo, hi int) {
		base := tid * len(ys)
		for k := range ys {
			s := 0.0
			yk := ys[k]
			for i := lo; i < hi; i++ {
				s += x[i] * yk[i]
			}
			partial[base+k] = s
		}
	})
	for k := range dots {
		s := 0.0
		for t := 0; t < nw; t++ {
			s += partial[t*len(ys)+k]
		}
		dots[k] = s
	}
}
