// Package color implements greedy edge coloring: a partition of mesh edges
// into conflict-free groups (no two edges in a group share a vertex), the
// classic alternative the paper mentions for extracting edge-loop
// concurrency — and then rejects for its poor spatial locality, a tradeoff
// our benchmarks reproduce.
package color

import "fmt"

// EdgeColoring holds edges grouped by color. Edges within one color touch
// disjoint vertices, so a color can be processed fully in parallel without
// atomics or replication.
type EdgeColoring struct {
	// Order lists edge indices grouped by color; Offsets[c]..Offsets[c+1]
	// delimit color c.
	Order   []int32
	Offsets []int32
}

// NumColors returns the number of colors.
func (c *EdgeColoring) NumColors() int { return len(c.Offsets) - 1 }

// Color returns the edge indices of color c.
func (c *EdgeColoring) Color(i int) []int32 { return c.Order[c.Offsets[i]:c.Offsets[i+1]] }

// Greedy colors the edges given by endpoint arrays ev1/ev2 over nv vertices.
// Edges are visited in index order; each takes the smallest color not used
// by any incident edge so far. For meshes of maximum degree D this uses at
// most 2D-1 colors.
func Greedy(nv int, ev1, ev2 []int32) *EdgeColoring {
	ne := len(ev1)
	// lastColorUsed[v*stride+c] would be heavy; instead track per-vertex
	// bitmask for up to 64 colors and fall back to a slice if exceeded.
	const maxFast = 64
	mask := make([]uint64, nv)
	overflow := map[int32]map[int32]bool{} // vertex -> colors >= maxFast
	colorOf := make([]int32, ne)
	maxColor := int32(0)
	for e := 0; e < ne; e++ {
		a, b := ev1[e], ev2[e]
		used := mask[a] | mask[b]
		var c int32
		for c = 0; c < maxFast; c++ {
			if used&(1<<uint(c)) == 0 {
				break
			}
		}
		if c == maxFast {
			// Rare: scan overflow sets.
			for ; ; c++ {
				if !overflow[a][c] && !overflow[b][c] {
					break
				}
			}
		}
		colorOf[e] = c
		if c < maxFast {
			mask[a] |= 1 << uint(c)
			mask[b] |= 1 << uint(c)
		} else {
			for _, v := range [2]int32{a, b} {
				if overflow[v] == nil {
					overflow[v] = map[int32]bool{}
				}
				overflow[v][c] = true
			}
		}
		if c+1 > maxColor {
			maxColor = c + 1
		}
	}
	// Bucket edges by color.
	counts := make([]int32, maxColor+1)
	for _, c := range colorOf {
		counts[c+1]++
	}
	for c := int32(0); c < maxColor; c++ {
		counts[c+1] += counts[c]
	}
	order := make([]int32, ne)
	fill := make([]int32, maxColor)
	for e := 0; e < ne; e++ {
		c := colorOf[e]
		order[counts[c]+fill[c]] = int32(e)
		fill[c]++
	}
	return &EdgeColoring{Order: order, Offsets: counts}
}

// Verify checks that no color contains two edges sharing a vertex and that
// every edge appears exactly once.
func (c *EdgeColoring) Verify(nv int, ev1, ev2 []int32) error {
	seen := make([]bool, len(ev1))
	stamp := make([]int32, nv)
	for i := range stamp {
		stamp[i] = -1
	}
	for col := 0; col < c.NumColors(); col++ {
		for _, e := range c.Color(col) {
			if seen[e] {
				return fmt.Errorf("color: edge %d appears twice", e)
			}
			seen[e] = true
			a, b := ev1[e], ev2[e]
			if stamp[a] == int32(col) || stamp[b] == int32(col) {
				return fmt.Errorf("color: conflict in color %d at edge %d", col, e)
			}
			stamp[a], stamp[b] = int32(col), int32(col)
		}
	}
	for e, s := range seen {
		if !s {
			return fmt.Errorf("color: edge %d missing", e)
		}
	}
	return nil
}
