package color

import (
	"testing"
	"testing/quick"

	"fun3d/internal/mesh"
)

func TestGreedyOnMesh(t *testing.T) {
	m, err := mesh.Generate(mesh.SpecTiny())
	if err != nil {
		t.Fatal(err)
	}
	c := Greedy(m.NumVertices(), m.EV1, m.EV2)
	if err := c.Verify(m.NumVertices(), m.EV1, m.EV2); err != nil {
		t.Fatal(err)
	}
	stats := m.ComputeStats()
	if c.NumColors() < stats.MaxDegree {
		t.Fatalf("colors %d < max degree %d (impossible)", c.NumColors(), stats.MaxDegree)
	}
	if c.NumColors() > 2*stats.MaxDegree {
		t.Fatalf("colors %d > 2*maxdeg %d (greedy bound broken)", c.NumColors(), stats.MaxDegree)
	}
	t.Logf("colors=%d maxdeg=%d", c.NumColors(), stats.MaxDegree)
}

func TestGreedyStar(t *testing.T) {
	// Star graph: all edges share vertex 0, so every edge needs its own color.
	n := 10
	ev1 := make([]int32, n-1)
	ev2 := make([]int32, n-1)
	for i := 1; i < n; i++ {
		ev1[i-1] = 0
		ev2[i-1] = int32(i)
	}
	c := Greedy(n, ev1, ev2)
	if c.NumColors() != n-1 {
		t.Fatalf("star colors = %d, want %d", c.NumColors(), n-1)
	}
	if err := c.Verify(n, ev1, ev2); err != nil {
		t.Fatal(err)
	}
}

func TestGreedyMatching(t *testing.T) {
	// Perfect matching: one color suffices.
	ev1 := []int32{0, 2, 4}
	ev2 := []int32{1, 3, 5}
	c := Greedy(6, ev1, ev2)
	if c.NumColors() != 1 {
		t.Fatalf("matching colors = %d", c.NumColors())
	}
}

func TestGreedyEmpty(t *testing.T) {
	c := Greedy(5, nil, nil)
	if c.NumColors() != 0 {
		t.Fatalf("empty coloring has %d colors", c.NumColors())
	}
}

func TestGreedyOverflowColors(t *testing.T) {
	// Force more than 64 colors with a star of 70 edges.
	n := 71
	ev1 := make([]int32, n-1)
	ev2 := make([]int32, n-1)
	for i := 1; i < n; i++ {
		ev1[i-1] = 0
		ev2[i-1] = int32(i)
	}
	c := Greedy(n, ev1, ev2)
	if c.NumColors() != 70 {
		t.Fatalf("colors = %d, want 70", c.NumColors())
	}
	if err := c.Verify(n, ev1, ev2); err != nil {
		t.Fatal(err)
	}
}

// Property: greedy coloring of random graphs is always conflict-free and
// complete.
func TestGreedyProperty(t *testing.T) {
	f := func(seed uint64) bool {
		n := int(seed%30) + 4
		var ev1, ev2 []int32
		s := seed
		next := func() uint64 {
			s = s*6364136223846793005 + 1442695040888963407
			return s >> 33
		}
		seen := map[[2]int32]bool{}
		for k := 0; k < n*2; k++ {
			a := int32(next() % uint64(n))
			b := int32(next() % uint64(n))
			if a == b {
				continue
			}
			if a > b {
				a, b = b, a
			}
			if seen[[2]int32{a, b}] {
				continue
			}
			seen[[2]int32{a, b}] = true
			ev1 = append(ev1, a)
			ev2 = append(ev2, b)
		}
		c := Greedy(n, ev1, ev2)
		return c.Verify(n, ev1, ev2) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
