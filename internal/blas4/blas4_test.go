package blas4

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randBlock(rng *rand.Rand) []float64 {
	a := make([]float64, BB)
	for i := range a {
		a[i] = rng.NormFloat64()
	}
	return a
}

func naiveGemv(a, x []float64) [B]float64 {
	var y [B]float64
	for i := 0; i < B; i++ {
		for j := 0; j < B; j++ {
			y[i] += a[i*B+j] * x[j]
		}
	}
	return y
}

func TestGemvVariants(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		a := randBlock(rng)
		x := randBlock(rng)[:B]
		want := naiveGemv(a, x)

		y := make([]float64, B)
		Gemv(a, x, y)
		for i := 0; i < B; i++ {
			if y[i] != want[i] {
				t.Fatalf("Gemv[%d] = %v want %v", i, y[i], want[i])
			}
		}
		y2 := []float64{1, 2, 3, 4}
		GemvAdd(a, x, y2)
		y3 := []float64{1, 2, 3, 4}
		GemvSub(a, x, y3)
		for i := 0; i < B; i++ {
			if math.Abs(y2[i]-(float64(i+1)+want[i])) > 1e-14 {
				t.Fatalf("GemvAdd[%d]", i)
			}
			if math.Abs(y3[i]-(float64(i+1)-want[i])) > 1e-14 {
				t.Fatalf("GemvSub[%d]", i)
			}
		}
	}
}

func TestGemmAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 50; trial++ {
		a, b := randBlock(rng), randBlock(rng)
		c := make([]float64, BB)
		Gemm(a, b, c)
		for i := 0; i < B; i++ {
			for j := 0; j < B; j++ {
				want := 0.0
				for k := 0; k < B; k++ {
					want += a[i*B+k] * b[k*B+j]
				}
				if math.Abs(c[i*B+j]-want) > 1e-12 {
					t.Fatalf("Gemm(%d,%d) = %v want %v", i, j, c[i*B+j], want)
				}
			}
		}
		// GemmSub(c, a, b) after Gemm(a,b,c) should give zero.
		c2 := make([]float64, BB)
		Copy(c2, c)
		GemmSub(a, b, c2)
		if MaxAbs(c2) > 1e-12 {
			t.Fatalf("GemmSub residue %v", MaxAbs(c2))
		}
	}
}

// Property: Invert produces A*Ainv = I for well-conditioned random blocks.
func TestInvertProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randBlock(rng)
		AddDiag(a, 5) // keep it comfortably nonsingular
		ainv := make([]float64, BB)
		Copy(ainv, a)
		if !Invert(ainv) {
			return false
		}
		prod := make([]float64, BB)
		Gemm(a, ainv, prod)
		for i := 0; i < B; i++ {
			prod[i*B+i] -= 1
		}
		return MaxAbs(prod) < 1e-10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestInvertSingular(t *testing.T) {
	a := make([]float64, BB) // zero matrix
	if Invert(a) {
		t.Fatal("inverted a singular block")
	}
	// Rank-deficient: two identical rows.
	b := []float64{
		1, 2, 3, 4,
		1, 2, 3, 4,
		0, 1, 0, 0,
		0, 0, 1, 0,
	}
	if Invert(b) {
		t.Fatal("inverted a rank-deficient block")
	}
}

func TestInvertNeedsPivoting(t *testing.T) {
	// Zero in the (0,0) position forces a row swap.
	a := []float64{
		0, 1, 0, 0,
		1, 0, 0, 0,
		0, 0, 2, 0,
		0, 0, 0, 4,
	}
	orig := make([]float64, BB)
	Copy(orig, a)
	if !Invert(a) {
		t.Fatal("pivoting case failed")
	}
	prod := make([]float64, BB)
	Gemm(orig, a, prod)
	for i := 0; i < B; i++ {
		prod[i*B+i] -= 1
	}
	if MaxAbs(prod) > 1e-14 {
		t.Fatalf("residue %v", MaxAbs(prod))
	}
}

func TestZeroCopyAddDiag(t *testing.T) {
	a := make([]float64, BB)
	for i := range a {
		a[i] = float64(i)
	}
	b := make([]float64, BB)
	Copy(b, a)
	Zero(a)
	if MaxAbs(a) != 0 {
		t.Fatal("Zero")
	}
	if b[5] != 5 {
		t.Fatal("Copy clobbered source data path")
	}
	AddDiag(b, 10)
	if b[0] != 10 || b[5] != 15 || b[10] != 20 || b[15] != 25 {
		t.Fatalf("AddDiag %v", b)
	}
}

func BenchmarkGemvSub(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	a := randBlock(rng)
	x := randBlock(rng)[:B]
	y := make([]float64, B)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		GemvSub(a, x, y)
	}
}

func BenchmarkGemmSub(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	x, y := randBlock(rng), randBlock(rng)
	c := make([]float64, BB)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		GemmSub(x, y, c)
	}
}

func BenchmarkInvert(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	a := randBlock(rng)
	AddDiag(a, 5)
	w := make([]float64, BB)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Copy(w, a)
		Invert(w)
	}
}
