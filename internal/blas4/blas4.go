// Package blas4 implements the dense 4x4 block micro-kernels that dominate
// the sparse recurrences in the paper: block matrix-vector products for the
// triangular solve, block matrix-matrix products and in-place inversion for
// the ILU factorization. Blocks are stored row-major in flat [16]float64
// windows of the BSR value array; vectors are [4]float64 windows.
//
// The fixed trip counts let the Go compiler fully unroll these loops, which
// is the closest pure-Go analogue of the paper's hand-vectorized intrinsics.
package blas4

// B is the block dimension: four unknowns (p,u,v,w) per mesh vertex.
const B = 4

// BB is the number of scalars in one block.
const BB = B * B

// GemvSub computes y -= A*x for a 4x4 block A (row-major, len>=16) and
// 4-vectors x, y (len>=4). This is the inner operation of the block TRSV.
func GemvSub(a, x, y []float64) {
	_ = a[15]
	_ = x[3]
	_ = y[3]
	x0, x1, x2, x3 := x[0], x[1], x[2], x[3]
	y[0] -= a[0]*x0 + a[1]*x1 + a[2]*x2 + a[3]*x3
	y[1] -= a[4]*x0 + a[5]*x1 + a[6]*x2 + a[7]*x3
	y[2] -= a[8]*x0 + a[9]*x1 + a[10]*x2 + a[11]*x3
	y[3] -= a[12]*x0 + a[13]*x1 + a[14]*x2 + a[15]*x3
}

// GemvAdd computes y += A*x.
func GemvAdd(a, x, y []float64) {
	_ = a[15]
	_ = x[3]
	_ = y[3]
	x0, x1, x2, x3 := x[0], x[1], x[2], x[3]
	y[0] += a[0]*x0 + a[1]*x1 + a[2]*x2 + a[3]*x3
	y[1] += a[4]*x0 + a[5]*x1 + a[6]*x2 + a[7]*x3
	y[2] += a[8]*x0 + a[9]*x1 + a[10]*x2 + a[11]*x3
	y[3] += a[12]*x0 + a[13]*x1 + a[14]*x2 + a[15]*x3
}

// Gemv computes y = A*x.
func Gemv(a, x, y []float64) {
	_ = a[15]
	_ = x[3]
	_ = y[3]
	x0, x1, x2, x3 := x[0], x[1], x[2], x[3]
	y[0] = a[0]*x0 + a[1]*x1 + a[2]*x2 + a[3]*x3
	y[1] = a[4]*x0 + a[5]*x1 + a[6]*x2 + a[7]*x3
	y[2] = a[8]*x0 + a[9]*x1 + a[10]*x2 + a[11]*x3
	y[3] = a[12]*x0 + a[13]*x1 + a[14]*x2 + a[15]*x3
}

// GemvSubN computes y -= A*x_c for one 4x4 block A applied to a run of
// column blocks: for each c in cols, in order, y -= A * x[4c:4c+4]. A's 16
// scalars are hoisted into registers once for the whole run — the batched
// repeated-block form of GemvSub used when consecutive BSR slots share one
// deduplicated block. Each per-column update evaluates exactly the GemvSub
// expression in the same order, so the result is bit-identical to calling
// GemvSub once per column.
func GemvSubN(a, x []float64, cols []int32, y []float64) {
	_ = a[15]
	_ = y[3]
	a0, a1, a2, a3 := a[0], a[1], a[2], a[3]
	a4, a5, a6, a7 := a[4], a[5], a[6], a[7]
	a8, a9, a10, a11 := a[8], a[9], a[10], a[11]
	a12, a13, a14, a15 := a[12], a[13], a[14], a[15]
	for _, c := range cols {
		xc := x[int(c)*B : int(c)*B+B]
		x0, x1, x2, x3 := xc[0], xc[1], xc[2], xc[3]
		y[0] -= a0*x0 + a1*x1 + a2*x2 + a3*x3
		y[1] -= a4*x0 + a5*x1 + a6*x2 + a7*x3
		y[2] -= a8*x0 + a9*x1 + a10*x2 + a11*x3
		y[3] -= a12*x0 + a13*x1 + a14*x2 + a15*x3
	}
}

// GemmSub computes C -= A*B for 4x4 row-major blocks. This is the update
// kernel of the block ILU factorization.
func GemmSub(a, b, c []float64) {
	_ = a[15]
	_ = b[15]
	_ = c[15]
	for i := 0; i < B; i++ {
		ai0, ai1, ai2, ai3 := a[i*B], a[i*B+1], a[i*B+2], a[i*B+3]
		c[i*B+0] -= ai0*b[0] + ai1*b[4] + ai2*b[8] + ai3*b[12]
		c[i*B+1] -= ai0*b[1] + ai1*b[5] + ai2*b[9] + ai3*b[13]
		c[i*B+2] -= ai0*b[2] + ai1*b[6] + ai2*b[10] + ai3*b[14]
		c[i*B+3] -= ai0*b[3] + ai1*b[7] + ai2*b[11] + ai3*b[15]
	}
}

// GemmSubN applies one pivot block A across a run of scheduled updates:
// for each u, in order, vals[dst[u]] -= A * vals[src[u]] (block windows of
// the flat value array). A is hoisted into registers once for the whole
// run — the batched form of GemmSub used by the ILU elimination, where one
// L_ik multiplies every U_kj of its update list. Per-update arithmetic and
// order match a GemmSub loop exactly, so results are bit-identical.
func GemmSubN(a, vals []float64, src, dst []int32) {
	_ = a[15]
	var ar [BB]float64
	copy(ar[:], a[:BB])
	for u := range src {
		b := vals[int(src[u])*BB : int(src[u])*BB+BB]
		c := vals[int(dst[u])*BB : int(dst[u])*BB+BB]
		for i := 0; i < B; i++ {
			ai0, ai1, ai2, ai3 := ar[i*B], ar[i*B+1], ar[i*B+2], ar[i*B+3]
			c[i*B+0] -= ai0*b[0] + ai1*b[4] + ai2*b[8] + ai3*b[12]
			c[i*B+1] -= ai0*b[1] + ai1*b[5] + ai2*b[9] + ai3*b[13]
			c[i*B+2] -= ai0*b[2] + ai1*b[6] + ai2*b[10] + ai3*b[14]
			c[i*B+3] -= ai0*b[3] + ai1*b[7] + ai2*b[11] + ai3*b[15]
		}
	}
}

// Gemm computes C = A*B for 4x4 row-major blocks.
func Gemm(a, b, c []float64) {
	_ = a[15]
	_ = b[15]
	_ = c[15]
	for i := 0; i < B; i++ {
		ai0, ai1, ai2, ai3 := a[i*B], a[i*B+1], a[i*B+2], a[i*B+3]
		c[i*B+0] = ai0*b[0] + ai1*b[4] + ai2*b[8] + ai3*b[12]
		c[i*B+1] = ai0*b[1] + ai1*b[5] + ai2*b[9] + ai3*b[13]
		c[i*B+2] = ai0*b[2] + ai1*b[6] + ai2*b[10] + ai3*b[14]
		c[i*B+3] = ai0*b[3] + ai1*b[7] + ai2*b[11] + ai3*b[15]
	}
}

// Copy copies one 4x4 block.
func Copy(dst, src []float64) {
	copy(dst[:BB], src[:BB])
}

// Zero clears one 4x4 block.
func Zero(dst []float64) {
	for i := 0; i < BB; i++ {
		dst[i] = 0
	}
}

// AddDiag adds s to the diagonal entries of the block.
func AddDiag(a []float64, s float64) {
	a[0] += s
	a[5] += s
	a[10] += s
	a[15] += s
}

// Invert inverts the 4x4 row-major block in place using Gauss-Jordan
// elimination with partial pivoting. It returns false if the block is
// numerically singular (pivot below tiny), in which case the block is left
// in an unspecified state. The paper's PETSc configuration pre-inverts the
// diagonal blocks inside the ILU routine; this is that kernel.
func Invert(a []float64) bool {
	const tiny = 1e-300
	var aug [B][2 * B]float64
	for i := 0; i < B; i++ {
		for j := 0; j < B; j++ {
			aug[i][j] = a[i*B+j]
		}
		aug[i][B+i] = 1
	}
	for col := 0; col < B; col++ {
		// Partial pivot.
		piv := col
		pv := abs(aug[col][col])
		for r := col + 1; r < B; r++ {
			if v := abs(aug[r][col]); v > pv {
				piv, pv = r, v
			}
		}
		if pv < tiny {
			return false
		}
		if piv != col {
			aug[piv], aug[col] = aug[col], aug[piv]
		}
		inv := 1 / aug[col][col]
		for j := 0; j < 2*B; j++ {
			aug[col][j] *= inv
		}
		for r := 0; r < B; r++ {
			if r == col {
				continue
			}
			f := aug[r][col]
			if f == 0 {
				continue
			}
			for j := 0; j < 2*B; j++ {
				aug[r][j] -= f * aug[col][j]
			}
		}
	}
	for i := 0; i < B; i++ {
		for j := 0; j < B; j++ {
			a[i*B+j] = aug[i][B+j]
		}
	}
	return true
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// MaxAbs returns the largest absolute entry of the block, used by tests and
// by diagonal-dominance diagnostics.
func MaxAbs(a []float64) float64 {
	m := 0.0
	for i := 0; i < BB; i++ {
		if v := abs(a[i]); v > m {
			m = v
		}
	}
	return m
}
