package blas4

import (
	"math/rand"
	"testing"
)

// GemvSubN over a column list must be bit-identical to a loop of GemvSub
// calls with the same block: the batched kernel hoists the block scalars
// but keeps the per-column expression and evaluation order unchanged, so
// exact equality is the correct assertion.
func TestGemvSubNBitIdenticalToLoop(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		a := randBlock(rng)
		n := 1 + rng.Intn(12)
		x := make([]float64, n*B)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		cols := make([]int32, 1+rng.Intn(8))
		for i := range cols {
			cols[i] = int32(rng.Intn(n))
		}
		y := randBlock(rng)[:B]
		want := append([]float64(nil), y...)
		for _, c := range cols {
			GemvSub(a, x[int(c)*B:int(c)*B+B], want)
		}
		GemvSubN(a, x, cols, y)
		for i := 0; i < B; i++ {
			if y[i] != want[i] {
				t.Fatalf("trial %d: GemvSubN[%d] = %v, loop of GemvSub = %v", trial, i, y[i], want[i])
			}
		}
	}
}

// GemmSubN over (src, dst) slot lists must be bit-identical to a loop of
// GemmSub calls reading and writing the same value array.
func TestGemmSubNBitIdenticalToLoop(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 30; trial++ {
		a := randBlock(rng)
		slots := 2 + rng.Intn(10)
		vals := make([]float64, slots*BB)
		for i := range vals {
			vals[i] = rng.NormFloat64()
		}
		nu := 1 + rng.Intn(6)
		src := make([]int32, nu)
		dst := make([]int32, nu)
		for u := range src {
			// Distinct src/dst per update, like the ILU elimination schedule
			// (the pivot row is never its own destination).
			src[u] = int32(rng.Intn(slots))
			dst[u] = int32(rng.Intn(slots))
			for dst[u] == src[u] {
				dst[u] = int32(rng.Intn(slots))
			}
		}
		want := append([]float64(nil), vals...)
		for u := range src {
			GemmSub(a, want[int(src[u])*BB:int(src[u])*BB+BB], want[int(dst[u])*BB:int(dst[u])*BB+BB])
		}
		GemmSubN(a, vals, src, dst)
		for i := range vals {
			if vals[i] != want[i] {
				t.Fatalf("trial %d: GemmSubN vals[%d] = %v, loop of GemmSub = %v", trial, i, vals[i], want[i])
			}
		}
	}
}
