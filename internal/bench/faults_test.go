package bench

import (
	"path/filepath"
	"strings"
	"testing"

	"fun3d/internal/prof"
)

// The faults artifact must report actual recovery: at least one restart,
// with nonzero recomputed-step and noise-time counters — otherwise the
// experiment silently degenerated into a fault-free run.
func TestFaultsArtifactReportsRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are slow")
	}
	var buf strings.Builder
	opts := quickOpts(&buf)
	dir := t.TempDir()
	opts.JSONDir = dir
	if err := Run("faults", opts); err != nil {
		t.Fatal(err)
	}
	art, err := prof.ReadArtifact(filepath.Join(dir, "BENCH_faults.json"))
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []string{"faults_injected", "fault_restarts", "fault_recomputed_steps", "fault_noise_us"} {
		if art.Counters[c] < 1 {
			t.Fatalf("artifact counter %s = %d, want >= 1 (counters: %v)", c, art.Counters[c], art.Counters)
		}
	}
	if art.Counters["fault_restarts"] != art.Counters["faults_injected"] {
		// Not required in general (a give-up run has faults > restarts),
		// but the experiment's budget is sized so every fault is recovered.
		t.Fatalf("unrecovered faults in the recorded run: %v", art.Counters)
	}
}

// The quick artifact — what CI's benchdiff gate compares — must carry the
// recovery counters from its fault-injected mini-run.
func TestQuickArtifactCarriesFaultCounters(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are slow")
	}
	var buf strings.Builder
	opts := quickOpts(&buf)
	dir := t.TempDir()
	opts.JSONDir = dir
	if err := Run("quick", opts); err != nil {
		t.Fatal(err)
	}
	art, err := prof.ReadArtifact(filepath.Join(dir, "BENCH_quick.json"))
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []string{"faults_injected", "fault_restarts", "fault_recomputed_steps", "fault_noise_us"} {
		if art.Counters[c] < 1 {
			t.Fatalf("quick artifact counter %s = %d, want >= 1 (counters: %v)", c, art.Counters[c], art.Counters)
		}
	}
}
