package bench

import (
	"fmt"

	"fun3d/internal/mesh"
	"fun3d/internal/mpisim"
	"fun3d/internal/perfmodel"
	"fun3d/internal/prof"
)

// scalingRanks is the Fig-9/10/11 campaign's rank axis: 64 -> 16384,
// spanning the paper's largest runs by two orders of magnitude.
var scalingRanks = []int{64, 256, 1024, 4096, 16384}

// scalingQuickRanks keeps the CI variant of the campaign to a few seconds.
var scalingQuickRanks = []int{16, 64}

// scaling runs the large-rank campaign behind the Fig-9/10/11 discussion:
// every rank count x {classical, pipelined} GMRES x {flat, tree,
// hierarchical} Allreduce, on an explicit fat-tree topology. Kernel rates
// are pinned synthetic values and the decomposition is natural blocks, so
// every reported number — virtual times, Allreduce shares, stage and hop
// counts — is an exact function of the schedule, never of this host. One
// mpisim.Artifact is built per rank count and shared across all six
// combinations (the structural state is the expensive part at 16k ranks).
func scaling(o *Options) error {
	header(o, "Scaling: ranks x GMRES variant x collective algorithm",
		"the >64-node regime where collectives dominate: hierarchical SMP-aware Allreduce flattens the latency term the flat model explodes on")

	rates := scalingRates()
	net, err := scalingNet(o)
	if err != nil {
		return err
	}

	rankCounts := scalingRanks
	spec := mesh.GenSpec{NX: 28, NY: 26, NZ: 24, Shuffle: true, Seed: 7}
	if o.Quick {
		rankCounts = scalingQuickRanks
		spec = mesh.SpecTiny()
	}
	m, err := mesh.Generate(spec)
	if err != nil {
		return err
	}

	variants := []string{"classical", "pipelined"}
	algos := []perfmodel.AllreduceAlgo{
		perfmodel.AllreduceFlat, perfmodel.AllreduceTree, perfmodel.AllreduceHier,
	}

	w := table(o)
	fmt.Fprintln(w, "ranks\tnodes\tgmres\tallreduce\ttime\tallreduce share\tstages/coll\thops/coll")
	agg := &prof.Metrics{}
	series := map[string][]float64{}
	for _, p := range rankCounts {
		art, err := mpisim.BuildArtifact(m, mpisim.ClusterSpec{Ranks: p, Natural: true, Seed: 11})
		if err != nil {
			return err
		}
		for _, variant := range variants {
			for _, algo := range algos {
				cfg := scalingConfig(o, p, rates, net)
				cfg.Net.Algo = algo
				cfg.Pipelined = variant == "pipelined"
				r, err := mpisim.SolveArtifact(art, cfg)
				if err != nil {
					return err
				}
				share := 0.0
				if tot := r.ComputeTime + r.PtPTime + r.AllreduceTime; tot > 0 {
					share = r.AllreduceTime / tot
				}
				stages, hops := 0.0, 0.0
				if r.Allreduces > 0 {
					stages = float64(r.AllreduceStages) / float64(r.Allreduces)
					hops = float64(r.AllreduceHops) / float64(r.Allreduces)
				}
				fmt.Fprintf(w, "%d\t%d\t%s\t%s\t%.4fs\t%.1f%%\t%.1f\t%.1f\n",
					p, net.Nodes(p), variant, algo, r.Time, 100*share, stages, hops)
				key := variant + "_" + algo.String()
				series["time_"+key] = append(series["time_"+key], r.Time)
				series["allreduce_share_"+key] = append(series["allreduce_share_"+key], share)
				series["stages_per_collective_"+key] = append(series["stages_per_collective_"+key], stages)
				series["hops_per_collective_"+key] = append(series["hops_per_collective_"+key], hops)
				agg.Merge(r.Metrics)
			}
		}
	}
	fmt.Fprintln(w, "(virtual seconds on pinned synthetic rates; identical numerics per GMRES variant across collective algorithms)")
	if err := w.Flush(); err != nil {
		return err
	}

	cfgOut := map[string]any{
		"rank_counts":    rankCounts,
		"ranks_per_node": net.RanksPerNode,
		"topology":       net.Topo.String(),
		"gmres_variants": variants,
		"allreduce":      []string{"flat", "tree", "hierarchical"},
		"cluster_steps":  1,
		"rates":          "synthetic (pinned)",
		"time_axis":      "virtual",
	}
	for k, v := range series {
		cfgOut[k] = v
	}
	return emit(o, "scaling", agg, m, cfgOut, nil)
}

// scalingRates are the campaign's pinned synthetic per-rank rates — the
// same machine-independent values the fault mini-runs use.
func scalingRates() perfmodel.Rates { return faultRates() }

// scalingNet is the campaign's fabric: the Stampede-like parameters with
// the fat-tree hop model (or Options.Topology's override) and the paper's
// 16 ranks per node.
func scalingNet(o *Options) (perfmodel.Network, error) {
	net := perfmodel.StampedeFatTree()
	net.RanksPerNode = 16
	if o.Topology != "" {
		topo, err := perfmodel.ParseTopology(o.Topology)
		if err != nil {
			return net, err
		}
		net.Topo = topo
	}
	if o.Placement != "" {
		place, err := perfmodel.ParsePlacement(o.Placement)
		if err != nil {
			return net, err
		}
		net.Place = place
	}
	return net, nil
}

// scalingConfig is one campaign run: fixed single-step work so all
// combinations are comparable, natural decomposition matching the shared
// artifact.
func scalingConfig(o *Options, ranks int, rates perfmodel.Rates, net perfmodel.Network) mpisim.Config {
	return mpisim.Config{
		Ranks:    ranks,
		Natural:  true,
		Rates:    rates,
		Net:      net,
		MaxSteps: 1,
		RelTol:   1e-30,
		CFL0:     o.CFL0,
		Seed:     11,
	}
}
