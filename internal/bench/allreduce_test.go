package bench

import (
	"math"
	"path/filepath"
	"strings"
	"testing"

	"fun3d/internal/mesh"
	"fun3d/internal/prof"
)

// floats coerces a JSON-roundtripped artifact Config entry ([]any of
// float64) back into a numeric slice.
func floats(t *testing.T, v any) []float64 {
	t.Helper()
	raw, ok := v.([]any)
	if !ok {
		t.Fatalf("config entry is %T, want []any", v)
	}
	out := make([]float64, len(raw))
	for i, x := range raw {
		f, ok := x.(float64)
		if !ok {
			t.Fatalf("config entry [%d] is %T, want float64", i, x)
		}
		out[i] = f
	}
	return out
}

// The acceptance criterion of the pipelined-GMRES work: at ≥64 simulated
// nodes the pipelined Allreduce time-share is strictly below classical,
// and the artifact records the share curves plus the per-iteration
// collective counts (pipelined ~1, classical ≥2).
func TestAllreduceScalingPipelinedWins(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster sweep is slow")
	}
	dir := t.TempDir()
	var buf strings.Builder
	o := Options{
		Out:          &buf,
		Quick:        true,
		SingleSpec:   mesh.SpecTiny(),
		ClusterSpec:  mesh.SpecTiny(),
		MaxThreads:   2,
		NodeCounts:   []int{4, 64},
		RanksPerNode: 1,
		ClusterSteps: 1,
		JSONDir:      dir,
	}
	if err := Run("allreduce-scaling", o); err != nil {
		t.Fatal(err)
	}

	art, err := prof.ReadArtifact(filepath.Join(dir, "BENCH_allreduce.json"))
	if err != nil {
		t.Fatal(err)
	}
	nodes := floats(t, art.Config["node_counts"])
	cShare := floats(t, art.Config["classical_share"])
	pShare := floats(t, art.Config["pipelined_share"])
	cIter := floats(t, art.Config["classical_allreduce_per_iter"])
	pIter := floats(t, art.Config["pipelined_allreduce_per_iter"])
	if len(nodes) != 2 || len(cShare) != 2 || len(pShare) != 2 || len(cIter) != 2 || len(pIter) != 2 {
		t.Fatalf("curve lengths: nodes=%d c=%d p=%d ci=%d pi=%d",
			len(nodes), len(cShare), len(pShare), len(cIter), len(pIter))
	}
	for i, n := range nodes {
		if n < 64 {
			continue
		}
		if pShare[i] >= cShare[i] {
			t.Fatalf("%v nodes: pipelined share %.3f not below classical %.3f",
				n, pShare[i], cShare[i])
		}
	}
	for i := range nodes {
		// Setup reductions (one per Newton step) put the pipelined rate a
		// hair above 1; classical CGS+refinement+norm sits at 2 or more.
		if pIter[i] < 1 || pIter[i] > 1.5 {
			t.Fatalf("%v nodes: pipelined %.2f collectives/iter, want ~1", nodes[i], pIter[i])
		}
		if cIter[i] < 2 {
			t.Fatalf("%v nodes: classical %.2f collectives/iter, want >= 2", nodes[i], cIter[i])
		}
	}
	// The recorded metrics are the pipelined run's: its per-iteration rate
	// must survive into the gated artifact rates.
	rate, ok := art.Rates["krylov_allreduce_per_gmres_iter"]
	if !ok {
		t.Fatalf("artifact rates missing krylov_allreduce_per_gmres_iter: %v", art.Rates)
	}
	if math.Abs(rate-pIter[len(pIter)-1]) > 1e-9 {
		t.Fatalf("gated rate %.4f != recorded curve point %.4f", rate, pIter[len(pIter)-1])
	}
	if !strings.Contains(buf.String(), "pipelined share") {
		t.Fatalf("table output missing:\n%s", buf.String())
	}
}
