package bench

import (
	"strings"
	"testing"

	"fun3d/internal/mesh"
)

func quickOpts(buf *strings.Builder) Options {
	return Options{
		Out:          buf,
		Quick:        true,
		SingleSpec:   mesh.SpecTiny(),
		ClusterSpec:  mesh.SpecTiny(),
		MaxThreads:   2,
		NodeCounts:   []int{1, 2},
		RanksPerNode: 2,
		ClusterSteps: 1,
	}
}

func TestExperimentsRegistry(t *testing.T) {
	names := Experiments()
	if len(names) != 21 {
		t.Fatalf("expected 21 experiments, got %v", names)
	}
	if err := Run("nonsense", Options{Out: &strings.Builder{}}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

// Every experiment must run to completion on a tiny setup and emit its
// header plus a non-empty table.
func TestAllExperimentsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are slow")
	}
	for _, name := range Experiments() {
		name := name
		t.Run(name, func(t *testing.T) {
			var buf strings.Builder
			if err := Run(name, quickOpts(&buf)); err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			out := buf.String()
			if !strings.Contains(out, "paper reference:") {
				t.Fatalf("%s: missing header:\n%s", name, out)
			}
			if len(strings.Split(out, "\n")) < 4 {
				t.Fatalf("%s: suspiciously short output:\n%s", name, out)
			}
			t.Logf("\n%s", out)
		})
	}
}
