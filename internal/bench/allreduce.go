package bench

import (
	"fmt"

	"fun3d/internal/mpisim"
	"fun3d/internal/prof"
)

// allreduceScaling compares classical and pipelined GMRES head-to-head on
// the Fig-10 axis: the share of virtual time spent in Allreduce as the node
// count grows. Classical Gram-Schmidt pays three to four collective
// latencies per inner iteration; the pipelined variant batches them into
// one, so its Allreduce share must fall strictly below the classical curve
// once the tree-latency term dominates (the paper's ≥64-node regime). The
// artifact carries both share curves plus the per-iteration collective
// counts the prof gate pins down.
func allreduceScaling(o *Options) error {
	header(o, "Allreduce scaling: classical vs pipelined GMRES",
		"classical CGS pays 3-4 collectives per Krylov iteration; the pipelined variant batches them into one, flattening the Fig-10 Allreduce share curve")
	env, err := newClusterEnv(o)
	if err != nil {
		return err
	}
	w := table(o)
	fmt.Fprintln(w, "nodes\tranks\tclassical share\tpipelined share\tclassical/iter\tpipelined/iter\titers(c/p)")

	share := func(r mpisim.Result) float64 {
		tot := r.ComputeTime + r.PtPTime + r.AllreduceTime
		if tot == 0 {
			return 0
		}
		return r.AllreduceTime / tot
	}
	perIter := func(r mpisim.Result) float64 {
		it := r.Metrics.Counter(prof.GMRESIters)
		if it == 0 {
			return 0
		}
		return float64(r.Metrics.Counter(prof.KrylovAllreduceCalls)) / float64(it)
	}

	var nodesOut []int
	var cShare, pShare, cIter, pIter []float64
	var last mpisim.Result
	for _, nodes := range o.NodeCounts {
		ranks := nodes * o.RanksPerNode
		rc, err := env.run(o, ranks, env.optim, nil, o.RanksPerNode,
			func(c *mpisim.Config) { c.Pipelined = false })
		if err != nil {
			return err
		}
		rp, err := env.run(o, ranks, env.optim, nil, o.RanksPerNode,
			func(c *mpisim.Config) { c.Pipelined = true })
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%d\t%d\t%.1f%%\t%.1f%%\t%.2f\t%.2f\t%d/%d\n",
			nodes, ranks, 100*share(rc), 100*share(rp), perIter(rc), perIter(rp),
			rc.LinearIters, rp.LinearIters)
		nodesOut = append(nodesOut, nodes)
		cShare = append(cShare, share(rc))
		pShare = append(pShare, share(rp))
		cIter = append(cIter, perIter(rc))
		pIter = append(pIter, perIter(rp))
		last = rp
	}
	fmt.Fprintln(w, "(virtual seconds; share = allreduce / (compute + p2p + allreduce))")
	if err := w.Flush(); err != nil {
		return err
	}
	cfg := clusterConfig(o, "pipelined, largest node count")
	cfg["node_counts"] = nodesOut
	cfg["classical_share"] = cShare
	cfg["pipelined_share"] = pShare
	cfg["classical_allreduce_per_iter"] = cIter
	cfg["pipelined_allreduce_per_iter"] = pIter
	return emit(o, "allreduce", last.Metrics, env.m, cfg, nil)
}
