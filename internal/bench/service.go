package bench

import (
	"context"
	"fmt"
	"sort"
	"time"

	"fun3d/internal/core"
	"fun3d/internal/mesh"
	"fun3d/internal/prof"
	"fun3d/internal/service"
)

// serviceExp measures the multi-solve server: a polar batch of jobs (one per
// angle of attack) pushed through engines of {1,2,4} concurrent solves x
// {1,2} threads per solve, all sharing one cached tiny-mesh artifact.
// Reported per combination: batch wall time, jobs/sec, and p50/p99
// end-to-end job latency (queueing included). In the artifact,
// service_jobs_per_sec is the machine-dependent headline while
// service_steps_per_job is exact — every job runs a fixed step count — so
// benchdiff can gate on the latter.
func serviceExp(o *Options) error {
	header(o, "Service: concurrent multi-solve throughput over a shared artifact",
		"no direct paper counterpart; extends the shared-memory study to a solver-as-a-service setting")

	// Always the tiny mesh: the sweep runs 6 engine configurations and the
	// point is scheduling behavior, not per-solve FLOPs.
	spec := mesh.SpecTiny()
	m, err := mesh.Generate(spec)
	if err != nil {
		return err
	}
	alphas := []float64{0, 1, 2, 3.06, 4, 5}
	maxSteps := 4
	if o.Quick {
		maxSteps = 2
	}

	agg := &prof.Metrics{}
	w := table(o)
	fmt.Fprintln(w, "solves\tthreads\tjobs\twall\tjobs/s\tp50\tp99")
	for _, solves := range []int{1, 2, 4} {
		for _, threads := range []int{1, 2} {
			cfg := core.OptimizedConfig(threads)
			cfg.SecondOrder = true
			cfg.Limiter = true
			res, err := runServiceBatch(spec, cfg, solves, alphas, maxSteps, agg)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "%d\t%d\t%d\t%v\t%.2f\t%v\t%v\n",
				solves, threads, len(alphas), res.wall.Round(time.Millisecond),
				float64(len(alphas))/res.wall.Seconds(),
				res.p50.Round(time.Millisecond), res.p99.Round(time.Millisecond))
		}
	}
	if err := w.Flush(); err != nil {
		return err
	}
	return emit(o, "service", agg, m, map[string]any{
		"jobs_per_batch": len(alphas),
		"max_steps":      maxSteps,
		"solve_counts":   []int{1, 2, 4},
		"thread_counts":  []int{1, 2},
	}, nil)
}

// batchResult summarizes one engine configuration's polar batch.
type batchResult struct {
	wall     time.Duration
	p50, p99 time.Duration
}

// runServiceBatch pushes one polar batch (one job per alpha, fixed step
// count, tolerance low enough that no job converges early) through a fresh
// engine and folds the Service kernel time and job/step counters into agg.
// The quick experiment reuses it for the CI mini-run.
func runServiceBatch(spec mesh.GenSpec, cfg core.Config, solves int, alphas []float64, maxSteps int, agg *prof.Metrics) (batchResult, error) {
	eng := service.NewEngine(service.EngineConfig{
		Mesh:            spec,
		Solver:          cfg,
		MaxConcurrent:   solves,
		QueueDepth:      len(alphas) + 1,
		DefaultMaxSteps: maxSteps,
	})
	defer eng.Close()
	// Pre-build the shared artifact so the batch clock times solves, not
	// mesh generation.
	if _, err := eng.Cache().Get(spec, cfg); err != nil {
		return batchResult{}, err
	}

	t0 := time.Now()
	jobs := make([]*service.Job, 0, len(alphas))
	for _, a := range alphas {
		j, err := eng.Submit(service.JobRequest{AlphaDeg: a, MaxSteps: maxSteps, RelTol: 1e-30})
		if err != nil {
			return batchResult{}, err
		}
		jobs = append(jobs, j)
	}
	steps := 0
	lats := make([]time.Duration, 0, len(jobs))
	for _, j := range jobs {
		if st := j.Wait(context.Background()); st != service.StateDone {
			_, msg, _, _ := j.Snapshot()
			return batchResult{}, fmt.Errorf("bench: job %s ended %s: %s", j.ID, st, msg)
		}
		_, _, result, _ := j.Snapshot()
		steps += result.Steps
		sub, _, fin := j.Times()
		lats = append(lats, fin.Sub(sub))
	}
	wall := time.Since(t0)

	agg.Add(prof.Service, wall)
	agg.Inc(prof.ServiceJobs, int64(len(jobs)))
	agg.Inc(prof.ServiceSolveSteps, int64(steps))

	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	n := len(lats)
	return batchResult{
		wall: wall,
		p50:  lats[n/2],
		p99:  lats[(n*99+99)/100-1],
	}, nil
}
