package bench

import (
	"fmt"
	"math/rand"
	"time"

	"fun3d/internal/flux"
	"fun3d/internal/mesh"
	"fun3d/internal/par"
	"fun3d/internal/partition"
	"fun3d/internal/perfmodel"
	"fun3d/internal/physics"
	"fun3d/internal/prof"
	"fun3d/internal/reorder"
	"fun3d/internal/sparse"
)

// kernelEnv is shared setup for the kernel-level experiments: an RCM-
// reordered mesh with a perturbed near-freestream state (so fluxes and
// Jacobians are non-degenerate), matching the solver's steady operation.
type kernelEnv struct {
	m    *mesh.Mesh
	m0   *mesh.Mesh // the original (pre-RCM, shuffled) mesh
	q    []float64
	qInf physics.State
}

func newKernelEnv(spec mesh.GenSpec) (*kernelEnv, error) {
	m0, err := mesh.Generate(spec)
	if err != nil {
		return nil, err
	}
	perm := reorder.RCM(reorder.Graph{Ptr: m0.AdjPtr, Adj: m0.Adj})
	m := m0.Permute(perm)
	qInf := physics.FreeStream(3.06)
	rng := rand.New(rand.NewSource(42))
	q := make([]float64, m.NumVertices()*4)
	for v := 0; v < m.NumVertices(); v++ {
		for c := 0; c < 4; c++ {
			q[v*4+c] = qInf[c] + 0.05*rng.NormFloat64()
		}
	}
	return &kernelEnv{m: m, m0: m0, q: q, qInf: qInf}, nil
}

// vsec converts measured seconds to a Duration for artifact bookkeeping.
func vsec(s float64) time.Duration { return time.Duration(s * float64(time.Second)) }

// minTime returns the fastest of reps timed runs of f, in seconds.
func minTime(reps int, f func()) float64 {
	f() // warm up
	best := 1e300
	for r := 0; r < reps; r++ {
		t0 := time.Now()
		f()
		if d := time.Since(t0).Seconds(); d < best {
			best = d
		}
	}
	return best
}

// fluxTime measures one Residual evaluation under the given configuration.
func (e *kernelEnv) fluxTime(pool *par.Pool, strategy flux.Strategy, cfg flux.Config, reps int) (float64, error) {
	nw := 1
	if pool != nil {
		nw = pool.Size()
	}
	part, err := flux.NewPartition(e.m, nw, strategy, 3)
	if err != nil {
		return 0, err
	}
	cfg.Strategy = strategy
	k := flux.NewKernels(e.m, 5, e.qInf, pool, part, cfg)
	q := e.q
	if cfg.SoANodeData {
		q = flux.AoSToSoA(e.q, e.m.NumVertices())
	}
	res := make([]float64, e.m.NumVertices()*4)
	return minTime(reps, func() { k.Residual(q, nil, nil, res) }), nil
}

// fig6a walks the flux-kernel optimization ladder. Two views are printed:
// the measured speedups at this machine's thread count, and a projection
// to the paper's 10-core node built from (a) single-core measurements of
// each code variant — layout, SIMD batching, prefetch are all measurable
// on one core — and (b) the measured replication/imbalance of our own
// partitioner, combined by the documented ThreadModel.
func fig6a(o *Options) error {
	header(o, "Fig 6a: flux kernel optimization ladder", "cumulative 20.6X at 10 cores/20 threads; data-layout +40%, SIMD +40%, prefetch +15%")
	env, err := newKernelEnv(o.SingleSpec)
	if err != nil {
		return err
	}
	pool := par.NewPool(o.MaxThreads)
	defer pool.Close()
	reps := 5
	if o.Quick {
		reps = 3
	}
	tm := perfmodel.PaperNode()
	part, err := flux.NewPartition(env.m, tm.Cores, flux.ReplicateMETIS, 3)
	if err != nil {
		return err
	}
	g := partition.FromMesh(env.m.AdjPtr, env.m.Adj, true)
	mlPart, err := partition.Multilevel(g, tm.Cores, partition.Options{Seed: 3})
	if err != nil {
		return err
	}
	qual := partition.Evaluate(g, mlPart, tm.Cores)

	type rung struct {
		name     string
		threaded bool
		cfg      flux.Config
	}
	rungs := []rung{
		{"sequential (SoA layout)", false, flux.Config{SoANodeData: true}},
		{"+threading (METIS owner-writes)", true, flux.Config{SoANodeData: true}},
		{"+AoS node data", true, flux.Config{}},
		{"+SIMD edge batching", true, flux.Config{SIMD: true}},
		{"+software prefetch", true, flux.Config{SIMD: true, Prefetch: true, PFDist: o.PFDist}},
	}
	w := table(o)
	fmt.Fprintf(w, "configuration\tmeasured (%dT)\tspeedup\tprojected %d-core\n", o.MaxThreads, tm.Cores)
	baseT := 0.0
	base1 := 0.0
	lastT := 0.0
	rungMS := map[string]any{}
	for i, r := range rungs {
		strategy, p := flux.Sequential, (*par.Pool)(nil)
		if r.threaded && o.MaxThreads > 1 {
			strategy, p = flux.ReplicateMETIS, pool
		}
		t, err := env.fluxTime(p, strategy, r.cfg, reps)
		if err != nil {
			return err
		}
		// Single-core time of this code variant (layout/SIMD/prefetch
		// effects are per-thread and measurable here).
		t1, err := env.fluxTime(nil, flux.Sequential, r.cfg, reps)
		if err != nil {
			return err
		}
		if i == 0 {
			baseT = t
			base1 = t1
		}
		proj := t1 // sequential rung
		if r.threaded {
			proj = tm.Compute(t1, tm.Cores, part.Replication, qual.Imbalance)
		}
		fmt.Fprintf(w, "%s\t%.3fms\t%.2fX\t%.1fX\n", r.name, 1e3*t, baseT/t, base1/proj)
		lastT = t
		rungMS[r.name] = 1e3 * t
	}
	fmt.Fprintf(w, "(projection: T1/(threads) x (1+%.1f%% replication) x %.2f imbalance)\n",
		100*part.Replication, qual.Imbalance)
	if err := w.Flush(); err != nil {
		return err
	}
	// Artifact: the fully-optimized rung's flux time; the whole ladder
	// rides in config.
	met := &prof.Metrics{}
	met.Add(prof.Flux, vsec(lastT))
	met.Inc(prof.FluxEdges, int64(env.m.NumEdges()))
	return emit(o, "fig6a", met, env.m, map[string]any{
		"threads": o.MaxThreads, "rungs_ms": rungMS,
	}, map[string]float64{"cumulative_speedup": 20.6})
}

// fig6b compares the threading strategies across a core sweep: measured on
// this machine, then projected to the paper's node from the
// machine-independent decomposition metrics (replication and imbalance per
// thread count — computed by our partitioner) plus the measured atomic and
// coloring penalties.
func fig6b(o *Options) error {
	header(o, "Fig 6b: flux kernel scaling by threading strategy", "METIS > replication(natural) > atomics in absolute terms; METIS and atomics scale near-linearly; natural replication hits 41% at 20 threads vs 4% for METIS")
	env, err := newKernelEnv(o.SingleSpec)
	if err != nil {
		return err
	}
	reps := 5
	if o.Quick {
		reps = 3
	}
	seqT, err := env.fluxTime(nil, flux.Sequential, flux.Config{}, reps)
	if err != nil {
		return err
	}
	w := table(o)
	bestT := seqT
	if o.MaxThreads > 1 {
		fmt.Fprintln(w, "measured on this machine:")
		fmt.Fprintln(w, "threads\tatomic\treplicate-natural\treplicate-METIS\tcolored")
		for _, nw := range threadSweep(o.MaxThreads) {
			pool := par.NewPool(nw)
			row := fmt.Sprintf("%d", nw)
			for _, s := range []flux.Strategy{flux.Atomic, flux.ReplicateNatural, flux.ReplicateMETIS, flux.Colored} {
				t, err := env.fluxTime(pool, s, flux.Config{}, reps)
				if err != nil {
					pool.Close()
					return err
				}
				if s == flux.ReplicateMETIS && t < bestT {
					bestT = t
				}
				row += fmt.Sprintf("\t%.2fX", seqT/t)
			}
			fmt.Fprintln(w, row)
			pool.Close()
		}
	}

	// Single-core penalties of the conflict-handling mechanisms.
	onePool := par.NewPool(1)
	defer onePool.Close()
	atomicT, err := env.fluxTime(onePool, flux.Atomic, flux.Config{}, reps)
	if err != nil {
		return err
	}
	coloredT, err := env.fluxTime(onePool, flux.Colored, flux.Config{}, reps)
	if err != nil {
		return err
	}
	atomicPen := atomicT / seqT
	coloredPen := coloredT / seqT

	tm := perfmodel.PaperNode()
	g := partition.FromMesh(env.m.AdjPtr, env.m.Adj, true)
	g0 := partition.FromMesh(env.m0.AdjPtr, env.m0.Adj, true)
	fmt.Fprintf(w, "projected on a %d-core node (speedup vs sequential):\n", tm.Cores)
	fmt.Fprintln(w, "threads\tatomic\tnatural(orig order)\tnatural(RCM)\treplicate-METIS\tcolored\trepl orig/RCM/METIS")
	for _, nw := range []int{1, 2, 4, 8, tm.Cores} {
		natOrigQ := partition.Evaluate(g0, partition.Natural(g0, nw), nw)
		natQ := partition.Evaluate(g, partition.Natural(g, nw), nw)
		mlP, err := partition.Multilevel(g, nw, partition.Options{Seed: 3})
		if err != nil {
			return err
		}
		mlQ := partition.Evaluate(g, mlP, nw)
		tAtomic := tm.Compute(seqT*perfmodel.AtomicPenalty(atomicPen, nw), nw, 0, 1)
		tNatOrig := tm.Compute(seqT, nw, natOrigQ.Replication, natOrigQ.Imbalance)
		tNat := tm.Compute(seqT, nw, natQ.Replication, natQ.Imbalance)
		tMETIS := tm.Compute(seqT, nw, mlQ.Replication, mlQ.Imbalance)
		// Coloring loses spatial locality as concurrency grows (the
		// paper's reason for rejecting it); a single core cannot measure
		// that, so the projection adds a documented qualitative
		// degradation of 5%/thread on top of the measured penalty.
		tColored := tm.Compute(seqT*coloredPen*(1+0.05*float64(nw-1)), nw, 0, 1.05)
		fmt.Fprintf(w, "%d\t%.2fX\t%.2fX\t%.2fX\t%.2fX\t%.2fX\t%.0f%%/%.0f%%/%.0f%%\n",
			nw, seqT/tAtomic, seqT/tNatOrig, seqT/tNat, seqT/tMETIS, seqT/tColored,
			100*natOrigQ.Replication, 100*natQ.Replication, 100*mlQ.Replication)
	}
	fmt.Fprintf(w, "(atomic penalty %.2fx and coloring penalty %.2fx measured single-core)\n",
		atomicPen, coloredPen)

	// The paper's 41%-vs-4% replication contrast assumes natural splitting
	// of the ORIGINAL (unreordered) numbering; after RCM, natural blocks
	// are strong. Report both orderings at the paper's 20 threads.
	natOrig := partition.Evaluate(g0, partition.Natural(g0, tm.Cores*2), tm.Cores*2)
	natRCM := partition.Evaluate(g, partition.Natural(g, tm.Cores*2), tm.Cores*2)
	ml20, err := partition.Multilevel(g, tm.Cores*2, partition.Options{Seed: 3})
	if err != nil {
		return err
	}
	ml20Q := partition.Evaluate(g, ml20, tm.Cores*2)
	fmt.Fprintf(w, "replication at 20 threads (paper: natural 41%%, METIS 4%%): natural/original-order %.0f%%, natural/RCM %.0f%%, multilevel %.0f%%\n",
		100*natOrig.Replication, 100*natRCM.Replication, 100*ml20Q.Replication)
	if err := w.Flush(); err != nil {
		return err
	}
	met := &prof.Metrics{}
	met.Add(prof.Flux, vsec(bestT))
	met.Inc(prof.FluxEdges, int64(env.m.NumEdges()))
	return emit(o, "fig6b", met, env.m, map[string]any{
		"threads": o.MaxThreads, "seq_ms": 1e3 * seqT,
		"atomic_penalty": atomicPen, "colored_penalty": coloredPen,
	}, map[string]float64{"natural_replication": 0.41, "metis_replication": 0.04})
}

func threadSweep(maxT int) []int {
	var out []int
	for t := 1; t < maxT; t *= 2 {
		out = append(out, t)
	}
	return append(out, maxT)
}

// jacobianFor builds the first-order Jacobian with a pseudo-time shift for
// the recurrence benchmarks.
func (e *kernelEnv) jacobianFor() (*sparse.BSR, error) {
	part, err := flux.NewPartition(e.m, 1, flux.Sequential, 0)
	if err != nil {
		return nil, err
	}
	k := flux.NewKernels(e.m, 5, e.qInf, nil, part, flux.Config{})
	a := sparse.NewBSRFromAdj(e.m.AdjPtr, e.m.Adj)
	k.Jacobian(e.q, a)
	dt := make([]float64, e.m.NumVertices())
	for i := range dt {
		dt[i] = 0.01
	}
	flux.AddPseudoTimeTerm(a, e.m.Vol, dt)
	return a, nil
}

// fig7a compares scheduling strategies for ILU and TRSV at full threads.
func fig7a(o *Options) error {
	header(o, "Fig 7a: ILU and TRSV optimization", "ILU 9.4X, TRSV 3.2X at 10 cores (20 threads); P2P beats level scheduling")
	env, err := newKernelEnv(o.SingleSpec)
	if err != nil {
		return err
	}
	a, err := env.jacobianFor()
	if err != nil {
		return err
	}
	pat, err := sparse.SymbolicILU(a, 0)
	if err != nil {
		return err
	}
	reps := 5
	if o.Quick {
		reps = 3
	}
	pool := par.NewPool(o.MaxThreads)
	defer pool.Close()

	f, _ := sparse.NewFactorPattern(pat)
	iluSeq := minTime(reps, func() { must(f.FactorizeILU(a)) })
	n := a.N * sparse.B
	b := make([]float64, n)
	x := make([]float64, n)
	for i := range b {
		b[i] = float64(i%7) - 3
	}
	trsvSeq := minTime(reps, func() { f.Solve(b, x) })

	ls := sparse.NewLevelSchedule(f.M)
	iluLvl := minTime(reps, func() { must(f.FactorizeILULevel(pool, ls, a)) })
	trsvLvl := minTime(reps, func() { f.SolveLevel(pool, ls, b, x) })

	ps := sparse.NewP2PSchedule(f.M, pool.Size())
	iluP2P := minTime(reps, func() { must(f.FactorizeILUP2P(pool, ps, a)) })
	trsvP2P := minTime(reps, func() { f.SolveP2P(pool, ps, b, x) })

	w := table(o)
	fmt.Fprintf(w, "measured (%d threads):\n", pool.Size())
	fmt.Fprintln(w, "kernel\tsequential\tlevel-sched\tP2P-sparse")
	fmt.Fprintf(w, "ILU\t1.00X (%.2fms)\t%.2fX\t%.2fX\n", 1e3*iluSeq, iluSeq/iluLvl, iluSeq/iluP2P)
	fmt.Fprintf(w, "TRSV\t1.00X (%.2fms)\t%.2fX\t%.2fX\n", 1e3*trsvSeq, trsvSeq/trsvLvl, trsvSeq/trsvP2P)

	// Projection to the paper's node from the measured single-core times,
	// the DAG parallelism, the wavefront/wait counts, and the measured
	// single-core STREAM bandwidth.
	tm := perfmodel.PaperNode()
	stream1 := perfmodel.StreamTriad(nil, 1<<22)
	parl := sparse.DAGParallelism(f.M)
	nnz := f.M.NNZBlocks()
	trsvBytes := float64(nnz*(sparse.BB*8+4) + 3*n*8)
	iluBytes := 2 * trsvBytes // factor reads and writes the blocks
	nLevels := ls.NumLevels()
	t := tm.Cores
	psProj := sparse.NewP2PSchedule(f.M, t) // wait counts at the projected width
	projILULvl := tm.Recurrence(iluSeq, iluBytes, stream1, t, parl, nLevels)
	projILUP2P := tm.Recurrence(iluSeq, iluBytes, stream1, t, parl, psProj.NumWaits()/64)
	projTRSVLvl := tm.Recurrence(trsvSeq, trsvBytes, stream1, t, parl, 2*nLevels)
	projTRSVP2P := tm.Recurrence(trsvSeq, trsvBytes, stream1, t, parl, psProj.NumWaits()/64)
	fmt.Fprintf(w, "projected on a %d-core node:\n", t)
	fmt.Fprintf(w, "ILU\t1.00X\t%.2fX\t%.2fX\n", iluSeq/projILULvl, iluSeq/projILUP2P)
	fmt.Fprintf(w, "TRSV\t1.00X\t%.2fX\t%.2fX\n", trsvSeq/projTRSVLvl, trsvSeq/projTRSVP2P)
	fmt.Fprintf(w, "(forward DAG: %d levels, parallelism %.0fX, %d p2p waits at %d threads)\n",
		nLevels, parl, psProj.NumWaits(), t)
	if err := w.Flush(); err != nil {
		return err
	}
	// Artifact: the P2P (best) variant's times with the block and byte
	// counts behind the bandwidth columns; the sequential/level times ride
	// in config.
	met := &prof.Metrics{}
	met.Add(prof.ILU, vsec(iluP2P))
	met.Inc(prof.ILUBlocks, int64(nnz))
	met.AddBytes(prof.ILU, int64(iluBytes))
	met.Add(prof.TRSV, vsec(trsvP2P))
	met.Inc(prof.TRSVBlocks, int64(nnz))
	met.AddBytes(prof.TRSV, int64(trsvBytes))
	return emit(o, "fig7a", met, env.m, map[string]any{
		"threads": pool.Size(), "ilu_seq_ms": 1e3 * iluSeq, "trsv_seq_ms": 1e3 * trsvSeq,
		"ilu_level_ms": 1e3 * iluLvl, "trsv_level_ms": 1e3 * trsvLvl,
		"dag_parallelism": parl, "levels": nLevels,
	}, map[string]float64{"ilu_speedup": 9.4, "trsv_speedup": 3.2})
}

// fig7b reports achieved TRSV/ILU bandwidth vs cores against STREAM.
func fig7b(o *Options) error {
	header(o, "Fig 7b: recurrence bandwidth vs cores", "TRSV reaches 94% of STREAM at 10 cores and saturates beyond ~4 cores")
	env, err := newKernelEnv(o.SingleSpec)
	if err != nil {
		return err
	}
	a, err := env.jacobianFor()
	if err != nil {
		return err
	}
	pat, err := sparse.SymbolicILU(a, 0)
	if err != nil {
		return err
	}
	f, _ := sparse.NewFactorPattern(pat)
	must(f.FactorizeILU(a))
	n := a.N * sparse.B
	b := make([]float64, n)
	x := make([]float64, n)
	for i := range b {
		b[i] = float64(i%5) - 2
	}
	// TRSV traffic: every factor block is read once (value + column index)
	// and the solution/rhs vectors stream ~3 times.
	nnz := f.M.NNZBlocks()
	trsvBytes := float64(nnz*(sparse.BB*8+4) + 3*n*8)
	reps := 5
	if o.Quick {
		reps = 3
	}
	w := table(o)
	measP2P, measStream := 0.0, 0.0
	if o.MaxThreads > 1 {
		fmt.Fprintln(w, "measured on this machine:")
		fmt.Fprintln(w, "threads\tTRSV(level)\tTRSV(p2p)\tTRSV p2p %STREAM\tSTREAM")
		for _, nw := range threadSweep(o.MaxThreads) {
			pool := par.NewPool(nw)
			stream := perfmodel.StreamTriad(pool, 1<<22)
			ls := sparse.NewLevelSchedule(f.M)
			ps := sparse.NewP2PSchedule(f.M, nw)
			tLvl := minTime(reps, func() { f.SolveLevel(pool, ls, b, x) })
			tP2P := minTime(reps, func() { f.SolveP2P(pool, ps, b, x) })
			fmt.Fprintf(w, "%d\t%.2f GB/s\t%.2f GB/s\t%.0f%%\t%.2f GB/s\n",
				nw, trsvBytes/tLvl/1e9, trsvBytes/tP2P/1e9,
				100*trsvBytes/tP2P/stream, stream/1e9)
			measP2P, measStream = tP2P, stream
			pool.Close()
		}
	}

	// Projection: achieved bandwidth = bytes / T(t), where T(t) follows the
	// ThreadModel recurrence (compute bound / t until the bandwidth wall at
	// STREAM(t) = stream1 * bwSpeedup(t)); utilization approaches the
	// paper's 94% as compute time hides under the memory wall.
	trsvSeq := minTime(reps, func() { f.Solve(b, x) })
	stream1 := perfmodel.StreamTriad(nil, 1<<22)
	tm := perfmodel.PaperNode()
	ls := sparse.NewLevelSchedule(f.M)
	ps := sparse.NewP2PSchedule(f.M, tm.Cores)
	parl := sparse.DAGParallelism(f.M)
	fmt.Fprintf(w, "projected on a %d-core node (1-core STREAM %.2f GB/s):\n", tm.Cores, stream1/1e9)
	fmt.Fprintln(w, "threads\tTRSV(level)\tTRSV(p2p)\tTRSV p2p %STREAM(t)")
	for _, nw := range []int{1, 2, 4, 8, tm.Cores} {
		tLvl := tm.Recurrence(trsvSeq, trsvBytes, stream1, nw, parl, 2*ls.NumLevels())
		tP2P := tm.Recurrence(trsvSeq, trsvBytes, stream1, nw, parl, ps.NumWaits()/64)
		streamT := stream1 * perfmodel.BwSpeedup(tm, nw)
		fmt.Fprintf(w, "%d\t%.2f GB/s\t%.2f GB/s\t%.0f%%\n",
			nw, trsvBytes/tLvl/1e9, trsvBytes/tP2P/1e9, 100*trsvBytes/tP2P/streamT)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	// Artifact: the best measured TRSV (the bandwidth figure falls out of
	// seconds+bytes); single-threaded hosts record the sequential solve.
	tBest := measP2P
	if tBest == 0 {
		tBest = trsvSeq
	}
	met := &prof.Metrics{}
	met.Add(prof.TRSV, vsec(tBest))
	met.Inc(prof.TRSVBlocks, int64(nnz))
	met.AddBytes(prof.TRSV, int64(trsvBytes))
	return emit(o, "fig7b", met, env.m, map[string]any{
		"threads": o.MaxThreads, "stream_gbs": measStream / 1e9, "stream1_gbs": stream1 / 1e9,
	}, map[string]float64{"trsv_stream_fraction": 0.94})
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
