package bench

import (
	"fmt"

	"fun3d/internal/mesh"
	"fun3d/internal/mpisim"
	"fun3d/internal/perfmodel"
)

// faultRates are fixed synthetic per-unit kernel costs, deliberately NOT
// measured on the host: the injected crash schedule is a function of the
// virtual-time trajectory, so the recovery counters (faults, restarts,
// recomputed steps) reproduce across machines only when the rates are
// pinned. Every cost model downstream is plain IEEE arithmetic.
func faultRates() perfmodel.Rates {
	return perfmodel.Rates{
		FluxPerEdge:  150e-9,
		GradPerEdge:  40e-9,
		JacPerEdge:   250e-9,
		ILUPerBlock:  30e-9,
		TRSVPerBlock: 8e-9,
		VecPerElem:   1e-9,
		Threads:      1,
	}
}

// faults runs the fault-injection experiment: time-to-solution and
// Allreduce share versus straggler-noise amplitude, and checkpoint/restart
// recovery under scheduled rank crashes, each for classical and pipelined
// GMRES. The noise axis extends the Fig-10 story — stragglers park the
// other ranks in the collective rendezvous, so OS noise surfaces as
// Allreduce time, and the pipelined variant's single collective per
// iteration absorbs it better. The crash axis exercises the supervisor:
// every faulted run must converge along the bit-identical residual
// trajectory of its fault-free twin, just later.
func faults(o *Options) error {
	header(o, "Faults: straggler noise and checkpoint/restart recovery",
		"extends Fig 10: noise inflates the Allreduce share; crashes+recovery trade checkpoint replay for time-to-solution")
	m, err := mesh.Generate(o.ClusterSpec)
	if err != nil {
		return err
	}
	ranks := 8
	steps := 8
	if o.Quick {
		ranks = 4
		steps = 6
	}
	net := perfmodel.Stampede()
	net.RanksPerNode = o.RanksPerNode

	run := func(pipelined bool, fc mpisim.FaultConfig) (mpisim.Result, error) {
		return mpisim.Solve(m, mpisim.Config{
			Ranks:     ranks,
			Rates:     faultRates(),
			Net:       net,
			MaxSteps:  steps,
			RelTol:    1e-30, // fixed work: every run does all `steps` steps
			CFL0:      o.CFL0,
			Seed:      11,
			Pipelined: pipelined,
			Faults:    fc,
		})
	}
	share := func(r mpisim.Result) float64 {
		tot := r.ComputeTime + r.PtPTime + r.AllreduceTime
		if tot == 0 {
			return 0
		}
		return r.AllreduceTime / tot
	}

	w := table(o)
	fmt.Fprintln(w, "gmres\tnoise\tmtbf\ttime\tallreduce share\tfaults\trestarts\trecomputed")
	noiseLevels := []float64{0, 0.25, 1.0}
	variants := []struct {
		name      string
		pipelined bool
	}{{"classical", false}, {"pipelined", true}}

	cfg := map[string]any{
		"ranks":          ranks,
		"steps":          steps,
		"ranks_per_node": o.RanksPerNode,
		"fault_seed":     uint64(42),
		"noise_levels":   noiseLevels,
		"rates":          "fixed synthetic (machine-independent schedule)",
		"time_axis":      "virtual",
		"recorded_run":   "pipelined, crashes at mtbf=T/4 with noise 0.25",
	}
	var recorded mpisim.Result
	for _, v := range variants {
		var times, shares []float64
		var cleanTime float64
		for _, noise := range noiseLevels {
			r, err := run(v.pipelined, mpisim.FaultConfig{Seed: 42, Noise: noise})
			if err != nil {
				return err
			}
			if noise == 0 {
				cleanTime = r.Time
			}
			times = append(times, r.Time)
			shares = append(shares, share(r))
			fmt.Fprintf(w, "%s\t%.2f\t-\t%.3fs\t%.1f%%\t%d\t%d\t%d\n",
				v.name, noise, r.Time, 100*share(r), r.FaultsInjected, r.Restarts, r.RecomputedSteps)
		}
		// Crash axis: MTBF as fractions of the fault-free time-to-solution,
		// so the schedule guarantees multiple failures per run.
		var mtbfs, crashTimes []float64
		var restarts, recomputed []int
		for _, frac := range []float64{0.5, 0.25} {
			mtbf := cleanTime * frac
			r, err := run(v.pipelined, mpisim.FaultConfig{Seed: 42, Noise: 0.25, MTBF: mtbf})
			if err != nil {
				return err
			}
			mtbfs = append(mtbfs, mtbf)
			crashTimes = append(crashTimes, r.Time)
			restarts = append(restarts, r.Restarts)
			recomputed = append(recomputed, r.RecomputedSteps)
			fmt.Fprintf(w, "%s\t0.25\t%.4fs\t%.3fs\t%.1f%%\t%d\t%d\t%d\n",
				v.name, mtbf, r.Time, 100*share(r), r.FaultsInjected, r.Restarts, r.RecomputedSteps)
			if v.pipelined && frac == 0.25 {
				recorded = r
			}
		}
		cfg[v.name+"_noise_time"] = times
		cfg[v.name+"_noise_allreduce_share"] = shares
		cfg[v.name+"_mtbf"] = mtbfs
		cfg[v.name+"_mtbf_time"] = crashTimes
		cfg[v.name+"_mtbf_restarts"] = restarts
		cfg[v.name+"_mtbf_recomputed_steps"] = recomputed
	}
	fmt.Fprintln(w, "(virtual seconds; identical residual histories per GMRES variant across every row)")
	if err := w.Flush(); err != nil {
		return err
	}
	return emit(o, "faults", recorded.Metrics, m, cfg, nil)
}
