package bench

import (
	"fmt"
	"math/rand"

	"fun3d/internal/flux"
	"fun3d/internal/mesh"
	"fun3d/internal/par"
	"fun3d/internal/perfmodel"
	"fun3d/internal/physics"
	"fun3d/internal/prof"
	"fun3d/internal/reorder"
)

// locality is the cache-blocking experiment behind the `+fused` ladder
// rung: vertex orderings (natural vs RCM vs Morton vs Hilbert), the edge
// tile-size sweep, and the fused single-sweep residual pipeline against
// the three-sweep Gradient/Limiter/Residual path, in both wall-clock and
// modeled bytes per edge. The artifact (BENCH_locality.json) records the
// full comparison; its residual_bytes_per_edge rate is what CI gates on.
func locality(o *Options) error {
	header(o, "Locality: SFC reordering + cache-blocked fused residual",
		"Sulyok et al.: sparse tiling with redundant halo compute plus space-filling-curve reordering turns the repeated edge streams of multi-pass kernels into cache hits")
	m0, err := mesh.Generate(o.SingleSpec)
	if err != nil {
		return err
	}
	reps := 5
	if o.Quick {
		reps = 3
	}
	var pool *par.Pool
	strategy := flux.Sequential
	nw := 1
	if o.MaxThreads > 1 {
		nw = o.MaxThreads
		pool = par.NewPool(nw)
		defer pool.Close()
		strategy = flux.ReplicateMETIS
	}
	qInf := physics.FreeStream(3.06)
	mkState := func(m *mesh.Mesh) []float64 {
		rng := rand.New(rand.NewSource(42))
		q := make([]float64, m.NumVertices()*4)
		for v := 0; v < m.NumVertices(); v++ {
			for c := 0; c < 4; c++ {
				q[v*4+c] = qInf[c] + 0.05*rng.NormFloat64()
			}
		}
		return q
	}
	mkKern := func(m *mesh.Mesh, tileEdges int) (*flux.Kernels, error) {
		part, err := flux.NewPartition(m, nw, strategy, 3)
		if err != nil {
			return nil, err
		}
		cfg := flux.Config{Strategy: strategy, SIMD: true, Prefetch: true,
			PFDist: o.PFDist, TileEdges: tileEdges}
		return flux.NewKernels(m, 5, qInf, pool, part, cfg), nil
	}
	const kVenk = 5.0
	fusedTime := func(k *flux.Kernels, q []float64) float64 {
		res := make([]float64, len(q))
		return minTime(reps, func() { k.ResidualFused(q, res, kVenk, false) })
	}
	// 1. Vertex orderings: locality metrics and the fused sweep they buy.
	g := reorder.Graph{Ptr: m0.AdjPtr, Adj: m0.Adj}
	w := table(o)
	fmt.Fprintf(w, "ordering\tbandwidth\tprofile\tfused residual (%dT)\n", nw)
	orderings := []reorder.Kind{reorder.KindNatural, reorder.KindRCM, reorder.KindMorton, reorder.KindHilbert}
	orderMS := map[string]any{}
	var rcmMesh *mesh.Mesh
	for _, kind := range orderings {
		perm, err := reorder.ByKind(kind, g, m0.Coords)
		if err != nil {
			return err
		}
		m := m0
		if perm != nil {
			m = m0.Permute(perm)
		}
		if kind == reorder.KindRCM {
			rcmMesh = m
		}
		k, err := mkKern(m, 0)
		if err != nil {
			return err
		}
		t := fusedTime(k, mkState(m))
		fmt.Fprintf(w, "%v\t%d\t%d\t%.3fms\n", kind, reorder.Bandwidth(g, perm), reorder.Profile(g, perm), 1e3*t)
		orderMS[kind.String()] = 1e3 * t
	}
	if err := w.Flush(); err != nil {
		return err
	}

	// 2. Tile-size sweep on the RCM mesh (the solver default ordering).
	// The top size exceeds half the edge count on Mesh-C', so the sweep
	// includes the near-degenerate 1-2 tile cases — on a host whose LLC
	// holds the whole mesh those are the honest "LLC-sized" tiles.
	q := mkState(rcmMesh)
	ne := rcmMesh.NumEdges()
	tiles := []int{1 << 12, 1 << 14, 1 << 15, 1 << 17, 1 << 18}
	if o.Quick {
		tiles = []int{1 << 10, 1 << 12, 1 << 14}
	}
	w = table(o)
	fmt.Fprintln(w, "edges/tile\ttiles\treplication\tfused residual\tmodeled B/edge")
	tileMS := map[string]any{}
	bestTile, bestT := 0, 1e300
	for _, te := range tiles {
		k, err := mkKern(rcmMesh, te)
		if err != nil {
			return err
		}
		t := fusedTime(k, q)
		fb, gb := k.ResidualFusedBytes()
		tl := k.Tiling()
		fmt.Fprintf(w, "%d\t%d\t%.3f\t%.3fms\t%.0f\n",
			te, tl.NumTiles(), tl.Replication(), 1e3*t, float64(fb+gb)/float64(ne))
		tileMS[fmt.Sprint(te)] = 1e3 * t
		if t < bestT {
			bestT, bestTile = t, te
		}
	}
	if err := w.Flush(); err != nil {
		return err
	}

	// 3. Fused vs three-sweep at the best tile size, measured as
	// interleaved min-of-N pairs so VM clock drift between the two
	// measurement blocks cannot bias either side, plus the prefetch
	// lookahead sanity sweep.
	k, err := mkKern(rcmMesh, bestTile)
	if err != nil {
		return err
	}
	nv := rcmMesh.NumVertices()
	grad3 := make([]float64, nv*12)
	phi3 := make([]float64, nv*4)
	res3 := make([]float64, nv*4)
	resF := make([]float64, nv*4)
	fusedT, unfusedT := 1e300, 1e300
	for r := 0; r < 2*reps; r++ {
		if t := minTime(1, func() { k.ResidualFused(q, resF, kVenk, false) }); t < fusedT {
			fusedT = t
		}
		if t := minTime(1, func() {
			k.Gradient(q, grad3)
			k.Limiter(q, grad3, phi3, kVenk)
			k.Residual(q, grad3, phi3, res3)
		}); t < unfusedT {
			unfusedT = t
		}
	}
	fb, gb := k.ResidualFusedBytes()
	fusedBPE := float64(fb+gb) / float64(ne)
	unfusedBPE := float64(k.ResidualBytes(true, true)+k.GradientBytes()) / float64(ne)
	fmt.Fprintf(o.Out, "   fused %0.3fms vs three-sweep %0.3fms: %.2fX wall-clock, %.0f vs %.0f B/edge (%.2fX fewer)\n",
		1e3*fusedT, 1e3*unfusedT, unfusedT/fusedT, fusedBPE, unfusedBPE, unfusedBPE/fusedBPE)

	// 4. Where the traffic win lands in wall-clock: on a host whose LLC
	// holds the whole mesh (this VM: 260 MB L3 vs a ~25 MB Mesh-C'
	// working set) the streams the fusion eliminates were already cache
	// hits, and at one core the kernels are compute-bound — measured
	// fused/three-sweep is a dead heat there. The bandwidth-bound regime
	// the paper's compiled kernels occupy (time ∝ bytes moved) is
	// projected from the modeled traffic and the host's measured STREAM
	// rate, the same convention as the Fig 6b/8a projections (see
	// EXPERIMENTS.md "Known deviations").
	streamBW := perfmodel.StreamTriad(pool, 1<<22)
	projFusedMS := 1e3 * float64(fb+gb) / streamBW
	projUnfusedMS := 1e3 * unfusedBPE * float64(ne) / streamBW
	fmt.Fprintf(o.Out, "   host STREAM %.1f GB/s; bandwidth-bound projection: fused %.1fms vs three-sweep %.1fms (%.2fX)\n",
		streamBW/1e9, projFusedMS, projUnfusedMS, projUnfusedMS/projFusedMS)

	// 5. Staged inner-tile-size sweep: the `+staged` rung subdivides the
	// best outer (LLC) tile into L2-sized inner tiles with per-tile SoA
	// staging buffers. Sweep the inner size at the best outer size and
	// record wall-clock plus the modeled gather/scatter staging traffic.
	inners := []int{1 << 10, 1 << 12, 1 << 13, 1 << 14}
	if o.Quick {
		inners = []int{1 << 10, 1 << 12}
	}
	mkStaged := func(innerEdges int) (*flux.Kernels, error) {
		part, err := flux.NewPartition(rcmMesh, nw, strategy, 3)
		if err != nil {
			return nil, err
		}
		cfg := flux.Config{Strategy: strategy, SIMD: true, Prefetch: true,
			PFDist: o.PFDist, TileEdges: bestTile, Staged: true, InnerTileEdges: innerEdges}
		return flux.NewKernels(rcmMesh, 5, qInf, pool, part, cfg), nil
	}
	w = table(o)
	fmt.Fprintln(w, "edges/inner-tile\tinner tiles\tinner repl\tstaged residual\tstaged B/edge")
	innerMS := map[string]any{}
	bestInner, bestStagedT := 0, 1e300
	var bestStagedK *flux.Kernels
	for _, ie := range inners {
		ks, err := mkStaged(ie)
		if err != nil {
			return err
		}
		resS := make([]float64, len(q))
		t := minTime(reps, func() { ks.ResidualStaged(q, resS, kVenk, false) })
		sfb, sgb, ssb := ks.ResidualStagedBytes()
		tl := ks.Tiling()
		_, innerRepl := tl.ReplicationLevels()
		fmt.Fprintf(w, "%d\t%d\t%.3f\t%.3fms\t%.0f\n",
			ie, tl.NumInnerTiles(), innerRepl, 1e3*t, float64(sfb+sgb+ssb)/float64(ne))
		innerMS[fmt.Sprint(ie)] = 1e3 * t
		if t < bestStagedT {
			bestStagedT, bestInner, bestStagedK = t, ie, ks
		}
	}
	if err := w.Flush(); err != nil {
		return err
	}
	sfb, sgb, ssb := bestStagedK.ResidualStagedBytes()
	stagedBPE := float64(sfb+sgb+ssb) / float64(ne)
	stagingBPE := float64(sgb+ssb) / float64(ne)
	fmt.Fprintf(o.Out, "   staged best %.3fms at %d edges/inner-tile: %.0f B/edge total (staging %.0f), fused %.0f, three-sweep %.0f\n",
		1e3*bestStagedT, bestInner, stagedBPE, stagingBPE, fusedBPE, unfusedBPE)

	pfdists := []int{4, 16, 64}
	if o.PFDist > 0 {
		pfdists = append(pfdists, o.PFDist)
	}
	pfMS := map[string]any{}
	res := make([]float64, len(q))
	for _, pf := range pfdists {
		kpf, err := mkKern(rcmMesh, bestTile)
		if err != nil {
			return err
		}
		kpf.Cfg.PFDist = pf
		t := minTime(reps, func() { kpf.Residual(q, nil, nil, res) })
		pfMS[fmt.Sprint(pf)] = 1e3 * t
		fmt.Fprintf(o.Out, "   prefetch lookahead %d edges: first-order flux %.3fms\n", pf, 1e3*t)
	}

	// Artifact: the fused evaluation at the best tile size, with the
	// modeled traffic split into its flux and gather phases so the
	// residual_bytes_per_edge rate reflects the fused pipeline.
	met := &prof.Metrics{}
	met.Add(prof.Flux, vsec(fusedT))
	met.AddBytes(prof.Flux, fb)
	met.Inc(prof.FluxEdges, int64(ne))
	met.AddBytes(prof.Gradient, gb)
	met.Inc(prof.GradEdges, int64(ne))
	met.Inc(prof.ResidualSweeps, 1)
	// The staged evaluation at the best inner size books its deterministic
	// staging traffic so the artifact carries tile_staged_bytes_per_edge,
	// the rate CI gates exactly.
	met.Inc(prof.StagedEdges, int64(ne))
	met.Inc(prof.StagedGatherBytes, sgb)
	met.Inc(prof.StagedScatterBytes, ssb)
	return emit(o, "locality", met, rcmMesh, map[string]any{
		"threads":                       nw,
		"strategy":                      strategy.String(),
		"ordering_fused_ms":             orderMS,
		"tile_sweep_ms":                 tileMS,
		"tile_edges_best":               bestTile,
		"inner_tile_sweep_ms":           innerMS,
		"inner_tile_edges_best":         bestInner,
		"staged_ms":                     1e3 * bestStagedT,
		"staged_bytes_per_edge":         stagedBPE,
		"staged_staging_bytes_per_edge": stagingBPE,
		"fused_ms":                      1e3 * fusedT,
		"three_sweep_ms":                1e3 * unfusedT,
		"fused_speedup":                 unfusedT / fusedT,
		"wallclock_win":                 fusedT < unfusedT,
		"fused_bytes_per_edge":          fusedBPE,
		"three_sweep_bytes_per_edge":    unfusedBPE,
		"bytes_reduction":               unfusedBPE / fusedBPE,
		"stream_gbs":                    streamBW / 1e9,
		"bw_bound_fused_ms":             projFusedMS,
		"bw_bound_three_sweep_ms":       projUnfusedMS,
		"bw_bound_speedup":              projUnfusedMS / projFusedMS,
		"wallclock_win_bw_bound":        projFusedMS < projUnfusedMS,
		"wallclock_note": "measured fused vs three-sweep is interleaved min-of-N on this host; " +
			"the host's LLC holds the whole mesh, so the eliminated streams were already cache " +
			"hits and the measured ratio sits at compute parity — the bw_bound_* keys project " +
			"the bandwidth-bound regime (time proportional to bytes) from the measured STREAM rate",
		"pfdist_flux_ms": pfMS,
	}, nil)
}
