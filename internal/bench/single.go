package bench

import (
	"fmt"
	"time"

	"fun3d/internal/core"
	"fun3d/internal/mesh"
	"fun3d/internal/newton"
	"fun3d/internal/partition"
	"fun3d/internal/perfmodel"
	"fun3d/internal/prof"
)

// solveOnce runs a full application solve under the harness-wide GMRES
// selection and returns the app (caller closes) plus the result.
func solveOnce(o *Options, m *mesh.Mesh, cfg core.Config, opt newton.Options) (*core.App, core.RunResult, error) {
	cfg.PipelinedGMRES = o.pipelined()
	if cfg.PFDist == 0 {
		cfg.PFDist = o.PFDist
	}
	app, err := core.NewApp(m, cfg)
	if err != nil {
		return nil, core.RunResult{}, err
	}
	r, err := app.Run(opt)
	if err != nil {
		app.Close()
		return nil, core.RunResult{}, err
	}
	return app, r, nil
}

// table1 reproduces Table I: baseline (sequential) mesh sizes, steps,
// linear iterations and time to convergence for Mesh-C' and Mesh-D'.
func table1(o *Options) error {
	header(o, "Table I: baseline performance", "Mesh-C: 3.58e5 vtx / 2.40e6 edges, 13 steps, 383 iters, 282 s; Mesh-D: 2.76e6 vtx / 1.89e7 edges, 29 steps, 1709 iters, 1.02e4 s")
	specs := []struct {
		name string
		spec mesh.GenSpec
	}{{"Mesh-C'", o.SingleSpec}}
	if !o.Quick {
		specs = append(specs, struct {
			name string
			spec mesh.GenSpec
		}{"Mesh-D'", mesh.ScaleSpec(o.SingleSpec, 4)})
	}
	w := table(o)
	fmt.Fprintln(w, "mesh\tvertices\tedges\tsteps\tlinear iters\ttime")
	agg := &prof.Metrics{}
	var lastMesh *mesh.Mesh
	for _, s := range specs {
		m, err := mesh.Generate(s.spec)
		if err != nil {
			return err
		}
		app, r, err := solveOnce(o, m, core.BaselineConfig(), newton.Options{
			MaxSteps: 60, CFL0: o.CFL0 / 2, // gentler CFL gives a paper-like transient phase
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%d\t%v\n",
			s.name, m.NumVertices(), m.NumEdges(),
			len(r.History.Steps), r.History.LinearIters, r.WallTime.Round(time.Millisecond))
		agg.Merge(app.Prof)
		lastMesh = m
		app.Close()
	}
	if err := w.Flush(); err != nil {
		return err
	}
	return emit(o, "table1", agg, lastMesh, map[string]any{"cfl0": o.CFL0 / 2, "max_steps": 60}, nil)
}

// table2 reproduces Table II: ILU-0 vs ILU-1 — available parallelism,
// linear iterations, single-core and multi-core time, speedup.
func table2(o *Options) error {
	header(o, "Table II: ILU-0 vs ILU-1", "parallelism 248X vs 60X; iters 777 vs 383; 10-core speedup 6.9X vs 3.5X; ILU-0 wins at 10 cores by ~1.3X")
	m, err := mesh.Generate(o.SingleSpec)
	if err != nil {
		return err
	}
	w := table(o)
	tm := perfmodel.PaperNode()
	fmt.Fprintln(w, "fill\tparallelism\tlinear iters\tseq time\tpar time\tmeasured speedup\tprojected 10-core")
	type row struct {
		seq  float64
		proj float64
	}
	rows := map[int]row{}
	agg := &prof.Metrics{}
	for _, fill := range []int{0, 1} {
		cfgSeq := core.BaselineConfig()
		cfgSeq.FillLevel = fill
		appS, rs, err := solveOnce(o, m, cfgSeq, newton.Options{MaxSteps: 60, CFL0: o.CFL0})
		if err != nil {
			return err
		}
		parallelism := appS.Pre.Parallelism()
		// Amdahl projection with this fill level's own profile and DAG
		// parallelism (the Table II mechanism: ILU-1 converges faster but
		// its recurrences parallelize worse).
		fr := appS.Prof.Fractions()
		recS := minF(float64(tm.Cores), parallelism)
		recBW := minF(recS, perfmodel.BwSpeedup(tm, tm.Cores))
		edgeS := 2.25 / tm.Compute(1, tm.Cores, 0.09, 1.05)
		inv := (fr[prof.Flux]+fr[prof.Gradient]+fr[prof.Jacobian])/edgeS +
			fr[prof.ILU]/recS + fr[prof.TRSV]/recBW +
			fr[prof.VecOps]/float64(tm.Cores) + fr[prof.Other]
		projTime := rs.WallTime.Seconds() * inv
		rows[fill] = row{seq: rs.WallTime.Seconds(), proj: projTime}
		agg.Merge(appS.Prof)
		appS.Close()

		cfgPar := core.OptimizedConfig(o.MaxThreads)
		cfgPar.FillLevel = fill
		appP, rp, err := solveOnce(o, m, cfgPar, newton.Options{MaxSteps: 60, CFL0: o.CFL0})
		if err != nil {
			return err
		}
		appP.Close()
		fmt.Fprintf(w, "ILU-%d\t%.0fX\t%d\t%v\t%v\t%.2fX\t%.1fX\n",
			fill, parallelism, rs.History.LinearIters,
			rs.WallTime.Round(time.Millisecond), rp.WallTime.Round(time.Millisecond),
			rs.WallTime.Seconds()/rp.WallTime.Seconds(), 1/inv)
	}
	// The paper's punchline: which fill level wins at full thread count?
	r0, r1 := rows[0], rows[1]
	if r0.proj > 0 && r1.proj > 0 {
		fmt.Fprintf(w, "(projected 10-core times: ILU-0 %.2fs vs ILU-1 %.2fs => ILU-%d wins by %.2fX; paper: ILU-0 by 1.3X)\n",
			r0.proj, r1.proj, btoi(r0.proj > r1.proj), maxF(r0.proj, r1.proj)/minF(r0.proj, r1.proj))
	}
	if err := w.Flush(); err != nil {
		return err
	}
	return emit(o, "table2", agg, m, map[string]any{"fills": []int{0, 1}, "threads": o.MaxThreads}, nil)
}

func btoi(oneWins bool) int {
	if oneWins {
		return 1
	}
	return 0
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// fig5 reproduces the baseline execution-time profile.
func fig5(o *Options) error {
	header(o, "Fig 5: baseline performance profile", "flux 42%, trsv 17%, ilu 16%, gradient 13%, jacobian 7%, other ~5%")
	m, err := mesh.Generate(o.SingleSpec)
	if err != nil {
		return err
	}
	cfg := core.BaselineConfig()
	cfg.SecondOrder = true // the paper's production discretization
	cfg.Limiter = true
	app, _, err := solveOnce(o, m, cfg, newton.Options{MaxSteps: 60, CFL0: o.CFL0})
	if err != nil {
		return err
	}
	defer app.Close()
	paper := map[prof.Kernel]float64{
		prof.Flux: 0.42, prof.TRSV: 0.17, prof.ILU: 0.16,
		prof.Gradient: 0.13, prof.Jacobian: 0.07,
	}
	fr := app.Prof.Fractions()
	w := table(o)
	fmt.Fprintln(w, "kernel\tpaper\tmeasured")
	for _, k := range prof.Kernels() {
		p, ok := paper[k]
		ps := "-"
		if ok {
			ps = fmt.Sprintf("%.0f%%", 100*p)
		}
		fmt.Fprintf(w, "%v\t%s\t%.1f%%\n", k, ps, 100*fr[k])
	}
	if err := w.Flush(); err != nil {
		return err
	}
	paperShares := make(map[string]float64, len(paper))
	for k, v := range paper {
		paperShares[k.String()+"_share"] = v
	}
	return emit(o, "fig5", app.Prof, m, map[string]any{"second_order": true, "limiter": true}, paperShares)
}

// fig8a reproduces the optimized full-application comparison; fig8b the
// kernel-wise speedups (same data, per-kernel view).
func fig8(o *Options, name string, kernelView bool) error {
	m, err := mesh.Generate(o.SingleSpec)
	if err != nil {
		return err
	}
	nopt := newton.Options{MaxSteps: 60, CFL0: o.CFL0}
	base, rb, err := solveOnce(o, m, core.BaselineConfig(), nopt)
	if err != nil {
		return err
	}
	defer base.Close()
	opt, ro, err := solveOnce(o, m, core.OptimizedConfig(o.MaxThreads), nopt)
	if err != nil {
		return err
	}
	defer opt.Close()

	w := table(o)
	if !kernelView {
		fmt.Fprintln(w, "version\ttime\tsteps\tlinear iters\tspeedup")
		fmt.Fprintf(w, "baseline (1 thread)\t%v\t%d\t%d\t1.00X\n",
			rb.WallTime.Round(time.Millisecond), len(rb.History.Steps), rb.History.LinearIters)
		fmt.Fprintf(w, "optimized (%d threads)\t%v\t%d\t%d\t%.2fX\n",
			o.MaxThreads, ro.WallTime.Round(time.Millisecond), len(ro.History.Steps),
			ro.History.LinearIters, rb.WallTime.Seconds()/ro.WallTime.Seconds())

		// Amdahl projection to the paper's node: combine the baseline
		// profile fractions with per-kernel projected speedups (edge
		// kernels: compute model with our partition metrics + the paper's
		// SIMD/layout factors; recurrences: DAG/bandwidth model).
		tm := perfmodel.PaperNode()
		g := partition.FromMesh(base.Mesh.AdjPtr, base.Mesh.Adj, true)
		mlPart, err := partition.Multilevel(g, tm.Cores, partition.Options{Seed: 3})
		if err != nil {
			return err
		}
		q := partition.Evaluate(g, mlPart, tm.Cores)
		edgeSpeedup := 1 / (tm.Compute(1, tm.Cores, q.Replication, q.Imbalance)) * 2.25
		parl := base.Pre.Parallelism()
		recSpeedup := func(bwBound bool) float64 {
			eff := minF(float64(tm.Cores), parl)
			if bwBound {
				eff = minF(eff, perfmodel.BwSpeedup(tm, tm.Cores))
			}
			return eff
		}
		fr := base.Prof.Fractions()
		inv := fr[prof.Flux]/edgeSpeedup +
			fr[prof.Gradient]/edgeSpeedup +
			fr[prof.Jacobian]/edgeSpeedup +
			fr[prof.ILU]/recSpeedup(false) +
			fr[prof.TRSV]/recSpeedup(true) +
			fr[prof.VecOps]/float64(tm.Cores) +
			fr[prof.Other]
		fmt.Fprintf(w, "projected on a %d-core node\t\t\t\t%.1fX\n", tm.Cores, 1/inv)
		fmt.Fprintf(w, "(projection inputs: edge kernels %.1fX incl. paper SIMD/layout 2.25x, ILU %.1fX, TRSV %.1fX, DAG parallelism %.0fX)\n",
			edgeSpeedup, recSpeedup(false), recSpeedup(true), parl)
	} else {
		fmt.Fprintln(w, "kernel\tbaseline\toptimized\tspeedup")
		for _, k := range prof.Kernels() {
			tb := base.Prof.Total(k).Seconds()
			to := opt.Prof.Total(k).Seconds()
			if tb == 0 && to == 0 {
				continue
			}
			sp := "-"
			if to > 0 {
				sp = fmt.Sprintf("%.2fX", tb/to)
			}
			fmt.Fprintf(w, "%v\t%.3fs\t%.3fs\t%s\n", k, tb, to, sp)
		}
	}
	if err := w.Flush(); err != nil {
		return err
	}
	// The artifact records the optimized run; the baseline total rides in
	// config so the speedup can be recomputed from the JSON alone.
	return emit(o, name, opt.Prof, m, map[string]any{
		"threads":          o.MaxThreads,
		"baseline_seconds": rb.WallTime.Seconds(),
		"speedup":          rb.WallTime.Seconds() / ro.WallTime.Seconds(),
	}, nil)
}

func fig8a(o *Options) error {
	header(o, "Fig 8a: optimized full-application time to solution", "6.9X on 10 cores (20 threads) vs baseline")
	return fig8(o, "fig8a", false)
}

func fig8b(o *Options) error {
	header(o, "Fig 8b: kernel-wise speedups, baseline vs optimized", "flux ~20.6X, ILU ~9.4X, TRSV ~3.2X on 10 cores")
	return fig8(o, "fig8b", true)
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
