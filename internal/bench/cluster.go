package bench

import (
	"fmt"

	"fun3d/internal/mesh"
	"fun3d/internal/mpisim"
	"fun3d/internal/perfmodel"
)

// clusterEnv holds the mesh and calibrated rates shared by the multi-node
// experiments. The rates are *measured* on this machine with the real
// kernels (perfmodel.Measure); the network is the Stampede-like model.
type clusterEnv struct {
	m        *mesh.Mesh
	net      perfmodel.Network
	baseline perfmodel.Rates // sequential, unoptimized kernels
	optim    perfmodel.Rates // sequential, cache+SIMD-optimized kernels
	hybrid   perfmodel.Rates // threaded, optimized kernels (per hybrid rank)
	seqVec   perfmodel.Rates // for the hybrid Amdahl term (unthreaded Vec*)
}

func newClusterEnv(o *Options) (*clusterEnv, error) {
	m, err := mesh.Generate(o.ClusterSpec)
	if err != nil {
		return nil, err
	}
	// Calibrate on a sample mesh: rates are per-unit, so a moderate
	// wing-less box suffices (the kernels are geometry-agnostic) and keeps
	// setup cheap.
	sampleSpec := mesh.SpecTiny()
	sampleSpec.HasWing = false
	if !o.Quick {
		sampleSpec = mesh.GenSpec{NX: 22, NY: 18, NZ: 16, Shuffle: true, Seed: 7}
	}
	sample, err := mesh.Generate(sampleSpec)
	if err != nil {
		return nil, err
	}
	env := &clusterEnv{m: m, net: perfmodel.Stampede()}
	env.net.RanksPerNode = o.RanksPerNode
	// Baseline per-rank rates: measured with the real sequential kernels.
	if env.baseline, err = perfmodel.Measure(sample, 1, false); err != nil {
		return nil, err
	}
	// Optimized per-rank rates: paper-documented cache+SIMD factors applied
	// to the measured baseline (Go cannot express AVX; see DESIGN.md).
	env.optim = perfmodel.DeriveOptimized(env.baseline)
	// Hybrid per-rank rates: optimized rates scaled by the threading
	// speedup — measured on this machine when it has enough cores,
	// projected by the documented ThreadModel otherwise (a 1-core host
	// cannot measure thread scaling; the noise would swamp the signal).
	if o.MaxThreads >= o.ThreadsPerRankHybrid {
		threaded, err := perfmodel.Measure(sample, o.ThreadsPerRankHybrid, false)
		if err != nil {
			return nil, err
		}
		env.hybrid = perfmodel.ThreadScale(env.optim, env.baseline, threaded)
	} else {
		tm := perfmodel.PaperNode()
		t := o.ThreadsPerRankHybrid
		env.hybrid = env.optim
		edge := tm.Compute(1, t, 0.05, 1.05) // modeled per-thread edge-kernel time
		env.hybrid.FluxPerEdge *= edge
		env.hybrid.GradPerEdge *= edge
		env.hybrid.JacPerEdge *= edge
		rec := 1 / minF(float64(t), perfmodel.BwSpeedup(tm, t))
		env.hybrid.ILUPerBlock *= rec
		env.hybrid.TRSVPerBlock *= rec
		env.hybrid.Threads = t
	}
	env.seqVec = env.optim
	return env, nil
}

func (e *clusterEnv) run(o *Options, ranks int, rates perfmodel.Rates, vecRates *perfmodel.Rates, ranksPerNode int, mods ...func(*mpisim.Config)) (mpisim.Result, error) {
	net := e.net
	net.RanksPerNode = ranksPerNode
	cfg := mpisim.Config{
		Ranks:     ranks,
		Rates:     rates,
		VecRates:  vecRates,
		Net:       net,
		MaxSteps:  o.ClusterSteps,
		RelTol:    1e-30, // fixed work per configuration
		CFL0:      o.CFL0,
		Seed:      11,
		Pipelined: o.pipelined(),
	}
	for _, mod := range mods {
		mod(&cfg)
	}
	return mpisim.Solve(e.m, cfg)
}

// fig9 reproduces the strong-scaling comparison of baseline vs cache+SIMD-
// optimized MPI-only runs.
func fig9(o *Options) error {
	header(o, "Fig 9: strong scaling, baseline vs optimized (MPI-only)",
		"optimized wins at every scale by ~16-28% on up to 256 nodes")
	env, err := newClusterEnv(o)
	if err != nil {
		return err
	}
	w := table(o)
	fmt.Fprintln(w, "nodes\tranks\tbaseline time\toptimized time\tgain\titers(base/opt)")
	var last mpisim.Result
	for _, nodes := range o.NodeCounts {
		ranks := nodes * o.RanksPerNode
		rb, err := env.run(o, ranks, env.baseline, nil, o.RanksPerNode)
		if err != nil {
			return err
		}
		ro, err := env.run(o, ranks, env.optim, nil, o.RanksPerNode)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%d\t%d\t%.3fs\t%.3fs\t%.0f%%\t%d/%d\n",
			nodes, ranks, rb.Time, ro.Time,
			100*(rb.Time-ro.Time)/rb.Time, rb.LinearIters, ro.LinearIters)
		last = ro
	}
	fmt.Fprintln(w, "(virtual seconds; identical numerics per column pair)")
	if err := w.Flush(); err != nil {
		return err
	}
	return emit(o, "fig9", last.Metrics, env.m, clusterConfig(o, "optimized, largest node count"), nil)
}

// clusterConfig is the shared config section of the multi-node artifacts:
// the sweep parameters plus which run the kernel record belongs to (times
// are virtual seconds — see mpisim.Result.Metrics).
func clusterConfig(o *Options, recorded string) map[string]any {
	return map[string]any{
		"node_counts":    o.NodeCounts,
		"ranks_per_node": o.RanksPerNode,
		"cluster_steps":  o.ClusterSteps,
		"recorded_run":   recorded,
		"time_axis":      "virtual",
	}
}

// fig10 reproduces the communication-overhead breakdown.
func fig10(o *Options) error {
	header(o, "Fig 10: communication overhead vs scale",
		"communication reaches ~70% at 256 nodes; >90% of it is Allreduce; point-to-point <5%")
	env, err := newClusterEnv(o)
	if err != nil {
		return err
	}
	w := table(o)
	fmt.Fprintln(w, "nodes\tranks\tcompute\tallreduce\tpoint-to-point\tcomm fraction")
	var last mpisim.Result
	for _, nodes := range o.NodeCounts {
		ranks := nodes * o.RanksPerNode
		r, err := env.run(o, ranks, env.optim, nil, o.RanksPerNode)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%d\t%d\t%.3fs\t%.3fs\t%.3fs\t%.0f%%\n",
			nodes, ranks, r.ComputeTime, r.AllreduceTime, r.PtPTime,
			100*r.CommFraction())
		last = r
	}
	if err := w.Flush(); err != nil {
		return err
	}
	return emit(o, "fig10", last.Metrics, env.m, clusterConfig(o, "optimized, largest node count"),
		map[string]float64{"comm_fraction_256_nodes": 0.70})
}

// fig11 compares baseline, optimized MPI-only, and hybrid MPI+threads.
func fig11(o *Options) error {
	header(o, "Fig 11: baseline vs optimized vs hybrid",
		"hybrid beats baseline by 10-23% but trails MPI-only optimized (unthreaded PETSc Vec* is the Amdahl term)")
	env, err := newClusterEnv(o)
	if err != nil {
		return err
	}
	w := table(o)
	fmt.Fprintln(w, "nodes\tbaseline\toptimized\thybrid\thybrid vs baseline\titers(opt/hybrid)")
	hybridRanksPerNode := max(1, o.RanksPerNode/o.ThreadsPerRankHybrid)
	var last mpisim.Result
	for _, nodes := range o.NodeCounts {
		ranks := nodes * o.RanksPerNode
		hranks := nodes * hybridRanksPerNode
		rb, err := env.run(o, ranks, env.baseline, nil, o.RanksPerNode)
		if err != nil {
			return err
		}
		ro, err := env.run(o, ranks, env.optim, nil, o.RanksPerNode)
		if err != nil {
			return err
		}
		// Hybrid: fewer, larger ranks; threaded kernel rates; sequential
		// vector primitives (the PETSc routines the paper flags). Each rank
		// really executes the pool-threaded kernels (owner-writes flux,
		// P2P ILU/TRSV) on its subdomain — the rates model the speed, the
		// threads produce the numbers.
		rh, err := env.run(o, hranks, env.hybrid, &env.seqVec, hybridRanksPerNode,
			func(c *mpisim.Config) { c.ThreadsPerRank = o.ThreadsPerRankHybrid })
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%d\t%.3fs\t%.3fs\t%.3fs\t%.0f%%\t%d/%d\n",
			nodes, rb.Time, ro.Time, rh.Time,
			100*(rb.Time-rh.Time)/rb.Time, ro.LinearIters, rh.LinearIters)
		last = rh
	}
	fmt.Fprintf(w, "(hybrid: %d ranks/node x %d threads)\n", hybridRanksPerNode, o.ThreadsPerRankHybrid)
	if err := w.Flush(); err != nil {
		return err
	}
	cfg := clusterConfig(o, "hybrid, largest node count")
	cfg["threads_per_rank"] = o.ThreadsPerRankHybrid
	return emit(o, "fig11", last.Metrics, env.m, cfg, nil)
}

// overlap runs the comm/compute-overlap and collective-algorithm matrix the
// paper's Fig 10/11 discussion motivates: for each node count, the four
// combinations {blocking, overlapped halo} x {tree, flat Allreduce}. The
// numerics are identical in all four (the simulator reduces in rank order
// and the interior/boundary split preserves accumulation order); only the
// modeled halo-wait and Allreduce times move.
func overlap(o *Options) error {
	header(o, "Overlap: nonblocking halo + Allreduce algorithm matrix",
		"overlap hides most point-to-point wait behind interior edges; flat Allreduce shows why tree collectives matter at scale")
	env, err := newClusterEnv(o)
	if err != nil {
		return err
	}
	w := table(o)
	fmt.Fprintln(w, "nodes\tranks\thalo\tallreduce\ttotal\tcompute\thalo wait\tallreduce time")
	var last mpisim.Result
	for _, nodes := range o.NodeCounts {
		ranks := nodes * o.RanksPerNode
		for _, ov := range []bool{false, true} {
			for _, algo := range []perfmodel.AllreduceAlgo{perfmodel.AllreduceTree, perfmodel.AllreduceFlat} {
				r, err := env.run(o, ranks, env.optim, nil, o.RanksPerNode,
					func(c *mpisim.Config) {
						c.Overlap = ov
						c.Net.Algo = algo
					})
				if err != nil {
					return err
				}
				halo := "blocking"
				if ov {
					halo = "overlapped"
				}
				fmt.Fprintf(w, "%d\t%d\t%s\t%s\t%.3fs\t%.3fs\t%.3fms\t%.3fms\n",
					nodes, ranks, halo, algo, r.Time, r.ComputeTime, 1e3*r.PtPTime, 1e3*r.AllreduceTime)
				if ov && algo == perfmodel.AllreduceTree {
					last = r
				}
			}
		}
	}
	fmt.Fprintln(w, "(identical residual histories across all four combinations)")
	if err := w.Flush(); err != nil {
		return err
	}
	return emit(o, "overlap", last.Metrics, env.m,
		clusterConfig(o, "overlapped halo + tree allreduce, largest node count"), nil)
}
