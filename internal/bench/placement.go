package bench

import (
	"fmt"

	"fun3d/internal/mesh"
	"fun3d/internal/mpisim"
	"fun3d/internal/perfmodel"
	"fun3d/internal/prof"
)

// placement reruns the scaling campaign's axes — the same mesh, rank
// counts, pinned rates, and collective algorithms — across the three rank
// placements: block, round-robin, and the graph-driven locality mapping
// (partition.MapLocality over the decomposition's halo traffic graph).
// Placement only moves virtual time and route classification, never
// numerics, so the solver trajectory is bit-identical across all three —
// enforced here, along with the acceptance bar that locality strictly
// cuts modeled cross-pod halo bytes below both formulaic placements at
// >= 1024 ranks on the fat tree. One artifact and one locality table are
// built per rank count and shared across every combination.
func placement(o *Options) error {
	header(o, "Placement: rank->node mapping x collective algorithm at scale",
		"the mixed-mode strong-scaling regime (Lange et al.): once on-node traffic is optimized the halo network term dominates, and it is priced by where neighboring subdomains land on the fabric")

	rates := scalingRates()
	net, err := scalingNet(o)
	if err != nil {
		return err
	}

	rankCounts := scalingRanks
	spec := mesh.GenSpec{NX: 28, NY: 26, NZ: 24, Shuffle: true, Seed: 7}
	if o.Quick {
		rankCounts = scalingQuickRanks
		spec = mesh.SpecTiny()
		// Shrink the node/pod geometry with the mesh: 16 ranks on the full
		// campaign's 16-per-node nodes would be a single node with nothing
		// to place.
		net.RanksPerNode = 4
		net.PodSize = 2
	}
	m, err := mesh.Generate(spec)
	if err != nil {
		return err
	}

	placements := []perfmodel.Placement{
		perfmodel.PlaceBlock, perfmodel.PlaceRoundRobin, perfmodel.PlaceLocality,
	}
	algos := []perfmodel.AllreduceAlgo{
		perfmodel.AllreduceFlat, perfmodel.AllreduceTree, perfmodel.AllreduceHier,
	}

	w := table(o)
	fmt.Fprintln(w, "ranks\tnodes\tallreduce\tplacement\ttime\thops/msg\tcross-node MB\tcross-pod MB")
	agg := &prof.Metrics{}
	series := map[string][]float64{}
	for _, p := range rankCounts {
		art, err := mpisim.BuildArtifact(m, mpisim.ClusterSpec{Ranks: p, Natural: true, Seed: 11})
		if err != nil {
			return err
		}
		// One locality table per rank count, shared across the collective
		// algorithms (the mapping depends only on the traffic graph and the
		// fabric geometry, not on the collective).
		locTable, err := mpisim.LocalityTable(art.Subs, net)
		if err != nil {
			return err
		}
		crossPod := map[perfmodel.Placement]int{}
		for _, algo := range algos {
			var ref mpisim.Result
			for pi, place := range placements {
				cfg := scalingConfig(o, p, rates, net)
				cfg.Net.Algo = algo
				cfg.Net.Place = place
				if place == perfmodel.PlaceLocality {
					cfg.Net.NodeTable = locTable
				}
				r, err := mpisim.SolveArtifact(art, cfg)
				if err != nil {
					return err
				}
				if pi == 0 {
					ref = r
				} else if !sameTrajectory(r, ref) {
					return fmt.Errorf("placement: %d ranks %v: %v placement changed the solver trajectory", p, algo, place)
				}
				hopsPerMsg := 0.0
				if r.Msgs > 0 {
					hopsPerMsg = float64(r.PtPHops) / float64(r.Msgs)
				}
				fmt.Fprintf(w, "%d\t%d\t%s\t%s\t%.4fs\t%.2f\t%.2f\t%.2f\n",
					p, net.Nodes(p), algo, place, r.Time, hopsPerMsg,
					float64(r.PtPCrossNodeBytes)/1e6, float64(r.PtPCrossPodBytes)/1e6)
				key := algo.String() + "_" + place.String()
				series["time_"+key] = append(series["time_"+key], r.Time)
				// The route books depend only on the placement, not the
				// collective algorithm — record them once per placement.
				if algo == algos[0] {
					pk := place.String()
					series["hops_per_msg_"+pk] = append(series["hops_per_msg_"+pk], hopsPerMsg)
					series["cross_node_bytes_"+pk] = append(series["cross_node_bytes_"+pk], float64(r.PtPCrossNodeBytes))
					series["cross_pod_bytes_"+pk] = append(series["cross_pod_bytes_"+pk], float64(r.PtPCrossPodBytes))
					crossPod[place] = r.PtPCrossPodBytes
				}
				agg.Merge(r.Metrics)
			}
		}
		// The acceptance bar: at campaign scale on the fat tree, locality
		// must strictly beat both formulaic placements on cross-pod bytes.
		if p >= 1024 && net.Topo == perfmodel.TopoFatTree {
			loc := crossPod[perfmodel.PlaceLocality]
			if loc >= crossPod[perfmodel.PlaceBlock] || loc >= crossPod[perfmodel.PlaceRoundRobin] {
				return fmt.Errorf("placement: %d ranks: locality cross-pod bytes %d not strictly below block %d and round-robin %d",
					p, loc, crossPod[perfmodel.PlaceBlock], crossPod[perfmodel.PlaceRoundRobin])
			}
		}
	}
	fmt.Fprintln(w, "(virtual seconds on pinned synthetic rates; identical numerics across placements per algorithm)")
	if err := w.Flush(); err != nil {
		return err
	}

	cfgOut := map[string]any{
		"rank_counts":    rankCounts,
		"ranks_per_node": net.RanksPerNode,
		"pod_size":       net.PodSize,
		"topology":       net.Topo.String(),
		"placements":     []string{"block", "roundrobin", "locality"},
		"allreduce":      []string{"flat", "tree", "hierarchical"},
		"cluster_steps":  1,
		"rates":          "synthetic (pinned)",
		"time_axis":      "virtual",
		"traffic_matrix": "mpisim.TrafficGraph (halo send bytes per exchange)",
	}
	for k, v := range series {
		cfgOut[k] = v
	}
	return emit(o, "placement", agg, m, cfgOut, nil)
}

// sameTrajectory reports whether two runs followed bit-identical solver
// trajectories and issued identical traffic.
func sameTrajectory(a, b mpisim.Result) bool {
	if a.Steps != b.Steps || a.LinearIters != b.LinearIters ||
		a.Msgs != b.Msgs || a.Bytes != b.Bytes || a.Allreduces != b.Allreduces ||
		len(a.History) != len(b.History) {
		return false
	}
	for i := range a.History {
		if a.History[i] != b.History[i] {
			return false
		}
	}
	return true
}
