package bench

import (
	"fmt"

	"fun3d/internal/core"
	"fun3d/internal/mesh"
	"fun3d/internal/mpisim"
	"fun3d/internal/newton"
	"fun3d/internal/perfmodel"
	"fun3d/internal/prof"
)

// quick is the CI experiment: one small second-order single-node solve
// (real wall-clock times and work counters for flux, gradient, Jacobian,
// ILU, TRSV, and the vector primitives) plus one tiny distributed run
// (Allreduce and halo records on the virtual time axis), merged into a
// single all-kernels record. Its artifact, BENCH_quick.json, is what CI
// uploads and what cmd/benchdiff gates against the committed baseline.
func quick(o *Options) error {
	header(o, "Quick: combined per-kernel metrics sample",
		"no direct paper counterpart; exercises every profiled kernel for the CI artifact")

	// Always the tiny mesh — quick stays quick even inside a full run.
	spec := mesh.SpecTiny()
	m, err := mesh.Generate(spec)
	if err != nil {
		return err
	}
	cfg := core.OptimizedConfig(o.MaxThreads)
	cfg.SecondOrder = true
	cfg.Limiter = true
	app, _, err := solveOnce(o, m, cfg, newton.Options{MaxSteps: 3, CFL0: o.CFL0})
	if err != nil {
		return err
	}
	agg := &prof.Metrics{}
	agg.Merge(app.Prof)
	app.Close()

	// A two-rank distributed step contributes the communication kernels.
	rates, err := perfmodel.Measure(m, 1, false)
	if err != nil {
		return err
	}
	r, err := mpisim.Solve(m, mpisim.Config{
		Ranks:    2,
		Rates:    rates,
		Net:      perfmodel.Stampede(),
		MaxSteps: 1,
		RelTol:   1e-30,
		CFL0:     o.CFL0,
		Seed:     11,
	})
	if err != nil {
		return err
	}
	agg.Merge(r.Metrics)

	w := table(o)
	fmt.Fprintln(w, "kernel\tseconds\tcalls\tbytes\tGB/s")
	for _, k := range prof.Kernels() {
		s := agg.Total(k).Seconds()
		if s == 0 && agg.Count(k) == 0 {
			continue
		}
		fmt.Fprintf(w, "%v\t%.4f\t%d\t%d\t%.2f\n",
			k, s, agg.Count(k), agg.Bytes(k), agg.Bandwidth(k)/1e9)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	return emit(o, "quick", agg, m, map[string]any{
		"threads":      o.MaxThreads,
		"newton_steps": 3,
		"ranks":        2,
		"cfl0":         o.CFL0,
	}, nil)
}
