package bench

import (
	"fmt"

	"fun3d/internal/core"
	"fun3d/internal/mesh"
	"fun3d/internal/mpisim"
	"fun3d/internal/newton"
	"fun3d/internal/perfmodel"
	"fun3d/internal/prof"
)

// quick is the CI experiment: one small second-order single-node solve
// (real wall-clock times and work counters for flux, gradient, Jacobian,
// ILU, TRSV, and the vector primitives) plus one tiny distributed run
// (Allreduce and halo records on the virtual time axis), merged into a
// single all-kernels record. Its artifact, BENCH_quick.json, is what CI
// uploads and what cmd/benchdiff gates against the committed baseline.
func quick(o *Options) error {
	header(o, "Quick: combined per-kernel metrics sample",
		"no direct paper counterpart; exercises every profiled kernel for the CI artifact")

	// Always the tiny mesh — quick stays quick even inside a full run.
	spec := mesh.SpecTiny()
	m, err := mesh.Generate(spec)
	if err != nil {
		return err
	}
	cfg := core.OptimizedConfig(o.MaxThreads)
	cfg.SecondOrder = true
	cfg.Limiter = true
	app, _, err := solveOnce(o, m, cfg, newton.Options{MaxSteps: 3, CFL0: o.CFL0})
	if err != nil {
		return err
	}
	agg := &prof.Metrics{}
	agg.Merge(app.Prof)
	app.Close()

	// A short fused-pipeline solve contributes the residual_sweeps counter
	// and the fused byte accounting that the residual_bytes_per_edge
	// benchdiff gate watches.
	cfgF := cfg
	cfgF.Fused = true
	appF, _, err := solveOnce(o, m, cfgF, newton.Options{MaxSteps: 2, CFL0: o.CFL0})
	if err != nil {
		return err
	}
	agg.Merge(appF.Prof)
	appF.Close()

	// A short staged-pipeline solve contributes the staged gather/scatter
	// byte accounting behind the tile_staged_bytes_per_edge benchdiff gate.
	// Both sides of that rate are exact functions of the two-level tiling,
	// so the gate holds exactly across machines.
	cfgS := cfg
	cfgS.Staged = true
	appS, _, err := solveOnce(o, m, cfgS, newton.Options{MaxSteps: 2, CFL0: o.CFL0})
	if err != nil {
		return err
	}
	agg.Merge(appS.Prof)
	appS.Close()

	// A one-step dedup solve contributes the deduplicated ILU/TRSV byte
	// accounting behind the ilu_bytes_per_row benchdiff gate. One step, so
	// the factorization it books is the freestream step-1 Jacobian — the
	// one with exact-bit repeated blocks for the content hash to collapse.
	cfgD := cfg
	cfgD.Dedup = true
	appD, _, err := solveOnce(o, m, cfgD, newton.Options{MaxSteps: 1, CFL0: o.CFL0})
	if err != nil {
		return err
	}
	agg.Merge(appD.Prof)
	appD.Close()

	// A two-rank distributed step contributes the communication kernels.
	rates, err := perfmodel.Measure(m, 1, false)
	if err != nil {
		return err
	}
	r, err := mpisim.Solve(m, mpisim.Config{
		Ranks:    2,
		Rates:    rates,
		Net:      perfmodel.Stampede(),
		MaxSteps: 1,
		RelTol:   1e-30,
		CFL0:     o.CFL0,
		Seed:     11,
	})
	if err != nil {
		return err
	}
	agg.Merge(r.Metrics)

	// A fault-injected mini-run contributes the recovery counters
	// (faults_injected, fault_restarts, fault_recomputed_steps,
	// fault_noise_us) so benchdiff gates see them. Fixed synthetic rates:
	// the crash schedule depends on the virtual-time trajectory, and only
	// pinned rates make the counters machine-independent.
	cleanTime, err := mpisim.Solve(m, faultQuickConfig(o, 0))
	if err != nil {
		return err
	}
	rf, err := mpisim.Solve(m, faultQuickConfig(o, cleanTime.Time/3))
	if err != nil {
		return err
	}
	agg.Merge(rf.Metrics)
	fmt.Fprintf(o.Out, "   fault mini-run: %d faults, %d restarts, %d recomputed steps\n",
		rf.FaultsInjected, rf.Restarts, rf.RecomputedSteps)

	// A scaling mini-sweep contributes the collective stage/hop counters
	// behind the collective_stages_per_allreduce benchdiff gate: four ranks
	// on two simulated nodes of a fat tree, one step per collective
	// algorithm, on the same pinned synthetic rates as the fault mini-run —
	// every stage and hop count is an exact function of (algo, topology,
	// rank count), so the gate holds exactly across machines.
	for _, algo := range []perfmodel.AllreduceAlgo{
		perfmodel.AllreduceTree, perfmodel.AllreduceFlat, perfmodel.AllreduceHier,
	} {
		net := perfmodel.StampedeFatTree()
		net.RanksPerNode = 2
		net.Algo = algo
		rs, err := mpisim.Solve(m, mpisim.Config{
			Ranks:    4,
			Natural:  true,
			Rates:    faultRates(),
			Net:      net,
			MaxSteps: 1,
			RelTol:   1e-30,
			CFL0:     o.CFL0,
			Seed:     11,
		})
		if err != nil {
			return err
		}
		agg.Merge(rs.Metrics)
	}

	// A placement mini-sweep contributes the point-to-point route counters
	// (ptp_hops, ptp_cross_node_bytes, ptp_cross_pod_bytes) behind the
	// ptp_hops_per_message benchdiff gate: four ranks on four single-rank
	// fat-tree nodes split across two pods, one step per placement. Hops
	// and boundary-crossing bytes are exact functions of (decomposition,
	// placement, topology), so the gate holds exactly across machines.
	for _, place := range []perfmodel.Placement{
		perfmodel.PlaceBlock, perfmodel.PlaceRoundRobin, perfmodel.PlaceLocality,
	} {
		net := perfmodel.StampedeFatTree()
		net.RanksPerNode = 1
		net.PodSize = 2
		net.Place = place
		rp, err := mpisim.Solve(m, mpisim.Config{
			Ranks:    4,
			Natural:  true,
			Rates:    faultRates(),
			Net:      net,
			MaxSteps: 1,
			RelTol:   1e-30,
			CFL0:     o.CFL0,
			Seed:     11,
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(o.Out, "   placement mini-run %v: %d hops, %d cross-node B, %d cross-pod B\n",
			place, rp.PtPHops, rp.PtPCrossNodeBytes, rp.PtPCrossPodBytes)
		agg.Merge(rp.Metrics)
	}

	// A two-job service mini-run contributes the multi-solve counters and
	// the Service batch clock. Both jobs run exactly 2 fixed steps, so the
	// service_steps_per_job gate sees 2.0 on any machine.
	if _, err := runServiceBatch(spec, cfg, 2, []float64{0, 3.06}, 2, agg); err != nil {
		return err
	}

	w := table(o)
	fmt.Fprintln(w, "kernel\tseconds\tcalls\tbytes\tGB/s")
	for _, k := range prof.Kernels() {
		s := agg.Total(k).Seconds()
		if s == 0 && agg.Count(k) == 0 {
			continue
		}
		fmt.Fprintf(w, "%v\t%.4f\t%d\t%d\t%.2f\n",
			k, s, agg.Count(k), agg.Bytes(k), agg.Bandwidth(k)/1e9)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	return emit(o, "quick", agg, m, map[string]any{
		"threads":         o.MaxThreads,
		"newton_steps":    3,
		"fused_steps":     2,
		"staged_steps":    2,
		"dedup_steps":     1,
		"ranks":           2,
		"scaling_ranks":   4,
		"placement_ranks": 4,
		"placements":      []string{"block", "roundrobin", "locality"},
		"cfl0":            o.CFL0,
		"fault_seed":      uint64(7),
		"service_jobs":    2,
		"service_steps":   2,
	}, nil)
}

// faultQuickConfig is the quick experiment's fault-injected distributed
// mini-run: two ranks on fixed synthetic rates, with crashes at the given
// MTBF (0 = the fault-free twin used to size the MTBF).
func faultQuickConfig(o *Options, mtbf float64) mpisim.Config {
	cfg := mpisim.Config{
		Ranks:    2,
		Rates:    faultRates(),
		Net:      perfmodel.Stampede(),
		MaxSteps: 4,
		RelTol:   1e-30,
		CFL0:     o.CFL0,
		Seed:     11,
	}
	if mtbf > 0 {
		cfg.Faults = mpisim.FaultConfig{Seed: 7, Noise: 0.25, MTBF: mtbf}
	}
	return cfg
}
