// Package bench implements the experiment harness: one entry point per
// table/figure of the paper's evaluation (Table I, Table II, Figures 5-11).
// Each experiment runs the real code under the relevant configurations and
// prints a "paper vs measured" report. cmd/experiments is the CLI wrapper;
// the root-level Go benchmarks reuse the same runners.
package bench

import (
	"fmt"
	"io"
	"path/filepath"
	"runtime"
	"sort"
	"text/tabwriter"

	"fun3d/internal/mesh"
	"fun3d/internal/prof"
)

// Options configures the harness.
type Options struct {
	Out io.Writer

	// JSONDir, when non-empty, makes every experiment write a
	// schema-versioned BENCH_<experiment>.json artifact (see prof.Artifact)
	// next to its text report. cmd/benchdiff compares two such artifacts.
	JSONDir string

	// SingleSpec is the mesh for single-node experiments (default SpecC).
	SingleSpec mesh.GenSpec
	// ClusterSpec is the mesh for multi-node experiments (default SpecC in
	// quick mode, SpecD otherwise).
	ClusterSpec mesh.GenSpec

	// MaxThreads caps thread sweeps (default: NumCPU).
	MaxThreads int

	// NodeCounts for Figures 9-11 (default quick: 1,4,16,64).
	NodeCounts []int
	// RanksPerNode (paper: 16; quick default: 4).
	RanksPerNode int
	// ThreadsPerRankHybrid for Fig 11 (paper: 8; quick default: 4).
	ThreadsPerRankHybrid int

	// ClusterSteps fixes the pseudo-time step count of cluster runs so all
	// configurations do comparable work (default 2).
	ClusterSteps int

	// CFL0 for the solve-based experiments (default 10).
	CFL0 float64

	// GMRES selects the Krylov orthogonalization variant for every solve
	// the harness runs: "classical" (default) or "pipelined" (one Allreduce
	// per inner iteration). The allreduce-scaling experiment runs both
	// regardless of this setting — it IS the comparison.
	GMRES string

	// PFDist overrides the flux prefetch lookahead distance in edges for
	// every prefetch-enabled kernel the harness runs (0 = flux default).
	// The locality experiment additionally sweeps a few distances around
	// it as a sanity check.
	PFDist int

	// Topology overrides the scaling campaign's interconnect hop model:
	// "flat", "fattree", or "dragonfly" (empty = the campaign default,
	// fattree).
	Topology string

	// Placement overrides the scaling campaign's rank→node mapping:
	// "block", "roundrobin", or "locality" (empty = the campaign default,
	// block). The placement experiment sweeps all three regardless — it IS
	// the comparison.
	Placement string

	// Quick shrinks everything for CI-style runs.
	Quick bool
}

func (o *Options) defaults() {
	if o.Out == nil {
		panic("bench: Options.Out is required")
	}
	if o.SingleSpec.NX == 0 {
		if o.Quick {
			o.SingleSpec = mesh.SpecTiny()
		} else {
			o.SingleSpec = mesh.SpecC()
		}
	}
	if o.ClusterSpec.NX == 0 {
		if o.Quick {
			o.ClusterSpec = mesh.SpecTiny()
		} else {
			o.ClusterSpec = mesh.SpecC()
		}
	}
	if o.MaxThreads <= 0 {
		o.MaxThreads = runtime.NumCPU()
	}
	if len(o.NodeCounts) == 0 {
		if o.Quick {
			o.NodeCounts = []int{1, 2, 4}
		} else {
			o.NodeCounts = []int{1, 4, 16, 64}
		}
	}
	if o.RanksPerNode <= 0 {
		if o.Quick {
			o.RanksPerNode = 2
		} else {
			o.RanksPerNode = 4
		}
	}
	if o.ThreadsPerRankHybrid <= 0 {
		o.ThreadsPerRankHybrid = 4 // the simulated node's threads, not this host's
	}
	if o.ClusterSteps <= 0 {
		o.ClusterSteps = 2
	}
	if o.CFL0 <= 0 {
		o.CFL0 = 10
	}
	if o.GMRES == "" {
		o.GMRES = "classical"
	}
}

// pipelined reports whether the harness-wide GMRES selection is the
// pipelined variant.
func (o *Options) pipelined() bool { return o.GMRES == "pipelined" }

// Experiments lists the available experiment names in paper order.
func Experiments() []string {
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

var registry = map[string]func(*Options) error{
	"table1":            table1,
	"table2":            table2,
	"fig5":              fig5,
	"fig6a":             fig6a,
	"fig6b":             fig6b,
	"fig7a":             fig7a,
	"fig7b":             fig7b,
	"fig8a":             fig8a,
	"fig8b":             fig8b,
	"fig9":              fig9,
	"fig10":             fig10,
	"fig11":             fig11,
	"overlap":           overlap,
	"quick":             quick,
	"allreduce-scaling": allreduceScaling,
	"scaling":           scaling,
	"placement":         placement,
	"faults":            faults,
	"locality":          locality,
	"precond":           precondExp,
	"service":           serviceExp,
}

// Run executes the named experiment ("all" runs every one in order).
func Run(name string, opt Options) error {
	opt.defaults()
	if opt.GMRES != "classical" && opt.GMRES != "pipelined" {
		return fmt.Errorf("bench: unknown GMRES variant %q (want classical or pipelined)", opt.GMRES)
	}
	if name == "all" {
		for _, n := range []string{"table1", "table2", "fig5", "fig6a", "fig6b",
			"fig7a", "fig7b", "fig8a", "fig8b", "fig9", "fig10", "fig11", "overlap",
			"allreduce-scaling", "scaling", "placement", "faults", "locality", "precond", "service", "quick"} {
			if err := Run(n, opt); err != nil {
				return fmt.Errorf("%s: %w", n, err)
			}
		}
		return nil
	}
	f, ok := registry[name]
	if !ok {
		return fmt.Errorf("bench: unknown experiment %q (have %v)", name, Experiments())
	}
	return f(&opt)
}

// header prints an experiment banner.
func header(o *Options, title, paperRef string) {
	fmt.Fprintf(o.Out, "\n== %s ==\n   paper reference: %s\n", title, paperRef)
}

// table returns a tabwriter on o.Out; callers must Flush.
func table(o *Options) *tabwriter.Writer {
	return tabwriter.NewWriter(o.Out, 2, 4, 2, ' ', 0)
}

// emit writes the experiment's JSON artifact when Options.JSONDir is set.
// m, config, and paper are optional context sections.
func emit(o *Options, name string, met *prof.Metrics, m *mesh.Mesh, config map[string]any, paper map[string]float64) error {
	if o.JSONDir == "" {
		return nil
	}
	art := prof.NewArtifact(name, met)
	art.Config = config
	art.Paper = paper
	if m != nil {
		art.Mesh = &prof.MeshInfo{Vertices: m.NumVertices(), Edges: m.NumEdges()}
	}
	path := filepath.Join(o.JSONDir, "BENCH_"+name+".json")
	if err := art.WriteFile(path); err != nil {
		return err
	}
	fmt.Fprintf(o.Out, "   wrote %s\n", path)
	return nil
}
