package bench

import (
	"fmt"
	"path/filepath"

	"fun3d/internal/core"
	"fun3d/internal/mesh"
	"fun3d/internal/newton"
	"fun3d/internal/precond"
	"fun3d/internal/prof"
)

// precondExp is the block-dedup preconditioner experiment: it sweeps
// {dedup off/on} x {ILU(0), ILU(1)} x {level, P2P scheduling} over two mesh
// families — the baseline wing mesh and a ~1.6x-scaled variant of it, so
// the unique-block ratio is measured at two resolutions of the same graded
// topology — and records the unique-block ratio of each store, the modeled
// ILU bytes per row, and the ILU-0-vs-ILU-1 parallelism/convergence
// tradeoff the paper reports. (A wing-free regular box is no use here: with
// only farfield boundaries the freestream state is already converged, so no
// Jacobian is ever assembled or factored.) Every configuration runs one
// pseudo-time step, so the Jacobian factored is the freestream step-1
// Jacobian: that is where dual-face/regularity repetition lives (later
// states diverge per vertex and exact-bit repeats disappear), and it is the
// factorization the modeled byte savings are claimed for.
//
// The artifact (BENCH_precond.json) carries the dedup-on aggregate as its
// metrics record; its rates section adds the dense-baseline rate and the
// store ratios so the dedup claim — ilu_bytes_per_row strictly below the
// undeduped baseline, unique ratio < 1 — is checkable from the JSON alone.
func precondExp(o *Options) error {
	header(o, "Precond: block-dedup BCSR stores + ILU-0 vs ILU-1",
		"repeated-block BCSR storage (arXiv:2508.06710) applied to the paper's TRSV/ILU recurrences; paper Table II for the fill-level tradeoff")

	families := []struct {
		name string
		spec mesh.GenSpec
	}{{"wing", o.SingleSpec}, {"wing1.6x", mesh.ScaleSpec(o.SingleSpec, 1.6)}}

	aggDedup := &prof.Metrics{}
	aggDense := &prof.Metrics{}
	var meshInfo *mesh.Mesh
	var srcUnique, srcBlocks int // totals over the dedup-on runs
	config := map[string]any{"threads": o.MaxThreads, "steps": 1}

	w := table(o)
	fmt.Fprintln(w, "mesh\tfill\tsched\tdedup\tuniq/blocks (A)\tuniq/blocks (LU)\tilu B/row\ttrsv B/apply\tparallelism\tlinear iters")
	for _, fam := range families {
		m, err := mesh.Generate(fam.spec)
		if err != nil {
			return err
		}
		if fam.name == "wing" {
			meshInfo = m
		}
		for _, fill := range []int{0, 1} {
			for _, sched := range []precond.Scheduling{precond.SchedLevel, precond.SchedP2P} {
				for _, dedup := range []bool{false, true} {
					cfg := core.OptimizedConfig(o.MaxThreads)
					cfg.FillLevel = fill
					cfg.Sched = sched
					cfg.Dedup = dedup
					app, r, err := solveOnce(o, m, cfg, newton.Options{MaxSteps: 1, CFL0: o.CFL0})
					if err != nil {
						return err
					}
					st := app.Pre.DedupStats()
					iluPerRow := 0.0
					if rows := app.Prof.Counter(prof.ILURows); rows > 0 {
						iluPerRow = float64(app.Prof.Bytes(prof.ILU)) / float64(rows)
					}
					trsvPerApply := app.Pre.SolveBytes()
					fmt.Fprintf(w, "%s\tILU-%d\t%v\t%v\t%d/%d (%.3f)\t%d/%d (%.3f)\t%.0f\t%d\t%.0fX\t%d\n",
						fam.name, fill, sched, dedup,
						st.SrcUnique, st.SrcBlocks, st.SrcRatio(),
						st.FacUnique, st.FacBlocks, st.FacRatio(),
						iluPerRow, trsvPerApply, app.Pre.Parallelism(), r.History.LinearIters)
					key := fmt.Sprintf("%s_ilu%d_%v_dedup=%v", fam.name, fill, sched, dedup)
					config[key+"_ilu_bytes_per_row"] = iluPerRow
					config[key+"_src_unique_ratio"] = st.SrcRatio()
					config[key+"_fac_unique_ratio"] = st.FacRatio()
					config[key+"_linear_iters"] = r.History.LinearIters
					config[key+"_parallelism"] = app.Pre.Parallelism()
					if dedup {
						aggDedup.Merge(app.Prof)
						srcUnique += st.SrcUnique
						srcBlocks += st.SrcBlocks
					} else {
						aggDense.Merge(app.Prof)
					}
					app.Close()
				}
			}
		}
	}
	if err := w.Flush(); err != nil {
		return err
	}

	dedupRate := float64(aggDedup.Bytes(prof.ILU)) / float64(aggDedup.Counter(prof.ILURows))
	denseRate := float64(aggDense.Bytes(prof.ILU)) / float64(aggDense.Counter(prof.ILURows))
	fmt.Fprintf(o.Out, "   aggregate ilu_bytes_per_row: dedup %.1f vs dense %.1f (%.4fX)\n",
		dedupRate, denseRate, dedupRate/denseRate)

	if o.JSONDir == "" {
		return nil
	}
	// The artifact's metrics record is the dedup-on aggregate (so its
	// ilu_bytes_per_row rate is the deduped figure); the dense baseline and
	// the store ratios ride along in rates for side-by-side gating.
	art := prof.NewArtifact("precond", aggDedup)
	art.Config = config
	art.Mesh = &prof.MeshInfo{Vertices: meshInfo.NumVertices(), Edges: meshInfo.NumEdges()}
	art.Rates["ilu_bytes_per_row_dense"] = denseRate
	// Aggregate source-store unique ratio over the dedup runs: < 1.0 means
	// the content hash found repeated blocks to collapse.
	if srcBlocks > 0 {
		art.Rates["ilu_unique_block_ratio"] = float64(srcUnique) / float64(srcBlocks)
	}
	path := filepath.Join(o.JSONDir, "BENCH_precond.json")
	if err := art.WriteFile(path); err != nil {
		return err
	}
	fmt.Fprintf(o.Out, "   wrote %s\n", path)
	return nil
}
