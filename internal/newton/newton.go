// Package newton implements the pseudo-transient Newton-Krylov driver (the
// paper's Eq. 2-3): at each pseudo-time step the linearized system
//
//	(V/Δt + ∂R/∂q) δq = −R(q)
//
// is solved inexactly with preconditioned matrix-free GMRES, the state is
// updated, and the time step grows by switched evolution relaxation (SER)
// so that Δt → ∞ and the iteration converges to Newton's method on the
// steady equations.
package newton

import (
	"context"
	"errors"
	"fmt"
	"math"
	"time"

	"fun3d/internal/flux"
	"fun3d/internal/geom"
	"fun3d/internal/krylov"
	"fun3d/internal/physics"
	"fun3d/internal/precond"
	"fun3d/internal/prof"
	"fun3d/internal/sparse"
	"fun3d/internal/vecop"
)

// Options configures the nonlinear solve.
type Options struct {
	CFL0     float64 // initial CFL number (default 50)
	CFLMax   float64 // SER cap (default 1e7)
	MaxSteps int     // pseudo-time step cap (default 200)
	RelTol   float64 // nonlinear convergence: ||R|| <= RelTol*||R0|| (default 1e-6)
	AbsTol   float64 // absolute residual floor (default 1e-12)

	LinearRelTol   float64 // inexact-Newton forcing term (default 1e-3)
	Restart        int     // GMRES restart (default 30)
	MaxLinearIters int     // per-step linear iteration cap (default 300)
	FusedNorms     bool    // communication-reducing GMRES orthogonalization
	// Pipelined selects the single-reduction-per-iteration GMRES variant
	// (krylov.Options.Pipelined). In shared memory the reductions are cheap,
	// so this mainly exists to validate the variant's numerics against the
	// classical path on real solves; mpisim is where it pays.
	Pipelined bool

	// RefactorEvery rebuilds the Jacobian/ILU preconditioner only every
	// k-th step (default 1 = every step). The paper calls factor reuse
	// "a problem-dependent optimization that is worth pursuing": the
	// preconditioner goes stale but each skipped step saves the Jacobian
	// assembly and ILU factorization entirely.
	RefactorEvery int

	SecondOrder bool    // MUSCL reconstruction in the residual
	Limiter     bool    // Venkatakrishnan limiter on the reconstruction
	VenkK       float64 // limiter constant (default 5)

	// Fused evaluates the second-order limited residual with the
	// cache-blocked single-sweep pipeline (flux.Kernels.ResidualFused)
	// instead of the three-sweep Gradient/Limiter/Residual sequence.
	// Takes effect only with SecondOrder && Limiter and AoS node data;
	// otherwise the three-sweep path runs.
	Fused bool

	// Staged evaluates the second-order limited residual with the
	// hierarchical staged pipeline (flux.Kernels.ResidualStaged): dense
	// per-tile SoA staging over a two-level tiling, tile-interior SIMD, and
	// coloring-based parallelism. Same preconditions as Fused; takes
	// precedence over it.
	Staged bool

	// Ctx, when non-nil, is checked at every pseudo-time step boundary;
	// once done, Solve returns ErrCanceled with the history so far. The
	// state vector is left at the last completed step, so a canceled solve
	// can be checkpointed and resumed exactly.
	Ctx context.Context

	// OnStep, when non-nil, is invoked after every completed pseudo-time
	// step with that step's stats (on the solving goroutine — keep it
	// cheap; the service layer uses it to stream residual histories).
	OnStep func(StepStats)

	// Resume continues a solve from checkpointed state instead of starting
	// fresh. The caller restores q to the checkpointed trajectory before
	// calling Solve; step numbering and the SER CFL reference pick up where
	// the original solve left off, so with RefactorEvery<=1 the resumed
	// trajectory is bit-identical to the uninterrupted one.
	Resume Resume
}

// Resume carries the cross-solve state a checkpoint must preserve for an
// exact restart: everything else the step loop needs is recomputed from q.
type Resume struct {
	// StartStep is the number of completed pseudo-time steps in the
	// checkpointed trajectory; the resumed solve begins at StartStep+1.
	// Zero means a fresh solve.
	StartStep int
	// RNorm0 is the initial residual norm of the ORIGINAL solve — the SER
	// CFL growth reference (cfl = CFL0*RNorm0/rnorm) and the relative
	// convergence/divergence reference. Required when StartStep > 0.
	RNorm0 float64
}

func (o *Options) defaults() {
	if o.CFL0 <= 0 {
		o.CFL0 = 50
	}
	if o.CFLMax <= 0 {
		o.CFLMax = 1e7
	}
	if o.MaxSteps <= 0 {
		o.MaxSteps = 200
	}
	if o.RelTol <= 0 {
		o.RelTol = 1e-6
	}
	if o.AbsTol <= 0 {
		o.AbsTol = 1e-12
	}
	if o.LinearRelTol <= 0 {
		o.LinearRelTol = 1e-3
	}
	if o.Restart <= 0 {
		o.Restart = 30
	}
	if o.MaxLinearIters <= 0 {
		o.MaxLinearIters = 300
	}
	if o.VenkK <= 0 {
		o.VenkK = 5
	}
}

// StepStats records one pseudo-time step.
type StepStats struct {
	Step        int
	RNorm       float64
	CFL         float64
	LinearIters int
	LinearConv  bool
}

// History is the outcome of a nonlinear solve.
type History struct {
	Steps       []StepStats
	RNorm0      float64
	RNormFinal  float64
	LinearIters int // total
	Converged   bool
}

// Stepper owns the solver state and scratch for one mesh/configuration.
type Stepper struct {
	K    *flux.Kernels
	Pre  *precond.ASM
	A    *sparse.BSR
	Ops  vecop.Ops
	Prof *prof.Metrics

	gmres krylov.GMRES

	// scratch
	res, rhs, dq, qp, rp []float64
	grad, phi            []float64
	dt, lambda           []float64
}

// NewStepper wires a stepper from its parts. a must have the mesh
// adjacency pattern; pre must be built on a's pattern.
func NewStepper(k *flux.Kernels, pre *precond.ASM, a *sparse.BSR, ops vecop.Ops, p *prof.Metrics) *Stepper {
	nv := k.M.NumVertices()
	n := nv * 4
	if p == nil {
		p = &prof.Metrics{} // counters below assume a sink
	}
	return &Stepper{
		K: k, Pre: pre, A: a, Ops: ops, Prof: p,
		res: make([]float64, n), rhs: make([]float64, n),
		dq: make([]float64, n), qp: make([]float64, n), rp: make([]float64, n),
		grad: make([]float64, nv*12), phi: make([]float64, n),
		dt: make([]float64, nv), lambda: make([]float64, nv),
		gmres: krylov.GMRES{Ops: ops, Met: p},
	}
}

// ErrDiverged reports a failed nonlinear solve.
var ErrDiverged = errors.New("newton: diverged")

// ErrCanceled reports a solve stopped by Options.Ctx. The returned History
// covers the steps completed before cancellation and the state vector holds
// the last completed step, ready to checkpoint.
var ErrCanceled = errors.New("newton: canceled")

// residual evaluates R(q) into out, with second-order machinery per opt.
// phi must already be current when frozen is true (linear-solve mode).
func (st *Stepper) residual(q, out []float64, opt *Options, frozenLimiter bool) {
	ne := int64(st.K.M.NumEdges())
	if opt.Staged && opt.SecondOrder && opt.Limiter && !st.K.Cfg.SoANodeData {
		// Hierarchical staged sweep: gather each inner tile's cover into a
		// dense staging buffer, compute gradient/limiter/flux on staged
		// data, scatter once per tile. The byte models split the staged
		// traffic into flux, gather, and scatter terms; the staged counters
		// feed the exact tile_staged_bytes_per_edge CI gate.
		st.Prof.Time(prof.Flux, func() { st.K.ResidualStaged(q, out, opt.VenkK, frozenLimiter) })
		fb, gb, sb := st.K.ResidualStagedBytes()
		st.Prof.Inc(prof.FluxEdges, ne)
		st.Prof.Inc(prof.GradEdges, ne)
		st.Prof.AddBytes(prof.Flux, fb+sb)
		st.Prof.AddBytes(prof.Gradient, gb)
		st.Prof.Inc(prof.StagedEdges, ne)
		st.Prof.Inc(prof.StagedGatherBytes, gb)
		st.Prof.Inc(prof.StagedScatterBytes, sb)
		st.Prof.Inc(prof.ResidualSweeps, 1)
		return
	}
	if opt.Fused && opt.SecondOrder && opt.Limiter && !st.K.Cfg.SoANodeData {
		// Single cache-blocked sweep: gradient, limiter and flux per edge
		// tile. One sweep instead of three; the byte models split the
		// fused traffic into its flux and gather phases.
		st.Prof.Time(prof.Flux, func() { st.K.ResidualFused(q, out, opt.VenkK, frozenLimiter) })
		fb, gb := st.K.ResidualFusedBytes()
		st.Prof.Inc(prof.FluxEdges, ne)
		st.Prof.Inc(prof.GradEdges, ne)
		st.Prof.AddBytes(prof.Flux, fb)
		st.Prof.AddBytes(prof.Gradient, gb)
		st.Prof.Inc(prof.ResidualSweeps, 1)
		return
	}
	var gr, ph []float64
	sweeps := int64(1)
	if opt.SecondOrder {
		st.Prof.Time(prof.Gradient, func() { st.K.Gradient(q, st.grad) })
		st.Prof.Inc(prof.GradEdges, ne)
		st.Prof.AddBytes(prof.Gradient, st.K.GradientBytes())
		sweeps++
		gr = st.grad
		if opt.Limiter {
			if !frozenLimiter {
				st.Prof.Time(prof.Gradient, func() { st.K.Limiter(q, st.grad, st.phi, opt.VenkK) })
				st.Prof.Inc(prof.GradEdges, ne)
				sweeps++
			}
			ph = st.phi
		}
	}
	st.Prof.Time(prof.Flux, func() { st.K.Residual(q, gr, ph, out) })
	st.Prof.Inc(prof.FluxEdges, ne)
	st.Prof.AddBytes(prof.Flux, st.K.ResidualBytes(opt.SecondOrder, ph != nil))
	st.Prof.Inc(prof.ResidualSweeps, sweeps)
}

// localTimeSteps fills st.dt with CFL*Vol/λ where λ sums the spectral radii
// of the incident dual faces (a vertex-based loop).
func (st *Stepper) localTimeSteps(q []float64, cfl float64) {
	m := st.K.M
	beta := st.K.Beta
	body := func(lo, hi int) {
		for v := lo; v < hi; v++ {
			lam := 0.0
			for idx := m.AdjPtr[v]; idx < m.AdjPtr[v+1]; idx++ {
				e := m.AdjEdge[idx]
				n := geom.Vec3{X: m.ENX[e], Y: m.ENY[e], Z: m.ENZ[e]}
				area := n.Norm()
				var qv physics.State
				copy(qv[:], q[v*4:v*4+4])
				lam += physics.SpectralRadius(qv, n, beta) * area
			}
			if lam == 0 {
				lam = math.Sqrt(beta) // isolated vertex safeguard
			}
			st.lambda[v] = lam
			st.dt[v] = cfl * m.Vol[v] / lam
		}
	}
	if st.K.Pool != nil {
		st.K.Pool.ParallelFor(m.NumVertices(), func(_, lo, hi int) { body(lo, hi) })
	} else {
		body(0, m.NumVertices())
	}
}

// Solve drives q (AoS nv*4, initialized by the caller, typically to
// freestream) to the steady state. Returns the convergence history.
func (st *Stepper) Solve(q []float64, opt Options) (History, error) {
	opt.defaults()
	h := History{}
	m := st.K.M
	nv := m.NumVertices()
	n := nv * 4

	st.residual(q, st.res, &opt, false)
	rnorm := st.Ops.Norm2(st.res)
	rnorm0 := rnorm
	firstStep := 1
	if opt.Resume.StartStep > 0 {
		// Resumed solve: rnorm is the recomputed residual at the
		// checkpointed state (bit-identical to the value the original solve
		// computed at the end of step StartStep, since the residual is a
		// deterministic function of q); the SER/convergence reference is the
		// original solve's.
		rnorm0 = opt.Resume.RNorm0
		firstStep = opt.Resume.StartStep + 1
	}
	h.RNorm0 = rnorm0
	h.RNormFinal = rnorm
	if firstStep == 1 && rnorm0 <= opt.AbsTol {
		h.Converged = true
		return h, nil
	}

	jvOp := st.matrixFreeOperator(q, &opt)
	prePre := &timedPre{pre: st.Pre, p: st.Prof}

	for step := firstStep; step <= opt.MaxSteps; step++ {
		if opt.Ctx != nil {
			select {
			case <-opt.Ctx.Done():
				return h, ErrCanceled
			default:
			}
		}
		// SER time step growth.
		cfl := opt.CFL0 * rnorm0 / rnorm
		if cfl > opt.CFLMax {
			cfl = opt.CFLMax
		}
		st.Prof.Time(prof.Other, func() { st.localTimeSteps(q, cfl) })

		// Assemble and factor the first-order preconditioning Jacobian
		// (reused across steps when RefactorEvery > 1). The first resumed
		// step always refactors: ILU factors are not checkpointed.
		refactor := step == firstStep
		if opt.RefactorEvery <= 1 || (step-1)%opt.RefactorEvery == 0 {
			refactor = true
		}
		if refactor {
			st.Prof.Time(prof.Jacobian, func() {
				st.K.Jacobian(q, st.A)
				flux.AddPseudoTimeTerm(st.A, m.Vol, st.dt)
			})
			st.Prof.Inc(prof.JacEdges, int64(m.NumEdges()))
			st.Prof.AddBytes(prof.Jacobian, st.K.JacobianBytes())
			var ferr error
			st.Prof.Time(prof.ILU, func() { ferr = st.Pre.Factorize(st.A) })
			if ferr != nil {
				return h, fmt.Errorf("newton step %d: %w", step, ferr)
			}
			st.Prof.Inc(prof.ILUBlocks, int64(st.Pre.NNZBlocks()))
			st.Prof.Inc(prof.ILURows, int64(st.Pre.Rows()))
			st.Prof.AddBytes(prof.ILU, st.Pre.FactorBytes())
		}

		// rhs = -R(q); solve J dq = rhs.
		st.Ops.Copy(st.rhs, st.res)
		st.Ops.Scale(-1, st.rhs)
		for i := 0; i < n; i++ {
			st.dq[i] = 0
		}
		t0 := time.Now()
		opBefore := jvOp.elapsed
		preBefore := prePre.elapsed
		lres, lerr := st.gmres.Solve(jvOp, prePre, st.rhs, st.dq, krylov.Options{
			Restart:    opt.Restart,
			MaxIters:   opt.MaxLinearIters,
			RelTol:     opt.LinearRelTol,
			FusedNorms: opt.FusedNorms,
			Pipelined:  opt.Pipelined,
			ZeroGuess:  true, // dq starts at zero; skips a matvec per step
		})
		gmresWall := time.Since(t0)
		st.Prof.Add(prof.VecOps, gmresWall-(jvOp.elapsed-opBefore)-(prePre.elapsed-preBefore))
		if lerr != nil {
			return h, fmt.Errorf("newton step %d: linear solve: %w", step, lerr)
		}
		h.LinearIters += lres.Iterations

		// Update and re-evaluate.
		st.Prof.Inc(prof.NewtonSteps, 1)
		st.Prof.Time(prof.VecOps, func() { st.Ops.AXPY(1, st.dq, q) })
		st.Prof.Inc(prof.VecElems, int64(n))
		st.residual(q, st.res, &opt, false)
		rnorm = st.Ops.Norm2(st.res)
		h.RNormFinal = rnorm
		h.Steps = append(h.Steps, StepStats{
			Step: step, RNorm: rnorm, CFL: cfl,
			LinearIters: lres.Iterations, LinearConv: lres.Converged,
		})
		if opt.OnStep != nil {
			opt.OnStep(h.Steps[len(h.Steps)-1])
		}
		if math.IsNaN(rnorm) || rnorm > 1e6*rnorm0 {
			return h, fmt.Errorf("%w at step %d: ||R||=%g", ErrDiverged, step, rnorm)
		}
		if rnorm <= opt.RelTol*rnorm0 || rnorm <= opt.AbsTol {
			h.Converged = true
			return h, nil
		}
	}
	return h, nil
}

// PoisonScratch NaN-fills the stepper's Newton-loop scratch vectors. Solver
// instance pools poison recycled steppers so any read of stale data before
// the loop rewrites it surfaces as NaN; every Solve fully writes res, dt,
// lambda, rhs, dq, qp and rp (and grad/phi on the paths that read them)
// before use, so a poisoned stepper solves correctly.
func (st *Stepper) PoisonScratch() {
	nan := math.NaN()
	for _, s := range [][]float64{st.res, st.rhs, st.dq, st.qp, st.rp, st.grad, st.phi, st.dt, st.lambda} {
		for i := range s {
			s[i] = nan
		}
	}
}

// matrixFreeOperator builds the JFNK operator for the current outer state:
//
//	J v = (V/Δt) ⊙ v + (R(q + h v) − R(q)) / h
//
// with the conventional differencing parameter. It reads st.res (the
// residual at q) and st.dt, which Solve keeps current.
type mfOp struct {
	st      *Stepper
	q       []float64
	opt     *Options
	elapsed time.Duration
}

func (st *Stepper) matrixFreeOperator(q []float64, opt *Options) *mfOp {
	return &mfOp{st: st, q: q, opt: opt}
}

// Apply implements krylov.Operator.
func (o *mfOp) Apply(v, y []float64) {
	t0 := time.Now()
	vnorm := o.st.Ops.Norm2(v)
	o.elapsed += time.Since(t0)
	o.ApplyWithNorm(v, y, vnorm)
}

// ApplyWithNorm implements krylov.NormedOperator: the pipelined solver
// supplies the exact ||v|| from its lag-normalization recurrence, saving
// the per-matvec norm reduction.
func (o *mfOp) ApplyWithNorm(v, y []float64, vnorm float64) {
	t0 := time.Now()
	st := o.st
	if vnorm == 0 {
		for i := range y {
			y[i] = 0
		}
		o.elapsed += time.Since(t0)
		return
	}
	qnorm := st.Ops.Norm2(o.q)
	h := math.Sqrt(2.2e-16) * (1 + qnorm) / vnorm
	st.Ops.WAXPY(st.qp, h, v, o.q)
	st.residual(st.qp, st.rp, o.opt, true)
	invH := 1 / h
	m := st.K.M
	body := func(lo, hi int) {
		for vtx := lo; vtx < hi; vtx++ {
			shift := m.Vol[vtx] / st.dt[vtx]
			for c := 0; c < 4; c++ {
				i := vtx*4 + c
				y[i] = shift*v[i] + (st.rp[i]-st.res[i])*invH
			}
		}
	}
	if st.K.Pool != nil {
		st.K.Pool.ParallelFor(m.NumVertices(), func(_, lo, hi int) { body(lo, hi) })
	} else {
		body(0, m.NumVertices())
	}
	o.elapsed += time.Since(t0)
}

// timedPre wraps the preconditioner with the TRSV stopwatch and the
// per-apply block/byte counters behind the Fig 7b bandwidth estimate.
type timedPre struct {
	pre     *precond.ASM
	p       *prof.Metrics
	elapsed time.Duration
}

// Apply implements krylov.Preconditioner.
func (t *timedPre) Apply(r, z []float64) {
	t0 := time.Now()
	t.pre.Apply(r, z)
	d := time.Since(t0)
	t.elapsed += d
	t.p.Add(prof.TRSV, d)
	t.p.Inc(prof.TRSVBlocks, int64(t.pre.NNZBlocks()))
	t.p.AddBytes(prof.TRSV, t.pre.SolveBytes())
}
