package newton

import (
	"math"
	"testing"

	"fun3d/internal/flux"
	"fun3d/internal/mesh"
	"fun3d/internal/par"
	"fun3d/internal/physics"
	"fun3d/internal/precond"
	"fun3d/internal/prof"
	"fun3d/internal/sparse"
	"fun3d/internal/vecop"
)

const beta = 5.0

func buildStepper(t testing.TB, m *mesh.Mesh, pool *par.Pool, strategy flux.Strategy, fill int) *Stepper {
	qInf := physics.FreeStream(3.06) // the M6 validation angle of attack
	part, err := flux.NewPartition(m, poolSize(pool), strategy, 1)
	if err != nil {
		t.Fatal(err)
	}
	k := flux.NewKernels(m, beta, qInf, pool, part, flux.Config{Strategy: strategy})
	a := sparse.NewBSRFromAdj(m.AdjPtr, m.Adj)
	sched := precond.SchedSequential
	if pool != nil {
		sched = precond.SchedP2P
	}
	pre, err := precond.New(a, pool, precond.Options{FillLevel: fill, Sched: sched})
	if err != nil {
		t.Fatal(err)
	}
	ops := vecop.Ops{Pool: pool}
	return NewStepper(k, pre, a, ops, &prof.Metrics{})
}

func poolSize(p *par.Pool) int {
	if p == nil {
		return 1
	}
	return p.Size()
}

func freestreamVec(m *mesh.Mesh, q physics.State) []float64 {
	out := make([]float64, m.NumVertices()*4)
	for v := 0; v < m.NumVertices(); v++ {
		copy(out[v*4:v*4+4], q[:])
	}
	return out
}

// The flagship integration test: starting from freestream, the implicit
// solver converges the wing flow by orders of magnitude.
func TestSolveWingFirstOrder(t *testing.T) {
	m, err := mesh.Generate(mesh.SpecTiny())
	if err != nil {
		t.Fatal(err)
	}
	st := buildStepper(t, m, nil, flux.Sequential, 0)
	q := freestreamVec(m, physics.FreeStream(3.06))
	h, err := st.Solve(q, Options{MaxSteps: 60, RelTol: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	if !h.Converged {
		t.Fatalf("not converged: ||R|| %g -> %g in %d steps",
			h.RNorm0, h.RNormFinal, len(h.Steps))
	}
	if h.RNormFinal > 1e-6*h.RNorm0 {
		t.Fatalf("weak convergence: %g -> %g", h.RNorm0, h.RNormFinal)
	}
	t.Logf("converged in %d steps, %d linear iters, ||R|| %.3e -> %.3e",
		len(h.Steps), h.LinearIters, h.RNorm0, h.RNormFinal)
	// The solution must deviate from freestream near the wing (a wall
	// exists), i.e. pressure is non-trivial somewhere.
	maxP := 0.0
	for v := 0; v < m.NumVertices(); v++ {
		if p := math.Abs(q[v*4]); p > maxP {
			maxP = p
		}
	}
	if maxP < 1e-4 {
		t.Fatalf("solution suspiciously close to freestream: max|p|=%g", maxP)
	}
}

// On a wing-less box the freestream IS the steady state: the solver must
// report immediate convergence.
func TestSolveBoxImmediate(t *testing.T) {
	m, err := mesh.Generate(mesh.GenSpec{NX: 6, NY: 5, NZ: 5, Shuffle: true, Seed: 2,
		XMin: -1, XMax: 1, YMin: 0.1, YMax: 1.9, ZMin: -1, ZMax: 1})
	if err != nil {
		t.Fatal(err)
	}
	st := buildStepper(t, m, nil, flux.Sequential, 0)
	q := freestreamVec(m, physics.FreeStream(3.06))
	h, err := st.Solve(q, Options{MaxSteps: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !h.Converged || len(h.Steps) != 0 {
		t.Fatalf("box should converge immediately: %+v", h)
	}
}

// The threaded solver must produce the same convergence history shape and
// a converged solution close to the sequential one.
func TestSolveParallelMatches(t *testing.T) {
	m, err := mesh.Generate(mesh.SpecTiny())
	if err != nil {
		t.Fatal(err)
	}
	stSeq := buildStepper(t, m, nil, flux.Sequential, 0)
	qSeq := freestreamVec(m, physics.FreeStream(3.06))
	hSeq, err := stSeq.Solve(qSeq, Options{MaxSteps: 60})
	if err != nil {
		t.Fatal(err)
	}

	pool := par.NewPool(4)
	defer pool.Close()
	stPar := buildStepper(t, m, pool, flux.ReplicateMETIS, 0)
	qPar := freestreamVec(m, physics.FreeStream(3.06))
	hPar, err := stPar.Solve(qPar, Options{MaxSteps: 60})
	if err != nil {
		t.Fatal(err)
	}
	if !hSeq.Converged || !hPar.Converged {
		t.Fatalf("seq conv=%v par conv=%v", hSeq.Converged, hPar.Converged)
	}
	// Same physics: solutions agree to solver tolerance.
	maxDiff := 0.0
	for i := range qSeq {
		if d := math.Abs(qSeq[i] - qPar[i]); d > maxDiff {
			maxDiff = d
		}
	}
	if maxDiff > 1e-3 {
		t.Fatalf("parallel solution differs by %g", maxDiff)
	}
	// Step counts should be similar (identical algorithm, FP noise only).
	if absInt(len(hSeq.Steps)-len(hPar.Steps)) > 3 {
		t.Fatalf("step counts diverge: %d vs %d", len(hSeq.Steps), len(hPar.Steps))
	}
}

func absInt(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// Second-order with limiter converges too.
func TestSolveSecondOrder(t *testing.T) {
	m, err := mesh.Generate(mesh.SpecTiny())
	if err != nil {
		t.Fatal(err)
	}
	st := buildStepper(t, m, nil, flux.Sequential, 0)
	q := freestreamVec(m, physics.FreeStream(3.06))
	h, err := st.Solve(q, Options{MaxSteps: 100, SecondOrder: true, Limiter: true, RelTol: 1e-5})
	if err != nil {
		t.Fatal(err)
	}
	if !h.Converged {
		t.Fatalf("second-order not converged: %g -> %g (%d steps)",
			h.RNorm0, h.RNormFinal, len(h.Steps))
	}
	t.Logf("second-order: %d steps, %d linear iters", len(h.Steps), h.LinearIters)
}

// ILU-1 preconditioning must reduce linear iterations versus ILU-0 — the
// convergence half of Table II.
func TestILU1FewerIterations(t *testing.T) {
	m, err := mesh.Generate(mesh.SpecTiny())
	if err != nil {
		t.Fatal(err)
	}
	iters := map[int]int{}
	for _, fill := range []int{0, 1} {
		st := buildStepper(t, m, nil, flux.Sequential, fill)
		q := freestreamVec(m, physics.FreeStream(3.06))
		h, err := st.Solve(q, Options{MaxSteps: 60})
		if err != nil {
			t.Fatal(err)
		}
		if !h.Converged {
			t.Fatalf("fill=%d not converged", fill)
		}
		iters[fill] = h.LinearIters
	}
	if iters[1] >= iters[0] {
		t.Fatalf("ILU-1 (%d iters) should beat ILU-0 (%d iters)", iters[1], iters[0])
	}
	t.Logf("linear iterations: ILU-0=%d ILU-1=%d", iters[0], iters[1])
}

// Profile must attribute time to all major kernels during a solve.
func TestProfileCoverage(t *testing.T) {
	m, err := mesh.Generate(mesh.SpecTiny())
	if err != nil {
		t.Fatal(err)
	}
	st := buildStepper(t, m, nil, flux.Sequential, 0)
	q := freestreamVec(m, physics.FreeStream(3.06))
	if _, err := st.Solve(q, Options{MaxSteps: 10, RelTol: 1e-3}); err != nil {
		t.Fatal(err)
	}
	p := st.Prof
	for _, k := range []prof.Kernel{prof.Flux, prof.Jacobian, prof.ILU, prof.TRSV} {
		if p.Total(k) <= 0 {
			t.Fatalf("kernel %v has no recorded time", k)
		}
	}
	if p.Sum() <= 0 {
		t.Fatal("empty profile")
	}
	if p.String() == "" {
		t.Fatal("empty profile string")
	}
}

// RefactorEvery reuses the ILU factor across steps: fewer factorizations,
// still converges (possibly with a few more iterations).
func TestRefactorEveryReusesFactors(t *testing.T) {
	m, err := mesh.Generate(mesh.SpecTiny())
	if err != nil {
		t.Fatal(err)
	}
	st1 := buildStepper(t, m, nil, flux.Sequential, 0)
	q1 := freestreamVec(m, physics.FreeStream(3.06))
	h1, err := st1.Solve(q1, Options{MaxSteps: 80})
	if err != nil {
		t.Fatal(err)
	}
	st3 := buildStepper(t, m, nil, flux.Sequential, 0)
	q3 := freestreamVec(m, physics.FreeStream(3.06))
	h3, err := st3.Solve(q3, Options{MaxSteps: 80, RefactorEvery: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !h1.Converged || !h3.Converged {
		t.Fatalf("convergence: %v %v", h1.Converged, h3.Converged)
	}
	if st3.Prof.Count(prof.ILU) >= st1.Prof.Count(prof.ILU) {
		t.Fatalf("factorizations not reduced: %d vs %d",
			st3.Prof.Count(prof.ILU), st1.Prof.Count(prof.ILU))
	}
	t.Logf("ILU factorizations: every-step=%d, every-3rd=%d; iters %d vs %d",
		st1.Prof.Count(prof.ILU), st3.Prof.Count(prof.ILU), h1.LinearIters, h3.LinearIters)
}

// FusedNorms converges identically in the shared-memory solver.
func TestNewtonFusedNorms(t *testing.T) {
	m, err := mesh.Generate(mesh.SpecTiny())
	if err != nil {
		t.Fatal(err)
	}
	st := buildStepper(t, m, nil, flux.Sequential, 0)
	q := freestreamVec(m, physics.FreeStream(3.06))
	h, err := st.Solve(q, Options{MaxSteps: 60, FusedNorms: true})
	if err != nil {
		t.Fatal(err)
	}
	if !h.Converged {
		t.Fatalf("fused norms solve failed: %+v", h)
	}
}
