package flux

import (
	"fmt"

	"fun3d/internal/geom"
	"fun3d/internal/tile"
)

// This file implements the cache-blocked fused residual pipeline: one sweep
// over LLC-sized edge tiles that computes the Green-Gauss gradient, the
// Venkatakrishnan limiter, and the second-order flux while the tile's state
// and geometry are still cache-resident, instead of three full passes over
// the mesh (Gradient, Limiter, Residual).
//
// The gradient of a CLOSED cover vertex (every incident edge inside the
// tile) is accumulated by SCATTERING the tile's edges once — the very same
// gradEdgesRange/gradEdgesOwner loops the three-sweep Gradient runs,
// restricted to the span; an OPEN (halo) vertex GATHERS its incident edges
// in ascending edge id. Either way each accumulator sees its incident edges
// in ascending order, which is the exact IEEE operation sequence of the
// sequential scatter loop — so the fused result is bit-identical to the
// three-sweep path (pinned by TestResidualFusedConformance).
//
// The span scatter runs UNGUARDED: an edge of span T can only touch tile
// T's cover (a vertex closed in another tile T' has, by definition, every
// incident edge inside T', so no span-T edge reaches it). Open vertices
// ride the same scatter for their in-span contributions — each tile first
// zeroes them and gathers their incident edges BELOW the span (the
// prefix), lets the span scatter append the in-span terms, then gathers
// the edges ABOVE the span (the suffix); prefix + span + suffix is the
// full ascending incident list, so the redundant traffic per halo vertex
// is only its out-of-span edges. Halo vertices are recomputed in every
// tile that touches them; at LLC-sized tiles that is a few percent of the
// vertices, and the recomputation is byte-cheap next to the two full
// passes it eliminates.

// Tiling returns the edge tiling used by ResidualFused, building it on
// first use with Cfg.TileEdges edges per span (<= 0 selects
// tile.DefaultEdgesPerTile).
func (k *Kernels) Tiling() *tile.Tiling {
	return k.coverOrBuild().Tiling
}

// SetCover injects a shared, read-only Cover (tiling + owned-cover CSRs)
// built by BuildCover for this kernel set's mesh, partition, and tile size.
// Sharing one Cover across the Kernels of many concurrent solves is how the
// multi-solve service avoids rebuilding (and re-storing) the cache-blocking
// structure per job. The cover's tile size must match Cfg.TileEdges.
func (k *Kernels) SetCover(c *Cover) {
	if c.Tiling.EdgesPerTile != k.effectiveTileEdges() {
		panic(fmt.Sprintf("flux: shared cover has %d edges/tile, kernels want %d",
			c.Tiling.EdgesPerTile, k.effectiveTileEdges()))
	}
	if it := k.effectiveInnerTileEdges(); it > 0 && c.Tiling.InnerEdgesPerTile != it {
		panic(fmt.Sprintf("flux: shared cover has %d edges/inner-tile, staged kernels want %d",
			c.Tiling.InnerEdgesPerTile, it))
	}
	k.cover = c
	k.sharedCover = true
}

// coverOrBuild returns the cover, building a private one on first use when
// none was injected (and rebuilding a private one whose outer or inner tile
// size no longer matches the config). A shared cover is never rebuilt: its
// tile sizes were validated by SetCover and its owned lists were built for
// this partition.
func (k *Kernels) coverOrBuild() *Cover {
	stale := k.cover != nil && !k.sharedCover &&
		(k.cover.Tiling.EdgesPerTile != k.effectiveTileEdges() ||
			(k.effectiveInnerTileEdges() > 0 && k.cover.Tiling.InnerEdgesPerTile != k.effectiveInnerTileEdges()))
	if k.cover == nil || stale {
		k.cover = BuildCover(k.M, k.Part, k.Cfg.TileEdges, k.effectiveInnerTileEdges())
	}
	return k.cover
}

func (k *Kernels) effectiveTileEdges() int {
	if k.Cfg.TileEdges > 0 {
		return k.Cfg.TileEdges
	}
	return tile.DefaultEdgesPerTile
}

// fusedShared returns the gradient/limiter scratch the fused sweep fills
// tile-by-tile, allocating on first use. The phi array persists between
// calls, which is what frozen-limiter evaluations reuse.
func (k *Kernels) fusedShared() (grad, phi []float64) {
	nv := k.M.NumVertices()
	if len(k.fusedGrad) != nv*12 {
		k.fusedGrad = make([]float64, nv*12)
		k.fusedPhi = make([]float64, nv*4)
	}
	return k.fusedGrad, k.fusedPhi
}

// fusedOwnedCover returns the cover with the per-thread owned closed/open
// CSRs present, building them on the private cover when it was constructed
// without a partition (a shared cover arrives with them prebuilt).
func (k *Kernels) fusedOwnedCover() *Cover {
	c := k.coverOrBuild()
	if !c.hasOwned() {
		c.buildOwned(k.Part)
	}
	return c
}

// zeroGradRuns zeroes the gradients of a sorted vertex list. Consecutive
// runs (the common case: a tile's closed set is nearly an interval under
// RCM/SFC ordering) are cleared as one contiguous slice, which the compiler
// lowers to memclr — matching the cost of the three-sweep path's whole-array
// zero.
func zeroGradRuns(grad []float64, list []int32) {
	for i := 0; i < len(list); {
		j := i + 1
		for j < len(list) && list[j] == list[j-1]+1 {
			j++
		}
		g := grad[int(list[i])*12 : (int(list[j-1])+1)*12]
		for x := range g {
			g[x] = 0
		}
		i = j
	}
}

// finishGradVertex applies vertex v's boundary closure (in BNodes index
// order) and the 1/Vol scale — the tail every gradient path shares.
func (k *Kernels) finishGradVertex(q, grad []float64, v int32, t *tile.Tiling) {
	m := k.M
	g := grad[v*12 : v*12+12]
	lo, hi := t.BNRange(v)
	for i := lo; i < hi; i++ {
		bn := m.BNodes[i]
		n := bn.Normal
		for c := 0; c < 4; c++ {
			qv := q[int(v)*4+c]
			g[c*3] += n.X * qv
			g[c*3+1] += n.Y * qv
			g[c*3+2] += n.Z * qv
		}
	}
	inv := 1 / m.Vol[v]
	for i := 0; i < 12; i++ {
		g[i] *= inv
	}
}

// gatherGradVertex computes vertex v's complete Green-Gauss gradient into
// grad[v*12:], accumulating incident edges in ascending edge id (the same
// per-accumulator operation order as the scatter loops), then the boundary
// closure and the 1/Vol scale.
func (k *Kernels) gatherGradVertex(q, grad []float64, v int32, t *tile.Tiling) {
	m := k.M
	g := grad[v*12 : v*12+12]
	for i := range g {
		g[i] = 0
	}
	for _, e := range t.Inc(v) {
		a, b := m.EV1[e], m.EV2[e]
		n := geom.Vec3{X: m.ENX[e], Y: m.ENY[e], Z: m.ENZ[e]}
		if a == v {
			for c := 0; c < 4; c++ {
				avg := 0.5 * (q[int(a)*4+c] + q[int(b)*4+c])
				g[c*3] += n.X * avg
				g[c*3+1] += n.Y * avg
				g[c*3+2] += n.Z * avg
			}
		} else {
			for c := 0; c < 4; c++ {
				avg := 0.5 * (q[int(a)*4+c] + q[int(b)*4+c])
				g[c*3] -= n.X * avg
				g[c*3+1] -= n.Y * avg
				g[c*3+2] -= n.Z * avg
			}
		}
	}
	k.finishGradVertex(q, grad, v, t)
}

// gatherTileVertex computes one halo vertex's gradient and, unless the
// limiter is frozen, its limiter values.
func (k *Kernels) gatherTileVertex(q, grad, phi []float64, v int32, t *tile.Tiling, kVenk float64, frozenPhi bool) {
	k.gatherGradVertex(q, grad, v, t)
	if !frozenPhi {
		k.limiterVertex(q, grad, phi, int(v), kVenk)
	}
}

// gatherGradPrefix zeroes vertex v's gradient and accumulates its incident
// edges BELOW lo (ascending). Together with the span scatter (edges in
// [lo,hi), in order) and gatherGradSuffix (edges >= hi), a halo vertex sees
// its full incident list in ascending edge id — the same operation sequence
// as a complete gather — while gathering only its out-of-span edges.
func (k *Kernels) gatherGradPrefix(q, grad []float64, v int32, t *tile.Tiling, lo int) {
	m := k.M
	g := grad[v*12 : v*12+12]
	for i := range g {
		g[i] = 0
	}
	for _, e := range t.Inc(v) {
		if int(e) >= lo {
			break
		}
		a, b := m.EV1[e], m.EV2[e]
		n := geom.Vec3{X: m.ENX[e], Y: m.ENY[e], Z: m.ENZ[e]}
		if a == v {
			for c := 0; c < 4; c++ {
				avg := 0.5 * (q[int(a)*4+c] + q[int(b)*4+c])
				g[c*3] += n.X * avg
				g[c*3+1] += n.Y * avg
				g[c*3+2] += n.Z * avg
			}
		} else {
			for c := 0; c < 4; c++ {
				avg := 0.5 * (q[int(a)*4+c] + q[int(b)*4+c])
				g[c*3] -= n.X * avg
				g[c*3+1] -= n.Y * avg
				g[c*3+2] -= n.Z * avg
			}
		}
	}
}

// gatherGradSuffix accumulates vertex v's incident edges at or above hi
// (ascending), then finishes the gradient and, unless frozen, the limiter —
// the tail of the prefix/scatter/suffix halo sequence.
func (k *Kernels) gatherGradSuffix(q, grad, phi []float64, v int32, t *tile.Tiling, hi int, kVenk float64, frozenPhi bool) {
	m := k.M
	g := grad[v*12 : v*12+12]
	inc := t.Inc(v)
	for i := len(inc) - 1; i >= 0; i-- {
		if int(inc[i]) < hi {
			inc = inc[i+1:]
			break
		}
	}
	for _, e := range inc {
		a, b := m.EV1[e], m.EV2[e]
		n := geom.Vec3{X: m.ENX[e], Y: m.ENY[e], Z: m.ENZ[e]}
		if a == v {
			for c := 0; c < 4; c++ {
				avg := 0.5 * (q[int(a)*4+c] + q[int(b)*4+c])
				g[c*3] += n.X * avg
				g[c*3+1] += n.Y * avg
				g[c*3+2] += n.Z * avg
			}
		} else {
			for c := 0; c < 4; c++ {
				avg := 0.5 * (q[int(a)*4+c] + q[int(b)*4+c])
				g[c*3] -= n.X * avg
				g[c*3+1] -= n.Y * avg
				g[c*3+2] -= n.Z * avg
			}
		}
	}
	k.finishGradVertex(q, grad, v, t)
	if !frozenPhi {
		k.limiterVertex(q, grad, phi, int(v), kVenk)
	}
}

// ResidualFused evaluates the full second-order limited residual
// res = R(q) in a single cache-blocked sweep: per edge tile, gradient
// (scatter for tile-closed vertices, gather for the halo) and limiter over
// the covering vertices, then the flux of the tile's edges, all while the
// tile's working set is cache-resident. kVenk is the Venkatakrishnan
// constant; with frozenPhi the limiter field of the previous unfrozen call
// is reused (the Newton matvec convention). Requires AoS node data; q and
// res are nv*4 AoS vectors.
//
// With identical mesh ordering the result is bit-identical to
// Gradient + Limiter + Residual for the deterministic strategies
// (Sequential, ReplicateNatural, ReplicateMETIS); Atomic and Colored agree
// to within the usual reassociation rounding of their unfused forms.
func (k *Kernels) ResidualFused(q, res []float64, kVenk float64, frozenPhi bool) {
	if k.Cfg.SoANodeData {
		panic("flux: ResidualFused requires AoS node data")
	}
	t := k.Tiling()
	grad, phi := k.fusedShared()
	k.ResidualBegin(res)
	switch k.Cfg.Strategy {
	case Sequential:
		for ti, sp := range t.Spans {
			zeroGradRuns(grad, t.ClosedOf(ti))
			for _, v := range t.OpenOf(ti) {
				k.gatherGradPrefix(q, grad, v, t, sp.Lo)
			}
			k.gradEdgesRange(q, grad, sp.Lo, sp.Hi)
			for _, v := range t.ClosedOf(ti) {
				k.finishGradVertex(q, grad, v, t)
				if !frozenPhi {
					k.limiterVertex(q, grad, phi, int(v), kVenk)
				}
			}
			for _, v := range t.OpenOf(ti) {
				k.gatherGradSuffix(q, grad, phi, v, t, sp.Hi, kVenk, frozenPhi)
			}
			if k.Cfg.SIMD {
				k.resEdgesSIMDRange(q, grad, phi, res, sp.Lo, sp.Hi, 0)
			} else {
				k.resEdgesRange(q, grad, phi, res, sp.Lo, sp.Hi, k.Cfg.Prefetch, 0)
			}
		}
	case ReplicateNatural, ReplicateMETIS:
		// One owner-writes sweep per thread: each tile is a gradient phase
		// (every thread zeroes its owned closed vertices, prefix-gathers its
		// owned halo vertices, scatters its edge sub-list into everything it
		// owns — the same unguarded span scatter as the Sequential path, by
		// ownership — then finishes the closed ones and suffix-gathers the
		// halo) and a flux phase (owner-only residual writes over the
		// thread's edge sub-list). The Pool.Run joins are the only barriers
		// and all writes are owner-partitioned, so the sweep is race-free
		// and deterministic. A thread's edge sub-list contains every edge
		// incident to its owned vertices, so the in-span contributions of
		// an owned halo vertex all arrive from its own scatter.
		c := k.fusedOwnedCover()
		p := k.Part
		for ti, sp := range t.Spans {
			lo, hi := sp.Lo, sp.Hi
			k.Pool.Run(func(tid int) {
				cp := c.OwnedClosedPtr[tid]
				closed := c.OwnedClosed[tid][cp[ti]:cp[ti+1]]
				zeroGradRuns(grad, closed)
				op := c.OwnedOpenPtr[tid]
				open := c.OwnedOpen[tid][op[ti]:op[ti+1]]
				for _, v := range open {
					k.gatherGradPrefix(q, grad, v, t, lo)
				}
				list := edgeSubRange(p.EdgeList[tid], lo, hi)
				k.gradEdgesOwner(q, grad, list, p.Owner, int32(tid))
				for _, v := range closed {
					k.finishGradVertex(q, grad, v, t)
					if !frozenPhi {
						k.limiterVertex(q, grad, phi, int(v), kVenk)
					}
				}
				for _, v := range open {
					k.gatherGradSuffix(q, grad, phi, v, t, hi, kVenk, frozenPhi)
				}
			})
			k.Pool.Run(func(tid int) {
				list := edgeSubRange(p.EdgeList[tid], lo, hi)
				if k.Cfg.SIMD {
					k.repEdgesSIMD(q, grad, phi, res, list, p.Owner, int32(tid))
				} else {
					k.repEdges(q, grad, phi, res, list, p.Owner, int32(tid), k.Cfg.Prefetch, tid)
				}
			})
		}
	case Atomic, Colored:
		// No vertex ownership to scatter under: gather over the whole
		// cover in parallel (each vertex is written by exactly one chunk),
		// then the strategy's own flux traversal of the tile's edge range.
		for ti, sp := range t.Spans {
			cover := t.CoverOf(ti)
			k.Pool.ParallelFor(len(cover), func(_, clo, chi int) {
				for i := clo; i < chi; i++ {
					k.gatherTileVertex(q, grad, phi, cover[i], t, kVenk, frozenPhi)
				}
			})
			k.ResidualEdgeRange(q, grad, phi, res, sp.Lo, sp.Hi)
		}
	}
	k.ResidualBoundary(q, res)
	k.ResidualEnd(res)
}

// ResidualFusedBytes models the DRAM traffic of one fused evaluation,
// split into the flux phase and the gradient+limiter phase — the fused
// counterparts of ResidualBytes and GradientBytes. The flux phase streams
// the edge data once with cache-resident reconstruction inputs: endpoint
// ids (8B), normal (24B), and the residual read-modify-write (128B) per
// edge; the gradient scatter re-traverses the same span while it is still
// cache-resident, so it adds no edge traffic. The gradient phase pays, per
// cover-vertex visit, the vertex's state (32B), gradient write (96B), phi
// write (32B), volume (8B) and coordinates (24B), plus the incident-edge
// ids and normals (8B + 24B) per OUT-OF-SPAN halo gather edge visit — the
// only redundant edge traffic the prefix/scatter/suffix halo scheme leaves.
func (k *Kernels) ResidualFusedBytes() (fluxBytes, gradBytes int64) {
	t := k.Tiling()
	fluxBytes = int64(k.M.NumEdges()) * (8 + 24 + 128)
	gradBytes = t.VertexVisits*(32+96+32+8+24) + t.OpenGatherEdgeVisits*(8+24)
	return fluxBytes, gradBytes
}
