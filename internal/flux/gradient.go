package flux

import (
	"math"

	"fun3d/internal/geom"
	"fun3d/internal/par"
)

// Gradient computes Green-Gauss nodal gradients of the state: grad is an
// nv*12 array, layout [v*12 + comp*3 + dim] (the paper's AoS node-data
// grouping: "the gradient in each of the three dimensions for these state
// variables (nVertices × 4 × 3)"). q is AoS. Uses the configured strategy
// (Colored falls back to the owner-writes path when a partition exists,
// else Atomic semantics are not needed because gradient shares the edge
// structure of Residual).
//
// Edge-based Green-Gauss: the face value is the endpoint average, so
//
//	∇q_a += n̄_e (q_a+q_b)/2 ,  ∇q_b -= n̄_e (q_a+q_b)/2
//
// plus boundary closure with the vertex's own value, then division by the
// dual volume.
func (k *Kernels) Gradient(q, grad []float64) {
	for i := range grad {
		grad[i] = 0
	}
	switch k.Cfg.Strategy {
	case Sequential, Colored:
		k.gradEdgesRange(q, grad, 0, k.M.NumEdges())
		k.gradBoundaryAndScale(q, grad, 0, 1)
	case Atomic:
		k.gradientAtomic(q, grad)
	case ReplicateNatural, ReplicateMETIS:
		p := k.Part
		k.Pool.Run(func(tid int) {
			k.gradEdgesOwner(q, grad, p.EdgeList[tid], p.Owner, int32(tid))
		})
		k.Pool.Run(func(tid int) {
			k.gradBoundaryAndScaleOwner(q, grad, p.Owner, int32(tid))
		})
	}
}

func (k *Kernels) gradEdgesRange(q, grad []float64, lo, hi int) {
	m := k.M
	for e := lo; e < hi; e++ {
		a, b := m.EV1[e], m.EV2[e]
		n := geom.Vec3{X: m.ENX[e], Y: m.ENY[e], Z: m.ENZ[e]}
		ga := grad[a*12 : a*12+12]
		gb := grad[b*12 : b*12+12]
		for c := 0; c < 4; c++ {
			avg := 0.5 * (q[int(a)*4+c] + q[int(b)*4+c])
			ga[c*3] += n.X * avg
			ga[c*3+1] += n.Y * avg
			ga[c*3+2] += n.Z * avg
			gb[c*3] -= n.X * avg
			gb[c*3+1] -= n.Y * avg
			gb[c*3+2] -= n.Z * avg
		}
	}
}

func (k *Kernels) gradEdgesOwner(q, grad []float64, list []int32, owner []int32, tid int32) {
	m := k.M
	for _, e := range list {
		a, b := m.EV1[e], m.EV2[e]
		n := geom.Vec3{X: m.ENX[e], Y: m.ENY[e], Z: m.ENZ[e]}
		if owner[a] == tid {
			ga := grad[a*12 : a*12+12]
			for c := 0; c < 4; c++ {
				avg := 0.5 * (q[int(a)*4+c] + q[int(b)*4+c])
				ga[c*3] += n.X * avg
				ga[c*3+1] += n.Y * avg
				ga[c*3+2] += n.Z * avg
			}
		}
		if owner[b] == tid {
			gb := grad[b*12 : b*12+12]
			for c := 0; c < 4; c++ {
				avg := 0.5 * (q[int(a)*4+c] + q[int(b)*4+c])
				gb[c*3] -= n.X * avg
				gb[c*3+1] -= n.Y * avg
				gb[c*3+2] -= n.Z * avg
			}
		}
	}
}

// gradBoundaryAndScale adds boundary closure terms and divides by dual
// volume, for vertices v with v % stride == offset (stride=1 covers all).
func (k *Kernels) gradBoundaryAndScale(q, grad []float64, offset, stride int) {
	m := k.M
	for _, bn := range m.BNodes {
		if stride > 1 && int(bn.V)%stride != offset {
			continue
		}
		g := grad[bn.V*12 : bn.V*12+12]
		n := bn.Normal
		for c := 0; c < 4; c++ {
			qv := q[int(bn.V)*4+c]
			g[c*3] += n.X * qv
			g[c*3+1] += n.Y * qv
			g[c*3+2] += n.Z * qv
		}
	}
	for v := offset; v < m.NumVertices(); v += stride {
		inv := 1 / m.Vol[v]
		g := grad[v*12 : v*12+12]
		for i := 0; i < 12; i++ {
			g[i] *= inv
		}
	}
}

func (k *Kernels) gradBoundaryAndScaleOwner(q, grad []float64, owner []int32, tid int32) {
	m := k.M
	for _, bn := range m.BNodes {
		if owner[bn.V] != tid {
			continue
		}
		g := grad[bn.V*12 : bn.V*12+12]
		n := bn.Normal
		for c := 0; c < 4; c++ {
			qv := q[int(bn.V)*4+c]
			g[c*3] += n.X * qv
			g[c*3+1] += n.Y * qv
			g[c*3+2] += n.Z * qv
		}
	}
	for v := 0; v < m.NumVertices(); v++ {
		if owner[v] != tid {
			continue
		}
		inv := 1 / m.Vol[v]
		g := grad[v*12 : v*12+12]
		for i := 0; i < 12; i++ {
			g[i] *= inv
		}
	}
}

func (k *Kernels) gradientAtomic(q, grad []float64) {
	m := k.M
	n12 := m.NumVertices() * 12
	bits := par.NewFloat64Slice(n12)
	k.Pool.ParallelFor(m.NumEdges(), func(_, lo, hi int) {
		for e := lo; e < hi; e++ {
			a, b := m.EV1[e], m.EV2[e]
			n := geom.Vec3{X: m.ENX[e], Y: m.ENY[e], Z: m.ENZ[e]}
			for c := 0; c < 4; c++ {
				avg := 0.5 * (q[int(a)*4+c] + q[int(b)*4+c])
				bits.Add(int(a)*12+c*3, n.X*avg)
				bits.Add(int(a)*12+c*3+1, n.Y*avg)
				bits.Add(int(a)*12+c*3+2, n.Z*avg)
				bits.Add(int(b)*12+c*3, -n.X*avg)
				bits.Add(int(b)*12+c*3+1, -n.Y*avg)
				bits.Add(int(b)*12+c*3+2, -n.Z*avg)
			}
		}
	})
	bits.CopyTo(grad)
	k.gradBoundaryAndScale(q, grad, 0, 1)
}

// Limiter fills phi (nv*4, in [0,1]) with the Venkatakrishnan limiter for
// the reconstruction q + φ (∇q · dx). It is a vertex-based loop over the
// CSR adjacency — no write conflicts, so it parallelizes directly (the
// paper's kernel class 3). kVenk controls the smooth-limit threshold
// (typical 0.3–5; larger = less limiting).
func (k *Kernels) Limiter(q, grad, phi []float64, kVenk float64) {
	m := k.M
	body := func(lo, hi int) {
		for v := lo; v < hi; v++ {
			k.limiterVertex(q, grad, phi, v, kVenk)
		}
	}
	if k.Pool == nil || k.Cfg.Strategy == Sequential {
		body(0, m.NumVertices())
		return
	}
	k.Pool.ParallelFor(m.NumVertices(), func(_, lo, hi int) { body(lo, hi) })
}

// limiterVertex computes one vertex's limiter values. phi[v] depends only
// on q (vertex + neighbors) and grad[v], so any caller that has v's final
// gradient may evaluate it — the fused pipeline calls this per covering
// vertex and gets bit-identical results to the full Limiter sweep.
func (k *Kernels) limiterVertex(q, grad, phi []float64, v int, kVenk float64) {
	m := k.M
	eps2 := math.Pow(kVenk, 3) * m.Vol[v] // (K h)^3 with h^3 ~ Vol
	g := grad[v*12 : v*12+12]
	xv := m.Coords[v]
	for c := 0; c < 4; c++ {
		qv := q[v*4+c]
		dmax, dmin := 0.0, 0.0
		for _, w := range m.Neighbors(v) {
			d := q[int(w)*4+c] - qv
			if d > dmax {
				dmax = d
			}
			if d < dmin {
				dmin = d
			}
		}
		p := 1.0
		for _, w := range m.Neighbors(v) {
			dx := geom.Mid(xv, m.Coords[w]).Sub(xv)
			d2 := g[c*3]*dx.X + g[c*3+1]*dx.Y + g[c*3+2]*dx.Z
			var lim float64
			switch {
			case d2 > 1e-14:
				lim = venkat(dmax, d2, eps2)
			case d2 < -1e-14:
				lim = venkat(dmin, d2, eps2)
			default:
				lim = 1
			}
			if lim < p {
				p = lim
			}
		}
		phi[v*4+c] = p
	}
}

// venkat is the Venkatakrishnan limiter function.
func venkat(dm, d2, eps2 float64) float64 {
	num := (dm*dm+eps2)*d2 + 2*d2*d2*dm
	den := d2 * (dm*dm + 2*d2*d2 + dm*d2 + eps2)
	if den == 0 {
		return 1
	}
	v := num / den
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
