// Package flux implements the edge-based "stencil op" kernels of the
// solver — residual (flux) evaluation, Green-Gauss gradients, and
// first-order Jacobian assembly — under every shared-memory strategy the
// paper evaluates (§V.A):
//
//   - Sequential: the single-threaded baseline.
//   - Atomic: edges split in natural order across threads; vertex updates
//     use CAS-based atomic float adds ("basic partitioning with atomics").
//   - ReplicateNatural: vertices split in natural index order; every thread
//     processes all edges touching its vertices but writes only the
//     endpoints it owns ("basic partitioning with replication" /
//     owner-only writes). Cut edges are computed redundantly.
//   - ReplicateMETIS: the same owner-only-writes scheme with the vertex
//     partition produced by the multilevel partitioner, which balances
//     work and shrinks the replication overhead.
//   - Colored: conflict-free edge colors processed one color at a time —
//     the coloring approach the paper rejects for locality reasons.
//
// plus the data-layout (SoA vs AoS node data), SIMD-style edge batching,
// and prefetch-lookahead code variants of Fig 6a.
package flux

import (
	"fmt"

	"fun3d/internal/color"
	"fun3d/internal/mesh"
	"fun3d/internal/partition"
)

// Strategy selects the shared-memory parallelization of the edge loops.
type Strategy int

const (
	// Sequential executes on one thread.
	Sequential Strategy = iota
	// Atomic partitions edges naturally and synchronizes with atomics.
	Atomic
	// ReplicateNatural uses owner-only writes over natural vertex blocks.
	ReplicateNatural
	// ReplicateMETIS uses owner-only writes over a multilevel partition.
	ReplicateMETIS
	// Colored processes conflict-free edge colors with barriers between.
	Colored
)

func (s Strategy) String() string {
	switch s {
	case Sequential:
		return "sequential"
	case Atomic:
		return "atomic"
	case ReplicateNatural:
		return "replicate-natural"
	case ReplicateMETIS:
		return "replicate-metis"
	case Colored:
		return "colored"
	}
	return fmt.Sprintf("Strategy(%d)", int(s))
}

// Partition holds the per-thread decomposition used by the owner-writes
// strategies, plus the edge coloring for the Colored strategy. Build once
// per (mesh, thread count, strategy family); reused across kernels.
type Partition struct {
	NW    int
	Owner []int32 // vertex -> owning thread

	// EdgeList[t] are the edges thread t processes under owner-writes:
	// all edges with at least one endpoint owned by t. Cut edges appear in
	// two lists (the replication overhead).
	EdgeList [][]int32

	// Coloring is non-nil for the Colored strategy.
	Coloring *color.EdgeColoring

	// Replication is the fraction of redundant edge computations:
	// (sum of list lengths - edges) / edges.
	Replication float64
}

// NewPartition builds the decomposition for the given strategy and thread
// count. Sequential and Atomic need no partition and return a trivial one.
func NewPartition(m *mesh.Mesh, nw int, s Strategy, seed uint64) (*Partition, error) {
	p := &Partition{NW: nw}
	switch s {
	case Sequential, Atomic:
		return p, nil
	case Colored:
		p.Coloring = color.Greedy(m.NumVertices(), m.EV1, m.EV2)
		return p, nil
	case ReplicateNatural, ReplicateMETIS:
		g := partition.FromMesh(m.AdjPtr, m.Adj, true)
		var part []int32
		if s == ReplicateNatural {
			part = partition.Natural(g, nw)
		} else {
			var err error
			part, err = partition.Multilevel(g, nw, partition.Options{Seed: seed})
			if err != nil {
				return nil, err
			}
		}
		p.Owner = part
		p.EdgeList = make([][]int32, nw)
		total := 0
		for e := 0; e < m.NumEdges(); e++ {
			ta := part[m.EV1[e]]
			tb := part[m.EV2[e]]
			p.EdgeList[ta] = append(p.EdgeList[ta], int32(e))
			total++
			if tb != ta {
				p.EdgeList[tb] = append(p.EdgeList[tb], int32(e))
				total++
			}
		}
		p.Replication = float64(total-m.NumEdges()) / float64(m.NumEdges())
		return p, nil
	}
	return nil, fmt.Errorf("flux: unknown strategy %v", s)
}

// OwnerOf returns the owner of vertex v (0 when unpartitioned).
func (p *Partition) OwnerOf(v int32) int32 {
	if p.Owner == nil {
		return 0
	}
	return p.Owner[v]
}
