package flux

import (
	"math"
	"sync/atomic"

	"fun3d/internal/geom"
	"fun3d/internal/physics"
	"fun3d/internal/tile"
)

// This file implements the hierarchical staged residual pipeline: the fused
// gradient→limiter→flux sweep of fused.go, restructured over a two-level
// tiling (LLC outer spans subdivided into L2 inner tiles, see package tile)
// so that every inner tile GATHERS its cover vertices' state and geometry
// into a dense tile-local SoA staging buffer once, computes entirely on
// staged data — which makes the W-wide SIMD edge batching of Config.SIMD
// applicable inside the fused sweep, since the batched flux computes read
// only the dense staging planes — and SCATTERS back once per tile.
//
// Bit-identity with the fused and three-sweep paths (tolerance 0, pinned by
// TestResidualStagedConformance) rests on two facts:
//
//  1. Every accumulator must see its terms in ascending edge id — the
//     repo-wide IEEE operation order. A cover vertex that is INNER-CLOSED
//     (every incident edge inside one inner tile) accumulates its full
//     residual in the staging buffer in that order and is written back once,
//     exactly. Gradients follow the fused prefix/scatter/suffix scheme at
//     the inner-tile level: closed rows come from the in-tile scatter alone;
//     open (halo) rows gather their below-tile prefix, ride the scatter, and
//     gather their above-tile suffix — the full ascending incident list.
//
//  2. A vertex shared BETWEEN inner tiles cannot sum per-tile partial
//     residuals without changing the IEEE reduction tree. Instead the flux
//     phase stores every edge's flux into a per-outer-span buffer F
//     (disjoint per-edge writes), and after all of a span's tiles complete,
//     "phase B" applies each shared vertex's in-span fluxes from F in
//     ascending edge order. Spans are processed in ascending order, so each
//     phase-B vertex sees its global incident list ascending.
//
// Parallelism is greedy tile coloring instead of the fused path's
// closed/open ownership bookkeeping: no two same-color tiles of a span
// share a cover vertex, so a color group's tiles gather, compute, publish
// phi, and scatter closed residuals unguarded in parallel. Phase B writes
// only res[v] of distinct vertices and reads only F, so it parallelizes
// per vertex. The result is ONE deterministic algorithm for every Strategy
// and worker count — bit-identical to the deterministic strategies'
// fused/three-sweep results, and agreeing with Atomic/Colored to within
// their usual reassociation rounding.

// stagedWS is one worker's dense tile-local staging area, sized for the
// largest inner-tile cover. q and phi are 4 SoA planes of stride cap
// (q[c*cap+l]); grad keeps the global [l*12 + comp*3 + dim] row layout so
// the finish/limiter tails run the exact operation sequence of their
// global-array counterparts; res is AoS rows.
type stagedWS struct {
	cap     int
	q       []float64
	x, y, z []float64
	vol     []float64
	grad    []float64
	phi     []float64
	res     []float64
}

func newStagedWS(cap int) stagedWS {
	return stagedWS{
		cap:  cap,
		q:    make([]float64, 4*cap),
		x:    make([]float64, cap),
		y:    make([]float64, cap),
		z:    make([]float64, cap),
		vol:  make([]float64, cap),
		grad: make([]float64, 12*cap),
		phi:  make([]float64, 4*cap),
		res:  make([]float64, 4*cap),
	}
}

func (ws *stagedWS) poison(nan float64) {
	for _, s := range [][]float64{ws.q, ws.x, ws.y, ws.z, ws.vol, ws.grad, ws.phi, ws.res} {
		for i := range s {
			s[i] = nan
		}
	}
}

// effectiveInnerTileEdges resolves the inner tile size: 0 unless the staged
// pipeline is enabled (flat tilings carry no hierarchy).
func (k *Kernels) effectiveInnerTileEdges() int {
	if !k.Cfg.Staged {
		return 0
	}
	if k.Cfg.InnerTileEdges > 0 {
		return k.Cfg.InnerTileEdges
	}
	return tile.DefaultInnerEdgesPerTile
}

// ensureStaged sizes the per-worker staging buffers and the per-span flux
// buffer for the tiling.
func (k *Kernels) ensureStaged(t *tile.Tiling) {
	nw := 1
	if k.Pool != nil {
		nw = k.Pool.Size()
	}
	if len(k.stagedWS) != nw || k.stagedWS[0].cap < t.MaxInnerCover {
		k.stagedWS = make([]stagedWS, nw)
		for i := range k.stagedWS {
			k.stagedWS[i] = newStagedWS(t.MaxInnerCover)
		}
	}
	fw := t.EdgesPerTile
	if ne := k.M.NumEdges(); fw > ne {
		fw = ne
	}
	if len(k.stagedF) < fw*4 {
		k.stagedF = make([]float64, fw*4)
	}
}

// StagedSIMDBatches returns the cumulative number of W-wide tile-interior
// edge batches the staged flux phase has computed (0 unless Cfg.SIMD) —
// the observable the conformance tests use to prove the batched path runs.
func (k *Kernels) StagedSIMDBatches() int64 {
	return atomic.LoadInt64(&k.stagedBatches)
}

// ResidualStaged evaluates the full second-order limited residual
// res = R(q) with the hierarchical staged pipeline. kVenk is the
// Venkatakrishnan constant; with frozenPhi the limiter field published by
// the previous unfrozen call (staged or fused — both share fusedPhi) is
// gathered instead of recomputed, the Newton matvec convention. Requires
// AoS node data and a hierarchical tiling (Cfg.Staged); q and res are nv*4
// AoS vectors.
func (k *Kernels) ResidualStaged(q, res []float64, kVenk float64, frozenPhi bool) {
	if k.Cfg.SoANodeData {
		panic("flux: ResidualStaged requires AoS node data")
	}
	t := k.Tiling()
	if t.InnerEdgesPerTile == 0 {
		panic("flux: ResidualStaged requires a hierarchical tiling (set Cfg.Staged)")
	}
	_, phiGlobal := k.fusedShared()
	k.ensureStaged(t)
	// Zero res directly: the staged pipeline has one deterministic
	// accumulation scheme for every strategy, so it bypasses the
	// Begin/End strategy plumbing (Atomic's End would overwrite res with
	// its atomic accumulators).
	for i := range res {
		res[i] = 0
	}
	F := k.stagedF
	for si := range t.Spans {
		sp := t.Spans[si]
		// Phase A: color group by color group, tiles within a group in
		// parallel (they share no cover vertex).
		glo, ghi := t.ColorGroupsOf(si)
		for g := glo; g < ghi; g++ {
			tiles := t.ColorGroup(g)
			if k.Pool == nil {
				ws := &k.stagedWS[0]
				for _, ti := range tiles {
					k.stagedTile(ws, q, res, phiGlobal, F, t, int(ti), sp.Lo, kVenk, frozenPhi)
				}
			} else {
				k.Pool.ParallelFor(len(tiles), func(tid, lo, hi int) {
					ws := &k.stagedWS[tid]
					for i := lo; i < hi; i++ {
						k.stagedTile(ws, q, res, phiGlobal, F, t, int(tiles[i]), sp.Lo, kVenk, frozenPhi)
					}
				})
			}
		}
		// Phase B: the span's inter-tile shared vertices apply their
		// in-span fluxes from F in ascending edge order. Independent per
		// vertex (disjoint res rows, F read-only).
		pb := t.PhaseBOf(si)
		phaseB := func(lo, hi int) {
			for i := lo; i < hi; i++ {
				v := pb[i]
				rv := res[v*4 : v*4+4]
				for _, e := range edgeSubRange(t.Inc(v), sp.Lo, sp.Hi) {
					f := F[(int(e)-sp.Lo)*4 : (int(e)-sp.Lo)*4+4]
					if k.M.EV1[e] == v {
						for c := 0; c < 4; c++ {
							rv[c] += f[c]
						}
					} else {
						for c := 0; c < 4; c++ {
							rv[c] -= f[c]
						}
					}
				}
			}
		}
		if k.Pool == nil {
			phaseB(0, len(pb))
		} else {
			k.Pool.ParallelFor(len(pb), func(_, lo, hi int) { phaseB(lo, hi) })
		}
	}
	if k.Pool == nil {
		k.boundarySeq(q, res)
	} else {
		k.boundaryAligned(q, res)
	}
}

// stagedTile runs one inner tile end to end: gather the cover's state and
// geometry into the staging planes, compute gradients (in-tile scatter for
// closed rows, prefix/scatter/suffix for the halo) and the limiter on
// staged data, publish phi, then the flux of the tile's edges into the
// span flux buffer F and the local residual rows, scattering the
// inner-closed rows back to res exactly once.
func (k *Kernels) stagedTile(ws *stagedWS, q, res, phiGlobal, F []float64, t *tile.Tiling, ti, spanLo int, kVenk float64, frozenPhi bool) {
	m := k.M
	cov := t.InnerCoverOf(ti)
	sp := t.Inner[ti]
	cap := ws.cap
	// Gather: dense SoA planes of the cover's state, coordinates, volume —
	// and, when the limiter is frozen, the published phi.
	for l, v := range cov {
		i := int(v) * 4
		ws.q[l] = q[i]
		ws.q[cap+l] = q[i+1]
		ws.q[2*cap+l] = q[i+2]
		ws.q[3*cap+l] = q[i+3]
		c := m.Coords[v]
		ws.x[l], ws.y[l], ws.z[l] = c.X, c.Y, c.Z
		ws.vol[l] = m.Vol[v]
	}
	if frozenPhi {
		for l, v := range cov {
			i := int(v) * 4
			ws.phi[l] = phiGlobal[i]
			ws.phi[cap+l] = phiGlobal[i+1]
			ws.phi[2*cap+l] = phiGlobal[i+2]
			ws.phi[3*cap+l] = phiGlobal[i+3]
		}
	}
	closed := t.InnerClosedOf(ti)
	open := t.InnerOpenOf(ti)
	// Gradient phase. Closed rows start at zero and receive only the
	// in-tile scatter; open rows gather their below-tile prefix first.
	for _, l := range closed {
		g := ws.grad[int(l)*12 : int(l)*12+12]
		for i := range g {
			g[i] = 0
		}
	}
	for _, l := range open {
		k.stagedGradHalo(ws, q, int(l), cov[l], t, sp.Lo, true)
	}
	for e := sp.Lo; e < sp.Hi; e++ {
		la, lb := int(t.LA[e]), int(t.LB[e])
		n := geom.Vec3{X: m.ENX[e], Y: m.ENY[e], Z: m.ENZ[e]}
		ga := ws.grad[la*12 : la*12+12]
		gb := ws.grad[lb*12 : lb*12+12]
		for c := 0; c < 4; c++ {
			avg := 0.5 * (ws.q[c*cap+la] + ws.q[c*cap+lb])
			ga[c*3] += n.X * avg
			ga[c*3+1] += n.Y * avg
			ga[c*3+2] += n.Z * avg
			gb[c*3] -= n.X * avg
			gb[c*3+1] -= n.Y * avg
			gb[c*3+2] -= n.Z * avg
		}
	}
	for _, l := range closed {
		k.stagedFinishGrad(ws, int(l), cov[l], t)
		if !frozenPhi {
			k.stagedLimiterVertex(ws, q, int(l), cov[l], kVenk)
		}
	}
	for _, l := range open {
		k.stagedGradHalo(ws, q, int(l), cov[l], t, sp.Hi, false)
		k.stagedFinishGrad(ws, int(l), cov[l], t)
		if !frozenPhi {
			k.stagedLimiterVertex(ws, q, int(l), cov[l], kVenk)
		}
	}
	if !frozenPhi {
		// Publish phi for later frozen evaluations. Tiles covering the same
		// vertex compute bitwise-equal phi (the limiter depends only on q,
		// geometry, and the vertex's complete gradient), and same-color
		// tiles share no cover vertex, so the writes are race-free.
		for l, v := range cov {
			i := int(v) * 4
			phiGlobal[i] = ws.phi[l]
			phiGlobal[i+1] = ws.phi[cap+l]
			phiGlobal[i+2] = ws.phi[2*cap+l]
			phiGlobal[i+3] = ws.phi[3*cap+l]
		}
	}
	// Flux phase: per edge, the flux from staged data goes to the span
	// buffer (each edge belongs to exactly one tile — disjoint writes) and
	// accumulates into the local residual rows in ascending edge order.
	lres := ws.res[:len(cov)*4]
	for i := range lres {
		lres[i] = 0
	}
	if k.Cfg.SIMD {
		k.stagedFluxSIMD(ws, F, t, sp.Lo, sp.Hi, spanLo)
	} else {
		k.stagedFlux(ws, F, t, sp.Lo, sp.Hi, spanLo)
	}
	// Scatter: an inner-closed vertex's local row saw its entire incident
	// edge set (ascending, from zero — the sequential path's exact chain),
	// and no other tile or phase touches it, so a plain store finishes it.
	for _, l := range closed {
		v := cov[l]
		rl := ws.res[int(l)*4 : int(l)*4+4]
		rv := res[v*4 : v*4+4]
		rv[0], rv[1], rv[2], rv[3] = rl[0], rl[1], rl[2], rl[3]
	}
}

// stagedGradHalo accumulates an open (halo) row's out-of-tile incident
// edges from the GLOBAL arrays (the far endpoint is generally outside the
// tile cover): the ascending prefix below lo (zeroing the row first) when
// prefix, else the ascending suffix at or above the bound.
func (k *Kernels) stagedGradHalo(ws *stagedWS, q []float64, l int, v int32, t *tile.Tiling, bound int, prefix bool) {
	m := k.M
	g := ws.grad[l*12 : l*12+12]
	inc := t.Inc(v)
	if prefix {
		for i := range g {
			g[i] = 0
		}
	} else {
		for i := len(inc) - 1; i >= 0; i-- {
			if int(inc[i]) < bound {
				inc = inc[i+1:]
				break
			}
		}
	}
	for _, e := range inc {
		if prefix && int(e) >= bound {
			break
		}
		a, b := m.EV1[e], m.EV2[e]
		n := geom.Vec3{X: m.ENX[e], Y: m.ENY[e], Z: m.ENZ[e]}
		if a == v {
			for c := 0; c < 4; c++ {
				avg := 0.5 * (q[int(a)*4+c] + q[int(b)*4+c])
				g[c*3] += n.X * avg
				g[c*3+1] += n.Y * avg
				g[c*3+2] += n.Z * avg
			}
		} else {
			for c := 0; c < 4; c++ {
				avg := 0.5 * (q[int(a)*4+c] + q[int(b)*4+c])
				g[c*3] -= n.X * avg
				g[c*3+1] -= n.Y * avg
				g[c*3+2] -= n.Z * avg
			}
		}
	}
}

// stagedFinishGrad is finishGradVertex on staged data: boundary closure in
// BNodes index order (reading the staged state) and the staged 1/Vol scale.
func (k *Kernels) stagedFinishGrad(ws *stagedWS, l int, v int32, t *tile.Tiling) {
	m := k.M
	cap := ws.cap
	g := ws.grad[l*12 : l*12+12]
	lo, hi := t.BNRange(v)
	for i := lo; i < hi; i++ {
		n := m.BNodes[i].Normal
		for c := 0; c < 4; c++ {
			qv := ws.q[c*cap+l]
			g[c*3] += n.X * qv
			g[c*3+1] += n.Y * qv
			g[c*3+2] += n.Z * qv
		}
	}
	inv := 1 / ws.vol[l]
	for i := 0; i < 12; i++ {
		g[i] *= inv
	}
}

// stagedLimiterVertex is limiterVertex reading the vertex's own state,
// gradient, coordinates, and volume from the staging buffer (bitwise copies
// of the global values) and its neighbors — which are generally outside the
// tile cover — from the global arrays, writing the staged phi planes.
func (k *Kernels) stagedLimiterVertex(ws *stagedWS, q []float64, l int, v int32, kVenk float64) {
	m := k.M
	cap := ws.cap
	eps2 := math.Pow(kVenk, 3) * ws.vol[l]
	g := ws.grad[l*12 : l*12+12]
	xv := geom.Vec3{X: ws.x[l], Y: ws.y[l], Z: ws.z[l]}
	for c := 0; c < 4; c++ {
		qv := ws.q[c*cap+l]
		dmax, dmin := 0.0, 0.0
		for _, w := range m.Neighbors(int(v)) {
			d := q[int(w)*4+c] - qv
			if d > dmax {
				dmax = d
			}
			if d < dmin {
				dmin = d
			}
		}
		p := 1.0
		for _, w := range m.Neighbors(int(v)) {
			dx := geom.Mid(xv, m.Coords[w]).Sub(xv)
			d2 := g[c*3]*dx.X + g[c*3+1]*dx.Y + g[c*3+2]*dx.Z
			var lim float64
			switch {
			case d2 > 1e-14:
				lim = venkat(dmax, d2, eps2)
			case d2 < -1e-14:
				lim = venkat(dmin, d2, eps2)
			default:
				lim = 1
			}
			if lim < p {
				p = lim
			}
		}
		ws.phi[c*cap+l] = p
	}
}

// stagedReconstruct is the MUSCL extrapolation on staging planes.
func (ws *stagedWS) stagedReconstruct(l int, dx geom.Vec3) physics.State {
	cap := ws.cap
	g := ws.grad[l*12 : l*12+12]
	var out physics.State
	for c := 0; c < 4; c++ {
		d := g[c*3]*dx.X + g[c*3+1]*dx.Y + g[c*3+2]*dx.Z
		d *= ws.phi[c*cap+l]
		out[c] = ws.q[c*cap+l] + d
	}
	return out
}

// stagedEdgeFlux computes edge e's Roe flux entirely from staged data.
func (k *Kernels) stagedEdgeFlux(ws *stagedWS, e int32, la, lb int) physics.State {
	m := k.M
	n := geom.Vec3{X: m.ENX[e], Y: m.ENY[e], Z: m.ENZ[e]}
	xa := geom.Vec3{X: ws.x[la], Y: ws.y[la], Z: ws.z[la]}
	xb := geom.Vec3{X: ws.x[lb], Y: ws.y[lb], Z: ws.z[lb]}
	mid := geom.Mid(xa, xb)
	qa := ws.stagedReconstruct(la, mid.Sub(xa))
	qb := ws.stagedReconstruct(lb, mid.Sub(xb))
	return physics.RoeFlux(qa, qb, n, k.Beta)
}

// stagedFlux is the scalar tile-edge flux loop: store to the span flux
// buffer, accumulate the local residual rows.
func (k *Kernels) stagedFlux(ws *stagedWS, F []float64, t *tile.Tiling, lo, hi, spanLo int) {
	for e := lo; e < hi; e++ {
		la, lb := int(t.LA[e]), int(t.LB[e])
		f := k.stagedEdgeFlux(ws, int32(e), la, lb)
		fe := F[(e-spanLo)*4 : (e-spanLo)*4+4]
		ra := ws.res[la*4 : la*4+4]
		rb := ws.res[lb*4 : lb*4+4]
		for c := 0; c < 4; c++ {
			fe[c] = f[c]
			ra[c] += f[c]
			rb[c] -= f[c]
		}
	}
}

// stagedFluxSIMD processes the tile's edges in W-wide batches: a compute
// phase filling the flux buffer from the dense staging planes (the batched
// lanes read no mutable state, so the batch is dependency-free by
// construction), then a scalar write-out in ascending edge order — the
// same per-accumulator IEEE sequence as the scalar loop. The scalar tail
// handles the remainder.
func (k *Kernels) stagedFluxSIMD(ws *stagedWS, F []float64, t *tile.Tiling, lo, hi, spanLo int) {
	var fbuf [W]physics.State
	var av, bv [W]int32
	e := lo
	batches := int64(0)
	for ; e+W <= hi; e += W {
		for l := 0; l < W; l++ {
			av[l], bv[l] = t.LA[e+l], t.LB[e+l]
			fbuf[l] = k.stagedEdgeFlux(ws, int32(e+l), int(av[l]), int(bv[l]))
		}
		batches++
		for l := 0; l < W; l++ {
			ee := e + l
			fe := F[(ee-spanLo)*4 : (ee-spanLo)*4+4]
			ra := ws.res[av[l]*4 : av[l]*4+4]
			rb := ws.res[bv[l]*4 : bv[l]*4+4]
			f := &fbuf[l]
			for c := 0; c < 4; c++ {
				fe[c] = f[c]
				ra[c] += f[c]
				rb[c] -= f[c]
			}
		}
	}
	k.stagedFlux(ws, F, t, e, hi, spanLo)
	if batches > 0 {
		atomic.AddInt64(&k.stagedBatches, batches)
	}
}

// ResidualStagedBytes models the DRAM traffic of one staged evaluation,
// split into the flux phase, the gather side (staging-buffer fills plus the
// halo gradient's out-of-tile edge reads), and the scatter side (phi
// publication, closed-residual stores, the span flux buffer, and the
// phase-B application). All terms are exact functions of the tiling, so
// the derived tile_staged_bytes_per_edge rate is machine-independent —
// benchdiff gates it exactly.
//
// Flux: endpoint ids (8B) and normal (24B) per edge; state, gradient, and
// phi reads hit the staging planes. Gather: per inner-cover visit the
// vertex's state (32B), coordinates (24B), and volume (8B); per
// out-of-tile halo gradient edge its ids, normal, and far-endpoint state
// (8B+24B+32B). Scatter: per inner-cover visit the phi publication (32B);
// per inner-closed vertex the residual store (32B); per edge the span-
// buffer flux store (32B); per phase-B edge visit the flux read-back
// (32B); per phase-B vertex the residual read-modify-write (64B).
func (k *Kernels) ResidualStagedBytes() (fluxBytes, gatherBytes, scatterBytes int64) {
	t := k.Tiling()
	ne := int64(k.M.NumEdges())
	fluxBytes = ne * (8 + 24)
	gatherBytes = t.InnerVertexVisits*(32+24+8) + t.InnerOpenGatherEdgeVisits*(8+24+32)
	scatterBytes = t.InnerVertexVisits*32 + int64(len(t.InnerClosed))*32 +
		ne*32 + t.PhaseBEdgeVisits*32 + int64(len(t.PhaseB))*64
	return fluxBytes, gatherBytes, scatterBytes
}
