package flux

import (
	"math"
	"sort"

	"fun3d/internal/geom"
	"fun3d/internal/mesh"
	"fun3d/internal/par"
	"fun3d/internal/physics"
)

// Config selects the code variant for the edge kernels, mirroring the
// optimization ladder of Fig 6a.
type Config struct {
	Strategy Strategy
	// SoANodeData reads vertex state from field planes (q[d*nv+v], the
	// baseline layout) instead of interlaced AoS (q[v*4+d], the paper's
	// optimized layout). Supported by the residual kernel.
	SoANodeData bool
	// SIMD enables edge batching: fluxes for W=4 edges are computed into a
	// dependency-free temporary buffer, then written out separately — the
	// paper's vectorization restructuring.
	SIMD bool
	// Prefetch enables software lookahead touches of the vertex data of
	// edges PFDist ahead.
	Prefetch bool
	// PFDist is the prefetch lookahead distance in edges; <= 0 selects
	// DefaultPFDist. Only meaningful with Prefetch.
	PFDist int
	// TileEdges is the edge-span size of the fused residual pipeline's
	// cache blocking (ResidualFused); <= 0 selects tile.DefaultEdgesPerTile.
	TileEdges int
	// Staged enables the hierarchical staged residual pipeline
	// (ResidualStaged): LLC outer spans subdivided into L2 inner tiles whose
	// cover vertices are gathered into dense tile-local SoA staging buffers,
	// swept entirely on staged data, and scattered back once per tile.
	Staged bool
	// InnerTileEdges is the inner (L2) tile size of the staged pipeline's
	// two-level hierarchy; <= 0 selects tile.DefaultInnerEdgesPerTile. Only
	// meaningful with Staged.
	InnerTileEdges int
}

// W is the SIMD batch width (the paper's AVX 4-wide double).
const W = 4

// DefaultPFDist is the default prefetch lookahead distance in edges.
const DefaultPFDist = 16

// pfDist returns the configured prefetch lookahead distance.
func (k *Kernels) pfDist() int {
	if k.Cfg.PFDist > 0 {
		return k.Cfg.PFDist
	}
	return DefaultPFDist
}

// Kernels bundles a mesh, flow parameters, a thread pool and a partition,
// and exposes the edge-based kernels. Scratch buffers are owned by the
// struct so steady-state calls do not allocate.
type Kernels struct {
	M    *mesh.Mesh
	Beta float64
	QInf physics.State
	Pool *par.Pool
	Part *Partition
	Cfg  Config

	atomicRes *par.Float64Slice // scratch for the Atomic strategy
	edgeSlots [][4]int32        // per-edge BSR slots for Jacobian assembly
	sink      []float64         // defeats dead-code elimination of prefetch touches

	// Fused-pipeline state (fused.go): the read-only tiling + owned-cover
	// CSRs (shared across kernels via SetCover, or built lazily and owned
	// privately) and the per-solve gradient/limiter scratch the fused sweep
	// fills tile-by-tile.
	cover       *Cover
	sharedCover bool // cover was injected; never rebuilt or mutated
	fusedGrad   []float64
	fusedPhi    []float64

	// Staged-pipeline state (staged.go): per-worker dense staging buffers,
	// the per-outer-span edge-flux buffer the phase-B scatter reads, and the
	// SIMD batch counter (updated with atomic.AddInt64) the staged
	// conformance tests observe.
	stagedWS      []stagedWS
	stagedF       []float64
	stagedBatches int64
}

// NewKernels constructs the kernel set. pool may be nil only for
// Sequential.
func NewKernels(m *mesh.Mesh, beta float64, qInf physics.State, pool *par.Pool, part *Partition, cfg Config) *Kernels {
	nw := 1
	if pool != nil {
		nw = pool.Size()
	}
	return &Kernels{
		M: m, Beta: beta, QInf: qInf, Pool: pool, Part: part, Cfg: cfg,
		sink: make([]float64, nw*8), // padded
	}
}

// PoisonScratch NaN-fills the per-solve fused-pipeline scratch (the shared
// cover and tiling are untouched — they are read-only). Solver instance
// pools poison recycled kernels so a sweep that read stale scratch would
// surface as NaN; every fused sweep fully rewrites its scratch tile before
// reading it, so a poisoned kernel solves correctly.
func (k *Kernels) PoisonScratch() {
	nan := math.NaN()
	for i := range k.fusedGrad {
		k.fusedGrad[i] = nan
	}
	for i := range k.fusedPhi {
		k.fusedPhi[i] = nan
	}
	for w := range k.stagedWS {
		k.stagedWS[w].poison(nan)
	}
	for i := range k.stagedF {
		k.stagedF[i] = nan
	}
}

// stateAt loads vertex v's state from AoS storage.
func stateAt(q []float64, v int32) physics.State {
	i := int(v) * 4
	return physics.State{q[i], q[i+1], q[i+2], q[i+3]}
}

// stateAtSoA loads vertex v's state from plane (SoA) storage.
func stateAtSoA(q []float64, nv int, v int32) physics.State {
	return physics.State{q[v], q[int(v)+nv], q[int(v)+2*nv], q[int(v)+3*nv]}
}

// reconstruct applies the second-order MUSCL extrapolation toward the edge
// midpoint: q + φ ⊙ (g · dx). grad layout is [v*12 + comp*3 + dim]; phi may
// be nil (unlimited).
func reconstruct(qv physics.State, grad, phi []float64, v int32, dx geom.Vec3) physics.State {
	g := grad[int(v)*12 : int(v)*12+12]
	var out physics.State
	for c := 0; c < 4; c++ {
		d := g[c*3]*dx.X + g[c*3+1]*dx.Y + g[c*3+2]*dx.Z
		if phi != nil {
			d *= phi[int(v)*4+c]
		}
		out[c] = qv[c] + d
	}
	return out
}

// loadState reads vertex v's state honoring the configured node layout.
func (k *Kernels) loadState(q []float64, v int32) physics.State {
	if k.Cfg.SoANodeData {
		return stateAtSoA(q, k.M.NumVertices(), v)
	}
	return stateAt(q, v)
}

// touch returns a lightweight load address component for the prefetch
// lookahead under the configured layout. AoS keeps a vertex's 4-tuple on
// one cache line, so a single load warms it; the SoA planes live nv apart,
// so all four must be touched or the lookahead warms only a quarter of the
// state the upcoming edge will read (and the layout comparison of Fig 6a
// would flatter the baseline).
func (k *Kernels) touch(q []float64, v int32) float64 {
	if k.Cfg.SoANodeData {
		nv := k.M.NumVertices()
		i := int(v)
		return q[i] + q[i+nv] + q[i+2*nv] + q[i+3*nv]
	}
	return q[v*4]
}

// edgeStates returns the left/right states of edge e, second-order if grad
// is non-nil.
func (k *Kernels) edgeStates(q, grad, phi []float64, e int32) (qa, qb physics.State, a, b int32, n geom.Vec3) {
	m := k.M
	a, b = m.EV1[e], m.EV2[e]
	n = geom.Vec3{X: m.ENX[e], Y: m.ENY[e], Z: m.ENZ[e]}
	qa = k.loadState(q, a)
	qb = k.loadState(q, b)
	if grad != nil {
		mid := geom.Mid(m.Coords[a], m.Coords[b])
		qa = reconstruct(qa, grad, phi, a, mid.Sub(m.Coords[a]))
		qb = reconstruct(qb, grad, phi, b, mid.Sub(m.Coords[b]))
	}
	return
}

// Residual computes res = R(q): the flux balance of every control volume
// (interior edge fluxes plus boundary fluxes). q and res are AoS nv*4
// vectors unless Cfg.SoANodeData (then q is plane-layout and grad must be
// nil; res stays AoS). grad enables second-order reconstruction, phi an
// optional limiter field.
//
// Residual is the one-shot composition of the split API below; callers that
// want to interleave other work (a halo exchange in flight) between edge
// sets use Begin / EdgeRange / Boundary / End directly.
func (k *Kernels) Residual(q, grad, phi, res []float64) {
	k.ResidualBegin(res)
	k.ResidualEdgeRange(q, grad, phi, res, 0, k.M.NumEdges())
	k.ResidualBoundary(q, res)
	k.ResidualEnd(res)
}

// ResidualBegin starts a split residual evaluation: it zeroes the
// accumulators. Follow with any sequence of ResidualEdgeRange calls whose
// half-open ranges tile [0, NumEdges) in ascending order, a
// ResidualBoundary, and a final ResidualEnd. Sequential and Replicate
// process each sub-range in the same per-vertex order they would inside a
// full-range call, so their split evaluation is bit-identical to Residual;
// Colored traverses color-major, so a split reorders across colors
// (deterministic, but only equal to within rounding).
func (k *Kernels) ResidualBegin(res []float64) {
	for i := range res {
		res[i] = 0
	}
	if k.Cfg.Strategy == Atomic {
		n4 := k.M.NumVertices() * 4
		if k.atomicRes == nil || k.atomicRes.Len() != n4 {
			k.atomicRes = par.NewFloat64Slice(n4)
		}
		k.atomicRes.Zero()
	}
}

// ResidualEdgeRange accumulates the fluxes of edges [lo,hi) into the
// residual, using the configured strategy. For list-driven strategies
// (Replicate, Colored) the per-thread lists are ascending by edge id, so
// the sub-list for [lo,hi) is found by binary search and processed in the
// same order as within a full-range call.
func (k *Kernels) ResidualEdgeRange(q, grad, phi, res []float64, lo, hi int) {
	if lo >= hi {
		return
	}
	switch k.Cfg.Strategy {
	case Sequential:
		if k.Cfg.SIMD {
			k.resEdgesSIMDRange(q, grad, phi, res, lo, hi, 0)
		} else {
			k.resEdgesRange(q, grad, phi, res, lo, hi, k.Cfg.Prefetch, 0)
		}
	case Atomic:
		bits := k.atomicRes
		k.Pool.ParallelFor(hi-lo, func(tid, clo, chi int) {
			for e := lo + clo; e < lo+chi; e++ {
				qa, qb, a, b, nrm := k.edgeStates(q, grad, phi, int32(e))
				f := physics.RoeFlux(qa, qb, nrm, k.Beta)
				for c := 0; c < 4; c++ {
					bits.Add(int(a)*4+c, f[c])
					bits.Add(int(b)*4+c, -f[c])
				}
			}
		})
	case ReplicateNatural, ReplicateMETIS:
		p := k.Part
		k.Pool.Run(func(tid int) {
			list := edgeSubRange(p.EdgeList[tid], lo, hi)
			if k.Cfg.SIMD {
				k.repEdgesSIMD(q, grad, phi, res, list, p.Owner, int32(tid))
			} else {
				k.repEdges(q, grad, phi, res, list, p.Owner, int32(tid), k.Cfg.Prefetch, tid)
			}
		})
	case Colored:
		col := k.Part.Coloring
		for c := 0; c < col.NumColors(); c++ {
			edges := edgeSubRange(col.Color(c), lo, hi)
			k.Pool.ParallelFor(len(edges), func(_, clo, chi int) {
				for i := clo; i < chi; i++ {
					qa, qb, a, b, n := k.edgeStates(q, grad, phi, edges[i])
					f := physics.RoeFlux(qa, qb, n, k.Beta)
					ra := res[a*4 : a*4+4]
					rb := res[b*4 : b*4+4]
					for cc := 0; cc < 4; cc++ {
						ra[cc] += f[cc]
						rb[cc] -= f[cc]
					}
				}
			})
		}
	}
}

// ResidualBoundary accumulates the boundary-node closure fluxes. BNodes
// reference owned vertices only, so it never reads halo data and may run
// while an exchange is in flight.
func (k *Kernels) ResidualBoundary(q, res []float64) {
	switch k.Cfg.Strategy {
	case Sequential:
		k.boundarySeq(q, res)
	case Atomic:
		bits := k.atomicRes
		bn := k.M.BNodes
		k.Pool.ParallelFor(len(bn), func(_, lo, hi int) {
			for i := lo; i < hi; i++ {
				f, v := k.boundaryFlux(q, bn[i])
				for c := 0; c < 4; c++ {
					bits.Add(int(v)*4+c, f[c])
				}
			}
		})
	case ReplicateNatural, ReplicateMETIS:
		owner := k.Part.Owner
		k.Pool.Run(func(tid int) {
			for _, bn := range k.M.BNodes {
				if owner[bn.V] != int32(tid) {
					continue
				}
				f, v := k.boundaryFlux(q, bn)
				for c := 0; c < 4; c++ {
					res[int(v)*4+c] += f[c]
				}
			}
		})
	case Colored:
		k.boundaryAligned(q, res)
	}
}

// ResidualEnd finishes a split evaluation (for Atomic it publishes the
// atomic accumulators into res; a no-op for the other strategies).
func (k *Kernels) ResidualEnd(res []float64) {
	if k.Cfg.Strategy == Atomic {
		k.atomicRes.CopyTo(res)
	}
}

// edgeSubRange returns the sub-slice of an ascending edge-id list whose
// ids fall in [lo,hi). Thread edge lists and color buckets are built in
// ascending edge order, so two binary searches suffice and the relative
// order — hence the floating-point accumulation order — is preserved.
func edgeSubRange(list []int32, lo, hi int) []int32 {
	a := sort.Search(len(list), func(i int) bool { return int(list[i]) >= lo })
	b := sort.Search(len(list), func(i int) bool { return int(list[i]) >= hi })
	return list[a:b]
}

// resEdgesRange processes edges [lo,hi) writing both endpoints (plain
// writes — caller guarantees exclusivity), with optional prefetch.
func (k *Kernels) resEdgesRange(q, grad, phi, res []float64, lo, hi int, prefetch bool, tid int) {
	m := k.M
	sink := 0.0
	pf := k.pfDist()
	for e := lo; e < hi; e++ {
		if prefetch && e+pf < hi {
			sink += k.touch(q, m.EV1[e+pf]) + k.touch(q, m.EV2[e+pf])
		}
		qa, qb, a, b, n := k.edgeStates(q, grad, phi, int32(e))
		f := physics.RoeFlux(qa, qb, n, k.Beta)
		ra := res[a*4 : a*4+4]
		rb := res[b*4 : b*4+4]
		for c := 0; c < 4; c++ {
			ra[c] += f[c]
			rb[c] -= f[c]
		}
	}
	k.sink[tid*8] += sink
}

// resEdgesSIMDRange processes [lo,hi) in W-wide batches: a compute phase
// filling a flux buffer, then a scalar write-out phase (both endpoints).
// slot is the caller's sink slot, forwarded to the scalar tail so the
// remainder edges accumulate into the same padded lane as the batches —
// never a hard-coded slot another thread could share.
func (k *Kernels) resEdgesSIMDRange(q, grad, phi, res []float64, lo, hi, slot int) {
	var fbuf [W]physics.State
	var av, bv [W]int32
	e := lo
	for ; e+W <= hi; e += W {
		for l := 0; l < W; l++ {
			qa, qb, a, b, n := k.edgeStates(q, grad, phi, int32(e+l))
			fbuf[l] = physics.RoeFlux(qa, qb, n, k.Beta)
			av[l], bv[l] = a, b
		}
		for l := 0; l < W; l++ {
			ra := res[av[l]*4 : av[l]*4+4]
			rb := res[bv[l]*4 : bv[l]*4+4]
			f := &fbuf[l]
			for c := 0; c < 4; c++ {
				ra[c] += f[c]
				rb[c] -= f[c]
			}
		}
	}
	k.resEdgesRange(q, grad, phi, res, e, hi, false, slot)
}

// repEdges is the owner-only-writes edge loop over an explicit edge list.
func (k *Kernels) repEdges(q, grad, phi, res []float64, list []int32, owner []int32, tid int32, prefetch bool, slot int) {
	sink := 0.0
	pf := k.pfDist()
	for idx, e := range list {
		if prefetch && idx+pf < len(list) {
			e2 := list[idx+pf]
			sink += k.touch(q, k.M.EV1[e2]) + k.touch(q, k.M.EV2[e2])
		}
		qa, qb, a, b, n := k.edgeStates(q, grad, phi, e)
		f := physics.RoeFlux(qa, qb, n, k.Beta)
		if owner[a] == tid {
			ra := res[a*4 : a*4+4]
			for c := 0; c < 4; c++ {
				ra[c] += f[c]
			}
		}
		if owner[b] == tid {
			rb := res[b*4 : b*4+4]
			for c := 0; c < 4; c++ {
				rb[c] -= f[c]
			}
		}
	}
	k.sink[slot*8] += sink
}

func (k *Kernels) repEdgesSIMD(q, grad, phi, res []float64, list []int32, owner []int32, tid int32) {
	var fbuf [W]physics.State
	var av, bv [W]int32
	i := 0
	sink := 0.0
	pf := k.pfDist()
	for ; i+W <= len(list); i += W {
		for l := 0; l < W; l++ {
			if k.Cfg.Prefetch && i+l+pf < len(list) {
				e2 := list[i+l+pf]
				sink += k.touch(q, k.M.EV1[e2]) + k.touch(q, k.M.EV2[e2])
			}
			qa, qb, a, b, n := k.edgeStates(q, grad, phi, list[i+l])
			fbuf[l] = physics.RoeFlux(qa, qb, n, k.Beta)
			av[l], bv[l] = a, b
		}
		for l := 0; l < W; l++ {
			f := &fbuf[l]
			if owner[av[l]] == tid {
				ra := res[av[l]*4 : av[l]*4+4]
				for c := 0; c < 4; c++ {
					ra[c] += f[c]
				}
			}
			if owner[bv[l]] == tid {
				rb := res[bv[l]*4 : bv[l]*4+4]
				for c := 0; c < 4; c++ {
					rb[c] -= f[c]
				}
			}
		}
	}
	k.sink[int(tid)*8] += sink
	k.repEdges(q, grad, phi, res, list[i:], owner, tid, false, int(tid))
}

// boundaryFlux evaluates one boundary node's flux.
func (k *Kernels) boundaryFlux(q []float64, bn mesh.BNode) (physics.State, int32) {
	qv := k.loadState(q, bn.V)
	switch bn.Kind {
	case mesh.PatchWall, mesh.PatchSymmetry:
		return physics.WallFlux(qv, bn.Normal), bn.V
	default:
		return physics.FarfieldFlux(qv, k.QInf, bn.Normal, k.Beta), bn.V
	}
}

func (k *Kernels) boundarySeq(q, res []float64) {
	for _, bn := range k.M.BNodes {
		f, v := k.boundaryFlux(q, bn)
		for c := 0; c < 4; c++ {
			res[int(v)*4+c] += f[c]
		}
	}
}

// boundaryAligned splits BNodes into chunks that never split entries of the
// same vertex (BNodes are sorted by vertex).
func (k *Kernels) boundaryAligned(q, res []float64) {
	bn := k.M.BNodes
	k.Pool.ParallelFor(len(bn), func(_, lo, hi int) {
		// Shift chunk boundaries forward past same-vertex runs.
		for lo > 0 && lo < len(bn) && bn[lo].V == bn[lo-1].V {
			lo++
		}
		for hi < len(bn) && hi > 0 && bn[hi].V == bn[hi-1].V {
			hi++
		}
		for i := lo; i < hi; i++ {
			f, v := k.boundaryFlux(q, bn[i])
			for c := 0; c < 4; c++ {
				res[int(v)*4+c] += f[c]
			}
		}
	})
}

// ResidualBytes estimates the memory traffic of one Residual evaluation —
// the numerator of a Fig-7b-style achieved-bandwidth estimate. Per edge:
// endpoint ids (8B), normal (24B), two 4-tuple state reads (64B), two
// residual read-modify-writes (128B). Second order adds two 12-entry
// gradient reads (192B); the limiter two 4-entry phi reads (64B).
func (k *Kernels) ResidualBytes(secondOrder, limiter bool) int64 {
	per := int64(8 + 24 + 64 + 128)
	if secondOrder {
		per += 192
		if limiter {
			per += 64
		}
	}
	return per * int64(k.M.NumEdges())
}

// GradientBytes estimates one Gradient evaluation: per edge two state reads
// (64B) plus two 12-entry gradient read-modify-writes (384B) and geometry
// (32B).
func (k *Kernels) GradientBytes() int64 {
	return int64(64+384+32) * int64(k.M.NumEdges())
}

// JacobianBytes estimates one Jacobian assembly: per edge two state reads
// (64B), geometry (32B), and four 4x4 block read-modify-writes (1024B).
func (k *Kernels) JacobianBytes() int64 {
	return int64(64+32+1024) * int64(k.M.NumEdges())
}

// AoSToSoA converts an AoS state vector to plane layout (for the baseline
// data-layout benchmarks).
func AoSToSoA(q []float64, nv int) []float64 {
	out := make([]float64, len(q))
	for v := 0; v < nv; v++ {
		for c := 0; c < 4; c++ {
			out[c*nv+v] = q[v*4+c]
		}
	}
	return out
}

// SoAToAoS converts back.
func SoAToAoS(q []float64, nv int) []float64 {
	out := make([]float64, len(q))
	for v := 0; v < nv; v++ {
		for c := 0; c < 4; c++ {
			out[v*4+c] = q[c*nv+v]
		}
	}
	return out
}
