package flux

import (
	"fun3d/internal/blas4"
	"fun3d/internal/geom"
	"fun3d/internal/mesh"
	"fun3d/internal/physics"
	"fun3d/internal/sparse"
)

// Jacobian assembles the first-order approximate Jacobian dR/dq into the
// BSR matrix a (pattern: mesh adjacency + diagonal, i.e. exactly
// sparse.NewBSRFromAdj). The discretization is the paper's preconditioner
// Jacobian: "derived from a lower-order, sparser and more diffusive
// discretization than that used for f(u) itself" — first-order Roe with
// frozen dissipation.
//
// Strategies: Sequential runs on one thread. The replication strategies
// assemble with owner-only row writes: the thread owning vertex a writes
// row a (its diagonal and (a,b) blocks). Off-diagonal blocks have a unique
// writing edge, so only diagonal blocks are contended; owner-writes
// resolves both uniformly. Atomic/Colored fall back to the owner scheme
// when a partition exists, else sequential.
func (k *Kernels) Jacobian(q []float64, a *sparse.BSR) {
	k.ensureEdgeSlots(a)
	a.Zero()
	switch k.Cfg.Strategy {
	case ReplicateNatural, ReplicateMETIS:
		p := k.Part
		k.Pool.Run(func(tid int) {
			k.jacEdgesOwner(q, a, p.EdgeList[tid], p.Owner, int32(tid))
			k.jacBoundaryOwner(q, a, p.Owner, int32(tid))
		})
	default:
		k.jacEdgesRange(q, a, 0, k.M.NumEdges())
		k.jacBoundarySeq(q, a)
	}
}

// ensureEdgeSlots caches, per edge, the four BSR slots it updates:
// (a,a), (a,b), (b,b), (b,a).
func (k *Kernels) ensureEdgeSlots(a *sparse.BSR) {
	if k.edgeSlots != nil {
		return
	}
	m := k.M
	k.edgeSlots = make([][4]int32, m.NumEdges())
	for e := 0; e < m.NumEdges(); e++ {
		va, vb := m.EV1[e], m.EV2[e]
		k.edgeSlots[e] = [4]int32{
			a.Diag[va],
			a.BlockAt(va, vb),
			a.Diag[vb],
			a.BlockAt(vb, va),
		}
	}
}

func (k *Kernels) edgeJacobians(q []float64, e int32, dL, dR *[16]float64) (a, b int32) {
	m := k.M
	a, b = m.EV1[e], m.EV2[e]
	n := geom.Vec3{X: m.ENX[e], Y: m.ENY[e], Z: m.ENZ[e]}
	qa := k.loadState(q, a)
	qb := k.loadState(q, b)
	physics.RoeFluxJacobians(qa, qb, n, k.Beta, dL, dR)
	return
}

func addBlock(dst []float64, src *[16]float64, sign float64) {
	for i := 0; i < 16; i++ {
		dst[i] += sign * src[i]
	}
}

func (k *Kernels) jacEdgesRange(q []float64, a *sparse.BSR, lo, hi int) {
	var dL, dR [16]float64
	for e := lo; e < hi; e++ {
		k.edgeJacobians(q, int32(e), &dL, &dR)
		s := &k.edgeSlots[e]
		// R_a += F  =>  dR_a/dqa += dL, dR_a/dqb += dR
		addBlock(a.Block(s[0]), &dL, 1)
		addBlock(a.Block(s[1]), &dR, 1)
		// R_b -= F  =>  dR_b/dqb -= dR, dR_b/dqa -= dL
		addBlock(a.Block(s[2]), &dR, -1)
		addBlock(a.Block(s[3]), &dL, -1)
	}
}

func (k *Kernels) jacEdgesOwner(q []float64, a *sparse.BSR, list []int32, owner []int32, tid int32) {
	m := k.M
	var dL, dR [16]float64
	for _, e := range list {
		va, vb := m.EV1[e], m.EV2[e]
		k.edgeJacobians(q, e, &dL, &dR)
		s := &k.edgeSlots[e]
		if owner[va] == tid {
			addBlock(a.Block(s[0]), &dL, 1)
			addBlock(a.Block(s[1]), &dR, 1)
		}
		if owner[vb] == tid {
			addBlock(a.Block(s[2]), &dR, -1)
			addBlock(a.Block(s[3]), &dL, -1)
		}
	}
}

func (k *Kernels) boundaryJacobian(q []float64, bn mesh.BNode, d *[16]float64) {
	switch bn.Kind {
	case mesh.PatchWall, mesh.PatchSymmetry:
		physics.WallFluxJacobian(bn.Normal, d)
	default:
		physics.FarfieldFluxJacobian(k.loadState(q, bn.V), k.QInf, bn.Normal, k.Beta, d)
	}
}

func (k *Kernels) jacBoundarySeq(q []float64, a *sparse.BSR) {
	var d [16]float64
	for _, bn := range k.M.BNodes {
		k.boundaryJacobian(q, bn, &d)
		addBlock(a.Block(a.Diag[bn.V]), &d, 1)
	}
}

func (k *Kernels) jacBoundaryOwner(q []float64, a *sparse.BSR, owner []int32, tid int32) {
	var d [16]float64
	for _, bn := range k.M.BNodes {
		if owner[bn.V] != tid {
			continue
		}
		k.boundaryJacobian(q, bn, &d)
		addBlock(a.Block(a.Diag[bn.V]), &d, 1)
	}
}

// AddPseudoTimeTerm adds Vol_v/dt_v to the diagonal of each block row —
// the pseudo-transient continuation shift (Eq. 2's 1/Δt term scaled by the
// control volume). dt is per-vertex (local time stepping).
func AddPseudoTimeTerm(a *sparse.BSR, vol, dt []float64) {
	for i := 0; i < a.N; i++ {
		blas4.AddDiag(a.Block(a.Diag[i]), vol[i]/dt[i])
	}
}
