package flux

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"fun3d/internal/par"
	"fun3d/internal/physics"
)

const kVenkTest = 5.0

// threeSweep is the unfused reference: Gradient -> Limiter -> Residual
// with the kernels' own strategy.
func threeSweep(k *Kernels, q []float64) (res, grad, phi []float64) {
	nv := k.M.NumVertices()
	grad = make([]float64, nv*12)
	phi = make([]float64, nv*4)
	res = make([]float64, nv*4)
	k.Gradient(q, grad)
	k.Limiter(q, grad, phi, kVenkTest)
	k.Residual(q, grad, phi, res)
	return res, grad, phi
}

// exactStrategy reports whether the fused pipeline must be bit-identical
// to the three-sweep path for this strategy. Atomic is nondeterministic in
// its unfused form already; Colored's fused flux traverses tile-major
// instead of color-major (deterministic but reassociated).
func exactStrategy(s Strategy) bool {
	return s == Sequential || s == ReplicateNatural || s == ReplicateMETIS
}

// TestResidualFusedConformance is the ISSUE's correctness bar: across all
// threading strategies, pool sizes, tile sizes and the SIMD/prefetch
// variants, the fused single-sweep pipeline must reproduce the three-sweep
// residual — bit-identical for the deterministic strategies, within
// rounding for Atomic/Colored.
func TestResidualFusedConformance(t *testing.T) {
	m := wingMesh(t)
	nv := m.NumVertices()
	qInf := physics.FreeStream(3)
	q := perturbedState(nv, qInf, 0.1, 42)

	strategies := append([]Strategy{Sequential}, conformanceStrategies...)
	for _, nw := range poolSizes {
		pool := par.NewPool(nw)
		for _, s := range strategies {
			if s == Sequential && nw > 1 {
				continue
			}
			for _, cfg := range []Config{
				{Strategy: s, TileEdges: 150},
				{Strategy: s},
				{Strategy: s, SIMD: true, Prefetch: true, PFDist: 8, TileEdges: 777},
			} {
				name := fmt.Sprintf("%v-nw%d-tile%d-simd%v", s, nw, cfg.TileEdges, cfg.SIMD)
				t.Run(name, func(t *testing.T) {
					part, err := NewPartition(m, nw, s, 17)
					if err != nil {
						t.Fatal(err)
					}
					p := pool
					if s == Sequential {
						p = nil
					}
					k := NewKernels(m, beta, qInf, p, part, cfg)
					want, _, _ := threeSweep(k, q)
					got := make([]float64, nv*4)
					k.ResidualFused(q, got, kVenkTest, false)

					tol := 0.0
					if !exactStrategy(s) {
						tol = 1e-12 * (maxAbs(want) + 1)
					}
					if d := maxAbsDiff(got, want); d > tol {
						t.Errorf("fused differs by %.3e (tol %.3e)", d, tol)
					}
				})
			}
		}
		pool.Close()
	}
}

// TestResidualFusedFrozenLimiter checks the Newton-matvec convention: a
// frozen evaluation reuses the limiter field of the previous unfrozen call
// while recomputing the gradient at the new state.
func TestResidualFusedFrozenLimiter(t *testing.T) {
	m := wingMesh(t)
	nv := m.NumVertices()
	qInf := physics.FreeStream(3)
	q := perturbedState(nv, qInf, 0.1, 42)
	q2 := perturbedState(nv, qInf, 0.1, 99)

	for _, s := range []Strategy{Sequential, ReplicateMETIS} {
		t.Run(s.String(), func(t *testing.T) {
			nw := 1
			var pool *par.Pool
			if s != Sequential {
				nw = 4
				pool = par.NewPool(nw)
				defer pool.Close()
			}
			part, err := NewPartition(m, nw, s, 17)
			if err != nil {
				t.Fatal(err)
			}
			k := NewKernels(m, beta, qInf, pool, part, Config{Strategy: s, TileEdges: 300})

			// Reference: phi from q, gradient and flux from q2.
			_, _, phi := threeSweep(k, q)
			grad2 := make([]float64, nv*12)
			k.Gradient(q2, grad2)
			want := make([]float64, nv*4)
			k.Residual(q2, grad2, phi, want)

			scratch := make([]float64, nv*4)
			k.ResidualFused(q, scratch, kVenkTest, false) // populates the phi scratch
			got := make([]float64, nv*4)
			k.ResidualFused(q2, got, kVenkTest, true)
			if d := maxAbsDiff(got, want); d != 0 {
				t.Errorf("frozen fused differs by %.3e", d)
			}
		})
	}
}

// TestGatherGradMatchesScatter pins the accumulation-order argument the
// whole fused design rests on: the ascending-edge gather reproduces the
// sequential scatter gradient bit-for-bit, vertex by vertex.
func TestGatherGradMatchesScatter(t *testing.T) {
	m := wingMesh(t)
	nv := m.NumVertices()
	qInf := physics.FreeStream(3)
	q := perturbedState(nv, qInf, 0.1, 7)
	k := NewKernels(m, beta, qInf, nil, &Partition{NW: 1}, Config{Strategy: Sequential})

	want := make([]float64, nv*12)
	k.Gradient(q, want)

	tl := k.Tiling()
	got := make([]float64, nv*12)
	for ti := 0; ti < tl.NumTiles(); ti++ {
		for _, v := range tl.CoverOf(ti) {
			k.gatherGradVertex(q, got, v, tl)
		}
	}
	// Every vertex with an edge is in some cover; isolated vertices have
	// zero gradient either way (gather never touches them, scatter only
	// scales their zero entries).
	for i := range want {
		if got[i] != want[i] && !(got[i] == 0 && want[i] == 0) {
			t.Fatalf("gradient entry %d: gather %v != scatter %v", i, got[i], want[i])
		}
	}
}

// TestResidualFusedBytesModel: the acceptance criterion's traffic bound —
// the modeled fused traffic must be at most half of the three-sweep
// second-order+limiter model at the default tile size.
func TestResidualFusedBytesModel(t *testing.T) {
	m := wingMesh(t)
	k := NewKernels(m, beta, physics.FreeStream(3), nil, &Partition{NW: 1}, Config{Strategy: Sequential})
	fb, gb := k.ResidualFusedBytes()
	fused := fb + gb
	unfused := k.ResidualBytes(true, true) + k.GradientBytes()
	if fused*2 > unfused {
		t.Fatalf("fused model %d B not <= half of three-sweep %d B", fused, unfused)
	}
	t.Logf("bytes/edge: fused %.0f, three-sweep %.0f (%.2fx)",
		float64(fused)/float64(m.NumEdges()), float64(unfused)/float64(m.NumEdges()),
		float64(unfused)/float64(fused))
}

// TestPFDistSemanticsFree: the prefetch lookahead distance must never
// change results, only timing — any PFDist yields the bit-identical
// residual of the unprefetched loop.
func TestPFDistSemanticsFree(t *testing.T) {
	m := wingMesh(t)
	nv := m.NumVertices()
	qInf := physics.FreeStream(3)
	q := perturbedState(nv, qInf, 0.1, 11)

	base := NewKernels(m, beta, qInf, nil, &Partition{NW: 1}, Config{Strategy: Sequential})
	want := make([]float64, nv*4)
	base.Residual(q, nil, nil, want)

	for _, pf := range []int{1, 4, 16, 1 << 20} {
		k := NewKernels(m, beta, qInf, nil, &Partition{NW: 1},
			Config{Strategy: Sequential, Prefetch: true, PFDist: pf})
		got := make([]float64, nv*4)
		k.Residual(q, nil, nil, got)
		if d := maxAbsDiff(got, want); d != 0 {
			t.Fatalf("PFDist=%d changed the residual by %.3e", pf, d)
		}
		if k.pfDist() != pf {
			t.Fatalf("pfDist() = %d, want %d", k.pfDist(), pf)
		}
	}
	if base.pfDist() != DefaultPFDist {
		t.Fatalf("default pfDist() = %d", base.pfDist())
	}
}

// TestAoSSoARoundTrip: property test that the layout converters are exact
// inverses for arbitrary nv and arbitrary values.
func TestAoSSoARoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nv := rng.Intn(200) + 1
		q := make([]float64, nv*4)
		for i := range q {
			q[i] = rng.NormFloat64()
		}
		soa := AoSToSoA(q, nv)
		back := SoAToAoS(soa, nv)
		for i := range q {
			if back[i] != q[i] {
				return false
			}
		}
		// And the opposite composition.
		aos := SoAToAoS(q, nv)
		there := AoSToSoA(aos, nv)
		for i := range q {
			if there[i] != q[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
