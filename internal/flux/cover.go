package flux

import (
	"fun3d/internal/mesh"
	"fun3d/internal/tile"
)

// Cover bundles the read-only cache-blocking structure of the fused
// residual pipeline: the edge tiling plus, for the owner-writes strategies,
// the per-thread CSR lists of the closed and open (halo) cover vertices
// each thread owns in each tile. Everything in a Cover is immutable after
// BuildCover, so a single instance can back any number of Kernels — and
// any number of concurrent solves — without copies or synchronization.
// This is the structure the multi-solve service shares across jobs on one
// cached mesh.
type Cover struct {
	// Tiling is the LLC-sized edge-span decomposition (see package tile).
	Tiling *tile.Tiling

	// Per-thread CSRs over tiles: thread tid's closed cover vertices of
	// tile ti are OwnedClosed[tid][OwnedClosedPtr[tid][ti]:OwnedClosedPtr[tid][ti+1]]
	// (and likewise for the open/halo lists). Nil when the partition has no
	// vertex ownership (Sequential, Atomic, Colored).
	OwnedClosedPtr [][]int32
	OwnedClosed    [][]int32
	OwnedOpenPtr   [][]int32
	OwnedOpen      [][]int32
}

// BuildCover precomputes the fused pipeline's shared structure for a mesh,
// a partition, and a tile size (<= 0 selects tile.DefaultEdgesPerTile).
// innerEdgesPerTile > 0 additionally builds the two-level hierarchy (inner
// tiles, staging index maps, phase-B lists, tile coloring) the staged
// pipeline consumes; 0 builds the flat tiling. part may be nil or
// ownerless; the per-thread owned lists are built only when the partition
// carries vertex ownership.
func BuildCover(m *mesh.Mesh, part *Partition, edgesPerTile, innerEdgesPerTile int) *Cover {
	c := &Cover{Tiling: tile.NewHier(m, edgesPerTile, innerEdgesPerTile)}
	if part != nil && part.Owner != nil {
		c.buildOwned(part)
	}
	return c
}

// buildOwned fills the per-thread closed/open CSRs. The lists partition
// every tile's cover because vertex ownership is a partition.
func (c *Cover) buildOwned(part *Partition) {
	t := c.Tiling
	owner := part.Owner
	nw := part.NW
	c.OwnedClosedPtr = make([][]int32, nw)
	c.OwnedClosed = make([][]int32, nw)
	c.OwnedOpenPtr = make([][]int32, nw)
	c.OwnedOpen = make([][]int32, nw)
	for tid := 0; tid < nw; tid++ {
		c.OwnedClosedPtr[tid] = make([]int32, t.NumTiles()+1)
		c.OwnedOpenPtr[tid] = make([]int32, t.NumTiles()+1)
	}
	for ti := 0; ti < t.NumTiles(); ti++ {
		for _, v := range t.ClosedOf(ti) {
			tid := owner[v]
			c.OwnedClosed[tid] = append(c.OwnedClosed[tid], v)
		}
		for _, v := range t.OpenOf(ti) {
			tid := owner[v]
			c.OwnedOpen[tid] = append(c.OwnedOpen[tid], v)
		}
		for tid := 0; tid < nw; tid++ {
			c.OwnedClosedPtr[tid][ti+1] = int32(len(c.OwnedClosed[tid]))
			c.OwnedOpenPtr[tid][ti+1] = int32(len(c.OwnedOpen[tid]))
		}
	}
}

// hasOwned reports whether the per-thread owned lists were built.
func (c *Cover) hasOwned() bool { return c.OwnedClosed != nil }
