package flux

import (
	"fmt"
	"testing"

	"fun3d/internal/par"
	"fun3d/internal/physics"
)

// TestResidualStagedConformance is the ISSUE's correctness bar: across all
// threading strategies, pool sizes, outer/inner tile sizes and the SIMD
// variant, the hierarchical staged pipeline must reproduce BOTH the
// three-sweep residual and the fused residual — bit-identical (tolerance 0)
// for the deterministic strategies, within rounding for Atomic/Colored
// (whose unfused forms are already reassociated).
func TestResidualStagedConformance(t *testing.T) {
	m := wingMesh(t)
	nv := m.NumVertices()
	qInf := physics.FreeStream(3)
	q := perturbedState(nv, qInf, 0.1, 42)

	strategies := append([]Strategy{Sequential}, conformanceStrategies...)
	for _, nw := range poolSizes {
		pool := par.NewPool(nw)
		for _, s := range strategies {
			if s == Sequential && nw > 1 {
				continue
			}
			for _, cfg := range []Config{
				{Strategy: s, Staged: true, TileEdges: 150, InnerTileEdges: 64},
				{Strategy: s, Staged: true},
				{Strategy: s, Staged: true, SIMD: true, TileEdges: 777, InnerTileEdges: 150},
			} {
				name := fmt.Sprintf("%v-nw%d-tile%d-inner%d-simd%v", s, nw, cfg.TileEdges, cfg.InnerTileEdges, cfg.SIMD)
				t.Run(name, func(t *testing.T) {
					part, err := NewPartition(m, nw, s, 17)
					if err != nil {
						t.Fatal(err)
					}
					p := pool
					if s == Sequential {
						p = nil
					}
					k := NewKernels(m, beta, qInf, p, part, cfg)
					want, _, _ := threeSweep(k, q)
					got := make([]float64, nv*4)
					k.ResidualStaged(q, got, kVenkTest, false)

					tol := 0.0
					if !exactStrategy(s) {
						tol = 1e-12 * (maxAbs(want) + 1)
					}
					if d := maxAbsDiff(got, want); d > tol {
						t.Errorf("staged vs three-sweep differs by %.3e (tol %.3e)", d, tol)
					}

					// Against the fused pipeline on its own kernels (the
					// staged kernels hold a hierarchical tiling; fused runs
					// on its flat counterpart at the same outer size).
					cfgF := cfg
					cfgF.Staged = false
					cfgF.InnerTileEdges = 0
					kf := NewKernels(m, beta, qInf, p, part, cfgF)
					wantF := make([]float64, nv*4)
					kf.ResidualFused(q, wantF, kVenkTest, false)
					if d := maxAbsDiff(got, wantF); d > tol {
						t.Errorf("staged vs fused differs by %.3e (tol %.3e)", d, tol)
					}
				})
			}
		}
		pool.Close()
	}
}

// TestResidualStagedFrozenLimiter checks the Newton-matvec convention on
// the staged path: a frozen evaluation gathers the phi published by the
// previous unfrozen call while recomputing gradients at the new state.
func TestResidualStagedFrozenLimiter(t *testing.T) {
	m := wingMesh(t)
	nv := m.NumVertices()
	qInf := physics.FreeStream(3)
	q := perturbedState(nv, qInf, 0.1, 42)
	q2 := perturbedState(nv, qInf, 0.1, 99)

	for _, s := range []Strategy{Sequential, ReplicateMETIS} {
		t.Run(s.String(), func(t *testing.T) {
			nw := 1
			var pool *par.Pool
			if s != Sequential {
				nw = 4
				pool = par.NewPool(nw)
				defer pool.Close()
			}
			part, err := NewPartition(m, nw, s, 17)
			if err != nil {
				t.Fatal(err)
			}
			k := NewKernels(m, beta, qInf, pool, part,
				Config{Strategy: s, Staged: true, TileEdges: 300, InnerTileEdges: 100})

			// Reference: phi from q, gradient and flux from q2.
			_, _, phi := threeSweep(k, q)
			grad2 := make([]float64, nv*12)
			k.Gradient(q2, grad2)
			want := make([]float64, nv*4)
			k.Residual(q2, grad2, phi, want)

			scratch := make([]float64, nv*4)
			k.ResidualStaged(q, scratch, kVenkTest, false) // publishes phi
			got := make([]float64, nv*4)
			k.ResidualStaged(q2, got, kVenkTest, true)
			if d := maxAbsDiff(got, want); d != 0 {
				t.Errorf("frozen staged differs by %.3e", d)
			}
		})
	}
}

// TestStagedSIMDBatchesExecute pins the acceptance criterion that the
// W-wide batching demonstrably runs on tile-interior edges in the staged
// path: with SIMD on, the batch counter advances by the exact number of
// full W-batches the inner tiles contain; with SIMD off it stays zero.
func TestStagedSIMDBatchesExecute(t *testing.T) {
	m := wingMesh(t)
	nv := m.NumVertices()
	qInf := physics.FreeStream(3)
	q := perturbedState(nv, qInf, 0.1, 7)
	part := &Partition{NW: 1}

	k := NewKernels(m, beta, qInf, nil, part,
		Config{Strategy: Sequential, Staged: true, SIMD: true, TileEdges: 1000, InnerTileEdges: 300})
	res := make([]float64, nv*4)
	k.ResidualStaged(q, res, kVenkTest, false)

	tl := k.Tiling()
	want := int64(0)
	for _, sp := range tl.Inner {
		want += int64((sp.Hi - sp.Lo) / W)
	}
	if want == 0 {
		t.Fatal("test mesh yields no full SIMD batches")
	}
	if got := k.StagedSIMDBatches(); got != want {
		t.Errorf("StagedSIMDBatches() = %d, want %d", got, want)
	}

	kOff := NewKernels(m, beta, qInf, nil, part,
		Config{Strategy: Sequential, Staged: true, TileEdges: 1000, InnerTileEdges: 300})
	kOff.ResidualStaged(q, res, kVenkTest, false)
	if got := kOff.StagedSIMDBatches(); got != 0 {
		t.Errorf("scalar staged path counted %d SIMD batches", got)
	}
}

// TestStagedPoisonedScratch: a poisoned kernel (the instance pool's recycle
// convention) must still produce the exact staged residual — every staging
// plane is fully rewritten before it is read.
func TestStagedPoisonedScratch(t *testing.T) {
	m := wingMesh(t)
	nv := m.NumVertices()
	qInf := physics.FreeStream(3)
	q := perturbedState(nv, qInf, 0.1, 21)
	part := &Partition{NW: 1}
	cfg := Config{Strategy: Sequential, Staged: true, TileEdges: 500, InnerTileEdges: 128}

	k := NewKernels(m, beta, qInf, nil, part, cfg)
	want := make([]float64, nv*4)
	k.ResidualStaged(q, want, kVenkTest, false)

	k.PoisonScratch()
	got := make([]float64, nv*4)
	k.ResidualStaged(q, got, kVenkTest, false)
	if d := maxAbsDiff(got, want); d != 0 {
		t.Errorf("poisoned staged kernel differs by %.3e", d)
	}
}

// TestResidualStagedBytesModel: the staged staging overhead must stay
// bounded — total modeled staged traffic at the default tile sizes must
// still be well under the three-sweep model, or the ladder rung would be
// a regression by construction.
func TestResidualStagedBytesModel(t *testing.T) {
	m := wingMesh(t)
	k := NewKernels(m, beta, physics.FreeStream(3), nil, &Partition{NW: 1},
		Config{Strategy: Sequential, Staged: true})
	fb, gb, sb := k.ResidualStagedBytes()
	staged := fb + gb + sb
	unfused := k.ResidualBytes(true, true) + k.GradientBytes()
	if staged*2 > unfused {
		t.Fatalf("staged model %d B not <= half of three-sweep %d B", staged, unfused)
	}
	t.Logf("bytes/edge: staged %.0f (flux %.0f gather %.0f scatter %.0f), three-sweep %.0f",
		float64(staged)/float64(m.NumEdges()), float64(fb)/float64(m.NumEdges()),
		float64(gb)/float64(m.NumEdges()), float64(sb)/float64(m.NumEdges()),
		float64(unfused)/float64(m.NumEdges()))
}
