package flux

import (
	"fmt"
	"testing"

	"fun3d/internal/par"
	"fun3d/internal/physics"
	"fun3d/internal/sparse"
)

// poolSizes are the thread counts the conformance suite sweeps, including a
// non-power-of-two (7) to catch chunking/ownership edge cases.
var poolSizes = []int{1, 2, 4, 7}

// conformanceStrategies are every parallel strategy measured against the
// sequential reference.
var conformanceStrategies = []Strategy{Atomic, ReplicateNatural, ReplicateMETIS, Colored}

// TestConformanceAllStrategiesAllPoolSizes is the cross-strategy
// conformance matrix: on a seeded wing mesh, every strategy at every pool
// size must agree with the sequential reference within 1e-12 (relative)
// for the residual, gradient, and Jacobian kernels. The deterministic
// strategies (Replicate*, Colored for the residual's edge part) must agree
// exactly where the accumulation-order argument guarantees it; Atomic gets
// the tolerance because hardware add order is scheduling-dependent.
func TestConformanceAllStrategiesAllPoolSizes(t *testing.T) {
	m := wingMesh(t)
	nv := m.NumVertices()
	qInf := physics.FreeStream(3)
	q := perturbedState(nv, qInf, 0.1, 42)

	seq := NewKernels(m, beta, qInf, nil, &Partition{NW: 1}, Config{Strategy: Sequential})
	wantRes := make([]float64, nv*4)
	seq.Residual(q, nil, nil, wantRes)
	wantGrad := make([]float64, nv*12)
	seq.Gradient(q, wantGrad)
	wantJac := sparse.NewBSRFromAdj(m.AdjPtr, m.Adj)
	seq.Jacobian(q, wantJac)

	resScale := maxAbs(wantRes) + 1
	gradScale := maxAbs(wantGrad) + 1
	jacScale := maxAbs(wantJac.Val) + 1

	for _, nw := range poolSizes {
		pool := par.NewPool(nw)
		for _, s := range conformanceStrategies {
			t.Run(fmt.Sprintf("%v-nw%d", s, nw), func(t *testing.T) {
				part, err := NewPartition(m, nw, s, 17)
				if err != nil {
					t.Fatal(err)
				}
				k := NewKernels(m, beta, qInf, pool, part, Config{Strategy: s})

				res := make([]float64, nv*4)
				k.Residual(q, nil, nil, res)
				if d := maxAbsDiff(res, wantRes); d > 1e-12*resScale {
					t.Errorf("residual differs by %.3e (tol %.3e)", d, 1e-12*resScale)
				}

				grad := make([]float64, nv*12)
				k.Gradient(q, grad)
				if d := maxAbsDiff(grad, wantGrad); d > 1e-12*gradScale {
					t.Errorf("gradient differs by %.3e (tol %.3e)", d, 1e-12*gradScale)
				}

				// The colored strategy has no Jacobian path; the others do.
				if s != Colored {
					jac := sparse.NewBSRFromAdj(m.AdjPtr, m.Adj)
					k.Jacobian(q, jac)
					if d := maxAbsDiff(jac.Val, wantJac.Val); d > 1e-12*jacScale {
						t.Errorf("jacobian differs by %.3e (tol %.3e)", d, 1e-12*jacScale)
					}
				}
			})
		}
		pool.Close()
	}
}

// TestConformanceSplitResidual checks the interior/boundary split kernels:
// for every strategy and pool size, evaluating the residual as
// Begin + EdgeRange(0,cut) + EdgeRange(cut,ne) + Boundary + End must match
// the one-shot Residual — exactly for Sequential and Replicate (the split
// preserves per-vertex accumulation order), within 1e-12 relative for
// Atomic (scheduling-dependent add order) and Colored (color-major
// traversal: a split interleaves color sub-lists in a different order).
// Cut points include the degenerate 0 and ne.
func TestConformanceSplitResidual(t *testing.T) {
	m := wingMesh(t)
	nv := m.NumVertices()
	ne := m.NumEdges()
	qInf := physics.FreeStream(3)
	q := perturbedState(nv, qInf, 0.1, 43)
	cuts := []int{0, 1, ne / 3, ne / 2, ne - 1, ne}

	strategies := append([]Strategy{Sequential}, conformanceStrategies...)
	for _, nw := range poolSizes {
		pool := par.NewPool(nw)
		for _, s := range strategies {
			if s == Sequential && nw > 1 {
				continue
			}
			t.Run(fmt.Sprintf("%v-nw%d", s, nw), func(t *testing.T) {
				part, err := NewPartition(m, nw, s, 23)
				if err != nil {
					t.Fatal(err)
				}
				p := pool
				if s == Sequential {
					p = nil
				}
				k := NewKernels(m, beta, qInf, p, part, Config{Strategy: s})
				want := make([]float64, nv*4)
				k.Residual(q, nil, nil, want)
				scale := maxAbs(want) + 1

				for _, cut := range cuts {
					got := make([]float64, nv*4)
					k.ResidualBegin(got)
					k.ResidualEdgeRange(q, nil, nil, got, 0, cut)
					k.ResidualEdgeRange(q, nil, nil, got, cut, ne)
					k.ResidualBoundary(q, got)
					k.ResidualEnd(got)
					d := maxAbsDiff(got, want)
					tol := 0.0
					if s == Atomic || s == Colored {
						tol = 1e-12 * scale
					}
					if d > tol {
						t.Errorf("cut %d: split residual differs by %.3e (tol %.3e)", cut, d, tol)
					}
				}
			})
		}
		pool.Close()
	}
}

// TestEdgeSubRange pins the binary-search range filter the split kernels
// rely on: sub-lists of ascending edge lists, order preserved, exhaustive
// over a small list.
func TestEdgeSubRange(t *testing.T) {
	list := []int32{2, 3, 5, 8, 9, 13}
	for lo := 0; lo <= 14; lo++ {
		for hi := lo; hi <= 14; hi++ {
			got := edgeSubRange(list, lo, hi)
			var want []int32
			for _, e := range list {
				if int(e) >= lo && int(e) < hi {
					want = append(want, e)
				}
			}
			if len(got) != len(want) {
				t.Fatalf("[%d,%d): got %v want %v", lo, hi, got, want)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("[%d,%d): got %v want %v", lo, hi, got, want)
				}
			}
		}
	}
}
