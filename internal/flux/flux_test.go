package flux

import (
	"math"
	"math/rand"
	"testing"

	"fun3d/internal/geom"
	"fun3d/internal/mesh"
	"fun3d/internal/par"
	"fun3d/internal/physics"
	"fun3d/internal/sparse"
)

const beta = 5.0

// boxMesh returns a wing-less mesh (farfield + symmetry only), where
// freestream must be an exact steady state.
func boxMesh(t testing.TB) *mesh.Mesh {
	m, err := mesh.Generate(mesh.GenSpec{NX: 8, NY: 7, NZ: 6, Shuffle: true, Seed: 5,
		XMin: -1, XMax: 1, YMin: 0.1, YMax: 1.9, ZMin: -1, ZMax: 1})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func wingMesh(t testing.TB) *mesh.Mesh {
	m, err := mesh.Generate(mesh.SpecTiny())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func uniformState(nv int, q physics.State) []float64 {
	out := make([]float64, nv*4)
	for v := 0; v < nv; v++ {
		copy(out[v*4:v*4+4], q[:])
	}
	return out
}

func perturbedState(nv int, q physics.State, amp float64, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	out := uniformState(nv, q)
	for i := range out {
		out[i] += amp * rng.NormFloat64()
	}
	return out
}

func maxAbs(x []float64) float64 {
	m := 0.0
	for _, v := range x {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}

func maxAbsDiff(a, b []float64) float64 {
	m := 0.0
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

// Freestream preservation: on a wing-less domain, uniform freestream flow
// must produce a (numerically) zero residual — first and second order.
// This is the discrete identity that Validate()'s closure property buys.
func TestFreestreamPreservation(t *testing.T) {
	m := boxMesh(t)
	qInf := physics.FreeStream(3)
	q := uniformState(m.NumVertices(), qInf)
	k := NewKernels(m, beta, qInf, nil, &Partition{NW: 1}, Config{Strategy: Sequential})

	res := make([]float64, m.NumVertices()*4)
	k.Residual(q, nil, nil, res)
	if r := maxAbs(res); r > 1e-12 {
		t.Fatalf("first-order freestream residual %.3e", r)
	}

	grad := make([]float64, m.NumVertices()*12)
	k.Gradient(q, grad)
	if g := maxAbs(grad); g > 1e-12 {
		t.Fatalf("gradient of uniform field %.3e", g)
	}
	k.Residual(q, grad, nil, res)
	if r := maxAbs(res); r > 1e-12 {
		t.Fatalf("second-order freestream residual %.3e", r)
	}
}

// All parallel strategies must agree with the sequential residual to
// floating-point reordering tolerance.
func TestStrategiesMatchSequential(t *testing.T) {
	m := wingMesh(t)
	qInf := physics.FreeStream(3)
	q := perturbedState(m.NumVertices(), qInf, 0.1, 1)
	nv := m.NumVertices()

	seqK := NewKernels(m, beta, qInf, nil, &Partition{NW: 1}, Config{Strategy: Sequential})
	want := make([]float64, nv*4)
	seqK.Residual(q, nil, nil, want)
	scale := maxAbs(want) + 1

	pool := par.NewPool(4)
	defer pool.Close()
	for _, s := range []Strategy{Atomic, ReplicateNatural, ReplicateMETIS, Colored} {
		part, err := NewPartition(m, pool.Size(), s, 11)
		if err != nil {
			t.Fatal(err)
		}
		k := NewKernels(m, beta, qInf, pool, part, Config{Strategy: s})
		got := make([]float64, nv*4)
		k.Residual(q, nil, nil, got)
		if d := maxAbsDiff(got, want); d > 1e-11*scale {
			t.Fatalf("%v residual differs by %.3e", s, d)
		}
	}
}

// Code variants (SIMD batching, prefetch, both) must not change results.
func TestCodeVariantsMatch(t *testing.T) {
	m := wingMesh(t)
	qInf := physics.FreeStream(3)
	q := perturbedState(m.NumVertices(), qInf, 0.1, 2)
	nv := m.NumVertices()
	pool := par.NewPool(4)
	defer pool.Close()
	part, err := NewPartition(m, pool.Size(), ReplicateMETIS, 3)
	if err != nil {
		t.Fatal(err)
	}

	base := NewKernels(m, beta, qInf, pool, part, Config{Strategy: ReplicateMETIS})
	want := make([]float64, nv*4)
	base.Residual(q, nil, nil, want)

	for _, cfg := range []Config{
		{Strategy: ReplicateMETIS, SIMD: true},
		{Strategy: ReplicateMETIS, Prefetch: true},
		{Strategy: ReplicateMETIS, SIMD: true, Prefetch: true},
		{Strategy: Sequential, SIMD: true},
	} {
		k := NewKernels(m, beta, qInf, pool, part, cfg)
		got := make([]float64, nv*4)
		k.Residual(q, nil, nil, got)
		tol := 0.0
		if cfg.Strategy == Sequential {
			tol = 1e-11 * (maxAbs(want) + 1) // different accumulation order vs owner lists
		}
		if d := maxAbsDiff(got, want); d > tol {
			t.Fatalf("cfg %+v differs by %.3e", cfg, d)
		}
	}
}

// The SoA (baseline) layout must produce identical physics.
func TestSoALayoutMatches(t *testing.T) {
	m := wingMesh(t)
	qInf := physics.FreeStream(3)
	nv := m.NumVertices()
	q := perturbedState(nv, qInf, 0.1, 3)

	kAoS := NewKernels(m, beta, qInf, nil, &Partition{NW: 1}, Config{Strategy: Sequential})
	want := make([]float64, nv*4)
	kAoS.Residual(q, nil, nil, want)

	qSoA := AoSToSoA(q, nv)
	kSoA := NewKernels(m, beta, qInf, nil, &Partition{NW: 1}, Config{Strategy: Sequential, SoANodeData: true})
	got := make([]float64, nv*4)
	kSoA.Residual(qSoA, nil, nil, got)
	if d := maxAbsDiff(got, want); d != 0 {
		t.Fatalf("SoA layout changes results by %.3e", d)
	}

	back := SoAToAoS(qSoA, nv)
	if maxAbsDiff(back, q) != 0 {
		t.Fatal("AoS->SoA->AoS roundtrip broken")
	}
}

// Conservation: the residual summed over all vertices telescopes to the
// net boundary flux; for interior edges every flux cancels, so the sum of
// residuals must equal the sum of boundary fluxes alone.
func TestResidualTelescopes(t *testing.T) {
	m := wingMesh(t)
	qInf := physics.FreeStream(3)
	nv := m.NumVertices()
	q := perturbedState(nv, qInf, 0.2, 4)
	k := NewKernels(m, beta, qInf, nil, &Partition{NW: 1}, Config{Strategy: Sequential})
	res := make([]float64, nv*4)
	k.Residual(q, nil, nil, res)

	var sum [4]float64
	for v := 0; v < nv; v++ {
		for c := 0; c < 4; c++ {
			sum[c] += res[v*4+c]
		}
	}
	var bsum [4]float64
	for _, bn := range m.BNodes {
		f, _ := k.boundaryFlux(q, bn)
		for c := 0; c < 4; c++ {
			bsum[c] += f[c]
		}
	}
	for c := 0; c < 4; c++ {
		if math.Abs(sum[c]-bsum[c]) > 1e-9*(math.Abs(bsum[c])+1) {
			t.Fatalf("component %d: residual sum %v != boundary sum %v", c, sum[c], bsum[c])
		}
	}
}

// Gradient strategies agree; linear fields are reproduced reasonably on
// interior vertices and exactly-zero for uniform fields (tested above).
func TestGradientStrategiesAndLinearField(t *testing.T) {
	m := boxMesh(t)
	nv := m.NumVertices()
	// q_c(x) = c-th linear form
	g := [4]geom.Vec3{{X: 1, Y: 2, Z: -1}, {X: 0.5}, {Y: -2}, {X: 1, Z: 1}}
	q := make([]float64, nv*4)
	for v := 0; v < nv; v++ {
		for c := 0; c < 4; c++ {
			q[v*4+c] = g[c].Dot(m.Coords[v])
		}
	}
	seqK := NewKernels(m, beta, physics.FreeStream(0), nil, &Partition{NW: 1}, Config{Strategy: Sequential})
	want := make([]float64, nv*12)
	seqK.Gradient(q, want)

	// Interior accuracy (boundary vertices use the lower-order closure).
	interior := make([]bool, nv)
	for v := range interior {
		interior[v] = true
	}
	for _, bn := range m.BNodes {
		interior[bn.V] = false
	}
	checked := 0
	for v := 0; v < nv; v++ {
		if !interior[v] {
			continue
		}
		checked++
		for c := 0; c < 4; c++ {
			gc := geom.Vec3{X: want[v*12+c*3], Y: want[v*12+c*3+1], Z: want[v*12+c*3+2]}
			if gc.Sub(g[c]).Norm() > 0.05*(g[c].Norm()+1) {
				t.Fatalf("vertex %d comp %d: gradient %v want %v", v, c, gc, g[c])
			}
		}
	}
	if checked == 0 {
		t.Fatal("no interior vertices checked")
	}

	pool := par.NewPool(4)
	defer pool.Close()
	for _, s := range []Strategy{Atomic, ReplicateNatural, ReplicateMETIS} {
		part, err := NewPartition(m, pool.Size(), s, 7)
		if err != nil {
			t.Fatal(err)
		}
		k := NewKernels(m, beta, physics.FreeStream(0), pool, part, Config{Strategy: s})
		got := make([]float64, nv*12)
		k.Gradient(q, got)
		if d := maxAbsDiff(got, want); d > 1e-11*(maxAbs(want)+1) {
			t.Fatalf("%v gradient differs by %.3e", s, d)
		}
	}
}

// Limiter bounds and uniform-field behaviour.
func TestLimiter(t *testing.T) {
	m := wingMesh(t)
	nv := m.NumVertices()
	qInf := physics.FreeStream(3)
	k := NewKernels(m, beta, qInf, nil, &Partition{NW: 1}, Config{Strategy: Sequential})

	q := uniformState(nv, qInf)
	grad := make([]float64, nv*12)
	k.Gradient(q, grad)
	phi := make([]float64, nv*4)
	k.Limiter(q, grad, phi, 1)
	for i, p := range phi {
		if p != 1 {
			t.Fatalf("uniform field limited at %d: phi=%v", i, p)
		}
	}

	q = perturbedState(nv, qInf, 0.5, 5)
	k.Gradient(q, grad)
	k.Limiter(q, grad, phi, 1)
	limited := 0
	for i, p := range phi {
		if p < 0 || p > 1 || math.IsNaN(p) {
			t.Fatalf("phi[%d] = %v out of range", i, p)
		}
		if p < 1 {
			limited++
		}
	}
	if limited == 0 {
		t.Fatal("rough field never limited")
	}

	// Parallel limiter agrees.
	pool := par.NewPool(4)
	defer pool.Close()
	part, _ := NewPartition(m, pool.Size(), ReplicateMETIS, 1)
	kp := NewKernels(m, beta, qInf, pool, part, Config{Strategy: ReplicateMETIS})
	phi2 := make([]float64, nv*4)
	kp.Limiter(q, grad, phi2, 1)
	if maxAbsDiff(phi, phi2) != 0 {
		t.Fatal("parallel limiter differs")
	}
}

// Jacobian: matrix-vector products approximate finite differences of the
// first-order residual (frozen dissipation => loose tolerance), and the
// owner-writes assembly matches sequential assembly.
func TestJacobianFDAndStrategies(t *testing.T) {
	m := wingMesh(t)
	nv := m.NumVertices()
	qInf := physics.FreeStream(3)
	q := perturbedState(nv, qInf, 0.05, 6)

	k := NewKernels(m, beta, qInf, nil, &Partition{NW: 1}, Config{Strategy: Sequential})
	a := sparse.NewBSRFromAdj(m.AdjPtr, m.Adj)
	k.Jacobian(q, a)

	// FD directional derivative.
	rng := rand.New(rand.NewSource(7))
	dq := make([]float64, nv*4)
	for i := range dq {
		dq[i] = rng.NormFloat64()
	}
	const h = 1e-6
	qp := make([]float64, nv*4)
	qm := make([]float64, nv*4)
	for i := range q {
		qp[i] = q[i] + h*dq[i]
		qm[i] = q[i] - h*dq[i]
	}
	rp := make([]float64, nv*4)
	rm := make([]float64, nv*4)
	k.Residual(qp, nil, nil, rp)
	k.Residual(qm, nil, nil, rm)
	fd := make([]float64, nv*4)
	for i := range fd {
		fd[i] = (rp[i] - rm[i]) / (2 * h)
	}
	av := make([]float64, nv*4)
	a.MulVec(dq, av)
	num, den := 0.0, 0.0
	for i := range fd {
		num += (av[i] - fd[i]) * (av[i] - fd[i])
		den += fd[i] * fd[i]
	}
	rel := math.Sqrt(num / den)
	if rel > 0.15 {
		t.Fatalf("Jacobian vs FD relative error %.3f", rel)
	}
	t.Logf("frozen-dissipation Jacobian FD relative error: %.4f", rel)

	// Owner-writes assembly.
	pool := par.NewPool(4)
	defer pool.Close()
	for _, s := range []Strategy{ReplicateNatural, ReplicateMETIS} {
		part, err := NewPartition(m, pool.Size(), s, 9)
		if err != nil {
			t.Fatal(err)
		}
		kp := NewKernels(m, beta, qInf, pool, part, Config{Strategy: s})
		a2 := sparse.NewBSRFromAdj(m.AdjPtr, m.Adj)
		kp.Jacobian(q, a2)
		if d := maxAbsDiff(a2.Val, a.Val); d > 1e-10*(maxAbs(a.Val)+1) {
			t.Fatalf("%v jacobian differs by %.3e", s, d)
		}
	}
}

func TestAddPseudoTimeTerm(t *testing.T) {
	m := wingMesh(t)
	a := sparse.NewBSRFromAdj(m.AdjPtr, m.Adj)
	dt := make([]float64, m.NumVertices())
	for i := range dt {
		dt[i] = 0.5
	}
	AddPseudoTimeTerm(a, m.Vol, dt)
	for i := 0; i < a.N; i++ {
		d := a.Block(a.Diag[i])
		want := m.Vol[i] / 0.5
		if math.Abs(d[0]-want) > 1e-15*want {
			t.Fatalf("row %d diag %v want %v", i, d[0], want)
		}
	}
}

// Replication overhead: natural-order partitions must replicate much more
// than METIS partitions (the paper's 41% vs 4%).
func TestReplicationOverheadGap(t *testing.T) {
	m := wingMesh(t)
	nat, err := NewPartition(m, 8, ReplicateNatural, 1)
	if err != nil {
		t.Fatal(err)
	}
	met, err := NewPartition(m, 8, ReplicateMETIS, 1)
	if err != nil {
		t.Fatal(err)
	}
	if met.Replication >= nat.Replication {
		t.Fatalf("METIS replication %.3f >= natural %.3f", met.Replication, nat.Replication)
	}
	t.Logf("replication: natural=%.1f%% metis=%.1f%%", 100*nat.Replication, 100*met.Replication)
}

func TestStrategyString(t *testing.T) {
	for _, s := range []Strategy{Sequential, Atomic, ReplicateNatural, ReplicateMETIS, Colored} {
		if s.String() == "" {
			t.Fatal("empty strategy name")
		}
	}
	if Strategy(99).String() == "" {
		t.Fatal("unknown strategy name empty")
	}
}

func TestNewPartitionUnknownStrategy(t *testing.T) {
	m := wingMesh(t)
	if _, err := NewPartition(m, 2, Strategy(99), 0); err == nil {
		t.Fatal("unknown strategy accepted")
	}
}

// Order-of-accuracy study: the Green-Gauss gradient error on a smooth
// quadratic field must shrink under mesh refinement (first-order
// consistency on interior vertices).
func TestGradientRefinementConvergence(t *testing.T) {
	errAt := func(nx, ny, nz int) float64 {
		m, err := mesh.Generate(mesh.GenSpec{NX: nx, NY: ny, NZ: nz, Shuffle: true, Seed: 4,
			XMin: -1, XMax: 1, YMin: 0.1, YMax: 2.1, ZMin: -1, ZMax: 1})
		if err != nil {
			t.Fatal(err)
		}
		nv := m.NumVertices()
		// q0(x,y,z) = x^2 + y z (smooth, curved)
		q := make([]float64, nv*4)
		for v := 0; v < nv; v++ {
			c := m.Coords[v]
			q[v*4] = c.X*c.X + c.Y*c.Z
		}
		k := NewKernels(m, beta, physics.FreeStream(0), nil, &Partition{NW: 1}, Config{})
		grad := make([]float64, nv*12)
		k.Gradient(q, grad)
		interior := make([]bool, nv)
		for v := range interior {
			interior[v] = true
		}
		for _, bn := range m.BNodes {
			interior[bn.V] = false
		}
		sum, n := 0.0, 0
		for v := 0; v < nv; v++ {
			if !interior[v] {
				continue
			}
			c := m.Coords[v]
			gx, gy, gz := grad[v*12], grad[v*12+1], grad[v*12+2]
			ex, ey, ez := gx-2*c.X, gy-c.Z, gz-c.Y
			sum += ex*ex + ey*ey + ez*ez
			n++
		}
		if n == 0 {
			t.Fatal("no interior vertices")
		}
		return math.Sqrt(sum / float64(n))
	}
	coarse := errAt(7, 6, 6)
	fine := errAt(13, 11, 11)
	if fine >= coarse*0.7 {
		t.Fatalf("gradient not converging under refinement: coarse %.4g fine %.4g", coarse, fine)
	}
	t.Logf("gradient L2 error: coarse=%.4g fine=%.4g (ratio %.2f)", coarse, fine, coarse/fine)
}
