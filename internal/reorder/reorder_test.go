package reorder

import (
	"math/rand"
	"testing"
	"testing/quick"

	"fun3d/internal/mesh"
)

// buildCSR creates a Graph from an edge list over n vertices.
func buildCSR(n int, edges [][2]int32) Graph {
	deg := make([]int32, n+1)
	for _, e := range edges {
		deg[e[0]+1]++
		deg[e[1]+1]++
	}
	for v := 0; v < n; v++ {
		deg[v+1] += deg[v]
	}
	adj := make([]int32, deg[n])
	fill := make([]int32, n)
	for _, e := range edges {
		a, b := e[0], e[1]
		adj[deg[a]+fill[a]] = b
		fill[a]++
		adj[deg[b]+fill[b]] = a
		fill[b]++
	}
	return Graph{Ptr: deg, Adj: adj}
}

// pathGraph returns a path 0-1-2-...-n-1 with shuffled labels.
func shuffledPath(n int, rng *rand.Rand) (Graph, []int32) {
	labels := rng.Perm(n)
	edges := make([][2]int32, n-1)
	for i := 0; i < n-1; i++ {
		edges[i] = [2]int32{int32(labels[i]), int32(labels[i+1])}
	}
	lab32 := make([]int32, n)
	for i, l := range labels {
		lab32[i] = int32(l)
	}
	return buildCSR(n, edges), lab32
}

func TestRCMPathOptimal(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		g, _ := shuffledPath(50, rng)
		perm := RCM(g)
		if !IsPermutation(perm) {
			t.Fatal("not a permutation")
		}
		if bw := Bandwidth(g, perm); bw != 1 {
			t.Fatalf("path bandwidth after RCM = %d, want 1", bw)
		}
	}
}

func TestRCMImprovesShuffledMesh(t *testing.T) {
	m, err := mesh.Generate(mesh.SpecTiny())
	if err != nil {
		t.Fatal(err)
	}
	g := Graph{Ptr: m.AdjPtr, Adj: m.Adj}
	bwNat := Bandwidth(g, nil)
	perm := RCM(g)
	bwRCM := Bandwidth(g, perm)
	if bwRCM >= bwNat {
		t.Fatalf("RCM bandwidth %d >= natural %d on shuffled mesh", bwRCM, bwNat)
	}
	if p := Profile(g, perm); p >= Profile(g, nil) {
		t.Fatalf("RCM profile %d not improved", p)
	}
	t.Logf("bandwidth natural=%d rcm=%d", bwNat, bwRCM)
}

func TestRCMDisconnected(t *testing.T) {
	// Two triangles, no connection.
	g := buildCSR(6, [][2]int32{{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5}, {5, 3}})
	perm := RCM(g)
	if !IsPermutation(perm) {
		t.Fatal("not a permutation on disconnected graph")
	}
}

func TestRCMSingletonAndEmpty(t *testing.T) {
	g := buildCSR(3, nil) // three isolated vertices
	perm := RCM(g)
	if !IsPermutation(perm) {
		t.Fatal("isolated vertices")
	}
	g0 := buildCSR(0, nil)
	if len(RCM(g0)) != 0 {
		t.Fatal("empty graph")
	}
}

// Property: RCM always yields a valid permutation and never increases
// bandwidth versus a random labeling of a random graph.
func TestRCMProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(60) + 5
		var edges [][2]int32
		for i := 1; i < n; i++ {
			// random tree plus extra edges
			j := rng.Intn(i)
			edges = append(edges, [2]int32{int32(i), int32(j)})
		}
		for k := 0; k < n/2; k++ {
			a, b := rng.Intn(n), rng.Intn(n)
			if a != b {
				edges = append(edges, [2]int32{int32(a), int32(b)})
			}
		}
		g := buildCSR(n, edges)
		perm := RCM(g)
		return IsPermutation(perm)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestInvert(t *testing.T) {
	perm := []int32{2, 0, 1, 3}
	inv := Invert(perm)
	for old, nw := range perm {
		if inv[nw] != int32(old) {
			t.Fatal("inverse wrong")
		}
	}
}

func TestIsPermutation(t *testing.T) {
	if !IsPermutation([]int32{1, 0, 2}) {
		t.Fatal("valid rejected")
	}
	if IsPermutation([]int32{0, 0, 2}) {
		t.Fatal("duplicate accepted")
	}
	if IsPermutation([]int32{0, 3, 1}) {
		t.Fatal("out of range accepted")
	}
}

func TestNatural(t *testing.T) {
	p := Natural(4)
	for i, v := range p {
		if v != int32(i) {
			t.Fatal("not identity")
		}
	}
	if Bandwidth(buildCSR(2, [][2]int32{{0, 1}}), Natural(2)) != 1 {
		t.Fatal("bandwidth identity")
	}
}
