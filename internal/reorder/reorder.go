// Package reorder implements vertex reordering for locality: the Reverse
// Cuthill-McKee algorithm the paper applies before everything else ("the
// vertex numbering is reordered using RCM to improve locality"), plus the
// bandwidth/profile metrics used to quantify it.
//
// All functions operate on a CSR adjacency (ptr/adj) of an undirected graph,
// the representation shared by mesh.Mesh and sparse matrix symbolics.
package reorder

import (
	"sort"
)

// Graph is a read-only CSR view of an undirected graph.
type Graph struct {
	Ptr []int32 // len n+1
	Adj []int32 // len Ptr[n]
}

// NumVertices returns the number of vertices.
func (g Graph) NumVertices() int { return len(g.Ptr) - 1 }

// Degree returns the degree of v.
func (g Graph) Degree(v int32) int { return int(g.Ptr[v+1] - g.Ptr[v]) }

// Neighbors returns the neighbor slice of v (do not modify).
func (g Graph) Neighbors(v int32) []int32 { return g.Adj[g.Ptr[v]:g.Ptr[v+1]] }

// RCM computes a Reverse Cuthill-McKee permutation. The returned perm maps
// old vertex numbers to new ones (perm[old] = new). Disconnected components
// are handled by restarting from an unvisited pseudo-peripheral vertex.
func RCM(g Graph) []int32 {
	n := g.NumVertices()
	order := make([]int32, 0, n) // order[i] = old id of the i-th visited vertex
	visited := make([]bool, n)
	queue := make([]int32, 0, n)

	for start := 0; start < n; start++ {
		if visited[start] {
			continue
		}
		root := pseudoPeripheral(g, int32(start), visited)
		visited[root] = true
		queue = append(queue[:0], root)
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			order = append(order, v)
			nbrs := append([]int32(nil), g.Neighbors(v)...)
			sort.Slice(nbrs, func(i, j int) bool { return g.Degree(nbrs[i]) < g.Degree(nbrs[j]) })
			for _, w := range nbrs {
				if !visited[w] {
					visited[w] = true
					queue = append(queue, w)
				}
			}
		}
	}

	// Reverse, then invert into old->new form.
	perm := make([]int32, n)
	for i, old := range order {
		perm[old] = int32(n - 1 - i)
	}
	return perm
}

// pseudoPeripheral finds an approximately peripheral vertex of the component
// containing start (George-Liu heuristic: repeated BFS to the farthest
// minimal-degree vertex).
func pseudoPeripheral(g Graph, start int32, visited []bool) int32 {
	v := start
	lastEcc := -1
	level := make(map[int32]int)
	for iter := 0; iter < 8; iter++ {
		ecc, far := bfsEccentricity(g, v, visited, level)
		if ecc <= lastEcc {
			return v
		}
		lastEcc = ecc
		v = far
	}
	return v
}

// bfsEccentricity runs BFS from root over unvisited vertices and returns the
// eccentricity and a farthest vertex of minimal degree.
func bfsEccentricity(g Graph, root int32, visited []bool, level map[int32]int) (int, int32) {
	for k := range level {
		delete(level, k)
	}
	level[root] = 0
	frontier := []int32{root}
	far := root
	ecc := 0
	for len(frontier) > 0 {
		var next []int32
		for _, v := range frontier {
			for _, w := range g.Neighbors(v) {
				if visited[w] {
					continue
				}
				if _, ok := level[w]; ok {
					continue
				}
				level[w] = level[v] + 1
				next = append(next, w)
				if level[w] > ecc || (level[w] == ecc && g.Degree(w) < g.Degree(far)) {
					ecc = level[w]
					far = w
				}
			}
		}
		frontier = next
	}
	return ecc, far
}

// Natural returns the identity permutation.
func Natural(n int) []int32 {
	perm := make([]int32, n)
	for i := range perm {
		perm[i] = int32(i)
	}
	return perm
}

// Bandwidth returns the graph bandwidth max |u-v| over edges under the
// given permutation (perm[old] = new); nil perm means natural order.
func Bandwidth(g Graph, perm []int32) int {
	bw := 0
	n := g.NumVertices()
	for v := 0; v < n; v++ {
		pv := int32(v)
		if perm != nil {
			pv = perm[v]
		}
		for _, w := range g.Neighbors(int32(v)) {
			pw := w
			if perm != nil {
				pw = perm[w]
			}
			d := int(pv - pw)
			if d < 0 {
				d = -d
			}
			if d > bw {
				bw = d
			}
		}
	}
	return bw
}

// Profile returns the envelope profile sum_v (v - min neighbor) under the
// permutation, a finer locality metric than bandwidth.
func Profile(g Graph, perm []int32) int64 {
	var p int64
	n := g.NumVertices()
	for v := 0; v < n; v++ {
		pv := int32(v)
		if perm != nil {
			pv = perm[v]
		}
		minN := pv
		for _, w := range g.Neighbors(int32(v)) {
			pw := w
			if perm != nil {
				pw = perm[w]
			}
			if pw < minN {
				minN = pw
			}
		}
		p += int64(pv - minN)
	}
	return p
}

// Invert returns the inverse permutation: inv[new] = old.
func Invert(perm []int32) []int32 {
	inv := make([]int32, len(perm))
	for old, nw := range perm {
		inv[nw] = int32(old)
	}
	return inv
}

// IsPermutation reports whether perm is a valid permutation of [0,n).
func IsPermutation(perm []int32) bool {
	seen := make([]bool, len(perm))
	for _, p := range perm {
		if p < 0 || int(p) >= len(perm) || seen[p] {
			return false
		}
		seen[p] = true
	}
	return true
}
