package reorder

import (
	"math/rand"
	"testing"
	"testing/quick"

	"fun3d/internal/geom"
	"fun3d/internal/mesh"
)

func TestParseKindRoundTrip(t *testing.T) {
	for _, k := range []Kind{KindNatural, KindRCM, KindMorton, KindHilbert} {
		got, err := ParseKind(k.String())
		if err != nil || got != k {
			t.Fatalf("ParseKind(%q) = %v, %v", k.String(), got, err)
		}
	}
	if _, err := ParseKind("zcurve"); err == nil {
		t.Fatal("unknown ordering accepted")
	}
	if _, err := ByKind(KindUnset, Graph{}, nil); err == nil {
		t.Fatal("ByKind(KindUnset) accepted")
	}
}

func TestByKindNaturalIsNil(t *testing.T) {
	perm, err := ByKind(KindNatural, Graph{}, make([]geom.Vec3, 5))
	if err != nil || perm != nil {
		t.Fatalf("ByKind(natural) = %v, %v, want nil, nil", perm, err)
	}
}

// Property: Morton and Hilbert always return valid permutations, whatever
// the coordinate cloud looks like.
func TestSFCPermutationProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(80)
		coords := make([]geom.Vec3, n)
		for i := range coords {
			coords[i] = geom.Vec3{X: rng.NormFloat64(), Y: rng.NormFloat64(), Z: rng.NormFloat64()}
		}
		return (n == 0 || IsPermutation(Morton(coords))) &&
			(n == 0 || IsPermutation(Hilbert(coords)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestSFCDegenerateCoords(t *testing.T) {
	if Morton(nil) != nil || Hilbert(nil) != nil {
		t.Fatal("empty cloud should give nil perm")
	}
	one := []geom.Vec3{{X: 1, Y: 2, Z: 3}}
	if p := Hilbert(one); len(p) != 1 || p[0] != 0 {
		t.Fatalf("single vertex perm = %v", p)
	}
	// All vertices coincident: every key ties, so the id tie-break must
	// yield the identity.
	same := make([]geom.Vec3, 7)
	for _, perm := range [][]int32{Morton(same), Hilbert(same)} {
		for i, p := range perm {
			if p != int32(i) {
				t.Fatalf("coincident cloud not identity: %v", perm)
			}
		}
	}
}

// TestMortonUnitCubeCorners pins the Z-order of the 8 cube corners:
// x is the highest interleaved bit, then y, then z.
func TestMortonUnitCubeCorners(t *testing.T) {
	var coords []geom.Vec3
	for x := 0; x < 2; x++ {
		for y := 0; y < 2; y++ {
			for z := 0; z < 2; z++ {
				coords = append(coords, geom.Vec3{X: float64(x), Y: float64(y), Z: float64(z)})
			}
		}
	}
	perm := Morton(coords)
	// coords are already enumerated in (x,y,z)-major order == Z-order.
	for i, p := range perm {
		if p != int32(i) {
			t.Fatalf("Morton corner order = %v, want identity", perm)
		}
	}
}

// TestHilbertLatticeAdjacency verifies the defining Hilbert property on a
// 4x4x4 lattice: consecutive curve positions are face-adjacent (L1 distance
// exactly 1). Morton violates this (diagonal jumps), Hilbert never does.
func TestHilbertLatticeAdjacency(t *testing.T) {
	const n = 4
	var coords []geom.Vec3
	for x := 0; x < n; x++ {
		for y := 0; y < n; y++ {
			for z := 0; z < n; z++ {
				coords = append(coords, geom.Vec3{X: float64(x), Y: float64(y), Z: float64(z)})
			}
		}
	}
	perm := Hilbert(coords)
	if !IsPermutation(perm) {
		t.Fatal("not a permutation")
	}
	inv := Invert(perm)
	for i := 1; i < len(inv); i++ {
		a, b := coords[inv[i-1]], coords[inv[i]]
		d := abs(a.X-b.X) + abs(a.Y-b.Y) + abs(a.Z-b.Z)
		if d != 1 {
			t.Fatalf("curve step %d: %v -> %v has L1 distance %v, want 1", i, a, b, d)
		}
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// TestSFCImprovesShuffledMesh is the table-driven comparison the ladder
// docs quote: on the (shuffled-numbering) wing mesh, every locality
// ordering must beat natural on both bandwidth and profile.
func TestSFCImprovesShuffledMesh(t *testing.T) {
	m, err := mesh.Generate(mesh.SpecTiny())
	if err != nil {
		t.Fatal(err)
	}
	g := Graph{Ptr: m.AdjPtr, Adj: m.Adj}
	bwNat, prNat := Bandwidth(g, nil), Profile(g, nil)
	cases := []struct {
		kind Kind
	}{{KindRCM}, {KindMorton}, {KindHilbert}}
	t.Logf("%-8s %9s %12s", "ordering", "bandwidth", "profile")
	t.Logf("%-8s %9d %12d", "natural", bwNat, prNat)
	for _, tc := range cases {
		perm, err := ByKind(tc.kind, g, m.Coords)
		if err != nil {
			t.Fatal(err)
		}
		if !IsPermutation(perm) {
			t.Fatalf("%v: not a permutation", tc.kind)
		}
		bw, pr := Bandwidth(g, perm), Profile(g, perm)
		t.Logf("%-8s %9d %12d", tc.kind, bw, pr)
		if bw >= bwNat {
			t.Errorf("%v bandwidth %d >= natural %d", tc.kind, bw, bwNat)
		}
		if pr >= prNat {
			t.Errorf("%v profile %d >= natural %d", tc.kind, pr, prNat)
		}
	}
}
