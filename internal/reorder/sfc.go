package reorder

import (
	"fmt"
	"sort"

	"fun3d/internal/geom"
)

// Kind names a vertex-ordering algorithm. The zero value KindUnset lets
// configuration structs distinguish "not specified" (fall back to a legacy
// default) from an explicit choice of natural order.
type Kind int

const (
	// KindUnset means no ordering was specified.
	KindUnset Kind = iota
	// KindNatural keeps the mesh's existing numbering.
	KindNatural
	// KindRCM is Reverse Cuthill-McKee on the adjacency graph.
	KindRCM
	// KindMorton orders vertices along a Morton (Z-order) curve through
	// their coordinates.
	KindMorton
	// KindHilbert orders vertices along a Hilbert curve through their
	// coordinates — Morton's locality without the long diagonal jumps.
	KindHilbert
)

func (k Kind) String() string {
	switch k {
	case KindUnset:
		return "unset"
	case KindNatural:
		return "natural"
	case KindRCM:
		return "rcm"
	case KindMorton:
		return "morton"
	case KindHilbert:
		return "hilbert"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// ParseKind parses an ordering name as used by CLI flags.
func ParseKind(s string) (Kind, error) {
	switch s {
	case "natural":
		return KindNatural, nil
	case "rcm":
		return KindRCM, nil
	case "morton":
		return KindMorton, nil
	case "hilbert":
		return KindHilbert, nil
	}
	return KindUnset, fmt.Errorf("reorder: unknown ordering %q (natural, rcm, morton, hilbert)", s)
}

// ByKind computes the permutation (perm[old] = new) for the given ordering.
// KindNatural returns nil (no reordering needed); the graph feeds RCM, the
// coordinates feed the space-filling curves.
func ByKind(k Kind, g Graph, coords []geom.Vec3) ([]int32, error) {
	switch k {
	case KindNatural:
		return nil, nil
	case KindRCM:
		return RCM(g), nil
	case KindMorton:
		return Morton(coords), nil
	case KindHilbert:
		return Hilbert(coords), nil
	}
	return nil, fmt.Errorf("reorder: no algorithm for ordering %v", k)
}

// sfcBits is the per-dimension quantization of the space-filling curves:
// 3 x 20 bits pack into a single uint64 key.
const sfcBits = 20

// Morton returns the permutation (perm[old] = new) that sorts vertices
// along a Morton (Z-order) curve through their coordinates. Ties (duplicate
// coordinates) break by original index, so the result is deterministic.
func Morton(coords []geom.Vec3) []int32 {
	return sfcPerm(coords, mortonKey)
}

// Hilbert returns the permutation (perm[old] = new) that sorts vertices
// along a Hilbert curve (Skilling's transpose algorithm). Unlike Morton,
// consecutive curve positions are always spatially adjacent, which removes
// the Z-order's long diagonal jumps across the domain.
func Hilbert(coords []geom.Vec3) []int32 {
	return sfcPerm(coords, hilbertKey)
}

// sfcPerm quantizes coordinates onto a 2^sfcBits lattice over the bounding
// box and sorts vertices by the given curve key.
func sfcPerm(coords []geom.Vec3, key func(x, y, z uint32) uint64) []int32 {
	n := len(coords)
	if n == 0 {
		return nil
	}
	lo, hi := coords[0], coords[0]
	for _, c := range coords[1:] {
		lo.X, hi.X = minF(lo.X, c.X), maxF(hi.X, c.X)
		lo.Y, hi.Y = minF(lo.Y, c.Y), maxF(hi.Y, c.Y)
		lo.Z, hi.Z = minF(lo.Z, c.Z), maxF(hi.Z, c.Z)
	}
	const cells = float64(1<<sfcBits) - 1
	sx, sy, sz := scale(lo.X, hi.X, cells), scale(lo.Y, hi.Y, cells), scale(lo.Z, hi.Z, cells)
	keys := make([]uint64, n)
	for i, c := range coords {
		keys[i] = key(quant(c.X, lo.X, sx), quant(c.Y, lo.Y, sy), quant(c.Z, lo.Z, sz))
	}
	order := make([]int32, n)
	for i := range order {
		order[i] = int32(i)
	}
	sort.Slice(order, func(i, j int) bool {
		a, b := order[i], order[j]
		if keys[a] != keys[b] {
			return keys[a] < keys[b]
		}
		return a < b
	})
	perm := make([]int32, n)
	for rank, old := range order {
		perm[old] = int32(rank)
	}
	return perm
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// scale returns the coordinate-to-lattice factor, 0 for a degenerate axis.
func scale(lo, hi, cells float64) float64 {
	if hi <= lo {
		return 0
	}
	return cells / (hi - lo)
}

func quant(v, lo, s float64) uint32 {
	return uint32((v - lo) * s)
}

// mortonKey interleaves the three 20-bit lattice coordinates, x highest.
func mortonKey(x, y, z uint32) uint64 {
	var key uint64
	for b := sfcBits - 1; b >= 0; b-- {
		key = key<<3 |
			uint64(x>>uint(b)&1)<<2 |
			uint64(y>>uint(b)&1)<<1 |
			uint64(z>>uint(b)&1)
	}
	return key
}

// hilbertKey maps lattice coordinates to their Hilbert-curve index via
// Skilling's axes-to-transpose algorithm ("Programming the Hilbert curve",
// AIP Conf. Proc. 707, 2004) followed by bit interleaving of the transpose.
func hilbertKey(x, y, z uint32) uint64 {
	X := [3]uint32{x, y, z}
	const M uint32 = 1 << (sfcBits - 1)
	// Inverse undo of the curve's rotations/reflections.
	for q := M; q > 1; q >>= 1 {
		p := q - 1
		for i := 0; i < 3; i++ {
			if X[i]&q != 0 {
				X[0] ^= p
			} else {
				t := (X[0] ^ X[i]) & p
				X[0] ^= t
				X[i] ^= t
			}
		}
	}
	// Gray encode.
	X[1] ^= X[0]
	X[2] ^= X[1]
	var t uint32
	for q := M; q > 1; q >>= 1 {
		if X[2]&q != 0 {
			t ^= q - 1
		}
	}
	for i := 0; i < 3; i++ {
		X[i] ^= t
	}
	// The Hilbert index is the transpose's bits interleaved, the highest
	// bit of X[0] first.
	var key uint64
	for b := sfcBits - 1; b >= 0; b-- {
		for i := 0; i < 3; i++ {
			key = key<<1 | uint64(X[i]>>uint(b)&1)
		}
	}
	return key
}
