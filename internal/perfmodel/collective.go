package perfmodel

import "fmt"

// Network is a LogGP-style interconnect model with an explicit rank-to-node
// mapping and a switch-hop topology. Defaults approximate the paper's
// Stampede fabric (Mellanox FDR InfiniBand, 2-level fat tree).
//
// The zero values of the topology fields reproduce the topology-blind model
// earlier revisions used: TopoFlat charges every inter-node message the same
// base Latency (HopLatency only matters on multi-hop topologies), and
// PlaceBlock is the contiguous rank-to-node mapping.
type Network struct {
	Latency      float64 // seconds per inter-node point-to-point message (one switch)
	Bandwidth    float64 // bytes/sec per node link (NIC)
	RanksPerNode int     // ranks sharing a node (intra-node messages are cheaper)
	IntraLatency float64 // seconds for intra-node messages

	// IntraBandwidth is the shared-memory bandwidth intra-node collective
	// stages move payload at (0 = fall back to Bandwidth).
	IntraBandwidth float64

	// Algo selects the Allreduce cost model (default AllreduceTree).
	Algo AllreduceAlgo

	// Topo selects the switch topology hops are counted on (default
	// TopoFlat: every node pair is one switch apart).
	Topo Topology
	// PodSize is the fat-tree pod width in nodes: pairs within a pod cross
	// one leaf switch, pairs across pods go leaf-spine-leaf (0 = 16).
	PodSize int
	// GroupSize is the dragonfly group width in nodes: pairs within a group
	// cross one local switch, pairs across groups go local-global-local
	// (0 = 16).
	GroupSize int
	// HopLatency is the extra latency per switch hop beyond the first (the
	// base Latency already includes one traversal). 0 keeps multi-hop
	// messages at the base latency — the topology-blind behavior.
	HopLatency float64

	// Place maps ranks to nodes (default PlaceBlock).
	Place Placement

	// NodeTable, when non-nil, is an explicit rank-to-node assignment
	// consulted ahead of the formulaic placements: rank r lives on node
	// NodeTable[r]. PlaceLocality runs on such a table — mpisim computes one
	// from the decomposition's halo traffic matrix — but any placement can
	// carry one (a pinned table reproduces an external scheduler's layout).
	// The table must cover every rank of the communicator and use node ids
	// in [0, Nodes(p)).
	NodeTable []int32
}

// AllreduceAlgo selects the collective algorithm whose cost the Allreduce
// model charges. The numerics are unaffected (the simulator always reduces
// deterministically in rank order); only the virtual time differs — which
// is the point of the Fig 10/11 Allreduce-wall experiment.
type AllreduceAlgo int

const (
	// AllreduceTree is recursive doubling: ceil(log2 p) exchange stages in
	// a single combined phase, the classic MPI implementation and the
	// default. Stages whose partners share a node are cheap; inter-node
	// stages contend for the node link (every rank on the node exchanges
	// off-node simultaneously), which is what the hierarchical algorithm
	// removes.
	AllreduceTree AllreduceAlgo = iota
	// AllreduceFlat is the naive linear algorithm: every rank sends to a
	// root which then broadcasts, costing O(p) latency phases. It models
	// the worst-case collective the paper's Allreduce wall extrapolates
	// from, and makes the latency term's growth with p visible at small
	// scales.
	AllreduceFlat
	// AllreduceHier is the SMP-aware hierarchical algorithm: ranks on a
	// node combine through one shared-memory reduction stage, one leader
	// per node runs uncontended inter-node recursive doubling, and a final
	// shared-memory stage publishes the result node-locally. Two intra
	// stages regardless of node width, and no NIC contention — the
	// mixed-mode recovery the PETSc strong-scaling literature reports when
	// flat-MPI collectives collapse.
	AllreduceHier
)

// String names the algorithm for reports and flag values.
func (a AllreduceAlgo) String() string {
	switch a {
	case AllreduceFlat:
		return "flat"
	case AllreduceHier:
		return "hierarchical"
	default:
		return "tree"
	}
}

// ParseAllreduce parses "tree", "flat", or "hierarchical" ("hier").
func ParseAllreduce(s string) (AllreduceAlgo, error) {
	switch s {
	case "tree":
		return AllreduceTree, nil
	case "flat":
		return AllreduceFlat, nil
	case "hierarchical", "hier":
		return AllreduceHier, nil
	}
	return 0, fmt.Errorf("perfmodel: unknown allreduce algorithm %q (want tree, flat, or hierarchical)", s)
}

// Topology selects the switch graph node-to-node hop counts are derived
// from.
type Topology int

const (
	// TopoFlat is a single-switch crossbar: every node pair is one hop.
	TopoFlat Topology = iota
	// TopoFatTree is a two-level fat tree: nodes within a pod share a leaf
	// switch (1 hop); cross-pod pairs go leaf-spine-leaf (3 hops).
	TopoFatTree
	// TopoDragonfly is a dragonfly: nodes within a group share a local
	// switch (1 hop); cross-group pairs go local-global-local (3 hops).
	TopoDragonfly
)

// String names the topology for reports and flag values.
func (t Topology) String() string {
	switch t {
	case TopoFatTree:
		return "fattree"
	case TopoDragonfly:
		return "dragonfly"
	default:
		return "flat"
	}
}

// ParseTopology parses "flat", "fattree" ("fat-tree"), or "dragonfly".
func ParseTopology(s string) (Topology, error) {
	switch s {
	case "flat":
		return TopoFlat, nil
	case "fattree", "fat-tree":
		return TopoFatTree, nil
	case "dragonfly":
		return TopoDragonfly, nil
	}
	return 0, fmt.Errorf("perfmodel: unknown topology %q (want flat, fattree, or dragonfly)", s)
}

// Placement maps ranks onto nodes.
type Placement int

const (
	// PlaceBlock fills nodes contiguously: rank r lives on node
	// r/RanksPerNode (the MPI default and the paper's configuration).
	PlaceBlock Placement = iota
	// PlaceRoundRobin deals ranks across nodes cyclically: rank r lives on
	// node r mod nodes(p). Neighboring ranks land on different nodes, so
	// the low recursive-doubling stages — cheap under block placement —
	// cross the fabric.
	PlaceRoundRobin
	// PlaceLocality is the graph-driven placement: ranks are mapped onto
	// nodes (and nodes onto pods) by the internal/partition locality mapper
	// so that heavily-communicating rank groups share a node, then a pod,
	// minimizing hops-weighted halo bytes. It requires an explicit
	// NodeTable; with a nil table it degrades to PlaceBlock (the table's
	// construction needs the traffic matrix, which only the decomposition
	// layer has).
	PlaceLocality
)

// String names the placement for reports and flag values.
func (p Placement) String() string {
	switch p {
	case PlaceRoundRobin:
		return "roundrobin"
	case PlaceLocality:
		return "locality"
	}
	return "block"
}

// ParsePlacement parses "block", "roundrobin" ("rr"), or "locality".
func ParsePlacement(s string) (Placement, error) {
	switch s {
	case "block":
		return PlaceBlock, nil
	case "roundrobin", "rr":
		return PlaceRoundRobin, nil
	case "locality":
		return PlaceLocality, nil
	}
	return 0, fmt.Errorf("perfmodel: unknown placement %q (want block, roundrobin, or locality)", s)
}

// Stampede returns the default fabric parameters: ~2.5 us MPI latency,
// ~6 GB/s effective per-node link bandwidth, ~25 GB/s shared-memory
// bandwidth, 16 ranks per node.
func Stampede() Network {
	return Network{
		Latency: 2.5e-6, Bandwidth: 6e9, RanksPerNode: 16,
		IntraLatency: 0.6e-6, IntraBandwidth: 25e9,
	}
}

// StampedeFatTree returns the Stampede parameters on an explicit two-level
// fat tree: 16-node pods, with cross-pod messages paying two extra switch
// traversals at ~1 us each — the configuration the 16k-rank scaling
// campaign runs on.
func StampedeFatTree() Network {
	n := Stampede()
	n.Topo = TopoFatTree
	n.PodSize = 16
	n.HopLatency = 1.0e-6
	return n
}

func (n Network) ranksPerNode() int {
	if n.RanksPerNode < 1 {
		return 1
	}
	return n.RanksPerNode
}

func (n Network) intraBandwidth() float64 {
	if n.IntraBandwidth > 0 {
		return n.IntraBandwidth
	}
	return n.Bandwidth
}

func (n Network) podSize() int {
	if n.PodSize < 1 {
		return 16
	}
	return n.PodSize
}

func (n Network) groupSize() int {
	if n.GroupSize < 1 {
		return 16
	}
	return n.GroupSize
}

// Nodes returns the node count a communicator of p ranks occupies.
func (n Network) Nodes(p int) int {
	r := n.ranksPerNode()
	return (p + r - 1) / r
}

// NodeOf maps a rank to its node under the configured placement; p is the
// communicator size (round-robin placement needs it to know the node
// count). An explicit NodeTable covering the rank wins over any formulaic
// placement.
func (n Network) NodeOf(rank, p int) int {
	if rank >= 0 && rank < len(n.NodeTable) {
		return int(n.NodeTable[rank])
	}
	if n.Place == PlaceRoundRobin {
		return rank % n.Nodes(p)
	}
	return rank / n.ranksPerNode()
}

// LocalityDomain returns the node-grouping width the topology's hop model
// distinguishes: the pod width on the fat tree, the group width on the
// dragonfly, and 0 on the flat crossbar (where every inter-node route is
// one hop and grouping buys nothing).
func (n Network) LocalityDomain() int {
	switch n.Topo {
	case TopoFatTree:
		return n.podSize()
	case TopoDragonfly:
		return n.groupSize()
	}
	return 0
}

// Hops returns the switch traversals between two nodes on the configured
// topology: 0 on the same node, 1 across one switch, 3 for
// leaf-spine-leaf / local-global-local routes.
func (n Network) Hops(a, b int) int {
	if a == b {
		return 0
	}
	switch n.Topo {
	case TopoFatTree:
		if a/n.podSize() == b/n.podSize() {
			return 1
		}
		return 3
	case TopoDragonfly:
		if a/n.groupSize() == b/n.groupSize() {
			return 1
		}
		return 3
	default:
		return 1
	}
}

// interLatency is the latency of one inter-node message over the given
// switch-hop count: the base Latency covers the first switch, HopLatency
// each one beyond it.
func (n Network) interLatency(hops int) float64 {
	if hops < 1 {
		hops = 1
	}
	return n.Latency + float64(hops-1)*n.HopLatency
}

// Route classifies one inter-rank message's path on the topology: switch
// traversals and whether the endpoints straddle a node or a pod/group
// boundary. It is an exact function of (placement, topology, rank pair) —
// the halo books sum routes into the per-message hop and cross-pod byte
// accounting the placement experiment reads.
type Route struct {
	Hops      int  // switch traversals (0 for node-local messages)
	CrossNode bool // endpoints on different nodes
	CrossPod  bool // endpoints in different pods/groups (never on TopoFlat)
}

// RouteOf returns the route a message from rank `from` to rank `to` takes
// in a p-rank communicator under the configured placement and topology.
func (n Network) RouteOf(from, to, p int) Route {
	a, b := n.NodeOf(from, p), n.NodeOf(to, p)
	if a == b {
		return Route{}
	}
	rt := Route{Hops: n.Hops(a, b), CrossNode: true}
	switch n.Topo {
	case TopoFatTree:
		rt.CrossPod = a/n.podSize() != b/n.podSize()
	case TopoDragonfly:
		rt.CrossPod = a/n.groupSize() != b/n.groupSize()
	}
	return rt
}

// RouteCost returns the modeled seconds for one message of the given size
// over an already-classified route.
func (n Network) RouteCost(rt Route, bytes int) float64 {
	lat := n.IntraLatency
	if rt.CrossNode {
		lat = n.interLatency(rt.Hops)
	}
	return lat + float64(bytes)/n.Bandwidth
}

// PtP returns the modeled time for one point-to-point message of the given
// size between two ranks of a p-rank communicator. Same-node pairs pay the
// shared-memory latency; inter-node pairs pay the base latency plus the
// topology's extra switch hops.
func (n Network) PtP(from, to, p, bytes int) float64 {
	return n.RouteCost(n.RouteOf(from, to, p), bytes)
}

// CollectiveCost is one collective's modeled cost with its structural
// breakdown: message stages executed (intra- plus inter-node) and switch
// hops traversed by the inter-node stages. Stages and Hops are exact
// functions of (algo, topology, placement, p), so derived per-collective
// rates hold exactly across machines.
type CollectiveCost struct {
	Seconds float64
	Stages  int
	Hops    int
}

// Allreduce returns the modeled time of an allreduce over p ranks of the
// given payload — the term the paper identifies as the Krylov scaling
// bottleneck ("90%+ of the communication overhead").
func (n Network) Allreduce(p, bytes int) float64 {
	return n.AllreduceBreakdown(p, bytes).Seconds
}

// AllreduceBreakdown returns the modeled cost of an allreduce over p ranks
// with its stage/hop breakdown under the configured algorithm, topology,
// and placement. One rank (or fewer) costs nothing.
func (n Network) AllreduceBreakdown(p, bytes int) CollectiveCost {
	if p <= 1 {
		return CollectiveCost{}
	}
	switch n.Algo {
	case AllreduceFlat:
		return n.allreduceFlat(p, bytes)
	case AllreduceHier:
		return n.allreduceHier(p, bytes)
	default:
		return n.allreduceTree(p, bytes)
	}
}

// allreduceTree models single-phase recursive doubling: ceil(log2 p)
// pairwise exchange stages, each moving the full payload both ways
// simultaneously, after which every rank holds the result — there is no
// separate broadcast phase (the double-count an earlier revision charged).
// Rank 0's partner chain is the cost representative: for power-of-two p
// every rank's schedule is structurally identical, and the simulator
// synchronizes all ranks on one collective cost anyway. Stages whose
// partner shares rank 0's node run at shared-memory cost; inter-node
// stages pay the topology's hop latency plus an r-fold NIC-contention
// bandwidth term — all r ranks of a node exchange off-node payload through
// one link in those stages.
func (n Network) allreduceTree(p, bytes int) CollectiveCost {
	var c CollectiveCost
	b := float64(bytes)
	cont := float64(min(n.ranksPerNode(), p))
	home := n.NodeOf(0, p)
	for s := 1; s < p; s <<= 1 {
		c.Stages++
		partner := n.NodeOf(s, p)
		if partner == home {
			c.Seconds += n.IntraLatency + b/n.intraBandwidth()
			continue
		}
		h := n.Hops(home, partner)
		c.Hops += h
		c.Seconds += n.interLatency(h) + cont*b/n.Bandwidth
	}
	return c
}

// allreduceFlat models a linear reduce-to-root followed by a linear
// broadcast: the root handles p-1 messages each way, serialized. Peers on
// the root's node pay intra-node latency; the rest pay the hop-dependent
// fabric latency. The O(p) latency term is what makes this algorithm
// collapse at scale, in contrast with the tree's O(log p).
func (n Network) allreduceFlat(p, bytes int) CollectiveCost {
	var c CollectiveCost
	home := n.NodeOf(0, p)
	t := 0.0
	for q := 1; q < p; q++ {
		node := n.NodeOf(q, p)
		if node == home {
			t += n.IntraLatency
			continue
		}
		h := n.Hops(home, node)
		c.Hops += h
		t += n.interLatency(h)
	}
	t += float64(p-1) * float64(bytes) / n.Bandwidth
	c.Seconds = 2 * t // gather + broadcast phases
	c.Stages = 2 * (p - 1)
	c.Hops *= 2
	return c
}

// allreduceHier models the SMP-aware hierarchical algorithm. Up: every
// rank deposits its contribution in node-shared memory and the node leader
// combines them — one intra stage whose bandwidth term reads r payloads
// through the shared-memory system, not log2(r) message exchanges. Across:
// the leaders (one per node, so the node link is uncontended) run
// recursive doubling over node IDs, paying per-stage hop latency. Down:
// the leader publishes and r ranks read — the second intra stage.
func (n Network) allreduceHier(p, bytes int) CollectiveCost {
	var c CollectiveCost
	b := float64(bytes)
	r := min(n.ranksPerNode(), p)
	intra := n.IntraLatency + float64(r)*b/n.intraBandwidth()
	c.Seconds += intra // up: shared reduction into the leader
	c.Stages++
	nodes := n.Nodes(p)
	for s := 1; s < nodes; s <<= 1 {
		h := n.Hops(0, s)
		c.Hops += h
		c.Seconds += n.interLatency(h) + b/n.Bandwidth
		c.Stages++
	}
	c.Seconds += intra // down: node-local publication
	c.Stages++
	return c
}
