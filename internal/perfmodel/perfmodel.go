// Package perfmodel provides the calibrated machine and network models that
// drive the multi-node simulation (Figures 9-11) and the bandwidth
// normalization of Fig 7b.
//
// The machine side is *measured*, not assumed: Measure runs the repo's real
// kernels on a sample mesh under a given configuration and extracts
// per-unit costs (seconds per edge flux, per ILU block, ...). The network
// side is a LogGP-style model parameterized like Stampede's FDR InfiniBand
// fat-tree. The multi-node simulator advances per-rank virtual clocks with
// these numbers while executing the real distributed numerics.
package perfmodel

import (
	"time"

	"fun3d/internal/flux"
	"fun3d/internal/mesh"
	"fun3d/internal/par"
	"fun3d/internal/physics"
	"fun3d/internal/sparse"
)

// Rates holds measured per-unit kernel costs in seconds.
type Rates struct {
	FluxPerEdge  float64
	GradPerEdge  float64
	JacPerEdge   float64
	ILUPerBlock  float64
	TRSVPerBlock float64
	VecPerElem   float64 // per element per simple vector op
	Threads      int
	Optimized    bool
}

// Measure calibrates the kernel rates by running the real kernels on the
// sample mesh m. threads <= 1 measures sequential execution; optimized
// selects the optimized code paths (AoS+SIMD vs baseline) and, when
// threaded, METIS owner-writes plus P2P recurrences.
func Measure(m *mesh.Mesh, threads int, optimized bool) (Rates, error) {
	r := Rates{Threads: max(1, threads), Optimized: optimized}
	var pool *par.Pool
	if threads > 1 {
		pool = par.NewPool(threads)
		defer pool.Close()
	}
	strategy := flux.Sequential
	if pool != nil {
		strategy = flux.ReplicateMETIS
	}
	part, err := flux.NewPartition(m, max(1, threads), strategy, 7)
	if err != nil {
		return r, err
	}
	cfg := flux.Config{Strategy: strategy, SIMD: optimized, Prefetch: optimized, SoANodeData: !optimized}
	qInf := physics.FreeStream(3.06)
	k := flux.NewKernels(m, 5, qInf, pool, part, cfg)

	nv := m.NumVertices()
	q := make([]float64, nv*4)
	for v := 0; v < nv; v++ {
		copy(q[v*4:v*4+4], qInf[:])
		q[v*4] += 1e-3 * float64(v%17)
	}
	if cfg.SoANodeData {
		q = flux.AoSToSoA(q, nv)
	}
	res := make([]float64, nv*4)
	grad := make([]float64, nv*12)

	r.FluxPerEdge = perUnit(func() { k.Residual(q, nil, nil, res) }, m.NumEdges())
	if cfg.SoANodeData {
		// gradient kernel requires AoS input
		q = flux.SoAToAoS(q, nv)
		k.Cfg.SoANodeData = false
	}
	r.GradPerEdge = perUnit(func() { k.Gradient(q, grad) }, m.NumEdges())

	a := sparse.NewBSRFromAdj(m.AdjPtr, m.Adj)
	r.JacPerEdge = perUnit(func() { k.Jacobian(q, a) }, m.NumEdges())
	// Make the matrix factorizable.
	dt := make([]float64, nv)
	for i := range dt {
		dt[i] = 0.01
	}
	flux.AddPseudoTimeTerm(a, m.Vol, dt)

	pat, err := sparse.SymbolicILU(a, 0)
	if err != nil {
		return r, err
	}
	f, err := sparse.NewFactorPattern(pat)
	if err != nil {
		return r, err
	}
	nnz := f.M.NNZBlocks()
	x := make([]float64, nv*4)
	if pool != nil && optimized {
		p2p := sparse.NewP2PSchedule(f.M, pool.Size())
		r.ILUPerBlock = perUnit(func() {
			if err := f.FactorizeILUP2P(pool, p2p, a); err != nil {
				panic(err)
			}
		}, nnz)
		r.TRSVPerBlock = perUnit(func() { f.SolveP2P(pool, p2p, res, x) }, nnz)
	} else {
		r.ILUPerBlock = perUnit(func() {
			if err := f.FactorizeILU(a); err != nil {
				panic(err)
			}
		}, nnz)
		r.TRSVPerBlock = perUnit(func() { f.Solve(res, x) }, nnz)
	}

	// Vector op rate: AXPY over the state vector.
	n := nv * 4
	y := make([]float64, n)
	r.VecPerElem = perUnit(func() {
		for i := 0; i < n; i++ {
			y[i] += 1.0000001 * x[i]
		}
	}, n)
	return r, nil
}

// MeasureFused calibrates the second-order limited residual evaluation in
// both of its forms on the sample mesh m: the three-sweep
// Gradient→Limiter→Residual path and the cache-blocked fused single-sweep
// pipeline, returning seconds per edge for each. The multi-node simulator's
// numerics are first-order, so cluster simulations of the fused rung use
// the measured ratio to rescale Rates.FluxPerEdge rather than running the
// fused kernel distributed.
func MeasureFused(m *mesh.Mesh, threads int) (unfused, fused float64, err error) {
	var pool *par.Pool
	if threads > 1 {
		pool = par.NewPool(threads)
		defer pool.Close()
	}
	strategy := flux.Sequential
	if pool != nil {
		strategy = flux.ReplicateMETIS
	}
	part, err := flux.NewPartition(m, max(1, threads), strategy, 7)
	if err != nil {
		return 0, 0, err
	}
	cfg := flux.Config{Strategy: strategy, SIMD: true, Prefetch: true}
	qInf := physics.FreeStream(3.06)
	k := flux.NewKernels(m, 5, qInf, pool, part, cfg)

	nv := m.NumVertices()
	q := make([]float64, nv*4)
	for v := 0; v < nv; v++ {
		copy(q[v*4:v*4+4], qInf[:])
		q[v*4] += 1e-3 * float64(v%17)
	}
	res := make([]float64, nv*4)
	grad := make([]float64, nv*12)
	phi := make([]float64, nv*4)
	const kVenk = 5.0
	ne := m.NumEdges()
	unfused = perUnit(func() {
		k.Gradient(q, grad)
		k.Limiter(q, grad, phi, kVenk)
		k.Residual(q, grad, phi, res)
	}, ne)
	fused = perUnit(func() { k.ResidualFused(q, res, kVenk, false) }, ne)
	return unfused, fused, nil
}

// MeasureStaged calibrates the second-order limited residual evaluation
// against the hierarchical staged pipeline on the sample mesh m, returning
// seconds per edge for the three-sweep path and the staged sweep. Like
// MeasureFused, the ratio rescales Rates.FluxPerEdge for cluster
// simulations of the `+staged` rung — the simulator's numerics stay
// first-order.
func MeasureStaged(m *mesh.Mesh, threads int) (unfused, staged float64, err error) {
	var pool *par.Pool
	if threads > 1 {
		pool = par.NewPool(threads)
		defer pool.Close()
	}
	strategy := flux.Sequential
	if pool != nil {
		strategy = flux.ReplicateMETIS
	}
	part, err := flux.NewPartition(m, max(1, threads), strategy, 7)
	if err != nil {
		return 0, 0, err
	}
	cfg := flux.Config{Strategy: strategy, SIMD: true, Staged: true}
	qInf := physics.FreeStream(3.06)
	k := flux.NewKernels(m, 5, qInf, pool, part, cfg)

	nv := m.NumVertices()
	q := make([]float64, nv*4)
	for v := 0; v < nv; v++ {
		copy(q[v*4:v*4+4], qInf[:])
		q[v*4] += 1e-3 * float64(v%17)
	}
	res := make([]float64, nv*4)
	grad := make([]float64, nv*12)
	phi := make([]float64, nv*4)
	const kVenk = 5.0
	ne := m.NumEdges()
	unfused = perUnit(func() {
		k.Gradient(q, grad)
		k.Limiter(q, grad, phi, kVenk)
		k.Residual(q, grad, phi, res)
	}, ne)
	staged = perUnit(func() { k.ResidualStaged(q, res, kVenk, false) }, ne)
	return unfused, staged, nil
}

// DeriveOptimized applies the paper's measured single-node cache+SIMD
// kernel gains to a set of (baseline) rates. Go cannot express AVX
// intrinsics or hardware prefetch, so the Fig 9-11 simulations use the
// paper's own per-kernel improvement factors — Fig 6a: AoS layout +40%,
// SIMD +40%, prefetch +15% on the flux kernel (1.4*1.4*1.15 ≈ 2.25x);
// bandwidth-bound recurrences gain little ("performance benefits with
// vectorization are not very significant") — on top of rates measured on
// this machine. Documented as a substitution in DESIGN.md/EXPERIMENTS.md.
func DeriveOptimized(base Rates) Rates {
	out := base
	out.Optimized = true
	out.FluxPerEdge /= 2.25
	out.GradPerEdge /= 1.8
	out.JacPerEdge /= 1.8
	out.ILUPerBlock /= 1.25
	out.TRSVPerBlock /= 1.10
	return out
}

// ThreadScale derives per-rank hybrid rates: it applies the threading
// speedup measured on this machine (seq vs threaded baseline kernels) to
// the given per-rank rates.
func ThreadScale(rates, seq, threaded Rates) Rates {
	out := rates
	out.Threads = threaded.Threads
	scale := func(r, s, t float64) float64 {
		if s <= 0 || t <= 0 {
			return r
		}
		return r * t / s
	}
	out.FluxPerEdge = scale(out.FluxPerEdge, seq.FluxPerEdge, threaded.FluxPerEdge)
	out.GradPerEdge = scale(out.GradPerEdge, seq.GradPerEdge, threaded.GradPerEdge)
	out.JacPerEdge = scale(out.JacPerEdge, seq.JacPerEdge, threaded.JacPerEdge)
	out.ILUPerBlock = scale(out.ILUPerBlock, seq.ILUPerBlock, threaded.ILUPerBlock)
	out.TRSVPerBlock = scale(out.TRSVPerBlock, seq.TRSVPerBlock, threaded.TRSVPerBlock)
	return out
}

// perUnit times fn (repeating briefly for stability) and divides by units.
func perUnit(fn func(), units int) float64 {
	fn() // warm up
	best := 1e300
	for rep := 0; rep < 3; rep++ {
		t0 := time.Now()
		fn()
		if d := time.Since(t0).Seconds(); d < best {
			best = d
		}
	}
	return best / float64(units)
}

// StreamTriad measures achievable memory bandwidth (bytes/sec) with the
// STREAM triad a[i] = b[i] + s*c[i] over nBytes of total traffic, threaded
// over the pool when non-nil. This is the Fig 7b normalization.
func StreamTriad(pool *par.Pool, elems int) float64 {
	if elems < 1<<16 {
		elems = 1 << 16
	}
	a := make([]float64, elems)
	b := make([]float64, elems)
	c := make([]float64, elems)
	for i := range b {
		b[i] = float64(i)
		c[i] = 2
	}
	run := func() {
		if pool == nil {
			for i := range a {
				a[i] = b[i] + 3*c[i]
			}
			return
		}
		pool.ParallelFor(elems, func(_, lo, hi int) {
			for i := lo; i < hi; i++ {
				a[i] = b[i] + 3*c[i]
			}
		})
	}
	run() // warm up
	best := 1e300
	for rep := 0; rep < 5; rep++ {
		t0 := time.Now()
		run()
		if d := time.Since(t0).Seconds(); d < best {
			best = d
		}
	}
	return float64(elems) * 3 * 8 / best
}

// The Network interconnect model — topology, rank placement, and the
// collective cost models (tree, flat, SMP-aware hierarchical) — lives in
// collective.go.
