package perfmodel

import (
	"testing"

	"fun3d/internal/mesh"
	"fun3d/internal/par"
)

func TestMeasureProducesPositiveRates(t *testing.T) {
	m, err := mesh.Generate(mesh.SpecTiny())
	if err != nil {
		t.Fatal(err)
	}
	r, err := Measure(m, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	for name, v := range map[string]float64{
		"flux": r.FluxPerEdge, "grad": r.GradPerEdge, "jac": r.JacPerEdge,
		"ilu": r.ILUPerBlock, "trsv": r.TRSVPerBlock, "vec": r.VecPerElem,
	} {
		if v <= 0 || v > 1e-3 {
			t.Fatalf("%s rate out of range: %v", name, v)
		}
	}
	if r.Threads != 1 || r.Optimized {
		t.Fatalf("rate metadata wrong: %+v", r)
	}
}

func TestMeasureThreadedOptimized(t *testing.T) {
	m, err := mesh.Generate(mesh.SpecTiny())
	if err != nil {
		t.Fatal(err)
	}
	r, err := Measure(m, 2, true)
	if err != nil {
		t.Fatal(err)
	}
	if r.FluxPerEdge <= 0 || r.ILUPerBlock <= 0 {
		t.Fatalf("threaded rates: %+v", r)
	}
}

func TestMeasureStagedProducesPositiveRates(t *testing.T) {
	m, err := mesh.Generate(mesh.SpecTiny())
	if err != nil {
		t.Fatal(err)
	}
	for _, threads := range []int{1, 2} {
		un, st, err := MeasureStaged(m, threads)
		if err != nil {
			t.Fatal(err)
		}
		if un <= 0 || un > 1e-3 || st <= 0 || st > 1e-3 {
			t.Fatalf("threads=%d: staged rates out of range: unfused %v staged %v", threads, un, st)
		}
	}
}

func TestStreamTriad(t *testing.T) {
	bw := StreamTriad(nil, 1<<18)
	// Any machine this runs on moves more than 100 MB/s and less than 10 TB/s.
	if bw < 1e8 || bw > 1e13 {
		t.Fatalf("implausible bandwidth %v", bw)
	}
	p := par.NewPool(2)
	defer p.Close()
	bw2 := StreamTriad(p, 1<<18)
	if bw2 < 1e8 || bw2 > 1e13 {
		t.Fatalf("implausible threaded bandwidth %v", bw2)
	}
}

func TestNetworkPtP(t *testing.T) {
	n := Stampede()
	intra := n.PtP(0, 1, 32, 1000)  // same node
	inter := n.PtP(0, 16, 32, 1000) // different node
	if intra >= inter {
		t.Fatalf("intra-node %v should be cheaper than inter-node %v", intra, inter)
	}
	if big, small := n.PtP(0, 16, 32, 1<<20), n.PtP(0, 16, 32, 1); big <= small {
		t.Fatal("bandwidth term missing")
	}
}

func TestNetworkAllreduce(t *testing.T) {
	n := Stampede()
	if n.Allreduce(1, 8) != 0 {
		t.Fatal("single-rank allreduce should be free")
	}
	prev := 0.0
	for _, p := range []int{2, 16, 64, 256, 4096} {
		c := n.Allreduce(p, 8)
		if c <= prev {
			t.Fatalf("allreduce cost not increasing at p=%d: %v <= %v", p, c, prev)
		}
		prev = c
	}
	// Logarithmic growth: 4096 ranks should cost far less than 2048x the
	// 2-rank cost.
	if n.Allreduce(4096, 8) > 100*n.Allreduce(2, 8) {
		t.Fatal("allreduce growth not logarithmic")
	}
}

func TestDeriveOptimized(t *testing.T) {
	base := Rates{FluxPerEdge: 100e-9, GradPerEdge: 50e-9, JacPerEdge: 200e-9,
		ILUPerBlock: 30e-9, TRSVPerBlock: 10e-9, VecPerElem: 1e-9}
	opt := DeriveOptimized(base)
	if !opt.Optimized {
		t.Fatal("flag not set")
	}
	if opt.FluxPerEdge >= base.FluxPerEdge || opt.ILUPerBlock >= base.ILUPerBlock {
		t.Fatalf("optimized not faster: %+v", opt)
	}
	// Flux gains the most (the paper's 2.25x), recurrences the least.
	if base.FluxPerEdge/opt.FluxPerEdge <= base.TRSVPerBlock/opt.TRSVPerBlock {
		t.Fatal("gain ordering wrong")
	}
	// Vec rate unchanged (bandwidth-bound, no SIMD win claimed).
	if opt.VecPerElem != base.VecPerElem {
		t.Fatal("vec rate changed")
	}
}

func TestThreadScale(t *testing.T) {
	base := Rates{FluxPerEdge: 100e-9, GradPerEdge: 50e-9, JacPerEdge: 200e-9,
		ILUPerBlock: 30e-9, TRSVPerBlock: 10e-9, VecPerElem: 1e-9}
	seq := base
	threaded := base
	threaded.Threads = 4
	threaded.FluxPerEdge = base.FluxPerEdge / 3 // measured 3x threading speedup
	out := ThreadScale(base, seq, threaded)
	if out.Threads != 4 {
		t.Fatal("threads not propagated")
	}
	if diff := out.FluxPerEdge - base.FluxPerEdge/3; diff > 1e-18 || diff < -1e-18 {
		t.Fatalf("flux scale wrong: %v", out.FluxPerEdge)
	}
	// Degenerate inputs leave rates unchanged.
	zero := Rates{}
	out2 := ThreadScale(base, zero, zero)
	if out2.FluxPerEdge != base.FluxPerEdge {
		t.Fatal("degenerate scaling changed rate")
	}
}

func TestThreadModelCompute(t *testing.T) {
	tm := PaperNode()
	// Perfect scaling with no overheads.
	if got := tm.Compute(10, 10, 0, 1); got != 1 {
		t.Fatalf("ideal compute projection %v", got)
	}
	// Replication and imbalance inflate the time.
	if tm.Compute(10, 10, 0.5, 1.1) <= tm.Compute(10, 10, 0, 1) {
		t.Fatal("overheads ignored")
	}
	// Degenerate thread counts clamp.
	if tm.Compute(10, 0, 0, 0) != 10 {
		t.Fatal("clamping failed")
	}
}

func TestThreadModelBandwidth(t *testing.T) {
	tm := PaperNode()
	// Linear until saturation, shallow tail beyond.
	if tm.Bandwidth(8, 2) != 4 {
		t.Fatalf("2-thread bandwidth %v", tm.Bandwidth(8, 2))
	}
	s8 := 8 / tm.Bandwidth(8, 8)
	s4 := 8 / tm.Bandwidth(8, 4)
	if s8 <= s4 || s8 > 5 {
		t.Fatalf("saturation shape wrong: s4=%v s8=%v", s4, s8)
	}
	if BwSpeedup(tm, 4) != 4 {
		t.Fatal("BwSpeedup at saturation point")
	}
}

func TestThreadModelRecurrence(t *testing.T) {
	tm := PaperNode()
	// Parallelism-limited: 10 threads but DAG parallelism 2.
	tPar := tm.Recurrence(10, 0, 0, 10, 2, 0)
	if tPar != 5 {
		t.Fatalf("critical path bound %v", tPar)
	}
	// Bandwidth-limited: huge byte volume.
	tBW := tm.Recurrence(1, 100e9, 1e9, 10, 1000, 0)
	if tBW <= 1 {
		t.Fatalf("bandwidth bound ignored: %v", tBW)
	}
	// Barriers add cost.
	if tm.Recurrence(10, 0, 0, 10, 100, 1000) <= tm.Recurrence(10, 0, 0, 10, 100, 0) {
		t.Fatal("barrier cost ignored")
	}
}

func TestAtomicPenalty(t *testing.T) {
	if AtomicPenalty(1.5, 1) != 1.5 {
		t.Fatal("1-thread penalty")
	}
	if AtomicPenalty(1.5, 10) <= 1.5 {
		t.Fatal("contention growth missing")
	}
	if AtomicPenalty(0.5, 1) < 1 {
		t.Fatal("sub-unity penalty not clamped")
	}
}
