package perfmodel

import "math"

// ThreadModel projects multi-core kernel scaling on a paper-like node from
// single-core measurements plus machine-independent decomposition metrics
// (replication fraction, load imbalance, DAG parallelism, wavefront
// counts). It exists because thread scaling is only observable on a
// multi-core host; on a single-core machine the measured sweep collapses,
// and the experiment harness prints these projections alongside the
// measured values (clearly labeled). The formulas are deliberately simple
// and documented here; every input except the three constants below is
// measured by this repository's own code.
type ThreadModel struct {
	// Cores is the projected physical core count (paper: 10 cores,
	// 20 hyperthreads on the Xeon E5-2690v2).
	Cores int
	// BandwidthSatCores is the core count at which the memory bandwidth
	// saturates (paper Fig 7b: TRSV "starts to saturate beyond 4 cores").
	BandwidthSatCores int
	// BarrierSeconds is the cost of one full-team barrier (level-schedule
	// synchronization), ~1 microsecond at 10 cores.
	BarrierSeconds float64
}

// PaperNode returns the model of the paper's single-node platform.
func PaperNode() ThreadModel {
	return ThreadModel{Cores: 10, BandwidthSatCores: 4, BarrierSeconds: 1e-6}
}

// bwSpeedup is the bandwidth-bound speedup at t threads: linear to the
// saturation point, then a shallow 10% tail (paper Fig 7b's shape).
func (m ThreadModel) bwSpeedup(t int) float64 {
	sat := float64(m.BandwidthSatCores)
	ft := float64(t)
	if ft <= sat {
		return ft
	}
	return sat + 0.1*(ft-sat)
}

// Compute projects a compute-bound edge kernel: the sequential time
// inflated by redundant work (owner-writes replication) and load imbalance,
// divided across threads.
//
//	T(t) = T_seq * (1 + redundantFrac) * imbalance / t
func (m ThreadModel) Compute(seqSeconds float64, threads int, redundantFrac, imbalance float64) float64 {
	if threads < 1 {
		threads = 1
	}
	if imbalance < 1 {
		imbalance = 1
	}
	return seqSeconds * (1 + redundantFrac) * imbalance / float64(threads)
}

// Bandwidth projects a bandwidth-bound kernel (TRSV-like): speedup follows
// the bandwidth curve, never exceeding the thread count.
func (m ThreadModel) Bandwidth(seqSeconds float64, threads int) float64 {
	s := math.Min(m.bwSpeedup(threads), float64(threads))
	if s < 1 {
		s = 1
	}
	return seqSeconds / s
}

// Recurrence projects a scheduled sparse recurrence (ILU or TRSV sweep):
//
//	T(t) = max( T_seq / min(t, parallelism),          # critical-path bound
//	            bytes / (stream1 * bwSpeedup(t)) )    # bandwidth bound
//	       + barriers * BarrierSeconds                # synchronization
//
// T_seq is the measured single-core time; parallelism the DAG parallelism
// (Table II); bytes the kernel's memory traffic; stream1 the measured
// single-core STREAM bandwidth. Level scheduling pays one barrier per
// wavefront per sweep; P2P pays a near-zero flag cost (pass a small
// barrier-equivalent count).
func (m ThreadModel) Recurrence(seqSeconds float64, bytes, stream1 float64, threads int, parallelism float64, barriers int) float64 {
	if parallelism < 1 {
		parallelism = 1
	}
	eff := math.Min(float64(threads), parallelism)
	if eff < 1 {
		eff = 1
	}
	critical := seqSeconds / eff
	bandwidth := 0.0
	if stream1 > 0 {
		bandwidth = bytes / (stream1 * m.bwSpeedup(threads))
	}
	return math.Max(critical, bandwidth) + float64(barriers)*m.BarrierSeconds
}

// BwSpeedup exposes the model's bandwidth scaling curve (for reporting).
func BwSpeedup(m ThreadModel, threads int) float64 { return m.bwSpeedup(threads) }

// AtomicPenalty is the modeled slowdown multiplier of CAS-based vertex
// updates versus plain stores under contention; calibrate with a
// single-thread measurement and scale mildly with threads (contention).
func AtomicPenalty(measured1T float64, threads int) float64 {
	if measured1T < 1 {
		measured1T = 1
	}
	return measured1T * (1 + 0.03*float64(threads-1))
}
