package perfmodel

import (
	"fmt"
	"testing"
)

// collectiveNets enumerates the model matrix the property tests sweep:
// every algorithm on every topology under both placements.
func collectiveNets() []Network {
	var nets []Network
	for _, algo := range []AllreduceAlgo{AllreduceTree, AllreduceFlat, AllreduceHier} {
		for _, topo := range []Topology{TopoFlat, TopoFatTree, TopoDragonfly} {
			for _, place := range []Placement{PlaceBlock, PlaceRoundRobin} {
				n := StampedeFatTree()
				n.Algo = algo
				n.Topo = topo
				n.Place = place
				nets = append(nets, n)
			}
		}
	}
	return nets
}

func netName(n Network) string {
	return fmt.Sprintf("%v/%v/%v", n.Algo, n.Topo, n.Place)
}

func TestAllreduceTrivialCommunicatorIsFree(t *testing.T) {
	for _, n := range collectiveNets() {
		for _, p := range []int{-1, 0, 1} {
			c := n.AllreduceBreakdown(p, 1024)
			if c.Seconds != 0 || c.Stages != 0 || c.Hops != 0 {
				t.Fatalf("%s: p=%d should be free, got %+v", netName(n), p, c)
			}
		}
	}
}

// Cost must not decrease as the communicator doubles: the property is weak
// (hierarchical cost is flat while extra ranks fill existing nodes) but
// must hold for every algorithm, topology, and placement.
func TestAllreduceMonotoneInRanks(t *testing.T) {
	for _, n := range collectiveNets() {
		prev := 0.0
		for p := 2; p <= 1<<14; p *= 2 {
			c := n.Allreduce(p, 8)
			if c < prev {
				t.Fatalf("%s: cost decreased at p=%d: %v < %v", netName(n), p, c, prev)
			}
			if c <= 0 {
				t.Fatalf("%s: non-positive cost at p=%d: %v", netName(n), p, c)
			}
			prev = c
		}
	}
}

func TestAllreduceMonotoneInBytes(t *testing.T) {
	for _, n := range collectiveNets() {
		for _, p := range []int{2, 17, 64, 4096} {
			prev := n.Allreduce(p, 8)
			for _, bytes := range []int{64, 1 << 12, 1 << 20} {
				c := n.Allreduce(p, bytes)
				if c < prev {
					t.Fatalf("%s: p=%d cost decreased with payload %d: %v < %v",
						netName(n), p, bytes, c, prev)
				}
				prev = c
			}
		}
	}
}

// Beyond one node the hierarchical algorithm must never lose to the flat
// linear one: two shared-memory stages plus log(nodes) uncontended
// exchanges against 2(p-1) serialized latencies.
func TestHierarchicalBeatsFlatBeyondOneNode(t *testing.T) {
	for _, topo := range []Topology{TopoFlat, TopoFatTree, TopoDragonfly} {
		hier := StampedeFatTree()
		hier.Topo = topo
		hier.Algo = AllreduceHier
		flat := hier
		flat.Algo = AllreduceFlat
		for _, p := range []int{17, 32, 256, 4096, 16384} {
			for _, bytes := range []int{8, 1 << 12} {
				h, f := hier.Allreduce(p, bytes), flat.Allreduce(p, bytes)
				if h > f {
					t.Fatalf("topo %v: hierarchical %v > flat %v at p=%d bytes=%d",
						topo, h, f, p, bytes)
				}
			}
		}
	}
}

// Stage counts are exact structural functions of (algo, p, nodes).
func TestAllreduceStageCounts(t *testing.T) {
	n := StampedeFatTree()
	n.RanksPerNode = 16
	log2ceil := func(v int) int {
		s := 0
		for x := 1; x < v; x <<= 1 {
			s++
		}
		return s
	}
	for _, p := range []int{2, 3, 16, 17, 64, 1000, 4096, 16384} {
		n.Algo = AllreduceTree
		if got, want := n.AllreduceBreakdown(p, 8).Stages, log2ceil(p); got != want {
			t.Fatalf("tree p=%d: %d stages, want %d", p, got, want)
		}
		n.Algo = AllreduceFlat
		if got, want := n.AllreduceBreakdown(p, 8).Stages, 2*(p-1); got != want {
			t.Fatalf("flat p=%d: %d stages, want %d", p, got, want)
		}
		n.Algo = AllreduceHier
		if got, want := n.AllreduceBreakdown(p, 8).Stages, 2+log2ceil(n.Nodes(p)); got != want {
			t.Fatalf("hier p=%d: %d stages, want %d", p, got, want)
		}
	}
}

func TestTopologyHops(t *testing.T) {
	n := StampedeFatTree() // 16-node pods
	if h := n.Hops(3, 3); h != 0 {
		t.Fatalf("same node: %d hops", h)
	}
	if h := n.Hops(0, 15); h != 1 {
		t.Fatalf("fat-tree same pod: %d hops, want 1", h)
	}
	if h := n.Hops(0, 16); h != 3 {
		t.Fatalf("fat-tree cross pod: %d hops, want 3 (leaf-spine-leaf)", h)
	}
	n.Topo = TopoDragonfly
	n.GroupSize = 8
	if h := n.Hops(1, 7); h != 1 {
		t.Fatalf("dragonfly same group: %d hops, want 1", h)
	}
	if h := n.Hops(1, 9); h != 3 {
		t.Fatalf("dragonfly cross group: %d hops, want 3 (local-global-local)", h)
	}
	n.Topo = TopoFlat
	if h := n.Hops(0, 500); h != 1 {
		t.Fatalf("flat crossbar: %d hops, want 1", h)
	}
}

// Extra switch hops must surface as extra point-to-point latency, and a
// zero HopLatency must reproduce the topology-blind behavior.
func TestHopLatencyAffectsPtP(t *testing.T) {
	n := StampedeFatTree()
	const p = 1 << 10
	samePod := n.PtP(0, 16*n.RanksPerNode-1, p, 100) // last rank of pod 0
	crossPod := n.PtP(0, 16*n.RanksPerNode, p, 100)  // first rank of pod 1
	if crossPod <= samePod {
		t.Fatalf("cross-pod PtP %v not dearer than same-pod %v", crossPod, samePod)
	}
	if diff, want := crossPod-samePod, 2*n.HopLatency; diff < want-1e-12 || diff > want+1e-12 {
		t.Fatalf("cross-pod premium %v, want two extra hops = %v", diff, want)
	}
	n.HopLatency = 0
	if a, b := n.PtP(0, 16*n.RanksPerNode, p, 100), n.PtP(0, n.RanksPerNode, p, 100); a != b {
		t.Fatalf("zero HopLatency should be topology-blind: %v != %v", a, b)
	}
}

// Round-robin placement spreads neighboring ranks across nodes, so the
// cheap low-order recursive-doubling stages cross the fabric: tree cost
// under round-robin must be at least the block-placement cost.
func TestRoundRobinPlacement(t *testing.T) {
	n := Stampede()
	const p = 64
	if got := n.NodeOf(17, p); got != 1 {
		t.Fatalf("block: rank 17 on node %d, want 1", got)
	}
	n.Place = PlaceRoundRobin
	if nodes := n.Nodes(p); nodes != 4 {
		t.Fatalf("64 ranks / 16 per node = %d nodes, want 4", nodes)
	}
	if got := n.NodeOf(17, p); got != 1 {
		t.Fatalf("round-robin: rank 17 on node %d, want 17 mod 4 = 1", got)
	}
	if got := n.NodeOf(4, p); got != 0 {
		t.Fatalf("round-robin: rank 4 on node %d, want 0", got)
	}
	block := Stampede()
	for _, bytes := range []int{8, 1 << 12} {
		rr, bl := n.Allreduce(p, bytes), block.Allreduce(p, bytes)
		// At p=64 both placements see the same stage mix in a different
		// order, so allow summation-order noise in the comparison.
		if rr < bl*(1-1e-12) {
			t.Fatalf("round-robin tree %v cheaper than block %v at %d bytes", rr, bl, bytes)
		}
	}
}

// Round-robin placement when ranks do not divide evenly into nodes: the
// node count is ceil(p/rpn) (last node underfull under block), and the
// modulo mapping must target exactly that node set — an off-by-one here
// silently shifts every collective's stage classification.
func TestNodeOfRoundRobinUnevenRanks(t *testing.T) {
	n := Stampede() // 16 ranks per node
	const p = 18    // 2 nodes; block leaves node 1 with only ranks {16,17}
	if nodes := n.Nodes(p); nodes != 2 {
		t.Fatalf("ceil(18/16) = %d nodes, want 2", nodes)
	}
	// Block: contiguous fill, last node underfull.
	for rank, want := range map[int]int{0: 0, 15: 0, 16: 1, 17: 1} {
		if got := n.NodeOf(rank, p); got != want {
			t.Fatalf("block: rank %d on node %d, want %d", rank, got, want)
		}
	}
	// Round-robin: modulo over the same 2-node set.
	n.Place = PlaceRoundRobin
	for rank, want := range map[int]int{0: 0, 1: 1, 15: 1, 16: 0, 17: 1} {
		if got := n.NodeOf(rank, p); got != want {
			t.Fatalf("round-robin: rank %d on node %d, want %d", rank, got, want)
		}
	}
	// A second uneven shape: 17 ranks at 4 per node = 5 nodes.
	n.RanksPerNode = 4
	const q = 17
	if nodes := n.Nodes(q); nodes != 5 {
		t.Fatalf("ceil(17/4) = %d nodes, want 5", nodes)
	}
	for rank, want := range map[int]int{4: 4, 9: 4, 16: 1} {
		if got := n.NodeOf(rank, q); got != want {
			t.Fatalf("round-robin 17/4: rank %d on node %d, want %d", rank, got, want)
		}
	}
	n.Place = PlaceBlock
	if got := n.NodeOf(16, q); got != 4 {
		t.Fatalf("block 17/4: rank 16 on node %d, want 4 (underfull last node)", got)
	}
}

// Hops(a,a) must be zero on every topology: a self-route that charges a
// switch traversal would tax node-local messages with fabric latency.
func TestHopsSelfIsZero(t *testing.T) {
	for _, topo := range []Topology{TopoFlat, TopoFatTree, TopoDragonfly} {
		n := StampedeFatTree()
		n.Topo = topo
		for _, a := range []int{0, 5, 17, 1000} {
			if h := n.Hops(a, a); h != 0 {
				t.Fatalf("topo %v: Hops(%d,%d) = %d, want 0", topo, a, a, h)
			}
		}
	}
}

// An explicit NodeTable overrides the formulaic placements, and RouteOf
// classifies node and pod crossings from the mapped nodes.
func TestNodeTableAndRoutes(t *testing.T) {
	n := StampedeFatTree()
	n.RanksPerNode = 2
	n.PodSize = 2 // nodes {0,1} pod 0, {2,3} pod 1
	const p = 8
	// Table inverts the block order: ranks 0,1 land on the LAST node.
	n.NodeTable = []int32{3, 3, 2, 2, 1, 1, 0, 0}
	n.Place = PlaceLocality
	if got := n.NodeOf(0, p); got != 3 {
		t.Fatalf("table: rank 0 on node %d, want 3", got)
	}
	if rt := n.RouteOf(0, 1, p); rt.Hops != 0 || rt.CrossNode || rt.CrossPod {
		t.Fatalf("same table node: %+v", rt)
	}
	if rt := n.RouteOf(0, 2, p); rt.Hops != 1 || !rt.CrossNode || rt.CrossPod {
		t.Fatalf("same pod (nodes 3,2): %+v", rt)
	}
	if rt := n.RouteOf(0, 6, p); rt.Hops != 3 || !rt.CrossNode || !rt.CrossPod {
		t.Fatalf("cross pod (nodes 3,0): %+v", rt)
	}
	// RouteCost must agree with PtP on every pair.
	for from := 0; from < p; from++ {
		for to := 0; to < p; to++ {
			if a, b := n.PtP(from, to, p, 64), n.RouteCost(n.RouteOf(from, to, p), 64); a != b {
				t.Fatalf("PtP(%d,%d) %v != RouteCost %v", from, to, a, b)
			}
		}
	}
	// On the flat crossbar no route is ever cross-pod.
	n.Topo = TopoFlat
	if rt := n.RouteOf(0, 6, p); rt.CrossPod || rt.Hops != 1 {
		t.Fatalf("flat topology route: %+v", rt)
	}
	// A locality placement with NO table degrades to block.
	n.NodeTable = nil
	if got, want := n.NodeOf(5, p), 5/2; got != want {
		t.Fatalf("locality sans table: rank 5 on node %d, want block's %d", got, want)
	}
}

func TestParsePlacementLocality(t *testing.T) {
	pl, err := ParsePlacement("locality")
	if err != nil || pl != PlaceLocality {
		t.Fatalf("ParsePlacement(locality) = %v, %v", pl, err)
	}
	if s := PlaceLocality.String(); s != "locality" {
		t.Fatalf("PlaceLocality.String() = %q", s)
	}
}

// The tree model is a single combined phase: its cost must stay below the
// old double-counted formulation's 2x and, at tiny payloads, be dominated
// by per-stage latencies alone.
func TestTreeSinglePhaseCost(t *testing.T) {
	n := Stampede() // flat topology: every inter-node stage is one hop
	const p = 4096  // 4 intra + 8 inter stages at 16 ranks/node
	c := n.AllreduceBreakdown(p, 8)
	latOnly := 4*n.IntraLatency + 8*n.Latency
	if c.Seconds < latOnly {
		t.Fatalf("tree cost %v below its own latency floor %v", c.Seconds, latOnly)
	}
	// The bandwidth term at 8 bytes is tiny; anything near 2x the latency
	// floor means a phase is being double-charged.
	if c.Seconds > 1.5*latOnly {
		t.Fatalf("tree cost %v looks double-counted (latency floor %v)", c.Seconds, latOnly)
	}
}
