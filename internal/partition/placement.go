package partition

import "fmt"

// This file maps an inter-rank traffic graph onto a hierarchical fabric:
// ranks pack into nodes, nodes pack into pods, and the objective is the
// hop-weighted byte volume the switch fabric must carry. The graph is the
// halo traffic matrix mpisim exports at decomposition time (vertex = rank,
// directed edge weight = bytes sent per halo exchange), so the mapping is
// computed once per decomposition and handed to the network model as an
// explicit rank→node table.

// refinePasses bounds the pairwise-swap polish loops. Refinement converges
// (each applied swap strictly lowers the objective) so this is a cost
// ceiling, not a quality knob.
const refinePasses = 4

// hopWeight mirrors the network model's switch-hop count: 0 for node-local
// traffic, 1 within a pod/group (leaf switch), 3 across pods
// (leaf-spine-leaf). podSize <= 0 means a single-tier fabric: every
// inter-node message is one hop. Keep in sync with perfmodel.Network.Hops;
// the mpisim tests cross-check the two.
func hopWeight(a, b int32, podSize int) int64 {
	if a == b {
		return 0
	}
	if podSize <= 0 || int(a)/podSize == int(b)/podSize {
		return 1
	}
	return 3
}

// BlockTable returns the contiguous rank→node table the network model's
// block placement implies: rank r lives on node r/perNode, with the last
// node underfull when ranks do not divide evenly. It is the guardrail
// candidate inside MapLocality and the reference layout the placement
// experiment compares against.
func BlockTable(p, perNode int) []int32 {
	if perNode < 1 {
		perNode = 1
	}
	t := make([]int32, p)
	for r := range t {
		t[r] = int32(r / perNode)
	}
	return t
}

// PlacementHopBytes prices a rank→node table against the hop model: the
// sum over every directed edge of its byte weight times the switch hops
// between the endpoints' nodes. This is the mapper's objective and the
// quantity the locality property test pins (locality never above block).
func PlacementHopBytes(g *Graph, table []int32, podSize int) int64 {
	var total int64
	n := g.NumVertices()
	for v := int32(0); v < int32(n); v++ {
		a := table[v]
		for i := g.Ptr[v]; i < g.Ptr[v+1]; i++ {
			total += int64(g.edgeWeight(i)) * hopWeight(a, table[g.Adj[i]], podSize)
		}
	}
	return total
}

// MapLocality computes a rank→node table for the traffic graph g: nodes
// node slots of perNode ranks each (the last underfull when ranks do not
// divide evenly), grouped so heavily-communicating ranks share a node and
// heavily-communicating nodes share a pod of podSize nodes (podSize <= 0:
// single-tier fabric, skip the pod phase). nodes must equal
// ceil(ranks/perNode) — the table must be surjective onto the node set the
// network model derives from the rank count.
//
// The mapper is greedy max-connectivity grouping (the same frontier the
// multilevel partitioner's region growing uses) followed by pairwise-swap
// refinement at each tier, and is guarded: if the result prices above the
// block table under PlacementHopBytes, the block table is returned
// instead, so locality placement never loses to block by construction.
// Deterministic for a given graph.
func MapLocality(g *Graph, nodes, perNode, podSize int) ([]int32, error) {
	p := g.NumVertices()
	if p == 0 {
		return nil, fmt.Errorf("placement: empty traffic graph")
	}
	if perNode < 1 {
		return nil, fmt.Errorf("placement: %d ranks per node < 1", perNode)
	}
	if want := (p + perNode - 1) / perNode; nodes != want {
		return nil, fmt.Errorf("placement: %d nodes for %d ranks at %d per node, want %d",
			nodes, p, perNode, want)
	}
	block := BlockTable(p, perNode)
	if nodes <= 1 {
		return block, nil
	}

	// The objective is symmetric in the endpoints (hops are), so fold the
	// directed traffic into an undirected working graph once; all grouping
	// and refinement run on it with exact deltas.
	sym := symmetrize(g)

	// Tier 1: ranks into nodes, minimizing inter-node bytes.
	nodeOf := mapGroups(sym, groupSizes(p, nodes, perNode))
	refineSwaps(sym, nodeOf, nodes, 0)

	// Tier 2: nodes into pods, minimizing cross-pod bytes on the
	// contracted node graph, then renumber nodes so each pod occupies a
	// contiguous block of node ids (the network model derives pod as
	// node/podSize). A final rank-level pass polishes under the true
	// 0/1/3 hop costs.
	if podSize > 0 && nodes > podSize {
		nodeG := contract(sym, nodeOf, nodes)
		npods := (nodes + podSize - 1) / podSize
		podOf := mapGroups(nodeG, groupSizes(nodes, npods, podSize))
		refineSwaps(nodeG, podOf, npods, 0)
		renumberByPod(nodeOf, podOf, nodes)
		refineSwaps(sym, nodeOf, nodes, podSize)
	}

	if PlacementHopBytes(g, nodeOf, podSize) >= PlacementHopBytes(g, block, podSize) {
		return block, nil
	}
	return nodeOf, nil
}

// groupSizes splits n items into groups slots of size each, the last
// underfull — matching the block layout's node occupancy.
func groupSizes(n, groups, size int) []int {
	sizes := make([]int, groups)
	for i := range sizes {
		sizes[i] = size
		if rest := n - i*size; rest < size {
			sizes[i] = rest
		}
	}
	return sizes
}

// symmetrize folds a directed graph into an undirected one: each directed
// edge contributes its weight to both endpoints' rows, and parallel edges
// merge. Self-loops are dropped (node-local traffic never crosses the
// fabric).
func symmetrize(g *Graph) *Graph {
	n := g.NumVertices()
	deg := make([]int32, n)
	for v := int32(0); v < int32(n); v++ {
		for i := g.Ptr[v]; i < g.Ptr[v+1]; i++ {
			if u := g.Adj[i]; u != v {
				deg[v]++
				deg[u]++
			}
		}
	}
	ptr := make([]int32, n+1)
	for v := 0; v < n; v++ {
		ptr[v+1] = ptr[v] + deg[v]
	}
	adj := make([]int32, ptr[n])
	ew := make([]int32, ptr[n])
	fill := make([]int32, n)
	copy(fill, ptr[:n])
	for v := int32(0); v < int32(n); v++ {
		for i := g.Ptr[v]; i < g.Ptr[v+1]; i++ {
			u := g.Adj[i]
			if u == v {
				continue
			}
			w := g.edgeWeight(i)
			adj[fill[v]], ew[fill[v]] = u, w
			fill[v]++
			adj[fill[u]], ew[fill[u]] = v, w
			fill[u]++
		}
	}
	// Merge parallel edges per row (insertion sort: rows are short).
	outPtr := make([]int32, n+1)
	out := 0
	for v := 0; v < n; v++ {
		lo, hi := int(ptr[v]), int(ptr[v+1])
		for i := lo + 1; i < hi; i++ {
			a, w := adj[i], ew[i]
			j := i
			for j > lo && adj[j-1] > a {
				adj[j], ew[j] = adj[j-1], ew[j-1]
				j--
			}
			adj[j], ew[j] = a, w
		}
		for i := lo; i < hi; {
			j := i
			var wsum int32
			for j < hi && adj[j] == adj[i] {
				wsum += ew[j]
				j++
			}
			adj[out], ew[out] = adj[i], wsum
			out++
			i = j
		}
		outPtr[v+1] = int32(out)
	}
	return &Graph{Ptr: outPtr, Adj: adj[:out], EW: ew[:out]}
}

// contract collapses g down to one vertex per group, merging edge weights;
// intra-group edges vanish.
func contract(g *Graph, groupOf []int32, ngroups int) *Graph {
	w := make(map[int64]int64)
	n := g.NumVertices()
	for v := int32(0); v < int32(n); v++ {
		a := groupOf[v]
		for i := g.Ptr[v]; i < g.Ptr[v+1]; i++ {
			b := groupOf[g.Adj[i]]
			if a == b {
				continue
			}
			w[int64(a)<<32|int64(b)] += int64(g.edgeWeight(i))
		}
	}
	ptr := make([]int32, ngroups+1)
	for key := range w {
		ptr[key>>32+1]++
	}
	for i := 0; i < ngroups; i++ {
		ptr[i+1] += ptr[i]
	}
	adj := make([]int32, len(w))
	ew := make([]int32, len(w))
	fill := make([]int32, ngroups)
	copy(fill, ptr[:ngroups])
	for key, wt := range w {
		a, b := int32(key>>32), int32(key&0xffffffff)
		if wt > 1<<30 {
			wt = 1 << 30 // clamp: contracted weights only steer grouping
		}
		adj[fill[a]], ew[fill[a]] = b, int32(wt)
		fill[a]++
	}
	// Map iteration order is random; sort rows for determinism.
	cg := &Graph{Ptr: ptr, Adj: adj, EW: ew}
	for v := 0; v < ngroups; v++ {
		lo, hi := int(ptr[v]), int(ptr[v+1])
		for i := lo + 1; i < hi; i++ {
			a, wt := adj[i], ew[i]
			j := i
			for j > lo && adj[j-1] > a {
				adj[j], ew[j] = adj[j-1], ew[j-1]
				j--
			}
			adj[j], ew[j] = a, wt
		}
	}
	return cg
}

// mapGroups packs vertices into len(sizes) groups of exactly sizes[i]
// vertices each by greedy max-connectivity growth: each group seeds with
// the heaviest-degree unassigned vertex and absorbs, while below target,
// the unassigned vertex most connected to it — the same frontier heap the
// partitioner's region growing uses. Deterministic: ties break toward the
// lower vertex index.
func mapGroups(g *Graph, sizes []int) []int32 {
	n := g.NumVertices()
	group := make([]int32, n)
	for i := range group {
		group[i] = -1
	}
	deg := make([]int64, n)
	for v := int32(0); v < int32(n); v++ {
		for i := g.Ptr[v]; i < g.Ptr[v+1]; i++ {
			deg[v] += int64(g.edgeWeight(i))
		}
	}
	conn := make([]int64, n)
	var heap connHeap
	for gi, size := range sizes {
		heap.items = heap.items[:0]
		for i := range conn {
			conn[i] = 0
		}
		filled := 0
		absorb := func(v int32) {
			group[v] = int32(gi)
			filled++
			for i := g.Ptr[v]; i < g.Ptr[v+1]; i++ {
				u := g.Adj[i]
				if group[u] >= 0 {
					continue
				}
				conn[u] += int64(g.edgeWeight(i))
				heap.push(connItem{u, conn[u]})
			}
		}
		for filled < size {
			pick := int32(-1)
			for len(heap.items) > 0 {
				it := heap.pop()
				if group[it.v] < 0 && conn[it.v] == it.c {
					pick = it.v
					break
				}
			}
			if pick < 0 {
				// Frontier dry (disconnected remainder): reseed with the
				// heaviest unassigned vertex.
				var best int64 = -1
				for v := int32(0); v < int32(n); v++ {
					if group[v] < 0 && deg[v] > best {
						best, pick = deg[v], v
					}
				}
				if pick < 0 {
					break
				}
			}
			absorb(pick)
		}
	}
	return group
}

// refineSwaps polishes a grouping by pairwise swaps: for each vertex, find
// the foreign group it talks to most, price swapping it against every
// member of that group under the hop model, and apply the best strictly
// improving swap. Swaps preserve every group's size exactly, so capacity
// invariants survive refinement untouched.
func refineSwaps(g *Graph, group []int32, ngroups, podSize int) {
	n := g.NumVertices()
	members := make([][]int32, ngroups)
	pos := make([]int32, n)
	for v := int32(0); v < int32(n); v++ {
		gi := group[v]
		pos[v] = int32(len(members[gi]))
		members[gi] = append(members[gi], v)
	}
	conn := make([]int64, ngroups)
	var touched []int32
	for pass := 0; pass < refinePasses; pass++ {
		improved := false
		for v := int32(0); v < int32(n); v++ {
			home := group[v]
			touched = touched[:0]
			for i := g.Ptr[v]; i < g.Ptr[v+1]; i++ {
				p := group[g.Adj[i]]
				if conn[p] == 0 {
					touched = append(touched, p)
				}
				conn[p] += int64(g.edgeWeight(i))
			}
			target, targetConn := int32(-1), int64(0)
			for _, p := range touched {
				if p != home && (conn[p] > targetConn || (conn[p] == targetConn && target >= 0 && p < target)) {
					target, targetConn = p, conn[p]
				}
			}
			for _, p := range touched {
				conn[p] = 0
			}
			if target < 0 {
				continue
			}
			bestU, bestDelta := int32(-1), int64(0)
			for _, u := range members[target] {
				if d := swapDelta(g, group, v, u, podSize); d < bestDelta {
					bestDelta, bestU = d, u
				}
			}
			if bestU >= 0 {
				members[home][pos[v]], members[target][pos[bestU]] = bestU, v
				pos[v], pos[bestU] = pos[bestU], pos[v]
				group[v], group[bestU] = target, home
				improved = true
			}
		}
		if !improved {
			break
		}
	}
}

// swapDelta prices exchanging the groups of v and u: the change in
// hop-weighted bytes over both vertices' incident edges. The v–u edge
// itself keeps its endpoints' group pair and contributes no delta.
func swapDelta(g *Graph, group []int32, v, u int32, podSize int) int64 {
	a, b := group[v], group[u]
	var d int64
	for i := g.Ptr[v]; i < g.Ptr[v+1]; i++ {
		x := g.Adj[i]
		if x == u || x == v {
			continue
		}
		gx := group[x]
		d += int64(g.edgeWeight(i)) * (hopWeight(b, gx, podSize) - hopWeight(a, gx, podSize))
	}
	for i := g.Ptr[u]; i < g.Ptr[u+1]; i++ {
		x := g.Adj[i]
		if x == v || x == u {
			continue
		}
		gx := group[x]
		d += int64(g.edgeWeight(i)) * (hopWeight(a, gx, podSize) - hopWeight(b, gx, podSize))
	}
	return d
}

// renumberByPod relabels node ids so pod k owns the contiguous id block
// [k*podSize, ...): the network model derives pod membership as
// node/podSize, so the pod grouping must be encoded in the id order.
// Within a pod, nodes keep their relative order (determinism).
func renumberByPod(nodeOf []int32, podOf []int32, nodes int) {
	order := make([]int32, nodes)
	for i := range order {
		order[i] = int32(i)
	}
	// Stable sort by pod (insertion sort: node counts are modest).
	for i := 1; i < nodes; i++ {
		v := order[i]
		j := i
		for j > 0 && podOf[order[j-1]] > podOf[v] {
			order[j] = order[j-1]
			j--
		}
		order[j] = v
	}
	newID := make([]int32, nodes)
	for rank, old := range order {
		newID[old] = int32(rank)
	}
	for v := range nodeOf {
		nodeOf[v] = newID[nodeOf[v]]
	}
}
