package partition

import "fmt"

// Quality summarizes a partition for comparison between strategies, using
// the metrics the paper reports: load imbalance and the redundant-compute
// ("replication") overhead of owner-only-writes edge processing.
type Quality struct {
	Parts       int
	EdgeCut     int64   // edges (by weight) crossing parts
	Imbalance   float64 // max part weight / average part weight
	Replication float64 // fractional extra edge processing due to cut edges
}

// Evaluate computes partition quality for graph g under part. The
// replication factor models the paper's owner-only-writes scheme: an edge
// whose endpoints live in different parts is processed by both owning
// threads, so each cut edge contributes one redundant edge computation.
func Evaluate(g *Graph, part []int32, nparts int) Quality {
	q := Quality{Parts: nparts}
	loads := make([]int64, nparts)
	n := g.NumVertices()
	var cut int64
	var halfEdges int64
	for v := int32(0); v < int32(n); v++ {
		loads[part[v]] += int64(g.weight(v))
		for i := g.Ptr[v]; i < g.Ptr[v+1]; i++ {
			halfEdges++
			if part[g.Adj[i]] != part[v] {
				cut += int64(g.edgeWeight(i))
			}
		}
	}
	q.EdgeCut = cut / 2 // each cut edge seen from both sides
	var maxLoad, totLoad int64
	for _, l := range loads {
		totLoad += l
		if l > maxLoad {
			maxLoad = l
		}
	}
	if totLoad > 0 {
		q.Imbalance = float64(maxLoad) * float64(nparts) / float64(totLoad)
	}
	totalEdges := halfEdges / 2
	if totalEdges > 0 {
		q.Replication = float64(q.EdgeCut) / float64(totalEdges)
	}
	return q
}

func (q Quality) String() string {
	return fmt.Sprintf("parts=%d cut=%d imbalance=%.3f replication=%.1f%%",
		q.Parts, q.EdgeCut, q.Imbalance, 100*q.Replication)
}

// PlacedQuality summarizes how a placed communication graph loads a
// hierarchical fabric: the directed byte totals crossing node and pod
// boundaries and the hop-weighted volume, so placement quality is
// inspectable without running a solve.
type PlacedQuality struct {
	Nodes      int
	Pods       int
	TotalBytes int64 // all directed edge bytes
	NodeCut    int64 // bytes whose endpoints sit on different nodes
	PodCut     int64 // bytes whose endpoints sit in different pods
	HopBytes   int64 // bytes x switch hops (0 intra-node, 1 intra-pod, 3 cross-pod)
}

// EvaluatePlaced prices the directed graph g under the rank→node table
// nodeOf and pod width podSize (<= 0: single-tier fabric, no pod cut).
// Unlike Evaluate, directed edges are counted once each — traffic graphs
// carry per-direction byte weights.
func EvaluatePlaced(g *Graph, nodeOf []int32, podSize int) PlacedQuality {
	var q PlacedQuality
	for _, nd := range nodeOf {
		if int(nd) >= q.Nodes {
			q.Nodes = int(nd) + 1
		}
	}
	q.Pods = 1
	if podSize > 0 {
		q.Pods = (q.Nodes + podSize - 1) / podSize
	}
	n := g.NumVertices()
	for v := int32(0); v < int32(n); v++ {
		a := nodeOf[v]
		for i := g.Ptr[v]; i < g.Ptr[v+1]; i++ {
			w := int64(g.edgeWeight(i))
			b := nodeOf[g.Adj[i]]
			q.TotalBytes += w
			if a == b {
				continue
			}
			q.NodeCut += w
			if podSize > 0 && int(a)/podSize != int(b)/podSize {
				q.PodCut += w
				q.HopBytes += 3 * w
			} else {
				q.HopBytes += w
			}
		}
	}
	return q
}

func (q PlacedQuality) String() string {
	return fmt.Sprintf("nodes=%d pods=%d bytes=%d node-cut=%d pod-cut=%d hop-bytes=%d",
		q.Nodes, q.Pods, q.TotalBytes, q.NodeCut, q.PodCut, q.HopBytes)
}

// FromMesh builds a partitioning graph from CSR adjacency with unit
// weights (vertex work in the edge loops is proportional to degree, so we
// weight vertices by degree+1 to balance edge work rather than vertex
// count).
func FromMesh(adjPtr, adj []int32, weightByDegree bool) *Graph {
	g := &Graph{Ptr: adjPtr, Adj: adj}
	if weightByDegree {
		n := len(adjPtr) - 1
		w := make([]int32, n)
		for v := 0; v < n; v++ {
			w[v] = adjPtr[v+1] - adjPtr[v] + 1
		}
		g.W = w
	}
	return g
}
