package partition

import "testing"

// buildGraph assembles a directed CSR graph from an edge list.
func buildGraph(n int, edges [][3]int32) *Graph {
	ptr := make([]int32, n+1)
	for _, e := range edges {
		ptr[e[0]+1]++
	}
	for i := 0; i < n; i++ {
		ptr[i+1] += ptr[i]
	}
	adj := make([]int32, len(edges))
	ew := make([]int32, len(edges))
	fill := make([]int32, n)
	copy(fill, ptr[:n])
	for _, e := range edges {
		adj[fill[e[0]]], ew[fill[e[0]]] = e[1], e[2]
		fill[e[0]]++
	}
	return &Graph{Ptr: ptr, Adj: adj, EW: ew}
}

// sym adds both directions of each undirected (u,v,w) edge.
func symEdges(edges [][3]int32) [][3]int32 {
	out := make([][3]int32, 0, 2*len(edges))
	for _, e := range edges {
		out = append(out, e, [3]int32{e[1], e[0], e[2]})
	}
	return out
}

func TestBlockTableUneven(t *testing.T) {
	tbl := BlockTable(18, 16)
	if len(tbl) != 18 {
		t.Fatalf("table length %d", len(tbl))
	}
	for r, want := range map[int]int32{0: 0, 15: 0, 16: 1, 17: 1} {
		if tbl[r] != want {
			t.Fatalf("rank %d on node %d, want %d", r, tbl[r], want)
		}
	}
}

// Heavy pairs placed at opposite ends of the index space: block splits
// every pair across nodes, locality must reunite them.
func TestMapLocalityReunitesHeavyPairs(t *testing.T) {
	const p = 8
	edges := symEdges([][3]int32{
		{0, 7, 1000}, {1, 6, 1000}, {2, 5, 1000}, {3, 4, 1000},
		// Weak ring so the graph is connected.
		{0, 1, 1}, {1, 2, 1}, {2, 3, 1}, {3, 4, 1}, {4, 5, 1}, {5, 6, 1}, {6, 7, 1},
	})
	g := buildGraph(p, edges)
	const perNode, nodes, podSize = 2, 4, 2
	tbl, err := MapLocality(g, nodes, perNode, podSize)
	if err != nil {
		t.Fatal(err)
	}
	validateTable(t, tbl, nodes, perNode)
	for _, pair := range [][2]int{{0, 7}, {1, 6}, {2, 5}, {3, 4}} {
		if tbl[pair[0]] != tbl[pair[1]] {
			t.Errorf("heavy pair %v split: nodes %d vs %d", pair, tbl[pair[0]], tbl[pair[1]])
		}
	}
	loc := PlacementHopBytes(g, tbl, podSize)
	blk := PlacementHopBytes(g, BlockTable(p, perNode), podSize)
	if loc >= blk {
		t.Fatalf("locality hop bytes %d not below block %d", loc, blk)
	}
}

// Uneven rank counts: the last node is underfull, every node still
// occupied, capacity respected.
func TestMapLocalityUnevenSurjective(t *testing.T) {
	const p = 11
	var edges [][3]int32
	for v := int32(0); v < p; v++ {
		edges = append(edges, [3]int32{v, (v + 1) % p, 10}, [3]int32{(v + 1) % p, v, 10})
	}
	g := buildGraph(p, edges)
	const perNode = 4
	nodes := (p + perNode - 1) / perNode // 3, last holds 3 ranks
	tbl, err := MapLocality(g, nodes, perNode, 2)
	if err != nil {
		t.Fatal(err)
	}
	validateTable(t, tbl, nodes, perNode)
}

func validateTable(t *testing.T, tbl []int32, nodes, perNode int) {
	t.Helper()
	fill := make([]int, nodes)
	for r, nd := range tbl {
		if nd < 0 || int(nd) >= nodes {
			t.Fatalf("rank %d on node %d outside [0,%d)", r, nd, nodes)
		}
		fill[nd]++
	}
	for nd, c := range fill {
		if c == 0 {
			t.Fatalf("node %d empty: table not surjective", nd)
		}
		if c > perNode {
			t.Fatalf("node %d holds %d ranks, capacity %d", nd, c, perNode)
		}
	}
}

func TestMapLocalityErrors(t *testing.T) {
	g := buildGraph(4, symEdges([][3]int32{{0, 1, 1}, {1, 2, 1}, {2, 3, 1}}))
	if _, err := MapLocality(g, 2, 0, 2); err == nil {
		t.Fatal("perNode 0 accepted")
	}
	if _, err := MapLocality(g, 3, 2, 2); err == nil {
		t.Fatal("node count mismatching ceil(p/perNode) accepted")
	}
	if _, err := MapLocality(&Graph{Ptr: []int32{0}}, 0, 2, 2); err == nil {
		t.Fatal("empty graph accepted")
	}
}

// Pinned hop arithmetic on a 4-rank line over 2 nodes of 2, pod width 1
// (every node its own pod → every inter-node edge is cross-pod).
func TestEvaluatePlacedPinned(t *testing.T) {
	g := buildGraph(4, [][3]int32{
		{0, 1, 10}, {1, 0, 10}, // intra-node on block
		{1, 2, 7}, // node 0 → node 1, cross-pod
		{3, 2, 5}, // intra-node
	})
	q := EvaluatePlaced(g, []int32{0, 0, 1, 1}, 1)
	if q.Nodes != 2 || q.Pods != 2 {
		t.Fatalf("nodes=%d pods=%d, want 2/2", q.Nodes, q.Pods)
	}
	if q.TotalBytes != 32 || q.NodeCut != 7 || q.PodCut != 7 || q.HopBytes != 21 {
		t.Fatalf("got %v", q)
	}
	// Same table, pod width 2: one pod, the cut edge costs 1 hop.
	q = EvaluatePlaced(g, []int32{0, 0, 1, 1}, 2)
	if q.Pods != 1 || q.PodCut != 0 || q.HopBytes != 7 || q.NodeCut != 7 {
		t.Fatalf("pod width 2: got %v", q)
	}
	// Single-tier fabric (podSize 0) matches pod width covering all nodes.
	q0 := EvaluatePlaced(g, []int32{0, 0, 1, 1}, 0)
	if q0.Pods != 1 || q0.PodCut != 0 || q0.HopBytes != 7 {
		t.Fatalf("flat: got %v", q0)
	}
	// PlacementHopBytes agrees with EvaluatePlaced on every pod width.
	for _, ps := range []int{0, 1, 2} {
		if hb := PlacementHopBytes(g, []int32{0, 0, 1, 1}, ps); hb != EvaluatePlaced(g, []int32{0, 0, 1, 1}, ps).HopBytes {
			t.Fatalf("pod width %d: PlacementHopBytes %d != EvaluatePlaced", ps, hb)
		}
	}
}

// The guardrail: on a graph whose block layout is already optimal (heavy
// chain pairs aligned with contiguous ids), locality must never price
// above block.
func TestMapLocalityGuardrail(t *testing.T) {
	const p = 8
	edges := symEdges([][3]int32{
		{0, 1, 100}, {2, 3, 100}, {4, 5, 100}, {6, 7, 100},
		{1, 2, 1}, {3, 4, 1}, {5, 6, 1},
	})
	g := buildGraph(p, edges)
	tbl, err := MapLocality(g, 4, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	validateTable(t, tbl, 4, 2)
	if loc, blk := PlacementHopBytes(g, tbl, 2), PlacementHopBytes(g, BlockTable(p, 2), 2); loc > blk {
		t.Fatalf("locality %d above block %d", loc, blk)
	}
}

// Pod contiguity: after the pod phase, heavily-communicating nodes must
// share a pod, i.e. land in the same node-id block of podSize.
func TestMapLocalityPodGrouping(t *testing.T) {
	// 8 ranks, 1 per node, 4 nodes per... no: 8 nodes of 1 rank, pod
	// width 2. Heavy rank pairs (0,4),(1,5),(2,6),(3,7) must share pods.
	const p = 8
	edges := symEdges([][3]int32{
		{0, 4, 500}, {1, 5, 500}, {2, 6, 500}, {3, 7, 500},
		{0, 1, 1}, {1, 2, 1}, {2, 3, 1}, {4, 5, 1}, {5, 6, 1}, {6, 7, 1},
	})
	g := buildGraph(p, edges)
	tbl, err := MapLocality(g, 8, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	validateTable(t, tbl, 8, 1)
	for _, pair := range [][2]int{{0, 4}, {1, 5}, {2, 6}, {3, 7}} {
		a, b := tbl[pair[0]]/2, tbl[pair[1]]/2
		if a != b {
			t.Errorf("heavy pair %v in pods %d vs %d", pair, a, b)
		}
	}
}
