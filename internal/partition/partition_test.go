package partition

import (
	"testing"
	"testing/quick"

	"fun3d/internal/mesh"
)

func meshGraph(t testing.TB) *Graph {
	m, err := mesh.Generate(mesh.SpecTiny())
	if err != nil {
		t.Fatal(err)
	}
	return FromMesh(m.AdjPtr, m.Adj, true)
}

func validPartition(part []int32, nparts int) bool {
	counts := make([]int, nparts)
	for _, p := range part {
		if p < 0 || int(p) >= nparts {
			return false
		}
		counts[p]++
	}
	for _, c := range counts {
		if c == 0 {
			return false
		}
	}
	return true
}

func TestNaturalBalanced(t *testing.T) {
	g := meshGraph(t)
	for _, k := range []int{2, 4, 7, 16} {
		part := Natural(g, k)
		if !validPartition(part, k) {
			t.Fatalf("k=%d: invalid partition", k)
		}
		q := Evaluate(g, part, k)
		if q.Imbalance > 1.30 {
			t.Fatalf("k=%d: natural imbalance %v", k, q.Imbalance)
		}
	}
}

func TestMultilevelBeatsNaturalOnShuffledMesh(t *testing.T) {
	g := meshGraph(t)
	for _, k := range []int{4, 8} {
		nat := Evaluate(g, Natural(g, k), k)
		part, err := Multilevel(g, k, Options{Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		if !validPartition(part, k) {
			t.Fatalf("k=%d: invalid multilevel partition", k)
		}
		ml := Evaluate(g, part, k)
		if ml.EdgeCut >= nat.EdgeCut {
			t.Fatalf("k=%d: multilevel cut %d >= natural %d", k, ml.EdgeCut, nat.EdgeCut)
		}
		if ml.Imbalance > 1.15 {
			t.Fatalf("k=%d: multilevel imbalance %v", k, ml.Imbalance)
		}
		t.Logf("k=%d natural: %v | multilevel: %v", k, nat, ml)
	}
}

func TestMultilevelEdgeCases(t *testing.T) {
	g := meshGraph(t)
	// One part: all zeros.
	part, err := Multilevel(g, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range part {
		if p != 0 {
			t.Fatal("k=1 should be all zero")
		}
	}
	if _, err := Multilevel(g, 0, Options{}); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := Multilevel(g, g.NumVertices()+1, Options{}); err == nil {
		t.Fatal("k>n accepted")
	}
}

func TestMultilevelSmallGraphs(t *testing.T) {
	// A path of 6 vertices into 2 and 3 parts.
	ptr := []int32{0, 1, 3, 5, 7, 9, 10}
	adj := []int32{1, 0, 2, 1, 3, 2, 4, 3, 5, 4}
	g := &Graph{Ptr: ptr, Adj: adj}
	for _, k := range []int{2, 3} {
		part, err := Multilevel(g, k, Options{Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		if !validPartition(part, k) {
			t.Fatalf("k=%d invalid on path: %v", k, part)
		}
	}
}

// Property: for random small graphs, Multilevel returns a valid partition
// with every part nonempty and bounded imbalance when k divides work evenly.
func TestMultilevelProperty(t *testing.T) {
	f := func(seed uint64) bool {
		// random connected graph on n vertices
		n := int(seed%40) + 10
		ptr := make([]int32, 1, n+1)
		type edge struct{ a, b int32 }
		var edges []edge
		for i := 1; i < n; i++ {
			edges = append(edges, edge{int32(i), int32((seed >> 3) % uint64(i))})
			seed = seed*6364136223846793005 + 1442695040888963407
		}
		deg := make([]int32, n+1)
		for _, e := range edges {
			deg[e.a+1]++
			deg[e.b+1]++
		}
		for v := 0; v < n; v++ {
			deg[v+1] += deg[v]
		}
		adj := make([]int32, deg[n])
		fill := make([]int32, n)
		for _, e := range edges {
			adj[deg[e.a]+fill[e.a]] = e.b
			fill[e.a]++
			adj[deg[e.b]+fill[e.b]] = e.a
			fill[e.b]++
		}
		_ = ptr
		g := &Graph{Ptr: deg, Adj: adj}
		part, err := Multilevel(g, 3, Options{Seed: seed})
		if err != nil {
			return false
		}
		return validPartition(part, 3)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestEvaluateReplication(t *testing.T) {
	// Two triangles joined by one edge, split between them: replication =
	// 1 cut edge / 7 edges.
	ptr := []int32{0, 2, 4, 7, 10, 12, 14}
	adj := []int32{1, 2, 0, 2, 0, 1, 3, 2, 4, 5, 3, 5, 3, 4}
	g := &Graph{Ptr: ptr, Adj: adj}
	part := []int32{0, 0, 0, 1, 1, 1}
	q := Evaluate(g, part, 2)
	if q.EdgeCut != 1 {
		t.Fatalf("cut=%d", q.EdgeCut)
	}
	if q.Replication <= 0.13 || q.Replication >= 0.15 {
		t.Fatalf("replication=%v", q.Replication)
	}
	if q.String() == "" {
		t.Fatal("empty string")
	}
}

func TestNaturalVsMultilevelReplicationGap(t *testing.T) {
	// The paper's headline partitioning claim: on a shuffled unstructured
	// mesh, natural-order splitting has a large replication overhead while
	// the multilevel partitioner keeps it small.
	g := meshGraph(t)
	k := 8
	nat := Evaluate(g, Natural(g, k), k)
	part, err := Multilevel(g, k, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	ml := Evaluate(g, part, k)
	if ml.Replication >= nat.Replication/2 {
		t.Fatalf("expected >=2x replication reduction: natural %.1f%% multilevel %.1f%%",
			100*nat.Replication, 100*ml.Replication)
	}
}

func BenchmarkMultilevelTiny(b *testing.B) {
	g := meshGraph(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Multilevel(g, 8, Options{Seed: uint64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}
