// Package partition implements graph partitioning for thread- and rank-level
// domain decomposition. It provides the two strategies the paper compares:
//
//   - Natural: split vertices into contiguous index blocks ("basic
//     partitioning", the paper's baseline, which suffers a ~41% redundant
//     compute overhead at 20 threads), and
//   - Multilevel: a METIS-style multilevel k-way partitioner (heavy-edge
//     matching coarsening, greedy region-growing initial partition,
//     boundary Kernighan-Lin/Fiduccia-Mattheyses refinement) that restores
//     balance and cuts edge replication to a few percent.
//
// Partitions are vertex partitions; quality is reported as edge cut,
// imbalance, and the edge-replication factor that drives the paper's
// "owner-only writes" overhead.
package partition

import (
	"fmt"
	"math"
	"sort"
)

// Graph is a weighted CSR graph. W (vertex weights) and EW (edge weights,
// parallel to Adj) may be nil, meaning unit weights.
type Graph struct {
	Ptr []int32
	Adj []int32
	W   []int32
	EW  []int32
}

// NumVertices returns the vertex count.
func (g *Graph) NumVertices() int { return len(g.Ptr) - 1 }

func (g *Graph) weight(v int32) int32 {
	if g.W == nil {
		return 1
	}
	return g.W[v]
}

func (g *Graph) edgeWeight(i int32) int32 {
	if g.EW == nil {
		return 1
	}
	return g.EW[i]
}

// TotalWeight returns the sum of vertex weights.
func (g *Graph) TotalWeight() int64 {
	if g.W == nil {
		return int64(g.NumVertices())
	}
	var t int64
	for _, w := range g.W {
		t += int64(w)
	}
	return t
}

// Natural assigns vertices to nparts contiguous, weight-balanced index
// blocks.
func Natural(g *Graph, nparts int) []int32 {
	n := g.NumVertices()
	part := make([]int32, n)
	total := g.TotalWeight()
	target := float64(total) / float64(nparts)
	acc := 0.0
	p := int32(0)
	for v := 0; v < n; v++ {
		if acc >= float64(p+1)*target && p < int32(nparts-1) {
			p++
		}
		part[v] = p
		acc += float64(g.weight(int32(v)))
	}
	return part
}

// Options tunes the multilevel partitioner.
type Options struct {
	CoarsenTo   int     // stop coarsening below this many vertices (default 8*nparts)
	MaxLevels   int     // safety bound on coarsening levels (default 40)
	Refinements int     // FM passes per level (default 6)
	Imbalance   float64 // allowed imbalance, e.g. 1.05 (default)
	Seed        uint64
}

func (o *Options) defaults(nparts int) {
	if o.CoarsenTo <= 0 {
		// Coarsen conservatively: our boundary refinement is simpler than
		// METIS's, so deep coarsening loses more quality than it saves.
		o.CoarsenTo = 40 * nparts
		if o.CoarsenTo < 256 {
			o.CoarsenTo = 256
		}
	}
	if o.MaxLevels <= 0 {
		o.MaxLevels = 40
	}
	if o.Refinements <= 0 {
		o.Refinements = 6
	}
	if o.Imbalance <= 1 {
		o.Imbalance = 1.05
	}
}

// Multilevel partitions g into nparts parts and returns part[v] in
// [0,nparts).
func Multilevel(g *Graph, nparts int, opt Options) ([]int32, error) {
	if nparts < 1 {
		return nil, fmt.Errorf("partition: nparts %d < 1", nparts)
	}
	n := g.NumVertices()
	if nparts == 1 || n == 0 {
		return make([]int32, n), nil
	}
	if nparts > n {
		return nil, fmt.Errorf("partition: nparts %d > vertices %d", nparts, n)
	}
	opt.defaults(nparts)

	// Coarsening phase.
	levels := []*Graph{g}
	maps := [][]int32{} // maps[i][v in level i] = vertex in level i+1
	cur := g
	for len(levels) < opt.MaxLevels && cur.NumVertices() > opt.CoarsenTo {
		coarse, cmap := coarsen(cur, opt.Seed+uint64(len(levels)))
		if coarse.NumVertices() >= cur.NumVertices() {
			break // matching failed to shrink; stop
		}
		levels = append(levels, coarse)
		maps = append(maps, cmap)
		cur = coarse
	}

	// Initial partition on the coarsest graph.
	part := growInitial(cur, nparts, opt)
	refine(cur, nparts, part, opt)

	// Uncoarsening with refinement.
	for i := len(maps) - 1; i >= 0; i-- {
		fineG := levels[i]
		finePart := make([]int32, fineG.NumVertices())
		cmap := maps[i]
		for v := range finePart {
			finePart[v] = part[cmap[v]]
		}
		part = finePart
		refine(fineG, nparts, part, opt)
	}

	// Guardrail: contiguous index blocks (refined) as a final candidate.
	// When the caller's vertex order already encodes locality (RCM), this
	// seed can beat the multilevel result under our lightweight
	// refinement; taking the better of the two makes Multilevel dominate
	// Natural by construction.
	natural := Natural(g, nparts)
	refine(g, nparts, natural, opt)
	if betterPartition(g, natural, part, nparts) {
		part = natural
	}
	return part, nil
}

// betterPartition reports whether a beats b: primarily by edge cut, with a
// large imbalance acting as a tie-breaking penalty.
func betterPartition(g *Graph, a, b []int32, nparts int) bool {
	qa := Evaluate(g, a, nparts)
	qb := Evaluate(g, b, nparts)
	costA := float64(qa.EdgeCut) * math.Max(1, qa.Imbalance)
	costB := float64(qb.EdgeCut) * math.Max(1, qb.Imbalance)
	return costA < costB
}

// coarsen contracts a heavy-edge matching. Returns the coarse graph and the
// fine-to-coarse map.
func coarsen(g *Graph, seed uint64) (*Graph, []int32) {
	n := g.NumVertices()
	match := make([]int32, n)
	for i := range match {
		match[i] = -1
	}
	// Visit vertices in a pseudo-random order for matching quality.
	order := make([]int32, n)
	for i := range order {
		order[i] = int32(i)
	}
	shuffle(order, seed)

	for _, v := range order {
		if match[v] >= 0 {
			continue
		}
		best := int32(-1)
		bestW := int32(-1)
		for i := g.Ptr[v]; i < g.Ptr[v+1]; i++ {
			w := g.Adj[i]
			if w == v || match[w] >= 0 {
				continue
			}
			if ew := g.edgeWeight(i); ew > bestW {
				bestW, best = ew, w
			}
		}
		if best >= 0 {
			match[v] = best
			match[best] = v
		} else {
			match[v] = v
		}
	}

	// Number coarse vertices.
	cmap := make([]int32, n)
	for i := range cmap {
		cmap[i] = -1
	}
	nc := int32(0)
	for v := int32(0); v < int32(n); v++ {
		if cmap[v] >= 0 {
			continue
		}
		cmap[v] = nc
		if match[v] != v {
			cmap[match[v]] = nc
		}
		nc++
	}

	// Build the coarse graph with merged edges.
	cw := make([]int32, nc)
	for v := int32(0); v < int32(n); v++ {
		cw[cmap[v]] += g.weight(v)
	}
	// Adjacency accumulation per coarse vertex via a scatter map.
	type pair struct {
		to int32
		w  int32
	}
	cadj := make([][]pair, nc)
	for v := int32(0); v < int32(n); v++ {
		cv := cmap[v]
		for i := g.Ptr[v]; i < g.Ptr[v+1]; i++ {
			cu := cmap[g.Adj[i]]
			if cu == cv {
				continue
			}
			cadj[cv] = append(cadj[cv], pair{cu, g.edgeWeight(i)})
		}
	}
	ptr := make([]int32, nc+1)
	var adj, ew []int32
	for cv := int32(0); cv < nc; cv++ {
		ps := cadj[cv]
		sort.Slice(ps, func(i, j int) bool { return ps[i].to < ps[j].to })
		for i := 0; i < len(ps); {
			j := i
			var wsum int32
			for j < len(ps) && ps[j].to == ps[i].to {
				wsum += ps[j].w
				j++
			}
			adj = append(adj, ps[i].to)
			ew = append(ew, wsum)
			i = j
		}
		ptr[cv+1] = int32(len(adj))
	}
	return &Graph{Ptr: ptr, Adj: adj, W: cw, EW: ew}, cmap
}

// growInitial produces an initial k-way partition by greedy
// max-connectivity region growing (Farhat-style) with a few randomized
// restarts, keeping the lowest-cut result. It runs on the coarsest graph,
// so the restarts are cheap.
func growInitial(g *Graph, nparts int, opt Options) []int32 {
	var best []int32
	bestCut := int64(1) << 62
	consider := func(part []int32) {
		refine(g, nparts, part, opt)
		if cut := Evaluate(g, part, nparts).EdgeCut; cut < bestCut {
			bestCut = cut
			best = part
		}
	}
	for trial := 0; trial < 4; trial++ {
		consider(growOnce(g, nparts, opt.Seed+uint64(trial)*977))
	}
	// Contiguous index blocks as an extra candidate: coarse vertex numbers
	// inherit the fine ordering, so when the input is well ordered (RCM)
	// this seed is strong — the same reason the paper's natural splitting
	// is a serious baseline.
	consider(Natural(g, nparts))
	return best
}

// growOnce grows nparts regions one at a time: each region starts from an
// unassigned vertex far from the already-assigned set and absorbs, at each
// step, the unassigned neighbor with the strongest connection to the
// region (a greedy min-cut frontier).
func growOnce(g *Graph, nparts int, seed uint64) []int32 {
	n := g.NumVertices()
	part := make([]int32, n)
	for i := range part {
		part[i] = -1
	}
	total := g.TotalWeight()
	target := float64(total) / float64(nparts)

	conn := make([]int64, n)  // connectivity of unassigned vertex to the growing region
	inHeap := make([]bool, n) // lazily maintained max-heap membership
	var heap connHeap
	order := make([]int32, n)
	for i := range order {
		order[i] = int32(i)
	}
	shuffle(order, seed^0xabcdef)
	cursor := 0

	for p := int32(0); p < int32(nparts); p++ {
		// Seed: the unassigned vertex farthest (BFS hops) from everything
		// assigned so far; for the first region a shuffled pick.
		var sd int32 = -1
		if p == 0 {
			for cursor < n && part[order[cursor]] >= 0 {
				cursor++
			}
			if cursor >= n {
				break
			}
			sd = order[cursor]
		} else {
			sd = farthestUnassigned(g, part)
			if sd < 0 {
				break
			}
		}
		heap.items = heap.items[:0]
		for i := range conn {
			conn[i] = 0
			inHeap[i] = false
		}
		grown := 0.0
		absorb := func(v int32) {
			part[v] = p
			grown += float64(g.weight(v))
			for i := g.Ptr[v]; i < g.Ptr[v+1]; i++ {
				w := g.Adj[i]
				if part[w] >= 0 {
					continue
				}
				conn[w] += int64(g.edgeWeight(i))
				heap.push(connItem{w, conn[w]})
				inHeap[w] = true
			}
		}
		absorb(sd)
		for grown < target && len(heap.items) > 0 {
			it := heap.pop()
			if part[it.v] >= 0 || conn[it.v] != it.c {
				continue // stale entry
			}
			absorb(it.v)
		}
	}
	// Stragglers go to the lightest part.
	weights := make([]int64, nparts)
	for v := int32(0); v < int32(n); v++ {
		if part[v] >= 0 {
			weights[part[v]] += int64(g.weight(v))
		}
	}
	for v := int32(0); v < int32(n); v++ {
		if part[v] < 0 {
			best := 0
			for p := 1; p < nparts; p++ {
				if weights[p] < weights[best] {
					best = p
				}
			}
			part[v] = int32(best)
			weights[best] += int64(g.weight(v))
		}
	}
	return part
}

// farthestUnassigned BFS-s from all assigned vertices and returns the last
// unassigned vertex reached (ties broken by visit order); -1 if none.
func farthestUnassigned(g *Graph, part []int32) int32 {
	n := g.NumVertices()
	seen := make([]bool, n)
	var frontier []int32
	for v := int32(0); v < int32(n); v++ {
		if part[v] >= 0 {
			seen[v] = true
			frontier = append(frontier, v)
		}
	}
	last := int32(-1)
	for len(frontier) > 0 {
		var next []int32
		for _, v := range frontier {
			for i := g.Ptr[v]; i < g.Ptr[v+1]; i++ {
				w := g.Adj[i]
				if !seen[w] {
					seen[w] = true
					next = append(next, w)
					if part[w] < 0 {
						last = w
					}
				}
			}
		}
		frontier = next
	}
	if last >= 0 {
		return last
	}
	for v := int32(0); v < int32(n); v++ {
		if part[v] < 0 {
			return v
		}
	}
	return -1
}

// connItem / connHeap: a simple max-heap of (vertex, connectivity) with
// lazy invalidation.
type connItem struct {
	v int32
	c int64
}

type connHeap struct {
	items []connItem
}

func (h *connHeap) push(it connItem) {
	h.items = append(h.items, it)
	i := len(h.items) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if h.items[parent].c >= h.items[i].c {
			break
		}
		h.items[parent], h.items[i] = h.items[i], h.items[parent]
		i = parent
	}
}

func (h *connHeap) pop() connItem {
	top := h.items[0]
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	h.items = h.items[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		big := i
		if l < last && h.items[l].c > h.items[big].c {
			big = l
		}
		if r < last && h.items[r].c > h.items[big].c {
			big = r
		}
		if big == i {
			break
		}
		h.items[i], h.items[big] = h.items[big], h.items[i]
		i = big
	}
	return top
}

// refine performs boundary FM-style refinement passes: moves boundary
// vertices to the neighboring part with the best gain subject to the
// balance constraint.
func refine(g *Graph, nparts int, part []int32, opt Options) {
	n := g.NumVertices()
	total := g.TotalWeight()
	maxLoad := int64(float64(total) / float64(nparts) * opt.Imbalance)
	if maxLoad < 1 {
		maxLoad = 1
	}
	loads := make([]int64, nparts)
	for v := 0; v < n; v++ {
		loads[part[v]] += int64(g.weight(int32(v)))
	}
	conn := make([]int64, nparts) // connectivity of v to each part, reused
	for pass := 0; pass < opt.Refinements; pass++ {
		moved := 0
		for v := int32(0); v < int32(n); v++ {
			home := part[v]
			// Compute connectivity to touched parts.
			touched := touchedParts(g, v, part, conn)
			if len(touched) == 1 && touched[0] == home {
				continue // interior vertex
			}
			bestPart := home
			bestGain := int64(0)
			for _, p := range touched {
				if p == home {
					continue
				}
				gain := conn[p] - conn[home]
				wv := int64(g.weight(v))
				if gain > bestGain && loads[p]+wv <= maxLoad {
					bestGain, bestPart = gain, p
				} else if gain == bestGain && gain > 0 && loads[p] < loads[bestPart] && loads[p]+wv <= maxLoad {
					bestPart = p
				}
			}
			// Also allow zero-gain moves that improve balance markedly.
			if bestPart == home {
				for _, p := range touched {
					if p == home {
						continue
					}
					wv := int64(g.weight(v))
					if conn[p] == conn[home] && loads[home] > maxLoad && loads[p]+wv <= maxLoad {
						bestPart = p
						break
					}
				}
			}
			for _, p := range touched {
				conn[p] = 0
			}
			if bestPart != home {
				wv := int64(g.weight(v))
				loads[home] -= wv
				loads[bestPart] += wv
				part[v] = bestPart
				moved++
			}
		}
		if moved == 0 {
			break
		}
	}
}

// touchedParts fills conn[p] with the edge weight from v into part p and
// returns the list of parts with nonzero connectivity plus v's own part.
func touchedParts(g *Graph, v int32, part []int32, conn []int64) []int32 {
	var touched []int32
	home := part[v]
	conn[home] = 0
	touched = append(touched, home)
	for i := g.Ptr[v]; i < g.Ptr[v+1]; i++ {
		p := part[g.Adj[i]]
		if conn[p] == 0 && p != home {
			touched = append(touched, p)
		}
		conn[p] += int64(g.edgeWeight(i))
	}
	return touched
}

func shuffle(a []int32, seed uint64) {
	s := seed + 0x9e3779b97f4a7c15
	next := func() uint64 {
		s += 0x9e3779b97f4a7c15
		z := s
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	for i := len(a) - 1; i > 0; i-- {
		j := int(next() % uint64(i+1))
		a[i], a[j] = a[j], a[i]
	}
}
