package krylov

import (
	"fmt"
	"math"

	"fun3d/internal/prof"
)

// pipelined is the extra workspace of the pipelined variant.
type pipelined struct {
	z     [][]float64 // preconditioned basis Z = M⁻¹V, Restart+1 vectors
	u     []float64   // M⁻¹w of the current iteration
	znorm []float64   // lagged exact norms ||z_k||
	gram  []float64   // Gram matrix z_i·z_j, (Restart+1)² row-major
	gramV []float64   // Gram matrix v_i·v_j, same layout
	chol  []float64   // Cholesky scratch for the Gram projection solve
	d     []float64   // oblique projection coefficients
	negd  []float64
	pairs []DotPair
	out   []float64
}

func (p *pipelined) ensure(n, m int) {
	if len(p.z) < m+1 || (len(p.z) > 0 && len(p.z[0]) != n) {
		p.z = make([][]float64, m+1)
		for i := range p.z {
			p.z[i] = make([]float64, n)
		}
		p.u = make([]float64, n)
	}
	if len(p.gram) < (m+1)*(m+1) {
		p.gram = make([]float64, (m+1)*(m+1))
		p.gramV = make([]float64, (m+1)*(m+1))
		p.chol = make([]float64, (m+1)*(m+1))
		p.znorm = make([]float64, m+1)
		p.d = make([]float64, m+1)
		p.negd = make([]float64, m+1)
		p.pairs = make([]DotPair, 0, 4*(m+1)+2)
		p.out = make([]float64, 4*(m+1)+2)
	}
}

// gramSolve solves G d = c for the kk×kk leading block of the row-major
// Gram matrix g (stride gs) by Cholesky factorization — the local, no-
// reduction step of the Gram-corrected (oblique) projection. Returns false
// when G is not numerically positive definite (a degenerate basis); the
// caller falls back to the plain CGS coefficients.
func (p *pipelined) gramSolve(g []float64, gs, kk int, c, d []float64) bool {
	l := p.chol
	for i := 0; i < kk; i++ {
		for j := 0; j <= i; j++ {
			s := g[i*gs+j]
			for t := 0; t < j; t++ {
				s -= l[i*kk+t] * l[j*kk+t]
			}
			if i == j {
				if s <= 0 {
					return false
				}
				l[i*kk+i] = math.Sqrt(s)
			} else {
				l[i*kk+j] = s / l[j*kk+j]
			}
		}
	}
	for i := 0; i < kk; i++ { // forward: L y = c
		s := c[i]
		for t := 0; t < i; t++ {
			s -= l[i*kk+t] * d[t]
		}
		d[i] = s / l[i*kk+i]
	}
	for i := kk - 1; i >= 0; i-- { // backward: Lᵀ d = y
		s := d[i]
		for t := i + 1; t < kk; t++ {
			s -= l[t*kk+i] * d[t]
		}
		d[i] = s / l[i*kk+i]
	}
	return true
}

// applyPre computes z = M⁻¹r, or copies when m is nil.
func applyPre(m Preconditioner, ops Vectors, r, z []float64) {
	if m != nil {
		m.Apply(r, z)
	} else {
		ops.Copy(z, r)
	}
}

// solvePipelined is the Options.Pipelined path of GMRES.Solve: the
// single-reduction-per-iteration (communication-avoiding) variant of the
// restarted solver in gmres.go.
//
// Classical Gram-Schmidt with refinement costs three or four global
// reductions per inner iteration — the Allreduce latency wall the paper's
// Fig. 10 measures at scale. This variant reorganizes the iteration so the
// happy path issues exactly ONE:
//
//   - The CGS projection dots, ||w||², the current Gram rows of both bases,
//     and every term needed for the next direction's norm travel in one
//     BatchedReducer.DotBatch call.
//   - Single-pass CGS is refined without a second pass: the batch carries
//     the measured V-Gram row, the projection solves G_V d = c (a local
//     Cholesky, no reduction), and ||ŵ|| comes from the exact quadratic
//     form ||w − Vd||² = ||w||² − 2dᵀc + dᵀG_V d (explicit-norm fallback
//     under cancellation). Because every quantity is measured rather than
//     assumed orthonormal, rounding errors do not compound through the
//     recurrence.
//   - The preconditioned basis Z = M⁻¹V is stored (FGMRES-style) and
//     advanced by linearity: ẑ = M⁻¹ŵ = u − Σ d_j z_j with u = M⁻¹w, so
//     no reduction hides inside the preconditioner chain.
//   - Lag-normalization: the matrix-free JFNK operator needs ||z_k|| for
//     its differencing parameter — classically a per-matvec Allreduce.
//     Here ||ẑ||² follows from the exact Gram quadratic form
//     ||u − Σ d_j z_j||² = ||u||² − 2Σ d_j (u·z_j) + dᵀGd, whose terms
//     rode the same single reduction, so the norm of iteration k+1's
//     direction is known one iteration early and goes to ApplyWithNorm.
//
// Cycle setup costs one fused reduction ([r·r, (M⁻¹r)·(M⁻¹r)]), so a
// single-cycle solve performs iterations+1 collectives; mpisim's tests pin
// exactly that count.
func (g *GMRES) solvePipelined(a Operator, m Preconditioner, b, x []float64, opt Options, br BatchedReducer) (Result, error) {
	n := len(b)
	g.ensure(n, opt.Restart)
	g.pip.ensure(n, opt.Restart)
	ops := g.Ops
	p := &g.pip
	na, hasNorm := a.(NormedOperator)

	res := Result{}
	r := g.v[0] // residual lives in v[0], as in the classical path

	// setup fuses ||r||² with ||M⁻¹r||²: the preconditioned residual is
	// needed anyway as the first direction, and its exact norm seeds the
	// lag-normalization recurrence. Returns (||r||, ||M⁻¹r||²).
	setup := func() (float64, float64) {
		applyPre(m, ops, r, p.z[0])
		p.pairs = append(p.pairs[:0],
			DotPair{X: r, Y: r}, DotPair{X: p.z[0], Y: p.z[0]})
		out := p.out[:2]
		br.DotBatch(p.pairs, out)
		return math.Sqrt(out[0]), out[1]
	}

	if opt.ZeroGuess {
		ops.Copy(r, b)
	} else {
		a.Apply(x, g.w)
		ops.WAXPY(r, -1, g.w, b)
	}
	rnorm, uu0 := setup()
	res.RNorm0 = rnorm
	res.RNorm = rnorm
	target := math.Max(opt.RelTol*rnorm, opt.AbsTol)
	if rnorm <= target || rnorm == 0 {
		res.Converged = true
		return res, nil
	}

	R := opt.Restart
	gs := R + 1 // Gram matrix stride
	for res.Iterations < opt.MaxIters {
		// Start a cycle: v0 = r/||r||, z0 = (M⁻¹r)/||r|| with exact norm.
		inv := 1 / rnorm
		ops.Scale(inv, g.v[0])
		ops.Scale(inv, p.z[0])
		p.znorm[0] = math.Sqrt(uu0) * inv
		p.gram[0] = uu0 * inv * inv
		g.gamma[0] = rnorm
		for i := 1; i <= R; i++ {
			g.gamma[i] = 0
		}
		k := 0
		for ; k < R && res.Iterations < opt.MaxIters; k++ {
			// w = A z_k with the lagged exact norm — no collective here.
			if hasNorm {
				na.ApplyWithNorm(p.z[k], g.w, p.znorm[k])
			} else {
				a.Apply(p.z[k], g.w)
			}
			// u = M⁻¹w now, so the next direction's preconditioner terms
			// can join this iteration's single reduction.
			applyPre(m, ops, g.w, p.u)

			// The one reduction of the iteration: CGS dots c_j = w·v_j,
			// ||w||², ||u||², u·z_j, the fresh Z-Gram row z_k·z_j, and the
			// fresh V-Gram row v_k·v_j (the in-batch refinement data).
			kk := k + 1
			p.pairs = p.pairs[:0]
			for j := 0; j < kk; j++ {
				p.pairs = append(p.pairs, DotPair{X: g.w, Y: g.v[j]})
			}
			p.pairs = append(p.pairs,
				DotPair{X: g.w, Y: g.w}, DotPair{X: p.u, Y: p.u})
			for j := 0; j < kk; j++ {
				p.pairs = append(p.pairs, DotPair{X: p.u, Y: p.z[j]})
			}
			for j := 0; j < kk; j++ {
				p.pairs = append(p.pairs, DotPair{X: p.z[k], Y: p.z[j]})
			}
			for j := 0; j < kk; j++ {
				p.pairs = append(p.pairs, DotPair{X: g.v[k], Y: g.v[j]})
			}
			out := p.out[:4*kk+2]
			br.DotBatch(p.pairs, out)
			c := out[:kk]
			ww, uu := out[kk], out[kk+1]
			us := out[kk+2 : 2*kk+2]
			gz := out[2*kk+2 : 3*kk+2]
			gv := out[3*kk+2 : 4*kk+2]

			// Refresh both Gram rows/columns k with the exactly-reduced
			// values. Carrying the measured V-Gram is what keeps single-pass
			// CGS stable: each column's (tiny) orthogonality and norm error
			// is observed one iteration later and compensated exactly below,
			// so per-iteration errors stay additive instead of compounding
			// through the recurrence.
			for j := 0; j < kk; j++ {
				p.gram[k*gs+j] = gz[j]
				p.gram[j*gs+k] = gz[j]
				p.gramV[k*gs+j] = gv[j]
				p.gramV[j*gs+k] = gv[j]
			}

			// Oblique (Gram-corrected) projection: solve G_V d = c so that
			// ŵ = w − Σ d_j v_j is orthogonal to span(V) even when V has a
			// small orthogonality defect — the local Cholesky solve replaces
			// the classical refinement pass and needs no extra reduction.
			d := p.d[:kk]
			if !p.gramSolve(p.gramV, gs, kk, c, d) {
				copy(d, c) // degenerate basis: plain CGS coefficients
			}

			// Hessenberg column and ŵ = w − Σ d_j v_j (single-pass CGS).
			for j := 0; j < kk; j++ {
				g.h[j*R+k] = d[j]
				p.negd[j] = -d[j]
			}
			ops.MAXPY(g.w, p.negd[:kk], g.v[:kk])
			// ||ŵ||² from the exact quadratic form
			// ||w − Vd||² = ||w||² − 2dᵀc + dᵀG_V d; explicit norm (one
			// extra collective, off the happy path) under cancellation.
			rem := ww
			for j := 0; j < kk; j++ {
				rem -= 2 * d[j] * c[j]
				s := 0.0
				for i := 0; i < kk; i++ {
					s += d[i] * p.gramV[i*gs+j]
				}
				rem += d[j] * s
			}
			var hk1 float64
			if rem > 1e-4*ww {
				hk1 = math.Sqrt(rem)
			} else {
				hk1 = ops.Norm2(g.w)
			}

			// ẑ = u − Σ d_j z_j equals M⁻¹ŵ exactly (M⁻¹ is linear), so
			// the next preconditioner apply already happened; its norm²
			// follows from the Gram quadratic form — exact regardless of
			// the basis' orthogonality defect — with the same fallback.
			ops.MAXPY(p.u, p.negd[:kk], p.z[:kk])
			quad := uu
			for j := 0; j < kk; j++ {
				quad -= 2 * d[j] * us[j]
				s := 0.0
				for i := 0; i < kk; i++ {
					s += d[i] * p.gram[i*gs+j]
				}
				quad += d[j] * s
			}
			var zz float64
			if quad > 1e-4*uu {
				zz = quad
			} else {
				zn := ops.Norm2(p.u)
				zz = zn * zn
			}

			res.Iterations++
			g.Met.Inc(prof.GMRESIters, 1)
			// Coarse traffic estimate: the batch reads both bases plus
			// w/u (~4(k+1)+2 sweeps) and the two MAXPYs add 2(k+1)+2.
			g.Met.Inc(prof.VecElems, int64((6*kk+4)*n))

			// Givens rotations — identical to the classical path.
			hcol := func(j int) *float64 { return &g.h[j*R+k] }
			for j := 0; j < k; j++ {
				hj, hj1 := *hcol(j), *hcol(j + 1)
				*hcol(j) = g.cs[j]*hj + g.sn[j]*hj1
				*hcol(j + 1) = -g.sn[j]*hj + g.cs[j]*hj1
			}
			if hk1 <= 1e-300 {
				// Happy breakdown, as in the classical path.
				k++
				if err := g.finishCyclePipelined(x, k, R); err != nil {
					return res, err
				}
				res.RNorm = math.Abs(g.gamma[k])
				res.Converged = res.RNorm <= target
				if !res.Converged {
					return res, fmt.Errorf("%w at iteration %d", ErrBreakdown, res.Iterations)
				}
				return res, nil
			}
			ops.Copy(g.v[k+1], g.w)
			ops.Scale(1/hk1, g.v[k+1])
			ops.Copy(p.z[k+1], p.u)
			ops.Scale(1/hk1, p.z[k+1])
			// Lag-normalization: z_{k+1} = ẑ/h_{k+1,k}, so its exact norm
			// is known now — one iteration ahead of its use as the JFNK
			// differencing norm.
			p.znorm[k+1] = math.Sqrt(zz) / hk1
			p.gram[(k+1)*gs+(k+1)] = zz / (hk1 * hk1)

			hk := *hcol(k)
			den := math.Hypot(hk, hk1)
			g.cs[k] = hk / den
			g.sn[k] = hk1 / den
			*hcol(k) = den
			g.gamma[k+1] = -g.sn[k] * g.gamma[k]
			g.gamma[k] = g.cs[k] * g.gamma[k]

			res.RNorm = math.Abs(g.gamma[k+1])
			if res.RNorm <= target {
				k++
				break
			}
		}
		if err := g.finishCyclePipelined(x, k, R); err != nil {
			return res, err
		}
		if res.RNorm <= target {
			res.Converged = true
			return res, nil
		}
		// Restart: true residual plus a fresh setup reduction — per-cycle,
		// not per-iteration, overhead.
		a.Apply(x, g.w)
		r = g.v[0]
		ops.WAXPY(r, -1, g.w, b)
		rnorm, uu0 = setup()
		res.RNorm = rnorm
		if rnorm <= target {
			res.Converged = true
			return res, nil
		}
	}
	return res, nil
}

// finishCyclePipelined back-substitutes the rotated Hessenberg system and
// updates x += Z y directly: the preconditioned basis is stored, so unlike
// the classical finishCycle no trailing M⁻¹ apply is needed.
func (g *GMRES) finishCyclePipelined(x []float64, k, restart int) error {
	if k == 0 {
		return nil
	}
	for i := k - 1; i >= 0; i-- {
		s := g.gamma[i]
		for j := i + 1; j < k; j++ {
			s -= g.h[i*restart+j] * g.y[j]
		}
		d := g.h[i*restart+i]
		if d == 0 {
			return ErrBreakdown
		}
		g.y[i] = s / d
	}
	g.Ops.MAXPY(x, g.y[:k], g.pip.z[:k])
	return nil
}
