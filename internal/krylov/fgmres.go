package krylov

import (
	"fmt"
	"math"

	"fun3d/internal/vecop"
)

// FGMRES is flexible GMRES (Saad '93): the preconditioner may change from
// iteration to iteration, which is what the hierarchical/nested Krylov
// methods the paper cites as future work (McInnes et al., Parallel
// Computing 2014) require — an inner Krylov solve per subdomain used as
// the outer method's preconditioner. The price is one extra stored vector
// per iteration (the preconditioned basis Z).
//
// The zero value works; workspace grows on first use. Solve is
// right-preconditioned like GMRES.Solve and supports the same Options
// (FusedNorms included).
type FGMRES struct {
	Ops Vectors

	v     [][]float64 // Arnoldi basis
	z     [][]float64 // preconditioned basis, one per column
	w     []float64
	h     []float64
	cs    []float64
	sn    []float64
	gamma []float64
	y     []float64
	dots  []float64
}

func (g *FGMRES) ensure(n, m int) {
	if len(g.v) < m+1 || (len(g.v) > 0 && len(g.v[0]) != n) {
		g.v = make([][]float64, m+1)
		g.z = make([][]float64, m)
		for i := range g.v {
			g.v[i] = make([]float64, n)
		}
		for i := range g.z {
			g.z[i] = make([]float64, n)
		}
		g.w = make([]float64, n)
	}
	if len(g.h) < (m+1)*m {
		g.h = make([]float64, (m+1)*m)
		g.cs = make([]float64, m)
		g.sn = make([]float64, m)
		g.gamma = make([]float64, m+1)
		g.y = make([]float64, m)
		g.dots = make([]float64, m+1)
	}
}

// Solve runs restarted flexible GMRES on A x = b starting from the guess
// in x (overwritten). m may be nil (then FGMRES reduces to plain GMRES)
// or any Preconditioner — including one that runs an inner Krylov solve.
func (g *FGMRES) Solve(a Operator, m Preconditioner, b, x []float64, opt Options) (Result, error) {
	opt.defaults()
	if g.Ops == nil {
		g.Ops = vecop.Seq
	}
	n := len(b)
	g.ensure(n, opt.Restart)
	ops := g.Ops

	res := Result{}
	r := g.v[0]
	if opt.ZeroGuess {
		ops.Copy(r, b)
	} else {
		a.Apply(x, g.w)
		ops.WAXPY(r, -1, g.w, b)
	}
	rnorm := ops.Norm2(r)
	res.RNorm0 = rnorm
	res.RNorm = rnorm
	target := math.Max(opt.RelTol*rnorm, opt.AbsTol)
	if rnorm <= target || rnorm == 0 {
		res.Converged = true
		return res, nil
	}

	for res.Iterations < opt.MaxIters {
		ops.Scale(1/rnorm, r)
		g.gamma[0] = rnorm
		for i := 1; i <= opt.Restart; i++ {
			g.gamma[i] = 0
		}
		k := 0
		for ; k < opt.Restart && res.Iterations < opt.MaxIters; k++ {
			// z_k = M_k^{-1} v_k (M may differ per k); w = A z_k.
			if m != nil {
				m.Apply(g.v[k], g.z[k])
			} else {
				ops.Copy(g.z[k], g.v[k])
			}
			a.Apply(g.z[k], g.w)

			basis := g.v[:k+1]
			dots := g.dots[:k+1]
			ops.MDot(g.w, basis, dots)
			for j := 0; j <= k; j++ {
				g.h[j*opt.Restart+k] = dots[j]
				dots[j] = -dots[j]
			}
			ops.MAXPY(g.w, dots, basis)

			var hk1 float64
			nf, canFuse := ops.(NormFuser)
			if opt.FusedNorms && canFuse {
				wNorm := nf.MDotNorm(g.w, basis, dots)
				sumsq := 0.0
				for j := 0; j <= k; j++ {
					g.h[j*opt.Restart+k] += dots[j]
					sumsq += dots[j] * dots[j]
					dots[j] = -dots[j]
				}
				ops.MAXPY(g.w, dots, basis)
				rem := wNorm*wNorm - sumsq
				if rem > 1e-4*wNorm*wNorm {
					hk1 = math.Sqrt(rem)
				} else {
					hk1 = ops.Norm2(g.w)
				}
			} else {
				ops.MDot(g.w, basis, dots)
				for j := 0; j <= k; j++ {
					g.h[j*opt.Restart+k] += dots[j]
					dots[j] = -dots[j]
				}
				ops.MAXPY(g.w, dots, basis)
				hk1 = ops.Norm2(g.w)
			}
			res.Iterations++

			hcol := func(j int) *float64 { return &g.h[j*opt.Restart+k] }
			for j := 0; j < k; j++ {
				hj, hj1 := *hcol(j), *hcol(j + 1)
				*hcol(j) = g.cs[j]*hj + g.sn[j]*hj1
				*hcol(j + 1) = -g.sn[j]*hj + g.cs[j]*hj1
			}
			if hk1 <= 1e-300 {
				k++
				if err := g.finish(x, k, opt.Restart); err != nil {
					return res, err
				}
				res.RNorm = math.Abs(g.gamma[k])
				res.Converged = res.RNorm <= target
				if !res.Converged {
					return res, fmt.Errorf("%w at iteration %d", ErrBreakdown, res.Iterations)
				}
				return res, nil
			}
			ops.Copy(g.v[k+1], g.w)
			ops.Scale(1/hk1, g.v[k+1])

			hk := *hcol(k)
			den := math.Hypot(hk, hk1)
			g.cs[k] = hk / den
			g.sn[k] = hk1 / den
			*hcol(k) = den
			g.gamma[k+1] = -g.sn[k] * g.gamma[k]
			g.gamma[k] = g.cs[k] * g.gamma[k]

			res.RNorm = math.Abs(g.gamma[k+1])
			if res.RNorm <= target {
				k++
				break
			}
		}
		if err := g.finish(x, k, opt.Restart); err != nil {
			return res, err
		}
		if res.RNorm <= target {
			res.Converged = true
			return res, nil
		}
		a.Apply(x, g.w)
		r = g.v[0]
		ops.WAXPY(r, -1, g.w, b)
		rnorm = ops.Norm2(r)
		res.RNorm = rnorm
		if rnorm <= target {
			res.Converged = true
			return res, nil
		}
	}
	return res, nil
}

// finish solves the small system and updates x += Z y (flexible update:
// the stored preconditioned vectors, not M^{-1}(V y)).
func (g *FGMRES) finish(x []float64, k, restart int) error {
	if k == 0 {
		return nil
	}
	for i := k - 1; i >= 0; i-- {
		s := g.gamma[i]
		for j := i + 1; j < k; j++ {
			s -= g.h[i*restart+j] * g.y[j]
		}
		d := g.h[i*restart+i]
		if d == 0 {
			return ErrBreakdown
		}
		g.y[i] = s / d
	}
	g.Ops.MAXPY(x, g.y[:k], g.z[:k])
	return nil
}

// InnerPreconditioner wraps an operator and a (fixed) preconditioner into
// a nested-Krylov preconditioner: each Apply runs a short inner GMRES.
// Used to realize the hierarchical Krylov configuration from the paper's
// future-work references.
type InnerPreconditioner struct {
	A     Operator
	M     Preconditioner
	Iters int // inner iteration budget (default 5)
	Ops   Vectors

	g GMRES
}

// Apply implements Preconditioner by approximately solving A z = r.
func (p *InnerPreconditioner) Apply(r, z []float64) {
	iters := p.Iters
	if iters <= 0 {
		iters = 5
	}
	if p.g.Ops == nil {
		if p.Ops != nil {
			p.g.Ops = p.Ops
		} else {
			p.g.Ops = vecop.Seq
		}
	}
	for i := range z {
		z[i] = 0
	}
	// Best effort: ignore the result (a preconditioner need not converge).
	_, _ = p.g.Solve(p.A, p.M, r, z, Options{
		Restart:  iters,
		MaxIters: iters,
		RelTol:   1e-2,
	})
}
