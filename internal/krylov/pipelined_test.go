package krylov

import (
	"math"
	"math/rand"
	"testing"

	"fun3d/internal/vecop"
)

// solvePair runs classical and pipelined GMRES on the same system and
// returns both solutions and results.
func solvePair(t *testing.T, op Operator, m Preconditioner, b []float64, opt Options) (x1, x2 []float64, r1, r2 Result) {
	t.Helper()
	n := len(b)
	x1 = make([]float64, n)
	x2 = make([]float64, n)
	var g1, g2 GMRES
	opt.Pipelined = false
	r1, err := g1.Solve(op, m, b, x1, opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.Pipelined = true
	r2, err = g2.Solve(op, m, b, x2, opt)
	if err != nil {
		t.Fatal(err)
	}
	return x1, x2, r1, r2
}

// Pipelined GMRES is algebraically the same iteration as classical GMRES
// (modulo the orthogonalization pass structure), so solutions must agree
// tightly and iteration counts closely on well-conditioned systems.
func TestPipelinedMatchesClassicalDense(t *testing.T) {
	seeds := []int64{1, 2, 3, 4, 5, 6}
	if testing.Short() {
		seeds = seeds[:2]
	}
	for _, seed := range seeds {
		n := 70
		op := randDominant(n, seed)
		rng := rand.New(rand.NewSource(seed + 100))
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		x1, x2, r1, r2 := solvePair(t, op, nil, b, Options{RelTol: 1e-10, MaxIters: 400})
		if !r1.Converged || !r2.Converged {
			t.Fatalf("seed %d: convergence classical=%v pipelined=%v", seed, r1.Converged, r2.Converged)
		}
		if absInt(r1.Iterations-r2.Iterations) > 2 {
			t.Fatalf("seed %d: iteration counts diverge: %d vs %d", seed, r1.Iterations, r2.Iterations)
		}
		for i := range x1 {
			if math.Abs(x1[i]-x2[i]) > 1e-7 {
				t.Fatalf("seed %d: solutions differ at %d: %v vs %v", seed, i, x1[i], x2[i])
			}
		}
		bn := 0.0
		for _, v := range b {
			bn += v * v
		}
		if r := residual(op, b, x2); r > 1e-8*math.Sqrt(bn) {
			t.Fatalf("seed %d: pipelined true residual %v", seed, r)
		}
	}
}

// With a (fixed) right preconditioner the pipelined variant advances the
// stored preconditioned basis by linearity instead of applying M⁻¹ to ŵ —
// algebraically identical, and the finish uses x += Zy directly.
func TestPipelinedPreconditioned(t *testing.T) {
	n := 60
	op := randDominant(n, 11)
	// Jacobi: exactly linear, so the ẑ = u − Σ d_j z_j recurrence is exact.
	diag := make([]float64, n)
	for i := 0; i < n; i++ {
		diag[i] = op.a[i*n+i]
	}
	pre := PreconditionerFunc(func(r, z []float64) {
		for i := range r {
			z[i] = r[i] / diag[i]
		}
	})
	rng := rand.New(rand.NewSource(12))
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	x1, x2, r1, r2 := solvePair(t, op, pre, b, Options{RelTol: 1e-10, MaxIters: 400})
	if !r1.Converged || !r2.Converged {
		t.Fatalf("convergence classical=%v pipelined=%v", r1.Converged, r2.Converged)
	}
	if absInt(r1.Iterations-r2.Iterations) > 2 {
		t.Fatalf("iteration counts diverge: %d vs %d", r1.Iterations, r2.Iterations)
	}
	for i := range x1 {
		if math.Abs(x1[i]-x2[i]) > 1e-7 {
			t.Fatalf("solutions differ at %d: %v vs %v", i, x1[i], x2[i])
		}
	}
}

// Restarts re-seed the recurrence (true residual + fresh setup reduction);
// the restarted pipelined solver must still converge.
func TestPipelinedRestarts(t *testing.T) {
	n := 80
	op := randDominant(n, 13)
	rng := rand.New(rand.NewSource(14))
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	x := make([]float64, n)
	var g GMRES
	res, err := g.Solve(op, nil, b, x, Options{Restart: 5, MaxIters: 2000, RelTol: 1e-8, Pipelined: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("restarted pipelined gmres failed: %+v", res)
	}
	bn := 0.0
	for _, v := range b {
		bn += v * v
	}
	if r := residual(op, b, x); r > 1e-6*math.Sqrt(bn) {
		t.Fatalf("true residual %v", r)
	}
}

// ZeroGuess with x = 0 must be bit-identical to the explicit initial
// residual (A·0 = 0 exactly), for both variants.
func TestZeroGuessBitIdentical(t *testing.T) {
	n := 50
	op := randDominant(n, 15)
	rng := rand.New(rand.NewSource(16))
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	for _, pip := range []bool{false, true} {
		xa := make([]float64, n)
		xb := make([]float64, n)
		var ga, gb GMRES
		ra, err := ga.Solve(op, nil, b, xa, Options{RelTol: 1e-10, MaxIters: 300, Pipelined: pip})
		if err != nil {
			t.Fatal(err)
		}
		rb, err := gb.Solve(op, nil, b, xb, Options{RelTol: 1e-10, MaxIters: 300, Pipelined: pip, ZeroGuess: true})
		if err != nil {
			t.Fatal(err)
		}
		if ra.Iterations != rb.Iterations || ra.RNorm != rb.RNorm {
			t.Fatalf("pipelined=%v: ZeroGuess changed the trajectory: %+v vs %+v", pip, ra, rb)
		}
		for i := range xa {
			if xa[i] != xb[i] {
				t.Fatalf("pipelined=%v: x[%d] %v vs %v", pip, i, xa[i], xb[i])
			}
		}
	}
}

// noBatchOps is a Vectors without DotBatch: Options.Pipelined must fall
// back to the classical path rather than fail.
type noBatchOps struct{}

func (noBatchOps) Dot(x, y []float64) float64 { return vecop.Seq.Dot(x, y) }
func (noBatchOps) Norm2(x []float64) float64  { return vecop.Seq.Norm2(x) }
func (noBatchOps) AXPY(a float64, x, y []float64) {
	vecop.Seq.AXPY(a, x, y)
}
func (noBatchOps) WAXPY(w []float64, a float64, x, y []float64) {
	vecop.Seq.WAXPY(w, a, x, y)
}
func (noBatchOps) Scale(a float64, x []float64) { vecop.Seq.Scale(a, x) }
func (noBatchOps) Copy(dst, src []float64)      { vecop.Seq.Copy(dst, src) }
func (noBatchOps) Set(a float64, x []float64)   { vecop.Seq.Set(a, x) }
func (noBatchOps) MAXPY(y []float64, alphas []float64, xs [][]float64) {
	vecop.Seq.MAXPY(y, alphas, xs)
}
func (noBatchOps) MDot(x []float64, ys [][]float64, dots []float64) {
	vecop.Seq.MDot(x, ys, dots)
}

func TestPipelinedFallsBackWithoutBatcher(t *testing.T) {
	n := 40
	op := randDominant(n, 17)
	rng := rand.New(rand.NewSource(18))
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	x := make([]float64, n)
	g := GMRES{Ops: noBatchOps{}}
	res, err := g.Solve(op, nil, b, x, Options{RelTol: 1e-10, MaxIters: 300, Pipelined: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("fallback did not converge: %+v", res)
	}
}

// normCheckOp wraps an operator and records the worst relative error of the
// caller-supplied norm against the true ||x||.
type normCheckOp struct {
	inner    Operator
	calls    int
	worstRel float64
}

func (o *normCheckOp) Apply(x, y []float64) { o.inner.Apply(x, y) }

func (o *normCheckOp) ApplyWithNorm(x, y []float64, xnorm float64) {
	truth := vecop.Seq.Norm2(x)
	if truth > 0 {
		if rel := math.Abs(xnorm-truth) / truth; rel > o.worstRel {
			o.worstRel = rel
		}
	}
	o.calls++
	o.inner.Apply(x, y)
}

// The lag-normalized norms handed to a NormedOperator must track the true
// basis-vector norms to high accuracy — that is what makes them usable as
// the JFNK differencing norm.
func TestPipelinedLaggedNormAccuracy(t *testing.T) {
	n := 70
	op := &normCheckOp{inner: randDominant(n, 19)}
	rng := rand.New(rand.NewSource(20))
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	x := make([]float64, n)
	var g GMRES
	res, err := g.Solve(op, nil, b, x, Options{RelTol: 1e-10, MaxIters: 300, Pipelined: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("%+v", res)
	}
	if op.calls == 0 {
		t.Fatal("ApplyWithNorm was never used")
	}
	if op.worstRel > 1e-8 {
		t.Fatalf("lagged norm drifted: worst relative error %v", op.worstRel)
	}
	t.Logf("%d lag-normalized matvecs, worst relative norm error %.2e", op.calls, op.worstRel)
}

// The golden conformance bound: at the linear level (no JFNK differencing
// noise) the pipelined residual trajectory must track classical GMRES to
// 1e-10 relative at every iteration, not just at convergence.
func TestPipelinedTrajectoryConformance(t *testing.T) {
	n := 70
	op := randDominant(n, 23)
	rng := rand.New(rand.NewSource(24))
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	for iters := 1; iters <= 14; iters++ {
		x1 := make([]float64, n)
		x2 := make([]float64, n)
		var g1, g2 GMRES
		opt := Options{RelTol: 1e-30, MaxIters: iters}
		r1, err := g1.Solve(op, nil, b, x1, opt)
		if err != nil {
			t.Fatal(err)
		}
		opt.Pipelined = true
		r2, err := g2.Solve(op, nil, b, x2, opt)
		if err != nil {
			t.Fatal(err)
		}
		if rel := math.Abs(r1.RNorm-r2.RNorm) / r1.RNorm0; rel > 1e-10 {
			t.Fatalf("iteration %d: estimated residuals diverge: %v vs %v (rel %.2e)",
				iters, r1.RNorm, r2.RNorm, rel)
		}
		t1 := residual(op, b, x1)
		t2 := residual(op, b, x2)
		if rel := math.Abs(t1-t2) / r1.RNorm0; rel > 1e-10 {
			t.Fatalf("iteration %d: true residuals diverge: %v vs %v (rel %.2e)",
				iters, t1, t2, rel)
		}
	}
}
