package krylov

import (
	"math"
	"math/rand"
	"testing"
)

func TestFGMRESMatchesGMRESWithFixedPre(t *testing.T) {
	n := 60
	op := randDominant(n, 50)
	rng := rand.New(rand.NewSource(51))
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	// Fixed diagonal preconditioner.
	diag := make([]float64, n)
	for i := range diag {
		diag[i] = 1 / op.a[i*n+i]
	}
	pre := PreconditionerFunc(func(r, z []float64) {
		for i := range r {
			z[i] = diag[i] * r[i]
		}
	})

	xg := make([]float64, n)
	var g GMRES
	rg, err := g.Solve(op, pre, b, xg, Options{RelTol: 1e-10, MaxIters: 300})
	if err != nil {
		t.Fatal(err)
	}
	xf := make([]float64, n)
	var f FGMRES
	rf, err := f.Solve(op, pre, b, xf, Options{RelTol: 1e-10, MaxIters: 300})
	if err != nil {
		t.Fatal(err)
	}
	if !rg.Converged || !rf.Converged {
		t.Fatalf("convergence: %v %v", rg.Converged, rf.Converged)
	}
	// With a FIXED preconditioner, FGMRES builds the same Krylov space.
	if abs(rg.Iterations-rf.Iterations) > 1 {
		t.Fatalf("iteration counts: gmres %d vs fgmres %d", rg.Iterations, rf.Iterations)
	}
	for i := range xg {
		if math.Abs(xg[i]-xf[i]) > 1e-6 {
			t.Fatalf("solutions differ at %d", i)
		}
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// The hierarchical configuration: FGMRES outer, inner GMRES as the
// (variable) preconditioner. Plain GMRES is NOT guaranteed to converge
// with a variable preconditioner; FGMRES is.
func TestFGMRESNestedKrylov(t *testing.T) {
	n := 80
	op := randDominant(n, 52)
	rng := rand.New(rand.NewSource(53))
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	inner := &InnerPreconditioner{A: op, Iters: 4}

	x := make([]float64, n)
	var f FGMRES
	res, err := f.Solve(op, inner, b, x, Options{RelTol: 1e-8, MaxIters: 200})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("nested krylov failed: %+v", res)
	}
	if r := residual(op, b, x); r > 1e-6*res.RNorm0 {
		t.Fatalf("true residual %v", r)
	}

	// The nested preconditioner should reduce OUTER iterations versus
	// unpreconditioned FGMRES.
	x2 := make([]float64, n)
	var f2 FGMRES
	res2, err := f2.Solve(op, nil, b, x2, Options{RelTol: 1e-8, MaxIters: 400})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Converged && res.Iterations >= res2.Iterations {
		t.Fatalf("inner krylov did not reduce outer iterations: %d vs %d",
			res.Iterations, res2.Iterations)
	}
	t.Logf("outer iterations: nested=%d plain=%d", res.Iterations, res2.Iterations)
}

func TestFGMRESRestartsAndFusedNorms(t *testing.T) {
	n := 70
	op := randDominant(n, 54)
	rng := rand.New(rand.NewSource(55))
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	for _, fused := range []bool{false, true} {
		x := make([]float64, n)
		var f FGMRES
		res, err := f.Solve(op, nil, b, x, Options{
			Restart: 7, MaxIters: 2000, RelTol: 1e-8, FusedNorms: fused,
		})
		if err != nil {
			t.Fatalf("fused=%v: %v", fused, err)
		}
		if !res.Converged {
			t.Fatalf("fused=%v: not converged %+v", fused, res)
		}
	}
}

func TestFGMRESZeroRHSAndIdentity(t *testing.T) {
	op := OperatorFunc(func(x, y []float64) { copy(y, x) })
	b := make([]float64, 5)
	x := make([]float64, 5)
	var f FGMRES
	res, err := f.Solve(op, nil, b, x, Options{})
	if err != nil || !res.Converged || res.Iterations != 0 {
		t.Fatalf("zero rhs: %+v err=%v", res, err)
	}
	for i := range b {
		b[i] = float64(i + 1)
	}
	res, err = f.Solve(op, nil, b, x, Options{})
	if err != nil || !res.Converged || res.Iterations > 1 {
		t.Fatalf("identity: %+v err=%v", res, err)
	}
}
