package krylov

import (
	"math"
	"math/rand"
	"testing"

	"fun3d/internal/mesh"
	"fun3d/internal/par"
	"fun3d/internal/sparse"
	"fun3d/internal/vecop"
)

// denseOp is a dense test operator.
type denseOp struct {
	n int
	a []float64
}

func (d *denseOp) Apply(x, y []float64) {
	for i := 0; i < d.n; i++ {
		s := 0.0
		for j := 0; j < d.n; j++ {
			s += d.a[i*d.n+j] * x[j]
		}
		y[i] = s
	}
}

func randDominant(n int, seed int64) *denseOp {
	rng := rand.New(rand.NewSource(seed))
	a := make([]float64, n*n)
	for i := 0; i < n; i++ {
		row := 0.0
		for j := 0; j < n; j++ {
			a[i*n+j] = rng.NormFloat64()
			row += math.Abs(a[i*n+j])
		}
		a[i*n+i] += row + 1
	}
	return &denseOp{n: n, a: a}
}

func residual(op Operator, b, x []float64) float64 {
	n := len(b)
	y := make([]float64, n)
	op.Apply(x, y)
	s := 0.0
	for i := range y {
		d := b[i] - y[i]
		s += d * d
	}
	return math.Sqrt(s)
}

func TestGMRESDense(t *testing.T) {
	n := 60
	op := randDominant(n, 1)
	rng := rand.New(rand.NewSource(2))
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	x := make([]float64, n)
	var g GMRES
	res, err := g.Solve(op, nil, b, x, Options{Restart: 30, MaxIters: 300, RelTol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("not converged: %+v", res)
	}
	bn := 0.0
	for _, v := range b {
		bn += v * v
	}
	if r := residual(op, b, x); r > 1e-8*math.Sqrt(bn) {
		t.Fatalf("true residual %v", r)
	}
}

func TestGMRESIdentity(t *testing.T) {
	n := 10
	op := OperatorFunc(func(x, y []float64) { copy(y, x) })
	b := make([]float64, n)
	for i := range b {
		b[i] = float64(i + 1)
	}
	x := make([]float64, n)
	var g GMRES
	res, err := g.Solve(op, nil, b, x, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || res.Iterations > 1 {
		t.Fatalf("identity should converge in 1 iter: %+v", res)
	}
	for i := range x {
		if math.Abs(x[i]-b[i]) > 1e-10 {
			t.Fatalf("x[%d]=%v", i, x[i])
		}
	}
}

func TestGMRESZeroRHS(t *testing.T) {
	op := randDominant(8, 3)
	b := make([]float64, 8)
	x := make([]float64, 8)
	var g GMRES
	res, err := g.Solve(op, nil, b, x, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || res.Iterations != 0 {
		t.Fatalf("zero rhs: %+v", res)
	}
}

func TestGMRESNonzeroInitialGuess(t *testing.T) {
	n := 40
	op := randDominant(n, 4)
	rng := rand.New(rand.NewSource(5))
	xTrue := make([]float64, n)
	for i := range xTrue {
		xTrue[i] = rng.NormFloat64()
	}
	b := make([]float64, n)
	op.Apply(xTrue, b)
	x := make([]float64, n)
	copy(x, xTrue)
	for i := range x {
		x[i] += 0.01 * rng.NormFloat64()
	}
	var g GMRES
	res, err := g.Solve(op, nil, b, x, Options{RelTol: 1e-12, MaxIters: 500})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("%+v", res)
	}
	for i := range x {
		if math.Abs(x[i]-xTrue[i]) > 1e-6 {
			t.Fatalf("x[%d] error %v", i, x[i]-xTrue[i])
		}
	}
}

// GMRES with restarts must still converge (restart smaller than needed).
func TestGMRESRestarts(t *testing.T) {
	n := 80
	op := randDominant(n, 6)
	rng := rand.New(rand.NewSource(7))
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	x := make([]float64, n)
	var g GMRES
	res, err := g.Solve(op, nil, b, x, Options{Restart: 5, MaxIters: 2000, RelTol: 1e-8})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("restarted gmres failed: %+v", res)
	}
}

// ILU-preconditioned GMRES on a mesh-structured BSR system must converge
// much faster than unpreconditioned — the paper's "make-or-break" claim.
func TestGMRESWithILUPreconditioner(t *testing.T) {
	m, err := mesh.Generate(mesh.SpecTiny())
	if err != nil {
		t.Fatal(err)
	}
	a := sparse.NewBSRFromAdj(m.AdjPtr, m.Adj)
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < a.N; i++ {
		rowSum := 0.0
		for k := a.Ptr[i]; k < a.Ptr[i+1]; k++ {
			blk := a.Block(k)
			for t2 := range blk {
				blk[t2] = rng.NormFloat64() * 0.3
				rowSum += math.Abs(blk[t2])
			}
		}
		d := a.Block(a.Diag[i])
		for t2 := 0; t2 < 4; t2++ {
			d[t2*4+t2] += rowSum*0.3 + 1
		}
	}
	pat, _ := sparse.SymbolicILU(a, 0)
	f, _ := sparse.NewFactorPattern(pat)
	if err := f.FactorizeILU(a); err != nil {
		t.Fatal(err)
	}
	n := a.N * 4
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	op := OperatorFunc(func(x, y []float64) { a.MulVec(x, y) })
	pre := PreconditionerFunc(func(r, z []float64) { f.Solve(r, z) })

	var g1, g2 GMRES
	x1 := make([]float64, n)
	r1, err := g1.Solve(op, nil, b, x1, Options{Restart: 30, MaxIters: 600, RelTol: 1e-8})
	if err != nil {
		t.Fatal(err)
	}
	x2 := make([]float64, n)
	r2, err := g2.Solve(op, pre, b, x2, Options{Restart: 30, MaxIters: 600, RelTol: 1e-8})
	if err != nil {
		t.Fatal(err)
	}
	if !r2.Converged {
		t.Fatalf("preconditioned gmres failed: %+v", r2)
	}
	if r1.Converged && r2.Iterations >= r1.Iterations {
		t.Fatalf("ILU did not help: %d vs %d iters", r2.Iterations, r1.Iterations)
	}
	t.Logf("unpreconditioned: %d iters (conv=%v), ILU: %d iters",
		r1.Iterations, r1.Converged, r2.Iterations)
}

// Parallel vecops must not change convergence behaviour materially.
func TestGMRESParallelOps(t *testing.T) {
	n := 64
	op := randDominant(n, 9)
	rng := rand.New(rand.NewSource(10))
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	p := par.NewPool(4)
	defer p.Close()
	g := GMRES{Ops: vecop.Ops{Pool: p}}
	x := make([]float64, n)
	res, err := g.Solve(op, nil, b, x, Options{RelTol: 1e-10, MaxIters: 400})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("%+v", res)
	}
	bn := 0.0
	for _, v := range b {
		bn += v * v
	}
	if r := residual(op, b, x); r > 1e-7*math.Sqrt(bn) {
		t.Fatalf("true residual %v", r)
	}
}

// Singular operator: zero matrix never converges; must report it.
func TestGMRESSingular(t *testing.T) {
	op := OperatorFunc(func(x, y []float64) {
		for i := range y {
			y[i] = 0
		}
	})
	b := []float64{1, 2, 3}
	x := make([]float64, 3)
	var g GMRES
	res, err := g.Solve(op, nil, b, x, Options{MaxIters: 10})
	if err == nil && res.Converged {
		t.Fatal("converged on singular operator")
	}
}

// Workspace reuse across solves of the same size must stay correct.
func TestGMRESWorkspaceReuse(t *testing.T) {
	n := 30
	var g GMRES
	for trial := 0; trial < 3; trial++ {
		op := randDominant(n, int64(11+trial))
		rng := rand.New(rand.NewSource(int64(20 + trial)))
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		x := make([]float64, n)
		res, err := g.Solve(op, nil, b, x, Options{RelTol: 1e-10, MaxIters: 200})
		if err != nil || !res.Converged {
			t.Fatalf("trial %d: %+v err=%v", trial, res, err)
		}
	}
}

// FusedNorms must converge to the same solution with the same iteration
// count (the fused norm is algebraically equivalent modulo rounding).
func TestGMRESFusedNorms(t *testing.T) {
	n := 80
	op := randDominant(n, 21)
	rng := rand.New(rand.NewSource(22))
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	solve := func(fused bool) ([]float64, Result) {
		g := GMRES{Ops: vecop.Seq}
		x := make([]float64, n)
		res, err := g.Solve(op, nil, b, x, Options{RelTol: 1e-10, MaxIters: 400, FusedNorms: fused})
		if err != nil {
			t.Fatal(err)
		}
		return x, res
	}
	x1, r1 := solve(false)
	x2, r2 := solve(true)
	if !r1.Converged || !r2.Converged {
		t.Fatalf("convergence: %v %v", r1.Converged, r2.Converged)
	}
	if absInt(r1.Iterations-r2.Iterations) > 2 {
		t.Fatalf("iteration counts diverge: %d vs %d", r1.Iterations, r2.Iterations)
	}
	for i := range x1 {
		if math.Abs(x1[i]-x2[i]) > 1e-7 {
			t.Fatalf("solutions differ at %d: %v vs %v", i, x1[i], x2[i])
		}
	}
}

func absInt(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
