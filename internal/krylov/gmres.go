// Package krylov implements the restarted GMRES solver of the
// Newton-Krylov-Schwarz stack, right-preconditioned and matrix-free-ready:
// the operator is an interface, so the solver works equally with an
// assembled BSR matrix or a finite-difference Jacobian-vector product (the
// paper relies "directly on matrix-free Jacobian-vector product operations").
//
// Orthogonalization is classical Gram-Schmidt via VecMDot/VecMAXPY — the
// PETSc primitives the paper singles out in its Amdahl analysis — with a
// single iterative refinement pass for stability.
package krylov

import (
	"errors"
	"fmt"
	"math"

	"fun3d/internal/prof"
	"fun3d/internal/vecop"
)

// Operator applies y = A x.
type Operator interface {
	Apply(x, y []float64)
}

// Preconditioner applies z = M^{-1} r. Identity (nil) is allowed in Solve.
type Preconditioner interface {
	Apply(r, z []float64)
}

// OperatorFunc adapts a function to Operator.
type OperatorFunc func(x, y []float64)

// Apply implements Operator.
func (f OperatorFunc) Apply(x, y []float64) { f(x, y) }

// PreconditionerFunc adapts a function to Preconditioner.
type PreconditionerFunc func(r, z []float64)

// Apply implements Preconditioner.
func (f PreconditionerFunc) Apply(r, z []float64) { f(r, z) }

// NormFuser is an optional extension of Vectors: MDotNorm computes the
// inner products AND ||x||₂ in one fused reduction (a single Allreduce in
// the distributed implementation). Required for Options.FusedNorms.
type NormFuser interface {
	MDotNorm(x []float64, ys [][]float64, dots []float64) float64
}

// DotPair names one inner product of a batched reduction; vecop owns the
// type so both vector backends can implement BatchedReducer without an
// import cycle.
type DotPair = vecop.DotPair

// BatchedReducer is the full batching extension of NormFuser: DotBatch
// evaluates every pair's global inner product in ONE fused reduction — a
// single Allreduce in the distributed implementation, a single sweep in
// shared memory. It is what lets the pipelined GMRES variant pack the CGS
// projection dots, ||w||², and the lag-normalization Gram terms into one
// collective per inner iteration. Required for Options.Pipelined
// (vecop.Ops and mpisim's distributed ops both satisfy it).
type BatchedReducer interface {
	DotBatch(pairs []DotPair, out []float64)
}

// NormedOperator is an optional extension of Operator: ApplyWithNorm is
// Apply with ||x||₂ supplied by the caller. Matrix-free JFNK operators need
// the input norm for the differencing parameter and otherwise recompute it
// per matvec — a hidden Allreduce in the distributed implementation. The
// pipelined GMRES variant tracks the exact norm of every Krylov direction
// by recurrence (lag-normalization) and passes it in, so the happy-path
// matvec issues no collective at all.
type NormedOperator interface {
	Operator
	ApplyWithNorm(x, y []float64, xnorm float64)
}

// Vectors abstracts the vector primitives GMRES needs, so the same solver
// runs shared-memory (vecop.Ops) and distributed (mpisim's rank-local ops
// with Allreduce-backed reductions). vecop.Ops satisfies it.
type Vectors interface {
	Dot(x, y []float64) float64
	Norm2(x []float64) float64
	AXPY(a float64, x, y []float64)
	WAXPY(w []float64, a float64, x, y []float64)
	Scale(a float64, x []float64)
	Copy(dst, src []float64)
	Set(a float64, x []float64)
	MAXPY(y []float64, alphas []float64, xs [][]float64)
	MDot(x []float64, ys [][]float64, dots []float64)
}

// Options configures a GMRES solve.
type Options struct {
	Restart  int     // Krylov dimension per cycle (default 30, PETSc's default)
	MaxIters int     // total iteration cap (default 10*Restart)
	RelTol   float64 // ||r||/||b|| target (default 1e-5)
	AbsTol   float64 // absolute ||r|| target (default 1e-50)

	// FusedNorms enables the communication-reducing orthogonalization the
	// paper points to as future work (Ghysels et al.-style latency
	// hiding): the Arnoldi vector's norm is obtained from the same fused
	// reduction as the refinement inner products via the Pythagorean
	// identity ||w - V d||² = ||w||² - Σ d², cutting the global
	// reductions per iteration from 3 to 2. Numerically safe alongside
	// the refinement pass; falls back to an explicit norm if cancellation
	// is detected.
	FusedNorms bool

	// Pipelined selects the communication-avoiding GMRES variant: single-
	// pass CGS with the projection dots, ||w||², and the lag-normalization
	// terms batched into ONE reduction per inner iteration (see
	// solvePipelined). Requires Ops to implement BatchedReducer — vecop.Ops
	// and the distributed ops do; otherwise the classical path runs.
	// Supersedes FusedNorms when set. FGMRES ignores it.
	Pipelined bool

	// ZeroGuess promises the initial guess x is exactly all-zero, so the
	// solver takes r = b without applying the operator (the inverse of
	// PETSc's KSPSetInitialGuessNonzero). Bit-identical to the explicit
	// r = b - A·0 path for the operators used here, and it saves one
	// matvec per solve — distributed, a JFNK matvec plus its hidden norm
	// collective. The Newton callers always solve from dq = 0.
	ZeroGuess bool
}

func (o *Options) defaults() {
	if o.Restart <= 0 {
		o.Restart = 30
	}
	if o.MaxIters <= 0 {
		o.MaxIters = 10 * o.Restart
	}
	if o.RelTol <= 0 {
		o.RelTol = 1e-5
	}
	if o.AbsTol <= 0 {
		o.AbsTol = 1e-50
	}
}

// Result reports a solve's outcome.
type Result struct {
	Iterations int
	Converged  bool
	RNorm0     float64 // initial (unpreconditioned) residual norm
	RNorm      float64 // final residual norm estimate
}

// ErrBreakdown indicates a lucky or unlucky Arnoldi breakdown with a
// non-converged residual.
var ErrBreakdown = errors.New("krylov: arnoldi breakdown")

// GMRES holds reusable workspace for repeated solves of the same size.
// The zero value works; workspace grows on first use.
type GMRES struct {
	// Ops provides the vector primitives; nil defaults to sequential
	// shared-memory ops.
	Ops Vectors

	// Met, when non-nil, receives the GMRESIters counter and a coarse
	// VecElems estimate per iteration (callers owning Met must not also
	// count iterations, or they double).
	Met *prof.Metrics

	v     [][]float64 // Krylov basis, Restart+1 vectors
	w, z  []float64
	h     []float64 // Hessenberg, (Restart+1) x Restart column-major by row
	cs    []float64
	sn    []float64
	gamma []float64
	y     []float64
	dots  []float64

	pip pipelined // extra workspace of the pipelined variant
}

func (g *GMRES) ensure(n, m int) {
	if len(g.v) < m+1 || (len(g.v) > 0 && len(g.v[0]) != n) {
		g.v = make([][]float64, m+1)
		for i := range g.v {
			g.v[i] = make([]float64, n)
		}
		g.w = make([]float64, n)
		g.z = make([]float64, n)
	}
	if len(g.h) < (m+1)*m {
		g.h = make([]float64, (m+1)*m)
		g.cs = make([]float64, m)
		g.sn = make([]float64, m)
		g.gamma = make([]float64, m+1)
		g.y = make([]float64, m)
		g.dots = make([]float64, m+1)
	}
}

// Solve runs right-preconditioned restarted GMRES on A x = b, starting from
// the initial guess in x (overwritten with the solution). M may be nil.
func (g *GMRES) Solve(a Operator, m Preconditioner, b, x []float64, opt Options) (Result, error) {
	opt.defaults()
	if g.Ops == nil {
		g.Ops = vecop.Seq
	}
	if opt.Pipelined {
		if br, ok := g.Ops.(BatchedReducer); ok {
			return g.solvePipelined(a, m, b, x, opt, br)
		}
		// The backend cannot batch; the classical path below is the
		// correct (if chattier) fallback.
	}
	n := len(b)
	g.ensure(n, opt.Restart)
	ops := g.Ops

	res := Result{}
	r := g.v[0] // initial residual lives in v[0]

	// r = b - A x.
	if opt.ZeroGuess {
		ops.Copy(r, b)
	} else {
		a.Apply(x, g.w)
		ops.WAXPY(r, -1, g.w, b)
	}
	rnorm := ops.Norm2(r)
	res.RNorm0 = rnorm
	res.RNorm = rnorm
	target := math.Max(opt.RelTol*rnorm, opt.AbsTol)
	if rnorm <= target || rnorm == 0 {
		res.Converged = true
		return res, nil
	}

	for res.Iterations < opt.MaxIters {
		// Start a cycle: v0 = r/||r||.
		ops.Scale(1/rnorm, r)
		g.gamma[0] = rnorm
		for i := 1; i <= opt.Restart; i++ {
			g.gamma[i] = 0
		}
		k := 0
		for ; k < opt.Restart && res.Iterations < opt.MaxIters; k++ {
			// w = A M^{-1} v_k
			if m != nil {
				m.Apply(g.v[k], g.z)
				a.Apply(g.z, g.w)
			} else {
				a.Apply(g.v[k], g.w)
			}
			// Classical Gram-Schmidt with one refinement pass.
			basis := g.v[:k+1]
			dots := g.dots[:k+1]
			ops.MDot(g.w, basis, dots)
			for j := 0; j <= k; j++ {
				g.h[j*opt.Restart+k] = dots[j]
				dots[j] = -dots[j]
			}
			ops.MAXPY(g.w, dots, basis)

			// Refinement pass; with FusedNorms the norm of w rides in the
			// same reduction and the corrected norm follows from
			// ||w - V d||² = ||w||² - Σ d² (V orthonormal, d tiny).
			var hk1 float64
			nf, canFuse := ops.(NormFuser)
			if opt.FusedNorms && canFuse {
				wNorm := nf.MDotNorm(g.w, basis, dots)
				sumsq := 0.0
				for j := 0; j <= k; j++ {
					g.h[j*opt.Restart+k] += dots[j]
					sumsq += dots[j] * dots[j]
					dots[j] = -dots[j]
				}
				ops.MAXPY(g.w, dots, basis)
				rem := wNorm*wNorm - sumsq
				if rem > 1e-4*wNorm*wNorm {
					hk1 = math.Sqrt(rem)
				} else {
					hk1 = ops.Norm2(g.w) // cancellation fallback
				}
			} else {
				ops.MDot(g.w, basis, dots)
				for j := 0; j <= k; j++ {
					g.h[j*opt.Restart+k] += dots[j]
					dots[j] = -dots[j]
				}
				ops.MAXPY(g.w, dots, basis)
				hk1 = ops.Norm2(g.w)
			}
			res.Iterations++
			g.Met.Inc(prof.GMRESIters, 1)
			// Coarse vector-traffic estimate: CGS + refinement touch the
			// k+1-vector basis four times (2 MDot + 2 MAXPY) plus w/norm.
			g.Met.Inc(prof.VecElems, int64((4*(k+1)+2)*n))

			// Apply accumulated Givens rotations to the new column.
			hcol := func(j int) *float64 { return &g.h[j*opt.Restart+k] }
			for j := 0; j < k; j++ {
				hj, hj1 := *hcol(j), *hcol(j + 1)
				*hcol(j) = g.cs[j]*hj + g.sn[j]*hj1
				*hcol(j + 1) = -g.sn[j]*hj + g.cs[j]*hj1
			}
			if hk1 <= 1e-300 {
				// Happy breakdown: the Krylov space is A-invariant; the
				// rotated column is already upper triangular. Solve with
				// the current k+1 equations and return.
				k++
				if err := g.finishCycle(m, x, k, opt.Restart); err != nil {
					return res, err
				}
				res.RNorm = math.Abs(g.gamma[k])
				res.Converged = res.RNorm <= target
				if !res.Converged {
					return res, fmt.Errorf("%w at iteration %d", ErrBreakdown, res.Iterations)
				}
				return res, nil
			}
			ops.Copy(g.v[k+1], g.w)
			ops.Scale(1/hk1, g.v[k+1])

			// New rotation to eliminate hk1.
			hk := *hcol(k)
			den := math.Hypot(hk, hk1)
			g.cs[k] = hk / den
			g.sn[k] = hk1 / den
			*hcol(k) = den
			g.gamma[k+1] = -g.sn[k] * g.gamma[k]
			g.gamma[k] = g.cs[k] * g.gamma[k]

			res.RNorm = math.Abs(g.gamma[k+1])
			if res.RNorm <= target {
				k++
				break
			}
		}
		if err := g.finishCycle(m, x, k, opt.Restart); err != nil {
			return res, err
		}
		if res.RNorm <= target {
			res.Converged = true
			return res, nil
		}
		// Compute the true residual for the restart.
		a.Apply(x, g.w)
		r = g.v[0]
		ops.WAXPY(r, -1, g.w, b)
		rnorm = ops.Norm2(r)
		res.RNorm = rnorm
		if rnorm <= target {
			res.Converged = true
			return res, nil
		}
	}
	return res, nil
}

// finishCycle solves the small least-squares system and updates x:
// x += M^{-1} (V y).
func (g *GMRES) finishCycle(m Preconditioner, x []float64, k, restart int) error {
	if k == 0 {
		return nil
	}
	// Back-substitute the triangular H (already rotated) for y.
	for i := k - 1; i >= 0; i-- {
		s := g.gamma[i]
		for j := i + 1; j < k; j++ {
			s -= g.h[i*restart+j] * g.y[j]
		}
		d := g.h[i*restart+i]
		if d == 0 {
			return ErrBreakdown
		}
		g.y[i] = s / d
	}
	// w = V y (accumulate), then x += M^{-1} w.
	ops := g.Ops
	ops.Set(0, g.w)
	ops.MAXPY(g.w, g.y[:k], g.v[:k])
	if m != nil {
		m.Apply(g.w, g.z)
		ops.AXPY(1, g.z, x)
	} else {
		ops.AXPY(1, g.w, x)
	}
	return nil
}
