package export

import (
	"bytes"
	"fmt"
	"path/filepath"
	"strings"
	"testing"

	"fun3d/internal/mesh"
)

func TestVTKOutput(t *testing.T) {
	m, err := mesh.Generate(mesh.SpecTiny())
	if err != nil {
		t.Fatal(err)
	}
	q := make([]float64, m.NumVertices()*4)
	for v := 0; v < m.NumVertices(); v++ {
		q[v*4] = float64(v)
	}
	var buf bytes.Buffer
	if err := VTK(&buf, m, q); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"# vtk DataFile", "UNSTRUCTURED_GRID", "POINTS", "CELLS", "CELL_TYPES", "SCALARS pressure", "VECTORS velocity"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in VTK output", want)
		}
	}
	// Counts consistent.
	lines := strings.Split(out, "\n")
	nPoints := 0
	for i, l := range lines {
		if strings.HasPrefix(l, "POINTS") {
			var n int
			if _, err := fmt.Sscanf(l, "POINTS %d double", &n); err != nil {
				t.Fatal(err)
			}
			nPoints = n
			_ = i
		}
	}
	if nPoints != m.NumVertices() {
		t.Fatalf("points %d != %d", nPoints, m.NumVertices())
	}
	// nil state is allowed.
	buf.Reset()
	if err := VTK(&buf, m, nil); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "POINT_DATA") {
		t.Fatal("nil state should omit point data")
	}
	// wrong length rejected
	if err := VTK(&buf, m, make([]float64, 3)); err == nil {
		t.Fatal("bad state length accepted")
	}
}

func TestVTKFile(t *testing.T) {
	m, err := mesh.Generate(mesh.SpecTiny())
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "out.vtk")
	if err := VTKFile(path, m, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCSVWriters(t *testing.T) {
	var buf bytes.Buffer
	if err := SurfaceCSV(&buf, []Sample{{1, 2, 3, -0.5}}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "1,2,3,-0.5") {
		t.Fatalf("surface csv: %q", buf.String())
	}
	buf.Reset()
	if err := HistoryCSV(&buf, []HistoryRow{{1, 0.5, 10, 7}}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "1,0.5,10,7") {
		t.Fatalf("history csv: %q", buf.String())
	}
}
