// Package export writes solutions in exchange formats: legacy-ASCII VTK
// unstructured grids (loadable in ParaView/VisIt) and CSV tables for the
// surface distribution and convergence histories.
package export

import (
	"bufio"
	"fmt"
	"io"
	"os"

	"fun3d/internal/mesh"
)

// VTK writes the mesh and the state q (AoS, nv*4: p,u,v,w) as a legacy
// ASCII VTK unstructured grid with point data.
func VTK(w io.Writer, m *mesh.Mesh, q []float64) error {
	nv := m.NumVertices()
	if q != nil && len(q) != nv*4 {
		return fmt.Errorf("export: state length %d != %d", len(q), nv*4)
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "# vtk DataFile Version 3.0")
	fmt.Fprintln(bw, "fun3d-go solution")
	fmt.Fprintln(bw, "ASCII")
	fmt.Fprintln(bw, "DATASET UNSTRUCTURED_GRID")
	fmt.Fprintf(bw, "POINTS %d double\n", nv)
	for _, c := range m.Coords {
		fmt.Fprintf(bw, "%g %g %g\n", c.X, c.Y, c.Z)
	}
	nt := len(m.Tets)
	fmt.Fprintf(bw, "CELLS %d %d\n", nt, nt*5)
	for _, t := range m.Tets {
		fmt.Fprintf(bw, "4 %d %d %d %d\n", t[0], t[1], t[2], t[3])
	}
	fmt.Fprintf(bw, "CELL_TYPES %d\n", nt)
	for range m.Tets {
		fmt.Fprintln(bw, "10") // VTK_TETRA
	}
	if q != nil {
		fmt.Fprintf(bw, "POINT_DATA %d\n", nv)
		fmt.Fprintln(bw, "SCALARS pressure double 1")
		fmt.Fprintln(bw, "LOOKUP_TABLE default")
		for v := 0; v < nv; v++ {
			fmt.Fprintf(bw, "%g\n", q[v*4])
		}
		fmt.Fprintln(bw, "VECTORS velocity double")
		for v := 0; v < nv; v++ {
			fmt.Fprintf(bw, "%g %g %g\n", q[v*4+1], q[v*4+2], q[v*4+3])
		}
	}
	return bw.Flush()
}

// VTKFile writes VTK output to a file path.
func VTKFile(path string, m *mesh.Mesh, q []float64) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := VTK(f, m, q); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// SurfaceCSV writes wall-vertex samples as "x,y,z,cp" rows.
func SurfaceCSV(w io.Writer, samples []Sample) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "x,y,z,cp")
	for _, s := range samples {
		fmt.Fprintf(bw, "%g,%g,%g,%g\n", s.X, s.Y, s.Z, s.Cp)
	}
	return bw.Flush()
}

// Sample mirrors core.SurfaceSample without importing core (avoids a
// dependency cycle; core users convert trivially).
type Sample struct {
	X, Y, Z, Cp float64
}

// HistoryCSV writes a convergence history as "step,rnorm,cfl,iters" rows.
func HistoryCSV(w io.Writer, steps []HistoryRow) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "step,rnorm,cfl,linear_iters")
	for _, s := range steps {
		fmt.Fprintf(bw, "%d,%g,%g,%d\n", s.Step, s.RNorm, s.CFL, s.LinearIters)
	}
	return bw.Flush()
}

// HistoryRow is one convergence-history record.
type HistoryRow struct {
	Step        int
	RNorm, CFL  float64
	LinearIters int
}
