package sparse

import (
	"fun3d/internal/par"
)

// LevelSchedule is the barrier-based parallel schedule for the sparse
// recurrences: rows grouped into wavefronts ("levels") of the dependency
// DAG; rows within one level are independent and execute in parallel, with
// a barrier between levels. The paper's strategy (1) for TRSV and ILU.
type LevelSchedule struct {
	// Forward-solve levels (dependencies j < i in the pattern).
	FwdOrder   []int32
	FwdOffsets []int32
	// Backward-solve levels (dependencies j > i).
	BwdOrder   []int32
	BwdOffsets []int32
}

// NewLevelSchedule builds wavefront levels for both sweeps of the factor
// pattern m.
func NewLevelSchedule(m *BSR) *LevelSchedule {
	s := &LevelSchedule{}
	s.FwdOrder, s.FwdOffsets = buildLevels(m, true)
	s.BwdOrder, s.BwdOffsets = buildLevels(m, false)
	return s
}

// buildLevels computes level[i] = 1 + max(level of deps) and buckets rows.
func buildLevels(m *BSR, forward bool) (order, offsets []int32) {
	n := m.N
	level := make([]int32, n)
	maxLevel := int32(0)
	if forward {
		for i := 0; i < n; i++ {
			lv := int32(0)
			for k := m.Ptr[i]; k < m.Diag[i]; k++ {
				if l := level[m.Col[k]] + 1; l > lv {
					lv = l
				}
			}
			level[i] = lv
			if lv > maxLevel {
				maxLevel = lv
			}
		}
	} else {
		for i := n - 1; i >= 0; i-- {
			lv := int32(0)
			for k := m.Diag[i] + 1; k < m.Ptr[i+1]; k++ {
				if l := level[m.Col[k]] + 1; l > lv {
					lv = l
				}
			}
			level[i] = lv
			if lv > maxLevel {
				maxLevel = lv
			}
		}
	}
	nl := int(maxLevel) + 1
	counts := make([]int32, nl+1)
	for i := 0; i < n; i++ {
		counts[level[i]+1]++
	}
	for l := 0; l < nl; l++ {
		counts[l+1] += counts[l]
	}
	order = make([]int32, n)
	fill := make([]int32, nl)
	if forward {
		for i := 0; i < n; i++ {
			l := level[i]
			order[counts[l]+fill[l]] = int32(i)
			fill[l]++
		}
	} else {
		for i := n - 1; i >= 0; i-- {
			l := level[i]
			order[counts[l]+fill[l]] = int32(i)
			fill[l]++
		}
	}
	return order, counts
}

// NumLevels returns the forward level count (the paper's "number of
// wave-fronts", which bounds the available parallelism).
func (s *LevelSchedule) NumLevels() int { return len(s.FwdOffsets) - 1 }

// SolveLevel performs x = U^{-1} L^{-1} b in parallel using barrier-
// synchronized level scheduling. Identical results to Factor.Solve.
func (f *Factor) SolveLevel(p *par.Pool, s *LevelSchedule, b, x []float64) {
	m := f.M
	n := m.N
	if n == 0 {
		return
	}
	if &b[0] != &x[0] {
		copy(x[:n*B], b[:n*B])
	}
	nw := p.Size()
	bar := par.NewBarrier(nw)
	p.Run(func(tid int) {
		var sense uint32
		// Forward sweep, level by level.
		for l := 0; l+1 < len(s.FwdOffsets); l++ {
			lo, hi := int(s.FwdOffsets[l]), int(s.FwdOffsets[l+1])
			clo, chi := par.Chunk(hi-lo, nw, tid)
			for t := lo + clo; t < lo+chi; t++ {
				f.fwdRow(s.FwdOrder[t], x)
			}
			bar.Wait(&sense)
		}
		// Backward sweep.
		for l := 0; l+1 < len(s.BwdOffsets); l++ {
			lo, hi := int(s.BwdOffsets[l]), int(s.BwdOffsets[l+1])
			clo, chi := par.Chunk(hi-lo, nw, tid)
			for t := lo + clo; t < lo+chi; t++ {
				f.bwdRow(s.BwdOrder[t], x)
			}
			bar.Wait(&sense)
		}
	})
}

// FactorizeILULevel computes the ILU factorization in parallel with
// barrier-synchronized level scheduling (rows of one level eliminate
// concurrently; their dependency rows are complete by construction).
func (f *Factor) FactorizeILULevel(p *par.Pool, s *LevelSchedule, a *BSR) error {
	if err := f.copyValues(a); err != nil {
		return err
	}
	nw := p.Size()
	bar := par.NewBarrier(nw)
	errs := make([]error, nw)
	p.Run(func(tid int) {
		var sense uint32
		for l := 0; l+1 < len(s.FwdOffsets); l++ {
			lo, hi := int(s.FwdOffsets[l]), int(s.FwdOffsets[l+1])
			clo, chi := par.Chunk(hi-lo, nw, tid)
			for t := lo + clo; t < lo+chi; t++ {
				if err := f.factorRow(s.FwdOrder[t]); err != nil && errs[tid] == nil {
					errs[tid] = err
				}
			}
			bar.Wait(&sense)
		}
	})
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	f.refreshDedup()
	return nil
}

// LevelSizes returns the number of rows in each forward level — the
// paper's load-imbalance diagnostic ("amount of work with successive levels
// tends to decrease drastically").
func (s *LevelSchedule) LevelSizes() []int {
	sizes := make([]int, s.NumLevels())
	for l := range sizes {
		sizes[l] = int(s.FwdOffsets[l+1] - s.FwdOffsets[l])
	}
	return sizes
}
