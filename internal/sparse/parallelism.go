package sparse

// DAGParallelism measures the available parallelism of the forward-solve
// dependency DAG of pattern m, defined as in the paper (§III.B): the ratio
// of total floating-point work to the cumulative work along the longest
// dependency path. Work per row is its block count (each block is one 4x4
// gemv, a fixed flop count, so blocks are a faithful flop proxy).
//
// This is the number Table II reports: 248X for ILU-0 vs 60X for ILU-1 on
// Mesh-C — fill-in shrinks it drastically.
func DAGParallelism(m *BSR) float64 {
	n := m.N
	var total int64
	cp := make([]int64, n) // critical-path work ending at row i
	var maxCP int64
	for i := 0; i < n; i++ {
		work := int64(m.Ptr[i+1] - m.Ptr[i])
		total += work
		longest := int64(0)
		for k := m.Ptr[i]; k < m.Diag[i]; k++ {
			if c := cp[m.Col[k]]; c > longest {
				longest = c
			}
		}
		cp[i] = longest + work
		if cp[i] > maxCP {
			maxCP = cp[i]
		}
	}
	if maxCP == 0 {
		return 0
	}
	return float64(total) / float64(maxCP)
}

// CriticalPathLevels returns the number of wavefronts in the forward DAG
// (equals LevelSchedule.NumLevels without building the full schedule).
func CriticalPathLevels(m *BSR) int {
	n := m.N
	level := make([]int32, n)
	maxL := int32(0)
	for i := 0; i < n; i++ {
		lv := int32(0)
		for k := m.Ptr[i]; k < m.Diag[i]; k++ {
			if l := level[m.Col[k]] + 1; l > lv {
				lv = l
			}
		}
		level[i] = lv
		if lv > maxL {
			maxL = lv
		}
	}
	return int(maxL) + 1
}
