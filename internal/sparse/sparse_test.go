package sparse

import (
	"math"
	"math/rand"
	"testing"

	"fun3d/internal/blas4"
	"fun3d/internal/mesh"
	"fun3d/internal/par"
)

// testMatrix builds a block-diagonally-dominant BSR on the tiny wing mesh
// adjacency — the same structure as the solver's Jacobian.
func testMatrix(t testing.TB, seed int64) *BSR {
	m, err := mesh.Generate(mesh.SpecTiny())
	if err != nil {
		t.Fatal(err)
	}
	a := NewBSRFromAdj(m.AdjPtr, m.Adj)
	fillDominant(a, seed)
	return a
}

// fillDominant fills a with random off-diagonal blocks and strongly
// dominant diagonal blocks, guaranteeing a stable ILU.
func fillDominant(a *BSR, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < a.N; i++ {
		rowSum := 0.0
		for k := a.Ptr[i]; k < a.Ptr[i+1]; k++ {
			blk := a.Block(k)
			for t := range blk {
				blk[t] = rng.NormFloat64() * 0.1
				rowSum += math.Abs(blk[t])
			}
		}
		d := a.Block(a.Diag[i])
		blas4.AddDiag(d, rowSum+1)
	}
}

func randVec(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}

func maxAbsDiff(a, b []float64) float64 {
	m := 0.0
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

func TestBSRFromAdjPattern(t *testing.T) {
	// 3-vertex path: 0-1-2.
	adjPtr := []int32{0, 1, 3, 4}
	adj := []int32{1, 0, 2, 1}
	a := NewBSRFromAdj(adjPtr, adj)
	if a.N != 3 || a.NNZBlocks() != 7 {
		t.Fatalf("n=%d nnz=%d", a.N, a.NNZBlocks())
	}
	for i := int32(0); i < 3; i++ {
		if a.Col[a.Diag[i]] != i {
			t.Fatalf("diag of row %d misplaced", i)
		}
		if a.BlockAt(i, i) != a.Diag[i] {
			t.Fatal("BlockAt disagrees with Diag")
		}
	}
	if a.BlockAt(0, 2) != -1 {
		t.Fatal("phantom entry")
	}
	// columns ascending per row
	for i := 0; i < a.N; i++ {
		for k := a.Ptr[i] + 1; k < a.Ptr[i+1]; k++ {
			if a.Col[k] <= a.Col[k-1] {
				t.Fatal("row not sorted")
			}
		}
	}
}

func TestBSRFromPatternErrors(t *testing.T) {
	if _, err := NewBSRFromPattern([][]int32{{0, 1}, {0}}); err == nil {
		t.Fatal("missing diagonal accepted")
	}
	if _, err := NewBSRFromPattern([][]int32{{0, 0}}); err == nil {
		t.Fatal("duplicate accepted")
	}
	if _, err := NewBSRFromPattern([][]int32{{0, 5}}); err == nil {
		t.Fatal("out of range accepted")
	}
}

func TestMulVecAgainstDense(t *testing.T) {
	a := testMatrix(t, 1)
	n := a.N * B
	x := randVec(n, 2)
	y := make([]float64, n)
	a.MulVec(x, y)
	d := a.Dense()
	want := make([]float64, n)
	for i := 0; i < n; i++ {
		s := 0.0
		for j := 0; j < n; j++ {
			s += d[i*n+j] * x[j]
		}
		want[i] = s
	}
	if diff := maxAbsDiff(y, want); diff > 1e-10 {
		t.Fatalf("MulVec vs dense: %v", diff)
	}
}

func TestMulVecParMatchesSeq(t *testing.T) {
	a := testMatrix(t, 3)
	p := par.NewPool(4)
	defer p.Close()
	n := a.N * B
	x := randVec(n, 4)
	y1 := make([]float64, n)
	y2 := make([]float64, n)
	a.MulVec(x, y1)
	a.MulVecPar(p, x, y2)
	if diff := maxAbsDiff(y1, y2); diff != 0 {
		t.Fatalf("parallel SpMV differs: %v", diff)
	}
}

// ILU(0) on a block-tridiagonal matrix has no fill, so it equals the exact
// LU factorization and Solve is a direct solver.
func TestILU0ExactOnTridiagonal(t *testing.T) {
	n := 20
	rows := make([][]int32, n)
	for i := 0; i < n; i++ {
		r := []int32{int32(i)}
		if i > 0 {
			r = append(r, int32(i-1))
		}
		if i < n-1 {
			r = append(r, int32(i+1))
		}
		rows[i] = r
	}
	a, err := NewBSRFromPattern(rows)
	if err != nil {
		t.Fatal(err)
	}
	fillDominant(a, 5)
	pat, err := SymbolicILU(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	f, err := NewFactorPattern(pat)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.FactorizeILU(a); err != nil {
		t.Fatal(err)
	}
	// Solve A x = b and check the residual.
	xTrue := randVec(n*B, 6)
	b := make([]float64, n*B)
	a.MulVec(xTrue, b)
	x := make([]float64, n*B)
	f.Solve(b, x)
	if diff := maxAbsDiff(x, xTrue); diff > 1e-8 {
		t.Fatalf("tridiagonal ILU0 not exact: %v", diff)
	}
}

// On a general mesh pattern, ILU(0) is only approximate, but the
// preconditioned residual must shrink substantially for a dominant matrix.
func TestILU0Preconditions(t *testing.T) {
	a := testMatrix(t, 7)
	pat, _ := SymbolicILU(a, 0)
	f, err := NewFactorPattern(pat)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.FactorizeILU(a); err != nil {
		t.Fatal(err)
	}
	n := a.N * B
	xTrue := randVec(n, 8)
	b := make([]float64, n)
	a.MulVec(xTrue, b)
	x := make([]float64, n)
	f.Solve(b, x)
	// ||x - xTrue|| should be much smaller than ||xTrue|| for a dominant A.
	num, den := 0.0, 0.0
	for i := range x {
		num += (x[i] - xTrue[i]) * (x[i] - xTrue[i])
		den += xTrue[i] * xTrue[i]
	}
	rel := math.Sqrt(num / den)
	if rel > 0.5 {
		t.Fatalf("ILU0 relative error %v too large", rel)
	}
}

func TestILUFullWorkspaceIdentical(t *testing.T) {
	a := testMatrix(t, 9)
	pat, _ := SymbolicILU(a, 0)
	f1, _ := NewFactorPattern(pat)
	f2, _ := NewFactorPattern(pat)
	if err := f1.FactorizeILU(a); err != nil {
		t.Fatal(err)
	}
	if err := f2.FactorizeILUFullWorkspace(a); err != nil {
		t.Fatal(err)
	}
	if diff := maxAbsDiff(f1.M.Val, f2.M.Val); diff != 0 {
		t.Fatalf("workspace variants differ: %v", diff)
	}
}

// ILU(k) fill monotonicity and improvement: more fill => pattern superset,
// better approximation.
func TestILUkFillAndAccuracy(t *testing.T) {
	a := testMatrix(t, 10)
	var prevNNZ int
	var prevErr float64 = math.Inf(1)
	for _, lev := range []int{0, 1, 2} {
		pat, err := SymbolicILU(a, lev)
		if err != nil {
			t.Fatal(err)
		}
		f, err := NewFactorPattern(pat)
		if err != nil {
			t.Fatal(err)
		}
		if f.M.NNZBlocks() < prevNNZ {
			t.Fatalf("ILU(%d) has fewer nonzeros than ILU(%d)", lev, lev-1)
		}
		prevNNZ = f.M.NNZBlocks()
		if err := f.FactorizeILU(a); err != nil {
			t.Fatal(err)
		}
		n := a.N * B
		xTrue := randVec(n, 11)
		b := make([]float64, n)
		a.MulVec(xTrue, b)
		x := make([]float64, n)
		f.Solve(b, x)
		num, den := 0.0, 0.0
		for i := range x {
			num += (x[i] - xTrue[i]) * (x[i] - xTrue[i])
			den += xTrue[i] * xTrue[i]
		}
		rel := math.Sqrt(num / den)
		if rel > prevErr*1.5 {
			t.Fatalf("ILU(%d) error %v much worse than previous %v", lev, rel, prevErr)
		}
		if rel < prevErr {
			prevErr = rel
		}
		t.Logf("ILU(%d): nnz=%d relerr=%.3e parallelism=%.1f",
			lev, f.M.NNZBlocks(), rel, DAGParallelism(f.M))
	}
}

// The paper's Table II premise: fill-in reduces available parallelism.
func TestFillReducesParallelism(t *testing.T) {
	a := testMatrix(t, 12)
	pat0, _ := SymbolicILU(a, 0)
	pat1, _ := SymbolicILU(a, 1)
	f0, _ := NewFactorPattern(pat0)
	f1, _ := NewFactorPattern(pat1)
	p0 := DAGParallelism(f0.M)
	p1 := DAGParallelism(f1.M)
	if p1 >= p0 {
		t.Fatalf("ILU-1 parallelism %v >= ILU-0 %v", p1, p0)
	}
	if CriticalPathLevels(f1.M) <= CriticalPathLevels(f0.M) {
		t.Fatalf("ILU-1 levels should exceed ILU-0")
	}
}

func TestDAGParallelismDiagonal(t *testing.T) {
	rows := [][]int32{{0}, {1}, {2}, {3}}
	a, _ := NewBSRFromPattern(rows)
	if p := DAGParallelism(a); p != 4 {
		t.Fatalf("diagonal parallelism %v, want 4", p)
	}
	if CriticalPathLevels(a) != 1 {
		t.Fatal("diagonal should have 1 level")
	}
}

// Level-scheduled and P2P solves must agree with the sequential solve
// bit-for-bit (same operations, same order per row).
func TestParallelSolversMatchSequential(t *testing.T) {
	a := testMatrix(t, 13)
	for _, lev := range []int{0, 1} {
		pat, _ := SymbolicILU(a, lev)
		f, _ := NewFactorPattern(pat)
		if err := f.FactorizeILU(a); err != nil {
			t.Fatal(err)
		}
		n := a.N * B
		b := randVec(n, 14)
		want := make([]float64, n)
		f.Solve(b, want)

		for _, nw := range []int{1, 2, 4, 7} {
			p := par.NewPool(nw)
			ls := NewLevelSchedule(f.M)
			got := make([]float64, n)
			f.SolveLevel(p, ls, b, got)
			if diff := maxAbsDiff(got, want); diff != 0 {
				t.Fatalf("ILU(%d) nw=%d: level solve differs by %v", lev, nw, diff)
			}
			ps := NewP2PSchedule(f.M, nw)
			got2 := make([]float64, n)
			f.SolveP2P(p, ps, b, got2)
			if diff := maxAbsDiff(got2, want); diff != 0 {
				t.Fatalf("ILU(%d) nw=%d: p2p solve differs by %v", lev, nw, diff)
			}
			p.Close()
		}
	}
}

// Parallel factorizations must agree with sequential factorization
// bit-for-bit.
func TestParallelFactorizationsMatchSequential(t *testing.T) {
	a := testMatrix(t, 15)
	for _, lev := range []int{0, 1} {
		pat, _ := SymbolicILU(a, lev)
		fSeq, _ := NewFactorPattern(pat)
		if err := fSeq.FactorizeILU(a); err != nil {
			t.Fatal(err)
		}
		for _, nw := range []int{2, 5} {
			p := par.NewPool(nw)
			fLvl, _ := NewFactorPattern(pat)
			ls := NewLevelSchedule(fLvl.M)
			if err := fLvl.FactorizeILULevel(p, ls, a); err != nil {
				t.Fatal(err)
			}
			if diff := maxAbsDiff(fLvl.M.Val, fSeq.M.Val); diff != 0 {
				t.Fatalf("ILU(%d) nw=%d: level factorization differs by %v", lev, nw, diff)
			}
			fP2P, _ := NewFactorPattern(pat)
			ps := NewP2PSchedule(fP2P.M, nw)
			if err := fP2P.FactorizeILUP2P(p, ps, a); err != nil {
				t.Fatal(err)
			}
			if diff := maxAbsDiff(fP2P.M.Val, fSeq.M.Val); diff != 0 {
				t.Fatalf("ILU(%d) nw=%d: p2p factorization differs by %v", lev, nw, diff)
			}
			p.Close()
		}
	}
}

// P2P sparsification must produce far fewer waits than raw cross-thread
// dependencies.
func TestP2PSparsification(t *testing.T) {
	a := testMatrix(t, 16)
	pat, _ := SymbolicILU(a, 0)
	f, _ := NewFactorPattern(pat)
	nw := 8
	s := NewP2PSchedule(f.M, nw)
	// Count raw cross-thread forward dependencies.
	raw := 0
	owner := make([]int32, f.M.N)
	for t2 := 0; t2 < nw; t2++ {
		for i := s.start[t2]; i < s.start[t2+1]; i++ {
			owner[i] = int32(t2)
		}
	}
	for i := int32(0); i < int32(f.M.N); i++ {
		for k := f.M.Ptr[i]; k < f.M.Diag[i]; k++ {
			if owner[f.M.Col[k]] != owner[i] {
				raw++
			}
		}
	}
	if s.NumWaits() >= raw {
		t.Fatalf("sparsification ineffective: %d waits vs %d raw deps", s.NumWaits(), raw)
	}
	t.Logf("raw cross deps=%d, sparsified waits=%d (%.1f%%)",
		raw, s.NumWaits(), 100*float64(s.NumWaits())/float64(raw))
}

func TestNNZBalancedChunks(t *testing.T) {
	a := testMatrix(t, 17)
	for _, nw := range []int{1, 3, 8} {
		start := nnzBalancedChunks(a, nw)
		if start[0] != 0 || start[nw] != int32(a.N) {
			t.Fatalf("bad sentinels %v", start)
		}
		var maxNNZ, totNNZ int64
		for t2 := 0; t2 < nw; t2++ {
			if start[t2] > start[t2+1] {
				t.Fatalf("non-monotone chunks %v", start)
			}
			nnz := int64(a.Ptr[start[t2+1]] - a.Ptr[start[t2]])
			totNNZ += nnz
			if nnz > maxNNZ {
				maxNNZ = nnz
			}
		}
		if float64(maxNNZ) > 1.3*float64(totNNZ)/float64(nw) {
			t.Fatalf("nw=%d: chunk imbalance max=%d total=%d", nw, maxNNZ, totNNZ)
		}
	}
}

func TestLevelSizesDecrease(t *testing.T) {
	a := testMatrix(t, 18)
	pat, _ := SymbolicILU(a, 0)
	f, _ := NewFactorPattern(pat)
	ls := NewLevelSchedule(f.M)
	sizes := ls.LevelSizes()
	if len(sizes) < 2 {
		t.Fatalf("suspiciously few levels: %v", sizes)
	}
	total := 0
	for _, s := range sizes {
		total += s
	}
	if total != a.N {
		t.Fatalf("level sizes sum %d != %d", total, a.N)
	}
}

func TestAddToDiagAndSetIdentity(t *testing.T) {
	a := testMatrix(t, 19)
	v0 := a.Block(a.Diag[0])[0]
	a.AddToDiag(2.5)
	if a.Block(a.Diag[0])[0] != v0+2.5 {
		t.Fatal("AddToDiag")
	}
	a.SetIdentity()
	d := a.Block(a.Diag[3])
	if d[0] != 1 || d[1] != 0 || d[5] != 1 {
		t.Fatal("SetIdentity")
	}
}

func TestSymbolicILUNegativeLevel(t *testing.T) {
	a := testMatrix(t, 20)
	if _, err := SymbolicILU(a, -1); err == nil {
		t.Fatal("negative level accepted")
	}
}

func TestFactorSizeMismatch(t *testing.T) {
	a := testMatrix(t, 21)
	small, _ := NewBSRFromPattern([][]int32{{0}})
	f := &Factor{M: small}
	if err := f.FactorizeILU(a); err == nil {
		t.Fatal("size mismatch accepted")
	}
}

func TestSingularDiagonalDetected(t *testing.T) {
	rows := [][]int32{{0, 1}, {0, 1}}
	a, _ := NewBSRFromPattern(rows)
	// leave everything zero: diagonal blocks singular
	pat, _ := SymbolicILU(a, 0)
	f, _ := NewFactorPattern(pat)
	if err := f.FactorizeILU(a); err == nil {
		t.Fatal("singular diag not detected")
	}
}

func TestSolveInPlace(t *testing.T) {
	a := testMatrix(t, 22)
	pat, _ := SymbolicILU(a, 0)
	f, _ := NewFactorPattern(pat)
	if err := f.FactorizeILU(a); err != nil {
		t.Fatal(err)
	}
	n := a.N * B
	b := randVec(n, 23)
	want := make([]float64, n)
	f.Solve(b, want)
	x := append([]float64(nil), b...)
	f.Solve(x, x) // aliased
	if diff := maxAbsDiff(x, want); diff != 0 {
		t.Fatalf("in-place solve differs: %v", diff)
	}
}

func TestClone(t *testing.T) {
	a := testMatrix(t, 24)
	c := a.Clone()
	c.Val[0] = 999
	if a.Val[0] == 999 {
		t.Fatal("clone shares storage")
	}
}

// Property: ILU(k) patterns are nested — every entry of level k appears in
// level k+1.
func TestILUPatternNestedProperty(t *testing.T) {
	a := testMatrix(t, 30)
	prev, err := SymbolicILU(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	for lev := 1; lev <= 2; lev++ {
		cur, err := SymbolicILU(a, lev)
		if err != nil {
			t.Fatal(err)
		}
		for i := range prev {
			set := map[int32]bool{}
			for _, c := range cur[i] {
				set[c] = true
			}
			for _, c := range prev[i] {
				if !set[c] {
					t.Fatalf("level %d row %d lost column %d", lev, i, c)
				}
			}
		}
		prev = cur
	}
}

// Rows of every symbolic pattern are sorted and contain the diagonal.
func TestSymbolicILURowInvariants(t *testing.T) {
	a := testMatrix(t, 31)
	for _, lev := range []int{0, 1, 2} {
		rows, err := SymbolicILU(a, lev)
		if err != nil {
			t.Fatal(err)
		}
		for i, r := range rows {
			hasDiag := false
			for k, c := range r {
				if k > 0 && r[k-1] >= c {
					t.Fatalf("level %d row %d not strictly sorted", lev, i)
				}
				if int(c) == i {
					hasDiag = true
				}
			}
			if !hasDiag {
				t.Fatalf("level %d row %d missing diagonal", lev, i)
			}
		}
	}
}
