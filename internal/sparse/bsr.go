// Package sparse implements the block-sparse linear algebra substrate of
// the solver: BSR (block compressed sparse row) matrices with 4x4 blocks —
// the layout the paper credits with coalesced loads and reduced index
// arithmetic — block ILU(0)/ILU(k) factorization, block triangular solves,
// and the two parallel scheduling strategies the paper evaluates for the
// sparse narrow-band recurrences: level scheduling with barriers and
// P2P-sparsified point-to-point synchronization (Park et al., ISC'14).
package sparse

import (
	"fmt"
	"sort"

	"fun3d/internal/blas4"
	"fun3d/internal/par"
)

// B is the block size (4 unknowns per mesh vertex: p,u,v,w).
const B = blas4.B

// BB is the number of scalars per block.
const BB = blas4.BB

// BSR is a square block-sparse matrix with 4x4 blocks in CSR-of-blocks
// layout. Column indices within each row are strictly ascending and every
// row contains its diagonal block.
type BSR struct {
	N    int       // block rows
	Ptr  []int32   // len N+1
	Col  []int32   // len Ptr[N], ascending per row
	Val  []float64 // len Ptr[N]*BB, blocks row-major
	Diag []int32   // Diag[i] = index into Col/blocks of row i's diagonal
}

// NewBSRFromAdj builds a zero-valued BSR whose pattern is the mesh
// adjacency plus the diagonal: exactly the sparsity of the first-order
// Jacobian of an edge-based scheme. adjPtr/adj must have sorted rows.
func NewBSRFromAdj(adjPtr, adj []int32) *BSR {
	n := len(adjPtr) - 1
	ptr := make([]int32, n+1)
	for i := 0; i < n; i++ {
		ptr[i+1] = ptr[i] + (adjPtr[i+1] - adjPtr[i]) + 1 // +1 diagonal
	}
	col := make([]int32, ptr[n])
	diag := make([]int32, n)
	for i := 0; i < n; i++ {
		dst := ptr[i]
		placed := false
		for k := adjPtr[i]; k < adjPtr[i+1]; k++ {
			c := adj[k]
			if !placed && c > int32(i) {
				diag[i] = dst
				col[dst] = int32(i)
				dst++
				placed = true
			}
			col[dst] = c
			dst++
		}
		if !placed {
			diag[i] = dst
			col[dst] = int32(i)
			dst++
		}
	}
	return &BSR{N: n, Ptr: ptr, Col: col, Val: make([]float64, int(ptr[n])*BB), Diag: diag}
}

// NewBSRFromPattern builds a zero BSR from an explicit pattern given as a
// row-wise list of column indices (each row must include its diagonal; rows
// are sorted internally).
func NewBSRFromPattern(rows [][]int32) (*BSR, error) {
	n := len(rows)
	ptr := make([]int32, n+1)
	for i, r := range rows {
		ptr[i+1] = ptr[i] + int32(len(r))
	}
	col := make([]int32, ptr[n])
	diag := make([]int32, n)
	for i, r := range rows {
		rr := append([]int32(nil), r...)
		sort.Slice(rr, func(a, b int) bool { return rr[a] < rr[b] })
		found := false
		for k, c := range rr {
			if k > 0 && rr[k-1] == c {
				return nil, fmt.Errorf("sparse: duplicate column %d in row %d", c, i)
			}
			if c < 0 || int(c) >= n {
				return nil, fmt.Errorf("sparse: column %d out of range in row %d", c, i)
			}
			col[int(ptr[i])+k] = c
			if c == int32(i) {
				diag[i] = ptr[i] + int32(k)
				found = true
			}
		}
		if !found {
			return nil, fmt.Errorf("sparse: row %d lacks a diagonal entry", i)
		}
	}
	return &BSR{N: n, Ptr: ptr, Col: col, Val: make([]float64, int(ptr[n])*BB), Diag: diag}, nil
}

// NNZBlocks returns the number of stored blocks.
func (a *BSR) NNZBlocks() int { return len(a.Col) }

// Block returns the 4x4 block at storage slot k (a mutable slice view).
func (a *BSR) Block(k int32) []float64 { return a.Val[int(k)*BB : int(k)*BB+BB] }

// BlockAt returns the slot of block (i,j), or -1 if not in the pattern.
func (a *BSR) BlockAt(i, j int32) int32 {
	lo, hi := a.Ptr[i], a.Ptr[i+1]
	for lo < hi {
		mid := (lo + hi) / 2
		switch {
		case a.Col[mid] < j:
			lo = mid + 1
		case a.Col[mid] > j:
			hi = mid
		default:
			return mid
		}
	}
	return -1
}

// Zero clears all values.
func (a *BSR) Zero() {
	for i := range a.Val {
		a.Val[i] = 0
	}
}

// CloneStructure returns a matrix that SHARES a's index structure
// (Ptr/Col/Diag, read-only by convention) but owns a fresh zero value
// array. Concurrent solves over one mesh each assemble their own Jacobian
// values into a structure-shared clone, so the pattern — identical for
// every solve on the mesh — is stored and built once.
func (a *BSR) CloneStructure() *BSR {
	return &BSR{
		N:    a.N,
		Ptr:  a.Ptr,
		Col:  a.Col,
		Val:  make([]float64, len(a.Val)),
		Diag: a.Diag,
	}
}

// Clone returns a deep copy.
func (a *BSR) Clone() *BSR {
	return &BSR{
		N:    a.N,
		Ptr:  append([]int32(nil), a.Ptr...),
		Col:  append([]int32(nil), a.Col...),
		Val:  append([]float64(nil), a.Val...),
		Diag: append([]int32(nil), a.Diag...),
	}
}

// MulVec computes y = A*x sequentially. len(x) = len(y) = N*B.
func (a *BSR) MulVec(x, y []float64) {
	for i := 0; i < a.N; i++ {
		yi := y[i*B : i*B+B]
		yi[0], yi[1], yi[2], yi[3] = 0, 0, 0, 0
		for k := a.Ptr[i]; k < a.Ptr[i+1]; k++ {
			j := a.Col[k]
			blas4.GemvAdd(a.Block(k), x[int(j)*B:int(j)*B+B], yi)
		}
	}
}

// MulVecPar computes y = A*x using the pool (row-parallel, no races since
// each row writes its own y block).
func (a *BSR) MulVecPar(p *par.Pool, x, y []float64) {
	p.ParallelFor(a.N, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			yi := y[i*B : i*B+B]
			yi[0], yi[1], yi[2], yi[3] = 0, 0, 0, 0
			for k := a.Ptr[i]; k < a.Ptr[i+1]; k++ {
				j := a.Col[k]
				blas4.GemvAdd(a.Block(k), x[int(j)*B:int(j)*B+B], yi)
			}
		}
	})
}

// AddToDiag adds s to every scalar diagonal entry (used for the
// pseudo-transient V/Δt shift).
func (a *BSR) AddToDiag(s float64) {
	for i := 0; i < a.N; i++ {
		blas4.AddDiag(a.Block(a.Diag[i]), s)
	}
}

// SetIdentity writes the identity into the diagonal blocks (values
// elsewhere untouched).
func (a *BSR) SetIdentity() {
	for i := 0; i < a.N; i++ {
		b := a.Block(a.Diag[i])
		blas4.Zero(b)
		blas4.AddDiag(b, 1)
	}
}

// Dense expands the matrix into a dense (N*B)^2 row-major array; only for
// tests on tiny systems.
func (a *BSR) Dense() []float64 {
	n := a.N * B
	d := make([]float64, n*n)
	for i := 0; i < a.N; i++ {
		for k := a.Ptr[i]; k < a.Ptr[i+1]; k++ {
			j := int(a.Col[k])
			blk := a.Block(k)
			for r := 0; r < B; r++ {
				for c := 0; c < B; c++ {
					d[(i*B+r)*n+j*B+c] = blk[r*B+c]
				}
			}
		}
	}
	return d
}
