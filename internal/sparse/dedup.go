package sparse

import "math"

// DedupBSR is the content-deduplicated view of a BSR value store: each
// distinct 4x4 block is stored once in Uniq, and Slot maps every BSR slot
// to its unique block. Hashing is exact-bit (IEEE-754 bit patterns via
// math.Float64bits), so two blocks share storage only when every scalar is
// bit-identical — reading a block through the view returns exactly the
// bytes the dense store held, which is what makes deduplicated kernels
// bit-identical to their dense counterparts by construction.
//
// Edge-based Jacobians repeat blocks wherever geometry and state repeat
// (symmetric dual faces, graded-mesh regularity — the observation behind
// the repeated-block GEMM batching this package's solve kernels borrow),
// so the interesting quantity is Ratio: unique blocks over total slots.
//
// The view shares the source matrix's index structure (Ptr/Col/Diag) and
// does not retain its value array; it stays valid until the source values
// change, after which it must be rebuilt.
type DedupBSR struct {
	M    *BSR      // index structure of the source (values not referenced)
	Uniq []float64 // unique block store, NumUnique()*BB scalars
	Slot []int32   // per-slot index into Uniq, len NNZBlocks

	// RunEnd[k] is the exclusive end of the maximal run of consecutive
	// slots starting at or covering k that share Slot[k], clipped so runs
	// never cross a row boundary, the diagonal slot, or the slot after it.
	// The triangular-solve segments [Ptr[i],Diag[i]) and (Diag[i],Ptr[i+1])
	// can therefore iterate run-by-run (blas4.GemvSubN) without clipping.
	RunEnd []int32
}

// NewDedupBSR builds the deduplicated view of m's current values.
func NewDedupBSR(m *BSR) *DedupBSR {
	nb := m.NNZBlocks()
	d := &DedupBSR{
		M:      m,
		Slot:   make([]int32, nb),
		RunEnd: make([]int32, nb),
	}
	seen := make(map[[BB]uint64]int32, nb)
	var key [BB]uint64
	for k := 0; k < nb; k++ {
		blk := m.Val[k*BB : k*BB+BB]
		for t := 0; t < BB; t++ {
			key[t] = math.Float64bits(blk[t])
		}
		u, ok := seen[key]
		if !ok {
			u = int32(len(seen))
			seen[key] = u
			d.Uniq = append(d.Uniq, blk...)
		}
		d.Slot[k] = u
	}
	d.buildRuns()
	return d
}

// buildRuns fills RunEnd with segment-clipped maximal same-block runs.
func (d *DedupBSR) buildRuns() {
	m := d.M
	for i := 0; i < m.N; i++ {
		segs := [3][2]int32{
			{m.Ptr[i], m.Diag[i]},
			{m.Diag[i], m.Diag[i] + 1},
			{m.Diag[i] + 1, m.Ptr[i+1]},
		}
		for _, seg := range segs {
			for k := seg[0]; k < seg[1]; {
				e := k + 1
				for e < seg[1] && d.Slot[e] == d.Slot[k] {
					e++
				}
				for t := k; t < e; t++ {
					d.RunEnd[t] = e
				}
				k = e
			}
		}
	}
}

// Block returns slot k's 4x4 block from the unique store. The scalars are
// bit-identical to the dense store's at build time.
func (d *DedupBSR) Block(k int32) []float64 {
	u := d.Slot[k]
	return d.Uniq[u*BB : u*BB+BB]
}

// NumUnique returns the number of distinct blocks.
func (d *DedupBSR) NumUnique() int { return len(d.Uniq) / BB }

// Ratio returns unique blocks over total slots (1.0 = nothing repeated).
func (d *DedupBSR) Ratio() float64 {
	if len(d.Slot) == 0 {
		return 1
	}
	return float64(d.NumUnique()) / float64(len(d.Slot))
}

// ExpandInto writes the dense value array back out of the deduplicated
// store. val must have len NNZBlocks*BB. The round trip source -> view ->
// ExpandInto is bit-exact.
func (d *DedupBSR) ExpandInto(val []float64) {
	for k := range d.Slot {
		u := d.Slot[k]
		copy(val[k*BB:k*BB+BB], d.Uniq[u*BB:u*BB+BB])
	}
}

// StoreBytes is the modeled resident size of the deduplicated value store:
// the unique blocks plus one 4-byte slot index per block entry (the dense
// store is NNZBlocks*BB*8 bytes with no index).
func (d *DedupBSR) StoreBytes() int64 {
	return int64(d.NumUnique())*BB*8 + int64(len(d.Slot))*4
}
