package sparse

import (
	"fmt"
	"math/rand"
	"testing"

	"fun3d/internal/par"
)

// injectRepeats overwrites the off-diagonal blocks of a random subset of
// rows with one shared stamp block, planting exact-bit repeats (including
// consecutive slots, so run batching has runs longer than one to chew on).
func injectRepeats(rng *rand.Rand, a *BSR) {
	stamp := make([]float64, BB)
	for t := range stamp {
		stamp[t] = 0.05 * rng.NormFloat64()
	}
	for i := 0; i < a.N; i++ {
		if rng.Intn(2) == 0 {
			continue
		}
		for k := a.Ptr[i]; k < a.Ptr[i+1]; k++ {
			if k == a.Diag[i] {
				continue
			}
			copy(a.Block(k), stamp)
		}
	}
}

// TestDedupRoundTripProperty is the store property test: over random
// patterns and values with planted duplicates, the deduplicated view must
// reproduce the dense value array bit-for-bit, find strictly fewer unique
// blocks than slots when duplicates exist, and keep RunEnd runs within
// their row segment with a constant Slot value.
func TestDedupRoundTripProperty(t *testing.T) {
	trials := 20
	if testing.Short() {
		trials = 6
	}
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < trials; trial++ {
		n := 1 + rng.Intn(30)
		a, err := NewBSRFromPattern(randomPattern(rng, n, rng.Intn(4)))
		if err != nil {
			t.Fatal(err)
		}
		randomDiagDominant(rng, a)
		planted := rng.Intn(2) == 0
		if planted {
			injectRepeats(rng, a)
		}

		d := NewDedupBSR(a)
		// Round trip: expand back out and compare bit-for-bit, both through
		// ExpandInto and through per-slot Block reads.
		out := make([]float64, len(a.Val))
		d.ExpandInto(out)
		for i := range out {
			if out[i] != a.Val[i] {
				t.Fatalf("trial %d: ExpandInto[%d] = %v, dense %v", trial, i, out[i], a.Val[i])
			}
		}
		for k := int32(0); k < int32(a.NNZBlocks()); k++ {
			blk := d.Block(k)
			for t2 := 0; t2 < BB; t2++ {
				if blk[t2] != a.Val[int(k)*BB+t2] {
					t.Fatalf("trial %d: Block(%d)[%d] differs", trial, k, t2)
				}
			}
		}
		if d.NumUnique() > a.NNZBlocks() || d.Ratio() > 1 {
			t.Fatalf("trial %d: %d unique of %d blocks", trial, d.NumUnique(), a.NNZBlocks())
		}
		if d.StoreBytes() != int64(d.NumUnique())*BB*8+int64(a.NNZBlocks())*4 {
			t.Fatalf("trial %d: StoreBytes %d", trial, d.StoreBytes())
		}

		// RunEnd invariants: every run lies inside one of the row's three
		// solve segments and Slot is constant across it.
		for i := 0; i < a.N; i++ {
			segs := [3][2]int32{
				{a.Ptr[i], a.Diag[i]},
				{a.Diag[i], a.Diag[i] + 1},
				{a.Diag[i] + 1, a.Ptr[i+1]},
			}
			for _, seg := range segs {
				for k := seg[0]; k < seg[1]; k++ {
					e := d.RunEnd[k]
					if e <= k || e > seg[1] {
						t.Fatalf("trial %d: RunEnd[%d] = %d outside segment [%d,%d)", trial, k, e, seg[0], seg[1])
					}
					for j := k; j < e; j++ {
						if d.Slot[j] != d.Slot[k] {
							t.Fatalf("trial %d: run [%d,%d) mixes slots", trial, k, e)
						}
					}
				}
			}
		}
	}
}

// Duplicate blocks must collapse: two bit-identical stamps, one unique
// entry; a flipped sign or a NaN with a different payload must not.
func TestDedupExactBitSemantics(t *testing.T) {
	a, err := NewBSRFromPattern([][]int32{{0, 1, 2}, {0, 1, 2}, {0, 1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	for k := range a.Val {
		a.Val[k] = 0
	}
	for i := int32(0); i < 3; i++ {
		d := a.Block(a.Diag[i])
		for t2 := 0; t2 < B; t2++ {
			d[t2*B+t2] = 1
		}
	}
	// Every off-diagonal slot gets the same stamp; then one (row 2, col 0)
	// is changed only in the sign bit of a zero.
	stamp := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 0, 16}
	for i := int32(0); i < 3; i++ {
		for k := a.Ptr[i]; k < a.Ptr[i+1]; k++ {
			if k != a.Diag[i] {
				copy(a.Block(k), stamp)
			}
		}
	}
	neg := a.Block(a.Ptr[2]) // row 2, col 0 (diag of row 2 is slot Ptr[2]+2)
	neg[14] = negZero()

	d := NewDedupBSR(a)
	// 3 identity diagonals collapse to 1; 5 stamp copies collapse to 1; the
	// -0.0 variant stays distinct: 3 unique blocks of 9 slots.
	if got := d.NumUnique(); got != 3 {
		t.Fatalf("unique = %d, want 3 (identity, stamp, -0.0 variant)", got)
	}
	out := make([]float64, len(a.Val))
	d.ExpandInto(out)
	for i := range out {
		if out[i] != a.Val[i] {
			t.Fatalf("ExpandInto[%d] = %v, want %v", i, out[i], a.Val[i])
		}
	}
}

func negZero() float64 {
	z := 0.0
	return -z
}

// TestDedupFactorSolveConformance is the end-to-end conformance property:
// with dedup enabled, factorization and the triangular solves must match
// the dense-path results bit-for-bit across sequential, level-scheduled
// and P2P-scheduled execution, every worker count, and both fill levels.
// The deduplicated store holds exactly the dense bytes and the batched
// kernels preserve evaluation order, so tolerance is zero.
func TestDedupFactorSolveConformance(t *testing.T) {
	a := testMatrix(t, 21)
	// Plant exact repeats so the deduplicated path actually batches
	// multi-slot runs rather than degenerating to run length one.
	injectRepeats(rand.New(rand.NewSource(22)), a)
	fillDiagDominantInPlace(a)

	for _, lev := range []int{0, 1} {
		pat, err := SymbolicILU(a, lev)
		if err != nil {
			t.Fatal(err)
		}
		fDense, _ := NewFactorPattern(pat)
		if err := fDense.FactorizeILU(a); err != nil {
			t.Fatal(err)
		}
		n := a.N * B
		b := randVec(n, 23)
		want := make([]float64, n)
		fDense.Solve(b, want)

		fd, _ := NewFactorPattern(pat)
		fd.EnableDedup(true)
		if err := fd.FactorizeILU(a); err != nil {
			t.Fatal(err)
		}
		if diff := maxAbsDiff(fd.M.Val, fDense.M.Val); diff != 0 {
			t.Fatalf("ILU(%d): dedup sequential factorization differs by %v", lev, diff)
		}
		if fd.Dedup() == nil || fd.SourceDedup() == nil {
			t.Fatalf("ILU(%d): dedup views missing after factorization", lev)
		}
		if fd.SourceDedup().Ratio() >= 1 {
			t.Fatalf("ILU(%d): planted repeats not found (ratio %v)", lev, fd.SourceDedup().Ratio())
		}
		got := make([]float64, n)
		fd.Solve(b, got)
		if diff := maxAbsDiff(got, want); diff != 0 {
			t.Fatalf("ILU(%d): dedup sequential solve differs by %v", lev, diff)
		}

		for _, nw := range []int{1, 2, 4, 7} {
			t.Run(fmt.Sprintf("lev%d-nw%d", lev, nw), func(t *testing.T) {
				p := par.NewPool(nw)
				defer p.Close()

				fLvl, _ := NewFactorPattern(pat)
				fLvl.EnableDedup(true)
				ls := NewLevelSchedule(fLvl.M)
				if err := fLvl.FactorizeILULevel(p, ls, a); err != nil {
					t.Fatal(err)
				}
				if diff := maxAbsDiff(fLvl.M.Val, fDense.M.Val); diff != 0 {
					t.Fatalf("level factorization differs by %v", diff)
				}
				gotL := make([]float64, n)
				fLvl.SolveLevel(p, ls, b, gotL)
				if diff := maxAbsDiff(gotL, want); diff != 0 {
					t.Fatalf("level solve differs by %v", diff)
				}

				fP2P, _ := NewFactorPattern(pat)
				fP2P.EnableDedup(true)
				ps := NewP2PSchedule(fP2P.M, nw)
				if err := fP2P.FactorizeILUP2P(p, ps, a); err != nil {
					t.Fatal(err)
				}
				if diff := maxAbsDiff(fP2P.M.Val, fDense.M.Val); diff != 0 {
					t.Fatalf("p2p factorization differs by %v", diff)
				}
				gotP := make([]float64, n)
				fP2P.SolveP2P(p, ps, b, gotP)
				if diff := maxAbsDiff(gotP, want); diff != 0 {
					t.Fatalf("p2p solve differs by %v", diff)
				}
			})
		}
	}
}

// fillDiagDominantInPlace restores strong diagonal dominance after repeat
// injection without disturbing the planted off-diagonal stamps.
func fillDiagDominantInPlace(a *BSR) {
	for i := 0; i < a.N; i++ {
		d := a.Block(a.Diag[i])
		for t := 0; t < B; t++ {
			d[t*B+t] += 8
		}
	}
}

// EnableDedup(false) must drop the views and return the factor to the
// dense path; re-enabling rebuilds them on the next factorization.
func TestEnableDedupToggle(t *testing.T) {
	a := testMatrix(t, 27)
	pat, _ := SymbolicILU(a, 0)
	f, _ := NewFactorPattern(pat)
	f.EnableDedup(true)
	if err := f.FactorizeILU(a); err != nil {
		t.Fatal(err)
	}
	if f.Dedup() == nil || f.SourceDedup() == nil {
		t.Fatal("views missing with dedup enabled")
	}
	f.EnableDedup(false)
	if f.Dedup() != nil || f.SourceDedup() != nil {
		t.Fatal("views survived EnableDedup(false)")
	}
	if err := f.FactorizeILU(a); err != nil {
		t.Fatal(err)
	}
	if f.Dedup() != nil {
		t.Fatal("dense refactorization rebuilt a dedup view")
	}
}
