package sparse

import (
	"fmt"
	"sort"

	"fun3d/internal/blas4"
)

// Factor is a block ILU factorization stored as a single BSR holding the
// strictly-lower L (unit block diagonal, not stored), the strictly-upper U,
// and the *inverted* diagonal blocks of U — the PETSc-style layout the paper
// uses ("the diagonal blocks are additionally inverted within the ILU
// routine itself and then stored"), which turns the back-substitution's
// divisions into 4x4 gemvs.
type Factor struct {
	M *BSR

	// Precomputed elimination schedule (the compressed-workspace
	// optimization, resolved at symbolic time): for each sub-diagonal slot
	// s of the factor (a pivot application L_ik), updates
	// [updPtr[s], updPtr[s+1]) list the (source U_kj slot, destination
	// row-i slot) pairs, so the numeric factorization does no index
	// searches at all — PETSc's "stored in the order it is accessed".
	updPtr []int32
	updSrc []int32
	updDst []int32

	// Dedup mode (EnableDedup): after each numeric factorization the
	// factor values are content-deduplicated into dd, and the triangular
	// solves read blocks through it run-by-run (blas4.GemvSubN). srcDD is
	// the deduplicated view of the source Jacobian, rebuilt by copyValues
	// and read during value transfer; it also carries the source store's
	// unique-block ratio for the byte accounting. Both views hold bit-
	// identical scalars to the dense stores, so dedup mode never changes a
	// result bit.
	dedup bool
	dd    *DedupBSR
	srcDD *DedupBSR
}

// EnableDedup switches content-deduplicated stores on or off. The switch
// takes effect at the next factorization; disabling also drops the views.
func (f *Factor) EnableDedup(on bool) {
	f.dedup = on
	if !on {
		f.dd, f.srcDD = nil, nil
	}
}

// Dedup returns the deduplicated view of the factor values (nil until a
// factorization has run with dedup enabled).
func (f *Factor) Dedup() *DedupBSR { return f.dd }

// SourceDedup returns the deduplicated view of the source matrix values
// seen by the last copyValues (nil until then).
func (f *Factor) SourceDedup() *DedupBSR { return f.srcDD }

// SymbolicILU computes the ILU(level) fill pattern of a. Level 0 returns
// the pattern of a itself. For level k > 0, fill entries with level-of-fill
// <= k are added by the standard symbolic algorithm: processing rows in
// order, a fill entry (i,j) created via pivot k gets level
// lev(i,k)+lev(k,j)+1.
func SymbolicILU(a *BSR, level int) ([][]int32, error) {
	if level < 0 {
		return nil, fmt.Errorf("sparse: negative fill level %d", level)
	}
	n := a.N
	rows := make([][]int32, n)
	levs := make([][]int32, n)
	for i := 0; i < n; i++ {
		cols := append([]int32(nil), a.Col[a.Ptr[i]:a.Ptr[i+1]]...)
		lv := make([]int32, len(cols))
		if level > 0 {
			// Merge-based symbolic elimination on (cols, lv).
			cols, lv = symbolicRow(int32(i), cols, lv, rows, levs, int32(level))
		}
		rows[i], levs[i] = cols, lv
	}
	return rows, nil
}

// symbolicRow eliminates row i symbolically against all prior rows whose
// columns appear below the diagonal, tracking fill levels.
func symbolicRow(i int32, cols []int32, lv []int32, rows [][]int32, levs [][]int32, maxLev int32) ([]int32, []int32) {
	pos := map[int32]int32{} // col -> index in cols
	for k, c := range cols {
		pos[c] = int32(k)
	}
	// Process pivots k < i in ascending order; cols grows during the loop.
	for ki := 0; ki < len(cols); ki++ {
		// find the next unprocessed pivot: we must scan in ascending column
		// order, so sort the remaining prefix lazily.
		sortPrefix(cols, lv, ki)
		k := cols[ki]
		if k >= i {
			break
		}
		levIK := lv[ki]
		krow, klev := rows[k], levs[k]
		for t, j := range krow {
			if j <= k {
				continue
			}
			newLev := levIK + klev[t] + 1
			if newLev > maxLev {
				continue
			}
			if p, ok := pos[j]; ok {
				if newLev < lv[p] {
					lv[p] = newLev
				}
			} else {
				pos[j] = int32(len(cols))
				cols = append(cols, j)
				lv = append(lv, newLev)
			}
		}
	}
	sortPrefix(cols, lv, 0) // appended fill may be out of order past the break point
	return cols, lv
}

// sortPrefix keeps cols[from:] sorted ascending (parallel with lv).
func sortPrefix(cols, lv []int32, from int) {
	tail := cols[from:]
	tlv := lv[from:]
	sort.Sort(&colLevSorter{tail, tlv})
}

type colLevSorter struct {
	c, l []int32
}

func (s *colLevSorter) Len() int           { return len(s.c) }
func (s *colLevSorter) Less(i, j int) bool { return s.c[i] < s.c[j] }
func (s *colLevSorter) Swap(i, j int) {
	s.c[i], s.c[j] = s.c[j], s.c[i]
	s.l[i], s.l[j] = s.l[j], s.l[i]
}

// NewFactorPattern allocates the factor matrix for the given fill pattern
// (from SymbolicILU) and precomputes the elimination schedule.
func NewFactorPattern(rows [][]int32) (*Factor, error) {
	m, err := NewBSRFromPattern(rows)
	if err != nil {
		return nil, err
	}
	f := &Factor{M: m}
	f.buildUpdateSchedule()
	return f, nil
}

// CloneStructure returns a factor that SHARES this one's symbolic work —
// the BSR index structure (via BSR.CloneStructure) and the precomputed
// elimination schedule, both read-only after construction — but owns fresh
// zero values. Many solver instances over one decomposition each
// factorize into a structure-shared clone, so the symbolic ILU and the
// update schedule are computed once per subdomain, not once per attempt.
// Dedup mode is per-clone: enable it on the clone if wanted.
func (f *Factor) CloneStructure() *Factor {
	return &Factor{
		M:      f.M.CloneStructure(),
		updPtr: f.updPtr,
		updSrc: f.updSrc,
		updDst: f.updDst,
	}
}

// buildUpdateSchedule resolves, once, every (pivot, update) index pair the
// numeric factorization will touch.
func (f *Factor) buildUpdateSchedule() {
	m := f.M
	f.updPtr = make([]int32, m.NNZBlocks()+1)
	var src, dst []int32
	for i := int32(0); i < int32(m.N); i++ {
		for ki := m.Ptr[i]; ki < m.Diag[i]; ki++ {
			k := m.Col[ki]
			for t := m.Diag[k] + 1; t < m.Ptr[k+1]; t++ {
				if slot := m.BlockAt(i, m.Col[t]); slot >= 0 {
					src = append(src, t)
					dst = append(dst, slot)
				}
			}
			f.updPtr[ki+1] = int32(len(src))
		}
		// Slots at/after the diagonal carry no pivot updates.
		for s := m.Diag[i]; s < m.Ptr[i+1]; s++ {
			f.updPtr[s+1] = int32(len(src))
		}
	}
	f.updSrc, f.updDst = src, dst
}

// copyValues writes a's values into the (possibly larger) factor pattern.
// In dedup mode the source is first content-deduplicated and the transfer
// reads through the unique store — bit-identical values, since the store
// holds exactly the source's bytes.
func (f *Factor) copyValues(a *BSR) error {
	m := f.M
	if m.N != a.N {
		return fmt.Errorf("sparse: factor size %d != matrix size %d", m.N, a.N)
	}
	f.dd = nil // stale after this point, whatever happens next
	src := a.Block
	if f.dedup {
		f.srcDD = NewDedupBSR(a)
		src = f.srcDD.Block
	}
	m.Zero()
	for i := int32(0); i < int32(a.N); i++ {
		for k := a.Ptr[i]; k < a.Ptr[i+1]; k++ {
			slot := m.BlockAt(i, a.Col[k])
			if slot < 0 {
				return fmt.Errorf("sparse: factor pattern misses entry (%d,%d)", i, a.Col[k])
			}
			blas4.Copy(m.Block(slot), src(k))
		}
	}
	return nil
}

// refreshDedup rebuilds the factor-store view after a numeric
// factorization. Must run with no concurrent solver threads.
func (f *Factor) refreshDedup() {
	if f.dedup {
		f.dd = NewDedupBSR(f.M)
	}
}

// FactorizeILU computes the block ILU factorization of a on f's pattern
// sequentially, using the compressed per-row workspace (the paper's
// "algorithmic optimization": the workspace is indexed by position within
// the row pattern — found by binary search — instead of a length-N scratch
// array, shrinking the working set at high thread counts).
//
// Row algorithm (IKJ, blocks):
//
//	for each pivot k < i in row i:   L_ik = A_ik * inv(U_kk)
//	    for each j > k in row k:     A_ij -= L_ik * U_kj   (if (i,j) in pattern)
//	invert and store the diagonal block
func (f *Factor) FactorizeILU(a *BSR) error {
	if err := f.copyValues(a); err != nil {
		return err
	}
	m := f.M
	for i := int32(0); i < int32(m.N); i++ {
		if err := f.factorRow(i); err != nil {
			return err
		}
	}
	f.refreshDedup()
	return nil
}

// factorRow eliminates block row i in place using the precomputed update
// schedule. Requires rows < i finished.
func (f *Factor) factorRow(i int32) error {
	m := f.M
	for ki := m.Ptr[i]; ki < m.Diag[i]; ki++ {
		k := m.Col[ki]
		// L_ik = A_ik * invDiag_k (diag of row k is stored inverted).
		lik := m.Block(ki)
		var tmp [BB]float64
		blas4.Gemm(lik, m.Block(m.Diag[k]), tmp[:])
		blas4.Copy(lik, tmp[:])
		// Apply the prescheduled updates of this pivot: entries outside
		// the pattern were already dropped symbolically (the "incomplete").
		// L_ik is the repeated block of its whole update run, so the
		// batched kernel hoists it once across the list.
		lo, hi := f.updPtr[ki], f.updPtr[ki+1]
		blas4.GemmSubN(lik, m.Val, f.updSrc[lo:hi], f.updDst[lo:hi])
	}
	d := m.Block(m.Diag[i])
	if !blas4.Invert(d) {
		return fmt.Errorf("sparse: singular diagonal block at row %d", i)
	}
	return nil
}

// Solve performs x = U^{-1} L^{-1} b sequentially (the TRSV kernel):
// forward substitution on unit-lower L then backward substitution on U with
// pre-inverted diagonal blocks. x and b may alias.
func (f *Factor) Solve(b, x []float64) {
	m := f.M
	n := m.N
	if n == 0 {
		return
	}
	if &b[0] != &x[0] {
		copy(x[:n*B], b[:n*B])
	}
	// Forward: x_i = b_i - sum_{j<i} L_ij x_j
	for i := 0; i < n; i++ {
		f.fwdRow(int32(i), x)
	}
	// Backward: x_i = invD_i * (x_i - sum_{j>i} U_ij x_j)
	for i := n - 1; i >= 0; i-- {
		f.bwdRow(int32(i), x)
	}
}

// fwdRow applies row i of the forward substitution in place. With a live
// dedup view the lower segment iterates run-by-run so each repeated block
// is loaded once (blas4.GemvSubN); the accumulation order over columns is
// the dense loop's, so the result is bit-identical either way.
func (f *Factor) fwdRow(i int32, x []float64) {
	m := f.M
	xi := x[int(i)*B : int(i)*B+B]
	if dd := f.dd; dd != nil {
		for k := m.Ptr[i]; k < m.Diag[i]; {
			e := dd.RunEnd[k]
			blas4.GemvSubN(dd.Block(k), x, m.Col[k:e], xi)
			k = e
		}
		return
	}
	for k := m.Ptr[i]; k < m.Diag[i]; k++ {
		j := int(m.Col[k])
		blas4.GemvSub(m.Block(k), x[j*B:j*B+B], xi)
	}
}

// bwdRow applies row i of the backward substitution in place, including
// the pre-inverted diagonal product.
func (f *Factor) bwdRow(i int32, x []float64) {
	m := f.M
	xi := x[int(i)*B : int(i)*B+B]
	if dd := f.dd; dd != nil {
		for k := m.Diag[i] + 1; k < m.Ptr[i+1]; {
			e := dd.RunEnd[k]
			blas4.GemvSubN(dd.Block(k), x, m.Col[k:e], xi)
			k = e
		}
		var tmp [B]float64
		blas4.Gemv(dd.Block(m.Diag[i]), xi, tmp[:])
		copy(xi, tmp[:])
		return
	}
	for k := m.Diag[i] + 1; k < m.Ptr[i+1]; k++ {
		j := int(m.Col[k])
		blas4.GemvSub(m.Block(k), x[j*B:j*B+B], xi)
	}
	var tmp [B]float64
	blas4.Gemv(m.Block(m.Diag[i]), xi, tmp[:])
	copy(xi, tmp[:])
}

// FactorizeILUFullWorkspace is the naive ILU variant using a length-N block
// workspace per row (the layout the paper's algorithmic optimization
// replaces). Results are bit-identical to FactorizeILU; it exists so the
// benchmark can quantify the workspace optimization.
func (f *Factor) FactorizeILUFullWorkspace(a *BSR) error {
	if err := f.copyValues(a); err != nil {
		return err
	}
	m := f.M
	w := make([]float64, m.N*BB) // full-length workspace
	inRow := make([]int32, m.N)  // col -> slot+1, 0 = absent
	for i := int32(0); i < int32(m.N); i++ {
		rowStart, rowEnd := m.Ptr[i], m.Ptr[i+1]
		for k := rowStart; k < rowEnd; k++ {
			c := m.Col[k]
			blas4.Copy(w[int(c)*BB:int(c)*BB+BB], m.Block(k))
			inRow[c] = k + 1
		}
		for ki := rowStart; ki < rowEnd; ki++ {
			k := m.Col[ki]
			if k >= i {
				break
			}
			lik := w[int(k)*BB : int(k)*BB+BB]
			var tmp [BB]float64
			blas4.Gemm(lik, m.Block(m.Diag[k]), tmp[:])
			blas4.Copy(lik, tmp[:])
			for t := m.Diag[k] + 1; t < m.Ptr[k+1]; t++ {
				j := m.Col[t]
				if inRow[j] == 0 {
					continue
				}
				blas4.GemmSub(lik, m.Block(t), w[int(j)*BB:int(j)*BB+BB])
			}
		}
		for k := rowStart; k < rowEnd; k++ {
			c := m.Col[k]
			blas4.Copy(m.Block(k), w[int(c)*BB:int(c)*BB+BB])
			inRow[c] = 0
		}
		d := m.Block(m.Diag[i])
		if !blas4.Invert(d) {
			return fmt.Errorf("sparse: singular diagonal block at row %d", i)
		}
	}
	f.refreshDedup()
	return nil
}
