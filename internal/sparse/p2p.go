package sparse

import (
	"fun3d/internal/par"
)

// P2PSchedule implements the sparsified point-to-point synchronization of
// Park et al. (ISC'14), the paper's strategy (2) for the sparse
// recurrences. Rows are divided into contiguous per-thread chunks
// (nnz-balanced); each thread processes its rows in order and publishes a
// progress counter. A row's cross-thread dependencies are *sparsified* by
// approximate transitive reduction:
//
//   - within one foreign thread, only the largest dependency row matters
//     (that thread completes its rows in order), and
//   - a wait already implied by an earlier wait of the same thread (its
//     running high-water mark per foreign thread) is dropped.
//
// What remains is typically a handful of point-to-point waits per row
// instead of a global barrier per wavefront.
type P2PSchedule struct {
	nw    int
	start []int32 // per-thread chunk start rows, len nw+1

	// Per-row wait lists, flattened. A wait (t, c) means: spin until
	// thread t's progress counter reaches c.
	fwdPtr, bwdPtr     []int32
	fwdWaits, bwdWaits []waitReq

	fwdFlags, bwdFlags []par.Flag
}

type waitReq struct {
	thread int32
	count  int64
}

// NewP2PSchedule builds the schedule for factor pattern m and nw threads.
func NewP2PSchedule(m *BSR, nw int) *P2PSchedule {
	s := &P2PSchedule{nw: nw}
	s.start = nnzBalancedChunks(m, nw)
	s.fwdFlags = make([]par.Flag, nw)
	s.bwdFlags = make([]par.Flag, nw)

	owner := make([]int32, m.N)
	for t := 0; t < nw; t++ {
		for i := s.start[t]; i < s.start[t+1]; i++ {
			owner[i] = int32(t)
		}
	}

	// Forward: thread t processes rows start[t]..start[t+1] ascending;
	// progress counter = number of completed rows. Dependency on row j
	// owned by t' != t requires progress[t'] >= j - start[t'] + 1.
	s.fwdPtr = make([]int32, m.N+1)
	highWater := make([]int64, nw)
	reqs := make([]int64, nw) // per-row scratch, indexed by thread
	maxReq := func(i int32, forward bool) []waitReq {
		me := owner[i]
		for t := range reqs {
			reqs[t] = 0
		}
		if forward {
			for k := m.Ptr[i]; k < m.Diag[i]; k++ {
				j := m.Col[k]
				t := owner[j]
				if t == me {
					continue
				}
				need := int64(j - s.start[t] + 1)
				if need > reqs[t] {
					reqs[t] = need
				}
			}
		} else {
			for k := m.Diag[i] + 1; k < m.Ptr[i+1]; k++ {
				j := m.Col[k]
				t := owner[j]
				if t == me {
					continue
				}
				need := int64(s.start[t+1] - j) // rows done counting from the top
				if need > reqs[t] {
					reqs[t] = need
				}
			}
		}
		var out []waitReq
		for t := 0; t < nw; t++ {
			if reqs[t] > highWater[t] {
				out = append(out, waitReq{int32(t), reqs[t]})
				highWater[t] = reqs[t]
			}
		}
		return out
	}

	for t := 0; t < nw; t++ {
		for hw := range highWater {
			highWater[hw] = 0
		}
		for i := s.start[t]; i < s.start[t+1]; i++ {
			w := maxReq(i, true)
			s.fwdWaits = append(s.fwdWaits, w...)
			s.fwdPtr[i+1] = int32(len(s.fwdWaits))
		}
	}
	// Backward: thread t processes its rows descending, so build the wait
	// lists per thread in that order (for the high-water reduction) and
	// flatten ascending afterwards.
	bwdTmp := make([][]waitReq, m.N)
	for t := 0; t < nw; t++ {
		for hw := range highWater {
			highWater[hw] = 0
		}
		for i := s.start[t+1] - 1; i >= s.start[t]; i-- {
			bwdTmp[i] = maxReq(i, false)
		}
	}
	s.bwdPtr = make([]int32, m.N+1)
	for i := 0; i < m.N; i++ {
		s.bwdWaits = append(s.bwdWaits, bwdTmp[i]...)
		s.bwdPtr[i+1] = int32(len(s.bwdWaits))
	}
	return s
}

// nnzBalancedChunks splits rows into nw contiguous chunks with roughly
// equal block-nnz (the recurrences' work metric).
func nnzBalancedChunks(m *BSR, nw int) []int32 {
	start := make([]int32, nw+1)
	total := int64(m.NNZBlocks())
	target := float64(total) / float64(nw)
	acc := int64(0)
	t := 1
	for i := 0; i < m.N && t < nw; i++ {
		acc += int64(m.Ptr[i+1] - m.Ptr[i])
		if float64(acc) >= target*float64(t) {
			start[t] = int32(i + 1)
			t++
		}
	}
	for ; t < nw; t++ {
		start[t] = int32(m.N)
	}
	start[nw] = int32(m.N)
	return start
}

// NumWaits returns the total forward+backward wait count — the schedule's
// synchronization cost, compared against the barrier count of level
// scheduling in the benches.
func (s *P2PSchedule) NumWaits() int { return len(s.fwdWaits) + len(s.bwdWaits) }

// resetFlags must run with no concurrent solver threads.
func (s *P2PSchedule) resetFlags() {
	for t := range s.fwdFlags {
		s.fwdFlags[t].Reset()
		s.bwdFlags[t].Reset()
	}
}

// SolveP2P performs x = U^{-1} L^{-1} b with point-to-point synchronized
// sweeps. There is no barrier between the forward and backward sweep: a
// thread's backward pass only reads x values it owns (produced by its own
// forward pass) and backward results of other threads, which are guarded by
// the backward progress flags.
func (f *Factor) SolveP2P(p *par.Pool, s *P2PSchedule, b, x []float64) {
	m := f.M
	n := m.N
	if n == 0 {
		return
	}
	if &b[0] != &x[0] {
		copy(x[:n*B], b[:n*B])
	}
	s.resetFlags()
	p.Run(func(tid int) {
		lo, hi := s.start[tid], s.start[tid+1]
		done := int64(0)
		for i := lo; i < hi; i++ {
			for _, w := range s.fwdWaits[s.fwdPtr[i]:s.fwdPtr[i+1]] {
				s.fwdFlags[w.thread].WaitAtLeast(w.count)
			}
			f.fwdRow(i, x)
			done++
			s.fwdFlags[tid].Set(done)
		}
		done = 0
		for i := hi - 1; i >= lo; i-- {
			for _, w := range s.bwdWaits[s.bwdPtr[i]:s.bwdPtr[i+1]] {
				s.bwdFlags[w.thread].WaitAtLeast(w.count)
			}
			f.bwdRow(i, x)
			done++
			s.bwdFlags[tid].Set(done)
		}
	})
}

// FactorizeILUP2P computes the ILU factorization with point-to-point
// synchronization: row i's elimination waits only on its sparsified
// cross-thread dependency set.
func (f *Factor) FactorizeILUP2P(p *par.Pool, s *P2PSchedule, a *BSR) error {
	if err := f.copyValues(a); err != nil {
		return err
	}
	s.resetFlags()
	errs := make([]error, p.Size())
	p.Run(func(tid int) {
		lo, hi := s.start[tid], s.start[tid+1]
		done := int64(0)
		for i := lo; i < hi; i++ {
			for _, w := range s.fwdWaits[s.fwdPtr[i]:s.fwdPtr[i+1]] {
				s.fwdFlags[w.thread].WaitAtLeast(w.count)
			}
			if err := f.factorRow(i); err != nil && errs[tid] == nil {
				errs[tid] = err
			}
			done++
			s.fwdFlags[tid].Set(done)
		}
	})
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	f.refreshDedup()
	return nil
}
