package sparse

import (
	"fmt"
	"math/rand"
	"testing"

	"fun3d/internal/par"
)

// randomPattern generates a random sparse pattern over n block rows:
// guaranteed diagonal, random off-diagonals with the given expected count
// per row. The pattern is made structurally symmetric (j in row i => i in
// row j), like a mesh adjacency.
func randomPattern(rng *rand.Rand, n, offPerRow int) [][]int32 {
	present := make([]map[int32]bool, n)
	for i := range present {
		present[i] = map[int32]bool{int32(i): true}
	}
	for i := 0; i < n; i++ {
		for k := 0; k < offPerRow; k++ {
			j := int32(rng.Intn(n))
			present[i][j] = true
			present[int(j)][int32(i)] = true
		}
	}
	rows := make([][]int32, n)
	for i, set := range present {
		for c := range set {
			rows[i] = append(rows[i], c)
		}
	}
	return rows
}

// randomDiagDominant fills a BSR with random values whose diagonal blocks
// strongly dominate, keeping every pivot comfortably invertible through
// incomplete elimination.
func randomDiagDominant(rng *rand.Rand, a *BSR) {
	for i := 0; i < a.N; i++ {
		for k := a.Ptr[i]; k < a.Ptr[i+1]; k++ {
			blk := a.Block(k)
			for t := 0; t < BB; t++ {
				blk[t] = 0.1 * rng.NormFloat64()
			}
			if k == a.Diag[i] {
				for d := 0; d < B; d++ {
					blk[d*B+d] += 4 + rng.Float64()
				}
			}
		}
	}
}

// TestP2PPropertyMatchesSerialBitForBit is the property-based conformance
// test over random BSR patterns: for random sizes, densities, fill levels
// and thread counts, the P2P-scheduled factorization and triangular solves
// must match the serial and level-scheduled ones bit-for-bit. The
// elimination and substitution orders are identical by construction —
// synchronization is the only thing the schedules change — so exact
// equality is the correct assertion.
func TestP2PPropertyMatchesSerialBitForBit(t *testing.T) {
	trials := 12
	if testing.Short() {
		trials = 5
	}
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < trials; trial++ {
		n := 1 + rng.Intn(40)
		off := rng.Intn(4)
		level := rng.Intn(2)
		nw := []int{1, 2, 4, 7}[rng.Intn(4)]
		name := fmt.Sprintf("trial%d-n%d-off%d-l%d-nw%d", trial, n, off, level, nw)
		t.Run(name, func(t *testing.T) {
			a, err := NewBSRFromPattern(randomPattern(rng, n, off))
			if err != nil {
				t.Fatal(err)
			}
			randomDiagDominant(rng, a)
			pat, err := SymbolicILU(a, level)
			if err != nil {
				t.Fatal(err)
			}

			newFactor := func() *Factor {
				f, err := NewFactorPattern(pat)
				if err != nil {
					t.Fatal(err)
				}
				return f
			}
			serial := newFactor()
			if err := serial.FactorizeILU(a); err != nil {
				t.Fatal(err)
			}

			pool := par.NewPool(nw)
			defer pool.Close()
			lvl := newFactor()
			ls := NewLevelSchedule(lvl.M)
			if err := lvl.FactorizeILULevel(pool, ls, a); err != nil {
				t.Fatal(err)
			}
			p2p := newFactor()
			ps := NewP2PSchedule(p2p.M, nw)
			if err := p2p.FactorizeILUP2P(pool, ps, a); err != nil {
				t.Fatal(err)
			}
			for i := range serial.M.Val {
				if lvl.M.Val[i] != serial.M.Val[i] {
					t.Fatalf("level factorization differs at val[%d]: %v != %v",
						i, lvl.M.Val[i], serial.M.Val[i])
				}
				if p2p.M.Val[i] != serial.M.Val[i] {
					t.Fatalf("p2p factorization differs at val[%d]: %v != %v",
						i, p2p.M.Val[i], serial.M.Val[i])
				}
			}

			b := make([]float64, n*B)
			for i := range b {
				b[i] = rng.NormFloat64()
			}
			want := make([]float64, n*B)
			serial.Solve(b, want)
			gotLvl := make([]float64, n*B)
			lvl.SolveLevel(pool, ls, b, gotLvl)
			gotP2P := make([]float64, n*B)
			p2p.SolveP2P(pool, ps, b, gotP2P)
			for i := range want {
				if gotLvl[i] != want[i] {
					t.Fatalf("level solve differs at x[%d]: %v != %v", i, gotLvl[i], want[i])
				}
				if gotP2P[i] != want[i] {
					t.Fatalf("p2p solve differs at x[%d]: %v != %v", i, gotP2P[i], want[i])
				}
			}
		})
	}
}

// TestP2PScheduleCoversAllDependencies is the missed-dependency regression
// property: replaying each thread's row sequence, every cross-thread
// dependency of the factor pattern (lower part for the forward sweep,
// upper part for the backward sweep) must be implied by the accumulated
// sparsified waits at the time the row runs. This is exactly the invariant
// the high-water transitive reduction must preserve.
func TestP2PScheduleCoversAllDependencies(t *testing.T) {
	trials := 15
	if testing.Short() {
		trials = 6
	}
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < trials; trial++ {
		n := 1 + rng.Intn(60)
		off := rng.Intn(5)
		nw := []int{1, 2, 3, 4, 7, 11}[rng.Intn(6)]
		t.Run(fmt.Sprintf("trial%d-n%d-off%d-nw%d", trial, n, off, nw), func(t *testing.T) {
			a, err := NewBSRFromPattern(randomPattern(rng, n, off))
			if err != nil {
				t.Fatal(err)
			}
			pat, err := SymbolicILU(a, rng.Intn(2))
			if err != nil {
				t.Fatal(err)
			}
			f, err := NewFactorPattern(pat)
			if err != nil {
				t.Fatal(err)
			}
			m := f.M
			s := NewP2PSchedule(m, nw)

			owner := make([]int32, m.N)
			for th := 0; th < nw; th++ {
				for i := s.start[th]; i < s.start[th+1]; i++ {
					owner[i] = int32(th)
				}
			}

			// Forward sweep replay.
			for th := 0; th < nw; th++ {
				high := make([]int64, nw)
				for i := s.start[th]; i < s.start[th+1]; i++ {
					for _, w := range s.fwdWaits[s.fwdPtr[i]:s.fwdPtr[i+1]] {
						if w.thread == int32(th) {
							t.Fatalf("row %d: self-wait on own thread %d", i, th)
						}
						if w.count <= high[w.thread] {
							t.Fatalf("row %d: non-monotone wait on thread %d (%d <= %d): not sparsified",
								i, w.thread, w.count, high[w.thread])
						}
						high[w.thread] = w.count
					}
					for k := m.Ptr[i]; k < m.Diag[i]; k++ {
						j := m.Col[k]
						tj := owner[j]
						if tj == int32(th) {
							if j >= i {
								t.Fatalf("row %d: intra-thread forward dep %d not earlier", i, j)
							}
							continue
						}
						need := int64(j - s.start[tj] + 1)
						if high[tj] < need {
							t.Fatalf("row %d: forward dep on row %d (thread %d) uncovered: have %d need %d",
								i, j, tj, high[tj], need)
						}
					}
				}
			}

			// Backward sweep replay (rows descending per thread).
			for th := 0; th < nw; th++ {
				high := make([]int64, nw)
				for i := s.start[th+1] - 1; i >= s.start[th]; i-- {
					for _, w := range s.bwdWaits[s.bwdPtr[i]:s.bwdPtr[i+1]] {
						if w.thread == int32(th) {
							t.Fatalf("row %d: backward self-wait on own thread %d", i, th)
						}
						if w.count <= high[w.thread] {
							t.Fatalf("row %d: non-monotone backward wait on thread %d", i, w.thread)
						}
						high[w.thread] = w.count
					}
					for k := m.Diag[i] + 1; k < m.Ptr[i+1]; k++ {
						j := m.Col[k]
						tj := owner[j]
						if tj == int32(th) {
							if j <= i {
								t.Fatalf("row %d: intra-thread backward dep %d not later", i, j)
							}
							continue
						}
						need := int64(s.start[tj+1] - j)
						if high[tj] < need {
							t.Fatalf("row %d: backward dep on row %d (thread %d) uncovered: have %d need %d",
								i, j, tj, high[tj], need)
						}
					}
				}
			}
		})
	}
}
