package geom

// Tetrahedron edge table: the six edges of a tet (local vertex indices),
// plus for each edge the two local vertices that complete the two faces
// containing that edge. For edge (p,q) the faces are (p,q,r) and (p,q,s).
var tetEdges = [6][4]int{
	// p, q, r, s
	{0, 1, 2, 3},
	{0, 2, 3, 1},
	{0, 3, 1, 2},
	{1, 2, 0, 3},
	{1, 3, 2, 0},
	{2, 3, 0, 1},
}

// TetEdge returns the local vertex pair of the i-th tet edge (0..5) plus the
// two opposite vertices completing the adjacent faces.
func TetEdge(i int) (p, q, r, s int) {
	e := tetEdges[i]
	return e[0], e[1], e[2], e[3]
}

// DualFaceContribution computes, for one tetrahedron (a,b,c,d in positive
// orientation) and one of its edges identified by local indices, the
// contribution of this tet to the median-dual face-area vector of the edge.
//
// The median-dual face associated with edge (p,q) inside a tet is the pair
// of triangles
//
//	(edge midpoint, centroid of face pqr, tet centroid)
//	(edge midpoint, tet centroid, centroid of face pqs)
//
// oriented so the resulting area vector points from p toward q. Summing this
// contribution over all tets sharing the edge yields the closed dual face
// separating the control volumes of p and q.
func DualFaceContribution(verts *[4]Vec3, edge int) Vec3 {
	e := tetEdges[edge]
	p, q, r, s := verts[e[0]], verts[e[1]], verts[e[2]], verts[e[3]]
	// Fix the handedness: with TetVolume(p,q,r,s) > 0 the winding below
	// produces an area vector pointing from p toward q, consistently even
	// for badly skewed tets (a dot-product flip would not be).
	if TetVolume(p, q, r, s) < 0 {
		r, s = s, r
	}
	m := Mid(p, q)
	cT := Centroid4(p, q, r, s)
	cPQR := Centroid3(p, q, r)
	cPQS := Centroid3(p, q, s)
	return TriangleAreaVec(m, cPQR, cT).Add(TriangleAreaVec(m, cT, cPQS))
}

// BoundaryDualContribution computes the contribution of one boundary
// triangle (a,b,c) with outward area vector n = TriangleAreaVec(a,b,c) to
// the dual boundary faces of its three vertices. For the median dual each
// vertex of the triangle receives the sub-quadrilateral formed by the
// vertex, the two adjacent edge midpoints, and the triangle centroid. The
// returned areas sum exactly to the full triangle area vector.
func BoundaryDualContribution(a, b, c Vec3) (na, nb, nc Vec3) {
	cen := Centroid3(a, b, c)
	mab := Mid(a, b)
	mbc := Mid(b, c)
	mca := Mid(c, a)
	// Quadrilateral (v, m1, cen, m2) split into two triangles.
	quad := func(v, m1, m2 Vec3) Vec3 {
		return TriangleAreaVec(v, m1, cen).Add(TriangleAreaVec(v, cen, m2))
	}
	na = quad(a, mab, mca)
	nb = quad(b, mbc, mab)
	nc = quad(c, mca, mbc)
	return
}
