// Package geom provides the small 3-D geometric primitives the mesh layer is
// built on: vectors, tetrahedron measures, and the median-dual face-area
// construction used by vertex-centered finite-volume schemes like FUN3D's.
package geom

import "math"

// Vec3 is a point or vector in R^3.
type Vec3 struct {
	X, Y, Z float64
}

// Add returns v + w.
func (v Vec3) Add(w Vec3) Vec3 { return Vec3{v.X + w.X, v.Y + w.Y, v.Z + w.Z} }

// Sub returns v - w.
func (v Vec3) Sub(w Vec3) Vec3 { return Vec3{v.X - w.X, v.Y - w.Y, v.Z - w.Z} }

// Scale returns s*v.
func (v Vec3) Scale(s float64) Vec3 { return Vec3{s * v.X, s * v.Y, s * v.Z} }

// Dot returns the inner product of v and w.
func (v Vec3) Dot(w Vec3) float64 { return v.X*w.X + v.Y*w.Y + v.Z*w.Z }

// Cross returns the cross product v × w.
func (v Vec3) Cross(w Vec3) Vec3 {
	return Vec3{
		v.Y*w.Z - v.Z*w.Y,
		v.Z*w.X - v.X*w.Z,
		v.X*w.Y - v.Y*w.X,
	}
}

// Norm returns the Euclidean length of v.
func (v Vec3) Norm() float64 { return math.Sqrt(v.Dot(v)) }

// Normalized returns v/|v|; the zero vector is returned unchanged.
func (v Vec3) Normalized() Vec3 {
	n := v.Norm()
	if n == 0 {
		return v
	}
	return v.Scale(1 / n)
}

// Mid returns the midpoint of v and w.
func Mid(v, w Vec3) Vec3 { return Vec3{(v.X + w.X) / 2, (v.Y + w.Y) / 2, (v.Z + w.Z) / 2} }

// Centroid3 returns the centroid of a triangle.
func Centroid3(a, b, c Vec3) Vec3 {
	return Vec3{(a.X + b.X + c.X) / 3, (a.Y + b.Y + c.Y) / 3, (a.Z + b.Z + c.Z) / 3}
}

// Centroid4 returns the centroid of a tetrahedron.
func Centroid4(a, b, c, d Vec3) Vec3 {
	return Vec3{(a.X + b.X + c.X + d.X) / 4, (a.Y + b.Y + c.Y + d.Y) / 4, (a.Z + b.Z + c.Z + d.Z) / 4}
}

// TetVolume returns the signed volume of tetrahedron (a,b,c,d):
// positive when (b-a, c-a, d-a) form a right-handed frame.
func TetVolume(a, b, c, d Vec3) float64 {
	return b.Sub(a).Cross(c.Sub(a)).Dot(d.Sub(a)) / 6
}

// TriangleAreaVec returns the area-weighted normal of triangle (a,b,c):
// 0.5 * (b-a) × (c-a). Its length is the triangle area and its direction
// follows the right-hand rule on the vertex order.
func TriangleAreaVec(a, b, c Vec3) Vec3 {
	return b.Sub(a).Cross(c.Sub(a)).Scale(0.5)
}
