package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func vecAlmostEq(a, b Vec3, tol float64) bool {
	return almostEq(a.X, b.X, tol) && almostEq(a.Y, b.Y, tol) && almostEq(a.Z, b.Z, tol)
}

func TestVecBasics(t *testing.T) {
	v := Vec3{1, 2, 3}
	w := Vec3{4, -5, 6}
	if v.Add(w) != (Vec3{5, -3, 9}) {
		t.Fatal("Add")
	}
	if v.Sub(w) != (Vec3{-3, 7, -3}) {
		t.Fatal("Sub")
	}
	if v.Scale(2) != (Vec3{2, 4, 6}) {
		t.Fatal("Scale")
	}
	if v.Dot(w) != 4-10+18 {
		t.Fatal("Dot")
	}
	if !almostEq((Vec3{3, 4, 0}).Norm(), 5, 1e-15) {
		t.Fatal("Norm")
	}
	n := (Vec3{0, 0, 7}).Normalized()
	if !vecAlmostEq(n, Vec3{0, 0, 1}, 1e-15) {
		t.Fatal("Normalized")
	}
	if (Vec3{}).Normalized() != (Vec3{}) {
		t.Fatal("Normalized zero")
	}
}

func TestCrossOrthogonality(t *testing.T) {
	f := func(ax, ay, az, bx, by, bz float64) bool {
		a := Vec3{clamp(ax), clamp(ay), clamp(az)}
		b := Vec3{clamp(bx), clamp(by), clamp(bz)}
		c := a.Cross(b)
		scale := (a.Norm() + 1) * (b.Norm() + 1)
		return math.Abs(c.Dot(a)) <= 1e-9*scale*scale && math.Abs(c.Dot(b)) <= 1e-9*scale*scale
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func clamp(x float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return 1
	}
	return math.Mod(x, 1e3)
}

func TestTetVolumeUnit(t *testing.T) {
	// Unit right tet has volume 1/6.
	v := TetVolume(Vec3{0, 0, 0}, Vec3{1, 0, 0}, Vec3{0, 1, 0}, Vec3{0, 0, 1})
	if !almostEq(v, 1.0/6, 1e-15) {
		t.Fatalf("unit tet volume %v", v)
	}
	// Swapping two vertices flips the sign.
	v2 := TetVolume(Vec3{0, 0, 0}, Vec3{0, 1, 0}, Vec3{1, 0, 0}, Vec3{0, 0, 1})
	if !almostEq(v2, -1.0/6, 1e-15) {
		t.Fatalf("flipped tet volume %v", v2)
	}
}

func TestTriangleAreaVec(t *testing.T) {
	n := TriangleAreaVec(Vec3{0, 0, 0}, Vec3{1, 0, 0}, Vec3{0, 1, 0})
	if !vecAlmostEq(n, Vec3{0, 0, 0.5}, 1e-15) {
		t.Fatalf("area vec %v", n)
	}
}

func randomPositiveTet(rng *rand.Rand) [4]Vec3 {
	for {
		var v [4]Vec3
		for i := range v {
			v[i] = Vec3{rng.Float64()*2 - 1, rng.Float64()*2 - 1, rng.Float64()*2 - 1}
		}
		vol := TetVolume(v[0], v[1], v[2], v[3])
		if vol > 1e-3 {
			return v
		}
		if vol < -1e-3 {
			v[0], v[1] = v[1], v[0]
			return v
		}
	}
}

// Property (the fundamental discrete-divergence identity): for a single tet,
// the dual faces around each vertex together with the boundary faces close
// — i.e. for each vertex p, sum of dual-face areas of its 3 incident edges
// (oriented outward from p) plus its share of the 4 boundary triangle areas
// (outward) is zero.
func TestDualClosureSingleTet(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		v := randomPositiveTet(rng)
		var acc [4]Vec3 // outward area accumulated per local vertex

		for e := 0; e < 6; e++ {
			p, q, _, _ := TetEdge(e)
			area := DualFaceContribution(&v, e) // points p -> q
			acc[p] = acc[p].Add(area)
			acc[q] = acc[q].Sub(area)
		}
		// The four faces of tet (a,b,c,d) with outward normals (volume>0):
		// (a,c,b), (a,b,d), (b,c,d), (a,d,c).
		faces := [4][3]int{{0, 2, 1}, {0, 1, 3}, {1, 2, 3}, {0, 3, 2}}
		for _, f := range faces {
			na, nb, nc := BoundaryDualContribution(v[f[0]], v[f[1]], v[f[2]])
			acc[f[0]] = acc[f[0]].Add(na)
			acc[f[1]] = acc[f[1]].Add(nb)
			acc[f[2]] = acc[f[2]].Add(nc)
		}
		for i, a := range acc {
			if a.Norm() > 1e-12 {
				t.Fatalf("trial %d vertex %d: closure defect %v", trial, i, a.Norm())
			}
		}
	}
}

// The outward-face orientation assumed above must itself be consistent:
// outward normals of a positive tet sum to zero and each points away from
// the centroid.
func TestTetFaceOrientation(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 100; trial++ {
		v := randomPositiveTet(rng)
		cen := Centroid4(v[0], v[1], v[2], v[3])
		faces := [4][3]int{{0, 2, 1}, {0, 1, 3}, {1, 2, 3}, {0, 3, 2}}
		var sum Vec3
		for _, f := range faces {
			n := TriangleAreaVec(v[f[0]], v[f[1]], v[f[2]])
			sum = sum.Add(n)
			fc := Centroid3(v[f[0]], v[f[1]], v[f[2]])
			if n.Dot(fc.Sub(cen)) <= 0 {
				t.Fatalf("face %v not outward", f)
			}
		}
		if sum.Norm() > 1e-12 {
			t.Fatalf("face normals do not close: %v", sum.Norm())
		}
	}
}

// BoundaryDualContribution must partition the triangle area exactly.
func TestBoundaryDualPartition(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := Vec3{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		b := Vec3{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		c := Vec3{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		na, nb, nc := BoundaryDualContribution(a, b, c)
		total := TriangleAreaVec(a, b, c)
		return vecAlmostEq(na.Add(nb).Add(nc), total, 1e-12*(total.Norm()+1))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// DualFaceContribution points from p to q by construction.
func TestDualFaceOrientation(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 100; trial++ {
		v := randomPositiveTet(rng)
		for e := 0; e < 6; e++ {
			p, q, _, _ := TetEdge(e)
			area := DualFaceContribution(&v, e)
			if area.Dot(v[q].Sub(v[p])) < 0 {
				t.Fatalf("edge %d not oriented p->q", e)
			}
		}
	}
}

func TestMidCentroid(t *testing.T) {
	a, b := Vec3{0, 0, 0}, Vec3{2, 4, 6}
	if Mid(a, b) != (Vec3{1, 2, 3}) {
		t.Fatal("Mid")
	}
	c := Centroid3(Vec3{0, 0, 0}, Vec3{3, 0, 0}, Vec3{0, 3, 0})
	if !vecAlmostEq(c, Vec3{1, 1, 0}, 1e-15) {
		t.Fatal("Centroid3")
	}
	d := Centroid4(Vec3{0, 0, 0}, Vec3{4, 0, 0}, Vec3{0, 4, 0}, Vec3{0, 0, 4})
	if !vecAlmostEq(d, Vec3{1, 1, 1}, 1e-15) {
		t.Fatal("Centroid4")
	}
}
