package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"fun3d/internal/newton"
)

// jobJSON is the wire representation of a job's status.
type jobJSON struct {
	ID       string     `json:"id"`
	State    JobState   `json:"state"`
	AlphaDeg float64    `json:"alpha_deg"`
	Steps    int        `json:"steps"`
	Error    string     `json:"error,omitempty"`
	Result   *JobResult `json:"result,omitempty"`
}

func jobStatus(j *Job) jobJSON {
	state, errStr, result, steps := j.Snapshot()
	out := jobJSON{ID: j.ID, State: state, AlphaDeg: j.req.AlphaDeg, Steps: steps, Error: errStr}
	if state == StateDone {
		r := result
		out.Result = &r
	}
	return out
}

// stepJSON is one streamed residual-history record.
type stepJSON struct {
	Step        int     `json:"step"`
	RNorm       float64 `json:"rnorm"`
	CFL         float64 `json:"cfl"`
	LinearIters int     `json:"linear_iters"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

// Handler returns the engine's HTTP API:
//
//	POST   /v1/jobs              submit a solve            -> 202 / 429+Retry-After
//	GET    /v1/jobs              list jobs
//	GET    /v1/jobs/{id}         job status
//	GET    /v1/jobs/{id}/history residual history, NDJSON; streams while running
//	DELETE /v1/jobs/{id}         cancel
//	POST   /v1/jobs/{id}/evict   checkpoint + release the running solve
//	POST   /v1/jobs/{id}/resume  re-queue an evicted solve
//	POST   /v1/polar             submit a batch of angles over one shared mesh
//	GET    /v1/stats             engine/cache/pool counters
//	GET    /v1/healthz           liveness
func (e *Engine) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
	})
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, e.Stats())
	})
	mux.HandleFunc("POST /v1/jobs", e.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		jobs := e.Jobs()
		out := make([]jobJSON, 0, len(jobs))
		for _, j := range jobs {
			out = append(out, jobStatus(j))
		}
		writeJSON(w, http.StatusOK, out)
	})
	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		j, ok := e.Job(r.PathValue("id"))
		if !ok {
			writeError(w, http.StatusNotFound, fmt.Errorf("no job %q", r.PathValue("id")))
			return
		}
		writeJSON(w, http.StatusOK, jobStatus(j))
	})
	mux.HandleFunc("GET /v1/jobs/{id}/history", e.handleHistory)
	mux.HandleFunc("DELETE /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		if err := e.Cancel(r.PathValue("id")); err != nil {
			writeError(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, http.StatusAccepted, map[string]string{"id": r.PathValue("id"), "state": "canceling"})
	})
	mux.HandleFunc("POST /v1/jobs/{id}/evict", func(w http.ResponseWriter, r *http.Request) {
		if err := e.Evict(r.PathValue("id")); err != nil {
			writeError(w, http.StatusConflict, err)
			return
		}
		writeJSON(w, http.StatusAccepted, map[string]string{"id": r.PathValue("id"), "state": "evicting"})
	})
	mux.HandleFunc("POST /v1/jobs/{id}/resume", func(w http.ResponseWriter, r *http.Request) {
		err := e.Resume(r.PathValue("id"))
		switch {
		case errors.Is(err, ErrQueueFull):
			w.Header().Set("Retry-After", retryAfterSeconds(e.cfg.RetryAfter))
			writeError(w, http.StatusTooManyRequests, err)
		case err != nil:
			writeError(w, http.StatusConflict, err)
		default:
			writeJSON(w, http.StatusAccepted, map[string]string{"id": r.PathValue("id"), "state": string(StateQueued)})
		}
	})
	mux.HandleFunc("POST /v1/polar", e.handlePolar)
	return mux
}

func retryAfterSeconds(d time.Duration) string {
	s := int(d / time.Second)
	if s < 1 {
		s = 1
	}
	return fmt.Sprintf("%d", s)
}

func (e *Engine) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req JobRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	j, err := e.Submit(req)
	switch {
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", retryAfterSeconds(e.cfg.RetryAfter))
		writeError(w, http.StatusTooManyRequests, err)
	case err != nil:
		writeError(w, http.StatusServiceUnavailable, err)
	default:
		writeJSON(w, http.StatusAccepted, jobStatus(j))
	}
}

// handleHistory streams the job's residual history as NDJSON: one stepJSON
// line per completed pseudo-time step (live while the job runs), then a
// final jobJSON line when the job leaves the running state.
func (e *Engine) handleHistory(w http.ResponseWriter, r *http.Request) {
	j, ok := e.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no job %q", r.PathValue("id")))
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	emit := func(steps []newton.StepStats) {
		for _, s := range steps {
			enc.Encode(stepJSON{Step: s.Step, RNorm: s.RNorm, CFL: s.CFL, LinearIters: s.LinearIters})
		}
		if len(steps) > 0 && flusher != nil {
			flusher.Flush()
		}
	}
	sent := 0
	for {
		steps, more := j.StepsFrom(r.Context(), sent)
		emit(steps)
		sent += len(steps)
		if !more {
			break
		}
	}
	if r.Context().Err() == nil {
		enc.Encode(jobStatus(j))
		if flusher != nil {
			flusher.Flush()
		}
	}
}

// polarRequest is a batch of angles of attack solved over one shared mesh:
// the service analogue of a polar sweep. Per-angle options follow Defaults.
type polarRequest struct {
	Alphas   []float64  `json:"alphas"`
	Defaults JobRequest `json:"defaults"`
}

type polarResponse struct {
	IDs      []string `json:"ids"`
	Rejected int      `json:"rejected"`
}

func (e *Engine) handlePolar(w http.ResponseWriter, r *http.Request) {
	var req polarRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	if len(req.Alphas) == 0 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("polar: empty alphas"))
		return
	}
	resp := polarResponse{}
	for _, a := range req.Alphas {
		jr := req.Defaults
		jr.AlphaDeg = a
		j, err := e.Submit(jr)
		if err != nil {
			resp.Rejected++
			continue
		}
		resp.IDs = append(resp.IDs, j.ID)
	}
	code := http.StatusAccepted
	if len(resp.IDs) == 0 {
		w.Header().Set("Retry-After", retryAfterSeconds(e.cfg.RetryAfter))
		code = http.StatusTooManyRequests
	}
	writeJSON(w, code, resp)
}
