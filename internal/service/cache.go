// Package service turns the solver into a long-running multi-solve server:
// immutable solver artifacts (mesh, reordering, partition, tile cover,
// Jacobian pattern) are built once and cached; per-solve mutable state is
// drawn from a recycling pool; an engine schedules queued solve jobs over a
// bounded worker set; and an HTTP/JSON API exposes submission, status,
// residual-history streaming, cancellation and checkpoint-backed
// eviction/resume. The paper's premise — one read-only mesh shared by all
// compute — is here stretched across whole solves: N concurrent solves
// share one artifact and contend only on job bookkeeping, never on solver
// data.
package service

import (
	"fmt"
	"sync"

	"fun3d/internal/core"
	"fun3d/internal/mesh"
)

// MeshKey identifies one shared artifact: the mesh generation spec plus the
// structural solver spec. Both halves are comparable value types, so the
// key indexes a map directly — no hashing or serialization.
type MeshKey struct {
	Mesh mesh.GenSpec
	Spec core.ArtifactSpec
}

// KeyFor derives the cache key for solving on spec's mesh under cfg.
func KeyFor(spec mesh.GenSpec, cfg core.Config) MeshKey {
	return MeshKey{Mesh: spec, Spec: core.SpecOf(cfg)}
}

// cacheEntry is one cached (or in-flight) artifact build. ready is closed
// when art/err are final; waiters block on it, so concurrent misses on one
// key trigger exactly one construction (single-flight).
type cacheEntry struct {
	ready chan struct{}
	art   *core.Artifact
	err   error
}

// MeshCache builds and caches shared solver artifacts by MeshKey. Safe for
// concurrent use; concurrent Gets of a missing key build it once and all
// receive the same *core.Artifact. Failed builds are NOT cached — the next
// Get retries.
type MeshCache struct {
	mu      sync.Mutex
	entries map[MeshKey]*cacheEntry

	hits   int64 // Gets that found an entry (ready or in-flight)
	misses int64 // Gets that had to start a build
	builds int64 // constructions actually run (== misses unless builds fail)
}

// NewMeshCache returns an empty cache.
func NewMeshCache() *MeshCache {
	return &MeshCache{entries: make(map[MeshKey]*cacheEntry)}
}

// Get returns the shared artifact for (spec, cfg), generating the mesh and
// building the artifact on first use. cfg contributes only its structural
// fields (core.SpecOf); flow parameters do not fragment the cache.
func (c *MeshCache) Get(spec mesh.GenSpec, cfg core.Config) (*core.Artifact, error) {
	key := KeyFor(spec, cfg)
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		c.hits++
		c.mu.Unlock()
		<-e.ready
		return e.art, e.err
	}
	e := &cacheEntry{ready: make(chan struct{})}
	c.entries[key] = e
	c.misses++
	c.builds++
	c.mu.Unlock()

	e.art, e.err = buildArtifact(spec, cfg)
	if e.err != nil {
		// Do not cache failures: drop the entry so a later Get retries.
		c.mu.Lock()
		delete(c.entries, key)
		c.mu.Unlock()
	}
	close(e.ready)
	return e.art, e.err
}

func buildArtifact(spec mesh.GenSpec, cfg core.Config) (*core.Artifact, error) {
	m, err := mesh.Generate(spec)
	if err != nil {
		return nil, fmt.Errorf("service: mesh generation: %w", err)
	}
	art, err := core.BuildArtifact(m, cfg)
	if err != nil {
		return nil, fmt.Errorf("service: artifact build: %w", err)
	}
	return art, nil
}

// CacheStats reports cache traffic.
type CacheStats struct {
	Entries int   `json:"entries"`
	Hits    int64 `json:"hits"`
	Misses  int64 `json:"misses"`
	Builds  int64 `json:"builds"`
}

// Stats snapshots the counters.
func (c *MeshCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Entries: len(c.entries), Hits: c.hits, Misses: c.misses, Builds: c.builds}
}
