package service

import (
	"runtime"
	"testing"
	"time"

	"fun3d/internal/core"
)

// Regression test for the finalizer-based worker reclamation the pool used
// to rely on: an App is always reachable from its own live worker
// goroutines, so a runtime.SetFinalizer on it could never fire, and every
// instance sync.Pool silently dropped leaked its worker pool forever. The
// explicit free list must release every worker goroutine at Close — the
// goroutine count has to return to its pre-pool baseline.
func TestStatePoolCloseReleasesAllWorkers(t *testing.T) {
	cfg := testConfig(3)
	art, err := core.BuildArtifact(mustMesh(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	runtime.GC()
	baseline := runtime.NumGoroutine()

	p := NewStatePool(art, cfg)
	// Cycle instances so several are parked idle at Close time, plus one
	// checked out past Close (its Put must release it, not park it).
	var apps []*core.App
	for i := 0; i < 3; i++ {
		app, err := p.Get(3.06)
		if err != nil {
			t.Fatal(err)
		}
		apps = append(apps, app)
	}
	if during := runtime.NumGoroutine(); during <= baseline {
		t.Fatalf("expected worker goroutines while checked out: baseline %d, now %d", baseline, during)
	}
	late := apps[2]
	p.Put(apps[0])
	p.Put(apps[1])
	p.Close()
	p.Put(late) // after Close: must be released, not parked

	// Workers exit asynchronously; poll with GC until the count settles
	// back to the baseline.
	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= baseline {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: baseline %d, now %d", baseline, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}

	if s := p.Stats(); s.Live != 0 {
		t.Fatalf("live=%d after close, want 0", s.Live)
	}
}

// A Get after Close still works (the engine never does this, but the pool
// shouldn't wedge): it builds a fresh instance, and its Put releases it.
func TestStatePoolGetAfterClose(t *testing.T) {
	cfg := testConfig(2)
	art, err := core.BuildArtifact(mustMesh(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	p := NewStatePool(art, cfg)
	p.Close()
	app, err := p.Get(0)
	if err != nil {
		t.Fatal(err)
	}
	p.Put(app)
	if s := p.Stats(); s.Live != 0 || s.Builds != 1 {
		t.Fatalf("stats after get-after-close: %+v", s)
	}
}
