package service

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"fun3d/internal/core"
)

func startServer(t *testing.T, cfg EngineConfig) (*Engine, *httptest.Server) {
	t.Helper()
	e := NewEngine(cfg)
	srv := httptest.NewServer(e.Handler())
	t.Cleanup(func() {
		srv.Close()
		e.Close()
	})
	return e, srv
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decode[T any](t *testing.T, resp *http.Response) T {
	t.Helper()
	defer resp.Body.Close()
	var v T
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

func pollJob(t *testing.T, base, id string, want JobState, timeout time.Duration) jobJSON {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		resp, err := http.Get(base + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		j := decode[jobJSON](t, resp)
		if j.State == want || time.Now().After(deadline) {
			return j
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestAPILifecycle drives the happy path over real HTTP: submit, poll,
// stream the residual history while the job runs, observe completion.
func TestAPILifecycle(t *testing.T) {
	_, srv := startServer(t, EngineConfig{
		Mesh:          testSpec(),
		Solver:        testConfig(2),
		MaxConcurrent: 1,
	})

	resp := postJSON(t, srv.URL+"/v1/jobs", JobRequest{AlphaDeg: 3.06, MaxSteps: 5, RelTol: 1e-30})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d, want 202", resp.StatusCode)
	}
	sub := decode[jobJSON](t, resp)
	if sub.ID == "" || (sub.State != StateQueued && sub.State != StateRunning) {
		t.Fatalf("submit response: %+v", sub)
	}

	// Stream the history concurrently with the solve.
	histResp, err := http.Get(srv.URL + "/v1/jobs/" + sub.ID + "/history")
	if err != nil {
		t.Fatal(err)
	}
	defer histResp.Body.Close()
	if ct := histResp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("history content-type %q", ct)
	}
	var stepLines []stepJSON
	var final jobJSON
	sc := bufio.NewScanner(histResp.Body)
	for sc.Scan() {
		line := sc.Bytes()
		var s stepJSON
		if err := json.Unmarshal(line, &s); err == nil && s.Step > 0 {
			stepLines = append(stepLines, s)
			continue
		}
		if err := json.Unmarshal(line, &final); err != nil {
			t.Fatalf("unparseable history line %q: %v", line, err)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(stepLines) != 5 {
		t.Fatalf("streamed %d steps, want 5", len(stepLines))
	}
	for i, s := range stepLines {
		if s.Step != i+1 || s.RNorm <= 0 {
			t.Fatalf("bad streamed step %d: %+v", i, s)
		}
	}
	if final.State != StateDone || final.Result == nil || final.Result.Steps != 5 {
		t.Fatalf("final history line: %+v", final)
	}

	st := pollJob(t, srv.URL, sub.ID, StateDone, 30*time.Second)
	if st.State != StateDone || st.Result == nil || !(st.Result.RNormFinal > 0) {
		t.Fatalf("status after done: %+v", st)
	}

	// Listing includes the job.
	resp, err = http.Get(srv.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	if list := decode[[]jobJSON](t, resp); len(list) != 1 || list[0].ID != sub.ID {
		t.Fatalf("job list: %+v", list)
	}

	// Health and stats respond.
	resp, err = http.Get(srv.URL + "/v1/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v %v", resp.StatusCode, err)
	}
	resp.Body.Close()
	resp, err = http.Get(srv.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	stats := decode[EngineStats](t, resp)
	if stats.Done != 1 || stats.Cache.Builds != 1 {
		t.Fatalf("stats: %+v", stats)
	}
}

// TestAPICancelReleasesInstance cancels a solve mid-flight (pinned at step
// 2 by the AfterStep hook) and verifies the solver instance went back to
// the pool: gets == puts once the job is canceled.
func TestAPICancelReleasesInstance(t *testing.T) {
	canceling := make(chan struct{})
	canceled := make(chan struct{})
	var once sync.Once
	e, srv := startServer(t, EngineConfig{
		Mesh:          testSpec(),
		Solver:        testConfig(1),
		MaxConcurrent: 1,
		Hooks: Hooks{AfterStep: func(id string, step int) {
			if step == 2 {
				once.Do(func() {
					close(canceling)
					<-canceled // hold the solve until DELETE lands
				})
			}
		}},
	})

	sub := decode[jobJSON](t, postJSON(t, srv.URL+"/v1/jobs", JobRequest{AlphaDeg: 1, MaxSteps: 500, RelTol: 1e-30}))
	<-canceling
	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/v1/jobs/"+sub.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("cancel: %d, want 202", resp.StatusCode)
	}
	resp.Body.Close()
	close(canceled)

	st := pollJob(t, srv.URL, sub.ID, StateCanceled, 30*time.Second)
	if st.State != StateCanceled {
		t.Fatalf("job state %s, want canceled", st.State)
	}
	// The instance must be back in the pool (and the engine must report a
	// balanced pool) shortly after cancellation is observed.
	deadline := time.Now().Add(10 * time.Second)
	for {
		var total PoolStats
		for _, p := range e.Stats().Pools {
			total.Gets += p.Gets
			total.Puts += p.Puts
			total.Live += p.Live
		}
		if total.Gets == total.Puts && total.Live == 0 && total.Gets > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("canceled job never released its instance: %+v", total)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestAPIQueueFull fills the queue behind a held solve and expects 429 with
// Retry-After on the next submission.
func TestAPIQueueFull(t *testing.T) {
	hold := make(chan struct{})
	var once sync.Once
	_, srv := startServer(t, EngineConfig{
		Mesh:          testSpec(),
		Solver:        testConfig(1),
		MaxConcurrent: 1,
		QueueDepth:    2,
		RetryAfter:    3 * time.Second,
		Hooks: Hooks{BeforeSolve: func(string) {
			once.Do(func() { <-hold })
		}},
	})
	defer close(hold)

	// First job is dequeued and parked in BeforeSolve; the next two fill
	// the queue; the fourth must bounce.
	var ids []string
	for i := 0; i < 3; i++ {
		resp := postJSON(t, srv.URL+"/v1/jobs", JobRequest{AlphaDeg: float64(i), MaxSteps: 2})
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d: %d, want 202", i, resp.StatusCode)
		}
		j := decode[jobJSON](t, resp)
		ids = append(ids, j.ID)
		if i == 0 {
			// Wait for the worker to park so the queue is empty again.
			pollJob(t, srv.URL, j.ID, StateRunning, 10*time.Second)
		}
	}
	resp := postJSON(t, srv.URL+"/v1/jobs", JobRequest{AlphaDeg: 9, MaxSteps: 2})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow submit: %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "3" {
		t.Fatalf("Retry-After %q, want \"3\"", ra)
	}
	var apiErr map[string]string
	json.NewDecoder(resp.Body).Decode(&apiErr)
	resp.Body.Close()
	if !strings.Contains(apiErr["error"], "queue full") {
		t.Fatalf("429 body: %v", apiErr)
	}

	// Release the held solve; everything drains.
	hold <- struct{}{}
	for _, id := range ids {
		if st := pollJob(t, srv.URL, id, StateDone, 60*time.Second); st.State != StateDone {
			t.Fatalf("job %s ended %s, want done", id, st.State)
		}
	}
}

// TestAPIEvictResume exercises eviction and resume over HTTP and checks the
// stitched trajectory against an uninterrupted isolated solve.
func TestAPIEvictResume(t *testing.T) {
	cfg := testConfig(2)
	cfg.AlphaDeg = 3.06
	app, err := core.NewApp(mustMesh(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	opt := solveOpt(8)
	opt.RelTol = 1e-30
	want, err := app.Run(opt)
	app.Close()
	if err != nil {
		t.Fatal(err)
	}

	var srvURL string
	var once sync.Once
	evictDone := make(chan struct{})
	_, srv := startServer(t, EngineConfig{
		Mesh:          testSpec(),
		Solver:        testConfig(2),
		MaxConcurrent: 1,
		Hooks: Hooks{AfterStep: func(id string, step int) {
			if step == 3 {
				once.Do(func() {
					resp, err := http.Post(srvURL+"/v1/jobs/"+id+"/evict", "application/json", nil)
					if err != nil {
						t.Errorf("evict: %v", err)
						return
					}
					if resp.StatusCode != http.StatusAccepted {
						t.Errorf("evict: %d, want 202", resp.StatusCode)
					}
					resp.Body.Close()
					close(evictDone)
				})
			}
		}},
	})
	srvURL = srv.URL

	sub := decode[jobJSON](t, postJSON(t, srv.URL+"/v1/jobs", JobRequest{AlphaDeg: 3.06, MaxSteps: 8, RelTol: 1e-30}))
	<-evictDone
	if st := pollJob(t, srv.URL, sub.ID, StateEvicted, 30*time.Second); st.State != StateEvicted || st.Steps != 3 {
		t.Fatalf("after evict: %+v", st)
	}

	resp, err := http.Post(srv.URL+"/v1/jobs/"+sub.ID+"/resume", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("resume: %d, want 202", resp.StatusCode)
	}
	resp.Body.Close()
	if st := pollJob(t, srv.URL, sub.ID, StateDone, 60*time.Second); st.State != StateDone {
		t.Fatalf("after resume: %+v", st)
	}

	// Full history over HTTP must match the uninterrupted run bit for bit.
	histResp, err := http.Get(srv.URL + "/v1/jobs/" + sub.ID + "/history")
	if err != nil {
		t.Fatal(err)
	}
	defer histResp.Body.Close()
	var steps []stepJSON
	sc := bufio.NewScanner(histResp.Body)
	for sc.Scan() {
		var s stepJSON
		if err := json.Unmarshal(sc.Bytes(), &s); err == nil && s.Step > 0 {
			steps = append(steps, s)
		}
	}
	if len(steps) != len(want.History.Steps) {
		t.Fatalf("stitched history has %d steps, want %d", len(steps), len(want.History.Steps))
	}
	for k, s := range steps {
		w := want.History.Steps[k]
		if s.Step != w.Step || s.RNorm != w.RNorm || s.CFL != w.CFL || s.LinearIters != w.LinearIters {
			t.Fatalf("step %d differs from uninterrupted run: %+v vs %+v", k+1, s, w)
		}
	}
}

// TestAPIPolar submits a polar sweep batch and verifies all angles complete
// over one shared artifact.
func TestAPIPolar(t *testing.T) {
	e, srv := startServer(t, EngineConfig{
		Mesh:          testSpec(),
		Solver:        testConfig(2),
		MaxConcurrent: 2,
		QueueDepth:    8,
	})

	resp := postJSON(t, srv.URL+"/v1/polar", map[string]any{
		"alphas":   []float64{0, 1, 2, 3},
		"defaults": JobRequest{MaxSteps: 4},
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("polar: %d, want 202", resp.StatusCode)
	}
	pr := decode[polarResponse](t, resp)
	if len(pr.IDs) != 4 || pr.Rejected != 0 {
		t.Fatalf("polar response: %+v", pr)
	}
	for _, id := range pr.IDs {
		if st := pollJob(t, srv.URL, id, StateDone, 60*time.Second); st.State != StateDone {
			t.Fatalf("polar job %s ended %s", id, st.State)
		}
	}
	if st := e.Cache().Stats(); st.Builds != 1 {
		t.Fatalf("polar sweep built %d artifacts, want 1", st.Builds)
	}
}
