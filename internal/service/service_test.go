package service

import (
	"sync"
	"testing"
	"time"

	"fun3d/internal/core"
	"fun3d/internal/mesh"
	"fun3d/internal/newton"
)

// testSpec is the shared tiny mesh every service test solves on.
func testSpec() mesh.GenSpec { return mesh.SpecTiny() }

func mustMesh(t testing.TB) *mesh.Mesh {
	t.Helper()
	m, err := mesh.Generate(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func solveOpt(steps int) newton.Options { return newton.Options{MaxSteps: steps} }

// testConfig is a threaded second-order configuration exercising the full
// shared-artifact surface (partition, reordering, Jacobian pattern).
func testConfig(threads int) core.Config {
	cfg := core.OptimizedConfig(threads)
	cfg.SecondOrder = true
	cfg.Limiter = true
	return cfg
}

// fusedConfig additionally shares the fused pipeline's tile cover.
func fusedConfig(threads int) core.Config {
	cfg := testConfig(threads)
	cfg.Fused = true
	return cfg
}

// waitState polls until the job reaches want (or a terminal state, or the
// deadline) and returns the final observed state.
func waitState(t *testing.T, j *Job, want JobState, timeout time.Duration) JobState {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		s := j.State()
		if s == want {
			return s
		}
		if s.terminal() || time.Now().After(deadline) {
			return s
		}
		time.Sleep(time.Millisecond)
	}
}

func mustDone(t *testing.T, j *Job) {
	t.Helper()
	if s := waitState(t, j, StateDone, 60*time.Second); s != StateDone {
		_, errStr, _, _ := j.Snapshot()
		t.Fatalf("job %s ended %s (err=%q), want done", j.ID, s, errStr)
	}
}

// TestCacheSingleFlight hammers one key from many goroutines: exactly one
// artifact build must run, and every caller must receive the same pointer.
func TestCacheSingleFlight(t *testing.T) {
	c := NewMeshCache()
	cfg := testConfig(2)
	const N = 16
	arts := make([]*core.Artifact, N)
	var wg sync.WaitGroup
	for i := 0; i < N; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			art, err := c.Get(testSpec(), cfg)
			if err != nil {
				t.Error(err)
				return
			}
			arts[i] = art
		}(i)
	}
	wg.Wait()
	for i := 1; i < N; i++ {
		if arts[i] != arts[0] {
			t.Fatalf("goroutine %d got a different artifact", i)
		}
	}
	s := c.Stats()
	if s.Builds != 1 {
		t.Fatalf("builds = %d, want 1 (single-flight)", s.Builds)
	}
	if s.Hits+s.Misses != N {
		t.Fatalf("hits+misses = %d, want %d", s.Hits+s.Misses, N)
	}

	// A structurally identical config with different flow parameters must
	// hit the same entry; a structurally different one must miss.
	same := cfg
	same.AlphaDeg = 7.5
	if art, _ := c.Get(testSpec(), same); art != arts[0] {
		t.Fatal("flow parameters fragmented the cache")
	}
	diff := testConfig(4)
	if art, _ := c.Get(testSpec(), diff); art == arts[0] {
		t.Fatal("different thread count shared an artifact")
	}
	if s := c.Stats(); s.Entries != 2 || s.Builds != 2 {
		t.Fatalf("after second key: %+v", s)
	}
}

// TestStatePoolPoisonReinit hammers Get/run/Put from several goroutines:
// every recycled (NaN-poisoned) instance must reproduce the fresh-instance
// trajectory bit for bit, and the counters must balance.
func TestStatePoolPoisonReinit(t *testing.T) {
	cfg := fusedConfig(2)
	art, err := core.BuildArtifact(mustMesh(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	p := NewStatePool(art, cfg)
	defer p.Close()

	const alpha = 3.06
	ref, err := p.Get(alpha)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.Run(solveOpt(3))
	if err != nil {
		t.Fatal(err)
	}
	p.Put(ref)

	G, iters := 4, 3
	if testing.Short() {
		iters = 2
	}
	var wg sync.WaitGroup
	for g := 0; g < G; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for it := 0; it < iters; it++ {
				app, err := p.Get(alpha)
				if err != nil {
					t.Error(err)
					return
				}
				got, err := app.Run(solveOpt(3))
				if err != nil {
					t.Error(err)
					p.Put(app)
					return
				}
				if len(got.History.Steps) != len(want.History.Steps) {
					t.Errorf("recycled instance: %d steps, want %d", len(got.History.Steps), len(want.History.Steps))
				} else {
					for k := range got.History.Steps {
						if got.History.Steps[k] != want.History.Steps[k] {
							t.Errorf("step %d differs on recycled instance: %+v vs %+v",
								k, got.History.Steps[k], want.History.Steps[k])
							break
						}
					}
				}
				p.Put(app)
			}
		}()
	}
	wg.Wait()
	s := p.Stats()
	if s.Gets != s.Puts {
		t.Fatalf("gets=%d puts=%d, want balanced", s.Gets, s.Puts)
	}
	if s.Live != 0 {
		t.Fatalf("live=%d, want 0", s.Live)
	}
	// Every build corresponds to a Get that found the free list empty, so
	// builds never exceeds the peak number of concurrently checked-out
	// instances (the reference solve plus one per goroutine).
	if s.Builds < 1 || s.Builds > int64(G+1) {
		t.Fatalf("builds=%d, want in [1,%d]", s.Builds, G+1)
	}
}

// TestGoldenConcurrentMatchesSequential is the headline correctness claim:
// N solves running CONCURRENTLY over one shared cached artifact produce
// residual histories identical — tolerance zero — to sequential, fully
// isolated solves of the same problems, across 1, 2 and 4 workers per
// solve, for both the three-sweep and the fused residual pipeline.
func TestGoldenConcurrentMatchesSequential(t *testing.T) {
	alphas := []float64{0, 1.5, 3.06, 5, 2.2, 4.1}
	cases := []struct {
		name    string
		threads int
		cfg     func(int) core.Config
	}{
		{"3sweep/w1", 1, testConfig},
		{"3sweep/w2", 2, testConfig},
		{"3sweep/w4", 4, testConfig},
		{"fused/w2", 2, fusedConfig},
	}
	if testing.Short() {
		// The CI race lane runs -short: one case per residual pipeline and a
		// shorter polar still recycle instances across concurrent jobs.
		alphas = alphas[:4]
		cases = append(cases[:0], cases[1], cases[3])
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := tc.cfg(tc.threads)

			// Sequential isolated reference solves: fresh mesh, fresh app,
			// one at a time.
			want := make(map[float64][]float64)
			for _, a := range alphas {
				c := cfg
				c.AlphaDeg = a
				app, err := core.NewApp(mustMesh(t), c)
				if err != nil {
					t.Fatal(err)
				}
				r, err := app.Run(solveOpt(6))
				app.Close()
				if err != nil {
					t.Fatal(err)
				}
				var rn []float64
				for _, s := range r.History.Steps {
					rn = append(rn, s.RNorm)
				}
				want[a] = rn
			}

			// The same problems through the engine: 3 concurrent solves over
			// one cached artifact, instances recycled across jobs.
			e := NewEngine(EngineConfig{
				Mesh:          testSpec(),
				Solver:        cfg,
				MaxConcurrent: 3,
				QueueDepth:    len(alphas),
			})
			defer e.Close()
			jobs := make([]*Job, len(alphas))
			for i, a := range alphas {
				j, err := e.Submit(JobRequest{AlphaDeg: a, MaxSteps: 6})
				if err != nil {
					t.Fatal(err)
				}
				jobs[i] = j
			}
			for i, j := range jobs {
				mustDone(t, j)
				h := j.History()
				ref := want[alphas[i]]
				if len(h.Steps) != len(ref) {
					t.Fatalf("alpha %g: %d steps, want %d", alphas[i], len(h.Steps), len(ref))
				}
				for k, s := range h.Steps {
					if s.RNorm != ref[k] {
						t.Fatalf("alpha %g step %d: rnorm %v != sequential %v (must be bit-identical)",
							alphas[i], k+1, s.RNorm, ref[k])
					}
				}
			}
			if st := e.Cache().Stats(); st.Builds != 1 {
				t.Fatalf("cache builds = %d, want 1 (all jobs share one artifact)", st.Builds)
			}
		})
	}
}

// TestEvictResumeExact evicts a running solve at step 3 (deterministically,
// via the AfterStep hook), resumes it, and requires the stitched trajectory
// to match an uninterrupted isolated solve bit for bit.
func TestEvictResumeExact(t *testing.T) {
	cfg := testConfig(2)
	cfg.AlphaDeg = 3.06

	app, err := core.NewApp(mustMesh(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	opt := solveOpt(10)
	opt.RelTol = 1e-30 // keep both runs going all 10 steps
	want, err := app.Run(opt)
	app.Close()
	if err != nil {
		t.Fatal(err)
	}

	var e *Engine
	var once sync.Once
	evicted := make(chan struct{})
	e = NewEngine(EngineConfig{
		Mesh:          testSpec(),
		Solver:        cfg,
		MaxConcurrent: 1,
		Hooks: Hooks{AfterStep: func(id string, step int) {
			if step == 3 {
				once.Do(func() {
					if err := e.Evict(id); err != nil {
						t.Errorf("evict: %v", err)
					}
					close(evicted)
				})
			}
		}},
	})
	defer e.Close()

	j, err := e.Submit(JobRequest{AlphaDeg: 3.06, MaxSteps: 10, RelTol: 1e-30})
	if err != nil {
		t.Fatal(err)
	}
	<-evicted
	if s := waitState(t, j, StateEvicted, 30*time.Second); s != StateEvicted {
		t.Fatalf("job state %s, want evicted", s)
	}
	if got := len(j.History().Steps); got != 3 {
		t.Fatalf("evicted after %d steps, want 3", got)
	}
	if err := e.Resume(j.ID); err != nil {
		t.Fatal(err)
	}
	mustDone(t, j)

	h := j.History()
	if len(h.Steps) != len(want.History.Steps) {
		t.Fatalf("stitched history has %d steps, want %d", len(h.Steps), len(want.History.Steps))
	}
	for k, s := range h.Steps {
		if s != want.History.Steps[k] {
			t.Fatalf("step %d differs from uninterrupted run: %+v vs %+v (must be bit-identical)",
				k+1, s, want.History.Steps[k])
		}
	}
}
