package service

import (
	"runtime"
	"sync"
	"sync/atomic"

	"fun3d/internal/core"
)

// StatePool recycles the per-solve mutable half of the solver — whole
// *core.App instances (state vector, Jacobian values, ILU factors,
// Newton/Krylov workspace, worker pool) — over one shared immutable
// artifact. Instances are poisoned with NaN on Put, so a kernel that read
// recycled scratch before rewriting it would surface immediately as a NaN
// residual rather than a silently stale trajectory; Get restores exactly
// the state a freshly constructed App would have.
//
// Backed by sync.Pool: under memory pressure the runtime may drop pooled
// instances, so each carries a finalizer that closes its worker goroutines
// when collected.
type StatePool struct {
	art  *core.Artifact
	base core.Config

	pool sync.Pool

	gets   atomic.Int64 // successful Gets
	puts   atomic.Int64 // Puts
	builds atomic.Int64 // Gets that constructed a fresh instance
	live   atomic.Int64 // instances currently checked out
}

// NewStatePool builds a pool of solver instances over art. base supplies
// the per-solve configuration (kernel variants, preconditioner settings);
// its structural fields must match art.Spec. Per-job flow setup (angle of
// attack) is applied at Get.
func NewStatePool(art *core.Artifact, base core.Config) *StatePool {
	return &StatePool{art: art, base: base}
}

// Get returns a ready-to-run solver instance at the given angle of attack:
// a recycled one reinitialized to freestream, or a freshly built one. The
// caller must Put it back (or Close it) when the solve finishes.
func (p *StatePool) Get(alphaDeg float64) (*core.App, error) {
	p.gets.Add(1)
	p.live.Add(1)
	if v := p.pool.Get(); v != nil {
		app := v.(*core.App)
		app.Prof.Reset()
		app.SetAlpha(alphaDeg)
		return app, nil
	}
	cfg := p.base
	cfg.AlphaDeg = alphaDeg
	app, err := core.NewAppFromArtifact(p.art, cfg)
	if err != nil {
		p.gets.Add(-1)
		p.live.Add(-1)
		return nil, err
	}
	p.builds.Add(1)
	// sync.Pool may drop the instance under GC pressure; close its worker
	// goroutines when that happens rather than leaking them.
	runtime.SetFinalizer(app, (*core.App).Close)
	return app, nil
}

// Put poisons the instance's mutable buffers and returns it to the pool
// for reuse by a later Get.
func (p *StatePool) Put(app *core.App) {
	p.puts.Add(1)
	p.live.Add(-1)
	app.PoisonState()
	p.pool.Put(app)
}

// Close drains the pool, closing every idle instance's worker pool.
// Checked-out instances are unaffected (their finalizers still run).
func (p *StatePool) Close() {
	for {
		v := p.pool.Get()
		if v == nil {
			return
		}
		app := v.(*core.App)
		runtime.SetFinalizer(app, nil)
		app.Close()
	}
}

// PoolStats reports instance traffic.
type PoolStats struct {
	Gets   int64 `json:"gets"`
	Puts   int64 `json:"puts"`
	Builds int64 `json:"builds"`
	Live   int64 `json:"live"`
}

// Stats snapshots the counters.
func (p *StatePool) Stats() PoolStats {
	return PoolStats{
		Gets: p.gets.Load(), Puts: p.puts.Load(),
		Builds: p.builds.Load(), Live: p.live.Load(),
	}
}
