package service

import (
	"sync"
	"sync/atomic"

	"fun3d/internal/core"
)

// StatePool recycles the per-solve mutable half of the solver — whole
// *core.App instances (state vector, Jacobian values, ILU factors,
// Newton/Krylov workspace, worker pool) — over one shared immutable
// artifact. Instances are poisoned with NaN on Put, so a kernel that read
// recycled scratch before rewriting it would surface immediately as a NaN
// residual rather than a silently stale trajectory; Get restores exactly
// the state a freshly constructed App would have.
//
// Idle instances are tracked explicitly on a free list owned by the pool,
// and Close walks it, shutting every instance's worker goroutines down.
// (An earlier sync.Pool-backed version leaned on a finalizer to reclaim
// dropped instances' workers, but an App is always reachable from its own
// live worker goroutines, so the finalizer could never fire and every
// instance the runtime dropped leaked its workers. Nothing here is dropped
// implicitly anymore: an instance is either checked out — the caller's to
// Put or Close — or idle on the list and released by Close.)
type StatePool struct {
	art  *core.Artifact
	base core.Config

	mu     sync.Mutex
	idle   []*core.App
	closed bool

	gets   atomic.Int64 // successful Gets
	puts   atomic.Int64 // Puts
	builds atomic.Int64 // Gets that constructed a fresh instance
	live   atomic.Int64 // instances currently checked out
}

// NewStatePool builds a pool of solver instances over art. base supplies
// the per-solve configuration (kernel variants, preconditioner settings);
// its structural fields must match art.Spec. Per-job flow setup (angle of
// attack) is applied at Get.
func NewStatePool(art *core.Artifact, base core.Config) *StatePool {
	return &StatePool{art: art, base: base}
}

// Get returns a ready-to-run solver instance at the given angle of attack:
// a recycled one reinitialized to freestream, or a freshly built one. The
// caller must Put it back (or Close it) when the solve finishes.
func (p *StatePool) Get(alphaDeg float64) (*core.App, error) {
	p.mu.Lock()
	var app *core.App
	if n := len(p.idle); n > 0 {
		app = p.idle[n-1]
		p.idle[n-1] = nil
		p.idle = p.idle[:n-1]
	}
	p.mu.Unlock()
	p.gets.Add(1)
	p.live.Add(1)
	if app != nil {
		app.Prof.Reset()
		app.SetAlpha(alphaDeg)
		return app, nil
	}
	cfg := p.base
	cfg.AlphaDeg = alphaDeg
	app, err := core.NewAppFromArtifact(p.art, cfg)
	if err != nil {
		p.gets.Add(-1)
		p.live.Add(-1)
		return nil, err
	}
	p.builds.Add(1)
	return app, nil
}

// Put poisons the instance's mutable buffers and returns it to the free
// list for reuse by a later Get. A Put after Close releases the instance
// instead of parking it.
func (p *StatePool) Put(app *core.App) {
	p.puts.Add(1)
	p.live.Add(-1)
	app.PoisonState()
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		app.Close()
		return
	}
	p.idle = append(p.idle, app)
	p.mu.Unlock()
}

// Close releases every idle instance's worker pool and marks the pool
// closed: later Puts close their instance instead of parking it, and later
// Gets build fresh (the engine only Closes pools after its workers stop).
// Instances checked out at Close time are released by their Put.
func (p *StatePool) Close() {
	p.mu.Lock()
	idle := p.idle
	p.idle = nil
	p.closed = true
	p.mu.Unlock()
	for _, app := range idle {
		app.Close()
	}
}

// PoolStats reports instance traffic.
type PoolStats struct {
	Gets   int64 `json:"gets"`
	Puts   int64 `json:"puts"`
	Builds int64 `json:"builds"`
	Live   int64 `json:"live"`
}

// Stats snapshots the counters.
func (p *StatePool) Stats() PoolStats {
	return PoolStats{
		Gets: p.gets.Load(), Puts: p.puts.Load(),
		Builds: p.builds.Load(), Live: p.live.Load(),
	}
}
