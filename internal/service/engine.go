package service

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"fun3d/internal/core"
	"fun3d/internal/mesh"
	"fun3d/internal/newton"
)

// JobState is a job's position in its lifecycle.
type JobState string

const (
	StateQueued   JobState = "queued"
	StateRunning  JobState = "running"
	StateDone     JobState = "done"
	StateFailed   JobState = "failed"
	StateCanceled JobState = "canceled"
	// StateEvicted marks a job whose running solve was checkpointed and
	// whose solver instance was released back to the pool. Resume re-queues
	// it; the continued trajectory is bit-identical to an uninterrupted run.
	StateEvicted JobState = "evicted"
)

// terminal reports whether the state is final (evicted is not: it can be
// resumed).
func (s JobState) terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// JobRequest describes one solve.
type JobRequest struct {
	// AlphaDeg is the freestream angle of attack (the per-job flow setup;
	// everything structural comes from the engine's base configuration).
	AlphaDeg float64 `json:"alpha_deg"`
	// MaxSteps/RelTol/CFL0 override the corresponding newton.Options
	// (zero = engine default).
	MaxSteps int     `json:"max_steps,omitempty"`
	RelTol   float64 `json:"rel_tol,omitempty"`
	CFL0     float64 `json:"cfl0,omitempty"`
	// Mesh overrides the engine's default mesh spec (nil = default). Jobs
	// on the same spec share one cached artifact.
	Mesh *mesh.GenSpec `json:"mesh,omitempty"`
}

// JobResult summarizes a finished solve.
type JobResult struct {
	Converged   bool          `json:"converged"`
	Steps       int           `json:"steps"`
	RNorm0      float64       `json:"rnorm0"`
	RNormFinal  float64       `json:"rnorm_final"`
	LinearIters int           `json:"linear_iters"`
	WallTime    time.Duration `json:"wall_time_ns"`
}

// Job is one tracked solve. All fields are guarded by mu; step appends and
// state changes broadcast on cond so streaming readers wake promptly.
type Job struct {
	ID string

	mu   sync.Mutex
	cond *sync.Cond

	req    JobRequest
	state  JobState
	err    string
	steps  []newton.StepStats // full history, accumulated across evict/resume
	result JobResult

	cancel   context.CancelFunc
	ctx      context.Context
	evicting bool // Evict (vs Cancel) triggered the context cancellation

	// Checkpointed state of an evicted job, ready for resume.
	ckpt       []byte
	ckptResume newton.Resume
	linIters   int // linear iterations accumulated before eviction

	submitted, started, finished time.Time
}

func (j *Job) locked(f func()) {
	j.mu.Lock()
	defer j.mu.Unlock()
	f()
}

// State returns the job's current lifecycle state.
func (j *Job) State() JobState {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Snapshot returns the job's current state, error and result.
func (j *Job) Snapshot() (JobState, string, JobResult, int) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state, j.err, j.result, len(j.steps)
}

// StepsFrom copies the residual history from step index lo (0-based into
// the accumulated list), blocking until at least one new step arrives, the
// job reaches a non-running state, or ctx is done. It returns the new steps
// and whether the caller should keep reading.
func (j *Job) StepsFrom(ctx context.Context, lo int) (steps []newton.StepStats, more bool) {
	stop := context.AfterFunc(ctx, func() {
		j.mu.Lock()
		j.cond.Broadcast()
		j.mu.Unlock()
	})
	defer stop()
	j.mu.Lock()
	defer j.mu.Unlock()
	for len(j.steps) <= lo && (j.state == StateQueued || j.state == StateRunning) && ctx.Err() == nil {
		j.cond.Wait()
	}
	steps = append(steps, j.steps[min(lo, len(j.steps)):]...)
	running := j.state == StateQueued || j.state == StateRunning
	return steps, running && ctx.Err() == nil
}

// Wait blocks until the job leaves the queued/running states or ctx is
// done, and returns the state it observed last.
func (j *Job) Wait(ctx context.Context) JobState {
	stop := context.AfterFunc(ctx, func() {
		j.mu.Lock()
		j.cond.Broadcast()
		j.mu.Unlock()
	})
	defer stop()
	j.mu.Lock()
	defer j.mu.Unlock()
	for (j.state == StateQueued || j.state == StateRunning) && ctx.Err() == nil {
		j.cond.Wait()
	}
	return j.state
}

// Times returns the job's submit/start/finish timestamps (zero value for
// transitions that have not happened). finished-submitted is the job's
// end-to-end latency including queueing.
func (j *Job) Times() (submitted, started, finished time.Time) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.submitted, j.started, j.finished
}

// History rebuilds the accumulated convergence history.
func (j *Job) History() newton.History {
	j.mu.Lock()
	defer j.mu.Unlock()
	h := newton.History{
		Steps:       append([]newton.StepStats(nil), j.steps...),
		RNorm0:      j.result.RNorm0,
		RNormFinal:  j.result.RNormFinal,
		LinearIters: j.result.LinearIters,
		Converged:   j.result.Converged,
	}
	return h
}

// Hooks are test seams invoked on engine workers.
type Hooks struct {
	// BeforeSolve runs on the worker goroutine after a job is dequeued and
	// marked running, before the solver instance is acquired. Tests use it
	// to hold jobs in flight deterministically.
	BeforeSolve func(jobID string)
	// AfterStep runs on the solving goroutine after each completed
	// pseudo-time step is recorded. Tests use it to trigger eviction or
	// cancellation at an exact step.
	AfterStep func(jobID string, step int)
}

// EngineConfig configures a solve engine.
type EngineConfig struct {
	// Mesh is the default mesh spec jobs solve on.
	Mesh mesh.GenSpec
	// Solver is the base solver configuration; Solver.Threads is the worker
	// pool size of EACH solve, so total compute parallelism is
	// MaxConcurrent x Threads.
	Solver core.Config
	// MaxConcurrent is the number of solves in flight (default 1).
	MaxConcurrent int
	// QueueDepth bounds the number of queued-but-not-running jobs
	// (default 16). A full queue rejects submissions with ErrQueueFull —
	// backpressure, not buffering.
	QueueDepth int
	// RetryAfter is the backoff the HTTP layer advertises on a full queue
	// (default 1s).
	RetryAfter time.Duration
	// DefaultMaxSteps caps solves that do not specify MaxSteps (default 200).
	DefaultMaxSteps int
	// Hooks are test seams.
	Hooks Hooks
}

func (c *EngineConfig) defaults() {
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 1
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 16
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.DefaultMaxSteps <= 0 {
		c.DefaultMaxSteps = 200
	}
}

// ErrQueueFull rejects a submission when the job queue is at capacity.
var ErrQueueFull = errors.New("service: job queue full")

// ErrClosed rejects operations on a closed engine.
var ErrClosed = errors.New("service: engine closed")

// Engine schedules solve jobs over a bounded worker set, sharing immutable
// artifacts through a MeshCache and recycling solver instances through
// per-artifact StatePools.
type Engine struct {
	cfg   EngineConfig
	cache *MeshCache

	mu     sync.Mutex
	jobs   map[string]*Job
	order  []string // submission order, for listing
	pools  map[MeshKey]*StatePool
	closed bool
	nextID int64

	queue chan *Job
	wg    sync.WaitGroup
}

// NewEngine starts an engine with cfg.MaxConcurrent workers.
func NewEngine(cfg EngineConfig) *Engine {
	cfg.defaults()
	e := &Engine{
		cfg:   cfg,
		cache: NewMeshCache(),
		jobs:  make(map[string]*Job),
		pools: make(map[MeshKey]*StatePool),
		queue: make(chan *Job, cfg.QueueDepth),
	}
	e.wg.Add(cfg.MaxConcurrent)
	for i := 0; i < cfg.MaxConcurrent; i++ {
		go e.worker()
	}
	return e
}

// Cache exposes the artifact cache (stats, pre-warming).
func (e *Engine) Cache() *MeshCache { return e.cache }

// Config returns the engine's (defaulted) configuration.
func (e *Engine) Config() EngineConfig { return e.cfg }

// Submit enqueues a solve. It returns ErrQueueFull when the queue is at
// capacity (the caller should back off RetryAfter) and ErrClosed after
// Close.
func (e *Engine) Submit(req JobRequest) (*Job, error) {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil, ErrClosed
	}
	e.nextID++
	j := &Job{
		ID:        fmt.Sprintf("job-%d", e.nextID),
		req:       req,
		state:     StateQueued,
		submitted: time.Now(),
	}
	j.cond = sync.NewCond(&j.mu)
	j.ctx, j.cancel = context.WithCancel(context.Background())
	select {
	case e.queue <- j:
	default:
		e.nextID-- // not admitted; reuse the ID
		e.mu.Unlock()
		return nil, ErrQueueFull
	}
	e.jobs[j.ID] = j
	e.order = append(e.order, j.ID)
	e.mu.Unlock()
	return j, nil
}

// Job looks up a job by ID.
func (e *Engine) Job(id string) (*Job, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	j, ok := e.jobs[id]
	return j, ok
}

// Jobs lists all jobs in submission order.
func (e *Engine) Jobs() []*Job {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]*Job, 0, len(e.order))
	for _, id := range e.order {
		out = append(out, e.jobs[id])
	}
	return out
}

// Cancel stops a queued or running job. Queued jobs are dropped when
// dequeued; running jobs stop at the next pseudo-time step boundary and
// their solver instance returns to the pool.
func (e *Engine) Cancel(id string) error {
	j, ok := e.Job(id)
	if !ok {
		return fmt.Errorf("service: no job %q", id)
	}
	j.locked(func() {
		if j.state == StateQueued {
			j.state = StateCanceled
			j.finished = time.Now()
			j.cond.Broadcast()
		}
	})
	j.cancel() // a running worker observes this at the next step boundary
	return nil
}

// Evict checkpoints a RUNNING job's state at the next step boundary and
// releases its solver instance back to the pool. The job parks in
// StateEvicted until Resume.
func (e *Engine) Evict(id string) error {
	j, ok := e.Job(id)
	if !ok {
		return fmt.Errorf("service: no job %q", id)
	}
	var err error
	j.locked(func() {
		if j.state != StateRunning {
			err = fmt.Errorf("service: job %q is %s, not running", id, j.state)
			return
		}
		j.evicting = true
	})
	if err != nil {
		return err
	}
	j.cancel()
	return nil
}

// Resume re-queues an evicted job. The solve continues from its checkpoint
// and the completed trajectory (checkpointed steps + resumed steps) is
// bit-identical to a never-evicted run.
func (e *Engine) Resume(id string) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return ErrClosed
	}
	j, ok := e.jobs[id]
	if !ok {
		return fmt.Errorf("service: no job %q", id)
	}
	var err error
	j.locked(func() {
		if j.state != StateEvicted {
			err = fmt.Errorf("service: job %q is %s, not evicted", id, j.state)
			return
		}
		j.state = StateQueued
		j.evicting = false
		j.ctx, j.cancel = context.WithCancel(context.Background())
		j.cond.Broadcast()
	})
	if err != nil {
		return err
	}
	select {
	case e.queue <- j:
		return nil
	default:
		j.locked(func() {
			j.state = StateEvicted
			j.cond.Broadcast()
		})
		return ErrQueueFull
	}
}

// Close stops accepting jobs, cancels everything in flight, waits for the
// workers to drain, and closes the pooled solver instances.
func (e *Engine) Close() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	e.closed = true
	jobs := make([]*Job, 0, len(e.jobs))
	for _, j := range e.jobs {
		jobs = append(jobs, j)
	}
	e.mu.Unlock()
	for _, j := range jobs {
		j.cancel()
	}
	close(e.queue)
	e.wg.Wait()
	e.mu.Lock()
	pools := e.pools
	e.pools = map[MeshKey]*StatePool{}
	e.mu.Unlock()
	for _, p := range pools {
		p.Close()
	}
}

// poolFor returns (building if needed) the instance pool for the job's
// mesh, sharing the cached artifact.
func (e *Engine) poolFor(spec mesh.GenSpec) (*StatePool, error) {
	art, err := e.cache.Get(spec, e.cfg.Solver)
	if err != nil {
		return nil, err
	}
	key := KeyFor(spec, e.cfg.Solver)
	e.mu.Lock()
	defer e.mu.Unlock()
	p, ok := e.pools[key]
	if !ok {
		p = NewStatePool(art, e.cfg.Solver)
		e.pools[key] = p
	}
	return p, nil
}

func (e *Engine) worker() {
	defer e.wg.Done()
	for j := range e.queue {
		e.runJob(j)
	}
}

// fail marks the job failed (outside of the solve path).
func (j *Job) fail(err error) {
	j.locked(func() {
		j.state = StateFailed
		j.err = err.Error()
		j.finished = time.Now()
		j.cond.Broadcast()
	})
}

func (e *Engine) runJob(j *Job) {
	var resume newton.Resume
	var ckpt []byte
	skip := false
	j.locked(func() {
		if j.state != StateQueued { // canceled while queued
			skip = true
			return
		}
		if j.ctx.Err() != nil { // canceled between queue and dequeue
			j.state = StateCanceled
			j.finished = time.Now()
			j.cond.Broadcast()
			skip = true
			return
		}
		j.state = StateRunning
		j.started = time.Now()
		ckpt = j.ckpt
		resume = j.ckptResume
		j.cond.Broadcast()
	})
	if skip {
		return
	}
	if e.cfg.Hooks.BeforeSolve != nil {
		e.cfg.Hooks.BeforeSolve(j.ID)
	}

	spec := e.cfg.Mesh
	if j.req.Mesh != nil {
		spec = *j.req.Mesh
	}
	pool, err := e.poolFor(spec)
	if err != nil {
		j.fail(err)
		return
	}
	app, err := pool.Get(j.req.AlphaDeg)
	if err != nil {
		j.fail(err)
		return
	}
	if ckpt != nil {
		// Resumed job: restore the checkpointed trajectory. The checkpoint
		// was written by the same engine at the same flow parameters, so a
		// parameter-mismatch warning here is a real error.
		if _, err := app.LoadStateResume(bytes.NewReader(ckpt)); err != nil {
			pool.Put(app)
			j.fail(fmt.Errorf("service: resume: %w", err))
			return
		}
	}

	opt := newton.Options{
		MaxSteps: e.cfg.DefaultMaxSteps,
		Ctx:      j.ctx,
		Resume:   resume,
		OnStep: func(s newton.StepStats) {
			j.locked(func() {
				j.steps = append(j.steps, s)
				j.cond.Broadcast()
			})
			if e.cfg.Hooks.AfterStep != nil {
				e.cfg.Hooks.AfterStep(j.ID, s.Step)
			}
		},
	}
	if j.req.MaxSteps > 0 {
		opt.MaxSteps = j.req.MaxSteps
	}
	if j.req.RelTol > 0 {
		opt.RelTol = j.req.RelTol
	}
	if j.req.CFL0 > 0 {
		opt.CFL0 = j.req.CFL0
	}

	res, runErr := app.Run(opt)

	j.mu.Lock()
	j.result.RNorm0 = res.History.RNorm0
	j.result.RNormFinal = res.History.RNormFinal
	j.result.LinearIters = j.linIters + res.History.LinearIters
	j.result.Converged = res.History.Converged
	j.result.Steps = len(j.steps)
	j.result.WallTime += res.WallTime
	evicting := j.evicting
	j.mu.Unlock()

	switch {
	case errors.Is(runErr, newton.ErrCanceled) && evicting:
		// Checkpoint the state at the last completed step; release the
		// instance. Resume picks the trajectory back up exactly.
		at := newton.Resume{StartStep: resume.StartStep + len(res.History.Steps), RNorm0: res.History.RNorm0}
		var buf bytes.Buffer
		if err := app.SaveStateAt(&buf, at); err != nil {
			pool.Put(app)
			j.fail(fmt.Errorf("service: evict checkpoint: %w", err))
			return
		}
		pool.Put(app)
		j.locked(func() {
			j.ckpt = buf.Bytes()
			j.ckptResume = at
			j.linIters = j.result.LinearIters
			j.state = StateEvicted
			j.evicting = false
			j.cond.Broadcast()
		})
	case errors.Is(runErr, newton.ErrCanceled):
		pool.Put(app)
		j.locked(func() {
			j.state = StateCanceled
			j.finished = time.Now()
			j.cond.Broadcast()
		})
	case runErr != nil:
		pool.Put(app)
		j.locked(func() {
			j.state = StateFailed
			j.err = runErr.Error()
			j.finished = time.Now()
			j.cond.Broadcast()
		})
	default:
		pool.Put(app)
		j.locked(func() {
			j.ckpt = nil
			j.state = StateDone
			j.finished = time.Now()
			j.cond.Broadcast()
		})
	}
}

// EngineStats snapshots the engine.
type EngineStats struct {
	Queued   int                  `json:"queued"`
	Running  int                  `json:"running"`
	Done     int                  `json:"done"`
	Failed   int                  `json:"failed"`
	Canceled int                  `json:"canceled"`
	Evicted  int                  `json:"evicted"`
	QueueCap int                  `json:"queue_cap"`
	Workers  int                  `json:"workers"`
	Cache    CacheStats           `json:"cache"`
	Pools    map[string]PoolStats `json:"pools"`
}

// Stats snapshots the job counts, cache and pool counters.
func (e *Engine) Stats() EngineStats {
	e.mu.Lock()
	jobs := make([]*Job, 0, len(e.jobs))
	for _, j := range e.jobs {
		jobs = append(jobs, j)
	}
	pools := make(map[string]PoolStats, len(e.pools))
	i := 0
	for k, p := range e.pools {
		pools[fmt.Sprintf("%dx%dx%d/t%d#%d", k.Mesh.NX, k.Mesh.NY, k.Mesh.NZ, k.Spec.Threads, i)] = p.Stats()
		i++
	}
	s := EngineStats{
		QueueCap: cap(e.queue),
		Workers:  e.cfg.MaxConcurrent,
		Queued:   len(e.queue),
		Cache:    e.cache.Stats(),
		Pools:    pools,
	}
	e.mu.Unlock()
	for _, j := range jobs {
		switch j.State() {
		case StateRunning:
			s.Running++
		case StateDone:
			s.Done++
		case StateFailed:
			s.Failed++
		case StateCanceled:
			s.Canceled++
		case StateEvicted:
			s.Evicted++
		}
	}
	return s
}
