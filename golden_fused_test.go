package fun3d_test

import (
	"testing"

	"fun3d"
)

// TestGoldenFusedTrajectory is the ISSUE 5 acceptance test: a Newton solve
// of the wing case with the fused cache-blocked residual pipeline must
// converge with an IDENTICAL residual trajectory to the three-sweep path —
// bit-for-bit, not merely within tolerance. The fused gather accumulates
// each vertex's gradient over its incident edges in ascending edge order,
// which reproduces the scatter loops' per-accumulator IEEE operation
// sequence exactly; this test pins that argument end-to-end through the
// Newton/GMRES stack on the optimized (ReplicateMETIS, SIMD, prefetch)
// configuration.
func TestGoldenFusedTrajectory(t *testing.T) {
	m, err := fun3d.GenerateMesh(fun3d.MeshTiny())
	if err != nil {
		t.Fatal(err)
	}
	run := func(fused bool) fun3d.RunResult {
		t.Helper()
		cfg := fun3d.Optimized(4)
		cfg.SecondOrder = true
		cfg.Limiter = true
		cfg.Fused = fused
		cfg.TileEdges = 2048 // several tiles even on the tiny mesh
		solver, err := fun3d.NewSolver(m, cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer solver.Close()
		r, err := solver.Run(fun3d.SolveOptions{MaxSteps: 30, CFL0: 20})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	unfused := run(false)
	fused := run(true)

	if !fused.History.Converged || !unfused.History.Converged {
		t.Fatalf("convergence: fused=%v unfused=%v", fused.History.Converged, unfused.History.Converged)
	}
	if fused.History.RNorm0 != unfused.History.RNorm0 {
		t.Errorf("RNorm0: fused %.17g != unfused %.17g", fused.History.RNorm0, unfused.History.RNorm0)
	}
	if len(fused.History.Steps) != len(unfused.History.Steps) {
		t.Fatalf("step counts differ: fused %d, unfused %d",
			len(fused.History.Steps), len(unfused.History.Steps))
	}
	for i := range fused.History.Steps {
		f, u := fused.History.Steps[i], unfused.History.Steps[i]
		if f.RNorm != u.RNorm {
			t.Errorf("step %d: ||R|| fused %.17g != unfused %.17g", f.Step, f.RNorm, u.RNorm)
		}
		if f.LinearIters != u.LinearIters {
			t.Errorf("step %d: GMRES iters fused %d != unfused %d", f.Step, f.LinearIters, u.LinearIters)
		}
	}
}
