// Package fun3d is a pure-Go reproduction of the PETSc-FUN3D system studied
// in "Exploring Shared-Memory Optimizations for an Unstructured Mesh CFD
// Application on Modern Parallel Systems" (IPDPS 2015): a vertex-centered
// unstructured tetrahedral mesh solver for the incompressible Euler
// equations (artificial compressibility), driven by pseudo-transient
// Newton-Krylov-Schwarz with matrix-free GMRES and block-ILU
// preconditioning, plus the paper's full shared-memory optimization ladder
// and a virtual-time multi-node simulator.
//
// Quick start:
//
//	m, _ := fun3d.GenerateMesh(fun3d.MeshC())
//	solver, _ := fun3d.NewSolver(m, fun3d.Optimized(8))
//	defer solver.Close()
//	result, _ := solver.Run(fun3d.SolveOptions{MaxSteps: 50})
//	fmt.Println(result.History.Converged, solver.Profile())
//
// The package is a facade over the internal packages; everything here is
// stable API for downstream use.
package fun3d

import (
	"io"

	"fun3d/internal/core"
	"fun3d/internal/export"
	"fun3d/internal/mesh"
	"fun3d/internal/mpisim"
	"fun3d/internal/newton"
	"fun3d/internal/perfmodel"
	"fun3d/internal/prof"
	"fun3d/internal/reorder"
)

// Mesh is an unstructured tetrahedral mesh with vertex-centered
// median-dual metrics.
type Mesh = mesh.Mesh

// MeshSpec configures mesh generation (grid dimensions, wing geometry,
// vertex shuffling).
type MeshSpec = mesh.GenSpec

// WingParams describes the carved wing planform.
type WingParams = mesh.WingParams

// GenerateMesh builds a mesh from spec. Call (*Mesh).Validate to check the
// discrete geometric identities.
func GenerateMesh(spec MeshSpec) (*Mesh, error) { return mesh.Generate(spec) }

// MeshC returns the single-node workload spec (the paper's Mesh-C, scaled).
func MeshC() MeshSpec { return mesh.SpecC() }

// MeshD returns the multi-node workload spec (the paper's Mesh-D, scaled;
// ~8x MeshC, preserving the paper's ratio).
func MeshD() MeshSpec { return mesh.SpecD() }

// MeshTiny returns a small spec for tests and demos.
func MeshTiny() MeshSpec { return mesh.SpecTiny() }

// ScaleMesh returns a spec with roughly f times the vertices of base.
func ScaleMesh(base MeshSpec, f float64) MeshSpec { return mesh.ScaleSpec(base, f) }

// Config selects the solver configuration and optimization level; see
// Baseline and Optimized for the paper's two endpoints.
type Config = core.Config

// Baseline returns the paper's out-of-the-box single-threaded
// configuration.
func Baseline() Config { return core.BaselineConfig() }

// Optimized returns the paper's fully optimized shared-memory
// configuration on the given thread count.
func Optimized(threads int) Config { return core.OptimizedConfig(threads) }

// Ordering selects the vertex reordering applied to the mesh before
// solving (Config.Order): RCM bandwidth reduction or a space-filling
// curve through the vertex coordinates.
type Ordering = reorder.Kind

// The available orderings.
const (
	OrderNatural = reorder.KindNatural
	OrderRCM     = reorder.KindRCM
	OrderMorton  = reorder.KindMorton
	OrderHilbert = reorder.KindHilbert
)

// ParseOrdering parses "natural", "rcm", "morton" or "hilbert".
func ParseOrdering(s string) (Ordering, error) { return reorder.ParseKind(s) }

// OrderingStats reports an applied ordering's bandwidth/profile change.
type OrderingStats = core.OrderStats

// ReorderMesh applies an ordering to a mesh (for pre-decomposition
// reordering outside a Solver, e.g. cluster simulations) and reports the
// locality metrics achieved. The returned permutation is nil for natural
// order.
func ReorderMesh(m *Mesh, kind Ordering) (*Mesh, []int32, OrderingStats, error) {
	return core.ReorderMesh(m, kind)
}

// SolveOptions controls the pseudo-transient Newton iteration.
type SolveOptions = newton.Options

// RunResult reports a solve (history + wall time).
type RunResult = core.RunResult

// SurfaceSample is one wall-vertex pressure coefficient.
type SurfaceSample = core.SurfaceSample

// Solver is a configured solver instance bound to a mesh.
type Solver struct {
	app *core.App
}

// NewSolver builds a solver for mesh m under cfg.
func NewSolver(m *Mesh, cfg Config) (*Solver, error) {
	app, err := core.NewApp(m, cfg)
	if err != nil {
		return nil, err
	}
	return &Solver{app: app}, nil
}

// Artifact is the immutable, shareable part of a solver: mesh, median-dual
// geometry, reordering permutation, partition, tile cover, and Jacobian
// sparsity, built once. Any number of Solvers (including concurrent ones)
// can be constructed over one Artifact; only their mutable state is
// per-instance. The multi-solve service (internal/service, cmd/fun3dd)
// caches these by spec.
type Artifact = core.Artifact

// BuildArtifact precomputes the immutable solver artifact for mesh m under
// cfg's structural fields (ordering, threads, strategy, partition seed,
// fused tiling).
func BuildArtifact(m *Mesh, cfg Config) (*Artifact, error) {
	return core.BuildArtifact(m, cfg)
}

// NewSolverFromArtifact builds a solver over a shared prebuilt artifact.
// cfg's structural fields must match the ones the artifact was built with
// (flow parameters — alpha, beta, CFL — are free); a solver built this way
// behaves bit-identically to one built by NewSolver.
func NewSolverFromArtifact(art *Artifact, cfg Config) (*Solver, error) {
	app, err := core.NewAppFromArtifact(art, cfg)
	if err != nil {
		return nil, err
	}
	return &Solver{app: app}, nil
}

// ErrClosed is returned by Run when the solver has been closed.
var ErrClosed = core.ErrClosed

// Run drives the solver to convergence (or opt.MaxSteps). Run returns
// ErrClosed after Close; a Close issued during a Run waits for the solve
// to finish. Cancel a long solve with SolveOptions.Ctx.
func (s *Solver) Run(opt SolveOptions) (RunResult, error) { return s.app.Run(opt) }

// Reset restores the freestream initial condition.
func (s *Solver) Reset() { s.app.ResetState() }

// State returns the current state vector in the original mesh vertex
// numbering, 4 unknowns (p,u,v,w) per vertex.
func (s *Solver) State() []float64 { return s.app.StateOriginalOrder() }

// SurfacePressure extracts the wall-surface pressure coefficients.
func (s *Solver) SurfacePressure() []SurfaceSample { return s.app.SurfacePressure() }

// Forces holds integrated aerodynamic loads (lift/drag coefficients).
type Forces = core.Forces

// SurfaceForces integrates the wall pressure into force coefficients;
// sref <= 0 estimates the reference area from the wing planform.
func (s *Solver) SurfaceForces(sref float64) Forces { return s.app.SurfaceForces(sref) }

// WriteVTK writes the mesh and current state as a legacy-ASCII VTK
// unstructured grid (ParaView/VisIt).
func (s *Solver) WriteVTK(w io.Writer) error {
	return export.VTK(w, s.app.Mesh, s.app.Q)
}

// SaveState writes a solution checkpoint (portable across solver
// configurations on the same mesh).
func (s *Solver) SaveState(w io.Writer) error { return s.app.SaveState(w) }

// LoadState restores a checkpoint written by SaveState. If the checkpoint
// was written at different flow parameters, the state is still loaded, the
// checkpoint's parameters are adopted, and a *ParamMismatchError is
// returned as a warning (detect with errors.As).
func (s *Solver) LoadState(r io.Reader) error { return s.app.LoadState(r) }

// ParamMismatchError is the warning LoadState returns when a checkpoint's
// flow parameters differ from the solver's configuration.
type ParamMismatchError = core.ParamMismatchError

// Profile returns the per-kernel time breakdown accumulated so far.
func (s *Solver) Profile() *prof.Metrics { return s.app.Prof }

// Describe summarizes the active configuration.
func (s *Solver) Describe() string { return s.app.Describe() }

// OrderingStats reports the vertex ordering this solver applied and the
// bandwidth/profile improvement achieved.
func (s *Solver) OrderingStats() OrderingStats { return s.app.Order }

// Close releases the solver's worker pool. It is idempotent and safe to
// call concurrently, including while a Run is in flight: the close waits
// for the solve, and any Run entered afterwards fails with ErrClosed.
func (s *Solver) Close() { s.app.Close() }

// ClusterConfig describes a simulated multi-node run (rank count, kernel
// rates, network model, fault plan).
type ClusterConfig = mpisim.Config

// FaultConfig describes deterministic fault injection for a simulated
// cluster run: seeded straggler noise, point-to-point jitter, and
// scheduled rank crashes recovered from periodic in-memory checkpoints.
type FaultConfig = mpisim.FaultConfig

// CrashError is the error a simulated run reports when it gives up after
// exhausting its restart budget under injected crashes.
type CrashError = mpisim.CrashError

// ClusterResult reports a simulated multi-node run: real convergence
// counts, modeled time, and the communication breakdown.
type ClusterResult = mpisim.Result

// Network is the LogGP-style interconnect model.
type Network = perfmodel.Network

// AllreduceAlgo selects the collective cost model of a Network.
type AllreduceAlgo = perfmodel.AllreduceAlgo

// Allreduce cost models: recursive-doubling tree (the MPI default), the
// flat linear gather+broadcast the paper's scaling discussion warns about,
// and the SMP-aware hierarchical algorithm (shared-memory intra-node
// reduction + inter-node recursive doubling over node leaders).
const (
	AllreduceTree = perfmodel.AllreduceTree
	AllreduceFlat = perfmodel.AllreduceFlat
	AllreduceHier = perfmodel.AllreduceHier
)

// ParseAllreduce parses "tree", "flat" or "hierarchical".
func ParseAllreduce(s string) (AllreduceAlgo, error) { return perfmodel.ParseAllreduce(s) }

// Topology selects a Network's interconnect hop model.
type Topology = perfmodel.Topology

// The available topologies: hop-blind flat crossbar, two-level fat-tree
// (leaf/spine pods), and dragonfly groups with all-to-all global links.
const (
	TopoFlat      = perfmodel.TopoFlat
	TopoFatTree   = perfmodel.TopoFatTree
	TopoDragonfly = perfmodel.TopoDragonfly
)

// ParseTopology parses "flat", "fattree"/"fat-tree" or "dragonfly".
func ParseTopology(s string) (Topology, error) { return perfmodel.ParseTopology(s) }

// Placement selects how ranks map to nodes: contiguous blocks, round-robin,
// or the graph-driven locality mapping (an explicit rank->node table built
// from the decomposition's halo traffic graph).
type Placement = perfmodel.Placement

// The available rank placements.
const (
	PlaceBlock      = perfmodel.PlaceBlock
	PlaceRoundRobin = perfmodel.PlaceRoundRobin
	PlaceLocality   = perfmodel.PlaceLocality
)

// ParsePlacement parses "block", "roundrobin"/"rr" or "locality".
func ParsePlacement(s string) (Placement, error) { return perfmodel.ParsePlacement(s) }

// CollectiveCost is a modeled collective's cost breakdown: seconds plus the
// structural stage and switch-hop counts (exact functions of algorithm,
// topology, placement, and rank count).
type CollectiveCost = perfmodel.CollectiveCost

// KernelRates are calibrated per-unit kernel costs.
type KernelRates = perfmodel.Rates

// StampedeNetwork returns fabric parameters approximating the paper's
// TACC Stampede system.
func StampedeNetwork() Network { return perfmodel.Stampede() }

// StampedeFatTreeNetwork is StampedeNetwork with the fabric's fat-tree
// topology made explicit: 16-node leaf pods and a per-hop latency, so
// cross-pod stages cost more than neighbor stages.
func StampedeFatTreeNetwork() Network { return perfmodel.StampedeFatTree() }

// MeasureRates calibrates kernel rates by running the real kernels on m.
func MeasureRates(m *Mesh, threads int, optimized bool) (KernelRates, error) {
	return perfmodel.Measure(m, threads, optimized)
}

// SimulateCluster runs the distributed NKS solver over cfg.Ranks simulated
// ranks: the numerics (halo exchanges, rank-local ILU, Allreduce inner
// products) execute for real; time is virtual, driven by cfg.Rates and
// cfg.Net.
func SimulateCluster(m *Mesh, cfg ClusterConfig) (ClusterResult, error) {
	return mpisim.Solve(m, cfg)
}

// ClusterSpec pins the structural inputs a ClusterArtifact is built from
// (rank count, partitioner, ILU fill level, seed).
type ClusterSpec = mpisim.ClusterSpec

// ClusterArtifact is the immutable, shareable part of a simulated cluster
// run: the decomposition plus every rank's local mesh, Jacobian sparsity,
// and symbolic ILU template. Build it once per rank count and run any
// number of (possibly concurrent) SimulateClusterArtifact sweeps over it —
// the artifact is the expensive part of SimulateCluster at scale.
type ClusterArtifact = mpisim.Artifact

// BuildClusterArtifact decomposes m per spec and precomputes every rank's
// structural state.
func BuildClusterArtifact(m *Mesh, spec ClusterSpec) (*ClusterArtifact, error) {
	return mpisim.BuildArtifact(m, spec)
}

// SimulateClusterArtifact runs one simulated cluster solve over a prebuilt
// artifact. cfg's structural fields must match the artifact's spec;
// results are bit-identical to SimulateCluster on the same mesh and config.
func SimulateClusterArtifact(art *ClusterArtifact, cfg ClusterConfig) (ClusterResult, error) {
	return mpisim.SolveArtifact(art, cfg)
}
