package fun3d_test

import (
	"math"
	"testing"

	"fun3d"
)

// goldenStep is one pinned Newton step of the seed wing case.
type goldenStep struct {
	step        int
	rnorm       float64
	linearIters int
}

// The golden values were produced by the sequential baseline on the tiny
// wing mesh (the seed case every example and benchmark starts from). The
// iteration counts are exact integers and must not drift at all; the
// residual norms get a tight relative tolerance so legitimate
// floating-point-neutral refactors (e.g. new strategies defaulting off)
// don't trip it, while any change to the numerics does.
var (
	goldenRNorm0 = 2.5402294033894131
	goldenSteps  = []goldenStep{
		{1, 0.28278892427075142, 2},
		{2, 0.0072461420795148493, 3},
		{3, 2.7874380704732287e-05, 4},
		{4, 6.741405576618596e-09, 5},
	}
)

// TestGoldenSeedWingCase pins the Newton residual history and GMRES
// iteration counts of the seed wing case. It is the regression tripwire
// for the whole numerical stack: flux discretization, Jacobian assembly,
// ILU preconditioning, GMRES, and the SER CFL schedule all feed these
// numbers. If this fails after a refactor that was supposed to be
// numerics-neutral, the refactor was not numerics-neutral.
func TestGoldenSeedWingCase(t *testing.T) {
	m, err := fun3d.GenerateMesh(fun3d.MeshTiny())
	if err != nil {
		t.Fatal(err)
	}
	solver, err := fun3d.NewSolver(m, fun3d.Baseline())
	if err != nil {
		t.Fatal(err)
	}
	defer solver.Close()
	r, err := solver.Run(fun3d.SolveOptions{MaxSteps: 50, CFL0: 20})
	if err != nil {
		t.Fatal(err)
	}
	h := r.History

	if !h.Converged {
		t.Fatalf("seed case no longer converges: %+v", h)
	}
	const relTol = 1e-9
	if d := math.Abs(h.RNorm0-goldenRNorm0) / goldenRNorm0; d > relTol {
		t.Errorf("RNorm0 drifted: got %.17g want %.17g (rel %g)", h.RNorm0, goldenRNorm0, d)
	}
	if len(h.Steps) != len(goldenSteps) {
		t.Fatalf("step count changed: got %d want %d (history %+v)", len(h.Steps), len(goldenSteps), h.Steps)
	}
	total := 0
	for i, want := range goldenSteps {
		got := h.Steps[i]
		if got.Step != want.step {
			t.Errorf("step %d: numbered %d", i, got.Step)
		}
		if got.LinearIters != want.linearIters {
			t.Errorf("step %d: GMRES iters %d, golden %d", want.step, got.LinearIters, want.linearIters)
		}
		if d := math.Abs(got.RNorm-want.rnorm) / want.rnorm; d > relTol {
			t.Errorf("step %d: ||R|| %.17g, golden %.17g (rel %g)", want.step, got.RNorm, want.rnorm, d)
		}
		total += got.LinearIters
	}
	if h.LinearIters != total || total != 14 {
		t.Errorf("total GMRES iters %d (sum %d), golden 14", h.LinearIters, total)
	}
}
