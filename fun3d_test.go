package fun3d_test

import (
	"math"
	"runtime"
	"testing"

	"fun3d"
)

// The public API end-to-end: generate, validate, solve, inspect.
func TestPublicAPIQuickstart(t *testing.T) {
	m, err := fun3d.GenerateMesh(fun3d.MeshTiny())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	solver, err := fun3d.NewSolver(m, fun3d.Optimized(runtime.NumCPU()))
	if err != nil {
		t.Fatal(err)
	}
	defer solver.Close()
	r, err := solver.Run(fun3d.SolveOptions{MaxSteps: 50, CFL0: 20})
	if err != nil {
		t.Fatal(err)
	}
	if !r.History.Converged {
		t.Fatalf("not converged: %+v", r.History)
	}
	if len(solver.State()) != m.NumVertices()*4 {
		t.Fatal("state length")
	}
	if len(solver.SurfacePressure()) == 0 {
		t.Fatal("no surface samples")
	}
	if solver.Profile().Sum() <= 0 {
		t.Fatal("empty profile")
	}
	if solver.Describe() == "" {
		t.Fatal("empty description")
	}

	// Reset and re-run must reproduce the same convergence.
	solver.Reset()
	r2, err := solver.Run(fun3d.SolveOptions{MaxSteps: 50, CFL0: 20})
	if err != nil {
		t.Fatal(err)
	}
	if r2.History.LinearIters != r.History.LinearIters {
		t.Fatalf("non-reproducible: %d vs %d iters", r2.History.LinearIters, r.History.LinearIters)
	}
}

func TestPublicAPICluster(t *testing.T) {
	m, err := fun3d.GenerateMesh(fun3d.MeshTiny())
	if err != nil {
		t.Fatal(err)
	}
	sample, err := fun3d.GenerateMesh(fun3d.MeshTiny())
	if err != nil {
		t.Fatal(err)
	}
	rates, err := fun3d.MeasureRates(sample, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	res, err := fun3d.SimulateCluster(m, fun3d.ClusterConfig{
		Ranks: 4, Rates: rates, Net: fun3d.StampedeNetwork(), MaxSteps: 40,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || res.Time <= 0 {
		t.Fatalf("cluster run: %+v", res)
	}
	if f := res.CommFraction(); f < 0 || f > 1 || math.IsNaN(f) {
		t.Fatalf("comm fraction %v", f)
	}
}

func TestBaselineVsOptimizedSamePhysics(t *testing.T) {
	m, err := fun3d.GenerateMesh(fun3d.MeshTiny())
	if err != nil {
		t.Fatal(err)
	}
	run := func(cfg fun3d.Config) []float64 {
		s, err := fun3d.NewSolver(m, cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		if _, err := s.Run(fun3d.SolveOptions{MaxSteps: 50}); err != nil {
			t.Fatal(err)
		}
		return s.State()
	}
	qb := run(fun3d.Baseline())
	qo := run(fun3d.Optimized(2))
	for i := range qb {
		if math.Abs(qb[i]-qo[i]) > 1e-3 {
			t.Fatalf("solutions diverge at %d: %v vs %v", i, qb[i], qo[i])
		}
	}
}

func TestScaleMesh(t *testing.T) {
	small := fun3d.ScaleMesh(fun3d.MeshC(), 0.1)
	m, err := fun3d.GenerateMesh(small)
	if err != nil {
		t.Fatal(err)
	}
	big, err := fun3d.GenerateMesh(fun3d.ScaleMesh(fun3d.MeshC(), 0.2))
	if err != nil {
		t.Fatal(err)
	}
	if m.NumVertices() >= big.NumVertices() {
		t.Fatal("scaling down did not shrink the mesh")
	}
}
