// Command benchdiff compares two BENCH_*.json artifacts kernel-by-kernel
// and exits nonzero when any kernel regressed beyond the threshold. It is
// the CI gate behind the committed baseline artifact.
//
// Two comparison modes:
//
//   - absolute (default): ratios of per-kernel seconds. Right when both
//     artifacts come from the same machine (a before/after check).
//   - -shares: ratios of each kernel's share of the profiled total. Shares
//     are machine-independent, so this is the mode for CI runners compared
//     against a baseline recorded elsewhere.
//
// -gate-rates adds derived rates (Artifact.Rates keys) to the gate: a named
// rate that grows past threshold×old — or disappears from the new artifact —
// fails the diff. Rates are counts per unit of work, so they gate behaviour
// (e.g. collectives per Krylov iteration) independent of machine speed.
//
// -update-baseline is the one sanctioned way to refresh a committed
// baseline: it validates the fresh artifact and rewrites the baseline file
// in place.
//
// Examples:
//
//	benchdiff old.json new.json
//	benchdiff -threshold 2.0 old.json new.json
//	benchdiff -shares -threshold 3.0 baseline/BENCH_quick.json BENCH_quick.json
//	benchdiff -shares -gate-rates krylov_allreduce_per_gmres_iter old.json new.json
//	benchdiff -update-baseline bench-out/BENCH_quick.json internal/bench/testdata/BENCH_quick_baseline.json
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"text/tabwriter"

	"fun3d/internal/prof"
)

func main() {
	var (
		threshold = flag.Float64("threshold", 1.5, "new/old ratio above which a kernel counts as regressed")
		minSec    = flag.Float64("min-seconds", 1e-3, "noise floor: ignore kernels faster than this in both artifacts")
		shares    = flag.Bool("shares", false, "compare shares of total time (machine-independent) instead of seconds")
		gateRates = flag.String("gate-rates", "", "comma-separated derived rates that must not regress (e.g. krylov_allreduce_per_gmres_iter)")
		update    = flag.Bool("update-baseline", false, "rewrite <baseline.json> from <fresh.json> instead of diffing; usage: benchdiff -update-baseline <fresh.json> <baseline.json>")
	)
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [flags] <old.json> <new.json>")
		fmt.Fprintln(os.Stderr, "       benchdiff -update-baseline <fresh.json> <baseline.json>")
		flag.PrintDefaults()
		os.Exit(2)
	}
	if *update {
		fresh, baseline := flag.Arg(0), flag.Arg(1)
		if err := prof.UpdateBaseline(fresh, baseline); err != nil {
			fatal(err)
		}
		fmt.Printf("benchdiff: baseline %s updated from %s\n", baseline, fresh)
		return
	}
	oldA, err := prof.ReadArtifact(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	newA, err := prof.ReadArtifact(flag.Arg(1))
	if err != nil {
		fatal(err)
	}
	var rates []string
	if *gateRates != "" {
		for _, r := range strings.Split(*gateRates, ",") {
			if r = strings.TrimSpace(r); r != "" {
				rates = append(rates, r)
			}
		}
	}
	entries, regressed, err := prof.DiffArtifacts(oldA, newA, prof.DiffOptions{
		Threshold:  *threshold,
		MinSeconds: *minSec,
		Shares:     *shares,
		GateRates:  rates,
	})
	if err != nil {
		fatal(err)
	}

	unit := "s"
	if *shares {
		unit = " share"
	}
	fmt.Printf("benchdiff: %s (%s) vs %s (%s), threshold %.2fx\n",
		flag.Arg(0), oldA.Experiment, flag.Arg(1), newA.Experiment, *threshold)
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "kernel\told%s\tnew%s\tratio\t\n", unit, unit)
	for _, e := range entries {
		flagStr := ""
		if e.Regressed {
			flagStr = "REGRESSED"
		}
		fmt.Fprintf(w, "%s\t%.4f\t%.4f\t%.2fx\t%s\n", e.Kernel, e.Old, e.New, e.Ratio, flagStr)
	}
	w.Flush()
	if regressed {
		fmt.Println("FAIL: at least one kernel or gated rate regressed beyond the threshold")
		os.Exit(1)
	}
	fmt.Println("OK: no kernel or gated rate regressed beyond the threshold")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchdiff:", err)
	os.Exit(1)
}
