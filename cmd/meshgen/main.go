// Command meshgen generates, validates, and inspects wing meshes, printing
// Table-I-style statistics. It can also write a mesh to disk in the
// repository's gob-based format for reuse.
//
// Examples:
//
//	meshgen -mesh c                         # stats + validation
//	meshgen -mesh d -out meshd.bin          # generate and save
//	meshgen -in meshd.bin                   # load and re-validate
//	meshgen -nx 60 -ny 40 -nz 36            # custom grid
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"fun3d"
	"fun3d/internal/mesh"
	"fun3d/internal/reorder"
)

func main() {
	var (
		meshName = flag.String("mesh", "c", "mesh preset: tiny, c, d (ignored with -nx)")
		scale    = flag.Float64("scale", 1, "scale factor on the preset")
		nx       = flag.Int("nx", 0, "custom grid: x vertices")
		ny       = flag.Int("ny", 0, "custom grid: y vertices")
		nz       = flag.Int("nz", 0, "custom grid: z vertices")
		noWing   = flag.Bool("no-wing", false, "skip the wing carve-out")
		seed     = flag.Uint64("seed", 42, "vertex shuffle seed")
		outPath  = flag.String("out", "", "write the mesh to this file")
		inPath   = flag.String("in", "", "load a mesh from this file instead of generating")
		rcm      = flag.Bool("rcm", false, "report RCM bandwidth reduction")
		quality  = flag.Bool("quality", false, "report element quality (dihedral angles, aspect)")
	)
	flag.Parse()

	var m *fun3d.Mesh
	var err error
	t0 := time.Now()
	if *inPath != "" {
		m, err = mesh.ReadFile(*inPath)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("loaded %s in %v\n", *inPath, time.Since(t0).Round(time.Millisecond))
	} else {
		var spec fun3d.MeshSpec
		if *nx > 0 {
			spec = fun3d.MeshSpec{NX: *nx, NY: *ny, NZ: *nz, Wing: mesh.M6Wing(),
				HasWing: !*noWing, Shuffle: true, Seed: *seed}
		} else {
			switch *meshName {
			case "tiny":
				spec = fun3d.MeshTiny()
			case "c":
				spec = fun3d.MeshC()
			case "d":
				spec = fun3d.MeshD()
			default:
				fatal(fmt.Errorf("unknown mesh %q", *meshName))
			}
			if *scale != 1 {
				spec = fun3d.ScaleMesh(spec, *scale)
			}
			spec.Seed = *seed
			if *noWing {
				spec.HasWing = false
			}
		}
		m, err = fun3d.GenerateMesh(spec)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("generated in %v\n", time.Since(t0).Round(time.Millisecond))
	}

	fmt.Println(m.ComputeStats())
	t0 = time.Now()
	if err := m.Validate(); err != nil {
		fatal(fmt.Errorf("validation FAILED: %w", err))
	}
	fmt.Printf("validation OK (closure + volumes) in %v\n", time.Since(t0).Round(time.Millisecond))

	if *quality {
		fmt.Println("quality:", m.ComputeQuality())
	}

	if *rcm {
		g := reorder.Graph{Ptr: m.AdjPtr, Adj: m.Adj}
		bwNat := reorder.Bandwidth(g, nil)
		perm := reorder.RCM(g)
		bwRCM := reorder.Bandwidth(g, perm)
		fmt.Printf("bandwidth: natural=%d rcm=%d (%.1fX reduction)\n",
			bwNat, bwRCM, float64(bwNat)/float64(bwRCM))
	}

	if *outPath != "" {
		if err := mesh.WriteFile(*outPath, m); err != nil {
			fatal(err)
		}
		fmt.Println("wrote", *outPath)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "meshgen:", err)
	os.Exit(1)
}
