// Command fun3d runs the full solver on a generated wing mesh with all
// optimization switches exposed, printing the convergence history and the
// Fig-5-style per-kernel profile.
//
// Examples:
//
//	fun3d -mesh c -threads 8                 # optimized configuration
//	fun3d -mesh c -baseline                  # the paper's baseline
//	fun3d -mesh tiny -threads 4 -order2      # second-order + limiter
//	fun3d -scale 0.5 -strategy atomic        # half-size mesh, atomics
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"

	"fun3d"
	"fun3d/internal/flux"
	"fun3d/internal/newton"
	"fun3d/internal/precond"
)

func main() {
	var (
		meshName = flag.String("mesh", "c", "mesh preset: tiny, c, d")
		scale    = flag.Float64("scale", 1, "scale the mesh vertex count by this factor")
		baseline = flag.Bool("baseline", false, "run the paper's baseline configuration")
		threads  = flag.Int("threads", runtime.NumCPU(), "worker threads")
		strategy = flag.String("strategy", "metis", "edge-loop strategy: seq, atomic, natural, metis, colored")
		sched    = flag.String("sched", "p2p", "recurrence scheduling: seq, level, p2p")
		fill     = flag.Int("fill", 1, "ILU fill level")
		sub      = flag.Int("subdomains", 1, "additive Schwarz subdomains")
		dedup    = flag.Bool("dedup", false, "content-deduplicate the preconditioner block stores (bit-identical results)")
		order2   = flag.Bool("order2", false, "second-order residual with limiter")
		fused    = flag.Bool("fused", false, "cache-blocked fused residual pipeline (implies -order2)")
		staged   = flag.Bool("staged", false, "hierarchical staged residual pipeline with per-tile SoA buffers (implies -order2)")
		order    = flag.String("order", "", "vertex ordering: natural, rcm, morton, hilbert (default rcm; overrides -no-rcm)")
		tileEdge = flag.Int("tile-edges", 0, "edges per tile for the fused/staged pipelines (0 = default)")
		innerTE  = flag.Int("inner-tile-edges", 0, "edges per inner (L2) tile for the staged pipeline (0 = default)")
		pfdist   = flag.Int("pfdist", 0, "flux prefetch lookahead distance in edges (0 = default)")
		alpha    = flag.Float64("alpha", 3.06, "angle of attack (degrees)")
		cfl      = flag.Float64("cfl", 10, "initial CFL number")
		maxSteps = flag.Int("steps", 60, "max pseudo-time steps")
		relTol   = flag.Float64("tol", 1e-6, "nonlinear relative tolerance")
		noRCM    = flag.Bool("no-rcm", false, "disable RCM reordering")
		noSIMD   = flag.Bool("no-simd", false, "disable SIMD edge batching")
		noPf     = flag.Bool("no-prefetch", false, "disable prefetch lookahead")
		vtkPath  = flag.String("vtk", "", "write the solution as legacy VTK to this path")
		forces   = flag.Bool("forces", false, "integrate and print surface force coefficients")
		savePath = flag.String("save", "", "write a solution checkpoint to this path after solving")
		loadPath = flag.String("load", "", "restore a solution checkpoint before solving")
	)
	flag.Parse()

	spec, err := meshSpec(*meshName, *scale)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("generating mesh %s (scale %.2f)...\n", *meshName, *scale)
	m, err := fun3d.GenerateMesh(spec)
	if err != nil {
		fatal(err)
	}
	fmt.Println("  ", m.ComputeStats())
	if err := m.Validate(); err != nil {
		fatal(fmt.Errorf("mesh validation: %w", err))
	}

	var cfg fun3d.Config
	if *baseline {
		cfg = fun3d.Baseline()
	} else {
		cfg = fun3d.Optimized(*threads)
		cfg.Strategy, err = parseStrategy(*strategy)
		if err != nil {
			fatal(err)
		}
		cfg.Sched, err = parseSched(*sched)
		if err != nil {
			fatal(err)
		}
		cfg.SIMD = !*noSIMD
		cfg.Prefetch = !*noPf
	}
	cfg.FillLevel = *fill
	cfg.Subdomains = *sub
	cfg.Dedup = *dedup
	cfg.SecondOrder = *order2
	cfg.Limiter = *order2
	cfg.AlphaDeg = *alpha
	cfg.RCM = !*noRCM
	if *order != "" {
		cfg.Order, err = fun3d.ParseOrdering(*order)
		if err != nil {
			fatal(err)
		}
	}
	if *fused {
		cfg.Fused = true
		cfg.SecondOrder = true
		cfg.Limiter = true
	}
	if *staged {
		if *fused {
			fatal(fmt.Errorf("-fused and -staged are mutually exclusive ladder rungs"))
		}
		cfg.Staged = true
		cfg.SecondOrder = true
		cfg.Limiter = true
	}
	cfg.TileEdges = *tileEdge
	cfg.InnerTileEdges = *innerTE
	cfg.PFDist = *pfdist

	solver, err := fun3d.NewSolver(m, cfg)
	if err != nil {
		fatal(err)
	}
	defer solver.Close()
	fmt.Println("config:", solver.Describe())
	fmt.Println("ordering:", solver.OrderingStats())
	if *loadPath != "" {
		lf, err := os.Open(*loadPath)
		if err != nil {
			fatal(err)
		}
		err = solver.LoadState(lf)
		if cerr := lf.Close(); err == nil && cerr != nil {
			err = cerr
		}
		var pm *fun3d.ParamMismatchError
		if errors.As(err, &pm) {
			// State loaded; the checkpoint's flow parameters were adopted.
			fmt.Println("warning:", pm)
		} else if err != nil {
			fatal(err)
		}
		fmt.Println("restored checkpoint", *loadPath)
	}

	r, err := solver.Run(newton.Options{MaxSteps: *maxSteps, CFL0: *cfl, RelTol: *relTol})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("\nconvergence (||R|| per pseudo-time step, CFL, linear iters):\n")
	for _, s := range r.History.Steps {
		fmt.Printf("  step %3d  ||R||=%.4e  CFL=%.3g  iters=%d\n", s.Step, s.RNorm, s.CFL, s.LinearIters)
	}
	fmt.Printf("\nconverged=%v  steps=%d  linear iters=%d  wall=%v\n",
		r.History.Converged, len(r.History.Steps), r.History.LinearIters, r.WallTime)
	fmt.Printf("\nper-kernel profile:\n%s", solver.Profile())

	if *forces {
		f := solver.SurfaceForces(0)
		fmt.Printf("\nsurface forces: CL=%.4f CD=%.4f (Sref=%.4f)\n", f.CL, f.CD, f.SRef)
	}
	if *savePath != "" {
		sf, err := os.Create(*savePath)
		if err != nil {
			fatal(err)
		}
		if err := solver.SaveState(sf); err != nil {
			sf.Close()
			fatal(err)
		}
		// A checkpoint that vanishes into a failed flush is worse than no
		// checkpoint: surface write-back errors before reporting success.
		if err := sf.Sync(); err != nil {
			sf.Close()
			fatal(err)
		}
		if err := sf.Close(); err != nil {
			fatal(err)
		}
		fmt.Println("wrote checkpoint", *savePath)
	}
	if *vtkPath != "" {
		vf, err := os.Create(*vtkPath)
		if err != nil {
			fatal(err)
		}
		if err := solver.WriteVTK(vf); err != nil {
			vf.Close()
			fatal(err)
		}
		if err := vf.Close(); err != nil {
			fatal(err)
		}
		fmt.Println("wrote", *vtkPath)
	}
}

func meshSpec(name string, scale float64) (fun3d.MeshSpec, error) {
	var spec fun3d.MeshSpec
	switch name {
	case "tiny":
		spec = fun3d.MeshTiny()
	case "c":
		spec = fun3d.MeshC()
	case "d":
		spec = fun3d.MeshD()
	default:
		return spec, fmt.Errorf("unknown mesh %q (tiny, c, d)", name)
	}
	if scale != 1 {
		spec = fun3d.ScaleMesh(spec, scale)
	}
	return spec, nil
}

func parseStrategy(s string) (flux.Strategy, error) {
	switch s {
	case "seq":
		return flux.Sequential, nil
	case "atomic":
		return flux.Atomic, nil
	case "natural":
		return flux.ReplicateNatural, nil
	case "metis":
		return flux.ReplicateMETIS, nil
	case "colored":
		return flux.Colored, nil
	}
	return 0, fmt.Errorf("unknown strategy %q", s)
}

func parseSched(s string) (precond.Scheduling, error) {
	switch s {
	case "seq":
		return precond.SchedSequential, nil
	case "level":
		return precond.SchedLevel, nil
	case "p2p":
		return precond.SchedP2P, nil
	}
	return 0, fmt.Errorf("unknown scheduling %q", s)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fun3d:", err)
	os.Exit(1)
}
